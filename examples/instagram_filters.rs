//! The Nashville instagram filter over a large image, with and without
//! split annotations (the paper's ImageMagick workload, Figure 4n) —
//! plus a demonstration of why `blur` must NOT be annotated (§7.1).
//!
//! Run with `cargo run --release --example instagram_filters`.

use imagelib::Image;
use mozart_repro::workloads::images;

fn main() {
    let workers = std::thread::available_parallelism()
        .map(|p| p.get())
        .unwrap_or(4);
    let img = images::generate(1920, 1080, 7);
    println!("applying the Nashville filter chain to a 1920x1080 image\n");

    imagelib::set_num_threads(workers);
    let t0 = std::time::Instant::now();
    let base = images::nashville_base(&img);
    let t_base = t0.elapsed();
    imagelib::set_num_threads(1);
    println!(
        "  ImageMagick (parallel library): {t_base:?} (mean px {:.4})",
        base.mean
    );

    let ctx = mozart_repro::workloads::mozart_context(workers);
    let t0 = std::time::Instant::now();
    let moz = images::nashville_mozart(&img, &ctx).expect("mozart");
    let t_moz = t0.elapsed();
    println!(
        "  ImageMagick + Mozart          : {t_moz:?} (mean px {:.4})",
        moz.mean
    );
    let stats = ctx.stats();
    let p = stats.percentages();
    println!(
        "  Mozart split/merge share: {:.1}% / {:.1}% (crop+append copy pixels,",
        p[3], p[5]
    );
    println!("  the overhead the paper reports for this integration)\n");

    // Why blur is not annotated: row-split + merge re-runs the edge
    // boundary condition at every seam and corrupts the result.
    let small = Image::synthetic(256, 256, 1);
    let whole = imagelib::blur(&small, 4);
    let split_wrong = Image::append_rows(&[
        imagelib::blur(&small.crop_rows(0, 128), 4),
        imagelib::blur(&small.crop_rows(128, 256), 4),
    ]);
    println!(
        "blur(whole) vs blur(halves)+append differ by {:.6} mean abs diff",
        whole.mean_abs_diff(&split_wrong)
    );
    println!("=> the annotator leaves blur un-annotated; Mozart simply evaluates");
    println!("   pending work and calls the library directly (a stage boundary).");
    assert!(whole.mean_abs_diff(&split_wrong) > 1e-4);
}
