//! A thin TCP front-end for [`mozart_serve::PipelineService`], speaking
//! the line-delimited protocol of [`mozart_serve::protocol`] over
//! `std::net` (no async runtime, no external dependencies).
//!
//! ```text
//! cargo run --release --example serve_tcp            # serve until killed
//! cargo run --release --example serve_tcp -- --self-test
//! ```
//!
//! With `--self-test` the process starts the server on an ephemeral
//! port, runs a scripted client conversation against it (including a
//! deliberately malformed request), prints the transcript, and exits —
//! a smoke test that needs no second terminal. The listen address is
//! `MOZART_SERVE_ADDR` (default `127.0.0.1:7878`, or an ephemeral port
//! in self-test mode).
//!
//! Example session (`nc 127.0.0.1 7878`):
//!
//! ```text
//! > LIST
//! OK black_scholes crime_index haversine nashville
//! > WEIGHT 2
//! OK weight=2
//! > BUDGET 500000000
//! OK budget=500000000
//! > black_scholes n=4096
//! OK call_sum=47332.145277 put_sum=39160.581264
//! > STATS
//! OK started=1 completed=1 rejected=0 failed=0 over_budget=0 coalesced_requests=0 coalesce_waiting=0 ...
//! > QUIT
//! OK bye
//! ```
//!
//! `WEIGHT` sets the connection session's fair-share weight (deficit-
//! weighted scheduling on the shared pool); `BUDGET` caps the bytes the
//! session may split/merge before requests are shed with
//! `ERR over_budget` (0 = unlimited). `STATS` reports the generic
//! cross-request coalescer's counters (`coalesced_requests` served as
//! followers so far, `coalesce_waiting` parked in open batches right
//! now), so operators can observe coalescing without attaching a
//! debugger.
//!
//! Fault-tolerance controls: `DEADLINE <ms>` sets the session's default
//! request deadline (0 clears it), a per-call `DEADLINE_MS=<ms>` pair
//! overrides it, and expired requests are shed with
//! `ERR deadline_exceeded`. `DRAIN [timeout_ms]` gracefully drains the
//! whole service: admission closes (new calls get `ERR draining`),
//! in-flight work finishes, and the reply reports whether the service
//! went idle within the timeout. `SIGTERM`/`SIGINT` trigger the same
//! drain before the process exits, so a supervisor restart never drops
//! accepted requests.

use std::io::{BufRead, BufReader, Write};
use std::net::{TcpListener, TcpStream};
use std::time::Duration;

use mozart_serve::protocol::{err_line, ok_line, parse_line, ClientLine};
use mozart_serve::PipelineService;

/// Drain-then-exit on SIGTERM/SIGINT. `std` has no signal API and the
/// workspace is dependency-free, so on Unix we register a minimal
/// handler against the libc `signal` symbol the binary already links.
#[cfg(unix)]
mod term_signal {
    use std::sync::atomic::{AtomicBool, Ordering};

    pub static REQUESTED: AtomicBool = AtomicBool::new(false);

    const SIGINT: i32 = 2;
    const SIGTERM: i32 = 15;

    extern "C" {
        fn signal(signum: i32, handler: extern "C" fn(i32)) -> usize;
    }

    extern "C" fn on_signal(_signum: i32) {
        // Async-signal-safe: a single atomic store, observed by the
        // watcher thread.
        REQUESTED.store(true, Ordering::SeqCst);
    }

    pub fn install() {
        unsafe {
            signal(SIGTERM, on_signal);
            signal(SIGINT, on_signal);
        }
    }

    pub fn requested() -> bool {
        REQUESTED.load(Ordering::SeqCst)
    }
}

/// Watch for a termination signal; drain the service and exit when one
/// arrives.
#[cfg(unix)]
fn spawn_drain_on_signal(service: PipelineService, timeout: Duration) {
    term_signal::install();
    std::thread::spawn(move || loop {
        if term_signal::requested() {
            eprintln!("signal received: draining (timeout {timeout:?})");
            let idle = service.drain(timeout);
            eprintln!("drain complete: idle={idle}");
            std::process::exit(if idle { 0 } else { 1 });
        }
        std::thread::sleep(Duration::from_millis(50));
    });
}

#[cfg(not(unix))]
fn spawn_drain_on_signal(_service: PipelineService, _timeout: Duration) {}

fn main() {
    let self_test = std::env::args().any(|a| a == "--self-test");
    let service = PipelineService::builder()
        .workers(mozart_core::config::default_workers().min(4))
        .builtin_pipelines()
        .build();

    let addr = std::env::var("MOZART_SERVE_ADDR").unwrap_or_else(|_| {
        if self_test {
            "127.0.0.1:0".to_string()
        } else {
            "127.0.0.1:7878".to_string()
        }
    });
    let listener = TcpListener::bind(&addr).expect("bind listen address");
    let local = listener.local_addr().expect("local addr");
    println!("mozart-serve listening on {local}");
    println!("pipelines: {}", service.pipeline_names().join(" "));

    if self_test {
        let server = {
            let service = service.clone();
            std::thread::spawn(move || accept_loop(listener, service))
        };
        run_self_test(local);
        let stats = service.stats();
        println!(
            "self-test done: started={} completed={} plan_hits={} plan_misses={}",
            stats.started, stats.completed, stats.plan_cache.hits, stats.plan_cache.misses
        );
        // The listener thread blocks in accept(); exiting the process
        // reaps it, like any signal-terminated server.
        drop(server);
        return;
    }
    spawn_drain_on_signal(service.clone(), Duration::from_secs(5));
    accept_loop(listener, service);
}

fn accept_loop(listener: TcpListener, service: PipelineService) {
    for stream in listener.incoming() {
        let Ok(stream) = stream else { continue };
        let service = service.clone();
        std::thread::spawn(move || {
            let peer = stream
                .peer_addr()
                .map(|a| a.to_string())
                .unwrap_or_else(|_| "?".into());
            if let Err(e) = serve_connection(stream, &service) {
                eprintln!("connection {peer}: {e}");
            }
        });
    }
}

/// Serve one connection: one session, one request per line.
fn serve_connection(stream: TcpStream, service: &PipelineService) -> std::io::Result<()> {
    let session = service.session();
    let mut writer = stream.try_clone()?;
    let reader = BufReader::new(stream);
    for line in reader.lines() {
        let line = line?;
        if line.trim().is_empty() {
            continue;
        }
        let reply = match parse_line(&line) {
            Ok(ClientLine::Quit) => {
                writeln!(writer, "{}", ok_line("bye"))?;
                break;
            }
            Ok(ClientLine::List) => ok_line(&service.pipeline_names().join(" ")),
            Ok(ClientLine::Stats) => ok_line(&stats_body(service)),
            Ok(ClientLine::Weight(w)) => {
                session.set_weight(w);
                ok_line(&format!("weight={w}"))
            }
            Ok(ClientLine::Budget(b)) => {
                session.set_byte_budget(b);
                ok_line(&format!("budget={b}"))
            }
            Ok(ClientLine::Deadline(ms)) => {
                session.set_deadline((ms > 0).then(|| Duration::from_millis(ms)));
                ok_line(&format!("deadline_ms={ms}"))
            }
            Ok(ClientLine::Drain(timeout_ms)) => {
                let idle = service.drain(Duration::from_millis(timeout_ms));
                ok_line(&format!("draining idle={idle}"))
            }
            Ok(ClientLine::Call(name, req)) => match session.call(&name, &req) {
                Ok(resp) => ok_line(&resp.body),
                Err(e) => err_line(&e),
            },
            Err(e) => err_line(&e),
        };
        writeln!(writer, "{reply}")?;
    }
    Ok(())
}

fn stats_body(service: &PipelineService) -> String {
    let s = service.stats();
    format!(
        "started={} completed={} rejected={} failed={} over_budget={} \
         deadline_shed={} retries={} draining={} \
         coalesced_requests={} coalesce_waiting={} sessions={} inflight={} \
         plan_hits={} plan_misses={} plan_entries={} pool_workers={} pool_jobs={} \
         pool_panicked_batches={} pool_respawned_workers={}",
        s.started,
        s.completed,
        s.rejected,
        s.failed,
        s.over_budget,
        s.deadline_shed,
        s.retries,
        s.draining,
        s.coalesced_requests,
        s.coalesce_waiting,
        s.sessions,
        s.inflight,
        s.plan_cache.hits,
        s.plan_cache.misses,
        s.plan_cache.entries,
        s.pool.workers,
        s.pool.jobs,
        s.pool.panicked_batches,
        s.pool.respawned_workers,
    )
}

fn run_self_test(addr: std::net::SocketAddr) {
    let stream = TcpStream::connect(addr).expect("connect to self");
    let mut writer = stream.try_clone().expect("clone stream");
    let mut reader = BufReader::new(stream);
    // Each entry is (request line, required reply prefix) — "OK"/"ERR"
    // for generic outcomes, a full `ERR <kind>` prefix where the typed
    // error is the point of the exchange.
    let script = [
        ("LIST", "OK"),
        ("WEIGHT 2", "OK"),
        ("BUDGET 500000000", "OK"),
        ("black_scholes n=2048", "OK"),
        ("black_scholes n=2048", "OK"), // identical: plan-cache replay
        ("haversine n=1024 seed=3", "OK"),
        ("nashville width=64 height=48", "OK"),
        ("crime_index rows=512", "OK"),
        ("no_such_pipeline", "ERR"),
        ("black_scholes n=abc", "ERR"),
        ("black_scholes n=2048 n=4096", "ERR"), // duplicate key rejected
        ("WEIGHT 0", "ERR"),
        ("BUDGET lots", "ERR"),
        // An already-expired deadline sheds with the typed error before
        // any work starts.
        (
            "black_scholes n=2048 DEADLINE_MS=0",
            "ERR deadline_exceeded",
        ),
        // Session default deadline: set, exercise a request that beats
        // it comfortably, clear it again.
        ("DEADLINE 60000", "OK deadline_ms=60000"),
        ("black_scholes n=2048", "OK"),
        ("DEADLINE 0", "OK deadline_ms=0"),
        ("STATS", "OK"),
        // Drain handshake: the service empties (idle=true), then turns
        // new work away with the typed draining error.
        ("DRAIN 2000", "OK draining idle=true"),
        ("black_scholes n=1024", "ERR draining"),
        ("QUIT", "OK"),
    ];
    for (line, expect) in script {
        writeln!(writer, "{line}").expect("send");
        let mut reply = String::new();
        reader.read_line(&mut reply).expect("recv");
        print!("> {line}\n{reply}");
        assert!(
            reply.starts_with(expect),
            "unexpected reply to {line:?}: {reply:?} (want prefix {expect:?})"
        );
    }
}
