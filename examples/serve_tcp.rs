//! A thin TCP front-end for [`mozart_serve::PipelineService`], speaking
//! the line-delimited protocol of [`mozart_serve::protocol`] over
//! `std::net` (no async runtime, no external dependencies). The
//! transport hardening — bounded request lines, stall/idle timeouts,
//! a connection cap with accept-time shedding — lives in
//! [`mozart_serve::tcpfront`]; this binary is configuration plus a
//! self-test.
//!
//! ```text
//! cargo run --release --example serve_tcp            # serve until killed
//! cargo run --release --example serve_tcp -- --self-test
//! cargo run --release --example serve_tcp -- --metrics-port 9090
//! ```
//!
//! With `--self-test` the process starts the server on an ephemeral
//! port, runs a scripted client conversation against it (including
//! deliberately malformed, oversized, and non-UTF-8 requests), prints
//! the transcript, and exits — a smoke test that needs no second
//! terminal. The listen address is `MOZART_SERVE_ADDR` (default
//! `127.0.0.1:7878`, or an ephemeral port in self-test mode).
//!
//! Environment knobs (all optional):
//!
//! ```text
//! MOZART_SERVE_ADDR          listen address        (127.0.0.1:7878)
//! MOZART_SERVE_TRACING       0 disables tracing    (on)
//! MOZART_SERVE_MAX_LINE      request line cap, bytes        (8192)
//! MOZART_SERVE_READ_TIMEOUT_MS  mid-line stall cap          (10000)
//! MOZART_SERVE_IDLE_MS       idle connection reap          (300000)
//! MOZART_SERVE_MAX_CONNS     concurrent connection cap        (256)
//! MOZART_SERVE_MEM_CEILING   process memory ceiling, bytes (0 = off)
//! ```
//!
//! Oversized lines are answered `ERR bad_request` and discarded without
//! buffering; clients that stall mid-request or idle past the timeout
//! are dropped; accepts past the connection cap get one
//! `ERR saturated` line and are closed before a serving thread exists.
//! The service itself runs with the adaptive overload controls on
//! (AIMD concurrency limit, CoDel queue shedding, per-pipeline circuit
//! breakers; see the `mozart_serve` crate docs), and
//! `MOZART_SERVE_MEM_CEILING` arms the process-wide memory budget.
//!
//! Observability: the example serves with tracing **on** by default
//! (set `MOZART_SERVE_TRACING=0` to disable) — every `OK` call reply
//! carries a trailing ` trace=<id>`, `TRACE <id>` returns that
//! request's span tree, `METRICS` returns the Prometheus-style page
//! in-protocol, and `--metrics-port <p>` additionally serves the same
//! page over plain HTTP at `http://127.0.0.1:<p>/metrics` for scrapers.
//!
//! Example session (`nc 127.0.0.1 7878`):
//!
//! ```text
//! > LIST
//! OK black_scholes crime_index haversine nashville
//! > WEIGHT 2
//! OK weight=2
//! > BUDGET 500000000
//! OK budget=500000000
//! > black_scholes n=4096
//! OK call_sum=47332.145277 put_sum=39160.581264
//! > STATS
//! OK started=1 completed=1 rejected=0 failed=0 over_budget=0 ... admission_limit=4 ...
//! > QUIT
//! OK bye
//! ```
//!
//! `WEIGHT` sets the connection session's fair-share weight (deficit-
//! weighted scheduling on the shared pool); `BUDGET` caps the bytes the
//! session may split/merge before requests are shed with
//! `ERR over_budget` (0 = unlimited). `STATS` reports the service
//! counters in the stable order documented in
//! [`mozart_serve::protocol`], including the overload fields
//! (`admission_limit`, `queue_shed`, `over_memory`, `breaker_shed`,
//! `breaker_open`, `memory_live_bytes`, `memory_ceiling_bytes`).
//!
//! `PIPELINE <0|1>` picks the session's stage evaluation mode: `1`
//! (the default) fuses whole pipelines, `0` evaluates one stage per
//! call and hands intermediates across in split form — bit-identical
//! responses, with the elided merges counted by the
//! `split_form_handoffs` STATS field and the
//! `mozart_split_form_handoffs_total` metric.
//!
//! Fault-tolerance controls: `DEADLINE <ms>` sets the session's default
//! request deadline (0 clears it), a per-call `DEADLINE_MS=<ms>` pair
//! overrides it, and expired requests are shed with
//! `ERR deadline_exceeded`. `DRAIN [timeout_ms]` gracefully drains the
//! whole service: admission closes (new calls get `ERR draining`),
//! in-flight work finishes, and the reply reports whether the service
//! went idle within the timeout. `SIGTERM`/`SIGINT` trigger the same
//! drain before the process exits, so a supervisor restart never drops
//! accepted requests.

use std::io::{BufRead, BufReader, Read, Write};
use std::net::{TcpListener, TcpStream};
use std::time::Duration;

use mozart_serve::tcpfront::{accept_loop, FrontendConfig};
use mozart_serve::PipelineService;

/// Drain-then-exit on SIGTERM/SIGINT. `std` has no signal API and the
/// workspace is dependency-free, so on Unix we register a minimal
/// handler against the libc `signal` symbol the binary already links.
#[cfg(unix)]
mod term_signal {
    use std::sync::atomic::{AtomicBool, Ordering};

    pub static REQUESTED: AtomicBool = AtomicBool::new(false);

    const SIGINT: i32 = 2;
    const SIGTERM: i32 = 15;

    extern "C" {
        fn signal(signum: i32, handler: extern "C" fn(i32)) -> usize;
    }

    extern "C" fn on_signal(_signum: i32) {
        // Async-signal-safe: a single atomic store, observed by the
        // watcher thread.
        REQUESTED.store(true, Ordering::SeqCst);
    }

    pub fn install() {
        unsafe {
            signal(SIGTERM, on_signal);
            signal(SIGINT, on_signal);
        }
    }

    pub fn requested() -> bool {
        REQUESTED.load(Ordering::SeqCst)
    }
}

/// Watch for a termination signal; drain the service and exit when one
/// arrives.
#[cfg(unix)]
fn spawn_drain_on_signal(service: PipelineService, timeout: Duration) {
    term_signal::install();
    std::thread::spawn(move || loop {
        if term_signal::requested() {
            eprintln!("signal received: draining (timeout {timeout:?})");
            let idle = service.drain(timeout);
            eprintln!("drain complete: idle={idle}");
            std::process::exit(if idle { 0 } else { 1 });
        }
        std::thread::sleep(Duration::from_millis(50));
    });
}

#[cfg(not(unix))]
fn spawn_drain_on_signal(_service: PipelineService, _timeout: Duration) {}

fn env_u64(key: &str, default: u64) -> u64 {
    std::env::var(key)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let self_test = args.iter().any(|a| a == "--self-test");
    let metrics_port: Option<u16> = args.iter().position(|a| a == "--metrics-port").map(|i| {
        args.get(i + 1)
            .and_then(|v| v.parse().ok())
            .expect("--metrics-port requires a port number")
    });
    // Tracing defaults on: the serve_throughput gate holds its overhead
    // under 5%, and the trace ids on OK replies are what make TRACE
    // usable. Self-test always traces — it asserts on TRACE output.
    let tracing = self_test || std::env::var("MOZART_SERVE_TRACING").map_or(true, |v| v != "0");
    let mut builder = PipelineService::builder()
        .workers(mozart_core::config::default_workers().min(4))
        .tracing(tracing)
        .builtin_pipelines();
    let mem_ceiling = env_u64("MOZART_SERVE_MEM_CEILING", 0);
    if mem_ceiling > 0 {
        builder = builder.memory_ceiling_bytes(mem_ceiling);
    }
    let service = builder.build();

    let frontend = FrontendConfig {
        max_line_bytes: env_u64("MOZART_SERVE_MAX_LINE", 8192) as usize,
        read_timeout: Duration::from_millis(env_u64("MOZART_SERVE_READ_TIMEOUT_MS", 10_000)),
        idle_timeout: Duration::from_millis(env_u64("MOZART_SERVE_IDLE_MS", 300_000)),
        max_connections: env_u64("MOZART_SERVE_MAX_CONNS", 256) as usize,
    };

    let addr = std::env::var("MOZART_SERVE_ADDR").unwrap_or_else(|_| {
        if self_test {
            "127.0.0.1:0".to_string()
        } else {
            "127.0.0.1:7878".to_string()
        }
    });
    let listener = TcpListener::bind(&addr).expect("bind listen address");
    let local = listener.local_addr().expect("local addr");
    println!("mozart-serve listening on {local}");
    println!("pipelines: {}", service.pipeline_names().join(" "));

    // Self-test always stands up a metrics listener (on an ephemeral
    // port) so the HTTP exposition path gets exercised too.
    let metrics_addr = match (self_test, metrics_port) {
        (true, p) => Some(spawn_metrics_listener(service.clone(), p.unwrap_or(0))),
        (false, Some(p)) => Some(spawn_metrics_listener(service.clone(), p)),
        (false, None) => None,
    };
    if let Some(a) = metrics_addr {
        println!("metrics on http://{a}/metrics");
    }

    if self_test {
        let server = {
            let service = service.clone();
            let frontend = FrontendConfig {
                // Small enough to exercise the oversize path cheaply.
                max_line_bytes: 1024,
                ..frontend
            };
            std::thread::spawn(move || accept_loop(listener, service, frontend))
        };
        run_self_test(local, metrics_addr.expect("self-test metrics listener"));
        let stats = service.stats();
        println!(
            "self-test done: started={} completed={} plan_hits={} plan_misses={}",
            stats.started, stats.completed, stats.plan_cache.hits, stats.plan_cache.misses
        );
        // The listener thread blocks in accept(); exiting the process
        // reaps it, like any signal-terminated server.
        drop(server);
        return;
    }
    spawn_drain_on_signal(service.clone(), Duration::from_secs(5));
    accept_loop(listener, service, frontend);
}

/// Serve [`PipelineService::metrics_text`] over minimal HTTP/1.0 on
/// `127.0.0.1:<port>` (0 = ephemeral). Every request gets the full
/// page regardless of path — the endpoint exists for scrapers, not
/// routing. Returns the bound address.
fn spawn_metrics_listener(service: PipelineService, port: u16) -> std::net::SocketAddr {
    let listener = TcpListener::bind(("127.0.0.1", port)).expect("bind metrics port");
    let addr = listener.local_addr().expect("metrics local addr");
    std::thread::spawn(move || {
        for stream in listener.incoming() {
            let Ok(mut stream) = stream else { continue };
            // Consume the request line; ignore the rest of the head.
            let mut line = String::new();
            if let Ok(reader) = stream.try_clone() {
                let _ = BufReader::new(reader).read_line(&mut line);
            }
            let body = service.metrics_text();
            let _ = write!(
                stream,
                "HTTP/1.0 200 OK\r\nContent-Type: text/plain; version=0.0.4\r\n\
                 Content-Length: {}\r\nConnection: close\r\n\r\n{}",
                body.len(),
                body
            );
        }
    });
    addr
}

/// Pull `key=<u64>` out of a reply line; panics if absent — self-test
/// replies are under our control.
fn field_u64(line: &str, key: &str) -> u64 {
    line.split_whitespace()
        .find_map(|w| w.strip_prefix(key)?.strip_prefix('=')?.parse().ok())
        .unwrap_or_else(|| panic!("no {key}=<u64> in {line:?}"))
}

fn run_self_test(addr: std::net::SocketAddr, metrics_addr: std::net::SocketAddr) {
    let stream = TcpStream::connect(addr).expect("connect to self");
    let mut writer = stream.try_clone().expect("clone stream");
    let mut reader = BufReader::new(stream);
    // Each entry is (request line, required reply prefix) — "OK"/"ERR"
    // for generic outcomes, a full `ERR <kind>` prefix where the typed
    // error is the point of the exchange.
    let script = [
        ("LIST", "OK"),
        ("WEIGHT 2", "OK"),
        ("BUDGET 500000000", "OK"),
        ("black_scholes n=2048", "OK"),
        ("black_scholes n=2048", "OK"), // identical: plan-cache replay
        ("haversine n=1024 seed=3", "OK"),
        ("nashville width=64 height=48", "OK"),
        ("crime_index rows=512", "OK"),
        ("no_such_pipeline", "ERR"),
        ("black_scholes n=abc", "ERR"),
        ("black_scholes n=2048 n=4096", "ERR"), // duplicate key rejected
        ("WEIGHT 0", "ERR"),
        ("BUDGET lots", "ERR"),
        // An already-expired deadline sheds with the typed error before
        // any work starts.
        (
            "black_scholes n=2048 DEADLINE_MS=0",
            "ERR deadline_exceeded",
        ),
        // Session default deadline: set, exercise a request that beats
        // it comfortably, clear it again.
        ("DEADLINE 60000", "OK deadline_ms=60000"),
        ("black_scholes n=2048", "OK"),
        ("DEADLINE 0", "OK deadline_ms=0"),
        ("STATS", "OK"),
        // A trace id the recorder never minted (or has long evicted).
        ("TRACE 999999999", "ERR bad_request"),
    ];
    fn exchange(
        writer: &mut TcpStream,
        reader: &mut BufReader<TcpStream>,
        line: &str,
        expect: &str,
    ) -> String {
        writeln!(writer, "{line}").expect("send");
        let mut reply = String::new();
        reader.read_line(&mut reply).expect("recv");
        print!("> {line}\n{reply}");
        assert!(
            reply.starts_with(expect),
            "unexpected reply to {line:?}: {reply:?} (want prefix {expect:?})"
        );
        reply
    }
    for (line, expect) in script {
        exchange(&mut writer, &mut reader, line, expect);
    }

    // Front-end hardening: an oversized request line (the self-test
    // server caps lines at 1024 bytes) is discarded and answered with
    // the typed error, and the connection stays usable.
    let oversize = format!("black_scholes n={}", "9".repeat(4096));
    let reply = exchange(&mut writer, &mut reader, &oversize, "ERR bad_request");
    assert!(reply.contains("exceeds"), "oversize reply: {reply:?}");
    exchange(&mut writer, &mut reader, "black_scholes n=1024", "OK");
    // Non-UTF-8 garbage gets a typed error, not a dropped connection.
    writer.write_all(b"\xff\xfe\xfd\n").expect("send garbage");
    let mut reply = String::new();
    reader.read_line(&mut reply).expect("recv");
    print!("> <3 bytes of garbage>\n{reply}");
    assert!(reply.starts_with("ERR bad_request"), "{reply:?}");
    exchange(&mut writer, &mut reader, "black_scholes n=1024", "OK");

    // The overload fields ride at the end of STATS in stable order.
    let stats = exchange(&mut writer, &mut reader, "STATS", "OK");
    for key in ["admission_limit", "queue_shed", "breaker_open"] {
        assert!(stats.contains(&format!(" {key}=")), "STATS missing {key}");
    }

    // Trace roundtrip: a large call so serve-side bookkeeping is noise,
    // then fetch its span tree and check it accounts for the latency
    // (the ISSUE's 5% acceptance bar, enforced here over the wire).
    let reply = exchange(
        &mut writer,
        &mut reader,
        "black_scholes n=65536",
        "OK call_sum=",
    );
    assert!(reply.contains(" trace="), "traced reply: {reply:?}");
    let trace = field_u64(&reply, "trace");
    let tree = exchange(
        &mut writer,
        &mut reader,
        &format!("TRACE {trace}"),
        "OK trace=",
    );
    assert_eq!(field_u64(&tree, "trace"), trace);
    let e2e_us = field_u64(&tree, "e2e_us");
    let covered_us = field_u64(&tree, "covered_us");
    assert!(
        covered_us * 100 >= e2e_us.saturating_mul(95),
        "trace covers {covered_us}us of {e2e_us}us"
    );

    // METRICS replies multi-line: `OK lines=<n>` then n raw page lines.
    let head = exchange(&mut writer, &mut reader, "METRICS", "OK lines=");
    let mut page = String::new();
    for _ in 0..field_u64(&head, "lines") {
        let mut metric_line = String::new();
        reader.read_line(&mut metric_line).expect("metrics line");
        page.push_str(&metric_line);
    }
    assert!(page.contains("mozart_requests_started_total"), "{page}");
    assert!(page.contains("mozart_request_seconds_count"), "{page}");
    assert!(page.contains("mozart_admission_limit"), "{page}");
    assert!(page.contains("mozart_memory_live_bytes"), "{page}");

    // The same page over HTTP, for scrapers.
    let mut http = TcpStream::connect(metrics_addr).expect("connect metrics port");
    write!(http, "GET /metrics HTTP/1.0\r\n\r\n").expect("send http request");
    let mut http_reply = String::new();
    BufReader::new(http)
        .read_to_string(&mut http_reply)
        .expect("read http reply");
    assert!(http_reply.starts_with("HTTP/1.0 200 OK"), "{http_reply}");
    assert!(
        http_reply.contains("mozart_requests_started_total"),
        "{http_reply}"
    );
    println!(
        "> GET http://{metrics_addr}/metrics\nOK ({} bytes)",
        http_reply.len()
    );

    // Split-form hand-offs: staged evaluation (PIPELINE 0) hands
    // stage-boundary intermediates to the next stage in split form
    // instead of merging and re-splitting; the counter rides at the
    // stable end of STATS. PIPELINE 1 restores the fused default.
    exchange(&mut writer, &mut reader, "PIPELINE 0", "OK pipeline=0");
    exchange(
        &mut writer,
        &mut reader,
        "nashville width=64 height=48",
        "OK",
    );
    exchange(&mut writer, &mut reader, "PIPELINE 1", "OK pipeline=1");
    exchange(&mut writer, &mut reader, "PIPELINE 2", "ERR bad_request");
    let stats = exchange(&mut writer, &mut reader, "STATS", "OK");
    assert!(
        field_u64(&stats, "split_form_handoffs") >= 1,
        "staged nashville produced no split-form hand-offs: {stats:?}"
    );

    // Drain handshake: the service empties (idle=true), then turns new
    // work away with the typed draining error.
    exchange(
        &mut writer,
        &mut reader,
        "DRAIN 2000",
        "OK draining idle=true",
    );
    exchange(
        &mut writer,
        &mut reader,
        "black_scholes n=1024",
        "ERR draining",
    );
    exchange(&mut writer, &mut reader, "QUIT", "OK");
}
