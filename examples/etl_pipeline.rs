//! A DataFrame ETL pipeline under split annotations: clean a table,
//! filter it, join a dimension table, and aggregate — the Pandas-style
//! operator mix of the paper's data-science workloads (§8.2), with
//! filters flowing through the `unknown` split type and the groupBy
//! parallelized by partial aggregation.
//!
//! Run with `cargo run --release --example etl_pipeline`.

use dataframe::{Agg, AggSpec, Column, DataFrame};
use mozart_repro::sa_dataframe as sa;

fn main() {
    let n: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(1_000_000);
    let workers = std::thread::available_parallelism()
        .map(|p| p.get())
        .unwrap_or(4);

    // An orders table with some dirty amounts, plus a region dimension.
    let orders = DataFrame::from_cols(vec![
        ("order_id", Column::from_i64((0..n as i64).collect())),
        (
            "region_id",
            Column::from_i64((0..n).map(|i| (i % 5) as i64).collect()),
        ),
        (
            "amount",
            Column::from_f64(
                (0..n)
                    .map(|i| {
                        if i % 97 == 0 {
                            f64::NAN
                        } else {
                            (i % 500) as f64 * 0.25
                        }
                    })
                    .collect(),
            ),
        ),
    ]);
    let regions = DataFrame::from_cols(vec![
        ("region_id", Column::from_i64((0..5).collect())),
        (
            "region",
            Column::from_strs(&["north", "south", "east", "west", "central"]),
        ),
    ]);

    let ctx = mozart_repro::workloads::mozart_context(workers);
    let t0 = std::time::Instant::now();

    // 1. Clean: replace NaN amounts with 0 (pipelined per row chunk).
    let amount = sa::col(&ctx, &orders, "amount").expect("col");
    let cleaned = sa::fillna(&ctx, &amount, 0.0).expect("fillna");
    let orders2 = sa::with_column(&ctx, &orders, "amount", &cleaned).expect("with_column");

    // 2. Filter: keep large orders (result has the unknown split type
    //    but still pipelines into the join below).
    let mask = sa::gt_scalar(&ctx, &cleaned, 50.0).expect("mask");
    let big = sa::filter(&ctx, &orders2, &mask).expect("filter");

    // 3. Join the region dimension (probe side split, build broadcast).
    let joined = sa::inner_join(&ctx, &big, &regions, "region_id").expect("join");

    // 4. Aggregate per region (partial aggregation + re-aggregation).
    let grouped = sa::groupby_agg(
        &ctx,
        &joined,
        &["region"],
        &[
            AggSpec::new("amount", Agg::Sum, "revenue"),
            AggSpec::new("amount", Agg::Mean, "avg_order"),
            AggSpec::new("amount", Agg::Count, "orders"),
        ],
    )
    .expect("groupby");

    let result = sa::get_df(&grouped).expect("materialize").sort_by("region");
    let elapsed = t0.elapsed();

    println!(
        "{n} orders -> {} regions in {elapsed:?}\n",
        result.num_rows()
    );
    println!(
        "{:<10} {:>14} {:>12} {:>10}",
        "region", "revenue", "avg_order", "orders"
    );
    for i in 0..result.num_rows() {
        println!(
            "{:<10} {:>14.2} {:>12.2} {:>10}",
            result.col("region").strs()[i],
            result.col("revenue").f64s()[i],
            result.col("avg_order").f64s()[i],
            result.col("orders").f64s()[i] as u64,
        );
    }
    let stats = ctx.stats();
    println!(
        "\nMozart: {} stages, {} batches, {} library calls ({} workers)",
        stats.stages, stats.batches, stats.calls, workers
    );
}
