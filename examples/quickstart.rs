//! Quickstart: annotate a tiny "library", capture a lazy pipeline, and
//! let Mozart split, pipeline, and parallelize it.
//!
//! Run with `cargo run --release --example quickstart`.

use std::sync::Arc;

use mozart_repro::core::annotation::{concrete, missing};
use mozart_repro::core::prelude::*;

// ---------------------------------------------------------------------
// 1. An "existing library" the authors never modify: plain functions
//    over raw slices, each making a full pass over its data.
// ---------------------------------------------------------------------

mod mylib {
    pub fn saxpy(alpha: f64, x: &[f64], y: &mut [f64]) {
        for i in 0..y.len() {
            y[i] += alpha * x[i];
        }
    }

    pub fn clamp(lo: f64, hi: f64, y: &mut [f64]) {
        for v in y.iter_mut() {
            *v = v.clamp(lo, hi);
        }
    }
}

// ---------------------------------------------------------------------
// 2. The annotator writes split annotations: a split type per argument
//    plus a wrapper that calls the unmodified function on each piece.
//    (Compare the paper's Listing 2.)
// ---------------------------------------------------------------------

fn saxpy_annotation() -> Arc<Annotation> {
    Annotation::new("saxpy", |inv| {
        let alpha = inv.float(0)?;
        let x = inv.arg::<SliceView>(1)?;
        let y = inv.arg::<SliceView>(2)?;
        // SAFETY: Mozart hands each worker disjoint element ranges.
        unsafe { mylib::saxpy(alpha, x.as_slice(), y.as_slice_mut()) };
        Ok(None)
    })
    .arg("alpha", missing()) // `_`: copied to every pipeline
    .arg("x", concrete(Arc::new(ArraySplit), vec![1]))
    .mut_arg("y", concrete(Arc::new(ArraySplit), vec![1]))
    .build()
}

fn clamp_annotation() -> Arc<Annotation> {
    Annotation::new("clamp", |inv| {
        let lo = inv.float(0)?;
        let hi = inv.float(1)?;
        let y = inv.arg::<SliceView>(2)?;
        // SAFETY: disjoint ranges per worker.
        unsafe { mylib::clamp(lo, hi, y.as_slice_mut()) };
        Ok(None)
    })
    .arg("lo", missing())
    .arg("hi", missing())
    // MKL convention: split parameters come from the explicit size
    // argument, never from the mutable array itself.
    .mut_arg("y", concrete(Arc::new(ArraySplit), vec![3]))
    .arg("n", missing())
    .build()
}

// ---------------------------------------------------------------------
// 3. The application uses the wrapped functions as always; Mozart
//    captures a dataflow graph lazily and evaluates on first access.
// ---------------------------------------------------------------------

fn main() {
    let n = 4_000_000;
    let workers = std::thread::available_parallelism()
        .map(|p| p.get())
        .unwrap_or(4);
    let ctx = MozartContext::with_workers(workers);
    let saxpy = saxpy_annotation();
    let clamp = clamp_annotation();

    let x = SharedVec::from_vec((0..n).map(|i| (i % 100) as f64 * 0.01).collect());
    let y = SharedVec::from_vec(vec![1.0; n]);

    println!("registering 3 lazy calls over {n} elements ...");
    for (alpha, lo, hi) in [(2.0, 0.0, 2.5), (-0.5, 0.2, 2.0), (0.25, 0.0, 1.8)] {
        ctx.call(
            &saxpy,
            vec![
                DataValue::new(FloatValue(alpha)),
                DataValue::new(VecValue(x.clone())),
                DataValue::new(VecValue(y.clone())),
            ],
        )
        .expect("register saxpy");
        ctx.call(
            &clamp,
            vec![
                DataValue::new(FloatValue(lo)),
                DataValue::new(FloatValue(hi)),
                DataValue::new(VecValue(y.clone())),
                DataValue::new(IntValue(n as i64)),
            ],
        )
        .expect("register clamp");
    }
    println!("pending calls before access: {}", ctx.pending_calls());

    // Reading `y` forces evaluation — the paper's mprotect trick, here a
    // protect-flag check inside as_slice().
    let checksum: f64 = y.as_slice().iter().sum();
    println!("checksum = {checksum:.3}");

    let stats = ctx.stats();
    println!(
        "stages = {} (all 6 calls pipelined), batches = {}, calls = {}",
        stats.stages, stats.batches, stats.calls
    );
    let p = stats.percentages();
    println!(
        "time breakdown: client {:.2}% | unprotect {:.2}% | planner {:.2}% | split {:.2}% | task {:.2}% | merge {:.2}%",
        p[0], p[1], p[2], p[3], p[4], p[5]
    );
    assert_eq!(stats.stages, 1);
    println!("ok: one stage, cache-sized batches, {workers} workers");
}
