//! Export a traced Mozart evaluation as Chrome trace-event JSON.
//!
//! Runs the Black-Scholes workload with [`mozart_core::trace`] enabled
//! and writes every recorded span — planner, per-batch split/task/merge,
//! placement writes — to a file `chrome://tracing` / Perfetto
//! (<https://ui.perfetto.dev>) can open, with one row per worker thread.
//!
//! ```text
//! cargo run --release --example trace_export [n] [out.json]
//! ```
//!
//! Defaults: n = 2,000,000 options, output `mozart_trace.json`.

use std::time::Instant;

use mozart_core::trace::TraceRecorder;
use mozart_core::{chrome_trace_json, Config};
use mozart_repro::workloads::black_scholes as bs;

fn main() {
    let n: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(2_000_000);
    let out = std::env::args()
        .nth(2)
        .unwrap_or_else(|| "mozart_trace.json".to_string());
    let workers = std::thread::available_parallelism()
        .map(|p| p.get().min(8))
        .unwrap_or(4);

    let recorder = TraceRecorder::new();
    let mut cfg = Config::with_workers(workers);
    cfg.tracing = Some(recorder.clone());
    let ctx = mozart_repro::workloads::mozart_context_with(cfg);

    let inp = bs::generate(n, 42);
    let t0 = Instant::now();
    let summary = bs::mkl_mozart(&inp, &ctx).expect("mozart run");
    println!(
        "priced {n} options on {workers} workers in {:?} (call_sum = {:.2})",
        t0.elapsed(),
        summary.call_sum
    );

    let spans = recorder.all_spans();
    let json = chrome_trace_json(&spans);
    std::fs::write(&out, &json).expect("write trace file");
    println!(
        "wrote {} spans ({} bytes) to {out}",
        spans.len(),
        json.len()
    );
    println!("open in chrome://tracing or https://ui.perfetto.dev");
    for t in recorder.phase_totals() {
        println!(
            "  {:>16}: count={:<6} wall={:?} cpu={:?}",
            t.kind.name(),
            t.count,
            std::time::Duration::from_nanos(t.wall_ns),
            std::time::Duration::from_nanos(t.cpu_ns),
        );
    }
}
