//! Options pricing with the MKL-style vector math library — the paper's
//! motivating workload (§2.1, Figure 1). Prices a portfolio three ways
//! and compares: the plain library, the hand-fused single pass, and the
//! library under Mozart's split annotations.
//!
//! Run with `cargo run --release --example options_pricing`.

use std::time::Instant;

use mozart_repro::workloads::black_scholes as bs;

fn main() {
    let n: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(2_000_000);
    let workers = std::thread::available_parallelism()
        .map(|p| p.get())
        .unwrap_or(4);
    let inp = bs::generate(n, 42);
    println!("pricing {n} options, {workers} workers\n");

    vectormath::set_num_threads(workers);
    let t0 = Instant::now();
    let base = bs::mkl_base(&inp);
    let t_base = t0.elapsed();
    vectormath::set_num_threads(1);
    println!(
        "  MKL (parallel library) : {t_base:?}  call_sum = {:.2}",
        base.call_sum
    );

    let t0 = Instant::now();
    let fused = bs::fused(&inp, workers);
    let t_fused = t0.elapsed();
    println!(
        "  fused single pass      : {t_fused:?}  call_sum = {:.2}",
        fused.call_sum
    );

    let ctx = mozart_repro::workloads::mozart_context(workers);
    let t0 = Instant::now();
    let moz = bs::mkl_mozart(&inp, &ctx).expect("mozart run");
    let t_moz = t0.elapsed();
    println!(
        "  MKL + Mozart (SAs)     : {t_moz:?}  call_sum = {:.2}",
        moz.call_sum
    );

    let stats = ctx.stats();
    println!(
        "\nMozart executed {} library calls in {} stage(s) over {} batches,",
        stats.calls, stats.stages, stats.batches
    );
    println!("keeping each cache-sized chunk hot across all ~27 vector ops.");
    let rel = |a: f64, b: f64| a / b;
    println!(
        "speedup vs MKL: {:.2}x   vs fused compiler stand-in: {:.2}x",
        rel(t_base.as_secs_f64(), t_moz.as_secs_f64()),
        rel(t_fused.as_secs_f64(), t_moz.as_secs_f64()),
    );
    assert!((base.call_sum - moz.call_sum).abs() / base.call_sum.abs() < 1e-6);
}
