//! Vendored stand-in for the `criterion` crate.
//!
//! The build environment has no network access, so this shim provides
//! the subset of the criterion API the workspace's microbenchmarks use
//! (`criterion_group!`/`criterion_main!`, benchmark groups, `iter`,
//! `iter_batched`, throughput annotation) backed by a simple
//! median-of-samples wall-clock harness. It reports plausible numbers
//! for relative comparisons; it is not a statistics engine.

use std::time::{Duration, Instant};

/// Prevent the optimizer from discarding a value.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Throughput annotation for a benchmark group.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Bytes processed per iteration.
    Bytes(u64),
    /// Elements processed per iteration.
    Elements(u64),
}

/// How batched setup output is sized (accepted for API parity; the shim
/// always runs setup once per iteration).
#[derive(Debug, Clone, Copy)]
pub enum BatchSize {
    /// Small per-iteration state.
    SmallInput,
    /// Large per-iteration state.
    LargeInput,
    /// One setup per iteration.
    PerIteration,
}

/// The timing loop handed to `bench_function` closures.
pub struct Bencher {
    samples: Vec<Duration>,
}

impl Bencher {
    fn run_samples(&mut self, mut once: impl FnMut() -> Duration) {
        // Warm up briefly, then collect samples for ~200ms or 15 runs,
        // whichever comes first.
        for _ in 0..3 {
            once();
        }
        let budget = Duration::from_millis(200);
        let t0 = Instant::now();
        while self.samples.len() < 15 && (t0.elapsed() < budget || self.samples.is_empty()) {
            let d = once();
            self.samples.push(d);
        }
    }

    /// Time repeated calls of `routine`.
    pub fn iter<O>(&mut self, mut routine: impl FnMut() -> O) {
        self.run_samples(|| {
            let t = Instant::now();
            black_box(routine());
            t.elapsed()
        });
    }

    /// Time `routine` over fresh state from `setup`, excluding setup time.
    pub fn iter_batched<I, O>(
        &mut self,
        mut setup: impl FnMut() -> I,
        mut routine: impl FnMut(I) -> O,
        _size: BatchSize,
    ) {
        self.run_samples(|| {
            let input = setup();
            let t = Instant::now();
            black_box(routine(input));
            t.elapsed()
        });
    }

    fn median(&self) -> Duration {
        let mut s = self.samples.clone();
        s.sort();
        s.get(s.len() / 2).copied().unwrap_or_default()
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    throughput: Option<Throughput>,
    _parent: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Set the group's throughput annotation.
    pub fn throughput(&mut self, t: Throughput) {
        self.throughput = Some(t);
    }

    /// Run one benchmark.
    pub fn bench_function(&mut self, id: &str, f: impl FnOnce(&mut Bencher)) -> &mut Self {
        let mut b = Bencher {
            samples: Vec::new(),
        };
        f(&mut b);
        let med = b.median();
        let extra = match self.throughput {
            Some(Throughput::Bytes(bytes)) if med > Duration::ZERO => {
                let gbps = bytes as f64 / med.as_secs_f64() / 1e9;
                format!("  ({gbps:.2} GB/s)")
            }
            Some(Throughput::Elements(n)) if med > Duration::ZERO => {
                let meps = n as f64 / med.as_secs_f64() / 1e6;
                format!("  ({meps:.2} Melem/s)")
            }
            _ => String::new(),
        };
        println!(
            "{}/{id}: median {med:?} over {} samples{extra}",
            self.name,
            b.samples.len()
        );
        self
    }

    /// Finish the group (reporting is per-benchmark in this shim).
    pub fn finish(&mut self) {}
}

/// The harness entry point.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Start a benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            throughput: None,
            _parent: self,
        }
    }

    /// Run one stand-alone benchmark.
    pub fn bench_function(&mut self, id: &str, f: impl FnOnce(&mut Bencher)) -> &mut Self {
        self.benchmark_group("bench").bench_function(id, f);
        self
    }
}

/// Bundle benchmark functions into a group runnable by `criterion_main!`.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($fun:path),+ $(,)?) => {
        fn $name() {
            let mut c = $crate::Criterion::default();
            $($fun(&mut c);)+
        }
    };
}

/// Generate `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_collects_samples() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("t");
        g.throughput(Throughput::Bytes(8));
        g.bench_function("noop", |b| b.iter(|| 1 + 1));
        g.bench_function("batched", |b| {
            b.iter_batched(|| vec![1u8; 16], |v| v.len(), BatchSize::SmallInput)
        });
        g.finish();
    }
}
