//! Vendored stand-in for the `parking_lot` crate.
//!
//! The build environment has no network access, so this shim provides
//! the subset of the `parking_lot` API this workspace uses — `Mutex` and
//! `RwLock` with guard-returning (non-poisoning) lock
//! methods — implemented over `std::sync`. Poisoned std locks are
//! recovered transparently, matching `parking_lot`'s no-poisoning
//! semantics.

use std::sync::PoisonError;

pub use std::sync::{MutexGuard, RwLockReadGuard, RwLockWriteGuard};

/// A mutual exclusion primitive (non-poisoning `lock()` API).
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(std::sync::Mutex<T>);

impl<T> Mutex<T> {
    /// Create a new mutex.
    pub const fn new(value: T) -> Self {
        Mutex(std::sync::Mutex::new(value))
    }

    /// Consume the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire the mutex, blocking until it is available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Attempt to acquire the mutex without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(g) => Some(g),
            Err(std::sync::TryLockError::Poisoned(p)) => Some(p.into_inner()),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive ownership).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

/// A reader-writer lock (non-poisoning `read()`/`write()` API).
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(std::sync::RwLock<T>);

impl<T> RwLock<T> {
    /// Create a new reader-writer lock.
    pub const fn new(value: T) -> Self {
        RwLock(std::sync::RwLock::new(value))
    }

    /// Consume the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquire shared read access.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(PoisonError::into_inner)
    }

    /// Acquire exclusive write access.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(PoisonError::into_inner)
    }

    /// Mutable access without locking (requires exclusive ownership).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_and_rwlock_roundtrip() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        let rw = RwLock::new(5);
        assert_eq!(*rw.read(), 5);
        *rw.write() = 6;
        assert_eq!(*rw.read(), 6);
    }
}
