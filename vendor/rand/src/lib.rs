//! Vendored stand-in for the `rand` crate.
//!
//! The build environment has no network access, so this shim implements
//! the subset of the `rand` 0.8 API the workspace uses: `StdRng`,
//! `SeedableRng::seed_from_u64`, and `Rng::{gen_range, gen_bool}` over
//! integer and float ranges. The generator is xoshiro256**, seeded via
//! splitmix64 — deterministic per seed, which is all the synthetic data
//! generators require (statistical quality is secondary).

use std::ops::{Range, RangeInclusive};

/// Raw 64-bit generator interface.
pub trait RngCore {
    /// Next raw 64 bits.
    fn next_u64(&mut self) -> u64;

    /// Next raw 32 bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Seedable construction (only `seed_from_u64` is provided).
pub trait SeedableRng: Sized {
    /// Build a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// The default generator: xoshiro256**.
#[derive(Debug, Clone)]
pub struct StdRng {
    s: [u64; 4],
}

impl SeedableRng for StdRng {
    fn seed_from_u64(seed: u64) -> Self {
        // Expand the seed with splitmix64, as the xoshiro authors
        // recommend, so nearby seeds produce unrelated streams.
        let mut x = seed;
        let mut next = move || {
            x = x.wrapping_add(0x9E3779B97F4A7C15);
            let mut z = x;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
            z ^ (z >> 31)
        };
        StdRng {
            s: [next(), next(), next(), next()],
        }
    }
}

impl RngCore for StdRng {
    fn next_u64(&mut self) -> u64 {
        let s = &mut self.s;
        let result = s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }
}

/// A range that can be sampled uniformly.
pub trait SampleRange<T> {
    /// Draw one value from the range.
    fn sample_from(self, rng: &mut dyn RngCore) -> T;
}

macro_rules! int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from(self, rng: &mut dyn RngCore) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let v = (rng.next_u64() as u128) % span;
                (self.start as i128 + v as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from(self, rng: &mut dyn RngCore) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range: empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let v = (rng.next_u64() as u128) % span;
                (lo as i128 + v as i128) as $t
            }
        }
    )*};
}

int_sample_range!(i8, i16, i32, i64, isize, u8, u16, u32, u64, usize);

macro_rules! float_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from(self, rng: &mut dyn RngCore) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                // 53 uniform mantissa bits in [0, 1).
                let unit = (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
                self.start + (self.end - self.start) * unit as $t
            }
        }
    )*};
}

float_sample_range!(f32, f64);

/// The user-facing generator interface.
pub trait Rng: RngCore {
    /// Uniform sample from `range`.
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T
    where
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// Bernoulli sample: `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p out of range");
        let unit = (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        unit < p
    }
}

impl<T: RngCore> Rng for T {}

/// Namespace parity with `rand::rngs`.
pub mod rngs {
    pub use super::StdRng;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        let va: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let vb: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        assert_eq!(va, vb);
        let mut c = StdRng::seed_from_u64(8);
        assert_ne!(va[0], c.next_u64());
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut r = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let i = r.gen_range(3..17);
            assert!((3..17).contains(&i));
            let j = r.gen_range(1..=10);
            assert!((1..=10).contains(&j));
            let f = r.gen_range(-2.5f64..4.5);
            assert!((-2.5..4.5).contains(&f));
            let u = r.gen_range(0..5usize);
            assert!(u < 5);
        }
    }

    #[test]
    fn gen_bool_respects_probability() {
        let mut r = StdRng::seed_from_u64(2);
        let hits = (0..10_000).filter(|_| r.gen_bool(0.25)).count();
        assert!((1_800..3_200).contains(&hits), "hits = {hits}");
        assert!(!r.gen_bool(0.0));
        assert!(r.gen_bool(1.0));
    }
}
