//! Vendored stand-in for the `proptest` crate.
//!
//! The build environment has no network access, so this shim implements
//! the subset of the proptest API this workspace's property tests use:
//! the `proptest!` macro, `Strategy` with `prop_map`, `Just`,
//! `prop_oneof!`, `any::<T>()`, numeric range strategies, regex-subset
//! string strategies, and `prop::collection::vec`. Cases are *generated
//! only* — there is no shrinking; a failing case panics with the
//! deterministic case index so it can be replayed.

pub mod strategy;
pub mod string;

/// `prop::...` namespace as re-exported by the real prelude.
pub mod prop {
    pub use crate::collection;
}

/// Collection strategies (`prop::collection::vec`).
pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::ops::Range;

    /// Strategy producing `Vec`s of values from `element`.
    pub struct VecStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    /// `Vec` strategy with length drawn from `size`.
    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        assert!(size.start < size.end, "collection::vec: empty size range");
        VecStrategy { element, size }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let n = rng.usize_in(self.size.start, self.size.end);
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Test-runner configuration and the deterministic RNG.
pub mod test_runner {
    /// Per-test configuration (only `cases` is honoured).
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of generated cases per test.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// Config running `cases` cases.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 64 }
        }
    }

    /// Deterministic generator (splitmix64 over a seed derived from the
    /// test name), so failures are reproducible run to run.
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// Seed deterministically from a label (the test name).
        pub fn deterministic(label: &str) -> Self {
            let mut h: u64 = 0xcbf29ce484222325;
            for b in label.bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x100000001b3);
            }
            TestRng { state: h }
        }

        /// Next raw 64 bits.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E3779B97F4A7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
            z ^ (z >> 31)
        }

        /// Uniform `usize` in `[lo, hi)`.
        pub fn usize_in(&mut self, lo: usize, hi: usize) -> usize {
            assert!(lo < hi);
            lo + (self.next_u64() as usize) % (hi - lo)
        }

        /// Uniform `f64` in `[0, 1)`.
        pub fn unit_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
        }
    }
}

/// Everything the property tests import.
pub mod prelude {
    pub use crate::prop;
    pub use crate::strategy::{any, Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

/// Choose uniformly among strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($strategy)),+
        ])
    };
}

/// Assert within a property (panics; this shim does not shrink).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)+) => { assert!($cond, $($fmt)+) };
}

/// Equality assert within a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr $(,)?) => { assert_eq!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)+) => { assert_eq!($a, $b, $($fmt)+) };
}

/// Inequality assert within a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr $(,)?) => { assert_ne!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)+) => { assert_ne!($a, $b, $($fmt)+) };
}

/// Define property tests: each named function runs `config.cases` times
/// with fresh inputs generated from the `in` strategies.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_tests! { config = $config; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_tests! {
            config = $crate::test_runner::ProptestConfig::default();
            $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_tests {
    (config = $config:expr; $(
        $(#[$attr:meta])*
        fn $name:ident($($parm:pat in $strategy:expr),+ $(,)?) $body:block
    )*) => {
        $(
            $(#[$attr])*
            fn $name() {
                let config = $config;
                let mut rng =
                    $crate::test_runner::TestRng::deterministic(stringify!($name));
                for case in 0..config.cases {
                    let run = |rng: &mut $crate::test_runner::TestRng| {
                        $(let $parm =
                            $crate::strategy::Strategy::generate(&($strategy), rng);)+
                        $body
                    };
                    let outcome = ::std::panic::catch_unwind(
                        ::std::panic::AssertUnwindSafe(|| run(&mut rng)),
                    );
                    if let Err(panic) = outcome {
                        eprintln!(
                            "proptest shim: {} failed at case {}/{} (deterministic seed)",
                            stringify!($name), case, config.cases,
                        );
                        ::std::panic::resume_unwind(panic);
                    }
                }
            }
        )*
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_and_vecs_stay_in_bounds(
            x in 3usize..10,
            v in prop::collection::vec(-5i64..5, 1..8),
            flag in any::<bool>(),
        ) {
            prop_assert!((3..10).contains(&x));
            prop_assert!(!v.is_empty() && v.len() < 8);
            prop_assert!(v.iter().all(|e| (-5..5).contains(e)));
            let _ = flag;
        }

        #[test]
        fn string_strategies_match_their_pattern(s in "[a-c][0-9]{2,4}") {
            let bytes = s.as_bytes();
            prop_assert!((3..=5).contains(&bytes.len()), "len of {s}");
            prop_assert!((b'a'..=b'c').contains(&bytes[0]));
            prop_assert!(bytes[1..].iter().all(u8::is_ascii_digit));
        }

        #[test]
        fn oneof_and_map_compose(
            v in prop_oneof![Just(1), Just(2), (3i32..5).prop_map(|x| x)],
        ) {
            prop_assert!((1..5).contains(&v));
        }
    }

    #[test]
    fn runs_are_deterministic() {
        let s = crate::strategy::Strategy::boxed("[a-z]{8}");
        let mut r1 = crate::test_runner::TestRng::deterministic("d");
        let mut r2 = crate::test_runner::TestRng::deterministic("d");
        assert_eq!(s.generate(&mut r1), s.generate(&mut r2));
    }
}
