//! Generation for the regex subset used as string strategies.
//!
//! Supported syntax: literal characters, character classes
//! `[a-z0-9_\n ]` (ranges and singletons, `\` escapes the next
//! character), and `{m}` / `{m,n}` repetition suffixes. This covers the
//! patterns the workspace's property tests use; unsupported constructs
//! are treated as literals, which keeps generation total.

use crate::test_runner::TestRng;

#[derive(Debug, Clone)]
enum Atom {
    Literal(char),
    /// Inclusive character ranges; singletons are `(c, c)`.
    Class(Vec<(char, char)>),
}

#[derive(Debug, Clone)]
struct Piece {
    atom: Atom,
    min: u32,
    max: u32,
}

fn parse(pattern: &str) -> Vec<Piece> {
    let chars: Vec<char> = pattern.chars().collect();
    let mut pieces = Vec::new();
    let mut i = 0;
    while i < chars.len() {
        let atom = match chars[i] {
            '[' => {
                let mut ranges = Vec::new();
                i += 1;
                while i < chars.len() && chars[i] != ']' {
                    let lo = if chars[i] == '\\' && i + 1 < chars.len() {
                        i += 1;
                        unescape(chars[i])
                    } else {
                        chars[i]
                    };
                    if i + 2 < chars.len() && chars[i + 1] == '-' && chars[i + 2] != ']' {
                        let hi = if chars[i + 2] == '\\' && i + 3 < chars.len() {
                            i += 1;
                            unescape(chars[i + 2])
                        } else {
                            chars[i + 2]
                        };
                        ranges.push((lo, hi));
                        i += 3;
                    } else {
                        ranges.push((lo, lo));
                        i += 1;
                    }
                }
                i += 1; // closing ']'
                if ranges.is_empty() {
                    ranges.push(('?', '?'));
                }
                Atom::Class(ranges)
            }
            '\\' if i + 1 < chars.len() => {
                i += 1;
                let c = unescape(chars[i]);
                i += 1;
                Atom::Literal(c)
            }
            c => {
                i += 1;
                Atom::Literal(c)
            }
        };
        // Optional {m} / {m,n} repetition.
        let (min, max) = if i < chars.len() && chars[i] == '{' {
            let close = chars[i..].iter().position(|&c| c == '}').map(|p| i + p);
            match close {
                Some(close) => {
                    let body: String = chars[i + 1..close].iter().collect();
                    i = close + 1;
                    match body.split_once(',') {
                        Some((m, n)) => {
                            (m.trim().parse().unwrap_or(0), n.trim().parse().unwrap_or(8))
                        }
                        None => {
                            let m = body.trim().parse().unwrap_or(1);
                            (m, m)
                        }
                    }
                }
                None => (1, 1),
            }
        } else {
            (1, 1)
        };
        pieces.push(Piece { atom, min, max });
    }
    pieces
}

fn unescape(c: char) -> char {
    match c {
        'n' => '\n',
        't' => '\t',
        'r' => '\r',
        '0' => '\0',
        other => other,
    }
}

fn sample_atom(atom: &Atom, rng: &mut TestRng) -> char {
    match atom {
        Atom::Literal(c) => *c,
        Atom::Class(ranges) => {
            let idx = rng.usize_in(0, ranges.len());
            let (lo, hi) = ranges[idx];
            let (lo, hi) = (lo as u32, (hi as u32).max(lo as u32));
            let v = lo + (rng.next_u64() as u32) % (hi - lo + 1);
            char::from_u32(v).unwrap_or(lo.try_into().unwrap_or('?'))
        }
    }
}

/// Generate one string matching `pattern`.
pub fn generate_matching(pattern: &str, rng: &mut TestRng) -> String {
    let mut out = String::new();
    for piece in parse(pattern) {
        let (min, max) = (piece.min, piece.max.max(piece.min));
        let n = if min == max {
            min
        } else {
            min + (rng.next_u64() as u32) % (max - min + 1)
        };
        for _ in 0..n {
            out.push(sample_atom(&piece.atom, rng));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rng() -> TestRng {
        TestRng::deterministic("string-tests")
    }

    #[test]
    fn literal_patterns_reproduce_themselves() {
        assert_eq!(generate_matching("Split", &mut rng()), "Split");
    }

    #[test]
    fn classes_and_reps_stay_in_bounds() {
        let mut r = rng();
        for _ in 0..200 {
            let s = generate_matching("[A-Z][a-z0-9]{2,5}X", &mut r);
            let cs: Vec<char> = s.chars().collect();
            assert!(cs.len() >= 4 && cs.len() <= 7, "{s}");
            assert!(cs[0].is_ascii_uppercase());
            assert_eq!(*cs.last().unwrap(), 'X');
        }
    }

    #[test]
    fn escapes_inside_classes() {
        let mut r = rng();
        for _ in 0..100 {
            let s = generate_matching("[ -~\n]{0,20}", &mut r);
            assert!(
                s.chars().all(|c| c == '\n' || (' '..='~').contains(&c)),
                "{s:?}"
            );
        }
    }
}
