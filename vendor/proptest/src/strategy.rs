//! The `Strategy` trait and the combinators the workspace uses.

use std::marker::PhantomData;
use std::ops::Range;

use crate::test_runner::TestRng;

/// A recipe for generating values (generation-only; no shrinking).
pub trait Strategy {
    /// The generated value type.
    type Value;

    /// Generate one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform generated values with `f`.
    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    /// Erase the concrete strategy type.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        Box::new(self)
    }
}

/// A boxed, type-erased strategy.
pub type BoxedStrategy<T> = Box<dyn Strategy<Value = T>>;

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        (**self).generate(rng)
    }
}

/// Strategy always producing a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// The result of [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// Uniform choice among boxed strategies (the `prop_oneof!` backend).
pub struct Union<T> {
    options: Vec<BoxedStrategy<T>>,
}

impl<T> Union<T> {
    /// Choose uniformly among `options`.
    pub fn new(options: Vec<BoxedStrategy<T>>) -> Self {
        assert!(!options.is_empty(), "prop_oneof! needs at least one option");
        Union { options }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        let i = rng.usize_in(0, self.options.len());
        self.options[i].generate(rng)
    }
}

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "range strategy: empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let v = (rng.next_u64() as u128) % span;
                (self.start as i128 + v as i128) as $t
            }
        }
    )*};
}

int_range_strategy!(i8, i16, i32, i64, isize, u8, u16, u32, u64, usize);

macro_rules! float_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "range strategy: empty range");
                self.start + (self.end - self.start) * rng.unit_f64() as $t
            }
        }
    )*};
}

float_range_strategy!(f32, f64);

/// String literals are regex-subset strategies (see [`crate::string`]).
impl Strategy for &'static str {
    type Value = String;
    fn generate(&self, rng: &mut TestRng) -> String {
        crate::string::generate_matching(self, rng)
    }
}

macro_rules! tuple_strategy {
    ($(($($s:ident / $idx:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}

tuple_strategy! {
    (A/0)
    (A/0, B/1)
    (A/0, B/1, C/2)
    (A/0, B/1, C/2, D/3)
    (A/0, B/1, C/2, D/3, E/4)
    (A/0, B/1, C/2, D/3, E/4, F/5)
}

/// Types with a canonical "any value" strategy.
pub trait Arbitrary: Sized {
    /// Generate an arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! int_arbitrary {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

int_arbitrary!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize);

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> f64 {
        // Finite, sign-symmetric, spanning several magnitudes.
        (rng.unit_f64() - 0.5) * 2e9
    }
}

/// The strategy returned by [`any`].
pub struct Any<T>(PhantomData<fn() -> T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// Strategy for any value of `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}
