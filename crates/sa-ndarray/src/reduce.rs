//! Merge-only split types for reduction operators ("we implemented
//! split types for each reduction operator to merge the partial
//! results: these only required merge functions", §7).

use std::ops::Range;
use std::sync::Arc;

use mozart_core::prelude::*;
use ndarray_lite::NdArray;

use crate::split::NdValue;

/// Re-mergeable partial mean: `(sum, count)`.
///
/// Keeping partials re-mergeable (instead of finishing to a scalar at
/// the worker level) is what makes the merge associative, the §3.4
/// requirement.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PartialMean {
    /// Partial sum.
    pub sum: f64,
    /// Partial count.
    pub count: u64,
}

impl PartialMean {
    /// The finished mean.
    pub fn value(&self) -> f64 {
        if self.count == 0 {
            f64::NAN
        } else {
            self.sum / self.count as f64
        }
    }
}

impl mozart_core::value::DataObject for PartialMean {
    fn type_name(&self) -> &'static str {
        "PartialMean"
    }
    fn as_any(&self) -> &dyn std::any::Any {
        self
    }
}

macro_rules! scalar_reduce {
    ($(#[$doc:meta])* $name:ident, $tyname:literal, $init:expr, $f:expr) => {
        $(#[$doc])*
        pub struct $name;

        impl $name {
            /// Shared instance.
            pub fn shared() -> Arc<dyn Splitter> {
                Arc::new($name)
            }
        }

        impl Splitter for $name {
            fn name(&self) -> &'static str {
                $tyname
            }
            /// sum/min/max folds are order-insensitive partial results.
            fn merge_strategy(&self) -> MergeStrategy {
                MergeStrategy::Commutative { terminal: true }
            }
            fn construct(&self, _ctor_args: &[&DataValue]) -> Result<Params> {
                Ok(vec![])
            }
            fn info(&self, _arg: &DataValue, _p: &Params) -> Result<RuntimeInfo> {
                Err(Error::Split {
                    split_type: $tyname,
                    message: "merge-only split type".into(),
                })
            }
            fn split(&self, _a: &DataValue, _r: Range<u64>, _p: &Params) -> Result<Option<DataValue>> {
                Err(Error::Split {
                    split_type: $tyname,
                    message: "merge-only split type".into(),
                })
            }
            fn merge(
                &self,
                pieces: Vec<DataValue>,
                _p: &Params,
                _total_elements: u64,
            ) -> Result<DataValue> {
                let f = $f;
                let mut acc: f64 = $init;
                for p in pieces {
                    let v = p.downcast_ref::<FloatValue>().ok_or_else(|| Error::Merge {
                        split_type: $tyname,
                        message: format!("expected FloatValue, got {}", p.type_name()),
                    })?;
                    acc = f(acc, v.0);
                }
                Ok(DataValue::new(FloatValue(acc)))
            }
        }
    };
}

scalar_reduce!(
    /// Merge for full `sum` reductions.
    SumReduce, "SumReduce", 0.0, |a: f64, b: f64| a + b
);
scalar_reduce!(
    /// Merge for full `min` reductions.
    MinReduce, "MinReduce", f64::INFINITY, f64::min
);
scalar_reduce!(
    /// Merge for full `max` reductions.
    MaxReduce, "MaxReduce", f64::NEG_INFINITY, f64::max
);

/// Merge for full `mean` reductions over [`PartialMean`] pieces.
pub struct MeanReduce;

impl MeanReduce {
    /// Shared instance.
    pub fn shared() -> Arc<dyn Splitter> {
        Arc::new(MeanReduce)
    }
}

impl Splitter for MeanReduce {
    fn name(&self) -> &'static str {
        "MeanReduce"
    }

    /// Partial (sum, count) pairs fold in any order.
    fn merge_strategy(&self) -> MergeStrategy {
        MergeStrategy::Commutative { terminal: true }
    }
    fn construct(&self, _ctor_args: &[&DataValue]) -> Result<Params> {
        Ok(vec![])
    }
    fn info(&self, _arg: &DataValue, _p: &Params) -> Result<RuntimeInfo> {
        Err(Error::Split {
            split_type: "MeanReduce",
            message: "merge-only".into(),
        })
    }
    fn split(&self, _a: &DataValue, _r: Range<u64>, _p: &Params) -> Result<Option<DataValue>> {
        Err(Error::Split {
            split_type: "MeanReduce",
            message: "merge-only".into(),
        })
    }
    fn merge(
        &self,
        pieces: Vec<DataValue>,
        _p: &Params,
        _total_elements: u64,
    ) -> Result<DataValue> {
        let mut sum = 0.0;
        let mut count = 0u64;
        for p in pieces {
            let v = p
                .downcast_ref::<PartialMean>()
                .ok_or_else(|| Error::Merge {
                    split_type: "MeanReduce",
                    message: format!("expected PartialMean, got {}", p.type_name()),
                })?;
            sum += v.sum;
            count += v.count;
        }
        Ok(DataValue::new(PartialMean { sum, count }))
    }
}

/// Merge for axis reductions (Listing 4's Ex. 5 `ReduceSplit<axis>`):
/// partial vectors from row chunks either sum elementwise (`axis = 0`,
/// reduced *across* rows) or concatenate (`axis = 1`, reduced *within*
/// rows). Parameter: the axis.
pub struct AxisReduce;

impl AxisReduce {
    /// Shared instance.
    pub fn shared() -> Arc<dyn Splitter> {
        Arc::new(AxisReduce)
    }
}

impl Splitter for AxisReduce {
    fn name(&self) -> &'static str {
        "AxisReduce"
    }

    /// Partial axis reductions must merge before further use; the merge
    /// is order-sensitive (axis 1 concatenates per-row results).
    fn merge_strategy(&self) -> MergeStrategy {
        MergeStrategy::Custom { terminal: true }
    }

    /// Constructor from the `axis` argument (the paper's
    /// `ReduceSplit(axis)`).
    fn construct(&self, ctor_args: &[&DataValue]) -> Result<Params> {
        let axis = ctor_args
            .first()
            .and_then(|v| mozart_core::value::as_i64(v))
            .ok_or_else(|| Error::Constructor {
                split_type: "AxisReduce",
                message: "expected integer axis argument".into(),
            })?;
        Ok(vec![axis])
    }

    fn info(&self, _arg: &DataValue, _p: &Params) -> Result<RuntimeInfo> {
        Err(Error::Split {
            split_type: "AxisReduce",
            message: "merge-only".into(),
        })
    }

    fn split(&self, _a: &DataValue, _r: Range<u64>, _p: &Params) -> Result<Option<DataValue>> {
        Err(Error::Split {
            split_type: "AxisReduce",
            message: "merge-only".into(),
        })
    }

    fn merge(
        &self,
        pieces: Vec<DataValue>,
        params: &Params,
        _total_elements: u64,
    ) -> Result<DataValue> {
        let axis = params.first().copied().unwrap_or(0);
        let arrays: Vec<NdArray> = pieces
            .iter()
            .map(|p| {
                p.downcast_ref::<NdValue>()
                    .map(|v| v.0.clone())
                    .ok_or_else(|| Error::Merge {
                        split_type: "AxisReduce",
                        message: format!("expected NdValue piece, got {}", p.type_name()),
                    })
            })
            .collect::<Result<_>>()?;
        if axis == 0 {
            // Partial column-vectors: elementwise sum.
            let mut acc = arrays[0].clone();
            for a in &arrays[1..] {
                acc = ndarray_lite::add(&acc, a);
            }
            Ok(DataValue::new(NdValue(acc)))
        } else {
            // Per-row results: concatenate in row order.
            Ok(DataValue::new(NdValue(ndarray_lite::concat(&arrays))))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_merges() {
        let mk = |x: f64| DataValue::new(FloatValue(x));
        let s = SumReduce.merge(vec![mk(1.0), mk(2.5)], &vec![], 0).unwrap();
        assert_eq!(s.downcast_ref::<FloatValue>().unwrap().0, 3.5);
        let m = MinReduce
            .merge(vec![mk(4.0), mk(-1.0)], &vec![], 0)
            .unwrap();
        assert_eq!(m.downcast_ref::<FloatValue>().unwrap().0, -1.0);
        let m = MaxReduce
            .merge(vec![mk(4.0), mk(-1.0)], &vec![], 0)
            .unwrap();
        assert_eq!(m.downcast_ref::<FloatValue>().unwrap().0, 4.0);
    }

    #[test]
    fn mean_reduce_is_weighted_and_associative() {
        let p = |sum: f64, count: u64| DataValue::new(PartialMean { sum, count });
        // Unequal chunk sizes: naive mean-of-means would be wrong.
        let all = MeanReduce
            .merge(vec![p(10.0, 1), p(2.0, 4)], &vec![], 0)
            .unwrap();
        let got = all.downcast_ref::<PartialMean>().unwrap();
        assert_eq!(got.value(), 12.0 / 5.0);
        // Associativity: merge of merges equals flat merge.
        let left = MeanReduce.merge(vec![p(10.0, 1)], &vec![], 0).unwrap();
        let nested = MeanReduce.merge(vec![left, p(2.0, 4)], &vec![], 0).unwrap();
        assert_eq!(*nested.downcast_ref::<PartialMean>().unwrap(), *got);
    }

    #[test]
    fn axis_reduce_merges_by_axis() {
        let nd = |a: NdArray| DataValue::new(NdValue(a));
        // axis 0: partials add elementwise.
        let p1 = nd(NdArray::from_vec(vec![1.0, 2.0]));
        let p2 = nd(NdArray::from_vec(vec![10.0, 20.0]));
        let m = AxisReduce.merge(vec![p1, p2], &vec![0], 0).unwrap();
        assert_eq!(
            m.downcast_ref::<NdValue>().unwrap().0.as_slice(),
            &[11.0, 22.0]
        );
        // axis 1: partials concatenate.
        let p1 = nd(NdArray::from_vec(vec![1.0, 2.0]));
        let p2 = nd(NdArray::from_vec(vec![3.0]));
        let m = AxisReduce.merge(vec![p1, p2], &vec![1], 0).unwrap();
        assert_eq!(
            m.downcast_ref::<NdValue>().unwrap().0.as_slice(),
            &[1.0, 2.0, 3.0]
        );
    }

    #[test]
    fn axis_constructor_reads_axis_argument() {
        let axis = DataValue::new(IntValue(1));
        assert_eq!(AxisReduce.construct(&[&axis]).unwrap(), vec![1]);
        // ReduceSplit<0> != ReduceSplit<1>.
        let a = SplitInstance::new(AxisReduce::shared(), vec![0]);
        let b = SplitInstance::new(AxisReduce::shared(), vec![1]);
        assert!(!a.same_type(&b));
    }
}
