//! # sa-ndarray — split annotations for the `ndarray-lite` library
//!
//! The annotator-side integration for the NumPy stand-in (§7 "NumPy"):
//! "We implemented a single split type for ndarray, whose splitting
//! behavior depends on its shape ... We added SAs over all tensor
//! unary, binary, and associative reduction operators. We implemented
//! split types for each reduction operator to merge the partial
//! results: these only required merge functions."
//!
//! * [`NdSplit`] splits arrays by their leading axis (rows), returning
//!   zero-copy views; results are fresh arrays merged by concatenation
//!   (the functional NumPy convention).
//! * [`reduce`] holds the merge-only split types for reductions,
//!   including the axis reductions of Listing 4's Ex. 5.
//!
//! The `ndarray-lite` crate itself is not modified.

#![warn(missing_docs)]

pub mod reduce;
pub mod split;
pub mod wrappers;

pub use split::{NdSplit, NdValue};
pub use wrappers::*;

use mozart_core::prelude::*;
use ndarray_lite::NdArray;

/// Register this integration's default split types. Idempotent.
pub fn register_defaults() {
    mozart_core::registry::register_default_splitter::<NdValue>(std::sync::Arc::new(NdSplit));
    for a in wrappers::annotations() {
        mozart_core::registry::register_annotation(a);
    }
}

/// Values accepted by the annotated wrappers: concrete arrays or lazy
/// results of earlier wrapped calls (the paper's `Future<T>` arguments).
pub trait NdArg {
    /// Convert to a Mozart argument value.
    fn to_value(&self) -> DataValue;
}

impl NdArg for NdArray {
    fn to_value(&self) -> DataValue {
        DataValue::new(NdValue(self.clone()))
    }
}

impl NdArg for FutureHandle {
    fn to_value(&self) -> DataValue {
        self.as_value()
    }
}

impl NdArg for DataValue {
    fn to_value(&self) -> DataValue {
        self.clone()
    }
}

/// Materialize a lazy wrapper result as an [`NdArray`].
pub fn get(f: &FutureHandle) -> Result<NdArray> {
    let dv = f.get()?;
    dv.downcast_ref::<NdValue>()
        .map(|v| v.0.clone())
        .ok_or(Error::ArgType {
            function: "sa_ndarray::get",
            arg: 0,
            expected: "NdValue",
            actual: dv.type_name(),
        })
}

/// Materialize a lazy scalar reduction result.
pub fn get_scalar(f: &FutureHandle) -> Result<f64> {
    let dv = f.get()?;
    if let Some(v) = dv.downcast_ref::<FloatValue>() {
        return Ok(v.0);
    }
    if let Some(p) = dv.downcast_ref::<reduce::PartialMean>() {
        return Ok(p.value());
    }
    Err(Error::ArgType {
        function: "sa_ndarray::get_scalar",
        arg: 0,
        expected: "FloatValue or PartialMean",
        actual: dv.type_name(),
    })
}
