//! Annotated wrapper functions over unmodified `ndarray-lite`
//! operators. Binary/unary operators use generics (Listing 4 Ex. 2–3);
//! reductions return merge-only split types (Ex. 5).

use std::sync::{Arc, LazyLock};

use mozart_core::annotation::{concrete, generic, missing};
use mozart_core::prelude::*;
use ndarray_lite as nd;

use crate::reduce::{AxisReduce, MaxReduce, MeanReduce, MinReduce, PartialMean, SumReduce};
use crate::split::NdValue;
use crate::NdArg;

fn nd_piece(inv: &Invocation<'_>, i: usize) -> Result<nd::NdArray> {
    Ok(inv.arg::<NdValue>(i)?.0.clone())
}

macro_rules! nd_sa_binary {
    ($(#[$doc:meta])* $name:ident, $annot:ident, $f:path) => {
        static $annot: LazyLock<Arc<Annotation>> = LazyLock::new(|| {
            Annotation::new(stringify!($name), |inv| {
                let a = nd_piece(inv, 0)?;
                let b = nd_piece(inv, 1)?;
                Ok(Some(DataValue::new(NdValue($f(&a, &b)))))
            })
            // @splittable(left: S, right: S) -> S   (Ex. 2)
            .arg("left", generic(0))
            .arg("right", generic(0))
            .ret(generic(0))
            .build()
        });

        $(#[$doc])*
        pub fn $name(ctx: &MozartContext, a: &impl NdArg, b: &impl NdArg) -> Result<FutureHandle> {
            let fut = ctx.call(&$annot, vec![a.to_value(), b.to_value()])?;
            Ok(fut.expect("binary op returns a value"))
        }
    };
}

macro_rules! nd_sa_unary {
    ($(#[$doc:meta])* $name:ident, $annot:ident, $f:path) => {
        static $annot: LazyLock<Arc<Annotation>> = LazyLock::new(|| {
            Annotation::new(stringify!($name), |inv| {
                let a = nd_piece(inv, 0)?;
                Ok(Some(DataValue::new(NdValue($f(&a)))))
            })
            .arg("a", generic(0))
            .ret(generic(0))
            .build()
        });

        $(#[$doc])*
        pub fn $name(ctx: &MozartContext, a: &impl NdArg) -> Result<FutureHandle> {
            let fut = ctx.call(&$annot, vec![a.to_value()])?;
            Ok(fut.expect("unary op returns a value"))
        }
    };
}

macro_rules! nd_sa_scalar {
    ($(#[$doc:meta])* $name:ident, $annot:ident, $f:path) => {
        static $annot: LazyLock<Arc<Annotation>> = LazyLock::new(|| {
            Annotation::new(stringify!($name), |inv| {
                let a = nd_piece(inv, 0)?;
                let k = inv.float(1)?;
                Ok(Some(DataValue::new(NdValue($f(&a, k)))))
            })
            // @splittable(a: S, k: _) -> S   (Ex. 3 shape)
            .arg("a", generic(0))
            .arg("k", missing())
            .ret(generic(0))
            .build()
        });

        $(#[$doc])*
        pub fn $name(ctx: &MozartContext, a: &impl NdArg, k: f64) -> Result<FutureHandle> {
            let fut = ctx.call(&$annot, vec![a.to_value(), DataValue::new(FloatValue(k))])?;
            Ok(fut.expect("scalar op returns a value"))
        }
    };
}

nd_sa_binary!(
    /// Annotated elementwise `a + b` (same shape).
    add, ADD, nd::add
);
nd_sa_binary!(
    /// Annotated elementwise `a - b`.
    sub, SUB, nd::sub
);
nd_sa_binary!(
    /// Annotated elementwise `a * b`.
    mul, MUL, nd::mul
);
nd_sa_binary!(
    /// Annotated elementwise `a / b`.
    div, DIV, nd::div
);
nd_sa_binary!(
    /// Annotated elementwise `a ^ b`.
    pow, POW, nd::pow
);
nd_sa_binary!(
    /// Annotated elementwise maximum.
    maximum, MAXIMUM, nd::maximum
);
nd_sa_binary!(
    /// Annotated elementwise minimum.
    minimum, MINIMUM, nd::minimum
);

nd_sa_unary!(
    /// Annotated elementwise square root.
    sqrt, SQRT, nd::sqrt
);
nd_sa_unary!(
    /// Annotated elementwise `e^x`.
    exp, EXP, nd::exp
);
nd_sa_unary!(
    /// Annotated elementwise natural log.
    ln, LN, nd::ln
);
nd_sa_unary!(
    /// Annotated elementwise `ln(1+x)`.
    log1p, LOG1P, nd::log1p
);
nd_sa_unary!(
    /// Annotated elementwise error function.
    erf, ERF, nd::erf
);
nd_sa_unary!(
    /// Annotated elementwise sine.
    sin, SIN, nd::sin
);
nd_sa_unary!(
    /// Annotated elementwise cosine.
    cos, COS, nd::cos
);
nd_sa_unary!(
    /// Annotated elementwise arcsine.
    asin, ASIN, nd::asin
);
nd_sa_unary!(
    /// Annotated elementwise absolute value.
    abs, ABS, nd::abs
);
nd_sa_unary!(
    /// Annotated elementwise square.
    square, SQUARE, nd::square
);
nd_sa_unary!(
    /// Annotated elementwise negation.
    neg, NEG, nd::neg
);
nd_sa_unary!(
    /// Annotated elementwise reciprocal.
    recip, RECIP, nd::recip
);

nd_sa_scalar!(
    /// Annotated `a * k`.
    mul_scalar, MUL_SCALAR, nd::mul_scalar
);
nd_sa_scalar!(
    /// Annotated `a + k`.
    add_scalar, ADD_SCALAR, nd::add_scalar
);
nd_sa_scalar!(
    /// Annotated `a ^ k`.
    pow_scalar, POW_SCALAR, nd::pow_scalar
);
nd_sa_scalar!(
    /// Annotated `k - a`.
    rsub_scalar, RSUB_SCALAR, nd::rsub_scalar
);
nd_sa_scalar!(
    /// Annotated `k / a`.
    rdiv_scalar, RDIV_SCALAR, nd::rdiv_scalar
);
nd_sa_scalar!(
    /// Annotated `a - k`.
    sub_scalar, SUB_SCALAR, nd::sub_scalar
);
nd_sa_scalar!(
    /// Annotated `a / k`.
    div_scalar, DIV_SCALAR, nd::div_scalar
);

/// Annotated broadcast `matrix + row-vector` — the row vector is
/// copied to every pipeline (`_` split type), so the matrix's split is
/// unconstrained.
static ADD_ROWVEC: LazyLock<Arc<Annotation>> = LazyLock::new(|| {
    Annotation::new("add_rowvec", |inv| {
        let a = nd_piece(inv, 0)?;
        let v = nd_piece(inv, 1)?;
        Ok(Some(DataValue::new(NdValue(nd::add(&a, &v)))))
    })
    .arg("a", generic(0))
    .arg("v", missing())
    .ret(generic(0))
    .build()
});

/// Annotated broadcast add of a row vector to every row of `a`.
pub fn add_rowvec(ctx: &MozartContext, a: &impl NdArg, v: &impl NdArg) -> Result<FutureHandle> {
    let fut = ctx.call(&ADD_ROWVEC, vec![a.to_value(), v.to_value()])?;
    Ok(fut.expect("returns a value"))
}

/// Annotated broadcast `matrix * row-vector`.
static MUL_ROWVEC: LazyLock<Arc<Annotation>> = LazyLock::new(|| {
    Annotation::new("mul_rowvec", |inv| {
        let a = nd_piece(inv, 0)?;
        let v = nd_piece(inv, 1)?;
        Ok(Some(DataValue::new(NdValue(nd::mul(&a, &v)))))
    })
    .arg("a", generic(0))
    .arg("v", missing())
    .ret(generic(0))
    .build()
});

/// Annotated broadcast multiply of a row vector into every row of `a`.
pub fn mul_rowvec(ctx: &MozartContext, a: &impl NdArg, v: &impl NdArg) -> Result<FutureHandle> {
    let fut = ctx.call(&MUL_ROWVEC, vec![a.to_value(), v.to_value()])?;
    Ok(fut.expect("returns a value"))
}

/// Annotated `roll` along axis 1 (within-row permutation — row splits
/// compose). Axis-0 roll moves data between rows and is deliberately
/// NOT annotated; call `ndarray_lite::roll` directly on materialized
/// data for that case (a stage boundary, as in Shallow Water §8.2).
static ROLL_AXIS1: LazyLock<Arc<Annotation>> = LazyLock::new(|| {
    Annotation::new("roll_axis1", |inv| {
        let a = nd_piece(inv, 0)?;
        let k = inv.int(1)?;
        Ok(Some(DataValue::new(NdValue(nd::roll(&a, k, 1)))))
    })
    .arg("a", generic(0))
    .arg("k", missing())
    .ret(generic(0))
    .build()
});

/// Annotated circular shift within rows.
pub fn roll_axis1(ctx: &MozartContext, a: &impl NdArg, k: i64) -> Result<FutureHandle> {
    let fut = ctx.call(&ROLL_AXIS1, vec![a.to_value(), DataValue::new(IntValue(k))])?;
    Ok(fut.expect("returns a value"))
}

// ----------------------------- reductions ------------------------------

macro_rules! nd_sa_full_reduce {
    ($(#[$doc:meta])* $name:ident, $annot:ident, $f:path, $merger:expr) => {
        static $annot: LazyLock<Arc<Annotation>> = LazyLock::new(|| {
            Annotation::new(stringify!($name), |inv| {
                let a = nd_piece(inv, 0)?;
                Ok(Some(DataValue::new(FloatValue($f(&a)))))
            })
            .arg("a", generic(0))
            .ret(concrete($merger, vec![]))
            .build()
        });

        $(#[$doc])*
        pub fn $name(ctx: &MozartContext, a: &impl NdArg) -> Result<FutureHandle> {
            let fut = ctx.call(&$annot, vec![a.to_value()])?;
            Ok(fut.expect("reduction returns a value"))
        }
    };
}

nd_sa_full_reduce!(
    /// Annotated full sum; partials merge additively.
    sum, SUM, nd::sum, SumReduce::shared()
);
nd_sa_full_reduce!(
    /// Annotated full min.
    min, MIN, nd::min, MinReduce::shared()
);
nd_sa_full_reduce!(
    /// Annotated full max.
    max, MAX, nd::max, MaxReduce::shared()
);

static MEAN: LazyLock<Arc<Annotation>> = LazyLock::new(|| {
    Annotation::new("mean", |inv| {
        let a = nd_piece(inv, 0)?;
        Ok(Some(DataValue::new(PartialMean {
            sum: nd::sum(&a),
            count: a.len() as u64,
        })))
    })
    .arg("a", generic(0))
    .ret(concrete(MeanReduce::shared(), vec![]))
    .build()
});

/// Annotated full mean; partials carry `(sum, count)` so unequal batch
/// sizes merge correctly.
pub fn mean(ctx: &MozartContext, a: &impl NdArg) -> Result<FutureHandle> {
    let fut = ctx.call(&MEAN, vec![a.to_value()])?;
    Ok(fut.expect("mean returns a value"))
}

/// Listing 4 Ex. 5: `sumReduceToVector` — reduce a matrix to a vector
/// along `axis`, with a `ReduceSplit<axis>`-merged result.
static SUM_AXIS: LazyLock<Arc<Annotation>> = LazyLock::new(|| {
    Annotation::new("sum_axis", |inv| {
        let a = nd_piece(inv, 0)?;
        let axis = inv.int(1)? as usize;
        Ok(Some(DataValue::new(NdValue(nd::sum_axis(&a, axis)))))
    })
    // @splittable(m: S, axis: _) -> ReduceSplit(axis)
    .arg("m", generic(0))
    .arg("axis", missing())
    .ret(concrete(AxisReduce::shared(), vec![1]))
    .build()
});

/// Annotated axis sum over row-split matrices.
pub fn sum_axis(ctx: &MozartContext, a: &impl NdArg, axis: usize) -> Result<FutureHandle> {
    let fut = ctx.call(
        &SUM_AXIS,
        vec![a.to_value(), DataValue::new(IntValue(axis as i64))],
    )?;
    Ok(fut.expect("sum_axis returns a value"))
}

/// Every annotation this integration defines, in declaration order —
/// the walk surface for static tooling (`mozart-check`).
pub fn annotations() -> Vec<Arc<Annotation>> {
    vec![
        ADD.clone(),
        SUB.clone(),
        MUL.clone(),
        DIV.clone(),
        POW.clone(),
        MAXIMUM.clone(),
        MINIMUM.clone(),
        SQRT.clone(),
        EXP.clone(),
        LN.clone(),
        LOG1P.clone(),
        ERF.clone(),
        SIN.clone(),
        COS.clone(),
        ASIN.clone(),
        ABS.clone(),
        SQUARE.clone(),
        NEG.clone(),
        RECIP.clone(),
        MUL_SCALAR.clone(),
        ADD_SCALAR.clone(),
        POW_SCALAR.clone(),
        RSUB_SCALAR.clone(),
        RDIV_SCALAR.clone(),
        SUB_SCALAR.clone(),
        DIV_SCALAR.clone(),
        ADD_ROWVEC.clone(),
        MUL_ROWVEC.clone(),
        ROLL_AXIS1.clone(),
        SUM.clone(),
        MIN.clone(),
        MAX.clone(),
        MEAN.clone(),
        SUM_AXIS.clone(),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{get, get_scalar};
    use ndarray_lite::NdArray;

    fn ctx() -> MozartContext {
        crate::register_defaults();
        let mut cfg = Config::with_workers(2);
        cfg.batch_override = Some(9);
        cfg.pedantic = true;
        MozartContext::new(cfg)
    }

    #[test]
    fn functional_chain_pipelines() {
        let c = ctx();
        let x = NdArray::linspace(0.0, 1.0, 100);
        let y = NdArray::full(&[100], 2.0);
        // z = sqrt(x * y) + x
        let xy = mul(&c, &x, &y).unwrap();
        let s = sqrt(&c, &xy).unwrap();
        let z = add(&c, &s, &x).unwrap();
        let out = get(&z).unwrap();
        for i in 0..100 {
            let expect = (x.get(i) * 2.0).sqrt() + x.get(i);
            assert!((out.get(i) - expect).abs() < 1e-12, "index {i}");
        }
        assert_eq!(c.stats().stages, 1);
    }

    #[test]
    fn full_reductions_match_library() {
        let c = ctx();
        let x = NdArray::linspace(-3.0, 14.0, 57);
        assert!((get_scalar(&sum(&c, &x).unwrap()).unwrap() - nd::sum(&x)).abs() < 1e-9);
        assert_eq!(get_scalar(&min(&c, &x).unwrap()).unwrap(), nd::min(&x));
        assert_eq!(get_scalar(&max(&c, &x).unwrap()).unwrap(), nd::max(&x));
        let m = get_scalar(&mean(&c, &x).unwrap()).unwrap();
        assert!((m - nd::mean(&x)).abs() < 1e-12);
    }

    #[test]
    fn axis_reductions_both_axes() {
        let c = ctx();
        let m = NdArray::from_shape_vec(&[20, 3], (0..60).map(|i| i as f64).collect());
        let by_cols = get(&sum_axis(&c, &m, 0).unwrap()).unwrap();
        assert_eq!(by_cols, nd::sum_axis(&m, 0));
        let by_rows = get(&sum_axis(&c, &m, 1).unwrap()).unwrap();
        assert_eq!(by_rows, nd::sum_axis(&m, 1));
    }

    #[test]
    fn different_axis_reductions_do_not_pipeline_with_each_other() {
        // The §3.1 example: same function, different axis arguments =>
        // different (dependent) split types.
        let c = ctx();
        let m = NdArray::from_shape_vec(&[12, 4], (0..48).map(|i| i as f64).collect());
        let r0 = sum_axis(&c, &m, 0).unwrap();
        let r1 = sum_axis(&c, &m, 1).unwrap();
        assert_eq!(get(&r0).unwrap(), nd::sum_axis(&m, 0));
        assert_eq!(get(&r1).unwrap(), nd::sum_axis(&m, 1));
    }

    #[test]
    fn broadcast_and_roll_wrappers() {
        let c = ctx();
        let m = NdArray::from_shape_vec(&[30, 2], (0..60).map(|i| i as f64).collect());
        let v = NdArray::from_vec(vec![100.0, 200.0]);
        let out = get(&add_rowvec(&c, &m, &v).unwrap()).unwrap();
        assert_eq!(out.at(0, 1), 201.0);
        assert_eq!(out.at(29, 0), 158.0);

        let rolled = get(&roll_axis1(&c, &m, 1).unwrap()).unwrap();
        assert_eq!(rolled, nd::roll(&m, 1, 1));
    }

    #[test]
    fn mean_is_exact_with_uneven_batches() {
        // batch_override = 9 does not divide 100: unequal piece sizes.
        let c = ctx();
        let x = NdArray::linspace(1.0, 7.0, 100);
        let m = get_scalar(&mean(&c, &x).unwrap()).unwrap();
        assert!((m - 4.0).abs() < 1e-12);
    }

    #[test]
    fn pipelined_map_then_reduce_single_stage() {
        let c = ctx();
        let x = NdArray::full(&[64], 3.0);
        let sq = square(&c, &x).unwrap();
        let total = sum(&c, &sq).unwrap();
        assert_eq!(get_scalar(&total).unwrap(), 9.0 * 64.0);
        assert_eq!(c.stats().stages, 1);
    }
}
