//! The `NdSplit` split type: shape-parameterized row splitting of
//! [`NdArray`] values.
//!
//! Merges are leading-axis concatenation with **placement** support:
//! the shape parameters `(d0, d1)` fully determine the output layout,
//! so the runtime preallocates the merged array at stage start and
//! workers copy their result rows in at their offsets
//! ([`NdArray::write_rows_at`]) — no per-piece collection, no final
//! O(total) concat. `NdSplit` also exposes the [`Concat`] capability
//! (the inverse of `split`) for the serving layer's generic
//! cross-request coalescing.

use std::ops::Range;

use std::sync::Arc;

use mozart_core::prelude::*;
use ndarray_lite::NdArray;

/// `DataValue` wrapper for [`NdArray`].
///
/// Arrays are immutable/functional, so no stable identity or protection
/// flag is needed: results flow through `Future`s, never in-place.
#[derive(Debug, Clone)]
pub struct NdValue(pub NdArray);

impl mozart_core::value::DataObject for NdValue {
    fn type_name(&self) -> &'static str {
        "NdValue"
    }
    fn as_any(&self) -> &dyn std::any::Any {
        self
    }
}

/// Split type for `NdValue`: parameters are the array shape
/// `(d0, d1)` with `d1 = 0` for rank-1 arrays (the paper's "single
/// split type for ndarray, whose splitting behavior depends on its
/// shape"). Splits are zero-copy leading-axis views; merges
/// concatenate along the leading axis.
pub struct NdSplit;

impl NdSplit {
    fn params_of(a: &NdArray) -> Params {
        match a.shape() {
            [n] => vec![*n as i64, 0],
            [r, c] => vec![*r as i64, *c as i64],
            other => unreachable!("rank {} arrays are unrepresentable", other.len()),
        }
    }
}

impl Splitter for NdSplit {
    fn name(&self) -> &'static str {
        "NdSplit"
    }

    /// Constructor from the array argument itself (shape-derived).
    fn construct(&self, ctor_args: &[&DataValue]) -> Result<Params> {
        let a = ctor_args
            .first()
            .and_then(|v| v.downcast_ref::<NdValue>())
            .ok_or_else(|| Error::Constructor {
                split_type: "NdSplit",
                message: "expected an ndarray argument".into(),
            })?;
        Ok(Self::params_of(&a.0))
    }

    fn info(&self, _arg: &DataValue, params: &Params) -> Result<RuntimeInfo> {
        let d0 = params.first().copied().unwrap_or(0).max(0) as u64;
        let d1 = params.get(1).copied().unwrap_or(0).max(1) as u64;
        Ok(RuntimeInfo {
            total_elements: d0,
            elem_size_bytes: d1 * std::mem::size_of::<f64>() as u64,
        })
    }

    fn split(
        &self,
        arg: &DataValue,
        range: Range<u64>,
        params: &Params,
    ) -> Result<Option<DataValue>> {
        let a = arg.downcast_ref::<NdValue>().ok_or_else(|| Error::Split {
            split_type: "NdSplit",
            message: format!("expected NdValue, got {}", arg.type_name()),
        })?;
        if Self::params_of(&a.0) != *params {
            return Err(Error::Split {
                split_type: "NdSplit",
                message: format!(
                    "array shape {:?} does not match split type parameters {params:?}",
                    a.0.shape()
                ),
            });
        }
        let d0 = params[0].max(0) as u64;
        if range.start >= d0 {
            return Ok(None);
        }
        let end = range.end.min(d0);
        Ok(Some(DataValue::new(NdValue(
            a.0.view_rows(range.start as usize, end as usize),
        ))))
    }

    fn merge(
        &self,
        pieces: Vec<DataValue>,
        _params: &Params,
        _total_elements: u64,
    ) -> Result<DataValue> {
        let arrays: Vec<NdArray> = pieces
            .iter()
            .map(|p| {
                p.downcast_ref::<NdValue>()
                    .map(|v| v.0.clone())
                    .ok_or_else(|| Error::Merge {
                        split_type: "NdSplit",
                        message: format!("expected NdValue piece, got {}", p.type_name()),
                    })
            })
            .collect::<Result<_>>()?;
        Ok(DataValue::new(NdValue(ndarray_lite::concat(&arrays))))
    }

    fn merge_strategy(&self) -> MergeStrategy {
        MergeStrategy::Concat {
            placement: Some(Arc::new(NdSplit)),
        }
    }

    fn concat(&self) -> Option<Arc<dyn Concat>> {
        Some(Arc::new(NdSplit))
    }
}

impl Placement for NdSplit {
    fn alloc_merged(
        &self,
        total_elements: u64,
        params: &Params,
        exemplar: Option<&DataValue>,
    ) -> Result<Option<DataValue>> {
        // `(d0, d1)` with `d1 > 0` is unambiguously a rank-2 layout, so
        // allocation happens at stage start (exemplar not needed):
        // first-touch page faults run on the caller while the pool is
        // still parked. `d1 == 0` encodes BOTH rank-1 arrays and
        // degenerate zero-column matrices (`params_of` conflates them),
        // so those wait for the first piece and take its rank.
        // `total_elements` replaces `d0` — a stage's element total can
        // exceed one input's row count only if the annotation is
        // broken, and `write_piece` bounds-checks anyway.
        let d1 = params.get(1).copied().unwrap_or(0).max(0) as usize;
        let shape: Vec<usize> = if d1 > 0 {
            vec![total_elements as usize, d1]
        } else {
            match exemplar.and_then(|e| e.downcast_ref::<NdValue>()) {
                None => return Ok(None), // stage-start probe: rank unknown yet
                Some(e) if e.0.ndim() == 1 => vec![total_elements as usize],
                // Zero-column rank-2 pieces: nothing to place, and the
                // concat merge handles the empty payload fine.
                Some(_) => return Ok(None),
            }
        };
        // SAFETY: the executor's coverage check guarantees every row of
        // the placement output is written before the merged value is
        // released (or it is truncated to a view of the written
        // prefix), so the unspecified initial contents are never read.
        let out = unsafe { NdArray::alloc_rows_uninit(&shape) };
        Ok(Some(DataValue::new(NdValue(out))))
    }

    fn write_piece(&self, out: &DataValue, offset: u64, piece: &DataValue) -> Result<u64> {
        let dst = out.downcast_ref::<NdValue>().ok_or_else(|| Error::Merge {
            split_type: "NdSplit",
            message: format!("placement output is {}, not NdValue", out.type_name()),
        })?;
        let band = piece
            .downcast_ref::<NdValue>()
            .ok_or_else(|| Error::Merge {
                split_type: "NdSplit",
                message: format!("expected NdValue piece, got {}", piece.type_name()),
            })?;
        let offset = offset as usize;
        let rows = band.0.shape()[0];
        if band.0.ndim() != dst.0.ndim()
            || band.0.shape()[1..] != dst.0.shape()[1..]
            || offset
                .checked_add(rows)
                .is_none_or(|e| e > dst.0.shape()[0])
        {
            return Err(Error::Merge {
                split_type: "NdSplit",
                message: format!(
                    "piece of shape {:?} at row {offset} does not fit output {:?}",
                    band.0.shape(),
                    dst.0.shape()
                ),
            });
        }
        // SAFETY: the executor guarantees concurrent `write_piece` calls
        // cover disjoint row ranges of the not-yet-observable output;
        // shape and bounds were checked above.
        unsafe { dst.0.write_rows_at(offset, &band.0) };
        Ok(rows as u64)
    }

    fn truncate_merged(
        &self,
        out: DataValue,
        elements: u64,
        _params: &Params,
    ) -> Result<DataValue> {
        let a = out.downcast_ref::<NdValue>().ok_or_else(|| Error::Merge {
            split_type: "NdSplit",
            message: format!("placement output is {}, not NdValue", out.type_name()),
        })?;
        // NULL-split tail: the written prefix as a zero-copy row view.
        let rows = (elements as usize).min(a.0.shape()[0]);
        Ok(DataValue::new(NdValue(a.0.view_rows(0, rows))))
    }
}

impl Concat for NdSplit {
    fn concat(&self, values: &[DataValue]) -> Result<(DataValue, Vec<u64>)> {
        let arrays: Vec<NdArray> = values
            .iter()
            .map(|v| {
                v.downcast_ref::<NdValue>()
                    .map(|v| v.0.clone())
                    .ok_or_else(|| Error::Merge {
                        split_type: "NdSplit",
                        message: format!("expected NdValue, got {}", v.type_name()),
                    })
            })
            .collect::<Result<_>>()?;
        if arrays.is_empty() {
            return Err(Error::Merge {
                split_type: "NdSplit",
                message: "nothing to concatenate".into(),
            });
        }
        if arrays[1..]
            .iter()
            .any(|a| a.ndim() != arrays[0].ndim() || a.shape()[1..] != arrays[0].shape()[1..])
        {
            return Err(Error::Merge {
                split_type: "NdSplit",
                message: "trailing shape mismatch across concatenated arrays".into(),
            });
        }
        let mut offsets = Vec::with_capacity(arrays.len());
        let mut rows = 0u64;
        for a in &arrays {
            offsets.push(rows);
            rows += a.shape()[0] as u64;
        }
        Ok((
            DataValue::new(NdValue(ndarray_lite::concat(&arrays))),
            offsets,
        ))
    }

    fn slice_back(&self, out: &DataValue, offset: u64, len: u64) -> Result<DataValue> {
        let a = out.downcast_ref::<NdValue>().ok_or_else(|| Error::Merge {
            split_type: "NdSplit",
            message: format!("expected NdValue, got {}", out.type_name()),
        })?;
        let (offset, len) = (offset as usize, len as usize);
        if offset.checked_add(len).is_none_or(|e| e > a.0.shape()[0]) {
            return Err(Error::Merge {
                split_type: "NdSplit",
                message: format!(
                    "slice [{offset}, {offset}+{len}) exceeds {} rows",
                    a.0.shape()[0]
                ),
            });
        }
        Ok(DataValue::new(NdValue(a.0.view_rows(offset, offset + len))))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn nd(a: NdArray) -> DataValue {
        DataValue::new(NdValue(a))
    }

    #[test]
    fn shape_parameterization() {
        let s = NdSplit;
        let v1 = nd(NdArray::from_vec(vec![0.0; 7]));
        assert_eq!(s.construct(&[&v1]).unwrap(), vec![7, 0]);
        let v2 = nd(NdArray::zeros(&[3, 5]));
        assert_eq!(s.construct(&[&v2]).unwrap(), vec![3, 5]);
        // Dependent types: different shapes never pipeline.
        let a = SplitInstance::new(std::sync::Arc::new(NdSplit), vec![3, 5]);
        let b = SplitInstance::new(std::sync::Arc::new(NdSplit), vec![5, 3]);
        assert!(!a.same_type(&b));
    }

    #[test]
    fn split_merge_roundtrip_rank2() {
        let s = NdSplit;
        let arr = NdArray::from_shape_vec(&[4, 2], (0..8).map(|i| i as f64).collect());
        let params = vec![4, 2];
        let p1 = s.split(&nd(arr.clone()), 0..2, &params).unwrap().unwrap();
        let p2 = s.split(&nd(arr.clone()), 2..4, &params).unwrap().unwrap();
        let merged = s.merge(vec![p1, p2], &params, 4).unwrap();
        assert_eq!(merged.downcast_ref::<NdValue>().unwrap().0, arr);
        assert!(s.split(&nd(arr), 4..6, &params).unwrap().is_none());
    }

    #[test]
    fn stale_params_rejected() {
        let s = NdSplit;
        let arr = nd(NdArray::zeros(&[4, 2]));
        assert!(s.split(&arr, 0..2, &vec![5, 2]).is_err());
    }

    #[test]
    fn placement_roundtrip_rank1_and_rank2() {
        // NdSplit placement (PR 3 ROADMAP leftover): params determine
        // the layout, so allocation succeeds without an exemplar, and
        // out-of-order row writes reproduce the concat merge exactly.
        let s = NdSplit;
        for shape in [vec![9usize], vec![9, 3]] {
            let arr = NdArray::from_fn(&shape, |i| i as f64);
            let params = NdSplit::params_of(&arr);
            let p1 = s.split(&nd(arr.clone()), 0..4, &params).unwrap().unwrap();
            let p2 = s.split(&nd(arr.clone()), 4..9, &params).unwrap().unwrap();
            // Rank-2 shapes allocate from params alone (stage start);
            // d1 == 0 is ambiguous (rank-1 vs zero-column rank-2), so
            // rank-1 allocation waits for the first piece.
            let out = Placement::alloc_merged(&s, 9, &params, Some(&p1))
                .unwrap()
                .expect("NdSplit supports placement");
            s.write_piece(&out, 4, &p2).unwrap();
            s.write_piece(&out, 0, &p1).unwrap();
            assert_eq!(out.downcast_ref::<NdValue>().unwrap().0, arr);
            // NULL-tail truncation is a zero-copy view of the prefix.
            let t = s.truncate_merged(out, 4, &params).unwrap();
            assert_eq!(t.downcast_ref::<NdValue>().unwrap().0, arr.view_rows(0, 4));
        }
        // Mis-shaped pieces and out-of-range offsets are rejected.
        let arr = NdArray::zeros(&[4, 2]);
        let params = vec![4, 2];
        let out = Placement::alloc_merged(&s, 4, &params, None)
            .unwrap()
            .unwrap();
        let wide = nd(NdArray::zeros(&[1, 3]));
        assert!(s.write_piece(&out, 0, &wide).is_err());
        let band = s.split(&nd(arr), 0..2, &params).unwrap().unwrap();
        assert!(s.write_piece(&out, 3, &band).is_err());
        // Degenerate zero-column rank-2 arrays decline placement (their
        // params are indistinguishable from rank-1) and still merge.
        let empty = nd(NdArray::from_shape_vec(&[3, 0], vec![]));
        let params = vec![3, 0];
        assert!(Placement::alloc_merged(&s, 3, &params, Some(&empty))
            .unwrap()
            .is_none());
        let p = s.split(&empty, 0..2, &params).unwrap().unwrap();
        let q = s.split(&empty, 2..3, &params).unwrap().unwrap();
        let merged = s.merge(vec![p, q], &params, 3).unwrap();
        assert_eq!(merged.downcast_ref::<NdValue>().unwrap().0.shape(), &[3, 0]);
    }

    #[test]
    fn concat_capability_roundtrips() {
        let s = NdSplit;
        let cap = Splitter::concat(&s).expect("NdSplit exposes Concat");
        let a = NdArray::from_shape_vec(&[2, 2], vec![1.0, 2.0, 3.0, 4.0]);
        let b = NdArray::from_shape_vec(&[1, 2], vec![5.0, 6.0]);
        let (cat, offsets) = cap.concat(&[nd(a.clone()), nd(b.clone())]).unwrap();
        assert_eq!(offsets, vec![0, 2]);
        let cat_arr = &cat.downcast_ref::<NdValue>().unwrap().0;
        assert_eq!(cat_arr.shape(), &[3, 2]);
        assert_eq!(
            cap.slice_back(&cat, 2, 1)
                .unwrap()
                .downcast_ref::<NdValue>()
                .unwrap()
                .0,
            b
        );
        assert_eq!(
            cap.slice_back(&cat, 0, 2)
                .unwrap()
                .downcast_ref::<NdValue>()
                .unwrap()
                .0,
            a
        );
        // Shape mismatches and out-of-range slices are typed errors.
        assert!(cap.concat(&[nd(a), nd(NdArray::zeros(&[1, 3]))]).is_err());
        assert!(cap.slice_back(&cat, 2, 2).is_err());
    }

    #[test]
    fn numpy_pipeline_placement_on_off_identical() {
        // End-to-end through the executor: a fresh-array ndarray chain
        // with placement on must produce the same values as with it
        // off, and the placement path must actually engage.
        crate::register_defaults();
        let arr = NdArray::from_fn(&[257usize], |i| (i as f64).sin());
        let run = |placement: bool| {
            let mut cfg = mozart_core::Config::with_workers(3);
            cfg.batch_override = Some(16);
            cfg.placement_merge = placement;
            let ctx = mozart_core::MozartContext::new(cfg);
            let h = crate::sqrt(&ctx, &crate::square(&ctx, &arr).unwrap()).unwrap();
            let out = crate::get(&h).unwrap();
            (out, ctx.stats())
        };
        let (on, stats_on) = run(true);
        let (off, stats_off) = run(false);
        assert_eq!(on, off, "placement must not change values");
        assert!(stats_on.placement_writes > 0, "{stats_on:?}");
        assert_eq!(stats_off.placement_writes, 0);
    }

    #[test]
    fn info_accounts_row_bytes() {
        let s = NdSplit;
        let i = s.info(&nd(NdArray::zeros(&[10, 4])), &vec![10, 4]).unwrap();
        assert_eq!(i.total_elements, 10);
        assert_eq!(i.elem_size_bytes, 32);
        let i = s.info(&nd(NdArray::zeros(&[10])), &vec![10, 0]).unwrap();
        assert_eq!(i.elem_size_bytes, 8);
    }
}
