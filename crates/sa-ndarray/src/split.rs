//! The `NdSplit` split type: shape-parameterized row splitting of
//! [`NdArray`] values.

use std::ops::Range;

use mozart_core::prelude::*;
use ndarray_lite::NdArray;

/// `DataValue` wrapper for [`NdArray`].
///
/// Arrays are immutable/functional, so no stable identity or protection
/// flag is needed: results flow through `Future`s, never in-place.
#[derive(Debug, Clone)]
pub struct NdValue(pub NdArray);

impl mozart_core::value::DataObject for NdValue {
    fn type_name(&self) -> &'static str {
        "NdValue"
    }
    fn as_any(&self) -> &dyn std::any::Any {
        self
    }
}

/// Split type for `NdValue`: parameters are the array shape
/// `(d0, d1)` with `d1 = 0` for rank-1 arrays (the paper's "single
/// split type for ndarray, whose splitting behavior depends on its
/// shape"). Splits are zero-copy leading-axis views; merges
/// concatenate along the leading axis.
pub struct NdSplit;

impl NdSplit {
    fn params_of(a: &NdArray) -> Params {
        match a.shape() {
            [n] => vec![*n as i64, 0],
            [r, c] => vec![*r as i64, *c as i64],
            other => unreachable!("rank {} arrays are unrepresentable", other.len()),
        }
    }
}

impl Splitter for NdSplit {
    fn name(&self) -> &'static str {
        "NdSplit"
    }

    /// Constructor from the array argument itself (shape-derived).
    fn construct(&self, ctor_args: &[&DataValue]) -> Result<Params> {
        let a = ctor_args
            .first()
            .and_then(|v| v.downcast_ref::<NdValue>())
            .ok_or_else(|| Error::Constructor {
                split_type: "NdSplit",
                message: "expected an ndarray argument".into(),
            })?;
        Ok(Self::params_of(&a.0))
    }

    fn info(&self, _arg: &DataValue, params: &Params) -> Result<RuntimeInfo> {
        let d0 = params.first().copied().unwrap_or(0).max(0) as u64;
        let d1 = params.get(1).copied().unwrap_or(0).max(1) as u64;
        Ok(RuntimeInfo {
            total_elements: d0,
            elem_size_bytes: d1 * std::mem::size_of::<f64>() as u64,
        })
    }

    fn split(
        &self,
        arg: &DataValue,
        range: Range<u64>,
        params: &Params,
    ) -> Result<Option<DataValue>> {
        let a = arg.downcast_ref::<NdValue>().ok_or_else(|| Error::Split {
            split_type: "NdSplit",
            message: format!("expected NdValue, got {}", arg.type_name()),
        })?;
        if Self::params_of(&a.0) != *params {
            return Err(Error::Split {
                split_type: "NdSplit",
                message: format!(
                    "array shape {:?} does not match split type parameters {params:?}",
                    a.0.shape()
                ),
            });
        }
        let d0 = params[0].max(0) as u64;
        if range.start >= d0 {
            return Ok(None);
        }
        let end = range.end.min(d0);
        Ok(Some(DataValue::new(NdValue(
            a.0.view_rows(range.start as usize, end as usize),
        ))))
    }

    fn merge(&self, pieces: Vec<DataValue>, _params: &Params) -> Result<DataValue> {
        let arrays: Vec<NdArray> = pieces
            .iter()
            .map(|p| {
                p.downcast_ref::<NdValue>()
                    .map(|v| v.0.clone())
                    .ok_or_else(|| Error::Merge {
                        split_type: "NdSplit",
                        message: format!("expected NdValue piece, got {}", p.type_name()),
                    })
            })
            .collect::<Result<_>>()?;
        Ok(DataValue::new(NdValue(ndarray_lite::concat(&arrays))))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn nd(a: NdArray) -> DataValue {
        DataValue::new(NdValue(a))
    }

    #[test]
    fn shape_parameterization() {
        let s = NdSplit;
        let v1 = nd(NdArray::from_vec(vec![0.0; 7]));
        assert_eq!(s.construct(&[&v1]).unwrap(), vec![7, 0]);
        let v2 = nd(NdArray::zeros(&[3, 5]));
        assert_eq!(s.construct(&[&v2]).unwrap(), vec![3, 5]);
        // Dependent types: different shapes never pipeline.
        let a = SplitInstance::new(std::sync::Arc::new(NdSplit), vec![3, 5]);
        let b = SplitInstance::new(std::sync::Arc::new(NdSplit), vec![5, 3]);
        assert!(!a.same_type(&b));
    }

    #[test]
    fn split_merge_roundtrip_rank2() {
        let s = NdSplit;
        let arr = NdArray::from_shape_vec(&[4, 2], (0..8).map(|i| i as f64).collect());
        let params = vec![4, 2];
        let p1 = s.split(&nd(arr.clone()), 0..2, &params).unwrap().unwrap();
        let p2 = s.split(&nd(arr.clone()), 2..4, &params).unwrap().unwrap();
        let merged = s.merge(vec![p1, p2], &params).unwrap();
        assert_eq!(merged.downcast_ref::<NdValue>().unwrap().0, arr);
        assert!(s.split(&nd(arr), 4..6, &params).unwrap().is_none());
    }

    #[test]
    fn stale_params_rejected() {
        let s = NdSplit;
        let arr = nd(NdArray::zeros(&[4, 2]));
        assert!(s.split(&arr, 0..2, &vec![5, 2]).is_err());
    }

    #[test]
    fn info_accounts_row_bytes() {
        let s = NdSplit;
        let i = s.info(&nd(NdArray::zeros(&[10, 4])), &vec![10, 4]).unwrap();
        assert_eq!(i.total_elements, 10);
        assert_eq!(i.elem_size_bytes, 32);
        let i = s.info(&nd(NdArray::zeros(&[10])), &vec![10, 0]).unwrap();
        assert_eq!(i.elem_size_bytes, 8);
    }
}
