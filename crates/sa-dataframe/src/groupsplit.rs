//! The `GroupSplit` split type for grouped aggregations (§7 "Pandas"):
//! "Aggregation functions that accept this split type group chunks of a
//! DataFrame, create partial aggregations, and then re-group and
//! re-aggregate the partial aggregations in the merger. We only support
//! commutative aggregation functions."
//!
//! To keep the merge associative (worker-level merges feed the final
//! merge, §5.2), the merged value stays in *partial* form — a
//! [`GroupedPartial`] carrying re-aggregatable columns (`Mean` is
//! decomposed into sum + count). [`finish`] converts the partial into
//! the final aggregated frame; the [`crate::wrappers::groupby_agg`]
//! wrapper's future does this on `get`.

use std::ops::Range;
use std::sync::Arc;

use dataframe::{groupby_agg as df_groupby, Agg, AggSpec, DataFrame};
use mozart_core::prelude::*;

/// A partially aggregated groupBy result (re-mergeable form).
#[derive(Debug, Clone)]
pub struct GroupedPartial {
    /// Partial aggregation rows (one per group seen so far).
    pub partial: DataFrame,
    /// The grouping keys.
    pub keys: Vec<String>,
    /// The requested aggregations.
    pub specs: Vec<AggSpec>,
}

impl mozart_core::value::DataObject for GroupedPartial {
    fn type_name(&self) -> &'static str {
        "GroupedPartial"
    }
    fn as_any(&self) -> &dyn std::any::Any {
        self
    }
}

/// Combine partial aggregations of the same grouping (associative).
pub fn combine(parts: &[GroupedPartial]) -> Result<GroupedPartial> {
    let first = parts.first().ok_or_else(|| Error::Merge {
        split_type: "GroupSplit",
        message: "no pieces".into(),
    })?;
    let keys: Vec<&str> = first.keys.iter().map(|s| s.as_str()).collect();
    let frames: Vec<DataFrame> = parts.iter().map(|p| p.partial.clone()).collect();
    let concatenated = DataFrame::concat(&frames);
    // Re-aggregate the partial columns with their combining function,
    // keeping partial form: sums (and counts) add; mins min; maxes max.
    let combine_specs: Vec<AggSpec> = first
        .partial
        .names()
        .iter()
        .filter(|n| !keys.contains(n))
        .map(|n| {
            let agg = resolve_combiner(n, &first.specs);
            AggSpec {
                col: n.to_string(),
                agg,
                out: n.to_string(),
            }
        })
        .collect();
    let partial = df_groupby(&concatenated, &keys, &combine_specs);
    Ok(GroupedPartial {
        partial,
        keys: first.keys.clone(),
        specs: first.specs.clone(),
    })
}

/// How to combine one partial column across chunks.
fn resolve_combiner(partial_col: &str, specs: &[AggSpec]) -> Agg {
    for s in specs {
        match s.agg {
            Agg::Mean => {
                if partial_col == format!("__{}_sum", s.out)
                    || partial_col == format!("__{}_count", s.out)
                {
                    return Agg::Sum;
                }
            }
            Agg::Sum | Agg::Count => {
                if partial_col == s.out {
                    return Agg::Sum; // counts re-add, sums re-add
                }
            }
            Agg::Min => {
                if partial_col == s.out {
                    return Agg::Min;
                }
            }
            Agg::Max => {
                if partial_col == s.out {
                    return Agg::Max;
                }
            }
        }
    }
    Agg::Sum
}

/// Finish a partial aggregation into the user-visible frame.
pub fn finish(p: &GroupedPartial) -> DataFrame {
    let keys: Vec<&str> = p.keys.iter().map(|s| s.as_str()).collect();
    let mut cols: Vec<(String, dataframe::Column)> = keys
        .iter()
        .map(|k| (k.to_string(), p.partial.col(k).clone()))
        .collect();
    for spec in &p.specs {
        match spec.agg {
            Agg::Mean => {
                let sums = p.partial.col(&format!("__{}_sum", spec.out)).f64s();
                let counts = p.partial.col(&format!("__{}_count", spec.out)).f64s();
                let mean: Vec<f64> = sums
                    .iter()
                    .zip(counts)
                    .map(|(s, c)| if *c == 0.0 { f64::NAN } else { s / c })
                    .collect();
                cols.push((spec.out.clone(), dataframe::Column::from_f64(mean)));
            }
            _ => cols.push((spec.out.clone(), p.partial.col(&spec.out).clone())),
        }
    }
    DataFrame::new(cols)
}

/// Merge-only split type whose pieces are [`GroupedPartial`]s.
pub struct GroupSplit;

impl GroupSplit {
    /// Shared instance.
    pub fn shared() -> Arc<dyn Splitter> {
        Arc::new(GroupSplit)
    }
}

impl Splitter for GroupSplit {
    fn name(&self) -> &'static str {
        "GroupSplit"
    }

    /// Grouped partials must re-aggregate before further use; the
    /// re-grouping merge is order-sensitive but not a concatenation.
    fn merge_strategy(&self) -> MergeStrategy {
        MergeStrategy::Custom { terminal: true }
    }
    fn construct(&self, _ctor_args: &[&DataValue]) -> Result<Params> {
        Ok(vec![])
    }
    fn info(&self, _arg: &DataValue, _p: &Params) -> Result<RuntimeInfo> {
        Err(Error::Split {
            split_type: "GroupSplit",
            message: "merge-only".into(),
        })
    }
    fn split(&self, _a: &DataValue, _r: Range<u64>, _p: &Params) -> Result<Option<DataValue>> {
        Err(Error::Split {
            split_type: "GroupSplit",
            message: "merge-only".into(),
        })
    }
    fn merge(
        &self,
        pieces: Vec<DataValue>,
        _p: &Params,
        _total_elements: u64,
    ) -> Result<DataValue> {
        let parts: Vec<GroupedPartial> = pieces
            .iter()
            .map(|p| {
                p.downcast_ref::<GroupedPartial>()
                    .cloned()
                    .ok_or_else(|| Error::Merge {
                        split_type: "GroupSplit",
                        message: format!("expected GroupedPartial, got {}", p.type_name()),
                    })
            })
            .collect::<Result<_>>()?;
        Ok(DataValue::new(combine(&parts)?))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dataframe::{partial_groupby_agg, Column};

    fn chunked_partials() -> (DataFrame, Vec<AggSpec>) {
        let df = DataFrame::from_cols(vec![
            ("g", Column::from_strs(&["a", "b", "a", "a", "b", "a"])),
            ("v", Column::from_f64(vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0])),
        ]);
        let specs = vec![
            AggSpec::new("v", Agg::Mean, "avg"),
            AggSpec::new("v", Agg::Sum, "total"),
            AggSpec::new("v", Agg::Max, "hi"),
        ];
        (df, specs)
    }

    #[test]
    fn combine_then_finish_matches_direct() {
        let (df, specs) = chunked_partials();
        let keys = vec!["g".to_string()];
        let mk = |a: usize, b: usize| GroupedPartial {
            partial: partial_groupby_agg(&df.slice_rows(a, b), &["g"], &specs),
            keys: keys.clone(),
            specs: specs.clone(),
        };
        // Associativity: ((p1+p2)+p3) == (p1+p2+p3).
        let nested = combine(&[combine(&[mk(0, 2), mk(2, 4)]).unwrap(), mk(4, 6)]).unwrap();
        let flat = combine(&[mk(0, 2), mk(2, 4), mk(4, 6)]).unwrap();
        let direct = dataframe::groupby_agg(&df, &["g"], &specs).sort_by("g");
        for result in [finish(&nested).sort_by("g"), finish(&flat).sort_by("g")] {
            assert_eq!(result.col("g").strs(), direct.col("g").strs());
            for c in ["avg", "total", "hi"] {
                assert_eq!(result.col(c).f64s(), direct.col(c).f64s(), "column {c}");
            }
        }
    }

    #[test]
    fn merge_rejects_wrong_piece_type() {
        let s = GroupSplit;
        assert!(s
            .merge(vec![DataValue::new(IntValue(1))], &vec![], 0)
            .is_err());
        assert!(s.merge(vec![], &vec![], 0).is_err());
    }
}
