//! # sa-dataframe — split annotations for the `dataframe` library
//!
//! The annotator-side integration for the Pandas stand-in (§7
//! "Pandas"): a row-based [`RowSplit`] shared by DataFrames and Series,
//! a [`GroupSplit`] for grouped aggregations
//! (partial aggregation + re-aggregating merger), joins that split the
//! probe side and broadcast the build side, filters returning the
//! `unknown` split type, and generics on most Series operators.
//!
//! The `dataframe` crate itself is not modified; the splitting API is
//! implemented with its existing public functions, like the paper's
//! "<20 LoC each" Pandas splitters.

#![warn(missing_docs)]

pub mod groupsplit;
pub mod split;
pub mod wrappers;

pub use groupsplit::{combine, finish, GroupSplit, GroupedPartial};
pub use split::{ColValue, DfValue, RowSplit};
pub use wrappers::*;

/// Register this integration's default split types. Idempotent.
pub fn register_defaults() {
    mozart_core::registry::register_default_splitter::<DfValue>(RowSplit::shared());
    mozart_core::registry::register_default_splitter::<ColValue>(RowSplit::shared());
    for a in wrappers::annotations() {
        mozart_core::registry::register_annotation(a);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dataframe::{Agg, AggSpec, Column, DataFrame};
    use mozart_core::prelude::*;

    fn ctx() -> MozartContext {
        register_defaults();
        let mut cfg = Config::with_workers(2);
        cfg.batch_override = Some(7);
        cfg.pedantic = true;
        MozartContext::new(cfg)
    }

    fn people() -> DataFrame {
        let n = 50;
        DataFrame::from_cols(vec![
            ("id", Column::from_i64((0..n).collect())),
            (
                "age",
                Column::from_f64((0..n).map(|i| (i % 40) as f64 + 18.0).collect()),
            ),
            (
                "city",
                Column::from_str(
                    (0..n)
                        .map(|i| ["sf", "nyc", "la"][i as usize % 3].to_string())
                        .collect(),
                ),
            ),
        ])
    }

    #[test]
    fn projection_and_arithmetic_pipeline() {
        let c = ctx();
        let d = people();
        let age = col(&c, &d, "age").unwrap();
        let doubled = mul_scalar(&c, &age, 2.0).unwrap();
        let shifted = add_scalar(&c, &doubled, 1.0).unwrap();
        let out = get_col(&shifted).unwrap();
        let expect = dataframe::ops::add_scalar(
            &dataframe::ops::mul_scalar(&d.col("age").to_f64(), 2.0),
            1.0,
        );
        assert_eq!(out.f64s(), expect.f64s());
        assert_eq!(c.stats().stages, 1, "projection + two series ops pipeline");
    }

    #[test]
    fn filter_pipeline_with_unknown() {
        let c = ctx();
        let d = people();
        let age = col(&c, &d, "age").unwrap();
        let mask = gt_scalar(&c, &age, 40.0).unwrap();
        let adults = filter(&c, &d, &mask).unwrap();
        // Generic op on the unknown-typed filtered frame pipelines.
        let age2 = col(&c, &adults, "age").unwrap();
        let total = sum(&c, &age2).unwrap();
        let got = get_scalar(&total).unwrap();

        let mask_ref = dataframe::ops::gt_scalar(d.col("age"), 40.0);
        let filtered_ref = d.filter(&mask_ref);
        let expect = dataframe::ops::sum(filtered_ref.col("age"));
        assert_eq!(got, expect);

        // The merged filtered frame itself must be the compact concat
        // of the per-batch filtered pieces â `unknown` outputs never
        // take the placement path (their pieces under-fill their batch
        // ranges), so this must match the eager baseline row for row.
        let adults_df = get_df(&adults).unwrap();
        assert_eq!(adults_df.num_rows(), filtered_ref.num_rows());
        assert_eq!(adults_df.col("age").f64s(), filtered_ref.col("age").f64s());
    }

    #[test]
    fn groupby_matches_direct() {
        let c = ctx();
        let d = people();
        let specs = vec![
            AggSpec::new("age", Agg::Mean, "avg_age"),
            AggSpec::new("age", Agg::Count, "n"),
        ];
        let fut = groupby_agg(&c, &d, &["city"], &specs).unwrap();
        let got = get_df(&fut).unwrap().sort_by("city");
        let expect = dataframe::groupby_agg(&d, &["city"], &specs).sort_by("city");
        assert_eq!(got.col("city").strs(), expect.col("city").strs());
        assert_eq!(got.col("avg_age").f64s(), expect.col("avg_age").f64s());
        assert_eq!(got.col("n").f64s(), expect.col("n").f64s());
    }

    #[test]
    fn join_splits_probe_side() {
        let c = ctx();
        let left = people();
        let right = DataFrame::from_cols(vec![
            ("city", Column::from_strs(&["sf", "nyc", "la"])),
            ("pop", Column::from_f64(vec![0.8, 8.3, 3.9])),
        ]);
        let joined = inner_join(&c, &left, &right, "city").unwrap();
        let got = get_df(&joined).unwrap();
        let expect = dataframe::inner_join(&left, &right, "city");
        assert_eq!(got.num_rows(), expect.num_rows());
        assert_eq!(got.col("pop").f64s(), expect.col("pop").f64s());
    }

    #[test]
    fn string_pipeline() {
        let c = ctx();
        let d = people();
        let city = col(&c, &d, "city").unwrap();
        let is_sf = str_eq(&c, &city, "sf").unwrap();
        let upper = str_upper(&c, &city).unwrap();
        assert_eq!(
            get_col(&is_sf).unwrap().bools(),
            dataframe::ops::str_eq(d.col("city"), "sf").bools()
        );
        assert_eq!(
            get_col(&upper).unwrap().strs(),
            dataframe::ops::str_upper(d.col("city")).strs()
        );
    }

    #[test]
    fn data_cleaning_idioms() {
        // fillna / isnull / mask_assign round trip.
        let c = ctx();
        let vals = Column::from_f64(vec![1.0, f64::NAN, 3.0, f64::NAN, 5.0]);
        let nulls = is_null(&c, &vals).unwrap();
        let filled = fillna(&c, &vals, 0.0).unwrap();
        let masked = mask_assign(&c, &vals, &nulls, -1.0).unwrap();
        assert_eq!(
            get_col(&nulls).unwrap().bools(),
            &[false, true, false, true, false]
        );
        assert_eq!(get_col(&filled).unwrap().f64s(), &[1.0, 0.0, 3.0, 0.0, 5.0]);
        assert_eq!(
            get_col(&masked).unwrap().f64s(),
            &[1.0, -1.0, 3.0, -1.0, 5.0]
        );
    }

    #[test]
    fn with_column_row_alignment() {
        let c = ctx();
        let d = people();
        let age = col(&c, &d, "age").unwrap();
        let scaled = mul_scalar(&c, &age, 0.5).unwrap();
        let d2 = with_column(&c, &d, "half_age", &scaled).unwrap();
        let out = get_df(&d2).unwrap();
        assert_eq!(out.num_rows(), d.num_rows());
        assert_eq!(out.col("half_age").f64s()[4], d.col("age").f64s()[4] * 0.5);
        assert_eq!(c.stats().stages, 1);
    }
}
