//! Annotated wrapper functions over the unmodified `dataframe` library:
//! Series operators, filters, predicate masks, groupBys and joins (§7
//! "Pandas"). Filters and joins return the `unknown` split type; most
//! functions accept generics.

use std::ops::Range;
use std::sync::{Arc, LazyLock};

use dataframe::{AggSpec, Column, DataFrame};
use mozart_core::annotation::{concrete, generic, missing, unknown};
use mozart_core::prelude::*;

use crate::groupsplit::{finish, GroupSplit, GroupedPartial};
use crate::split::{ColValue, DfValue, RowSplit};

/// Wrap a [`DataFrame`] as a Mozart argument.
pub fn dfv(d: &DataFrame) -> DataValue {
    DataValue::new(DfValue(d.clone()))
}

/// Wrap a [`Column`] as a Mozart argument.
pub fn colv(c: &Column) -> DataValue {
    DataValue::new(ColValue(c.clone()))
}

/// Values accepted by the wrappers: concrete frames/columns or lazy
/// results of earlier wrapped calls.
pub trait DfArg {
    /// Convert to a Mozart argument value.
    fn to_value(&self) -> DataValue;
}

impl DfArg for DataFrame {
    fn to_value(&self) -> DataValue {
        dfv(self)
    }
}
impl DfArg for Column {
    fn to_value(&self) -> DataValue {
        colv(self)
    }
}
impl DfArg for FutureHandle {
    fn to_value(&self) -> DataValue {
        self.as_value()
    }
}
impl DfArg for DataValue {
    fn to_value(&self) -> DataValue {
        self.clone()
    }
}

/// Materialize a lazy frame result.
pub fn get_df(f: &FutureHandle) -> Result<DataFrame> {
    let dv = f.get()?;
    if let Some(d) = dv.downcast_ref::<DfValue>() {
        return Ok(d.0.clone());
    }
    if let Some(g) = dv.downcast_ref::<GroupedPartial>() {
        return Ok(finish(g));
    }
    Err(Error::ArgType {
        function: "sa_dataframe::get_df",
        arg: 0,
        expected: "DfValue",
        actual: dv.type_name(),
    })
}

/// Materialize a lazy column result.
pub fn get_col(f: &FutureHandle) -> Result<Column> {
    let dv = f.get()?;
    dv.downcast_ref::<ColValue>()
        .map(|c| c.0.clone())
        .ok_or(Error::ArgType {
            function: "sa_dataframe::get_col",
            arg: 0,
            expected: "ColValue",
            actual: dv.type_name(),
        })
}

fn col_piece(inv: &Invocation<'_>, i: usize) -> Result<Column> {
    Ok(inv.arg::<ColValue>(i)?.0.clone())
}

fn df_piece(inv: &Invocation<'_>, i: usize) -> Result<DataFrame> {
    Ok(inv.arg::<DfValue>(i)?.0.clone())
}

fn str_arg(inv: &Invocation<'_>, i: usize) -> Result<String> {
    Ok(inv.arg::<StrValue>(i)?.0.to_string())
}

// --------------------------- Series operators ---------------------------

macro_rules! series_sa_binary {
    ($(#[$doc:meta])* $name:ident, $annot:ident, $f:path) => {
        static $annot: LazyLock<Arc<Annotation>> = LazyLock::new(|| {
            Annotation::new(stringify!($name), |inv| {
                let a = col_piece(inv, 0)?;
                let b = col_piece(inv, 1)?;
                Ok(Some(DataValue::new(ColValue($f(&a, &b)))))
            })
            .arg("a", generic(0))
            .arg("b", generic(0))
            .ret(generic(0))
            .build()
        });

        $(#[$doc])*
        pub fn $name(ctx: &MozartContext, a: &impl DfArg, b: &impl DfArg) -> Result<FutureHandle> {
            Ok(ctx.call(&$annot, vec![a.to_value(), b.to_value()])?.expect("returns"))
        }
    };
}

macro_rules! series_sa_scalar {
    ($(#[$doc:meta])* $name:ident, $annot:ident, $f:path) => {
        static $annot: LazyLock<Arc<Annotation>> = LazyLock::new(|| {
            Annotation::new(stringify!($name), |inv| {
                let a = col_piece(inv, 0)?;
                let k = inv.float(1)?;
                Ok(Some(DataValue::new(ColValue($f(&a, k)))))
            })
            .arg("a", generic(0))
            .arg("k", missing())
            .ret(generic(0))
            .build()
        });

        $(#[$doc])*
        pub fn $name(ctx: &MozartContext, a: &impl DfArg, k: f64) -> Result<FutureHandle> {
            Ok(ctx
                .call(&$annot, vec![a.to_value(), DataValue::new(FloatValue(k))])?
                .expect("returns"))
        }
    };
}

macro_rules! series_sa_unary {
    ($(#[$doc:meta])* $name:ident, $annot:ident, $f:path) => {
        static $annot: LazyLock<Arc<Annotation>> = LazyLock::new(|| {
            Annotation::new(stringify!($name), |inv| {
                let a = col_piece(inv, 0)?;
                Ok(Some(DataValue::new(ColValue($f(&a)))))
            })
            .arg("a", generic(0))
            .ret(generic(0))
            .build()
        });

        $(#[$doc])*
        pub fn $name(ctx: &MozartContext, a: &impl DfArg) -> Result<FutureHandle> {
            Ok(ctx.call(&$annot, vec![a.to_value()])?.expect("returns"))
        }
    };
}

macro_rules! series_sa_str {
    ($(#[$doc:meta])* $name:ident, $annot:ident, $f:path) => {
        static $annot: LazyLock<Arc<Annotation>> = LazyLock::new(|| {
            Annotation::new(stringify!($name), |inv| {
                let a = col_piece(inv, 0)?;
                let s = str_arg(inv, 1)?;
                Ok(Some(DataValue::new(ColValue($f(&a, &s)))))
            })
            .arg("a", generic(0))
            .arg("s", missing())
            .ret(generic(0))
            .build()
        });

        $(#[$doc])*
        pub fn $name(ctx: &MozartContext, a: &impl DfArg, s: &str) -> Result<FutureHandle> {
            Ok(ctx
                .call(&$annot, vec![a.to_value(), DataValue::new(StrValue::new(s))])?
                .expect("returns"))
        }
    };
}

series_sa_binary!(
    /// Annotated Series `a + b`.
    add, ADD, dataframe::ops::add
);
series_sa_binary!(
    /// Annotated Series `a - b`.
    sub, SUB, dataframe::ops::sub
);
series_sa_binary!(
    /// Annotated Series `a * b`.
    mul, MUL, dataframe::ops::mul
);
series_sa_binary!(
    /// Annotated Series `a / b`.
    div, DIV, dataframe::ops::div
);
series_sa_binary!(
    /// Annotated elementwise `a > b` mask.
    gt, GT, dataframe::ops::gt
);
series_sa_binary!(
    /// Annotated mask AND.
    and, AND, dataframe::ops::and
);
series_sa_binary!(
    /// Annotated mask OR.
    or, OR, dataframe::ops::or
);

series_sa_scalar!(
    /// Annotated Series `a + k`.
    add_scalar, ADD_SCALAR, dataframe::ops::add_scalar
);
series_sa_scalar!(
    /// Annotated Series `a - k`.
    sub_scalar, SUB_SCALAR, dataframe::ops::sub_scalar
);
series_sa_scalar!(
    /// Annotated Series `a * k`.
    mul_scalar, MUL_SCALAR, dataframe::ops::mul_scalar
);
series_sa_scalar!(
    /// Annotated Series `a / k`.
    div_scalar, DIV_SCALAR, dataframe::ops::div_scalar
);
series_sa_scalar!(
    /// Annotated `a > k` mask.
    gt_scalar, GT_SCALAR, dataframe::ops::gt_scalar
);
series_sa_scalar!(
    /// Annotated `a < k` mask.
    lt_scalar, LT_SCALAR, dataframe::ops::lt_scalar
);
series_sa_scalar!(
    /// Annotated `a >= k` mask.
    ge_scalar, GE_SCALAR, dataframe::ops::ge_scalar
);
series_sa_scalar!(
    /// Annotated `a <= k` mask.
    le_scalar, LE_SCALAR, dataframe::ops::le_scalar
);
series_sa_scalar!(
    /// Annotated `fillna`.
    fillna, FILLNA, dataframe::ops::fillna
);

series_sa_unary!(
    /// Annotated mask NOT.
    not, NOT, dataframe::ops::not
);
series_sa_unary!(
    /// Annotated `isnull` mask.
    is_null, IS_NULL, dataframe::ops::is_null
);
series_sa_unary!(
    /// Annotated cast to `f64` (parse strings, NaN on failure).
    to_f64, TO_F64, Column::to_f64
);
series_sa_unary!(
    /// Annotated string length.
    str_len, STR_LEN, dataframe::ops::str_len
);
series_sa_unary!(
    /// Annotated uppercase.
    str_upper, STR_UPPER, dataframe::ops::str_upper
);

series_sa_str!(
    /// Annotated `s == k` mask.
    str_eq, STR_EQ, dataframe::ops::str_eq
);
series_sa_str!(
    /// Annotated prefix mask.
    str_startswith, STR_STARTSWITH, dataframe::ops::str_startswith
);
series_sa_str!(
    /// Annotated substring mask.
    str_contains, STR_CONTAINS, dataframe::ops::str_contains
);

/// Annotated conditional replace (`Series.mask`): where the mask is
/// true, use `v`.
static MASK_ASSIGN: LazyLock<Arc<Annotation>> = LazyLock::new(|| {
    Annotation::new("mask_assign", |inv| {
        let a = col_piece(inv, 0)?;
        let m = col_piece(inv, 1)?;
        let v = inv.float(2)?;
        Ok(Some(DataValue::new(ColValue(dataframe::ops::mask_assign(
            &a, &m, v,
        )))))
    })
    .arg("a", generic(0))
    .arg("mask", generic(0))
    .arg("v", missing())
    .ret(generic(0))
    .build()
});

/// Annotated `mask_assign` over `f64` series.
pub fn mask_assign(
    ctx: &MozartContext,
    a: &impl DfArg,
    mask: &impl DfArg,
    v: f64,
) -> Result<FutureHandle> {
    Ok(ctx
        .call(
            &MASK_ASSIGN,
            vec![a.to_value(), mask.to_value(), DataValue::new(FloatValue(v))],
        )?
        .expect("returns"))
}

/// Annotated conditional string replace.
static MASK_ASSIGN_STR: LazyLock<Arc<Annotation>> = LazyLock::new(|| {
    Annotation::new("mask_assign_str", |inv| {
        let a = col_piece(inv, 0)?;
        let m = col_piece(inv, 1)?;
        let v = str_arg(inv, 2)?;
        Ok(Some(DataValue::new(ColValue(
            dataframe::ops::mask_assign_str(&a, &m, &v),
        ))))
    })
    .arg("a", generic(0))
    .arg("mask", generic(0))
    .arg("v", missing())
    .ret(generic(0))
    .build()
});

/// Annotated `mask_assign_str` over string series.
pub fn mask_assign_str(
    ctx: &MozartContext,
    a: &impl DfArg,
    mask: &impl DfArg,
    v: &str,
) -> Result<FutureHandle> {
    Ok(ctx
        .call(
            &MASK_ASSIGN_STR,
            vec![
                a.to_value(),
                mask.to_value(),
                DataValue::new(StrValue::new(v)),
            ],
        )?
        .expect("returns"))
}

/// Annotated string slice `[start, end)`.
static STR_SLICE: LazyLock<Arc<Annotation>> = LazyLock::new(|| {
    Annotation::new("str_slice", |inv| {
        let a = col_piece(inv, 0)?;
        let start = inv.int(1)? as usize;
        let end = inv.int(2)? as usize;
        Ok(Some(DataValue::new(ColValue(dataframe::ops::str_slice(
            &a, start, end,
        )))))
    })
    .arg("a", generic(0))
    .arg("start", missing())
    .arg("end", missing())
    .ret(generic(0))
    .build()
});

/// Annotated `str_slice`.
pub fn str_slice(
    ctx: &MozartContext,
    a: &impl DfArg,
    start: usize,
    end: usize,
) -> Result<FutureHandle> {
    Ok(ctx
        .call(
            &STR_SLICE,
            vec![
                a.to_value(),
                DataValue::new(IntValue(start as i64)),
                DataValue::new(IntValue(end as i64)),
            ],
        )?
        .expect("returns"))
}

// --------------------------- frame operators ---------------------------

/// Annotated column projection: `df.col(name)` — row-aligned, so the
/// output shares the input's split type (`RowSplit<rows>`).
static COL: LazyLock<Arc<Annotation>> = LazyLock::new(|| {
    Annotation::new("col", |inv| {
        let d = df_piece(inv, 0)?;
        let name = str_arg(inv, 1)?;
        Ok(Some(DataValue::new(ColValue(d.col(&name).clone()))))
    })
    .arg("df", generic(0))
    .arg("name", missing())
    .ret(generic(0))
    .build()
});

/// Annotated column projection.
pub fn col(ctx: &MozartContext, df: &impl DfArg, name: &str) -> Result<FutureHandle> {
    Ok(ctx
        .call(
            &COL,
            vec![df.to_value(), DataValue::new(StrValue::new(name))],
        )?
        .expect("returns"))
}

/// Annotated `with_column` (add or replace a row-aligned column).
static WITH_COLUMN: LazyLock<Arc<Annotation>> = LazyLock::new(|| {
    Annotation::new("with_column", |inv| {
        let d = df_piece(inv, 0)?;
        let name = str_arg(inv, 1)?;
        let c = col_piece(inv, 2)?;
        Ok(Some(DataValue::new(DfValue(d.with_column(&name, c)))))
    })
    .arg("df", generic(0))
    .arg("name", missing())
    .arg("col", generic(0))
    .ret(generic(0))
    .build()
});

/// Annotated `with_column`.
pub fn with_column(
    ctx: &MozartContext,
    df: &impl DfArg,
    name: &str,
    c: &impl DfArg,
) -> Result<FutureHandle> {
    Ok(ctx
        .call(
            &WITH_COLUMN,
            vec![
                df.to_value(),
                DataValue::new(StrValue::new(name)),
                c.to_value(),
            ],
        )?
        .expect("returns"))
}

/// Annotated row filter: output cardinality is data-dependent, so the
/// result has the `unknown` split type (§3.2) merged by row concat.
static FILTER: LazyLock<Arc<Annotation>> = LazyLock::new(|| {
    Annotation::new("filter", |inv| {
        let d = df_piece(inv, 0)?;
        let m = col_piece(inv, 1)?;
        Ok(Some(DataValue::new(DfValue(d.filter(&m)))))
    })
    .arg("df", generic(0))
    .arg("mask", generic(0))
    .ret(unknown(RowSplit::shared()))
    .build()
});

/// Annotated row filter by boolean mask.
pub fn filter(ctx: &MozartContext, df: &impl DfArg, mask: &impl DfArg) -> Result<FutureHandle> {
    Ok(ctx
        .call(&FILTER, vec![df.to_value(), mask.to_value()])?
        .expect("returns"))
}

/// Annotated inner join: "joins split one table and broadcast the
/// other" (§7); the probe (left) side is split, the result is unknown.
static INNER_JOIN: LazyLock<Arc<Annotation>> = LazyLock::new(|| {
    Annotation::new("inner_join", |inv| {
        let l = df_piece(inv, 0)?;
        let r = df_piece(inv, 1)?;
        let on = str_arg(inv, 2)?;
        Ok(Some(DataValue::new(DfValue(dataframe::inner_join(
            &l, &r, &on,
        )))))
    })
    .arg("left", generic(0))
    .arg("right", missing())
    .arg("on", missing())
    .ret(unknown(RowSplit::shared()))
    .build()
});

/// Annotated inner hash join on an equally-named key column.
pub fn inner_join(
    ctx: &MozartContext,
    left: &impl DfArg,
    right: &impl DfArg,
    on: &str,
) -> Result<FutureHandle> {
    // The broadcast (build) side must be materialized before the join
    // runs; the planner enforces this (a lazy `_`-typed argument cannot
    // join a stage), which puts a stage boundary here — the paper's
    // merge-then-join.
    let right_v = right.to_value();
    Ok(ctx
        .call(
            &INNER_JOIN,
            vec![left.to_value(), right_v, DataValue::new(StrValue::new(on))],
        )?
        .expect("returns"))
}

/// Annotated grouped aggregation. Each piece produces a partial
/// aggregation; the `GroupSplit` merger re-groups and re-aggregates.
/// The future's value is a [`GroupedPartial`]; [`get_df`] finishes it.
pub fn groupby_agg(
    ctx: &MozartContext,
    df: &impl DfArg,
    keys: &[&str],
    specs: &[AggSpec],
) -> Result<FutureHandle> {
    let keys_owned: Vec<String> = keys.iter().map(|s| s.to_string()).collect();
    let specs_owned = specs.to_vec();
    let annot = Annotation::new("groupby_agg", move |inv: &Invocation<'_>| {
        let d = df_piece(inv, 0)?;
        let keys_ref: Vec<&str> = keys_owned.iter().map(|s| s.as_str()).collect();
        let partial = dataframe::partial_groupby_agg(&d, &keys_ref, &specs_owned);
        Ok(Some(DataValue::new(GroupedPartial {
            partial,
            keys: keys_owned.clone(),
            specs: specs_owned.clone(),
        })))
    })
    .arg("df", generic(0))
    .ret(concrete(GroupSplit::shared(), vec![]))
    .build();
    Ok(ctx.call(&annot, vec![df.to_value()])?.expect("returns"))
}

// --------------------------- reductions ---------------------------------

/// Merge-only additive scalar reduce for Series sums/counts.
struct ColSumReduce;

impl Splitter for ColSumReduce {
    fn name(&self) -> &'static str {
        "ColSumReduce"
    }

    /// Partial sums must merge before further use; kept order-sensitive
    /// so the fold order (and thus the FP sum) is batch-deterministic.
    fn merge_strategy(&self) -> MergeStrategy {
        MergeStrategy::Custom { terminal: true }
    }
    fn construct(&self, _c: &[&DataValue]) -> Result<Params> {
        Ok(vec![])
    }
    fn info(&self, _a: &DataValue, _p: &Params) -> Result<RuntimeInfo> {
        Err(Error::Split {
            split_type: "ColSumReduce",
            message: "merge-only".into(),
        })
    }
    fn split(&self, _a: &DataValue, _r: Range<u64>, _p: &Params) -> Result<Option<DataValue>> {
        Err(Error::Split {
            split_type: "ColSumReduce",
            message: "merge-only".into(),
        })
    }
    fn merge(
        &self,
        pieces: Vec<DataValue>,
        _p: &Params,
        _total_elements: u64,
    ) -> Result<DataValue> {
        let mut acc = 0.0;
        for p in pieces {
            acc += p
                .downcast_ref::<FloatValue>()
                .map(|f| f.0)
                .ok_or_else(|| Error::Merge {
                    split_type: "ColSumReduce",
                    message: format!("expected FloatValue, got {}", p.type_name()),
                })?;
        }
        Ok(DataValue::new(FloatValue(acc)))
    }
}

static COL_SUM: LazyLock<Arc<Annotation>> = LazyLock::new(|| {
    Annotation::new("col_sum", |inv| {
        let a = col_piece(inv, 0)?;
        Ok(Some(DataValue::new(FloatValue(dataframe::ops::sum(&a)))))
    })
    .arg("a", generic(0))
    .ret(concrete(Arc::new(ColSumReduce), vec![]))
    .build()
});

/// Annotated NaN-skipping Series sum.
pub fn sum(ctx: &MozartContext, a: &impl DfArg) -> Result<FutureHandle> {
    Ok(ctx.call(&COL_SUM, vec![a.to_value()])?.expect("returns"))
}

static COL_COUNT: LazyLock<Arc<Annotation>> = LazyLock::new(|| {
    Annotation::new("col_count", |inv| {
        let a = col_piece(inv, 0)?;
        Ok(Some(DataValue::new(FloatValue(
            dataframe::ops::count(&a) as f64
        ))))
    })
    .arg("a", generic(0))
    .ret(concrete(Arc::new(ColSumReduce), vec![]))
    .build()
});

/// Annotated non-null count.
pub fn count(ctx: &MozartContext, a: &impl DfArg) -> Result<FutureHandle> {
    Ok(ctx.call(&COL_COUNT, vec![a.to_value()])?.expect("returns"))
}

/// Materialize a lazy scalar reduction.
pub fn get_scalar(f: &FutureHandle) -> Result<f64> {
    let dv = f.get()?;
    dv.downcast_ref::<FloatValue>()
        .map(|v| v.0)
        .ok_or(Error::ArgType {
            function: "sa_dataframe::get_scalar",
            arg: 0,
            expected: "FloatValue",
            actual: dv.type_name(),
        })
}

/// Every annotation this integration defines, in declaration order —
/// the walk surface for static tooling (`mozart-check`).
pub fn annotations() -> Vec<Arc<Annotation>> {
    vec![
        ADD.clone(),
        SUB.clone(),
        MUL.clone(),
        DIV.clone(),
        GT.clone(),
        AND.clone(),
        OR.clone(),
        ADD_SCALAR.clone(),
        SUB_SCALAR.clone(),
        MUL_SCALAR.clone(),
        DIV_SCALAR.clone(),
        GT_SCALAR.clone(),
        LT_SCALAR.clone(),
        GE_SCALAR.clone(),
        LE_SCALAR.clone(),
        FILLNA.clone(),
        NOT.clone(),
        IS_NULL.clone(),
        TO_F64.clone(),
        STR_LEN.clone(),
        STR_UPPER.clone(),
        STR_EQ.clone(),
        STR_STARTSWITH.clone(),
        STR_CONTAINS.clone(),
        MASK_ASSIGN.clone(),
        MASK_ASSIGN_STR.clone(),
        STR_SLICE.clone(),
        COL.clone(),
        WITH_COLUMN.clone(),
        FILTER.clone(),
        INNER_JOIN.clone(),
        COL_SUM.clone(),
        COL_COUNT.clone(),
    ]
}
