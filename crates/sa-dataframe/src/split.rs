//! The `RowSplit` split type shared by DataFrames and Series.
//!
//! The paper's Pandas integration "implements split types over
//! DataFrames and Series by splitting by row" (§7). Split type equality
//! is by name and parameters, so a frame and a column with the same row
//! count carry the *same* split type `RowSplit<rows>` and pipeline
//! freely (e.g. `df.col(...)` flows into Series arithmetic); `split`
//! and `merge` dispatch on the concrete piece type.

use std::ops::Range;
use std::sync::Arc;

use mozart_core::split::{Concat, MergeStrategy, Placement};

use dataframe::{Column, DataFrame};
use mozart_core::prelude::*;

/// `DataValue` wrapper for [`DataFrame`].
#[derive(Debug, Clone)]
pub struct DfValue(pub DataFrame);

impl mozart_core::value::DataObject for DfValue {
    fn type_name(&self) -> &'static str {
        "DfValue"
    }
    fn as_any(&self) -> &dyn std::any::Any {
        self
    }
}

/// `DataValue` wrapper for [`Column`] (a Series).
#[derive(Debug, Clone)]
pub struct ColValue(pub Column);

impl mozart_core::value::DataObject for ColValue {
    fn type_name(&self) -> &'static str {
        "ColValue"
    }
    fn as_any(&self) -> &dyn std::any::Any {
        self
    }
}

/// Row-based split type for frames and columns. Parameter: row count.
pub struct RowSplit;

impl RowSplit {
    /// Shared instance.
    pub fn shared() -> Arc<dyn Splitter> {
        Arc::new(RowSplit)
    }

    fn rows_of(v: &DataValue) -> Result<usize> {
        if let Some(d) = v.downcast_ref::<DfValue>() {
            return Ok(d.0.num_rows());
        }
        if let Some(c) = v.downcast_ref::<ColValue>() {
            return Ok(c.0.len());
        }
        Err(Error::Split {
            split_type: "RowSplit",
            message: format!("expected DfValue or ColValue, got {}", v.type_name()),
        })
    }
}

impl Splitter for RowSplit {
    fn name(&self) -> &'static str {
        "RowSplit"
    }

    fn construct(&self, ctor_args: &[&DataValue]) -> Result<Params> {
        let v = ctor_args.first().ok_or_else(|| Error::Constructor {
            split_type: "RowSplit",
            message: "expected a frame or series argument".into(),
        })?;
        Ok(vec![Self::rows_of(v)? as i64])
    }

    fn info(&self, _arg: &DataValue, params: &Params) -> Result<RuntimeInfo> {
        Ok(RuntimeInfo {
            total_elements: params.first().copied().unwrap_or(0).max(0) as u64,
            // Approximate row footprint; Pandas rows are wide, use a
            // conservative 64 bytes so batches stay cache-resident.
            elem_size_bytes: 64,
        })
    }

    fn split(
        &self,
        arg: &DataValue,
        range: Range<u64>,
        params: &Params,
    ) -> Result<Option<DataValue>> {
        let rows = Self::rows_of(arg)?;
        let declared = params.first().copied().unwrap_or(0).max(0) as usize;
        if rows != declared {
            return Err(Error::Split {
                split_type: "RowSplit",
                message: format!("value has {rows} rows, split type says {declared}"),
            });
        }
        if range.start >= rows as u64 {
            return Ok(None);
        }
        let start = range.start as usize;
        let end = (range.end as usize).min(rows);
        if let Some(d) = arg.downcast_ref::<DfValue>() {
            return Ok(Some(DataValue::new(DfValue(d.0.slice_rows(start, end)))));
        }
        if let Some(c) = arg.downcast_ref::<ColValue>() {
            return Ok(Some(DataValue::new(ColValue(c.0.slice(start, end)))));
        }
        unreachable!("rows_of validated the type");
    }

    fn merge(
        &self,
        pieces: Vec<DataValue>,
        _params: &Params,
        total_elements: u64,
    ) -> Result<DataValue> {
        // Elements are rows: the hint lets the concat allocate every
        // column once instead of growing per piece (the runtime's
        // merge-size hint).
        merge_rows(pieces, Some(total_elements as usize))
    }

    /// Row concatenation with placement: the exemplar piece supplies
    /// what the parameters cannot (a frame's schema, a column's dtype).
    fn merge_strategy(&self) -> MergeStrategy {
        MergeStrategy::Concat {
            placement: Some(Arc::new(RowSplit)),
        }
    }

    fn concat(&self) -> Option<Arc<dyn Concat>> {
        Some(Arc::new(RowSplit))
    }
}

impl Placement for RowSplit {
    fn alloc_merged(
        &self,
        total_elements: u64,
        _params: &Params,
        exemplar: Option<&DataValue>,
    ) -> Result<Option<DataValue>> {
        // The exemplar (the first piece produced) supplies what the
        // parameters cannot: the schema of a frame, the dtype of a
        // column. The stage-start probe (no exemplar yet) is declined.
        let Some(exemplar) = exemplar else {
            return Ok(None);
        };
        let rows = total_elements as usize;
        if let Some(d) = exemplar.downcast_ref::<DfValue>() {
            return Ok(Some(DataValue::new(DfValue(d.0.alloc_like(rows)))));
        }
        if let Some(c) = exemplar.downcast_ref::<ColValue>() {
            return Ok(Some(DataValue::new(ColValue(c.0.alloc_like(rows)))));
        }
        Err(Error::Merge {
            split_type: "RowSplit",
            message: format!("unexpected piece type {}", exemplar.type_name()),
        })
    }

    fn write_piece(&self, out: &DataValue, offset: u64, piece: &DataValue) -> Result<u64> {
        let offset = offset as usize;
        if let (Some(dst), Some(src)) = (
            out.downcast_ref::<DfValue>(),
            piece.downcast_ref::<DfValue>(),
        ) {
            check_fit(
                offset,
                src.0.num_rows(),
                dst.0.num_rows(),
                src.0.names() == dst.0.names()
                    && src
                        .0
                        .columns()
                        .iter()
                        .zip(dst.0.columns())
                        .all(|((_, s), (_, d))| s.dtype() == d.dtype()),
            )?;
            // SAFETY: the executor guarantees concurrent `write_piece`
            // calls cover disjoint row ranges of the not-yet-observable
            // output; schema and bounds were checked above.
            unsafe { dst.0.write_rows_at(offset, &src.0) };
            return Ok(src.0.num_rows() as u64);
        }
        if let (Some(dst), Some(src)) = (
            out.downcast_ref::<ColValue>(),
            piece.downcast_ref::<ColValue>(),
        ) {
            check_fit(
                offset,
                src.0.len(),
                dst.0.len(),
                src.0.dtype() == dst.0.dtype(),
            )?;
            // SAFETY: as above.
            unsafe { dst.0.write_at(offset, &src.0) };
            return Ok(src.0.len() as u64);
        }
        Err(Error::Merge {
            split_type: "RowSplit",
            message: format!(
                "placement piece {} does not match output {}",
                piece.type_name(),
                out.type_name()
            ),
        })
    }

    fn truncate_merged(
        &self,
        out: DataValue,
        elements: u64,
        _params: &Params,
    ) -> Result<DataValue> {
        // NULL-split tail: the written prefix as a zero-copy row slice.
        let rows = elements as usize;
        if let Some(d) = out.downcast_ref::<DfValue>() {
            let rows = rows.min(d.0.num_rows());
            return Ok(DataValue::new(DfValue(d.0.slice_rows(0, rows))));
        }
        if let Some(c) = out.downcast_ref::<ColValue>() {
            let rows = rows.min(c.0.len());
            return Ok(DataValue::new(ColValue(c.0.slice(0, rows))));
        }
        Err(Error::Merge {
            split_type: "RowSplit",
            message: format!("unexpected placement output {}", out.type_name()),
        })
    }
}

impl Concat for RowSplit {
    fn concat(&self, values: &[DataValue]) -> Result<(DataValue, Vec<u64>)> {
        if values.is_empty() {
            return Err(Error::Merge {
                split_type: "RowSplit",
                message: "nothing to concatenate".into(),
            });
        }
        let mut offsets = Vec::with_capacity(values.len());
        let mut rows = 0u64;
        for v in values {
            offsets.push(rows);
            rows += Self::rows_of(v)? as u64;
        }
        // Reuse the hinted merge: mixed piece types and schema
        // mismatches surface as the same typed errors.
        let cat = merge_rows(values.to_vec(), Some(rows as usize))?;
        Ok((cat, offsets))
    }

    fn slice_back(&self, out: &DataValue, offset: u64, len: u64) -> Result<DataValue> {
        let rows = Self::rows_of(out)?;
        let (offset, len) = (offset as usize, len as usize);
        if offset.checked_add(len).is_none_or(|e| e > rows) {
            return Err(Error::Merge {
                split_type: "RowSplit",
                message: format!("slice [{offset}, {offset}+{len}) exceeds {rows} rows"),
            });
        }
        if let Some(d) = out.downcast_ref::<DfValue>() {
            return Ok(DataValue::new(DfValue(
                d.0.slice_rows(offset, offset + len),
            )));
        }
        if let Some(c) = out.downcast_ref::<ColValue>() {
            return Ok(DataValue::new(ColValue(c.0.slice(offset, offset + len))));
        }
        unreachable!("rows_of validated the type");
    }
}

/// Validate a placement write: schema/dtype agreement and row bounds.
fn check_fit(offset: usize, src_rows: usize, dst_rows: usize, schema_ok: bool) -> Result<()> {
    if !schema_ok || offset.checked_add(src_rows).is_none_or(|e| e > dst_rows) {
        return Err(Error::Merge {
            split_type: "RowSplit",
            message: format!(
                "piece of {src_rows} rows at offset {offset} does not fit \
                 placement output of {dst_rows} rows (or schema/dtype mismatch)"
            ),
        });
    }
    Ok(())
}

fn merge_rows(pieces: Vec<DataValue>, rows_hint: Option<usize>) -> Result<DataValue> {
    let first = pieces.first().ok_or_else(|| Error::Merge {
        split_type: "RowSplit",
        message: "no pieces".into(),
    })?;
    if first.downcast_ref::<DfValue>().is_some() {
        let frames: Vec<DataFrame> = pieces
            .iter()
            .map(|p| {
                p.downcast_ref::<DfValue>()
                    .map(|d| d.0.clone())
                    .ok_or_else(|| Error::Merge {
                        split_type: "RowSplit",
                        message: "mixed piece types".into(),
                    })
            })
            .collect::<Result<_>>()?;
        let merged = match rows_hint {
            Some(rows) => DataFrame::concat_hinted(&frames, rows),
            None => DataFrame::concat(&frames),
        };
        return Ok(DataValue::new(DfValue(merged)));
    }
    if first.downcast_ref::<ColValue>().is_some() {
        let cols: Vec<Column> = pieces
            .iter()
            .map(|p| {
                p.downcast_ref::<ColValue>()
                    .map(|c| c.0.clone())
                    .ok_or_else(|| Error::Merge {
                        split_type: "RowSplit",
                        message: "mixed piece types".into(),
                    })
            })
            .collect::<Result<_>>()?;
        let merged = match rows_hint {
            Some(rows) => Column::concat_hinted(&cols, rows),
            None => Column::concat(&cols),
        };
        return Ok(DataValue::new(ColValue(merged)));
    }
    Err(Error::Merge {
        split_type: "RowSplit",
        message: format!("unexpected piece type {}", first.type_name()),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn test_df() -> DataFrame {
        DataFrame::from_cols(vec![
            ("id", Column::from_i64((0..10).collect())),
            ("v", Column::from_f64((0..10).map(|i| i as f64).collect())),
        ])
    }

    #[test]
    fn frame_and_column_share_one_split_type() {
        let s = RowSplit;
        let d = DataValue::new(DfValue(test_df()));
        let c = DataValue::new(ColValue(test_df().col("v").clone()));
        let pd = s.construct(&[&d]).unwrap();
        let pc = s.construct(&[&c]).unwrap();
        assert_eq!(pd, pc);
        let a = SplitInstance::new(RowSplit::shared(), pd);
        let b = SplitInstance::new(RowSplit::shared(), pc);
        assert!(a.same_type(&b));
    }

    #[test]
    fn split_merge_roundtrip_frame() {
        let s = RowSplit;
        let d = DataValue::new(DfValue(test_df()));
        let params = vec![10];
        let p1 = s.split(&d, 0..4, &params).unwrap().unwrap();
        let p2 = s.split(&d, 4..10, &params).unwrap().unwrap();
        let merged = s.merge(vec![p1, p2], &params, 0).unwrap();
        let m = merged.downcast_ref::<DfValue>().unwrap();
        assert_eq!(m.0.num_rows(), 10);
        assert_eq!(m.0.col("id").i64s(), test_df().col("id").i64s());
    }

    #[test]
    fn split_merge_roundtrip_column() {
        let s = RowSplit;
        let c = DataValue::new(ColValue(Column::from_strs(&["a", "b", "c"])));
        let params = vec![3];
        let p1 = s.split(&c, 0..2, &params).unwrap().unwrap();
        let p2 = s.split(&c, 2..3, &params).unwrap().unwrap();
        let merged = s.merge(vec![p1, p2], &params, 0).unwrap();
        assert_eq!(
            merged.downcast_ref::<ColValue>().unwrap().0.strs(),
            &["a".to_string(), "b".to_string(), "c".to_string()]
        );
        // Out-of-range terminates.
        assert!(s.split(&c, 3..5, &params).unwrap().is_none());
    }

    #[test]
    fn placement_matches_concat_for_frames_and_columns() {
        let s = RowSplit;
        let df = test_df();
        let d = DataValue::new(DfValue(df.clone()));
        let params = vec![10];
        let p1 = s.split(&d, 0..4, &params).unwrap().unwrap();
        let p2 = s.split(&d, 4..10, &params).unwrap().unwrap();
        let out = s
            .alloc_merged(10, &params, Some(&p1))
            .unwrap()
            .expect("RowSplit supports placement");
        // Out-of-claim-order writes land at the right offsets.
        s.write_piece(&out, 4, &p2).unwrap();
        s.write_piece(&out, 0, &p1).unwrap();
        let m = out.downcast_ref::<DfValue>().unwrap();
        assert_eq!(m.0.col("id").i64s(), df.col("id").i64s());
        assert_eq!(m.0.col("v").f64s(), df.col("v").f64s());

        // Columns, including non-Copy string payloads.
        let col = Column::from_strs(&["a", "b", "c", "d", "e"]);
        let c = DataValue::new(ColValue(col.clone()));
        let params = vec![5];
        let p1 = s.split(&c, 0..2, &params).unwrap().unwrap();
        let p2 = s.split(&c, 2..5, &params).unwrap().unwrap();
        let out = s.alloc_merged(5, &params, Some(&p2)).unwrap().unwrap();
        s.write_piece(&out, 2, &p2).unwrap();
        s.write_piece(&out, 0, &p1).unwrap();
        assert_eq!(out.downcast_ref::<ColValue>().unwrap().0.strs(), col.strs());
        // A truncated (NULL-tail) output is the written prefix.
        let trunc = s.truncate_merged(out, 3, &params).unwrap();
        assert_eq!(
            trunc.downcast_ref::<ColValue>().unwrap().0.strs(),
            &["a".to_string(), "b".to_string(), "c".to_string()]
        );
    }

    #[test]
    fn placement_rejects_mismatched_pieces() {
        let s = RowSplit;
        let col = DataValue::new(ColValue(Column::from_i64(vec![1, 2, 3])));
        let params = vec![3];
        let piece = s.split(&col, 0..2, &params).unwrap().unwrap();
        let out = s.alloc_merged(3, &params, Some(&piece)).unwrap().unwrap();
        // Out-of-bounds offset.
        assert!(s.write_piece(&out, 2, &piece).is_err());
        // Dtype mismatch.
        let other = DataValue::new(ColValue(Column::from_f64(vec![1.0])));
        assert!(s.write_piece(&out, 0, &other).is_err());
        // Frame piece into a column output.
        let frame = DataValue::new(DfValue(test_df()));
        assert!(s.write_piece(&out, 0, &frame).is_err());
    }

    #[test]
    fn stale_params_rejected() {
        let s = RowSplit;
        let c = DataValue::new(ColValue(Column::from_i64(vec![1, 2])));
        assert!(s.split(&c, 0..1, &vec![5]).is_err());
        assert!(s.merge(vec![], &vec![0], 0).is_err());
    }
}
