//! Vector math kernels (the analogue of Intel MKL's VML header).
//!
//! Every kernel exists in two forms:
//!
//! * a **safe slice API** (`vd_add(a, b, out)`) that asserts lengths, and
//! * a **raw pointer API** (`vd_add_raw(n, a, b, out)`) with MKL's
//!   calling convention, which additionally permits *exact* in-place
//!   aliasing (`out == a` and/or `out == b`), the idiom the paper's
//!   Black Scholes snippet relies on (`vdLog1p(len, d1, d1)`).
//!
//! # Aliasing contract
//!
//! Like MKL, operand arrays must be **identical or disjoint**. Partial
//! overlap is undefined behaviour. The implementations branch on exact
//! aliasing so each specialization works on ordinary slices and
//! autovectorizes.
//!
//! Kernels honor the library's internal thread count
//! ([`crate::set_num_threads`]), mirroring MKL's TBB-backed internal
//! parallelism: this is the "already-parallelized library" baseline of
//! the paper's Figures 4j–m.

use crate::fastmath;
use crate::parallel::run_parallel;
use crate::trace;

macro_rules! vml_unary {
    ($(#[$doc:meta])* $name:ident, $raw:ident, $f:expr) => {
        $(#[$doc])*
        ///
        /// # Panics
        ///
        /// Panics if `a.len() != out.len()`.
        pub fn $name(a: &[f64], out: &mut [f64]) {
            assert_eq!(a.len(), out.len(), concat!(stringify!($name), ": length mismatch"));
            // SAFETY: lengths checked; slices obey Rust aliasing already.
            unsafe { $raw(out.len(), a.as_ptr(), out.as_mut_ptr()) }
        }

        /// Raw-pointer form of the kernel (MKL convention).
        ///
        /// # Safety
        ///
        /// `a` and `out` must each point to `n` readable (resp. writable)
        /// doubles, and must be either exactly equal or disjoint.
        pub unsafe fn $raw(n: usize, a: *const f64, out: *mut f64) {
            trace::record_unary(n, a as usize, out as usize);
            let (ap, op) = (a as usize, out as usize);
            run_parallel(n, move |start, len| {
                let f = $f;
                let a = ap as *const f64;
                let o = op as *mut f64;
                if ap == op {
                    // SAFETY: exact alias: one exclusive slice.
                    let out = unsafe {
                        std::slice::from_raw_parts_mut(o.add(start), len)
                    };
                    for x in out.iter_mut() {
                        *x = f(*x);
                    }
                } else {
                    // SAFETY: disjoint per the function contract.
                    let (src, dst) = unsafe {
                        (
                            std::slice::from_raw_parts(a.add(start), len),
                            std::slice::from_raw_parts_mut(o.add(start), len),
                        )
                    };
                    for i in 0..len {
                        dst[i] = f(src[i]);
                    }
                }
            });
        }
    };
}

macro_rules! vml_binary {
    ($(#[$doc:meta])* $name:ident, $raw:ident, $f:expr) => {
        $(#[$doc])*
        ///
        /// # Panics
        ///
        /// Panics if the slice lengths differ.
        pub fn $name(a: &[f64], b: &[f64], out: &mut [f64]) {
            assert_eq!(a.len(), out.len(), concat!(stringify!($name), ": length mismatch"));
            assert_eq!(b.len(), out.len(), concat!(stringify!($name), ": length mismatch"));
            // SAFETY: lengths checked; slices obey Rust aliasing already.
            unsafe { $raw(out.len(), a.as_ptr(), b.as_ptr(), out.as_mut_ptr()) }
        }

        /// Raw-pointer form of the kernel (MKL convention).
        ///
        /// # Safety
        ///
        /// All three pointers must cover `n` doubles and be pairwise
        /// either exactly equal or disjoint.
        pub unsafe fn $raw(n: usize, a: *const f64, b: *const f64, out: *mut f64) {
            trace::record_binary(n, a as usize, b as usize, out as usize);
            let (ap, bp, op) = (a as usize, b as usize, out as usize);
            run_parallel(n, move |start, len| {
                let f = $f;
                let a = ap as *const f64;
                let b = bp as *const f64;
                let o = op as *mut f64;
                match (ap == op, bp == op) {
                    (true, true) => {
                        // SAFETY: all three exactly alias.
                        let out = unsafe {
                            std::slice::from_raw_parts_mut(o.add(start), len)
                        };
                        for x in out.iter_mut() {
                            *x = f(*x, *x);
                        }
                    }
                    (true, false) => {
                        // SAFETY: out == a; b disjoint per contract.
                        let (bs, out) = unsafe {
                            (
                                std::slice::from_raw_parts(b.add(start), len),
                                std::slice::from_raw_parts_mut(o.add(start), len),
                            )
                        };
                        for i in 0..len {
                            out[i] = f(out[i], bs[i]);
                        }
                    }
                    (false, true) => {
                        // SAFETY: out == b; a disjoint per contract.
                        let (as_, out) = unsafe {
                            (
                                std::slice::from_raw_parts(a.add(start), len),
                                std::slice::from_raw_parts_mut(o.add(start), len),
                            )
                        };
                        for i in 0..len {
                            out[i] = f(as_[i], out[i]);
                        }
                    }
                    (false, false) => {
                        // SAFETY: pairwise disjoint (a == b is fine for
                        // two shared borrows).
                        let (as_, bs, out) = unsafe {
                            (
                                std::slice::from_raw_parts(a.add(start), len),
                                std::slice::from_raw_parts(b.add(start), len),
                                std::slice::from_raw_parts_mut(o.add(start), len),
                            )
                        };
                        for i in 0..len {
                            out[i] = f(as_[i], bs[i]);
                        }
                    }
                }
            });
        }
    };
}

macro_rules! vml_scalar {
    ($(#[$doc:meta])* $name:ident, $raw:ident, $f:expr) => {
        $(#[$doc])*
        ///
        /// # Panics
        ///
        /// Panics if `a.len() != out.len()`.
        pub fn $name(a: &[f64], k: f64, out: &mut [f64]) {
            assert_eq!(a.len(), out.len(), concat!(stringify!($name), ": length mismatch"));
            // SAFETY: lengths checked.
            unsafe { $raw(out.len(), a.as_ptr(), k, out.as_mut_ptr()) }
        }

        /// Raw-pointer form of the kernel (MKL convention).
        ///
        /// # Safety
        ///
        /// `a` and `out` must cover `n` doubles and be exactly equal or
        /// disjoint.
        pub unsafe fn $raw(n: usize, a: *const f64, k: f64, out: *mut f64) {
            trace::record_unary(n, a as usize, out as usize);
            let (ap, op) = (a as usize, out as usize);
            run_parallel(n, move |start, len| {
                let f = $f;
                let a = ap as *const f64;
                let o = op as *mut f64;
                if ap == op {
                    // SAFETY: exact alias.
                    let out = unsafe {
                        std::slice::from_raw_parts_mut(o.add(start), len)
                    };
                    for x in out.iter_mut() {
                        *x = f(*x, k);
                    }
                } else {
                    // SAFETY: disjoint per contract.
                    let (src, dst) = unsafe {
                        (
                            std::slice::from_raw_parts(a.add(start), len),
                            std::slice::from_raw_parts_mut(o.add(start), len),
                        )
                    };
                    for i in 0..len {
                        dst[i] = f(src[i], k);
                    }
                }
            });
        }
    };
}

// ----------------------------- binary ops -----------------------------

vml_binary!(
    /// Elementwise addition: `out[i] = a[i] + b[i]` (MKL `vdAdd`).
    vd_add, vd_add_raw, |x: f64, y: f64| x + y
);
vml_binary!(
    /// Elementwise subtraction: `out[i] = a[i] - b[i]` (MKL `vdSub`).
    vd_sub, vd_sub_raw, |x: f64, y: f64| x - y
);
vml_binary!(
    /// Elementwise multiplication: `out[i] = a[i] * b[i]` (MKL `vdMul`).
    vd_mul, vd_mul_raw, |x: f64, y: f64| x * y
);
vml_binary!(
    /// Elementwise division: `out[i] = a[i] / b[i]` (MKL `vdDiv`).
    vd_div, vd_div_raw, |x: f64, y: f64| x / y
);
vml_binary!(
    /// Elementwise power: `out[i] = a[i] ^ b[i]` (MKL `vdPow`).
    vd_pow, vd_pow_raw, fastmath::pow
);
vml_binary!(
    /// Elementwise maximum (MKL `vdFmax`).
    vd_fmax, vd_fmax_raw, |x: f64, y: f64| if x > y { x } else { y }
);
vml_binary!(
    /// Elementwise minimum (MKL `vdFmin`).
    vd_fmin, vd_fmin_raw, |x: f64, y: f64| if x < y { x } else { y }
);

// ----------------------------- unary ops ------------------------------

vml_unary!(
    /// Elementwise square: `out[i] = a[i]²` (MKL `vdSqr`).
    vd_sqr, vd_sqr_raw, |x: f64| x * x
);
vml_unary!(
    /// Elementwise square root (MKL `vdSqrt`).
    vd_sqrt, vd_sqrt_raw, fastmath::sqrt
);
vml_unary!(
    /// Elementwise absolute value (MKL `vdAbs`).
    vd_abs, vd_abs_raw, |x: f64| x.abs()
);
vml_unary!(
    /// Elementwise reciprocal (MKL `vdInv`).
    vd_inv, vd_inv_raw, |x: f64| 1.0 / x
);
vml_unary!(
    /// Elementwise negation.
    vd_neg, vd_neg_raw, |x: f64| -x
);
vml_unary!(
    /// Elementwise `e^x` (MKL `vdExp`), vectorizable polynomial kernel.
    vd_exp, vd_exp_raw, fastmath::exp
);
vml_unary!(
    /// Elementwise natural log (MKL `vdLn`).
    vd_ln, vd_ln_raw, fastmath::ln
);
vml_unary!(
    /// Elementwise `ln(1 + x)` (MKL `vdLog1p`).
    vd_log1p, vd_log1p_raw, fastmath::log1p
);
vml_unary!(
    /// Elementwise error function (MKL `vdErf`).
    vd_erf, vd_erf_raw, fastmath::erf
);
vml_unary!(
    /// Elementwise sine (MKL `vdSin`).
    vd_sin, vd_sin_raw, fastmath::sin
);
vml_unary!(
    /// Elementwise cosine (MKL `vdCos`).
    vd_cos, vd_cos_raw, fastmath::cos
);
vml_unary!(
    /// Elementwise arcsine (MKL `vdAsin`).
    vd_asin, vd_asin_raw, fastmath::asin
);

// ----------------------------- scalar ops -----------------------------

vml_scalar!(
    /// Scale by a constant: `out[i] = a[i] * k`.
    vd_scale, vd_scale_raw, |x: f64, k: f64| x * k
);
vml_scalar!(
    /// Shift by a constant: `out[i] = a[i] + k`.
    vd_shift, vd_shift_raw, |x: f64, k: f64| x + k
);
vml_scalar!(
    /// Constant power: `out[i] = a[i] ^ k`.
    vd_powx, vd_powx_raw, fastmath::pow
);
vml_scalar!(
    /// Constant-minus: `out[i] = k - a[i]` (for `1 - x` idioms).
    vd_rsub, vd_rsub_raw, |x: f64, k: f64| k - x
);
vml_scalar!(
    /// Constant-divide: `out[i] = k / a[i]`.
    vd_rdiv, vd_rdiv_raw, |x: f64, k: f64| k / x
);

/// Fill `out` with a constant.
pub fn vd_fill(k: f64, out: &mut [f64]) {
    for x in out.iter_mut() {
        *x = k;
    }
}

/// Copy `a` into `out`.
///
/// # Panics
///
/// Panics if lengths differ.
pub fn vd_copy(a: &[f64], out: &mut [f64]) {
    assert_eq!(a.len(), out.len(), "vd_copy: length mismatch");
    out.copy_from_slice(a);
}

#[cfg(test)]
mod tests {
    use super::*;

    fn seq(n: usize) -> Vec<f64> {
        (0..n).map(|i| i as f64 * 0.25 + 0.5).collect()
    }

    #[test]
    fn binary_ops_disjoint() {
        let a = seq(100);
        let b = vec![2.0; 100];
        let mut out = vec![0.0; 100];
        vd_add(&a, &b, &mut out);
        assert_eq!(out[4], a[4] + 2.0);
        vd_mul(&a, &b, &mut out);
        assert_eq!(out[9], a[9] * 2.0);
        vd_div(&a, &b, &mut out);
        assert_eq!(out[7], a[7] / 2.0);
        vd_sub(&a, &b, &mut out);
        assert_eq!(out[3], a[3] - 2.0);
        vd_fmax(&a, &b, &mut out);
        assert_eq!(out[0], 2.0);
        vd_fmin(&a, &b, &mut out);
        assert_eq!(out[0], 0.5);
    }

    #[test]
    fn in_place_aliasing_out_equals_a() {
        let mut d = seq(64);
        let orig = d.clone();
        let b = vec![3.0; 64];
        // SAFETY: exact aliasing is the documented MKL convention.
        unsafe { vd_add_raw(64, d.as_ptr(), b.as_ptr(), d.as_mut_ptr()) };
        for i in 0..64 {
            assert_eq!(d[i], orig[i] + 3.0);
        }
    }

    #[test]
    fn in_place_aliasing_out_equals_b() {
        let a = seq(64);
        let mut d = vec![3.0; 64];
        // SAFETY: exact aliasing per contract.
        unsafe { vd_sub_raw(64, a.as_ptr(), d.as_ptr(), d.as_mut_ptr()) };
        for i in 0..64 {
            assert_eq!(d[i], a[i] - 3.0);
        }
    }

    #[test]
    fn in_place_all_alias() {
        let mut d = seq(32);
        let orig = d.clone();
        // SAFETY: exact aliasing per contract.
        unsafe { vd_mul_raw(32, d.as_ptr(), d.as_ptr(), d.as_mut_ptr()) };
        for i in 0..32 {
            assert_eq!(d[i], orig[i] * orig[i]);
        }
    }

    #[test]
    fn unary_in_place_log1p_matches_black_scholes_idiom() {
        let mut d = seq(50);
        let orig = d.clone();
        // vdLog1p(len, d1, d1) from Listing 1.
        unsafe { vd_log1p_raw(50, d.as_ptr(), d.as_mut_ptr()) };
        for i in 0..50 {
            assert!((d[i] - orig[i].ln_1p()).abs() < 1e-12);
        }
    }

    #[test]
    fn transcendental_kernels_match_std() {
        let a = seq(200);
        let mut out = vec![0.0; 200];
        vd_exp(&a, &mut out);
        for i in 0..200 {
            assert!((out[i] - a[i].exp()).abs() / a[i].exp() < 1e-12);
        }
        vd_erf(&a, &mut out);
        for i in 0..200 {
            // A&S 7.1.26 accuracy class.
            assert!((out[i] - libm_erf_reference(a[i])).abs() < 2e-7);
        }
        vd_sin(&a, &mut out);
        for i in 0..200 {
            assert!((out[i] - a[i].sin()).abs() < 1e-12);
        }
    }

    fn libm_erf_reference(x: f64) -> f64 {
        // Series reference (same as fastmath's unit tests).
        if x.abs() > 5.0 {
            return x.signum();
        }
        let mut term = x;
        let mut sum = x;
        for n in 1..200 {
            term *= -x * x / n as f64;
            sum += term / (2 * n + 1) as f64;
        }
        sum * 2.0 / std::f64::consts::PI.sqrt()
    }

    #[test]
    fn scalar_ops() {
        let a = seq(16);
        let mut out = vec![0.0; 16];
        vd_scale(&a, 4.0, &mut out);
        assert_eq!(out[3], a[3] * 4.0);
        vd_shift(&a, -1.0, &mut out);
        assert_eq!(out[5], a[5] - 1.0);
        vd_rsub(&a, 1.0, &mut out);
        assert_eq!(out[2], 1.0 - a[2]);
        vd_rdiv(&a, 1.0, &mut out);
        assert_eq!(out[2], 1.0 / a[2]);
        vd_powx(&a, 2.0, &mut out);
        assert!((out[7] - a[7] * a[7]).abs() < 1e-10);
    }

    #[test]
    fn internal_parallelism_matches_serial() {
        let n = 100_000; // above the parallel threshold
        let a = seq(n);
        let b = seq(n);
        let mut serial = vec![0.0; n];
        vd_add(&a, &b, &mut serial);

        crate::set_num_threads(4);
        let mut par = vec![0.0; n];
        vd_add(&a, &b, &mut par);
        crate::set_num_threads(1);
        assert_eq!(serial, par);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn length_mismatch_panics() {
        let a = vec![1.0; 4];
        let b = vec![1.0; 5];
        let mut out = vec![0.0; 4];
        vd_add(&a, &b, &mut out);
    }
}
