//! Optional memory-traffic tracing.
//!
//! When enabled, every kernel records the sequential byte ranges it reads
//! and writes. The `cachesim` crate replays these streams through a cache
//! model to measure LLC miss rates machine-independently — our stand-in
//! for the hardware performance counters the paper samples with `perf`
//! (Table 4).
//!
//! Tracing costs one atomic load per kernel call when disabled.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Mutex;

/// One recorded operand stream: a sequential scan of `bytes` bytes
/// starting at `addr`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Access {
    /// Starting byte address of the scan.
    pub addr: usize,
    /// Length of the scan in bytes.
    pub bytes: usize,
    /// Whether the scan writes (stores) rather than reads (loads).
    pub write: bool,
}

static ENABLED: AtomicBool = AtomicBool::new(false);
static BUF: Mutex<Vec<Access>> = Mutex::new(Vec::new());

/// Begin recording kernel operand streams (clears any previous trace).
pub fn enable() {
    BUF.lock().expect("trace lock").clear();
    ENABLED.store(true, Ordering::SeqCst);
}

/// Whether tracing is currently enabled.
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Stop recording and return the captured trace in record order.
pub fn disable_and_take() -> Vec<Access> {
    ENABLED.store(false, Ordering::SeqCst);
    std::mem::take(&mut BUF.lock().expect("trace lock"))
}

/// Record operand streams for one kernel invocation.
#[inline]
pub(crate) fn record(accesses: &[Access]) {
    if enabled() {
        BUF.lock().expect("trace lock").extend_from_slice(accesses);
    }
}

/// Record a unary kernel call: read `n` doubles at `a`, write `n` at `o`.
#[inline]
pub(crate) fn record_unary(n: usize, a: usize, o: usize) {
    if enabled() {
        record(&[
            Access {
                addr: a,
                bytes: n * 8,
                write: false,
            },
            Access {
                addr: o,
                bytes: n * 8,
                write: true,
            },
        ]);
    }
}

/// Record a binary kernel call.
#[inline]
pub(crate) fn record_binary(n: usize, a: usize, b: usize, o: usize) {
    if enabled() {
        record(&[
            Access {
                addr: a,
                bytes: n * 8,
                write: false,
            },
            Access {
                addr: b,
                bytes: n * 8,
                write: false,
            },
            Access {
                addr: o,
                bytes: n * 8,
                write: true,
            },
        ]);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tracing_roundtrip() {
        enable();
        record_unary(4, 0x1000, 0x2000);
        record_binary(2, 0x1000, 0x3000, 0x1000);
        let t = disable_and_take();
        assert_eq!(t.len(), 5);
        assert_eq!(
            t[0],
            Access {
                addr: 0x1000,
                bytes: 32,
                write: false
            }
        );
        assert!(t[1].write);
        assert_eq!(t[4].addr, 0x1000);
        // Disabled: nothing recorded.
        record_unary(4, 0x1000, 0x2000);
        assert!(disable_and_take().is_empty());
    }
}
