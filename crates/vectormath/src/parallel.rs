//! Internal thread parallelism, mirroring MKL's TBB-backed threading.
//!
//! The library-global thread count defaults to 1 (sequential). Libraries
//! like MKL parallelize *within* each call; the paper's Figures 4j–m
//! measure Mozart against exactly this baseline.

use std::sync::atomic::{AtomicUsize, Ordering};

static THREADS: AtomicUsize = AtomicUsize::new(1);

/// Minimum elements before a kernel bothers spawning threads.
pub(crate) const PAR_THRESHOLD: usize = 1 << 14;

/// Set the library's internal thread count (like `mkl_set_num_threads`).
pub fn set_num_threads(n: usize) {
    THREADS.store(n.max(1), Ordering::SeqCst);
}

/// Current internal thread count.
pub fn num_threads() -> usize {
    THREADS.load(Ordering::Relaxed)
}

/// Run `f(start, len)` over `[0, n)`, splitting across the library's
/// internal threads when profitable.
pub(crate) fn run_parallel(n: usize, f: impl Fn(usize, usize) + Send + Sync) {
    let t = num_threads();
    if t <= 1 || n < PAR_THRESHOLD {
        f(0, n);
        return;
    }
    let per = n.div_ceil(t);
    std::thread::scope(|s| {
        for w in 0..t {
            let start = w * per;
            if start >= n {
                break;
            }
            let len = per.min(n - start);
            let f = &f;
            s.spawn(move || f(start, len));
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    #[test]
    fn covers_all_elements_exactly_once() {
        set_num_threads(3);
        let n = PAR_THRESHOLD + 17;
        let sum = AtomicU64::new(0);
        run_parallel(n, |start, len| {
            sum.fetch_add(
                (start..start + len).map(|x| x as u64).sum(),
                Ordering::SeqCst,
            );
        });
        set_num_threads(1);
        let expected: u64 = (0..n as u64).sum();
        assert_eq!(sum.load(Ordering::SeqCst), expected);
    }

    #[test]
    fn small_inputs_stay_serial() {
        set_num_threads(4);
        let calls = AtomicU64::new(0);
        run_parallel(16, |start, len| {
            assert_eq!((start, len), (0, 16));
            calls.fetch_add(1, Ordering::SeqCst);
        });
        set_num_threads(1);
        assert_eq!(calls.load(Ordering::SeqCst), 1);
    }
}
