//! # vectormath — an MKL-style vector math library
//!
//! The "existing, hand-optimized library" of the reproduction: the
//! stand-in for Intel MKL's vector math (VML) and L1/L2 BLAS headers that
//! the paper annotates with split annotations (§7).
//!
//! Design constraints that make it a faithful substitute:
//!
//! * every call performs a **full pass** over its operand arrays, so a
//!   chain of calls on large arrays is memory-bound (the bottleneck SAs
//!   attack, §2.1);
//! * kernels are written so LLVM **autovectorizes** them, including the
//!   transcendentals ([`fastmath`]) — this is the "code developers have
//!   already hand-optimized" that lets Mozart beat IR compilers that
//!   emit scalar `erf`/`exp` (Figure 1);
//! * the raw-pointer entry points allow MKL's **exact in-place aliasing**
//!   convention (`vdLog1p(len, d1, d1)`);
//! * calls parallelize internally across a configurable number of
//!   threads ([`set_num_threads`]), like MKL on top of TBB; and
//! * the library knows nothing about Mozart: annotations live entirely
//!   in the separate `sa-vectormath` crate.
//!
//! Optional [`trace`]-based traffic recording supports the machine-
//! independent cache-miss measurements of Table 4.

#![warn(missing_docs)]

pub mod blas;
// rustfmt hits exponential blowup on this module's deeply nested Horner
// polynomials (hand-formatted on purpose); formatting is skipped.
#[rustfmt::skip]
pub mod fastmath;
mod parallel;
pub mod trace;
pub mod vml;

pub use blas::{dasum, daxpy, daxpy_raw, ddot, dgemv, dscal};
pub use parallel::{num_threads, set_num_threads};
pub use vml::*;
