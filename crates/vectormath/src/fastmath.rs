//! Vectorizable scalar math kernels.
//!
//! These are branch-light polynomial implementations in the style of the
//! hand-optimized SIMD routines inside Intel MKL's vector math library.
//! Written so LLVM can autovectorize the elementwise loops in
//! [`crate::vml`] (no calls into libm, no data-dependent branches on the
//! hot path).
//!
//! Accuracy targets (documented per function, verified by tests):
//! `exp`/`ln`/`log1p` ≲ 4 ulp over their primary ranges; `erf` absolute
//! error < 1.5e-7 (Abramowitz & Stegun 7.1.26, the classic vector-math
//! tradeoff); `sin`/`cos` < 1e-13 absolute for |x| ≤ 10⁵; `asin` < 1e-9.

// The hi/lo-split range-reduction constants below are libm idiom: each
// pair deliberately carries more (or differently-rounded) digits than
// one f64, which trips these lints.
#![allow(clippy::approx_constant, clippy::excessive_precision)]

/// log2(e)
const LOG2E: f64 = std::f64::consts::LOG2_E;
/// High/low split of ln(2) for accurate range reduction.
const LN2_HI: f64 = 6.931_471_803_691_238_16e-1;
const LN2_LO: f64 = 1.908_214_929_270_587_70e-10;

/// Fast `e^x`.
///
/// Range-reduced (`x = n·ln2 + r`, |r| ≤ ln2/2) with a degree-11 Taylor
/// polynomial for `e^r`; `2^n` is assembled from exponent bits.
/// Overflow/underflow clamp to `inf`/`0` like libm.
#[inline]
pub fn exp(x: f64) -> f64 {
    if x > 709.78 {
        return f64::INFINITY;
    }
    if x < -745.0 {
        return 0.0;
    }
    if x.is_nan() {
        return f64::NAN;
    }
    let n = (x * LOG2E).round();
    let r = (x - n * LN2_HI) - n * LN2_LO;
    // e^r for |r| <= ~0.347: Taylor with Horner evaluation.
    let p = 1.0
        + r * (1.0
            + r * (0.5
                + r * (1.0 / 6.0
                    + r * (1.0 / 24.0
                        + r * (1.0 / 120.0
                            + r * (1.0 / 720.0
                                + r * (1.0 / 5040.0
                                    + r * (1.0 / 40320.0
                                        + r * (1.0 / 362880.0
                                            + r * (1.0 / 3628800.0
                                                + r / 39916800.0))))))))));
    let n = n as i64;
    // 2^n via exponent bits; n in [-1075, 1024] after the clamps above.
    let scale = if n >= -1022 {
        f64::from_bits(((n + 1023) as u64) << 52)
    } else {
        // Subnormal results: scale in two steps.
        f64::from_bits(((n + 1023 + 64) as u64) << 52) * f64::from_bits((1023u64 - 64) << 52)
    };
    p * scale
}

/// Fast natural logarithm.
///
/// Decomposes `x = m·2^e` with `m ∈ [√2/2, √2)` and evaluates
/// `ln(m) = 2·atanh((m-1)/(m+1))` with a degree-13 odd polynomial.
#[inline]
pub fn ln(x: f64) -> f64 {
    if x < 0.0 || x.is_nan() {
        return f64::NAN;
    }
    if x == 0.0 {
        return f64::NEG_INFINITY;
    }
    if x.is_infinite() {
        return f64::INFINITY;
    }
    let bits = x.to_bits();
    let mut e = ((bits >> 52) & 0x7ff) as i64 - 1023;
    let mut m = f64::from_bits((bits & 0x000f_ffff_ffff_ffff) | (1023u64 << 52));
    if m > std::f64::consts::SQRT_2 {
        m *= 0.5;
        e += 1;
    }
    let s = (m - 1.0) / (m + 1.0);
    let s2 = s * s;
    let poly = 2.0
        * s
        * (1.0
            + s2 * (1.0 / 3.0
                + s2 * (1.0 / 5.0
                    + s2 * (1.0 / 7.0
                        + s2 * (1.0 / 9.0
                            + s2 * (1.0 / 11.0
                                + s2 * (1.0 / 13.0
                                    + s2 * (1.0 / 15.0 + s2 / 17.0))))))));
    e as f64 * LN2_HI + (poly + e as f64 * LN2_LO)
}

/// Fast `ln(1 + x)` without catastrophic cancellation near zero.
#[inline]
pub fn log1p(x: f64) -> f64 {
    if x <= -1.0 {
        return if x == -1.0 { f64::NEG_INFINITY } else { f64::NAN };
    }
    if x.abs() < 0.25 {
        // ln(1+x) = 2 atanh(x / (2 + x))
        let s = x / (2.0 + x);
        let s2 = s * s;
        2.0 * s
            * (1.0
                + s2 * (1.0 / 3.0
                    + s2 * (1.0 / 5.0
                        + s2 * (1.0 / 7.0
                            + s2 * (1.0 / 9.0
                                + s2 * (1.0 / 11.0
                                    + s2 * (1.0 / 13.0 + s2 / 15.0)))))))
    } else {
        ln(1.0 + x)
    }
}

/// Fast error function (Abramowitz & Stegun 7.1.26).
///
/// Absolute error < 5e-7, matching the precision class MKL's EP
/// (enhanced-performance) mode trades for throughput.
#[inline]
pub fn erf(x: f64) -> f64 {
    const A1: f64 = 0.254829592;
    const A2: f64 = -0.284496736;
    const A3: f64 = 1.421413741;
    const A4: f64 = -1.453152027;
    const A5: f64 = 1.061405429;
    const P: f64 = 0.3275911;
    let sign = if x < 0.0 { -1.0 } else { 1.0 };
    let ax = x.abs();
    let t = 1.0 / (1.0 + P * ax);
    let y = 1.0 - ((((A5 * t + A4) * t + A3) * t + A2) * t + A1) * t * exp(-ax * ax);
    sign * y
}

/// Fast square root (hardware instruction; present for API symmetry).
#[inline]
pub fn sqrt(x: f64) -> f64 {
    x.sqrt()
}

/// π/2 split for Cody–Waite range reduction.
const PIO2_HI: f64 = 1.570_796_326_794_896_56;
const PIO2_MID: f64 = 6.123_233_995_736_766_04e-17;

/// Fast sine via Cody–Waite reduction modulo π/2 and degree-13/12
/// minimax-style polynomials. Accurate to ~1e-13 for |x| ≤ 1e5.
#[inline]
pub fn sin(x: f64) -> f64 {
    let (q, r) = reduce_pio2(x);
    match q & 3 {
        0 => sin_poly(r),
        1 => cos_poly(r),
        2 => -sin_poly(r),
        _ => -cos_poly(r),
    }
}

/// Fast cosine (see [`sin`]).
#[inline]
pub fn cos(x: f64) -> f64 {
    let (q, r) = reduce_pio2(x);
    match q & 3 {
        0 => cos_poly(r),
        1 => -sin_poly(r),
        2 => -cos_poly(r),
        _ => sin_poly(r),
    }
}

#[inline]
fn reduce_pio2(x: f64) -> (i64, f64) {
    let q = (x * std::f64::consts::FRAC_2_PI).round();
    let r = (x - q * PIO2_HI) - q * PIO2_MID;
    (q as i64, r)
}

#[inline]
fn sin_poly(r: f64) -> f64 {
    let r2 = r * r;
    r * (1.0
        + r2 * (-1.0 / 6.0
            + r2 * (1.0 / 120.0
                + r2 * (-1.0 / 5040.0
                    + r2 * (1.0 / 362880.0
                        + r2 * (-1.0 / 39916800.0 + r2 / 6227020800.0))))))
}

#[inline]
fn cos_poly(r: f64) -> f64 {
    let r2 = r * r;
    1.0 + r2
        * (-0.5
            + r2 * (1.0 / 24.0
                + r2 * (-1.0 / 720.0
                    + r2 * (1.0 / 40320.0
                        + r2 * (-1.0 / 3628800.0 + r2 / 479001600.0)))))
}

/// Fast arcsine.
///
/// Polynomial on |x| ≤ 0.5; the identity
/// `asin(x) = π/2 − 2·asin(√((1−x)/2))` otherwise. Error < 1e-9.
#[inline]
pub fn asin(x: f64) -> f64 {
    if x.is_nan() || x.abs() > 1.0 {
        return f64::NAN;
    }
    let sign = if x < 0.0 { -1.0 } else { 1.0 };
    let ax = x.abs();
    if ax <= 0.5 {
        sign * asin_poly(ax)
    } else {
        let z = ((1.0 - ax) * 0.5).sqrt();
        sign * (std::f64::consts::FRAC_PI_2 - 2.0 * asin_poly(z))
    }
}

/// Taylor-like series for asin on [0, 0.5]: x + x³/6 + 3x⁵/40 + ...
#[inline]
fn asin_poly(x: f64) -> f64 {
    let x2 = x * x;
    x * (1.0
        + x2 * (1.0 / 6.0
            + x2 * (3.0 / 40.0
                + x2 * (15.0 / 336.0
                    + x2 * (105.0 / 3456.0
                        + x2 * (945.0 / 42240.0
                            + x2 * (10395.0 / 599040.0
                                + x2 * (135135.0 / 9676800.0
                                    + x2 * (2027025.0 / 175472640.0
                                        + x2 * (34459425.0 / 3530096640.0
                                            + x2 * (654729075.0 / 77409976320.0
                                                + x2 * (13749310575.0
                                                    / 1824676331520.0))))))))))))
}

/// Fast `x^y` via `exp(y · ln(x))` for positive bases.
///
/// Negative bases return NaN (like libm for non-integer exponents);
/// MKL's `vdPow` has the same domain.
#[inline]
pub fn pow(x: f64, y: f64) -> f64 {
    if x == 0.0 {
        return if y > 0.0 { 0.0 } else { f64::INFINITY };
    }
    if x < 0.0 {
        return f64::NAN;
    }
    exp(y * ln(x))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn assert_close(a: f64, b: f64, tol: f64, what: &str) {
        let denom = b.abs().max(1.0);
        assert!(
            (a - b).abs() / denom < tol,
            "{what}: got {a}, expected {b} (rel err {})",
            (a - b).abs() / denom
        );
    }

    #[test]
    fn exp_matches_std() {
        for i in -200..=200 {
            let x = i as f64 * 0.37;
            assert_close(exp(x), x.exp(), 1e-13, &format!("exp({x})"));
        }
        assert_eq!(exp(1000.0), f64::INFINITY);
        assert_eq!(exp(-1000.0), 0.0);
        assert!(exp(f64::NAN).is_nan());
    }

    #[test]
    fn ln_matches_std() {
        for i in 1..2000 {
            let x = i as f64 * 0.13;
            assert_close(ln(x), x.ln(), 1e-12, &format!("ln({x})"));
        }
        assert_close(ln(1e-300), (1e-300f64).ln(), 1e-12, "ln tiny");
        assert_close(ln(1e300), (1e300f64).ln(), 1e-12, "ln huge");
        assert_eq!(ln(0.0), f64::NEG_INFINITY);
        assert!(ln(-1.0).is_nan());
    }

    #[test]
    fn log1p_matches_std() {
        for i in -400..4000 {
            let x = i as f64 * 2.4e-3;
            assert_close(log1p(x), x.ln_1p(), 1e-12, &format!("log1p({x})"));
        }
        // Near-zero accuracy (where the naive form cancels).
        assert_close(log1p(1e-15), 1e-15, 1e-12, "log1p tiny");
        assert_eq!(log1p(-1.0), f64::NEG_INFINITY);
    }

    #[test]
    fn erf_is_within_documented_error() {
        for i in -60..=60 {
            let x = i as f64 * 0.1;
            // Reference: high-precision series for small x, asymptotic 1
            // for large x.
            let reference = reference_erf(x);
            assert!(
                (erf(x) - reference).abs() < 5e-7,
                "erf({x}): got {}, want {reference}",
                erf(x)
            );
        }
        // The rational approximation is ~1e-9 off at the origin.
        assert!(erf(0.0).abs() < 1e-8);
        assert!(erf(6.0) > 0.999999);
        assert!(erf(-6.0) < -0.999999);
    }

    /// Taylor series reference implementation of erf (slow, accurate).
    fn reference_erf(x: f64) -> f64 {
        if x.abs() > 5.0 {
            return x.signum();
        }
        let mut term = x;
        let mut sum = x;
        for n in 1..200 {
            term *= -x * x / n as f64;
            sum += term / (2 * n + 1) as f64;
        }
        sum * 2.0 / std::f64::consts::PI.sqrt()
    }

    #[test]
    fn trig_matches_std() {
        for i in -1000..=1000 {
            let x = i as f64 * 0.097;
            assert_close(sin(x), x.sin(), 1e-12, &format!("sin({x})"));
            assert_close(cos(x), x.cos(), 1e-12, &format!("cos({x})"));
        }
    }

    #[test]
    fn asin_matches_std() {
        for i in -100..=100 {
            let x = i as f64 / 100.0;
            assert_close(asin(x), x.asin(), 1e-9, &format!("asin({x})"));
        }
        assert!(asin(1.5).is_nan());
    }

    #[test]
    fn pow_matches_std_for_positive_base() {
        for (x, y) in [(2.0, 10.0), (1.5, -3.3), (100.0, 0.5), (0.3, 2.7)] {
            assert_close(pow(x, y), x.powf(y), 1e-12, &format!("pow({x},{y})"));
        }
        assert_eq!(pow(0.0, 2.0), 0.0);
        assert!(pow(-2.0, 0.5).is_nan());
    }
}
