//! L1/L2 BLAS routines (the analogue of MKL's `saxpy` and matrix-vector
//! headers the paper annotates).

use crate::parallel::run_parallel;
use crate::trace;

/// `y = alpha * x + y` (BLAS `daxpy`).
///
/// # Panics
///
/// Panics if `x.len() != y.len()`.
pub fn daxpy(alpha: f64, x: &[f64], y: &mut [f64]) {
    assert_eq!(x.len(), y.len(), "daxpy: length mismatch");
    // SAFETY: lengths checked; distinct borrows guarantee disjointness.
    unsafe { daxpy_raw(y.len(), alpha, x.as_ptr(), y.as_mut_ptr()) }
}

/// Raw-pointer `daxpy`.
///
/// # Safety
///
/// `x` and `y` must cover `n` doubles and be exactly equal or disjoint.
pub unsafe fn daxpy_raw(n: usize, alpha: f64, x: *const f64, y: *mut f64) {
    trace::record_binary(n, x as usize, y as usize, y as usize);
    let (xp, yp) = (x as usize, y as usize);
    run_parallel(n, move |start, len| {
        let x = xp as *const f64;
        let y = yp as *mut f64;
        if xp == yp {
            // SAFETY: exact alias.
            let ys = unsafe { std::slice::from_raw_parts_mut(y.add(start), len) };
            for v in ys.iter_mut() {
                *v += alpha * *v;
            }
        } else {
            // SAFETY: disjoint per contract.
            let (xs, ys) = unsafe {
                (
                    std::slice::from_raw_parts(x.add(start), len),
                    std::slice::from_raw_parts_mut(y.add(start), len),
                )
            };
            for i in 0..len {
                ys[i] += alpha * xs[i];
            }
        }
    });
}

/// Dot product (BLAS `ddot`).
///
/// # Panics
///
/// Panics if `x.len() != y.len()`.
pub fn ddot(x: &[f64], y: &[f64]) -> f64 {
    assert_eq!(x.len(), y.len(), "ddot: length mismatch");
    trace::record_binary(x.len(), x.as_ptr() as usize, y.as_ptr() as usize, 0);
    let mut acc = 0.0;
    for i in 0..x.len() {
        acc += x[i] * y[i];
    }
    acc
}

/// Scale in place (BLAS `dscal`).
pub fn dscal(alpha: f64, x: &mut [f64]) {
    trace::record_unary(x.len(), x.as_ptr() as usize, x.as_ptr() as usize);
    for v in x.iter_mut() {
        *v *= alpha;
    }
}

/// Sum of absolute values (BLAS `dasum`).
pub fn dasum(x: &[f64]) -> f64 {
    x.iter().map(|v| v.abs()).sum()
}

/// Dense row-major matrix-vector product:
/// `y = alpha * A * x + beta * y` (BLAS `dgemv`, no transpose).
///
/// `a` is `m x n` in row-major order.
///
/// # Panics
///
/// Panics if dimensions are inconsistent.
pub fn dgemv(m: usize, n: usize, alpha: f64, a: &[f64], x: &[f64], beta: f64, y: &mut [f64]) {
    assert_eq!(a.len(), m * n, "dgemv: matrix size mismatch");
    assert_eq!(x.len(), n, "dgemv: x length mismatch");
    assert_eq!(y.len(), m, "dgemv: y length mismatch");
    trace::record(&[
        trace::Access {
            addr: a.as_ptr() as usize,
            bytes: a.len() * 8,
            write: false,
        },
        trace::Access {
            addr: x.as_ptr() as usize,
            bytes: x.len() * 8,
            write: false,
        },
        trace::Access {
            addr: y.as_ptr() as usize,
            bytes: y.len() * 8,
            write: true,
        },
    ]);
    for i in 0..m {
        let row = &a[i * n..(i + 1) * n];
        let mut acc = 0.0;
        for j in 0..n {
            acc += row[j] * x[j];
        }
        y[i] = alpha * acc + beta * y[i];
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn daxpy_basic() {
        let x = vec![1.0, 2.0, 3.0];
        let mut y = vec![10.0, 20.0, 30.0];
        daxpy(2.0, &x, &mut y);
        assert_eq!(y, vec![12.0, 24.0, 36.0]);
    }

    #[test]
    fn daxpy_in_place_alias() {
        let mut y = vec![1.0, 2.0];
        // SAFETY: exact alias per contract.
        unsafe { daxpy_raw(2, 3.0, y.as_ptr(), y.as_mut_ptr()) };
        assert_eq!(y, vec![4.0, 8.0]);
    }

    #[test]
    fn ddot_and_dscal_and_dasum() {
        let x = vec![1.0, -2.0, 3.0];
        let y = vec![4.0, 5.0, 6.0];
        assert_eq!(ddot(&x, &y), 4.0 - 10.0 + 18.0);
        let mut z = vec![1.5, -2.0];
        dscal(2.0, &mut z);
        assert_eq!(z, vec![3.0, -4.0]);
        assert_eq!(dasum(&x), 6.0);
    }

    #[test]
    fn dgemv_row_major() {
        // A = [[1, 2], [3, 4], [5, 6]], x = [1, 1]
        let a = vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0];
        let x = vec![1.0, 1.0];
        let mut y = vec![1.0, 1.0, 1.0];
        dgemv(3, 2, 1.0, &a, &x, 0.5, &mut y);
        assert_eq!(y, vec![3.5, 7.5, 11.5]);
    }

    #[test]
    #[should_panic(expected = "dgemv: matrix size mismatch")]
    fn dgemv_checks_dimensions() {
        let a = vec![1.0; 5];
        let x = vec![1.0; 2];
        let mut y = vec![0.0; 3];
        dgemv(3, 2, 1.0, &a, &x, 0.0, &mut y);
    }
}
