//! Fused shallow-water step: the roll-based finite-difference update
//! written as direct stencil loops with periodic boundaries, fused over
//! the whole grid per step.

use crate::parallel::parallel_ranges;

/// Grid state: height and x/y momenta, row-major `n x n`.
#[derive(Debug, Clone, PartialEq)]
pub struct Grid {
    /// Grid side length.
    pub n: usize,
    /// Water column height.
    pub h: Vec<f64>,
    /// x momentum.
    pub u: Vec<f64>,
    /// y momentum.
    pub v: Vec<f64>,
}

impl Grid {
    /// A centered Gaussian drop on a flat pool, the benchmark's initial
    /// condition.
    pub fn droplet(n: usize) -> Grid {
        let mut h = vec![1.0; n * n];
        let c = n as f64 / 2.0;
        for y in 0..n {
            for x in 0..n {
                let dx = x as f64 - c;
                let dy = y as f64 - c;
                h[y * n + x] += 0.5 * (-(dx * dx + dy * dy) / (n as f64)).exp();
            }
        }
        Grid {
            n,
            h,
            u: vec![0.0; n * n],
            v: vec![0.0; n * n],
        }
    }

    /// Total water volume (a conserved diagnostic).
    pub fn total_mass(&self) -> f64 {
        self.h.iter().sum()
    }
}

/// Gravity constant used by the model.
pub const GRAV: f64 = 9.8;

/// One explicit timestep with periodic boundaries, fused and parallel
/// over rows.
pub fn step(g: &mut Grid, dt: f64, threads: usize) {
    let n = g.n;
    let (h0, u0, v0) = (g.h.clone(), g.u.clone(), g.v.clone());
    let h_addr = g.h.as_mut_ptr() as usize;
    let u_addr = g.u.as_mut_ptr() as usize;
    let v_addr = g.v.as_mut_ptr() as usize;
    let dx = 1.0;
    parallel_ranges(n, threads, move |r0, r1| {
        let h = h_addr as *mut f64;
        let u = u_addr as *mut f64;
        let v = v_addr as *mut f64;
        for y in r0..r1 {
            let ym = (y + n - 1) % n;
            let yp = (y + 1) % n;
            for x in 0..n {
                let xm = (x + n - 1) % n;
                let xp = (x + 1) % n;
                let i = y * n + x;
                // Central differences on the rolled grids.
                let dhdx = (h0[y * n + xp] - h0[y * n + xm]) / (2.0 * dx);
                let dhdy = (h0[yp * n + x] - h0[ym * n + x]) / (2.0 * dx);
                let dudx = (u0[y * n + xp] - u0[y * n + xm]) / (2.0 * dx);
                let dvdy = (v0[yp * n + x] - v0[ym * n + x]) / (2.0 * dx);
                // SAFETY: each worker owns rows [r0, r1).
                unsafe {
                    *u.add(i) = u0[i] - dt * GRAV * dhdx;
                    *v.add(i) = v0[i] - dt * GRAV * dhdy;
                    *h.add(i) =
                        h0[i] - dt * h0[i] * (dudx + dvdy) - dt * (u0[i] * dhdx + v0[i] * dhdy);
                }
            }
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wave_spreads_and_parallel_matches_serial() {
        let run = |threads: usize| {
            let mut g = Grid::droplet(32);
            for _ in 0..5 {
                step(&mut g, 0.01, threads);
            }
            g
        };
        let a = run(1);
        let b = run(3);
        assert_eq!(a, b);
        // The droplet flattens: center height decreases.
        let init = Grid::droplet(32);
        let c = 16 * 32 + 16;
        assert!(a.h[c] < init.h[c]);
        // Mass stays near-conserved over a few small steps.
        assert!((a.total_mass() - init.total_mass()).abs() / init.total_mass() < 1e-3);
    }
}
