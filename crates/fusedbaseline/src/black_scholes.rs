//! Fused Black Scholes: the whole 32-operator pipeline in one parallel
//! pass, intermediates in registers (what Weld's loop fusion produces).

use crate::math::{cnd_scalar, exp_scalar, log1p_scalar};
use crate::parallel::parallel_ranges;

/// Compute call and put prices for every option in one fused pass.
///
/// # Panics
///
/// Panics if slice lengths differ.
#[allow(clippy::too_many_arguments)]
pub fn run(
    price: &[f64],
    strike: &[f64],
    t: &[f64],
    rate: &[f64],
    vol: &[f64],
    call: &mut [f64],
    put: &mut [f64],
    threads: usize,
) {
    let n = price.len();
    assert!(
        [
            strike.len(),
            t.len(),
            rate.len(),
            vol.len(),
            call.len(),
            put.len()
        ]
        .iter()
        .all(|&l| l == n),
        "black_scholes: length mismatch"
    );
    // SAFETY-free parallelism: disjoint output ranges via raw parts.
    let call_addr = call.as_mut_ptr() as usize;
    let put_addr = put.as_mut_ptr() as usize;
    parallel_ranges(n, threads, move |a, b| {
        let call = call_addr as *mut f64;
        let put = put_addr as *mut f64;
        for i in a..b {
            let rsig = rate[i] + vol[i] * vol[i] * 0.5;
            let vol_sqrt = vol[i] * t[i].sqrt();
            let d1 = (log1p_scalar(price[i] / strike[i] - 1.0) + rsig * t[i]) / vol_sqrt;
            let d2 = d1 - vol_sqrt;
            let e_rt = exp_scalar(-rate[i] * t[i]);
            let c = price[i] * cnd_scalar(d1) - e_rt * strike[i] * cnd_scalar(d2);
            // SAFETY: ranges [a, b) are disjoint across workers.
            unsafe {
                *call.add(i) = c;
                *put.add(i) = e_rt * strike[i] - price[i] + c;
            }
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parallel_matches_serial() {
        let n = 3000;
        let price: Vec<f64> = (0..n).map(|i| 30.0 + (i % 60) as f64).collect();
        let strike = vec![50.0; n];
        let t = vec![1.0; n];
        let rate = vec![0.02; n];
        let vol = vec![0.3; n];
        let mut c1 = vec![0.0; n];
        let mut p1 = vec![0.0; n];
        run(&price, &strike, &t, &rate, &vol, &mut c1, &mut p1, 1);
        let mut c4 = vec![0.0; n];
        let mut p4 = vec![0.0; n];
        run(&price, &strike, &t, &rate, &vol, &mut c4, &mut p4, 4);
        assert_eq!(c1, c4);
        assert_eq!(p1, p4);
        // Sanity: deep in-the-money call is worth ~price - strike.
        let hi = price.iter().position(|&p| p == 89.0).unwrap();
        assert!(c1[hi] > 39.0 && c1[hi] < 89.0);
    }
}
