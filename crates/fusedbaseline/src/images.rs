//! Fused image filters: the Nashville and Gotham pipelines composed
//! into one per-pixel pass (maximal fusion of the instagram-filter
//! operator chains).

use imagelib::Image;

use crate::parallel::parallel_ranges;

/// Fused Nashville filter: the full operator chain applied per pixel in
/// one pass, parallel over rows.
pub fn nashville(img: &Image, threads: usize) -> Image {
    fuse_rows(img, threads, |px| {
        let px = colortone_px(px, [0.13, 0.17, 0.43], false);
        let px = colortone_px(px, [0.97, 0.85, 0.68], true);
        let px = gamma_px(px, 1.2);
        modulate_px(px, 1.0, 1.5, 0.0)
    })
}

/// Fused Gotham filter.
pub fn gotham(img: &Image, threads: usize) -> Image {
    fuse_rows(img, threads, |px| {
        let px = modulate_px(px, 1.2, 0.1, 0.0);
        let px = colorize_px(px, [0.13, 0.16, 0.32], 0.2);
        let px = gamma_px(px, 0.5);
        contrast_px(px, 6.0)
    })
}

fn fuse_rows(img: &Image, threads: usize, f: impl Fn([f32; 3]) -> [f32; 3] + Send + Sync) -> Image {
    let (w, h) = (img.width(), img.height());
    let src = img.data();
    let mut out = vec![0.0f32; src.len()];
    let out_addr = out.as_mut_ptr() as usize;
    parallel_ranges(h, threads, |r0, r1| {
        let dst = out_addr as *mut f32;
        for y in r0..r1 {
            for x in 0..w {
                let i = (y * w + x) * 3;
                let px = f([src[i], src[i + 1], src[i + 2]]);
                // SAFETY: each worker writes its own disjoint rows.
                unsafe {
                    *dst.add(i) = px[0].clamp(0.0, 1.0);
                    *dst.add(i + 1) = px[1].clamp(0.0, 1.0);
                    *dst.add(i + 2) = px[2].clamp(0.0, 1.0);
                }
            }
        }
    });
    Image::from_rgb(w, h, out)
}

// Per-pixel forms matching imagelib's operators exactly.

fn colortone_px([r, g, b]: [f32; 3], rgb: [f32; 3], negate: bool) -> [f32; 3] {
    let blend = |c: f32, t: f32| -> f32 {
        let m = if negate {
            1.0 - (1.0 - c) * (1.0 - t)
        } else {
            c * t
        };
        0.5 * c + 0.5 * m
    };
    [blend(r, rgb[0]), blend(g, rgb[1]), blend(b, rgb[2])]
}

fn gamma_px([r, g, b]: [f32; 3], gamma: f32) -> [f32; 3] {
    let inv = 1.0 / gamma;
    [
        r.clamp(0.0, 1.0).powf(inv),
        g.clamp(0.0, 1.0).powf(inv),
        b.clamp(0.0, 1.0).powf(inv),
    ]
}

fn colorize_px([r, g, b]: [f32; 3], rgb: [f32; 3], alpha: f32) -> [f32; 3] {
    [
        r * (1.0 - alpha) + rgb[0] * alpha,
        g * (1.0 - alpha) + rgb[1] * alpha,
        b * (1.0 - alpha) + rgb[2] * alpha,
    ]
}

fn modulate_px(px: [f32; 3], brightness: f32, saturation: f32, _huedeg: f32) -> [f32; 3] {
    let px = [
        px[0].clamp(0.0, 1.0),
        px[1].clamp(0.0, 1.0),
        px[2].clamp(0.0, 1.0),
    ];
    let max = px[0].max(px[1]).max(px[2]);
    let min = px[0].min(px[1]).min(px[2]);
    let d = max - min;
    // HSV round trip matching imagelib::modulate with hue unchanged.
    let h = if d == 0.0 {
        0.0
    } else if max == px[0] {
        60.0 * (((px[1] - px[2]) / d).rem_euclid(6.0))
    } else if max == px[1] {
        60.0 * ((px[2] - px[0]) / d + 2.0)
    } else {
        60.0 * ((px[0] - px[1]) / d + 4.0)
    };
    let s = if max == 0.0 { 0.0 } else { d / max };
    let v = (max * brightness).clamp(0.0, 1.0);
    let s = (s * saturation).clamp(0.0, 1.0);
    let c = v * s;
    let x = c * (1.0 - ((h / 60.0).rem_euclid(2.0) - 1.0).abs());
    let m = v - c;
    let (r, g, b) = match (h / 60.0) as u32 % 6 {
        0 => (c, x, 0.0),
        1 => (x, c, 0.0),
        2 => (0.0, c, x),
        3 => (0.0, x, c),
        4 => (x, 0.0, c),
        _ => (c, 0.0, x),
    };
    [r + m, g + m, b + m]
}

fn contrast_px([r, g, b]: [f32; 3], amount: f32) -> [f32; 3] {
    let alpha = amount.abs().max(1e-4);
    let apply = |c: f32| -> f32 {
        let c = c.clamp(0.0, 1.0);
        if amount >= 0.0 {
            let s = |x: f32| 1.0 / (1.0 + (-alpha * (x - 0.5)).exp());
            let lo = s(0.0);
            let hi = s(1.0);
            (s(c) - lo) / (hi - lo)
        } else {
            let lo = 1.0 / (1.0 + (alpha * 0.5).exp());
            let hi = 1.0 / (1.0 + (-alpha * 0.5).exp());
            let y = lo + c * (hi - lo);
            0.5 - (1.0 / y - 1.0).ln() / alpha
        }
    };
    [apply(r), apply(g), apply(b)]
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The fused pipelines must match the operator-by-operator library
    /// composition — the correctness bar Weld-generated code meets.
    #[test]
    fn fused_nashville_matches_composition() {
        let img = Image::synthetic(40, 30, 5);
        let fused = nashville(&img, 2);
        let composed = imagelib::modulate(
            &imagelib::gamma(
                &imagelib::colortone(
                    &imagelib::colortone(&img, [0.13, 0.17, 0.43], false),
                    [0.97, 0.85, 0.68],
                    true,
                ),
                1.2,
            ),
            100.0,
            150.0,
            100.0,
        );
        assert!(
            fused.mean_abs_diff(&composed) < 1e-5,
            "diff = {}",
            fused.mean_abs_diff(&composed)
        );
    }

    #[test]
    fn fused_gotham_matches_composition() {
        let img = Image::synthetic(24, 18, 11);
        let fused = gotham(&img, 1);
        let composed = imagelib::contrast(
            &imagelib::gamma(
                &imagelib::colorize(
                    &imagelib::modulate(&img, 120.0, 10.0, 100.0),
                    [0.13, 0.16, 0.32],
                    0.2,
                ),
                0.5,
            ),
            6.0,
        );
        assert!(
            fused.mean_abs_diff(&composed) < 1e-5,
            "diff = {}",
            fused.mean_abs_diff(&composed)
        );
    }
}
