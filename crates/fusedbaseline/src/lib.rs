//! # fusedbaseline — hand-fused baselines standing in for IR compilers
//!
//! The paper compares Mozart against optimizing compilers (Weld,
//! Bohrium, Numba) that rewrite library functions in an IR, fuse loops,
//! and JIT parallel code. We cannot run those systems here, so this
//! crate provides what such a compiler would *produce* for each
//! workload: a **single fused pass** over the data, parallelized across
//! threads, with all intermediates kept in registers.
//!
//! One deliberate fidelity detail: the paper found Weld loses to
//! MKL-with-Mozart on transcendental-heavy workloads because Weld "does
//! not generate vectorized code for several operators that MKL does
//! vectorize" (§2.1). We reproduce that by computing `erf`/`exp`/trig
//! here with **scalar, branch-heavy** implementations ([`math`]) that
//! LLVM will not vectorize, while the `vectormath` library uses
//! branch-light polynomial kernels that autovectorize.

#![warn(missing_docs)]

pub mod black_scholes;
pub mod haversine;
pub mod images;
pub mod math;
pub mod nbody;
pub mod pandas;
pub mod parallel;
pub mod shallow_water;
pub mod text;

pub use parallel::parallel_ranges;
