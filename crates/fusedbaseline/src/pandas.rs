//! Fused data-science baselines: each Pandas workload as the single
//! fused pass an IR compiler would generate (filters, maps, and
//! aggregations combined; hash tables for groupBys and joins).

use std::collections::HashMap;

use crate::parallel::parallel_reduce;

/// Fused Data Cleaning: classify raw zip strings, fix long zips,
/// parse, and count valid entries — one pass over the strings.
///
/// Returns `(valid_count, null_count, checksum_of_parsed_zips)`.
pub fn data_cleaning(zips: &[String], bad_values: &[&str], threads: usize) -> (u64, u64, f64) {
    parallel_reduce(
        zips.len(),
        threads,
        || (0u64, 0u64, 0.0f64),
        |(valid, nulls, sum), i| {
            let raw = zips[i].as_str();
            if bad_values.contains(&raw) {
                return (valid, nulls + 1, sum);
            }
            let fixed = if raw.len() > 5 { &raw[..5] } else { raw };
            match fixed.parse::<f64>() {
                Ok(z) => (valid + 1, nulls, sum + z),
                Err(_) => (valid, nulls + 1, sum),
            }
        },
        |a, b| (a.0 + b.0, a.1 + b.1, a.2 + b.2),
    )
}

/// Fused Crime Index: filter big cities, compute the weighted index,
/// and sum — one pass.
pub fn crime_index(
    total_population: &[f64],
    adult_population: &[f64],
    num_robberies: &[f64],
    threads: usize,
) -> f64 {
    parallel_reduce(
        total_population.len(),
        threads,
        || 0.0f64,
        |acc, i| {
            let tp = total_population[i];
            if tp > 500_000.0 {
                let index =
                    (adult_population[i] / tp - 2.0 * num_robberies[i] / tp).clamp(0.0, 1.0);
                acc + index
            } else {
                acc
            }
        },
        |a, b| a + b,
    )
}

/// Fused Birth Analysis: fraction of births with names starting with
/// `prefix`, grouped by `(sex, year)` — a single hash-aggregating pass.
///
/// Returns `((sex, year) -> (prefix_births, total_births))`.
pub fn birth_analysis(
    names: &[String],
    sexes: &[String],
    years: &[i64],
    births: &[f64],
    prefix: &str,
) -> HashMap<(String, i64), (f64, f64)> {
    let mut table: HashMap<(String, i64), (f64, f64)> = HashMap::new();
    for i in 0..names.len() {
        let e = table
            .entry((sexes[i].clone(), years[i]))
            .or_insert((0.0, 0.0));
        if names[i].starts_with(prefix) {
            e.0 += births[i];
        }
        e.1 += births[i];
    }
    table
}

/// Fused MovieLens: both joins and the grouped mean in one pass over
/// the ratings (users and movies become hash tables first).
///
/// Returns `(title_id -> (f_sum, f_count, m_sum, m_count))`.
pub fn movielens(
    rating_user: &[i64],
    rating_movie: &[i64],
    rating_value: &[f64],
    user_ids: &[i64],
    user_gender: &[String],
    movie_ids: &[i64],
) -> HashMap<i64, (f64, f64, f64, f64)> {
    let users: HashMap<i64, bool> = user_ids
        .iter()
        .zip(user_gender)
        .map(|(&id, g)| (id, g == "F"))
        .collect();
    let movies: std::collections::HashSet<i64> = movie_ids.iter().copied().collect();
    let mut table: HashMap<i64, (f64, f64, f64, f64)> = HashMap::new();
    for i in 0..rating_user.len() {
        let Some(&is_f) = users.get(&rating_user[i]) else {
            continue;
        };
        if !movies.contains(&rating_movie[i]) {
            continue;
        }
        let e = table.entry(rating_movie[i]).or_insert((0.0, 0.0, 0.0, 0.0));
        if is_f {
            e.0 += rating_value[i];
            e.1 += 1.0;
        } else {
            e.2 += rating_value[i];
            e.3 += 1.0;
        }
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn data_cleaning_counts() {
        let zips: Vec<String> = ["02139", "N/A", "94016-1234", "xxxxx", "10001"]
            .iter()
            .map(|s| s.to_string())
            .collect();
        let (valid, nulls, sum) = data_cleaning(&zips, &["N/A", "NO CLUE", "0"], 2);
        assert_eq!(valid, 3); // 02139, 94016 (truncated), 10001
        assert_eq!(nulls, 2); // N/A and xxxxx
        assert_eq!(sum, 2139.0 + 94016.0 + 10001.0);
    }

    #[test]
    fn crime_index_filters_small_cities() {
        let tp = vec![100.0, 1_000_000.0, 2_000_000.0];
        let ap = vec![80.0, 800_000.0, 1_500_000.0];
        let rob = vec![5.0, 1000.0, 2000.0];
        let idx = crime_index(&tp, &ap, &rob, 1);
        let expect = (0.8 - 2.0 * 1000.0 / 1_000_000.0) + (0.75 - 2.0 * 2000.0 / 2_000_000.0);
        assert!((idx - expect).abs() < 1e-12);
    }

    #[test]
    fn birth_analysis_fractions() {
        let names = vec![
            "Leslie".to_string(),
            "Bob".to_string(),
            "Lesley".to_string(),
        ];
        let sexes = vec!["F".to_string(), "M".to_string(), "F".to_string()];
        let years = vec![1990, 1990, 1990];
        let births = vec![10.0, 5.0, 30.0];
        let t = birth_analysis(&names, &sexes, &years, &births, "Lesl");
        assert_eq!(t[&("F".to_string(), 1990)], (40.0, 40.0));
        assert_eq!(t[&("M".to_string(), 1990)], (0.0, 5.0));
    }

    #[test]
    fn movielens_grouped_means() {
        let t = movielens(
            &[1, 2, 1, 9],
            &[100, 100, 200, 100],
            &[5.0, 3.0, 4.0, 1.0],
            &[1, 2],
            &["F".to_string(), "M".to_string()],
            &[100, 200],
        );
        assert_eq!(t[&100], (5.0, 1.0, 3.0, 1.0));
        assert_eq!(t[&200], (4.0, 1.0, 0.0, 0.0));
        assert!(!t.contains_key(&300));
    }
}
