//! Parallel speech tagging baseline.
//!
//! The paper notes "no compilers supported spaCy", so there is no
//! Weld-style comparator for this workload; this module provides the
//! straightforward thread-parallel tagging used for sanity checks.

use textproc::{tag_corpus, DocFeatures, TaggedDoc};

/// Tag a corpus in parallel over document chunks.
pub fn tag_parallel(corpus: &[String], threads: usize) -> Vec<(TaggedDoc, DocFeatures)> {
    let t = threads.max(1);
    if t == 1 || corpus.len() < 8 {
        return tag_corpus(corpus);
    }
    let per = corpus.len().div_ceil(t);
    let mut out = Vec::with_capacity(corpus.len());
    std::thread::scope(|s| {
        let mut handles = Vec::new();
        for chunk in corpus.chunks(per) {
            handles.push(s.spawn(move || tag_corpus(chunk)));
        }
        for h in handles {
            out.extend(h.join().expect("tagger panicked"));
        }
    });
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parallel_matches_serial() {
        let corpus = textproc::synthetic_corpus(33, 25, 4);
        assert_eq!(tag_parallel(&corpus, 1), tag_parallel(&corpus, 4));
    }
}
