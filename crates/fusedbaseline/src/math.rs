//! Scalar, branch-heavy math — what an IR compiler emits when it does
//! not vectorize a transcendental (the Weld behaviour the paper
//! observed). Deliberately data-dependent loops: accurate, but LLVM
//! cannot vectorize them.

/// Scalar error function via its Maclaurin series with a data-dependent
/// convergence loop (high accuracy, no vectorization).
pub fn erf_scalar(x: f64) -> f64 {
    // The Maclaurin series cancels catastrophically past |x| ~ 4;
    // erf(4) is within 1.6e-8 of ±1, so saturate there.
    if x.abs() > 4.0 {
        return x.signum();
    }
    let mut term = x;
    let mut sum = x;
    let mut n = 1;
    // Converges in a data-dependent number of iterations.
    while term.abs() > 1e-17 * sum.abs().max(1e-300) && n < 200 {
        term *= -x * x / n as f64;
        sum += term / (2 * n + 1) as f64;
        n += 1;
    }
    sum * 2.0 / std::f64::consts::PI.sqrt()
}

/// Cumulative normal distribution via [`erf_scalar`].
pub fn cnd_scalar(x: f64) -> f64 {
    0.5 + 0.5 * erf_scalar(x * std::f64::consts::FRAC_1_SQRT_2)
}

/// Scalar exponential (libm; one call per element, not vectorized).
#[inline]
pub fn exp_scalar(x: f64) -> f64 {
    x.exp()
}

/// Scalar `ln(1+x)`.
#[inline]
pub fn log1p_scalar(x: f64) -> f64 {
    x.ln_1p()
}

/// Scalar sine.
#[inline]
pub fn sin_scalar(x: f64) -> f64 {
    x.sin()
}

/// Scalar cosine.
#[inline]
pub fn cos_scalar(x: f64) -> f64 {
    x.cos()
}

/// Scalar arcsine.
#[inline]
pub fn asin_scalar(x: f64) -> f64 {
    x.asin()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn erf_scalar_is_accurate() {
        // Compare against the vectorized approximation: the scalar
        // series is the more accurate of the two.
        for i in -40..=40 {
            let x = i as f64 * 0.1;
            let fast = vectormath::fastmath::erf(x);
            assert!((erf_scalar(x) - fast).abs() < 5e-7, "x={x}");
        }
        assert_eq!(erf_scalar(10.0), 1.0);
        assert_eq!(erf_scalar(-10.0), -1.0);
    }

    #[test]
    fn cnd_limits() {
        assert!((cnd_scalar(0.0) - 0.5).abs() < 1e-12);
        assert!(cnd_scalar(8.0) > 0.999999);
        assert!(cnd_scalar(-8.0) < 0.000001);
    }
}
