//! Fused Haversine distance: one parallel pass (the 18-operator NumPy
//! pipeline fused into registers).

use crate::math::{asin_scalar, cos_scalar, sin_scalar};
use crate::parallel::parallel_ranges;

/// Earth radius in miles (the constant the Weld benchmark uses).
pub const EARTH_RADIUS_MILES: f64 = 3959.0;

/// Distance from a fixed `(lat1, lon1)` to every `(lat2, lon2)`.
///
/// # Panics
///
/// Panics if slice lengths differ.
pub fn run(lat1: f64, lon1: f64, lat2: &[f64], lon2: &[f64], out: &mut [f64], threads: usize) {
    let n = lat2.len();
    assert_eq!(lon2.len(), n, "haversine: length mismatch");
    assert_eq!(out.len(), n, "haversine: length mismatch");
    let out_addr = out.as_mut_ptr() as usize;
    let cos_lat1 = cos_scalar(lat1);
    parallel_ranges(n, threads, move |a, b| {
        let out = out_addr as *mut f64;
        for i in a..b {
            let dlat = lat2[i] - lat1;
            let dlon = lon2[i] - lon1;
            let sa = sin_scalar(dlat * 0.5);
            let so = sin_scalar(dlon * 0.5);
            let h = sa * sa + cos_lat1 * cos_scalar(lat2[i]) * so * so;
            // SAFETY: disjoint ranges across workers.
            unsafe {
                *out.add(i) = 2.0 * EARTH_RADIUS_MILES * asin_scalar(h.sqrt().min(1.0));
            }
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_distance_to_self_and_parallel_consistency() {
        let n = 2000;
        let lat1 = 0.70984286; // ~40.67 degrees in radians
        let lon1 = -1.29744104;
        let lat2: Vec<f64> = (0..n).map(|i| lat1 + (i % 100) as f64 * 1e-4).collect();
        let lon2: Vec<f64> = (0..n).map(|i| lon1 - (i % 80) as f64 * 1e-4).collect();
        let mut d1 = vec![0.0; n];
        run(lat1, lon1, &lat2, &lon2, &mut d1, 1);
        let mut d3 = vec![0.0; n];
        run(lat1, lon1, &lat2, &lon2, &mut d3, 3);
        assert_eq!(d1, d3);
        assert_eq!(d1[0], 0.0);
        assert!(d1.iter().all(|&d| (0.0..100.0).contains(&d)));
    }
}
