//! Fused n-body step: the O(N²) force computation and position update
//! in direct parallel loops, no N×N intermediate matrices at all (the
//! strongest form of fusion a compiler could achieve).

use crate::parallel::parallel_ranges;

/// Simulation state: positions, velocities, masses.
#[derive(Debug, Clone, PartialEq)]
pub struct Bodies {
    /// x positions.
    pub x: Vec<f64>,
    /// y positions.
    pub y: Vec<f64>,
    /// z positions.
    pub z: Vec<f64>,
    /// x velocities.
    pub vx: Vec<f64>,
    /// y velocities.
    pub vy: Vec<f64>,
    /// z velocities.
    pub vz: Vec<f64>,
    /// masses.
    pub m: Vec<f64>,
}

/// Gravitational constant used by the benchmark.
pub const G: f64 = 6.67e-11;
/// Softening term keeping the self-interaction finite.
pub const EPS: f64 = 1e-3;

/// Advance the system one timestep of `dt`, fused and parallel over
/// bodies.
pub fn step(b: &mut Bodies, dt: f64, threads: usize) {
    let n = b.x.len();
    let (x, y, z, m) = (b.x.clone(), b.y.clone(), b.z.clone(), b.m.clone());
    let ax_addr = { b.vx.as_mut_ptr() as usize };
    let ay_addr = b.vy.as_mut_ptr() as usize;
    let az_addr = b.vz.as_mut_ptr() as usize;
    parallel_ranges(n, threads, move |a_start, a_end| {
        let vx = ax_addr as *mut f64;
        let vy = ay_addr as *mut f64;
        let vz = az_addr as *mut f64;
        for i in a_start..a_end {
            let mut ax = 0.0;
            let mut ay = 0.0;
            let mut az = 0.0;
            for j in 0..n {
                let dx = x[j] - x[i];
                let dy = y[j] - y[i];
                let dz = z[j] - z[i];
                let r2 = dx * dx + dy * dy + dz * dz + EPS;
                let inv_r3 = 1.0 / (r2 * r2.sqrt());
                ax += G * m[j] * dx * inv_r3;
                ay += G * m[j] * dy * inv_r3;
                az += G * m[j] * dz * inv_r3;
            }
            // SAFETY: each worker owns the disjoint body range
            // [a_start, a_end).
            unsafe {
                *vx.add(i) += dt * ax;
                *vy.add(i) += dt * ay;
                *vz.add(i) += dt * az;
            }
        }
    });
    for i in 0..n {
        b.x[i] += dt * b.vx[i];
        b.y[i] += dt * b.vy[i];
        b.z[i] += dt * b.vz[i];
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn two_bodies() -> Bodies {
        Bodies {
            x: vec![0.0, 1.0],
            y: vec![0.0, 0.0],
            z: vec![0.0, 0.0],
            vx: vec![0.0, 0.0],
            vy: vec![0.0, 0.0],
            vz: vec![0.0, 0.0],
            m: vec![1e9, 1e9],
        }
    }

    #[test]
    fn bodies_attract() {
        let mut b = two_bodies();
        step(&mut b, 1.0, 1);
        assert!(b.vx[0] > 0.0, "body 0 accelerates toward body 1");
        assert!(b.vx[1] < 0.0, "body 1 accelerates toward body 0");
        assert!((b.vx[0] + b.vx[1]).abs() < 1e-12, "momentum conserved");
    }

    #[test]
    fn parallel_matches_serial() {
        let mk = |threads: usize| {
            let mut b = Bodies {
                x: (0..200).map(|i| (i as f64 * 0.37).sin()).collect(),
                y: (0..200).map(|i| (i as f64 * 0.21).cos()).collect(),
                z: (0..200).map(|i| (i as f64 * 0.11).sin()).collect(),
                vx: vec![0.0; 200],
                vy: vec![0.0; 200],
                vz: vec![0.0; 200],
                m: vec![1e6; 200],
            };
            for _ in 0..3 {
                step(&mut b, 0.01, threads);
            }
            b
        };
        assert_eq!(mk(1), mk(4));
    }
}
