//! Fork-join helper, the analogue of the parallel runtime an IR
//! compiler emits calls into.

/// Run `f(start, end)` over `[0, n)` split across `threads` workers.
pub fn parallel_ranges(n: usize, threads: usize, f: impl Fn(usize, usize) + Send + Sync) {
    let t = threads.max(1);
    if t == 1 || n < 1024 {
        f(0, n);
        return;
    }
    let per = n.div_ceil(t);
    std::thread::scope(|s| {
        for w in 0..t {
            let start = w * per;
            if start >= n {
                break;
            }
            let end = (start + per).min(n);
            let f = &f;
            s.spawn(move || f(start, end));
        }
    });
}

/// Parallel map-reduce over `[0, n)`: each worker folds its range with
/// `fold`, partials combine with `combine`.
pub fn parallel_reduce<T: Send>(
    n: usize,
    threads: usize,
    identity: impl Fn() -> T + Sync,
    fold: impl Fn(T, usize) -> T + Sync,
    combine: impl Fn(T, T) -> T,
) -> T {
    let t = threads.max(1);
    if t == 1 || n < 1024 {
        let mut acc = identity();
        for i in 0..n {
            acc = fold(acc, i);
        }
        return acc;
    }
    let per = n.div_ceil(t);
    let mut partials: Vec<Option<T>> = Vec::new();
    partials.resize_with(t, || None);
    std::thread::scope(|s| {
        let mut handles = Vec::new();
        for w in 0..t {
            let start = w * per;
            if start >= n {
                break;
            }
            let end = (start + per).min(n);
            let identity = &identity;
            let fold = &fold;
            handles.push(s.spawn(move || {
                let mut acc = identity();
                for i in start..end {
                    acc = fold(acc, i);
                }
                acc
            }));
        }
        for (slot, h) in partials.iter_mut().zip(handles) {
            *slot = Some(h.join().expect("worker panicked"));
        }
    });
    let mut acc = identity();
    for p in partials.into_iter().flatten() {
        acc = combine(acc, p);
    }
    acc
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU64, Ordering};

    #[test]
    fn ranges_cover_exactly() {
        let n = 10_000;
        let sum = AtomicU64::new(0);
        parallel_ranges(n, 4, |a, b| {
            sum.fetch_add((a..b).map(|x| x as u64).sum(), Ordering::SeqCst);
        });
        assert_eq!(sum.load(Ordering::SeqCst), (0..n as u64).sum());
    }

    #[test]
    fn reduce_matches_serial() {
        let got = parallel_reduce(5000, 3, || 0u64, |acc, i| acc + i as u64, |a, b| a + b);
        assert_eq!(got, (0..5000u64).sum());
    }
}
