//! The [`DataFrame`]: an ordered collection of named, equal-length
//! columns with zero-copy row slicing.

use crate::column::Column;

/// A columnar table (the reproduction's `pandas.DataFrame`).
///
/// Cloning is cheap: columns share storage.
#[derive(Clone, Debug)]
pub struct DataFrame {
    cols: Vec<(String, Column)>,
}

impl DataFrame {
    /// Build from `(name, column)` pairs.
    ///
    /// # Panics
    ///
    /// Panics if column lengths differ or names repeat.
    pub fn new(cols: Vec<(String, Column)>) -> Self {
        if let Some((_, first)) = cols.first() {
            let n = first.len();
            for (name, c) in &cols {
                assert_eq!(
                    c.len(),
                    n,
                    "column {name} has {} rows, expected {n}",
                    c.len()
                );
            }
        }
        let mut seen = std::collections::HashSet::new();
        for (name, _) in &cols {
            assert!(seen.insert(name.clone()), "duplicate column name {name}");
        }
        DataFrame { cols }
    }

    /// Convenience constructor from `&str` names.
    pub fn from_cols(cols: Vec<(&str, Column)>) -> Self {
        Self::new(cols.into_iter().map(|(n, c)| (n.to_string(), c)).collect())
    }

    /// Number of rows.
    pub fn num_rows(&self) -> usize {
        self.cols.first().map(|(_, c)| c.len()).unwrap_or(0)
    }

    /// Number of columns.
    pub fn num_cols(&self) -> usize {
        self.cols.len()
    }

    /// Column names, in order.
    pub fn names(&self) -> Vec<&str> {
        self.cols.iter().map(|(n, _)| n.as_str()).collect()
    }

    /// Look up a column by name.
    ///
    /// # Panics
    ///
    /// Panics if the column does not exist.
    pub fn col(&self, name: &str) -> &Column {
        self.get(name)
            .unwrap_or_else(|| panic!("no column named {name:?} (have {:?})", self.names()))
    }

    /// Look up a column by name, if present.
    pub fn get(&self, name: &str) -> Option<&Column> {
        self.cols.iter().find(|(n, _)| n == name).map(|(_, c)| c)
    }

    /// All `(name, column)` pairs.
    pub fn columns(&self) -> &[(String, Column)] {
        &self.cols
    }

    /// New frame with `col` added or replaced.
    pub fn with_column(&self, name: &str, col: Column) -> DataFrame {
        if !self.cols.is_empty() {
            assert_eq!(
                col.len(),
                self.num_rows(),
                "with_column: row count mismatch"
            );
        }
        let mut cols = self.cols.clone();
        match cols.iter_mut().find(|(n, _)| n == name) {
            Some((_, c)) => *c = col,
            None => cols.push((name.to_string(), col)),
        }
        DataFrame { cols }
    }

    /// New frame with only the named columns, in the given order.
    ///
    /// # Panics
    ///
    /// Panics if a name is missing.
    pub fn select(&self, names: &[&str]) -> DataFrame {
        DataFrame::new(
            names
                .iter()
                .map(|n| (n.to_string(), self.col(n).clone()))
                .collect(),
        )
    }

    /// Zero-copy view of rows `[start, end)`.
    pub fn slice_rows(&self, start: usize, end: usize) -> DataFrame {
        DataFrame {
            cols: self
                .cols
                .iter()
                .map(|(n, c)| (n.clone(), c.slice(start, end)))
                .collect(),
        }
    }

    /// Copy the rows selected by a boolean mask column.
    ///
    /// # Panics
    ///
    /// Panics if the mask is not boolean or has the wrong length.
    pub fn filter(&self, mask: &Column) -> DataFrame {
        let m = mask.bools();
        DataFrame {
            cols: self
                .cols
                .iter()
                .map(|(n, c)| (n.clone(), c.filter(m)))
                .collect(),
        }
    }

    /// Copy the rows at the given indices.
    pub fn take(&self, idx: &[usize]) -> DataFrame {
        DataFrame {
            cols: self
                .cols
                .iter()
                .map(|(n, c)| (n.clone(), c.take(idx)))
                .collect(),
        }
    }

    /// Allocate a default-initialized frame of `rows` rows with this
    /// frame's schema (a placement-merge target; see
    /// [`Column::alloc_like`]).
    pub fn alloc_like(&self, rows: usize) -> DataFrame {
        DataFrame {
            cols: self
                .cols
                .iter()
                .map(|(n, c)| (n.clone(), c.alloc_like(rows)))
                .collect(),
        }
    }

    /// Write all rows of `src` into this frame starting at row
    /// `offset` (the placement-merge write; the parallel, in-place
    /// counterpart of [`DataFrame::concat`]).
    ///
    /// # Panics
    ///
    /// Panics on schema mismatch or an out-of-bounds row range.
    ///
    /// # Safety
    ///
    /// Same contract as [`Column::write_at`]: the written row range
    /// must not be accessed by any other live reference while the call
    /// runs.
    pub unsafe fn write_rows_at(&self, offset: usize, src: &DataFrame) {
        assert_eq!(src.names(), self.names(), "write_rows_at: schema mismatch");
        for ((_, dst), (_, s)) in self.cols.iter().zip(&src.cols) {
            // SAFETY: forwarded contract.
            unsafe { dst.write_at(offset, s) };
        }
    }

    /// Concatenate frames with identical schemas, preserving row order.
    ///
    /// # Panics
    ///
    /// Panics on empty input or schema mismatch.
    pub fn concat(parts: &[DataFrame]) -> DataFrame {
        let rows = parts.iter().map(DataFrame::num_rows).sum();
        Self::concat_hinted(parts, rows)
    }

    /// [`DataFrame::concat`] with a known total row count, so every
    /// column is allocated once up front (the runtime's merge-size
    /// hint).
    ///
    /// # Panics
    ///
    /// Panics on empty input or schema mismatch.
    pub fn concat_hinted(parts: &[DataFrame], total_rows: usize) -> DataFrame {
        assert!(!parts.is_empty(), "concat of zero frames");
        let names = parts[0].names();
        for p in parts {
            assert_eq!(p.names(), names, "concat: schema mismatch");
        }
        let cols = names
            .iter()
            .map(|n| {
                let pieces: Vec<Column> = parts.iter().map(|p| p.col(n).clone()).collect();
                (n.to_string(), Column::concat_hinted(&pieces, total_rows))
            })
            .collect();
        DataFrame { cols }
    }

    /// Stable sort by an integer or string column, ascending.
    ///
    /// # Panics
    ///
    /// Panics if the column is float or boolean.
    pub fn sort_by(&self, name: &str) -> DataFrame {
        let mut idx: Vec<usize> = (0..self.num_rows()).collect();
        match self.col(name) {
            Column::I64(_) => {
                let keys = self.col(name).i64s();
                idx.sort_by_key(|&i| keys[i]);
            }
            Column::Str(_) => {
                let keys = self.col(name).strs();
                idx.sort_by(|&a, &b| keys[a].cmp(&keys[b]));
            }
            other => panic!("sort_by: unsupported column type {}", other.dtype()),
        }
        self.take(&idx)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn df() -> DataFrame {
        DataFrame::from_cols(vec![
            ("id", Column::from_i64(vec![3, 1, 2])),
            ("score", Column::from_f64(vec![0.5, 1.5, 2.5])),
            ("name", Column::from_strs(&["c", "a", "b"])),
        ])
    }

    #[test]
    fn basic_access() {
        let d = df();
        assert_eq!(d.num_rows(), 3);
        assert_eq!(d.num_cols(), 3);
        assert_eq!(d.names(), vec!["id", "score", "name"]);
        assert_eq!(d.col("id").i64s(), &[3, 1, 2]);
        assert!(d.get("missing").is_none());
    }

    #[test]
    fn slicing_and_concat_roundtrip() {
        let d = df();
        let parts = vec![d.slice_rows(0, 1), d.slice_rows(1, 3)];
        let merged = DataFrame::concat(&parts);
        assert_eq!(merged.col("name").strs(), d.col("name").strs());
        assert_eq!(merged.num_rows(), 3);
    }

    #[test]
    fn filter_and_take() {
        let d = df();
        let mask = Column::from_bool(vec![true, false, true]);
        let f = d.filter(&mask);
        assert_eq!(f.num_rows(), 2);
        assert_eq!(f.col("id").i64s(), &[3, 2]);
        let t = d.take(&[1, 1]);
        assert_eq!(t.col("name").strs(), &["a".to_string(), "a".to_string()]);
    }

    #[test]
    fn with_column_and_select() {
        let d = df();
        let d2 = d.with_column("double", crate::ops::mul_scalar(d.col("score"), 2.0));
        assert_eq!(d2.col("double").f64s(), &[1.0, 3.0, 5.0]);
        let d3 = d2.with_column("score", Column::from_f64(vec![0.0; 3]));
        assert_eq!(d3.col("score").f64s(), &[0.0, 0.0, 0.0]);
        let s = d3.select(&["name", "double"]);
        assert_eq!(s.names(), vec!["name", "double"]);
    }

    #[test]
    fn sorting() {
        let d = df();
        assert_eq!(d.sort_by("id").col("name").strs(), &["a", "b", "c"]);
        assert_eq!(d.sort_by("name").col("id").i64s(), &[1, 2, 3]);
    }

    #[test]
    #[should_panic(expected = "duplicate column name")]
    fn duplicate_names_rejected() {
        DataFrame::from_cols(vec![
            ("a", Column::from_i64(vec![1])),
            ("a", Column::from_i64(vec![2])),
        ]);
    }

    #[test]
    #[should_panic(expected = "rows, expected")]
    fn ragged_columns_rejected() {
        DataFrame::from_cols(vec![
            ("a", Column::from_i64(vec![1])),
            ("b", Column::from_i64(vec![1, 2])),
        ]);
    }
}
