//! # dataframe — a Pandas-style columnar table library
//!
//! The reproduction's stand-in for Pandas (§7): typed shared-storage
//! columns, Series operators (arithmetic, predicates, string methods,
//! null handling), row filters, hash groupBy with commutative
//! aggregations, and inner hash joins.
//!
//! Row slicing is zero-copy, which is what makes the row-based split
//! type the `sa-dataframe` crate defines cheap. The library itself knows
//! nothing about Mozart.

#![warn(missing_docs)]
#![warn(clippy::undocumented_unsafe_blocks)]

pub mod column;
pub mod frame;
pub mod groupby;
pub mod join;
pub mod ops;

pub use column::{ColData, Column};
pub use frame::DataFrame;
pub use groupby::{groupby_agg, partial_groupby_agg, reaggregate, Agg, AggSpec, KeyPart};
pub use join::inner_join;
