//! Typed columns with zero-copy row slicing.
//!
//! A [`Column`] is the storage unit of the DataFrame library (the
//! reproduction's `pandas.Series` values). Storage is shared (`Arc`) and
//! row ranges are views, so the row-based split type the annotator
//! writes for Mozart is zero-copy, like `df.iloc[a:b]` on a contiguous
//! frame.
//!
//! Missing data follows the Pandas convention: `f64` columns use NaN as
//! the null sentinel (integer and string columns are null-free; casting
//! with [`Column::to_f64`]-style parsers introduces NaN).
//!
//! Storage has interior mutability so *placement merges* can fill
//! disjoint row ranges of one preallocated column from multiple
//! threads ([`ColData::alloc`] + [`ColData::write_range`]); the safe
//! read APIs assume no concurrent writes, which holds because writes
//! only happen while a column is being constructed, before any reader
//! can observe it.

use std::cell::UnsafeCell;
use std::sync::Arc;

/// Interior-mutable backing store of a column (see the module docs).
struct ColBuf<T>(Box<[UnsafeCell<T>]>);

// SAFETY: all mutation goes through `ColData::write_range`, whose
// contract requires disjoint row ranges from different threads and no
// concurrent readers; shared reads through the safe APIs only happen
// once construction is complete.
unsafe impl<T: Send> Send for ColBuf<T> {}
// SAFETY: as above.
unsafe impl<T: Send + Sync> Sync for ColBuf<T> {}

/// Shared storage for one column's values plus a row-range view.
#[derive(Clone)]
pub struct ColData<T> {
    data: Arc<ColBuf<T>>,
    start: usize,
    len: usize,
}

impl<T: std::fmt::Debug + Clone> std::fmt::Debug for ColData<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_list().entries(self.as_slice()).finish()
    }
}

impl<T: Clone> ColData<T> {
    /// Take ownership of values.
    pub fn new(v: Vec<T>) -> Self {
        let len = v.len();
        ColData {
            data: Arc::new(ColBuf(v.into_iter().map(UnsafeCell::new).collect())),
            start: 0,
            len,
        }
    }

    /// Allocate a default-initialized column of `len` rows, for use as
    /// a placement-merge target: disjoint row ranges of it can be
    /// filled in parallel with [`ColData::write_range`].
    pub fn alloc(len: usize) -> Self
    where
        T: Default,
    {
        let col = Self::new((0..len).map(|_| T::default()).collect());
        // Pre-fault the backing pages (one volatile touch per 4K) so
        // the parallel placement writers never take concurrent
        // first-touch faults on one shared fresh mapping — those
        // serialize on kernel page-table locks. For non-trivial `T`
        // the construction above already wrote every slot; for
        // zero-default primitives the compiler may have lowered it to
        // a lazy zeroed allocation, which the volatile touches defeat.
        let bytes = len * std::mem::size_of::<T>();
        let base = col.data.0.as_ptr() as *mut u8;
        let mut off = 0;
        while off < bytes {
            // SAFETY: in-bounds; the buffer was just created and has no
            // other observer. Rewriting the byte it already holds is a
            // bitwise no-op for any `T`, but forces the page present
            // for writing.
            unsafe {
                let b = std::ptr::read_volatile(base.add(off) as *const u8);
                std::ptr::write_volatile(base.add(off), b);
            }
            off += 4096;
        }
        col
    }

    /// Write `src` into rows `[offset, offset + src.len())` (the
    /// placement-merge write: the parallel, in-place counterpart of a
    /// concat).
    ///
    /// # Panics
    ///
    /// Panics if the range exceeds the view.
    ///
    /// # Safety
    ///
    /// The caller must guarantee that the written row range is not
    /// accessed (read or written) by any other live reference while
    /// the call runs. The Mozart executor upholds this by handing
    /// workers disjoint element ranges of a freshly allocated,
    /// not-yet-observable column.
    pub unsafe fn write_range(&self, offset: usize, src: &[T]) {
        assert!(
            offset.checked_add(src.len()).is_some_and(|e| e <= self.len),
            "write_range out of bounds"
        );
        let base = self.start + offset;
        for (i, v) in src.iter().enumerate() {
            // SAFETY: in-bounds per the assert; exclusivity of the
            // range is the caller's obligation per this function's
            // contract.
            unsafe { *self.data.0[base + i].get() = v.clone() };
        }
    }

    /// Number of rows in the view.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the view is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The viewed values.
    pub fn as_slice(&self) -> &[T] {
        // SAFETY: safe reads assume no concurrent writes; writes only
        // happen through the `unsafe` placement API while the column is
        // under construction (see the module docs).
        unsafe {
            std::slice::from_raw_parts(self.data.0.as_ptr().add(self.start) as *const T, self.len)
        }
    }

    /// Zero-copy sub-view of rows `[start, end)`.
    ///
    /// # Panics
    ///
    /// Panics if the range exceeds the view.
    pub fn slice(&self, start: usize, end: usize) -> Self {
        assert!(
            start <= end && end <= self.len,
            "column slice out of bounds"
        );
        ColData {
            data: Arc::clone(&self.data),
            start: self.start + start,
            len: end - start,
        }
    }

    /// Copy the rows selected by a boolean mask.
    ///
    /// # Panics
    ///
    /// Panics if the mask length differs.
    pub fn filter(&self, mask: &[bool]) -> Self {
        assert_eq!(mask.len(), self.len, "mask length mismatch");
        let out: Vec<T> = self
            .as_slice()
            .iter()
            .zip(mask)
            .filter(|(_, keep)| **keep)
            .map(|(v, _)| v.clone())
            .collect();
        ColData::new(out)
    }

    /// Copy rows at the given indices (used by joins).
    pub fn take(&self, idx: &[usize]) -> Self {
        let s = self.as_slice();
        ColData::new(idx.iter().map(|&i| s[i].clone()).collect())
    }
}

/// A typed column of row values.
#[derive(Clone, Debug)]
pub enum Column {
    /// 64-bit integers (null-free).
    I64(ColData<i64>),
    /// 64-bit floats; NaN is the null sentinel.
    F64(ColData<f64>),
    /// UTF-8 strings (null-free).
    Str(ColData<String>),
    /// Booleans (null-free).
    Bool(ColData<bool>),
}

impl Column {
    /// Integer column from values.
    pub fn from_i64(v: Vec<i64>) -> Self {
        Column::I64(ColData::new(v))
    }
    /// Float column from values.
    pub fn from_f64(v: Vec<f64>) -> Self {
        Column::F64(ColData::new(v))
    }
    /// String column from values.
    ///
    /// Not the `FromStr` trait: this takes owned values, mirroring the
    /// other `from_*` constructors.
    #[allow(clippy::should_implement_trait)]
    pub fn from_str(v: Vec<String>) -> Self {
        Column::Str(ColData::new(v))
    }
    /// String column from `&str` values.
    pub fn from_strs(v: &[&str]) -> Self {
        Column::Str(ColData::new(v.iter().map(|s| s.to_string()).collect()))
    }
    /// Boolean column from values.
    pub fn from_bool(v: Vec<bool>) -> Self {
        Column::Bool(ColData::new(v))
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        match self {
            Column::I64(c) => c.len(),
            Column::F64(c) => c.len(),
            Column::Str(c) => c.len(),
            Column::Bool(c) => c.len(),
        }
    }

    /// Whether the column has zero rows.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Short name of the column's data type.
    pub fn dtype(&self) -> &'static str {
        match self {
            Column::I64(_) => "i64",
            Column::F64(_) => "f64",
            Column::Str(_) => "str",
            Column::Bool(_) => "bool",
        }
    }

    /// Allocate a default-initialized column of `rows` rows with this
    /// column's dtype (a placement-merge target; see
    /// [`ColData::alloc`]).
    pub fn alloc_like(&self, rows: usize) -> Column {
        match self {
            Column::I64(_) => Column::I64(ColData::alloc(rows)),
            Column::F64(_) => Column::F64(ColData::alloc(rows)),
            Column::Str(_) => Column::Str(ColData::alloc(rows)),
            Column::Bool(_) => Column::Bool(ColData::alloc(rows)),
        }
    }

    /// Write all rows of `src` into this column starting at `offset`
    /// (the placement-merge write; the parallel, in-place counterpart
    /// of [`Column::concat`]).
    ///
    /// # Panics
    ///
    /// Panics on dtype mismatch or an out-of-bounds row range.
    ///
    /// # Safety
    ///
    /// Same contract as [`ColData::write_range`]: the written row range
    /// must not be accessed by any other live reference while the call
    /// runs.
    pub unsafe fn write_at(&self, offset: usize, src: &Column) {
        // SAFETY: forwarded contract.
        unsafe {
            match (self, src) {
                (Column::I64(d), Column::I64(s)) => d.write_range(offset, s.as_slice()),
                (Column::F64(d), Column::F64(s)) => d.write_range(offset, s.as_slice()),
                (Column::Str(d), Column::Str(s)) => d.write_range(offset, s.as_slice()),
                (Column::Bool(d), Column::Bool(s)) => d.write_range(offset, s.as_slice()),
                (d, s) => panic!("write_at: mixed types {} vs {}", d.dtype(), s.dtype()),
            }
        }
    }

    /// Zero-copy view of rows `[start, end)`.
    pub fn slice(&self, start: usize, end: usize) -> Column {
        match self {
            Column::I64(c) => Column::I64(c.slice(start, end)),
            Column::F64(c) => Column::F64(c.slice(start, end)),
            Column::Str(c) => Column::Str(c.slice(start, end)),
            Column::Bool(c) => Column::Bool(c.slice(start, end)),
        }
    }

    /// Copy rows selected by a boolean mask.
    pub fn filter(&self, mask: &[bool]) -> Column {
        match self {
            Column::I64(c) => Column::I64(c.filter(mask)),
            Column::F64(c) => Column::F64(c.filter(mask)),
            Column::Str(c) => Column::Str(c.filter(mask)),
            Column::Bool(c) => Column::Bool(c.filter(mask)),
        }
    }

    /// Copy rows at the given indices.
    pub fn take(&self, idx: &[usize]) -> Column {
        match self {
            Column::I64(c) => Column::I64(c.take(idx)),
            Column::F64(c) => Column::F64(c.take(idx)),
            Column::Str(c) => Column::Str(c.take(idx)),
            Column::Bool(c) => Column::Bool(c.take(idx)),
        }
    }

    /// Concatenate columns of the same type.
    ///
    /// # Panics
    ///
    /// Panics on empty input or mixed types.
    pub fn concat(parts: &[Column]) -> Column {
        let rows = parts.iter().map(Column::len).sum();
        Self::concat_hinted(parts, rows)
    }

    /// [`Column::concat`] with a known total row count: the output is
    /// allocated once up front instead of growing per part (the
    /// runtime's merge-size hint). A short hint only costs the usual
    /// growth; it never truncates.
    ///
    /// # Panics
    ///
    /// Panics on empty input or mixed types.
    pub fn concat_hinted(parts: &[Column], total_rows: usize) -> Column {
        assert!(!parts.is_empty(), "concat of zero columns");
        match &parts[0] {
            Column::I64(_) => {
                let mut out = Vec::with_capacity(total_rows);
                for p in parts {
                    match p {
                        Column::I64(c) => out.extend_from_slice(c.as_slice()),
                        other => panic!("concat: mixed types i64 vs {}", other.dtype()),
                    }
                }
                Column::from_i64(out)
            }
            Column::F64(_) => {
                let mut out = Vec::with_capacity(total_rows);
                for p in parts {
                    match p {
                        Column::F64(c) => out.extend_from_slice(c.as_slice()),
                        other => panic!("concat: mixed types f64 vs {}", other.dtype()),
                    }
                }
                Column::from_f64(out)
            }
            Column::Str(_) => {
                let mut out: Vec<String> = Vec::with_capacity(total_rows);
                for p in parts {
                    match p {
                        Column::Str(c) => out.extend(c.as_slice().iter().cloned()),
                        other => panic!("concat: mixed types str vs {}", other.dtype()),
                    }
                }
                Column::from_str(out)
            }
            Column::Bool(_) => {
                let mut out = Vec::with_capacity(total_rows);
                for p in parts {
                    match p {
                        Column::Bool(c) => out.extend_from_slice(c.as_slice()),
                        other => panic!("concat: mixed types bool vs {}", other.dtype()),
                    }
                }
                Column::from_bool(out)
            }
        }
    }

    /// Borrow as `i64` values.
    ///
    /// # Panics
    ///
    /// Panics if the column is not `i64`.
    pub fn i64s(&self) -> &[i64] {
        match self {
            Column::I64(c) => c.as_slice(),
            other => panic!("expected i64 column, got {}", other.dtype()),
        }
    }

    /// Borrow as `f64` values.
    ///
    /// # Panics
    ///
    /// Panics if the column is not `f64`.
    pub fn f64s(&self) -> &[f64] {
        match self {
            Column::F64(c) => c.as_slice(),
            other => panic!("expected f64 column, got {}", other.dtype()),
        }
    }

    /// Borrow as strings.
    ///
    /// # Panics
    ///
    /// Panics if the column is not `str`.
    pub fn strs(&self) -> &[String] {
        match self {
            Column::Str(c) => c.as_slice(),
            other => panic!("expected str column, got {}", other.dtype()),
        }
    }

    /// Borrow as booleans.
    ///
    /// # Panics
    ///
    /// Panics if the column is not `bool`.
    pub fn bools(&self) -> &[bool] {
        match self {
            Column::Bool(c) => c.as_slice(),
            other => panic!("expected bool column, got {}", other.dtype()),
        }
    }

    /// Cast to `f64` (integers cast exactly; strings parse with NaN on
    /// failure; booleans become 0.0/1.0; floats are returned as-is).
    pub fn to_f64(&self) -> Column {
        match self {
            Column::F64(_) => self.clone(),
            Column::I64(c) => Column::from_f64(c.as_slice().iter().map(|&v| v as f64).collect()),
            Column::Str(c) => Column::from_f64(
                c.as_slice()
                    .iter()
                    .map(|s| s.trim().parse::<f64>().unwrap_or(f64::NAN))
                    .collect(),
            ),
            Column::Bool(c) => Column::from_f64(
                c.as_slice()
                    .iter()
                    .map(|&b| if b { 1.0 } else { 0.0 })
                    .collect(),
            ),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn slicing_is_zero_copy_and_nested() {
        let c = Column::from_i64((0..10).collect());
        let v = c.slice(2, 8);
        assert_eq!(v.i64s(), &[2, 3, 4, 5, 6, 7]);
        let vv = v.slice(1, 3);
        assert_eq!(vv.i64s(), &[3, 4]);
    }

    #[test]
    fn filter_and_take() {
        let c = Column::from_strs(&["a", "b", "c", "d"]);
        let f = c.filter(&[true, false, false, true]);
        assert_eq!(f.strs(), &["a".to_string(), "d".to_string()]);
        let t = c.take(&[3, 0, 0]);
        assert_eq!(
            t.strs(),
            &["d".to_string(), "a".to_string(), "a".to_string()]
        );
    }

    #[test]
    fn concat_hinted_matches_concat() {
        let c = Column::from_i64((0..10).collect());
        let parts = [c.slice(0, 4), c.slice(4, 10)];
        assert_eq!(Column::concat_hinted(&parts, 10).i64s(), c.i64s());
        // A wrong hint affects only the initial capacity, never content.
        assert_eq!(Column::concat_hinted(&parts, 1).i64s(), c.i64s());
    }

    #[test]
    fn concat_roundtrips_slices() {
        let c = Column::from_f64((0..6).map(|i| i as f64).collect());
        let merged = Column::concat(&[c.slice(0, 2), c.slice(2, 5), c.slice(5, 6)]);
        assert_eq!(merged.f64s(), c.f64s());
    }

    #[test]
    #[should_panic(expected = "mixed types")]
    fn concat_rejects_mixed_types() {
        Column::concat(&[Column::from_i64(vec![1]), Column::from_f64(vec![1.0])]);
    }

    #[test]
    fn casting() {
        let c = Column::from_strs(&["1.5", "x", " 2 "]);
        let f = c.to_f64();
        let v = f.f64s();
        assert_eq!(v[0], 1.5);
        assert!(v[1].is_nan());
        assert_eq!(v[2], 2.0);
        assert_eq!(Column::from_i64(vec![3]).to_f64().f64s(), &[3.0]);
        assert_eq!(
            Column::from_bool(vec![true, false]).to_f64().f64s(),
            &[1.0, 0.0]
        );
    }

    #[test]
    #[should_panic(expected = "expected i64 column")]
    fn typed_access_checks() {
        Column::from_f64(vec![1.0]).i64s();
    }
}
