//! Series operators: arithmetic, comparisons, boolean logic, null
//! handling, string methods, and scalar aggregations.
//!
//! These are the per-column operators the paper's Pandas integration
//! annotates ("most unary and binary Series operators, filters,
//! predicate masks", §7). All are pure functions returning fresh
//! columns, which is what makes them safely splittable by rows.

use crate::column::Column;

// ------------------------------ arithmetic ------------------------------

fn zip_f64(a: &Column, b: &Column, f: impl Fn(f64, f64) -> f64, op: &str) -> Column {
    let (x, y) = (a.f64s(), b.f64s());
    assert_eq!(x.len(), y.len(), "{op}: length mismatch");
    Column::from_f64(x.iter().zip(y).map(|(p, q)| f(*p, *q)).collect())
}

macro_rules! series_binary {
    ($(#[$doc:meta])* $name:ident, $sname:ident, $f:expr) => {
        $(#[$doc])*
        ///
        /// # Panics
        ///
        /// Panics if lengths differ or a column is not `f64`.
        pub fn $name(a: &Column, b: &Column) -> Column {
            zip_f64(a, b, $f, stringify!($name))
        }

        /// Scalar variant of the operator.
        pub fn $sname(a: &Column, k: f64) -> Column {
            let f = $f;
            Column::from_f64(a.f64s().iter().map(|&x| f(x, k)).collect())
        }
    };
}

series_binary!(
    /// Elementwise addition of two `f64` series.
    add, add_scalar, |x: f64, y: f64| x + y
);
series_binary!(
    /// Elementwise subtraction.
    sub, sub_scalar, |x: f64, y: f64| x - y
);
series_binary!(
    /// Elementwise multiplication.
    mul, mul_scalar, |x: f64, y: f64| x * y
);
series_binary!(
    /// Elementwise division.
    div, div_scalar, |x: f64, y: f64| x / y
);

// ------------------------------ comparisons -----------------------------

macro_rules! series_compare {
    ($(#[$doc:meta])* $name:ident, $op:tt) => {
        $(#[$doc])*
        pub fn $name(a: &Column, k: f64) -> Column {
            Column::from_bool(a.f64s().iter().map(|&x| x $op k).collect())
        }
    };
}

series_compare!(
    /// `a > k` mask.
    gt_scalar, >
);
series_compare!(
    /// `a < k` mask.
    lt_scalar, <
);
series_compare!(
    /// `a >= k` mask.
    ge_scalar, >=
);
series_compare!(
    /// `a <= k` mask.
    le_scalar, <=
);

/// `a == k` mask over an integer series.
pub fn eq_i64(a: &Column, k: i64) -> Column {
    Column::from_bool(a.i64s().iter().map(|&x| x == k).collect())
}

/// Elementwise `a > b` over two `f64` series.
///
/// # Panics
///
/// Panics if lengths differ.
pub fn gt(a: &Column, b: &Column) -> Column {
    let (x, y) = (a.f64s(), b.f64s());
    assert_eq!(x.len(), y.len(), "gt: length mismatch");
    Column::from_bool(x.iter().zip(y).map(|(p, q)| p > q).collect())
}

// ------------------------------ boolean ---------------------------------

/// Elementwise AND of two boolean masks.
///
/// # Panics
///
/// Panics if lengths differ.
pub fn and(a: &Column, b: &Column) -> Column {
    let (x, y) = (a.bools(), b.bools());
    assert_eq!(x.len(), y.len(), "and: length mismatch");
    Column::from_bool(x.iter().zip(y).map(|(p, q)| *p && *q).collect())
}

/// Elementwise OR of two boolean masks.
///
/// # Panics
///
/// Panics if lengths differ.
pub fn or(a: &Column, b: &Column) -> Column {
    let (x, y) = (a.bools(), b.bools());
    assert_eq!(x.len(), y.len(), "or: length mismatch");
    Column::from_bool(x.iter().zip(y).map(|(p, q)| *p || *q).collect())
}

/// Elementwise NOT of a boolean mask.
pub fn not(a: &Column) -> Column {
    Column::from_bool(a.bools().iter().map(|b| !b).collect())
}

// ------------------------------ nulls -----------------------------------

/// NaN mask of an `f64` series (like `Series.isnull()`); all-false for
/// null-free column types.
pub fn is_null(a: &Column) -> Column {
    match a {
        Column::F64(c) => Column::from_bool(c.as_slice().iter().map(|x| x.is_nan()).collect()),
        other => Column::from_bool(vec![false; other.len()]),
    }
}

/// Replace NaN with `v` (like `Series.fillna`).
pub fn fillna(a: &Column, v: f64) -> Column {
    Column::from_f64(
        a.f64s()
            .iter()
            .map(|&x| if x.is_nan() { v } else { x })
            .collect(),
    )
}

/// Conditionally replace values: where `mask` is true, use `v`
/// (`Series.mask` in Pandas). Works on `f64` and `str` columns; for
/// `str`, `v = NaN` is not representable, use [`mask_assign_str`].
///
/// # Panics
///
/// Panics if lengths differ or the column is not `f64`.
pub fn mask_assign(a: &Column, mask: &Column, v: f64) -> Column {
    let (x, m) = (a.f64s(), mask.bools());
    assert_eq!(x.len(), m.len(), "mask_assign: length mismatch");
    Column::from_f64(
        x.iter()
            .zip(m)
            .map(|(&val, &hit)| if hit { v } else { val })
            .collect(),
    )
}

/// Conditionally replace string values where `mask` is true.
///
/// # Panics
///
/// Panics if lengths differ or the column is not `str`.
pub fn mask_assign_str(a: &Column, mask: &Column, v: &str) -> Column {
    let (x, m) = (a.strs(), mask.bools());
    assert_eq!(x.len(), m.len(), "mask_assign_str: length mismatch");
    Column::from_str(
        x.iter()
            .zip(m)
            .map(|(val, &hit)| if hit { v.to_string() } else { val.clone() })
            .collect(),
    )
}

// ------------------------------ strings ---------------------------------

/// `s == k` mask over a string series.
pub fn str_eq(a: &Column, k: &str) -> Column {
    Column::from_bool(a.strs().iter().map(|s| s == k).collect())
}

/// Membership mask: `s ∈ set`.
pub fn str_isin(a: &Column, set: &[&str]) -> Column {
    Column::from_bool(a.strs().iter().map(|s| set.contains(&s.as_str())).collect())
}

/// String lengths as an integer series (`Series.str.len()`).
pub fn str_len(a: &Column) -> Column {
    Column::from_i64(a.strs().iter().map(|s| s.len() as i64).collect())
}

/// Substring `[start, end)` clamped to each string (`Series.str.slice`).
pub fn str_slice(a: &Column, start: usize, end: usize) -> Column {
    Column::from_str(
        a.strs()
            .iter()
            .map(|s| {
                let e = end.min(s.len());
                let b = start.min(e);
                s[b..e].to_string()
            })
            .collect(),
    )
}

/// Prefix mask (`Series.str.startswith`).
pub fn str_startswith(a: &Column, prefix: &str) -> Column {
    Column::from_bool(a.strs().iter().map(|s| s.starts_with(prefix)).collect())
}

/// Substring mask (`Series.str.contains`).
pub fn str_contains(a: &Column, needle: &str) -> Column {
    Column::from_bool(a.strs().iter().map(|s| s.contains(needle)).collect())
}

/// Uppercase every string.
pub fn str_upper(a: &Column) -> Column {
    Column::from_str(a.strs().iter().map(|s| s.to_uppercase()).collect())
}

// ------------------------------ reductions ------------------------------

/// Sum of an `f64` series, skipping NaN (Pandas semantics).
pub fn sum(a: &Column) -> f64 {
    a.f64s().iter().filter(|x| !x.is_nan()).sum()
}

/// Count of non-null values.
pub fn count(a: &Column) -> i64 {
    match a {
        Column::F64(c) => c.as_slice().iter().filter(|x| !x.is_nan()).count() as i64,
        other => other.len() as i64,
    }
}

/// Mean of an `f64` series, skipping NaN.
pub fn mean(a: &Column) -> f64 {
    let c = count(a);
    if c == 0 {
        f64::NAN
    } else {
        sum(a) / c as f64
    }
}

/// Minimum, skipping NaN (`inf` if all-null).
pub fn min(a: &Column) -> f64 {
    a.f64s()
        .iter()
        .copied()
        .filter(|x| !x.is_nan())
        .fold(f64::INFINITY, f64::min)
}

/// Maximum, skipping NaN (`-inf` if all-null).
pub fn max(a: &Column) -> f64 {
    a.f64s()
        .iter()
        .copied()
        .filter(|x| !x.is_nan())
        .fold(f64::NEG_INFINITY, f64::max)
}

/// Distinct values of a string series, in first-seen order.
pub fn unique_str(a: &Column) -> Vec<String> {
    let mut seen = std::collections::HashSet::new();
    let mut out = Vec::new();
    for s in a.strs() {
        if seen.insert(s.clone()) {
            out.push(s.clone());
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arithmetic_and_compare() {
        let a = Column::from_f64(vec![1.0, 2.0, 3.0]);
        let b = Column::from_f64(vec![10.0, 20.0, 30.0]);
        assert_eq!(add(&a, &b).f64s(), &[11.0, 22.0, 33.0]);
        assert_eq!(mul_scalar(&a, 2.0).f64s(), &[2.0, 4.0, 6.0]);
        assert_eq!(gt_scalar(&a, 1.5).bools(), &[false, true, true]);
        assert_eq!(gt(&b, &a).bools(), &[true, true, true]);
        assert_eq!(
            eq_i64(&Column::from_i64(vec![1, 2, 1]), 1).bools(),
            &[true, false, true]
        );
    }

    #[test]
    fn boolean_logic() {
        let a = Column::from_bool(vec![true, true, false]);
        let b = Column::from_bool(vec![true, false, false]);
        assert_eq!(and(&a, &b).bools(), &[true, false, false]);
        assert_eq!(or(&a, &b).bools(), &[true, true, false]);
        assert_eq!(not(&b).bools(), &[false, true, true]);
    }

    #[test]
    fn null_handling() {
        let a = Column::from_f64(vec![1.0, f64::NAN, 3.0]);
        assert_eq!(is_null(&a).bools(), &[false, true, false]);
        assert_eq!(fillna(&a, 0.0).f64s(), &[1.0, 0.0, 3.0]);
        assert_eq!(sum(&a), 4.0);
        assert_eq!(count(&a), 2);
        assert_eq!(mean(&a), 2.0);
        assert_eq!(is_null(&Column::from_i64(vec![1])).bools(), &[false]);
    }

    #[test]
    fn string_methods() {
        let s = Column::from_strs(&["00000", "12345-678", "Leslie", "Lesley"]);
        assert_eq!(str_eq(&s, "00000").bools(), &[true, false, false, false]);
        assert_eq!(str_len(&s).i64s(), &[5, 9, 6, 6]);
        assert_eq!(str_slice(&s, 0, 5).strs()[1], "12345");
        assert_eq!(
            str_startswith(&s, "Lesl").bools(),
            &[false, false, true, true]
        );
        assert_eq!(str_contains(&s, "-").bools(), &[false, true, false, false]);
        assert_eq!(
            str_isin(&s, &["00000", "Lesley"]).bools(),
            &[true, false, false, true]
        );
        assert_eq!(str_upper(&s).strs()[2], "LESLIE");
    }

    #[test]
    fn mask_assignment() {
        let a = Column::from_f64(vec![1.0, 2.0, 3.0]);
        let m = Column::from_bool(vec![false, true, false]);
        let out = mask_assign(&a, &m, f64::NAN);
        assert!(out.f64s()[1].is_nan());
        assert_eq!(out.f64s()[0], 1.0);

        let s = Column::from_strs(&["a", "bb"]);
        let m = Column::from_bool(vec![true, false]);
        assert_eq!(
            mask_assign_str(&s, &m, "z").strs(),
            &["z".to_string(), "bb".to_string()]
        );
    }

    #[test]
    fn unique_preserves_first_seen_order() {
        let s = Column::from_strs(&["b", "a", "b", "c", "a"]);
        assert_eq!(unique_str(&s), vec!["b", "a", "c"]);
    }
}
