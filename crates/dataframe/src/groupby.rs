//! Hash-based groupBy with commutative aggregations.
//!
//! The paper's Pandas integration supports groupBys through a dedicated
//! `GroupSplit` split type: chunks of a frame are grouped into *partial
//! aggregations*, and the merger re-groups and re-aggregates them (§7).
//! That strategy only works for commutative, re-aggregatable functions,
//! so each [`Agg`] here defines both its direct form and its
//! partial/re-aggregation form (`Mean` becomes sum+count partials).

use std::collections::HashMap;

use crate::column::Column;
use crate::frame::DataFrame;

/// A group key part; float keys are disallowed (NaN breaks hashing),
/// matching Pandas' practical guidance.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum KeyPart {
    /// Integer key component.
    I64(i64),
    /// String key component.
    Str(String),
    /// Boolean key component.
    Bool(bool),
}

/// Aggregation functions supported under splitting (all commutative).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Agg {
    /// Sum of an `f64` column (NaN-skipping).
    Sum,
    /// Count of non-null values.
    Count,
    /// Mean (decomposes into sum + count partials).
    Mean,
    /// Minimum.
    Min,
    /// Maximum.
    Max,
}

/// One aggregation request: input column, function, output column name.
#[derive(Debug, Clone)]
pub struct AggSpec {
    /// Column to aggregate.
    pub col: String,
    /// Aggregation function.
    pub agg: Agg,
    /// Name of the output column.
    pub out: String,
}

impl AggSpec {
    /// Convenience constructor.
    pub fn new(col: &str, agg: Agg, out: &str) -> Self {
        AggSpec {
            col: col.to_string(),
            agg,
            out: out.to_string(),
        }
    }
}

fn key_column(df: &DataFrame, name: &str) -> Vec<KeyPart> {
    match df.col(name) {
        Column::I64(c) => c.as_slice().iter().map(|&v| KeyPart::I64(v)).collect(),
        Column::Str(c) => c
            .as_slice()
            .iter()
            .map(|s| KeyPart::Str(s.clone()))
            .collect(),
        Column::Bool(c) => c.as_slice().iter().map(|&b| KeyPart::Bool(b)).collect(),
        Column::F64(_) => panic!("cannot group by float column {name}"),
    }
}

/// Row keys for the given key columns.
fn row_keys(df: &DataFrame, keys: &[&str]) -> Vec<Vec<KeyPart>> {
    let parts: Vec<Vec<KeyPart>> = keys.iter().map(|k| key_column(df, k)).collect();
    (0..df.num_rows())
        .map(|r| parts.iter().map(|p| p[r].clone()).collect())
        .collect()
}

/// Running state per (group, aggregation).
#[derive(Debug, Clone, Copy)]
struct AccState {
    sum: f64,
    count: i64,
    min: f64,
    max: f64,
}

impl AccState {
    fn new() -> Self {
        AccState {
            sum: 0.0,
            count: 0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }
    fn push(&mut self, v: f64) {
        if !v.is_nan() {
            self.sum += v;
            self.count += 1;
            self.min = self.min.min(v);
            self.max = self.max.max(v);
        }
    }
    fn finish(&self, agg: Agg) -> f64 {
        match agg {
            Agg::Sum => self.sum,
            Agg::Count => self.count as f64,
            Agg::Mean => {
                if self.count == 0 {
                    f64::NAN
                } else {
                    self.sum / self.count as f64
                }
            }
            Agg::Min => self.min,
            Agg::Max => self.max,
        }
    }
}

/// Accumulator table: first-seen key order plus per-key states.
type GroupAcc = (Vec<Vec<KeyPart>>, HashMap<Vec<KeyPart>, Vec<AccState>>);

fn accumulate(df: &DataFrame, keys: &[&str], specs: &[AggSpec]) -> GroupAcc {
    let rk = row_keys(df, keys);
    let cols: Vec<&[f64]> = specs.iter().map(|s| df.col(&s.col).f64s()).collect();
    let mut table: HashMap<Vec<KeyPart>, Vec<AccState>> = HashMap::new();
    let mut order: Vec<Vec<KeyPart>> = Vec::new();
    for (r, key) in rk.into_iter().enumerate() {
        let entry = table.entry(key.clone()).or_insert_with(|| {
            order.push(key);
            vec![AccState::new(); specs.len()]
        });
        for (i, col) in cols.iter().enumerate() {
            entry[i].push(col[r]);
        }
    }
    (order, table)
}

fn build_result(
    df: &DataFrame,
    keys: &[&str],
    specs: &[AggSpec],
    order: Vec<Vec<KeyPart>>,
    table: HashMap<Vec<KeyPart>, Vec<AccState>>,
    finish: impl Fn(&AccState, &AggSpec) -> f64,
) -> DataFrame {
    let mut key_cols: Vec<Vec<KeyPart>> = vec![Vec::with_capacity(order.len()); keys.len()];
    let mut agg_cols: Vec<Vec<f64>> = vec![Vec::with_capacity(order.len()); specs.len()];
    for key in &order {
        let states = &table[key];
        for (i, part) in key.iter().enumerate() {
            key_cols[i].push(part.clone());
        }
        for (i, spec) in specs.iter().enumerate() {
            agg_cols[i].push(finish(&states[i], spec));
        }
    }
    let mut cols: Vec<(String, Column)> = Vec::new();
    for (i, k) in keys.iter().enumerate() {
        // Type the key column from the source frame so empty results
        // (e.g. an all-filtered chunk under split execution) keep the
        // right dtype for later concatenation.
        let col = match df.col(k) {
            Column::I64(_) => Column::from_i64(
                key_cols[i]
                    .iter()
                    .map(|p| match p {
                        KeyPart::I64(v) => *v,
                        _ => unreachable!("mixed key types"),
                    })
                    .collect(),
            ),
            Column::Str(_) => Column::from_str(
                key_cols[i]
                    .iter()
                    .map(|p| match p {
                        KeyPart::Str(s) => s.clone(),
                        _ => unreachable!("mixed key types"),
                    })
                    .collect(),
            ),
            Column::Bool(_) => Column::from_bool(
                key_cols[i]
                    .iter()
                    .map(|p| match p {
                        KeyPart::Bool(b) => *b,
                        _ => unreachable!("mixed key types"),
                    })
                    .collect(),
            ),
            Column::F64(_) => unreachable!("float keys rejected earlier"),
        };
        cols.push((k.to_string(), col));
    }
    for (i, spec) in specs.iter().enumerate() {
        cols.push((
            spec.out.clone(),
            Column::from_f64(std::mem::take(&mut agg_cols[i])),
        ));
    }
    DataFrame::new(cols)
}

/// Group `df` by the key columns and aggregate (like
/// `df.groupby(keys).agg(...)` with `as_index=False`).
///
/// Output rows appear in first-seen key order. Aggregated columns must
/// be `f64` (cast first with [`Column::to_f64`]).
///
/// # Panics
///
/// Panics on missing columns, float keys, or non-`f64` agg inputs.
pub fn groupby_agg(df: &DataFrame, keys: &[&str], specs: &[AggSpec]) -> DataFrame {
    let (order, table) = accumulate(df, keys, specs);
    build_result(df, keys, specs, order, table, |st, spec| {
        st.finish(spec.agg)
    })
}

/// Partial aggregation for split execution: like [`groupby_agg`] but
/// `Mean` produces re-aggregatable `sum`/`count` pairs. The output
/// contains, per spec, the columns the matching [`reaggregate`] expects.
pub fn partial_groupby_agg(df: &DataFrame, keys: &[&str], specs: &[AggSpec]) -> DataFrame {
    let expanded = expand_partial_specs(specs);
    groupby_agg(df, keys, &expanded)
}

/// Re-aggregate concatenated partial aggregations into final results.
///
/// `partials` must have been produced by [`partial_groupby_agg`] with
/// the same `keys` and `specs`.
pub fn reaggregate(partials: &DataFrame, keys: &[&str], specs: &[AggSpec]) -> DataFrame {
    // Combine partial rows per key with the appropriate combiner.
    let expanded = expand_partial_specs(specs);
    let combine: Vec<AggSpec> = expanded
        .iter()
        .map(|s| {
            let agg = match s.agg {
                Agg::Sum | Agg::Mean => Agg::Sum,
                Agg::Count => Agg::Sum, // counts add up
                Agg::Min => Agg::Min,
                Agg::Max => Agg::Max,
            };
            AggSpec {
                col: s.out.clone(),
                agg,
                out: s.out.clone(),
            }
        })
        .collect();
    let combined = groupby_agg(partials, keys, &combine);
    // Post-process: compute means from sum/count and project columns.
    let mut cols: Vec<(String, Column)> = keys
        .iter()
        .map(|k| (k.to_string(), combined.col(k).clone()))
        .collect();
    for spec in specs {
        match spec.agg {
            Agg::Mean => {
                let sums = combined.col(&format!("__{}_sum", spec.out)).f64s();
                let counts = combined.col(&format!("__{}_count", spec.out)).f64s();
                let mean: Vec<f64> = sums
                    .iter()
                    .zip(counts)
                    .map(|(s, c)| if *c == 0.0 { f64::NAN } else { s / c })
                    .collect();
                cols.push((spec.out.clone(), Column::from_f64(mean)));
            }
            _ => cols.push((spec.out.clone(), combined.col(&spec.out).clone())),
        }
    }
    DataFrame::new(cols)
}

fn expand_partial_specs(specs: &[AggSpec]) -> Vec<AggSpec> {
    let mut out = Vec::new();
    for s in specs {
        match s.agg {
            Agg::Mean => {
                out.push(AggSpec::new(&s.col, Agg::Sum, &format!("__{}_sum", s.out)));
                out.push(AggSpec::new(
                    &s.col,
                    Agg::Count,
                    &format!("__{}_count", s.out),
                ));
            }
            _ => out.push(s.clone()),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn df() -> DataFrame {
        DataFrame::from_cols(vec![
            ("sex", Column::from_strs(&["F", "M", "F", "F", "M"])),
            ("year", Column::from_i64(vec![2000, 2000, 2001, 2000, 2001])),
            (
                "births",
                Column::from_f64(vec![10.0, 20.0, 30.0, 40.0, f64::NAN]),
            ),
        ])
    }

    #[test]
    fn single_key_sum_and_count() {
        let g = groupby_agg(
            &df(),
            &["sex"],
            &[
                AggSpec::new("births", Agg::Sum, "total"),
                AggSpec::new("births", Agg::Count, "n"),
            ],
        );
        assert_eq!(g.num_rows(), 2);
        assert_eq!(g.col("sex").strs(), &["F".to_string(), "M".to_string()]);
        assert_eq!(g.col("total").f64s(), &[80.0, 20.0]);
        assert_eq!(g.col("n").f64s(), &[3.0, 1.0]); // NaN skipped
    }

    #[test]
    fn multi_key_mean_min_max() {
        let g = groupby_agg(
            &df(),
            &["sex", "year"],
            &[
                AggSpec::new("births", Agg::Mean, "avg"),
                AggSpec::new("births", Agg::Min, "lo"),
                AggSpec::new("births", Agg::Max, "hi"),
            ],
        );
        let g = g.sort_by("year");
        assert_eq!(g.num_rows(), 4);
        // (F, 2000): mean of 10 and 40.
        let sexes = g.col("sex").strs();
        let years = g.col("year").i64s();
        let avgs = g.col("avg").f64s();
        let i = (0..4)
            .find(|&i| sexes[i] == "F" && years[i] == 2000)
            .unwrap();
        assert_eq!(avgs[i], 25.0);
        assert_eq!(g.col("lo").f64s()[i], 10.0);
        assert_eq!(g.col("hi").f64s()[i], 40.0);
        // (M, 2001) is all-NaN: mean is NaN.
        let j = (0..4)
            .find(|&i| sexes[i] == "M" && years[i] == 2001)
            .unwrap();
        assert!(avgs[j].is_nan());
    }

    #[test]
    fn partial_then_reaggregate_equals_direct() {
        let d = df();
        let specs = vec![
            AggSpec::new("births", Agg::Mean, "avg"),
            AggSpec::new("births", Agg::Sum, "total"),
            AggSpec::new("births", Agg::Min, "lo"),
        ];
        let direct = groupby_agg(&d, &["sex", "year"], &specs).sort_by("year");

        // Split into chunks, partially aggregate, concat, re-aggregate —
        // exactly what the GroupSplit split type does under Mozart.
        let p1 = partial_groupby_agg(&d.slice_rows(0, 2), &["sex", "year"], &specs);
        let p2 = partial_groupby_agg(&d.slice_rows(2, 5), &["sex", "year"], &specs);
        let merged =
            reaggregate(&DataFrame::concat(&[p1, p2]), &["sex", "year"], &specs).sort_by("year");

        assert_eq!(direct.num_rows(), merged.num_rows());
        for c in ["avg", "total", "lo"] {
            let a = direct.col(c).f64s();
            let b = merged.col(c).f64s();
            for i in 0..a.len() {
                assert!(
                    (a[i] == b[i]) || (a[i].is_nan() && b[i].is_nan()),
                    "{c}[{i}]: {} vs {}",
                    a[i],
                    b[i]
                );
            }
        }
    }

    #[test]
    #[should_panic(expected = "cannot group by float column")]
    fn float_keys_rejected() {
        groupby_agg(&df(), &["births"], &[AggSpec::new("births", Agg::Sum, "s")]);
    }
}

#[cfg(test)]
mod empty_group_tests {
    use super::*;
    use crate::column::Column;

    /// Regression: a groupBy over an empty (fully filtered) chunk must
    /// keep key column dtypes so partial aggregations still concat.
    #[test]
    fn empty_input_preserves_key_dtypes() {
        let df = DataFrame::from_cols(vec![
            ("sex", Column::from_strs(&[])),
            ("year", Column::from_i64(vec![])),
            ("births", Column::from_f64(vec![])),
        ]);
        let specs = [AggSpec::new("births", Agg::Sum, "total")];
        let g = groupby_agg(&df, &["sex", "year"], &specs);
        assert_eq!(g.num_rows(), 0);
        assert_eq!(g.col("sex").dtype(), "str");
        assert_eq!(g.col("year").dtype(), "i64");
        // Concats with a non-empty partial.
        let df2 = DataFrame::from_cols(vec![
            ("sex", Column::from_strs(&["F"])),
            ("year", Column::from_i64(vec![2000])),
            ("births", Column::from_f64(vec![3.0])),
        ]);
        let g2 = groupby_agg(&df2, &["sex", "year"], &specs);
        let merged = DataFrame::concat(&[g, g2]);
        assert_eq!(merged.num_rows(), 1);
    }
}
