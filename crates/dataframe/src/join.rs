//! Hash joins.
//!
//! Under Mozart, joins "split one table and broadcast the other" (§7):
//! the probe side is row-split, the build side is passed whole (`_`
//! split type), and the result carries the `unknown` split type because
//! output cardinality is data-dependent.

use std::collections::HashMap;

use crate::column::Column;
use crate::frame::DataFrame;
use crate::groupby::KeyPart;

fn join_keys(df: &DataFrame, on: &str) -> Vec<KeyPart> {
    match df.col(on) {
        Column::I64(c) => c.as_slice().iter().map(|&v| KeyPart::I64(v)).collect(),
        Column::Str(c) => c
            .as_slice()
            .iter()
            .map(|s| KeyPart::Str(s.clone()))
            .collect(),
        Column::Bool(c) => c.as_slice().iter().map(|&b| KeyPart::Bool(b)).collect(),
        Column::F64(_) => panic!("cannot join on float column {on}"),
    }
}

/// Inner hash join of `left` and `right` on the equally-named key
/// column `on`.
///
/// The right side is the build side. Non-key columns appearing in both
/// frames get `_x` / `_y` suffixes (Pandas convention). Output row
/// order follows the left (probe) side, so row-splitting the left frame
/// and concatenating the piecewise results reproduces the unsplit
/// result exactly — the property the SA exploits.
///
/// # Panics
///
/// Panics if either frame lacks `on` or the key is a float column.
pub fn inner_join(left: &DataFrame, right: &DataFrame, on: &str) -> DataFrame {
    let lk = join_keys(left, on);
    let rk = join_keys(right, on);

    // Build: key -> right row indices.
    let mut table: HashMap<&KeyPart, Vec<usize>> = HashMap::new();
    for (i, k) in rk.iter().enumerate() {
        table.entry(k).or_default().push(i);
    }

    // Probe in left order.
    let mut left_idx: Vec<usize> = Vec::new();
    let mut right_idx: Vec<usize> = Vec::new();
    for (i, k) in lk.iter().enumerate() {
        if let Some(matches) = table.get(k) {
            for &j in matches {
                left_idx.push(i);
                right_idx.push(j);
            }
        }
    }

    let mut cols: Vec<(String, Column)> = Vec::new();
    for (name, col) in left.columns() {
        cols.push((name.clone(), col.take(&left_idx)));
    }
    for (name, col) in right.columns() {
        if name == on {
            continue;
        }
        let out_name = if left.get(name).is_some() {
            // Disambiguate like Pandas: left gets _x, right gets _y.
            let lpos = cols.iter().position(|(n, _)| n == name).expect("present");
            let lname = format!("{name}_x");
            cols[lpos].0 = lname;
            format!("{name}_y")
        } else {
            name.clone()
        };
        cols.push((out_name, col.take(&right_idx)));
    }
    DataFrame::new(cols)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn users() -> DataFrame {
        DataFrame::from_cols(vec![
            ("user_id", Column::from_i64(vec![1, 2, 3])),
            ("gender", Column::from_strs(&["F", "M", "F"])),
        ])
    }

    fn ratings() -> DataFrame {
        DataFrame::from_cols(vec![
            ("user_id", Column::from_i64(vec![3, 1, 1, 9])),
            ("rating", Column::from_f64(vec![5.0, 3.0, 4.0, 1.0])),
        ])
    }

    #[test]
    fn inner_join_basic() {
        let j = inner_join(&ratings(), &users(), "user_id");
        assert_eq!(j.num_rows(), 3); // user 9 unmatched
        assert_eq!(j.col("user_id").i64s(), &[3, 1, 1]);
        assert_eq!(j.col("gender").strs(), &["F", "F", "F"]);
        assert_eq!(j.col("rating").f64s(), &[5.0, 3.0, 4.0]);
    }

    #[test]
    fn join_duplicates_on_build_side() {
        let right = DataFrame::from_cols(vec![
            ("k", Column::from_i64(vec![1, 1])),
            ("v", Column::from_f64(vec![10.0, 20.0])),
        ]);
        let left = DataFrame::from_cols(vec![
            ("k", Column::from_i64(vec![1])),
            ("w", Column::from_f64(vec![0.5])),
        ]);
        let j = inner_join(&left, &right, "k");
        assert_eq!(j.num_rows(), 2);
        assert_eq!(j.col("v").f64s(), &[10.0, 20.0]);
    }

    #[test]
    fn overlapping_columns_get_suffixes() {
        let left = DataFrame::from_cols(vec![
            ("k", Column::from_i64(vec![1])),
            ("v", Column::from_f64(vec![1.0])),
        ]);
        let right = DataFrame::from_cols(vec![
            ("k", Column::from_i64(vec![1])),
            ("v", Column::from_f64(vec![2.0])),
        ]);
        let j = inner_join(&left, &right, "k");
        assert_eq!(j.col("v_x").f64s(), &[1.0]);
        assert_eq!(j.col("v_y").f64s(), &[2.0]);
    }

    #[test]
    fn probe_side_splitting_composes() {
        // The correctness condition for the join SA (§3.4): joining
        // row-chunks of the probe side and concatenating equals joining
        // the whole probe side.
        let l = ratings();
        let r = users();
        let whole = inner_join(&l, &r, "user_id");
        let a = inner_join(&l.slice_rows(0, 2), &r, "user_id");
        let b = inner_join(&l.slice_rows(2, 4), &r, "user_id");
        let merged = DataFrame::concat(&[a, b]);
        assert_eq!(whole.num_rows(), merged.num_rows());
        assert_eq!(whole.col("rating").f64s(), merged.col("rating").f64s());
        assert_eq!(whole.col("gender").strs(), merged.col("gender").strs());
    }

    #[test]
    fn string_keys() {
        let l = DataFrame::from_cols(vec![("city", Column::from_strs(&["sf", "nyc"]))]);
        let r = DataFrame::from_cols(vec![
            ("city", Column::from_strs(&["nyc", "sf"])),
            ("pop", Column::from_f64(vec![8.0, 1.0])),
        ]);
        let j = inner_join(&l, &r, "city");
        assert_eq!(j.col("pop").f64s(), &[1.0, 8.0]);
    }
}
