//! Elementwise operators over [`NdArray`], backed by the `vectormath`
//! kernels (this reproduces the common NumPy-on-MKL deployment: each
//! operator performs one full, optimized pass over its operands).

use crate::array::NdArray;
use vectormath as vm;

/// Limited NumPy-style broadcasting for rank ≤ 2:
/// equal shapes, `[m, n] ⊕ [n]` (row vector), and `[m, n] ⊕ [m, 1]`
/// (column vector).
fn broadcast_shapes<'a>(a: &'a [usize], b: &'a [usize]) -> Option<Vec<usize>> {
    if a == b {
        return Some(a.to_vec());
    }
    match (a.len(), b.len()) {
        (2, 1) if a[1] == b[0] => Some(a.to_vec()),
        (1, 2) if b[1] == a[0] => Some(b.to_vec()),
        (2, 2) if a[0] == b[0] && b[1] == 1 => Some(a.to_vec()),
        (2, 2) if a[0] == b[0] && a[1] == 1 => Some(b.to_vec()),
        _ => None,
    }
}

fn binary(a: &NdArray, b: &NdArray, f: fn(&[f64], &[f64], &mut [f64]), op: &str) -> NdArray {
    let shape = broadcast_shapes(a.shape(), b.shape()).unwrap_or_else(|| {
        panic!(
            "{op}: cannot broadcast {:?} with {:?}",
            a.shape(),
            b.shape()
        )
    });
    if a.shape() == b.shape() {
        let mut out = vec![0.0; a.len()];
        f(a.as_slice(), b.as_slice(), &mut out);
        return NdArray::from_shape_vec(&shape, out);
    }
    // Materialize the smaller operand against the output shape, then run
    // the kernel once (NumPy does the equivalent with strided loops).
    let (rows, cols) = (shape[0], shape[1]);
    let expand = |x: &NdArray| -> Vec<f64> {
        if x.shape() == shape.as_slice() {
            return x.to_vec();
        }
        let mut out = Vec::with_capacity(rows * cols);
        if x.ndim() == 1 || x.shape()[0] == 1 {
            // Row vector: repeat per row.
            let row = x.as_slice();
            for _ in 0..rows {
                out.extend_from_slice(row);
            }
        } else {
            // Column vector: repeat each value across a row.
            let col = x.as_slice();
            for &v in col.iter().take(rows) {
                out.extend(std::iter::repeat_n(v, cols));
            }
        }
        out
    };
    let ea = expand(a);
    let eb = expand(b);
    let mut out = vec![0.0; rows * cols];
    f(&ea, &eb, &mut out);
    NdArray::from_shape_vec(&shape, out)
}

fn unary(a: &NdArray, f: fn(&[f64], &mut [f64])) -> NdArray {
    let mut out = vec![0.0; a.len()];
    f(a.as_slice(), &mut out);
    NdArray::from_shape_vec(a.shape(), out)
}

fn scalar(a: &NdArray, k: f64, f: fn(&[f64], f64, &mut [f64])) -> NdArray {
    let mut out = vec![0.0; a.len()];
    f(a.as_slice(), k, &mut out);
    NdArray::from_shape_vec(a.shape(), out)
}

macro_rules! nd_binary {
    ($(#[$doc:meta])* $name:ident, $kernel:path) => {
        $(#[$doc])*
        ///
        /// # Panics
        ///
        /// Panics if the shapes cannot broadcast.
        pub fn $name(a: &NdArray, b: &NdArray) -> NdArray {
            binary(a, b, $kernel, stringify!($name))
        }
    };
}

macro_rules! nd_unary {
    ($(#[$doc:meta])* $name:ident, $kernel:path) => {
        $(#[$doc])*
        pub fn $name(a: &NdArray) -> NdArray {
            unary(a, $kernel)
        }
    };
}

macro_rules! nd_scalar {
    ($(#[$doc:meta])* $name:ident, $kernel:path) => {
        $(#[$doc])*
        pub fn $name(a: &NdArray, k: f64) -> NdArray {
            scalar(a, k, $kernel)
        }
    };
}

nd_binary!(
    /// Elementwise `a + b` with limited broadcasting.
    add, vm::vd_add
);
nd_binary!(
    /// Elementwise `a - b` with limited broadcasting.
    sub, vm::vd_sub
);
nd_binary!(
    /// Elementwise `a * b` with limited broadcasting.
    mul, vm::vd_mul
);
nd_binary!(
    /// Elementwise `a / b` with limited broadcasting.
    div, vm::vd_div
);
nd_binary!(
    /// Elementwise `a ^ b` with limited broadcasting.
    pow, vm::vd_pow
);
nd_binary!(
    /// Elementwise maximum with limited broadcasting.
    maximum, vm::vd_fmax
);
nd_binary!(
    /// Elementwise minimum with limited broadcasting.
    minimum, vm::vd_fmin
);

nd_unary!(
    /// Elementwise square root.
    sqrt, vm::vd_sqrt
);
nd_unary!(
    /// Elementwise `e^x`.
    exp, vm::vd_exp
);
nd_unary!(
    /// Elementwise natural logarithm.
    ln, vm::vd_ln
);
nd_unary!(
    /// Elementwise `ln(1 + x)`.
    log1p, vm::vd_log1p
);
nd_unary!(
    /// Elementwise error function.
    erf, vm::vd_erf
);
nd_unary!(
    /// Elementwise sine.
    sin, vm::vd_sin
);
nd_unary!(
    /// Elementwise cosine.
    cos, vm::vd_cos
);
nd_unary!(
    /// Elementwise arcsine.
    asin, vm::vd_asin
);
nd_unary!(
    /// Elementwise absolute value.
    abs, vm::vd_abs
);
nd_unary!(
    /// Elementwise square.
    square, vm::vd_sqr
);
nd_unary!(
    /// Elementwise negation.
    neg, vm::vd_neg
);
nd_unary!(
    /// Elementwise reciprocal.
    recip, vm::vd_inv
);

nd_scalar!(
    /// `a * k`.
    mul_scalar, vm::vd_scale
);
nd_scalar!(
    /// `a + k`.
    add_scalar, vm::vd_shift
);
nd_scalar!(
    /// `a ^ k`.
    pow_scalar, vm::vd_powx
);
nd_scalar!(
    /// `k - a`.
    rsub_scalar, vm::vd_rsub
);
nd_scalar!(
    /// `k / a`.
    rdiv_scalar, vm::vd_rdiv
);

/// `a - k` (convenience over [`add_scalar`]).
pub fn sub_scalar(a: &NdArray, k: f64) -> NdArray {
    add_scalar(a, -k)
}

/// `a / k` (convenience over [`mul_scalar`]).
pub fn div_scalar(a: &NdArray, k: f64) -> NdArray {
    mul_scalar(a, 1.0 / k)
}

/// Elementwise comparison `a < b`, producing a 0.0/1.0 mask.
///
/// # Panics
///
/// Panics if shapes differ.
pub fn lt(a: &NdArray, b: &NdArray) -> NdArray {
    assert_eq!(a.shape(), b.shape(), "lt: shape mismatch");
    let out = a
        .as_slice()
        .iter()
        .zip(b.as_slice())
        .map(|(x, y)| if x < y { 1.0 } else { 0.0 })
        .collect();
    NdArray::from_shape_vec(a.shape(), out)
}

/// Elementwise select: `mask ? x : y` with a 0.0/1.0 mask.
///
/// # Panics
///
/// Panics if shapes differ.
pub fn where_mask(mask: &NdArray, x: &NdArray, y: &NdArray) -> NdArray {
    assert_eq!(mask.shape(), x.shape(), "where: shape mismatch");
    assert_eq!(mask.shape(), y.shape(), "where: shape mismatch");
    let out = mask
        .as_slice()
        .iter()
        .zip(x.as_slice().iter().zip(y.as_slice()))
        .map(|(m, (a, b))| if *m != 0.0 { *a } else { *b })
        .collect();
    NdArray::from_shape_vec(mask.shape(), out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn m23() -> NdArray {
        NdArray::from_shape_vec(&[2, 3], vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0])
    }

    #[test]
    fn same_shape_ops() {
        let a = m23();
        let b = NdArray::full(&[2, 3], 2.0);
        assert_eq!(add(&a, &b).as_slice(), &[3.0, 4.0, 5.0, 6.0, 7.0, 8.0]);
        assert_eq!(mul(&a, &b).at(1, 2), 12.0);
        assert_eq!(sub(&a, &b).get(0), -1.0);
        assert_eq!(div(&a, &b).get(1), 1.0);
    }

    #[test]
    fn row_vector_broadcast() {
        let a = m23();
        let r = NdArray::from_vec(vec![10.0, 20.0, 30.0]);
        let s = add(&a, &r);
        assert_eq!(s.as_slice(), &[11.0, 22.0, 33.0, 14.0, 25.0, 36.0]);
        // Symmetric.
        let s2 = add(&r, &a);
        assert_eq!(s, s2);
    }

    #[test]
    fn column_vector_broadcast() {
        let a = m23();
        let c = NdArray::from_shape_vec(&[2, 1], vec![100.0, 200.0]);
        let s = add(&a, &c);
        assert_eq!(s.as_slice(), &[101.0, 102.0, 103.0, 204.0, 205.0, 206.0]);
    }

    #[test]
    #[should_panic(expected = "cannot broadcast")]
    fn bad_broadcast_panics() {
        let a = m23();
        let b = NdArray::zeros(&[3, 2]);
        add(&a, &b);
    }

    #[test]
    fn unary_and_scalar_ops() {
        let a = NdArray::from_vec(vec![1.0, 4.0, 9.0]);
        assert_eq!(sqrt(&a).as_slice(), &[1.0, 2.0, 3.0]);
        assert_eq!(mul_scalar(&a, 2.0).as_slice(), &[2.0, 8.0, 18.0]);
        assert_eq!(sub_scalar(&a, 1.0).as_slice(), &[0.0, 3.0, 8.0]);
        assert_eq!(rsub_scalar(&a, 10.0).as_slice(), &[9.0, 6.0, 1.0]);
        assert_eq!(div_scalar(&a, 2.0).as_slice(), &[0.5, 2.0, 4.5]);
        assert!((exp(&a).get(0) - 1.0f64.exp()).abs() < 1e-12);
        assert_eq!(square(&a).as_slice(), &[1.0, 16.0, 81.0]);
        assert_eq!(neg(&a).get(2), -9.0);
        assert_eq!(recip(&a).get(1), 0.25);
    }

    #[test]
    fn masks_and_select() {
        let a = NdArray::from_vec(vec![1.0, 5.0, 3.0]);
        let b = NdArray::from_vec(vec![2.0, 2.0, 3.0]);
        let m = lt(&a, &b);
        assert_eq!(m.as_slice(), &[1.0, 0.0, 0.0]);
        let sel = where_mask(&m, &a, &b);
        assert_eq!(sel.as_slice(), &[1.0, 2.0, 3.0]);
    }
}
