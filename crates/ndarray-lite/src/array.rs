//! The `NdArray` container: an immutable, cheaply-cloneable, row-major
//! dense array of `f64` (the reproduction's `numpy.ndarray`).
//!
//! Values are functional: operations return new arrays; views share the
//! backing allocation. This mirrors how the paper's Python integration
//! treats NumPy values (split functions return views, operators return
//! fresh arrays, mergers concatenate).

use std::cell::UnsafeCell;
use std::sync::Arc;

/// Interior-mutable backing storage.
///
/// Arrays are immutable through every safe API; the cells exist solely
/// for [`NdArray::write_rows_at`], the runtime's placement-merge hook,
/// whose contract requires disjoint row ranges from different threads
/// and no readers until construction completes.
struct Buf(Box<[UnsafeCell<f64>]>);

// SAFETY: a plain array of `Copy` floats. All mutation goes through
// `NdArray::write_rows_at`, whose contract requires disjoint row ranges
// from different threads and no concurrent readers; shared reads through
// the safe APIs only happen once construction is complete.
unsafe impl Sync for Buf {}
// SAFETY: as above.
unsafe impl Send for Buf {}

impl Buf {
    fn from_vec(v: Vec<f64>) -> Buf {
        Buf(v.into_iter().map(UnsafeCell::new).collect())
    }

    fn len(&self) -> usize {
        self.0.len()
    }

    fn as_ptr(&self) -> *const f64 {
        self.0.as_ptr() as *const f64
    }
}

/// A dense, row-major, immutable `f64` array of rank 1 or 2.
///
/// Cloning is O(1) (shared storage). Contiguity is an invariant: every
/// `NdArray` views a contiguous range `[offset, offset + len)` of its
/// backing buffer, which is what allows zero-copy row splits.
#[derive(Clone)]
pub struct NdArray {
    data: Arc<Buf>,
    offset: usize,
    shape: Vec<usize>,
}

impl NdArray {
    /// Build a rank-1 array from a vector.
    pub fn from_vec(v: Vec<f64>) -> Self {
        let shape = vec![v.len()];
        NdArray {
            data: Arc::new(Buf::from_vec(v)),
            offset: 0,
            shape,
        }
    }

    /// Build an array of the given shape from a flat row-major vector.
    ///
    /// # Panics
    ///
    /// Panics if `v.len()` does not equal the shape's element count, or
    /// if the rank is not 1 or 2.
    pub fn from_shape_vec(shape: &[usize], v: Vec<f64>) -> Self {
        assert!(
            shape.len() == 1 || shape.len() == 2,
            "NdArray supports rank 1 and 2, got rank {}",
            shape.len()
        );
        let n: usize = shape.iter().product();
        assert_eq!(
            v.len(),
            n,
            "shape {shape:?} needs {n} elements, got {}",
            v.len()
        );
        NdArray {
            data: Arc::new(Buf::from_vec(v)),
            offset: 0,
            shape: shape.to_vec(),
        }
    }

    /// All-zeros array.
    pub fn zeros(shape: &[usize]) -> Self {
        Self::full(shape, 0.0)
    }

    /// All-ones array.
    pub fn ones(shape: &[usize]) -> Self {
        Self::full(shape, 1.0)
    }

    /// Constant-filled array.
    pub fn full(shape: &[usize], v: f64) -> Self {
        let n: usize = shape.iter().product();
        Self::from_shape_vec(shape, vec![v; n])
    }

    /// `n` evenly spaced values over `[start, stop]` (like
    /// `numpy.linspace`).
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn linspace(start: f64, stop: f64, n: usize) -> Self {
        assert!(n > 0, "linspace needs at least one point");
        if n == 1 {
            return Self::from_vec(vec![start]);
        }
        let step = (stop - start) / (n - 1) as f64;
        Self::from_vec((0..n).map(|i| start + step * i as f64).collect())
    }

    /// Build from a function of the flat index.
    pub fn from_fn(shape: &[usize], f: impl FnMut(usize) -> f64) -> Self {
        let n: usize = shape.iter().product();
        Self::from_shape_vec(shape, (0..n).map(f).collect())
    }

    /// The array's shape.
    pub fn shape(&self) -> &[usize] {
        &self.shape
    }

    /// Rank (1 or 2).
    pub fn ndim(&self) -> usize {
        self.shape.len()
    }

    /// Total number of elements.
    pub fn len(&self) -> usize {
        self.shape.iter().product()
    }

    /// Whether the array has zero elements.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Number of rows (rank-2) or elements (rank-1).
    pub fn rows(&self) -> usize {
        self.shape[0]
    }

    /// Number of columns (rank-2 only).
    ///
    /// # Panics
    ///
    /// Panics on rank-1 arrays.
    pub fn cols(&self) -> usize {
        assert_eq!(self.ndim(), 2, "cols() requires a rank-2 array");
        self.shape[1]
    }

    /// The contiguous elements in row-major order.
    pub fn as_slice(&self) -> &[f64] {
        debug_assert!(self.offset + self.len() <= self.data.len());
        // SAFETY: in-bounds per the invariant checked above; mutation
        // only happens through `write_rows_at`, whose contract forbids
        // concurrent readers (see `Buf`).
        unsafe { std::slice::from_raw_parts(self.data.as_ptr().add(self.offset), self.len()) }
    }

    /// Allocate an **uninitialized** array of `shape`, its pages
    /// pre-touched so later parallel [`NdArray::write_rows_at`] calls
    /// are pure memory copies — the placement-merge allocation hook.
    ///
    /// # Safety
    ///
    /// The caller must write every element (via
    /// [`NdArray::write_rows_at`]) before any read, or truncate the
    /// result to the written row prefix with
    /// [`NdArray::view_rows`]. Reading unwritten elements is undefined
    /// behavior.
    #[allow(clippy::uninit_vec)] // the uninit window is this function's documented contract
    pub unsafe fn alloc_rows_uninit(shape: &[usize]) -> Self {
        assert!(
            shape.len() == 1 || shape.len() == 2,
            "NdArray supports rank 1 and 2, got rank {}",
            shape.len()
        );
        let n: usize = shape.iter().product();
        let mut v: Vec<UnsafeCell<f64>> = Vec::with_capacity(n);
        // SAFETY: f64 cells have no validity invariant the subsequent
        // writes could violate; the caller promises every element is
        // written (or truncated away) before it is read.
        unsafe { v.set_len(n) };
        // Pre-touch one element per 4 KiB page (plus the last) so the
        // first-touch faults happen here, uncontended, instead of
        // inside the parallel write phase.
        const STRIDE: usize = 4096 / std::mem::size_of::<f64>();
        let mut i = 0;
        while i < n {
            // SAFETY: `i < n == v.len()` and nothing else can hold a
            // reference into `v` yet — it is a local this function is
            // still building.
            unsafe { *v[i].get() = 0.0 };
            i += STRIDE;
        }
        if n > 0 {
            // SAFETY: as above, `n - 1` is in bounds and `v` is private.
            unsafe { *v[n - 1].get() = 0.0 };
        }
        NdArray {
            data: Arc::new(Buf(v.into_boxed_slice())),
            offset: 0,
            shape: shape.to_vec(),
        }
    }

    /// Copy `src`'s rows into this array starting at row `row0` — the
    /// placement-merge write hook.
    ///
    /// # Panics
    ///
    /// Panics if the trailing dimensions differ or the row range is out
    /// of bounds.
    ///
    /// # Safety
    ///
    /// Concurrent calls must cover disjoint row ranges, no other code
    /// may read the written range while a call is in flight, and `self`
    /// must view its full backing buffer (be an allocation root, not a
    /// row view).
    pub unsafe fn write_rows_at(&self, row0: usize, src: &NdArray) {
        assert_eq!(self.ndim(), src.ndim(), "write_rows_at: rank mismatch");
        assert_eq!(
            &self.shape[1..],
            &src.shape[1..],
            "write_rows_at: trailing shape mismatch"
        );
        assert!(
            row0 + src.shape[0] <= self.shape[0],
            "write_rows_at: row range out of bounds"
        );
        let row_len: usize = self.shape.iter().skip(1).product();
        let start = self.offset + row0 * row_len;
        let n = src.len();
        debug_assert!(start + n <= self.data.len());
        // SAFETY: in-bounds per the asserts; disjointness and
        // no-concurrent-readers per this function's contract.
        let dst = unsafe {
            std::slice::from_raw_parts_mut(self.data.0.as_ptr().add(start) as *mut f64, n)
        };
        dst.copy_from_slice(src.as_slice());
    }

    /// Copy out as a flat vector.
    pub fn to_vec(&self) -> Vec<f64> {
        self.as_slice().to_vec()
    }

    /// Element at a flat index.
    pub fn get(&self, i: usize) -> f64 {
        self.as_slice()[i]
    }

    /// Element at `(row, col)` of a rank-2 array.
    pub fn at(&self, row: usize, col: usize) -> f64 {
        assert_eq!(self.ndim(), 2, "at() requires a rank-2 array");
        self.as_slice()[row * self.shape[1] + col]
    }

    /// Zero-copy view of rows `[start, end)` (rank-2), or elements
    /// `[start, end)` (rank-1).
    ///
    /// # Panics
    ///
    /// Panics if the range is out of bounds.
    pub fn view_rows(&self, start: usize, end: usize) -> NdArray {
        assert!(
            start <= end && end <= self.shape[0],
            "row range out of bounds"
        );
        let row_len: usize = self.shape.iter().skip(1).product();
        let mut shape = self.shape.clone();
        shape[0] = end - start;
        NdArray {
            data: Arc::clone(&self.data),
            offset: self.offset + start * row_len,
            shape,
        }
    }

    /// One row of a rank-2 array as a rank-1 view.
    pub fn row(&self, i: usize) -> NdArray {
        assert_eq!(self.ndim(), 2, "row() requires a rank-2 array");
        let v = self.view_rows(i, i + 1);
        NdArray {
            data: v.data,
            offset: v.offset,
            shape: vec![self.shape[1]],
        }
    }

    /// Reinterpret with a new shape (same element count; zero-copy).
    ///
    /// # Panics
    ///
    /// Panics if the element counts differ.
    pub fn reshape(&self, shape: &[usize]) -> NdArray {
        let n: usize = shape.iter().product();
        assert_eq!(n, self.len(), "reshape from {:?} to {shape:?}", self.shape);
        assert!(shape.len() == 1 || shape.len() == 2);
        NdArray {
            data: Arc::clone(&self.data),
            offset: self.offset,
            shape: shape.to_vec(),
        }
    }

    /// Whether two arrays share backing storage (views of one buffer).
    pub fn shares_storage(&self, other: &NdArray) -> bool {
        Arc::ptr_eq(&self.data, &other.data)
    }

    /// Address of the backing allocation (for dependency tracking by
    /// annotators; the library itself does not use it).
    pub fn storage_addr(&self) -> usize {
        self.data.as_ptr() as usize
    }
}

impl std::fmt::Debug for NdArray {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "NdArray(shape={:?}", self.shape)?;
        if self.len() <= 8 {
            write!(f, ", data={:?}", self.as_slice())?;
        }
        write!(f, ")")
    }
}

impl PartialEq for NdArray {
    fn eq(&self, other: &Self) -> bool {
        self.shape == other.shape && self.as_slice() == other.as_slice()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_shape() {
        let a = NdArray::from_shape_vec(&[2, 3], vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        assert_eq!(a.shape(), &[2, 3]);
        assert_eq!(a.rows(), 2);
        assert_eq!(a.cols(), 3);
        assert_eq!(a.len(), 6);
        assert_eq!(a.at(1, 2), 6.0);
        assert_eq!(a.get(3), 4.0);
    }

    #[test]
    fn views_share_storage() {
        let a = NdArray::from_shape_vec(&[4, 2], (0..8).map(|i| i as f64).collect());
        let v = a.view_rows(1, 3);
        assert_eq!(v.shape(), &[2, 2]);
        assert_eq!(v.as_slice(), &[2.0, 3.0, 4.0, 5.0]);
        assert!(v.shares_storage(&a));
        let r = a.row(3);
        assert_eq!(r.shape(), &[2]);
        assert_eq!(r.as_slice(), &[6.0, 7.0]);
    }

    #[test]
    fn reshape_is_zero_copy() {
        let a = NdArray::linspace(0.0, 5.0, 6);
        let m = a.reshape(&[2, 3]);
        assert!(m.shares_storage(&a));
        assert_eq!(m.at(1, 0), 3.0);
    }

    #[test]
    fn linspace_endpoints() {
        let a = NdArray::linspace(1.0, 3.0, 5);
        assert_eq!(a.as_slice(), &[1.0, 1.5, 2.0, 2.5, 3.0]);
        assert_eq!(NdArray::linspace(7.0, 9.0, 1).as_slice(), &[7.0]);
    }

    #[test]
    #[should_panic(expected = "row range out of bounds")]
    fn view_bounds_checked() {
        NdArray::zeros(&[3, 3]).view_rows(2, 5);
    }

    #[test]
    #[should_panic(expected = "needs 6 elements")]
    fn shape_mismatch_panics() {
        NdArray::from_shape_vec(&[2, 3], vec![0.0; 5]);
    }
}
