//! # ndarray-lite — a NumPy-style dense array library
//!
//! The reproduction's stand-in for NumPy (§7): an immutable, row-major,
//! rank-1/2 `f64` array with elementwise operators (backed by the
//! `vectormath` kernels, like NumPy built on MKL), axis reductions, and
//! structural operators.
//!
//! Like the real library, every operator makes one full pass over its
//! operands and returns a fresh array — which is exactly why chains of
//! NumPy calls are memory-bound and why the paper's split annotations
//! help. The library knows nothing about Mozart; annotations live in the
//! separate `sa-ndarray` crate.

#![warn(missing_docs)]
#![warn(clippy::undocumented_unsafe_blocks)]

pub mod array;
pub mod elementwise;
pub mod reduce;
pub mod structure;

pub use array::NdArray;
pub use elementwise::*;
pub use reduce::{dot, max, max_axis, mean, mean_axis, min, min_axis, sum, sum_axis};
pub use structure::{concat, roll, tile_rows, transpose};
