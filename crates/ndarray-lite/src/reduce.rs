//! Reductions over [`NdArray`]: full reductions and axis reductions.
//!
//! Axis reductions are the operators the paper calls out as stage
//! boundaries in Shallow Water ("performs several row-wise matrix
//! operations and then aggregates along columns"): a row-split matrix
//! can still be reduced along either axis because the partial results
//! merge associatively (Ex. 5 of Listing 4).

use crate::array::NdArray;

/// Sum of all elements.
pub fn sum(a: &NdArray) -> f64 {
    a.as_slice().iter().sum()
}

/// Mean of all elements (NaN for empty arrays).
pub fn mean(a: &NdArray) -> f64 {
    sum(a) / a.len() as f64
}

/// Minimum element (`inf` for empty arrays).
pub fn min(a: &NdArray) -> f64 {
    a.as_slice().iter().copied().fold(f64::INFINITY, f64::min)
}

/// Maximum element (`-inf` for empty arrays).
pub fn max(a: &NdArray) -> f64 {
    a.as_slice()
        .iter()
        .copied()
        .fold(f64::NEG_INFINITY, f64::max)
}

/// Reduce a rank-2 array along `axis`:
/// `axis = 0` collapses rows (result has one value per column);
/// `axis = 1` collapses columns (result has one value per row).
///
/// # Panics
///
/// Panics on rank-1 input or `axis > 1`.
pub fn sum_axis(a: &NdArray, axis: usize) -> NdArray {
    fold_axis(a, axis, 0.0, |acc, x| acc + x)
}

/// Mean along an axis (see [`sum_axis`]).
pub fn mean_axis(a: &NdArray, axis: usize) -> NdArray {
    let n = if axis == 0 { a.rows() } else { a.cols() };
    let s = sum_axis(a, axis);
    crate::elementwise::div_scalar(&s, n as f64)
}

/// Minimum along an axis.
pub fn min_axis(a: &NdArray, axis: usize) -> NdArray {
    fold_axis(a, axis, f64::INFINITY, f64::min)
}

/// Maximum along an axis.
pub fn max_axis(a: &NdArray, axis: usize) -> NdArray {
    fold_axis(a, axis, f64::NEG_INFINITY, f64::max)
}

fn fold_axis(a: &NdArray, axis: usize, init: f64, f: fn(f64, f64) -> f64) -> NdArray {
    assert_eq!(a.ndim(), 2, "axis reductions require rank-2 arrays");
    assert!(axis <= 1, "axis must be 0 or 1, got {axis}");
    let (rows, cols) = (a.rows(), a.cols());
    let data = a.as_slice();
    if axis == 0 {
        let mut out = vec![init; cols];
        for r in 0..rows {
            let row = &data[r * cols..(r + 1) * cols];
            for c in 0..cols {
                out[c] = f(out[c], row[c]);
            }
        }
        NdArray::from_vec(out)
    } else {
        let mut out = Vec::with_capacity(rows);
        for r in 0..rows {
            let row = &data[r * cols..(r + 1) * cols];
            out.push(row.iter().copied().fold(init, f));
        }
        NdArray::from_vec(out)
    }
}

/// Dot product of two rank-1 arrays.
///
/// # Panics
///
/// Panics if lengths differ or inputs are not rank-1.
pub fn dot(a: &NdArray, b: &NdArray) -> f64 {
    assert_eq!(a.ndim(), 1, "dot requires rank-1 arrays");
    assert_eq!(b.ndim(), 1, "dot requires rank-1 arrays");
    vectormath::ddot(a.as_slice(), b.as_slice())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn m23() -> NdArray {
        NdArray::from_shape_vec(&[2, 3], vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0])
    }

    #[test]
    fn full_reductions() {
        let a = m23();
        assert_eq!(sum(&a), 21.0);
        assert_eq!(mean(&a), 3.5);
        assert_eq!(min(&a), 1.0);
        assert_eq!(max(&a), 6.0);
    }

    #[test]
    fn axis_reductions() {
        let a = m23();
        assert_eq!(sum_axis(&a, 0).as_slice(), &[5.0, 7.0, 9.0]);
        assert_eq!(sum_axis(&a, 1).as_slice(), &[6.0, 15.0]);
        assert_eq!(mean_axis(&a, 0).as_slice(), &[2.5, 3.5, 4.5]);
        assert_eq!(mean_axis(&a, 1).as_slice(), &[2.0, 5.0]);
        assert_eq!(min_axis(&a, 1).as_slice(), &[1.0, 4.0]);
        assert_eq!(max_axis(&a, 0).as_slice(), &[4.0, 5.0, 6.0]);
    }

    #[test]
    fn axis_reduction_is_associative_over_row_chunks() {
        // The property Ex. 5's ReduceSplit merge relies on.
        let a = NdArray::from_shape_vec(&[4, 2], (0..8).map(|i| i as f64).collect());
        let whole = sum_axis(&a, 0);
        let top = sum_axis(&a.view_rows(0, 2), 0);
        let bot = sum_axis(&a.view_rows(2, 4), 0);
        let merged = crate::elementwise::add(&top, &bot);
        assert_eq!(whole, merged);
    }

    #[test]
    fn dot_product() {
        let a = NdArray::from_vec(vec![1.0, 2.0, 3.0]);
        let b = NdArray::from_vec(vec![4.0, 5.0, 6.0]);
        assert_eq!(dot(&a, &b), 32.0);
    }

    #[test]
    #[should_panic(expected = "axis reductions require rank-2")]
    fn axis_reduction_requires_rank2() {
        sum_axis(&NdArray::from_vec(vec![1.0]), 0);
    }
}
