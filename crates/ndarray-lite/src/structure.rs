//! Structural operators: concatenation, transpose, roll, tiling.
//!
//! `roll` along axis 0 moves data *between* rows — the kind of operator
//! a row-based split type cannot support (it becomes a stage boundary
//! or an unannotated call under Mozart). `roll` along axis 1 permutes
//! *within* each row and splits fine. The Shallow Water workload uses
//! both, which is why the paper reports it pipelines only partially.

use crate::array::NdArray;

/// Concatenate along axis 0 (rows for rank-2; elements for rank-1).
///
/// # Panics
///
/// Panics if the arrays' trailing dimensions differ or `parts` is empty.
pub fn concat(parts: &[NdArray]) -> NdArray {
    assert!(!parts.is_empty(), "concat of zero arrays");
    let first = &parts[0];
    let trailing: &[usize] = &first.shape()[1..];
    let mut rows = 0;
    for p in parts {
        assert_eq!(p.ndim(), first.ndim(), "concat: rank mismatch");
        assert_eq!(&p.shape()[1..], trailing, "concat: trailing shape mismatch");
        rows += p.shape()[0];
    }
    let mut data = Vec::with_capacity(rows * trailing.iter().product::<usize>().max(1));
    for p in parts {
        data.extend_from_slice(p.as_slice());
    }
    let mut shape = first.shape().to_vec();
    shape[0] = rows;
    NdArray::from_shape_vec(&shape, data)
}

/// Transpose a rank-2 array (copies).
///
/// # Panics
///
/// Panics on rank-1 input.
pub fn transpose(a: &NdArray) -> NdArray {
    assert_eq!(a.ndim(), 2, "transpose requires rank-2");
    let (rows, cols) = (a.rows(), a.cols());
    let src = a.as_slice();
    let mut out = vec![0.0; rows * cols];
    for r in 0..rows {
        for c in 0..cols {
            out[c * rows + r] = src[r * cols + c];
        }
    }
    NdArray::from_shape_vec(&[cols, rows], out)
}

/// Circularly shift a rank-2 array by `k` along `axis` (like
/// `numpy.roll`). Positive `k` shifts toward higher indices.
///
/// # Panics
///
/// Panics on rank-1 input or `axis > 1`.
pub fn roll(a: &NdArray, k: i64, axis: usize) -> NdArray {
    assert_eq!(a.ndim(), 2, "roll requires rank-2");
    assert!(axis <= 1, "axis must be 0 or 1");
    let (rows, cols) = (a.rows(), a.cols());
    let src = a.as_slice();
    let mut out = vec![0.0; rows * cols];
    if axis == 0 {
        let shift = k.rem_euclid(rows as i64) as usize;
        for r in 0..rows {
            let dst_r = (r + shift) % rows;
            out[dst_r * cols..(dst_r + 1) * cols].copy_from_slice(&src[r * cols..(r + 1) * cols]);
        }
    } else {
        let shift = k.rem_euclid(cols as i64) as usize;
        for r in 0..rows {
            let row = &src[r * cols..(r + 1) * cols];
            let dst = &mut out[r * cols..(r + 1) * cols];
            for c in 0..cols {
                dst[(c + shift) % cols] = row[c];
            }
        }
    }
    NdArray::from_shape_vec(&[rows, cols], out)
}

/// Repeat a rank-1 array as the rows of a new rank-2 array (like
/// `numpy.tile(v, (rows, 1))`).
///
/// # Panics
///
/// Panics on rank-2 input.
pub fn tile_rows(v: &NdArray, rows: usize) -> NdArray {
    assert_eq!(v.ndim(), 1, "tile_rows requires rank-1");
    let mut data = Vec::with_capacity(rows * v.len());
    for _ in 0..rows {
        data.extend_from_slice(v.as_slice());
    }
    NdArray::from_shape_vec(&[rows, v.len()], data)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn m23() -> NdArray {
        NdArray::from_shape_vec(&[2, 3], vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0])
    }

    #[test]
    fn concat_restores_row_splits() {
        let a = NdArray::from_shape_vec(&[4, 2], (0..8).map(|i| i as f64).collect());
        let parts = vec![a.view_rows(0, 1), a.view_rows(1, 3), a.view_rows(3, 4)];
        assert_eq!(concat(&parts), a);
    }

    #[test]
    fn concat_rank1() {
        let a = NdArray::from_vec(vec![1.0, 2.0]);
        let b = NdArray::from_vec(vec![3.0]);
        assert_eq!(concat(&[a, b]).as_slice(), &[1.0, 2.0, 3.0]);
    }

    #[test]
    fn transpose_roundtrip() {
        let a = m23();
        let t = transpose(&a);
        assert_eq!(t.shape(), &[3, 2]);
        assert_eq!(t.at(2, 1), 6.0);
        assert_eq!(transpose(&t), a);
    }

    #[test]
    fn roll_axis0_moves_rows() {
        let a = m23();
        let r = roll(&a, 1, 0);
        assert_eq!(r.as_slice(), &[4.0, 5.0, 6.0, 1.0, 2.0, 3.0]);
        let r = roll(&a, -1, 0);
        assert_eq!(r.as_slice(), &[4.0, 5.0, 6.0, 1.0, 2.0, 3.0]);
        assert_eq!(roll(&a, 2, 0), a);
    }

    #[test]
    fn roll_axis1_permutes_within_rows() {
        let a = m23();
        let r = roll(&a, 1, 1);
        assert_eq!(r.as_slice(), &[3.0, 1.0, 2.0, 6.0, 4.0, 5.0]);
        // Rolling rows independently composes with row splits — the
        // property that makes axis-1 roll annotatable.
        let top = roll(&a.view_rows(0, 1), 1, 1);
        let bot = roll(&a.view_rows(1, 2), 1, 1);
        assert_eq!(concat(&[top, bot]), r);
    }

    #[test]
    fn tile_rows_repeats() {
        let v = NdArray::from_vec(vec![1.0, 2.0]);
        let t = tile_rows(&v, 3);
        assert_eq!(t.shape(), &[3, 2]);
        assert_eq!(t.as_slice(), &[1.0, 2.0, 1.0, 2.0, 1.0, 2.0]);
    }
}
