//! # workloads — the paper's 15-benchmark evaluation suite (Table 2)
//!
//! Every workload is implemented in up to three modes:
//!
//! * **base** — the unmodified substrate library, called eagerly
//!   (single-threaded for the NumPy/Pandas/spaCy libraries; internally
//!   parallel for MKL and ImageMagick, matching the paper's baselines);
//! * **mozart** — the same operator sequence through the annotated
//!   wrappers, captured lazily and executed by the Mozart runtime
//!   (split + pipelined + parallel);
//! * **fused** — the hand-fused single-pass parallel implementation
//!   standing in for the IR compilers (Weld/Bohrium/Numba).
//!
//! All modes of a workload compute the same result (verified by the
//! test suite), so benchmark comparisons measure execution strategy,
//! not algorithm differences.
//!
//! | Workload | Libraries | Modules |
//! |---|---|---|
//! | Black Scholes | NumPy, MKL | [`black_scholes`] |
//! | Haversine | NumPy, MKL | [`haversine`] |
//! | nBody | NumPy, MKL | [`nbody`] |
//! | Shallow Water | NumPy, MKL | [`shallow_water`] |
//! | Data Cleaning | Pandas | [`data_cleaning`] |
//! | Crime Index | Pandas, NumPy | [`crime_index`] |
//! | Birth Analysis | Pandas, NumPy | [`birth_analysis`] |
//! | MovieLens | Pandas, NumPy | [`movielens`] |
//! | Speech Tag | spaCy | [`speech_tag`] |
//! | Nashville | ImageMagick | [`images`] |
//! | Gotham | ImageMagick | [`images`] |

#![warn(missing_docs)]

pub mod birth_analysis;
pub mod black_scholes;
pub mod crime_index;
pub mod data;
pub mod data_cleaning;
pub mod haversine;
pub mod images;
pub mod movielens;
pub mod nbody;
pub mod shallow_water;
pub mod speech_tag;

use mozart_core::{Config, MozartContext};

/// Build a Mozart context configured for `workers` threads, with all
/// integrations' default split types registered.
pub fn mozart_context(workers: usize) -> MozartContext {
    register_all_defaults();
    MozartContext::new(Config::with_workers(workers))
}

/// Build a Mozart context from an explicit configuration, with all
/// integrations' default split types registered — the ablation entry
/// point benchmarks use (e.g. `phase_breakdown` toggling
/// `Config::placement_merge`).
pub fn mozart_context_with(config: Config) -> MozartContext {
    register_all_defaults();
    MozartContext::new(config)
}

/// Register the default split types of every integration. Idempotent.
pub fn register_all_defaults() {
    sa_vectormath::register_defaults();
    sa_ndarray::register_defaults();
    sa_dataframe::register_defaults();
    sa_image::register_defaults();
    sa_text::register_defaults();
}

/// Relative-difference check used by the cross-mode verification tests.
pub fn close(a: f64, b: f64, tol: f64) -> bool {
    if a.is_nan() && b.is_nan() {
        return true;
    }
    (a - b).abs() <= tol * a.abs().max(b.abs()).max(1.0)
}
