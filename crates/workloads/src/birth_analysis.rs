//! Birth Analysis (Table 2; Figure 4g): fraction of births whose names
//! start with "Lesl", grouped by sex and year — bottlenecked on groupBy
//! aggregations (no pipelined operators; Mozart parallelizes the
//! grouped aggregation via `GroupSplit`, §8.2).

use std::collections::HashMap;

use dataframe::{Agg, AggSpec, Column, DataFrame};
use mozart_core::{MozartContext, Result};

/// The studied name prefix.
pub const PREFIX: &str = "Lesl";

/// Generate the baby-names frame.
pub fn generate(n: usize, seed: u64) -> DataFrame {
    let (names, sexes, years, births) = crate::data::births_inputs(n, seed);
    DataFrame::from_cols(vec![
        ("name", Column::from_str(names)),
        ("sex", Column::from_str(sexes)),
        ("year", Column::from_i64(years)),
        ("births", Column::from_f64(births)),
    ])
}

/// Result summary: checksum over per-(sex, year) prefix fractions.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Summary {
    /// Number of (sex, year) groups.
    pub groups: usize,
    /// Sum of prefix fractions across groups.
    pub fraction_sum: f64,
}

fn summarize(table: &HashMap<(String, i64), (f64, f64)>) -> Summary {
    let mut fraction_sum = 0.0;
    for (lesl, total) in table.values() {
        if *total > 0.0 {
            fraction_sum += lesl / total;
        }
    }
    Summary {
        groups: table.len(),
        fraction_sum,
    }
}

fn grouped_to_table(totals: &DataFrame, lesl: &DataFrame) -> HashMap<(String, i64), (f64, f64)> {
    let mut table: HashMap<(String, i64), (f64, f64)> = HashMap::new();
    let sexes = totals.col("sex").strs();
    let years = totals.col("year").i64s();
    let sums = totals.col("total").f64s();
    for i in 0..totals.num_rows() {
        table.insert((sexes[i].clone(), years[i]), (0.0, sums[i]));
    }
    let sexes = lesl.col("sex").strs();
    let years = lesl.col("year").i64s();
    let sums = lesl.col("total").f64s();
    for i in 0..lesl.num_rows() {
        if let Some(e) = table.get_mut(&(sexes[i].clone(), years[i])) {
            e.0 = sums[i];
        }
    }
    table
}

/// Base Pandas: eager filter + two groupBys, single-threaded.
pub fn base(df: &DataFrame) -> Summary {
    use dataframe::ops;
    let specs = [AggSpec::new("births", Agg::Sum, "total")];
    let totals = dataframe::groupby_agg(df, &["sex", "year"], &specs);
    let mask = ops::str_startswith(df.col("name"), PREFIX);
    let lesl_df = df.filter(&mask);
    let lesl = dataframe::groupby_agg(&lesl_df, &["sex", "year"], &specs);
    summarize(&grouped_to_table(&totals, &lesl))
}

/// Mozart: the filter pipelines into the grouped aggregation; both
/// groupBys parallelize via partial aggregation + re-aggregation.
pub fn mozart(df: &DataFrame, ctx: &MozartContext) -> Result<Summary> {
    use sa_dataframe as sa;
    let specs = vec![AggSpec::new("births", Agg::Sum, "total")];
    let totals_fut = sa::groupby_agg(ctx, df, &["sex", "year"], &specs)?;
    let name = sa::col(ctx, df, "name")?;
    let mask = sa::str_startswith(ctx, &name, PREFIX)?;
    let lesl_df = sa::filter(ctx, df, &mask)?;
    let lesl_fut = sa::groupby_agg(ctx, &lesl_df, &["sex", "year"], &specs)?;
    let totals = sa::get_df(&totals_fut)?;
    let lesl = sa::get_df(&lesl_fut)?;
    Ok(summarize(&grouped_to_table(&totals, &lesl)))
}

/// Fused (compiler stand-in): one hash-aggregating pass.
pub fn fused(df: &DataFrame) -> Summary {
    let table = fusedbaseline::pandas::birth_analysis(
        df.col("name").strs(),
        df.col("sex").strs(),
        df.col("year").i64s(),
        df.col("births").f64s(),
        PREFIX,
    );
    summarize(&table)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::close;

    #[test]
    fn all_modes_agree() {
        let df = generate(6000, 33);
        let a = base(&df);
        let f = fused(&df);
        let ctx = crate::mozart_context(2);
        let m = mozart(&df, &ctx).unwrap();
        assert_eq!(a.groups, f.groups);
        assert_eq!(a.groups, m.groups);
        assert!(close(a.fraction_sum, f.fraction_sum, 1e-9));
        assert!(close(a.fraction_sum, m.fraction_sum, 1e-9));
        assert!(a.fraction_sum > 0.0);
    }
}
