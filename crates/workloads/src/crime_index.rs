//! Crime Index (Table 2; Figure 4f): filter big cities and compute an
//! average "crime index" from population and robbery statistics.

use dataframe::{Column, DataFrame};
use mozart_core::{MozartContext, Result};

/// Population threshold for "big" cities.
pub const BIG_CITY: f64 = 500_000.0;

/// Generate the per-city statistics frame.
pub fn generate(n: usize, seed: u64) -> DataFrame {
    let (total, adult, robberies) = crate::data::crime_inputs(n, seed);
    DataFrame::from_cols(vec![
        ("total_population", Column::from_f64(total)),
        ("adult_population", Column::from_f64(adult)),
        ("num_robberies", Column::from_f64(robberies)),
    ])
}

/// Result summary: the total crime index over big cities.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Summary {
    /// Sum of per-city indices.
    pub index_sum: f64,
}

/// Base Pandas+NumPy: eager column arithmetic, single-threaded.
pub fn base(df: &DataFrame) -> Summary {
    use dataframe::ops;
    let mask = ops::gt_scalar(df.col("total_population"), BIG_CITY);
    let big = df.filter(&mask);
    let tp = big.col("total_population");
    let index = ops::sub(
        &ops::div(big.col("adult_population"), tp),
        &ops::mul_scalar(&ops::div(big.col("num_robberies"), tp), 2.0),
    );
    // clamp to [0, 1]
    let clamped = Column::from_f64(
        index
            .f64s()
            .iter()
            .map(|x| x.clamp(0.0, 1.0))
            .collect::<Vec<_>>(),
    );
    Summary {
        index_sum: ops::sum(&clamped),
    }
}

/// Mozart: filter (unknown split type) pipelining into generic Series
/// arithmetic and a final reduction.
pub fn mozart(df: &DataFrame, ctx: &MozartContext) -> Result<Summary> {
    use sa_dataframe as sa;
    let tp_col = sa::col(ctx, df, "total_population")?;
    let mask = sa::gt_scalar(ctx, &tp_col, BIG_CITY)?;
    let big = sa::filter(ctx, df, &mask)?;
    let tp = sa::col(ctx, &big, "total_population")?;
    let adult = sa::col(ctx, &big, "adult_population")?;
    let rob = sa::col(ctx, &big, "num_robberies")?;
    let index = {
        let a = sa::div(ctx, &adult, &tp)?;
        let r = sa::div(ctx, &rob, &tp)?;
        let r2 = sa::mul_scalar(ctx, &r, 2.0)?;
        sa::sub(ctx, &a, &r2)?
    };
    // clamp: max(min(index, 1), 0) via scalar compares + mask assigns.
    let clamped = {
        let hi = sa::gt_scalar(ctx, &index, 1.0)?;
        let c1 = sa::mask_assign(ctx, &index, &hi, 1.0)?;
        let lo = sa::lt_scalar(ctx, &c1, 0.0)?;
        sa::mask_assign(ctx, &c1, &lo, 0.0)?
    };
    let total = sa::sum(ctx, &clamped)?;
    Ok(Summary {
        index_sum: sa::get_scalar(&total)?,
    })
}

/// Mozart, row-preserving variant for the serving layer: score every
/// city (no big-city filter) and return the clamped per-row index
/// column. Each output row depends only on its own input row, so the
/// generic coalescer can evaluate several requests' frames as one
/// row-concatenated frame and slice the scores back per request.
pub fn score_mozart(df: &DataFrame, ctx: &MozartContext) -> Result<Column> {
    use sa_dataframe as sa;
    let tp = sa::col(ctx, df, "total_population")?;
    let adult = sa::col(ctx, df, "adult_population")?;
    let rob = sa::col(ctx, df, "num_robberies")?;
    let index = {
        let a = sa::div(ctx, &adult, &tp)?;
        let r = sa::div(ctx, &rob, &tp)?;
        let r2 = sa::mul_scalar(ctx, &r, 2.0)?;
        sa::sub(ctx, &a, &r2)?
    };
    let clamped = {
        let hi = sa::gt_scalar(ctx, &index, 1.0)?;
        let c1 = sa::mask_assign(ctx, &index, &hi, 1.0)?;
        let lo = sa::lt_scalar(ctx, &c1, 0.0)?;
        sa::mask_assign(ctx, &c1, &lo, 0.0)?
    };
    sa::get_col(&clamped)
}

/// The eager reference for [`score_mozart`], used by tests.
pub fn score_base(df: &DataFrame) -> Column {
    use dataframe::ops;
    let tp = df.col("total_population");
    let index = ops::sub(
        &ops::div(df.col("adult_population"), tp),
        &ops::mul_scalar(&ops::div(df.col("num_robberies"), tp), 2.0),
    );
    Column::from_f64(
        index
            .f64s()
            .iter()
            .map(|x| x.clamp(0.0, 1.0))
            .collect::<Vec<_>>(),
    )
}

/// Fused (compiler stand-in).
pub fn fused(df: &DataFrame, threads: usize) -> Summary {
    Summary {
        index_sum: fusedbaseline::pandas::crime_index(
            df.col("total_population").f64s(),
            df.col("adult_population").f64s(),
            df.col("num_robberies").f64s(),
            threads,
        ),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::close;

    #[test]
    fn row_preserving_score_matches_eager() {
        let df = generate(1500, 23);
        let ctx = crate::mozart_context(2);
        let m = score_mozart(&df, &ctx).unwrap();
        let b = score_base(&df);
        assert_eq!(m.f64s(), b.f64s(), "per-row scores must match exactly");
        assert_eq!(m.len(), df.num_rows(), "row-preserving: one score per city");
    }

    #[test]
    fn all_modes_agree() {
        let df = generate(4000, 17);
        let a = base(&df);
        let f = fused(&df, 2);
        let ctx = crate::mozart_context(2);
        let m = mozart(&df, &ctx).unwrap();
        assert!(
            close(a.index_sum, f.index_sum, 1e-9),
            "{} vs {}",
            a.index_sum,
            f.index_sum
        );
        assert!(
            close(a.index_sum, m.index_sum, 1e-9),
            "{} vs {}",
            a.index_sum,
            m.index_sum
        );
        assert!(a.index_sum > 0.0);
    }
}
