//! Speech Tag (Table 2; Figure 4i): part-of-speech tagging and feature
//! extraction over a text corpus — pure parallelization via the corpus
//! split type (no compiler supported spaCy, so there is no fused
//! comparator; the paper's Figure 4i shows base vs Mozart only).

use mozart_core::{MozartContext, Result};
use textproc::Corpus;

/// Generate an IMDb-like corpus.
pub fn generate(docs: usize, words_per_doc: usize, seed: u64) -> Corpus {
    textproc::synthetic_corpus(docs, words_per_doc, seed)
}

/// Result summary: aggregate tag counts.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Summary {
    /// Total tokens tagged.
    pub tokens: usize,
    /// Total nouns.
    pub nouns: usize,
    /// Total verbs.
    pub verbs: usize,
    /// Total adjectives + adverbs.
    pub modifiers: usize,
}

fn summarize(tagged: &[(textproc::TaggedDoc, textproc::DocFeatures)]) -> Summary {
    let mut s = Summary {
        tokens: 0,
        nouns: 0,
        verbs: 0,
        modifiers: 0,
    };
    for (_, f) in tagged {
        s.tokens += f.tokens;
        s.nouns += f.nouns;
        s.verbs += f.verbs;
        s.modifiers += f.adjectives + f.adverbs;
    }
    s
}

/// Base spaCy: eager single-threaded tagging.
pub fn base(corpus: &Corpus) -> Summary {
    summarize(&textproc::tag_corpus(corpus))
}

/// Mozart: the annotated tagger, split by documents and parallelized.
pub fn mozart(corpus: &Corpus, ctx: &MozartContext) -> Result<Summary> {
    let fut = sa_text::tag_corpus(ctx, corpus)?;
    Ok(summarize(&sa_text::get_tagged(&fut)?))
}

/// Thread-parallel reference (not a compiler; used for verification).
pub fn parallel(corpus: &Corpus, threads: usize) -> Summary {
    summarize(&fusedbaseline::text::tag_parallel(corpus, threads))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_modes_agree() {
        let corpus = generate(60, 40, 13);
        let a = base(&corpus);
        let p = parallel(&corpus, 3);
        let ctx = crate::mozart_context(2);
        let m = mozart(&corpus, &ctx).unwrap();
        assert_eq!(a, p);
        assert_eq!(a, m);
        assert!(a.tokens >= 60 * 40);
        assert!(a.nouns > 0 && a.verbs > 0 && a.modifiers > 0);
    }
}
