//! Data Cleaning (Table 2; Figure 4e): scrub a column of 311-request
//! zip codes — replace broken values with NaN, truncate 9-digit zips,
//! parse to floats, and count what survived (the Pandas cookbook
//! recipe the Weld evaluation uses).

use dataframe::{Column, DataFrame};
use mozart_core::{MozartContext, Result};

/// Broken zip markers scrubbed to null.
pub const BAD_VALUES: [&str; 3] = ["N/A", "NO CLUE", "0"];

/// Generate a single-column frame of raw zip strings.
pub fn generate(n: usize, seed: u64) -> DataFrame {
    DataFrame::from_cols(vec![(
        "zip",
        Column::from_str(crate::data::zip_codes(n, seed)),
    )])
}

/// Result summary.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Summary {
    /// Rows that parsed to a real zip.
    pub valid: f64,
    /// Rows scrubbed to null.
    pub nulls: f64,
    /// Checksum of parsed zip values.
    pub zip_sum: f64,
}

/// Base Pandas: eager column operators, single-threaded.
pub fn base(df: &DataFrame) -> Summary {
    use dataframe::ops;
    let zip = df.col("zip");
    // Mark broken values, truncate 9-digit zips to 5, scrub, parse.
    let bad = ops::str_isin(zip, &BAD_VALUES);
    let fixed = ops::str_slice(zip, 0, 5);
    let chosen = ops::mask_assign_str(&fixed, &bad, "");
    let parsed = chosen.to_f64();
    let nulls = ops::is_null(&parsed);
    let valid = ops::count(&parsed) as f64;
    let null_count = nulls.bools().iter().filter(|b| **b).count() as f64;
    Summary {
        valid,
        nulls: null_count,
        zip_sum: ops::sum(&parsed),
    }
}

/// Mozart Pandas: the same operator chain through `sa-dataframe`,
/// pipelined and parallelized.
pub fn mozart(df: &DataFrame, ctx: &MozartContext) -> Result<Summary> {
    use sa_dataframe as sa;
    let zip = sa::col(ctx, df, "zip")?;
    let bad = {
        let b0 = sa::str_eq(ctx, &zip, BAD_VALUES[0])?;
        let b1 = sa::str_eq(ctx, &zip, BAD_VALUES[1])?;
        let b2 = sa::str_eq(ctx, &zip, BAD_VALUES[2])?;
        let o = sa::or(ctx, &b0, &b1)?;
        sa::or(ctx, &o, &b2)?
    };
    let fixed = sa::str_slice(ctx, &zip, 0, 5)?;
    let chosen = sa::mask_assign_str(ctx, &fixed, &bad, "")?;
    let parsed = sa::to_f64(ctx, &chosen)?;
    let valid = sa::count(ctx, &parsed)?;
    let nulls = {
        let m = sa::is_null(ctx, &parsed)?;
        // Bool -> 0/1 cast, then a NaN-skipping sum = null count.
        let as_f = sa::to_f64(ctx, &m)?;
        sa::sum(ctx, &as_f)?
    };
    let zip_sum = sa::sum(ctx, &parsed)?;
    Ok(Summary {
        valid: sa::get_scalar(&valid)?,
        nulls: sa::get_scalar(&nulls)?,
        zip_sum: sa::get_scalar(&zip_sum)?,
    })
}

/// Fused (compiler stand-in).
pub fn fused(df: &DataFrame, threads: usize) -> Summary {
    let zips = df.col("zip").strs();
    let owned: Vec<String> = zips.to_vec();
    let (valid, nulls, zip_sum) =
        fusedbaseline::pandas::data_cleaning(&owned, &BAD_VALUES, threads);
    Summary {
        valid: valid as f64,
        nulls: nulls as f64,
        zip_sum,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::close;

    #[test]
    fn all_modes_agree() {
        let df = generate(5000, 21);
        let a = base(&df);
        let f = fused(&df, 2);
        let ctx = crate::mozart_context(2);
        let m = mozart(&df, &ctx).unwrap();
        for s in [&f, &m] {
            assert_eq!(a.valid, s.valid);
            assert_eq!(a.nulls, s.nulls);
            assert!(close(a.zip_sum, s.zip_sum, 1e-12));
        }
        assert!(a.valid > 0.0 && a.nulls > 0.0);
    }
}
