//! Shallow Water equations (Table 2; Figures 4d, 4m): explicit
//! finite-difference integration of a disturbed fluid on an n×n
//! periodic grid, formulated with `roll` as in the Bohrium paper.
//!
//! Mozart pipelines the elementwise stretches; the axis-0 rolls move
//! data between rows and are unannotated library calls, so they bound
//! stages — the partial-pipelining behaviour the paper reports.

use fusedbaseline::shallow_water::{Grid, GRAV};
use mozart_core::{MozartContext, Result, SharedVec};
use ndarray_lite::NdArray;

/// Generate the droplet initial condition.
pub fn generate(n: usize) -> Grid {
    Grid::droplet(n)
}

/// Result summary.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Summary {
    /// Total water volume at the end (conserved quantity).
    pub mass: f64,
    /// Sum of squared momenta (wave energy proxy).
    pub momentum2: f64,
}

fn summarize(g: &Grid) -> Summary {
    Summary {
        mass: g.total_mass(),
        momentum2: g.u.iter().map(|x| x * x).sum::<f64>() + g.v.iter().map(|x| x * x).sum::<f64>(),
    }
}

/// Base NumPy: eager roll-based update.
pub fn numpy_base(g0: &Grid, steps: usize, dt: f64) -> Summary {
    use ndarray_lite as nd;
    let n = g0.n;
    let mut h = NdArray::from_shape_vec(&[n, n], g0.h.clone());
    let mut u = NdArray::from_shape_vec(&[n, n], g0.u.clone());
    let mut v = NdArray::from_shape_vec(&[n, n], g0.v.clone());
    for _ in 0..steps {
        let dhdx = nd::mul_scalar(&nd::sub(&nd::roll(&h, -1, 1), &nd::roll(&h, 1, 1)), 0.5);
        let dhdy = nd::mul_scalar(&nd::sub(&nd::roll(&h, -1, 0), &nd::roll(&h, 1, 0)), 0.5);
        let dudx = nd::mul_scalar(&nd::sub(&nd::roll(&u, -1, 1), &nd::roll(&u, 1, 1)), 0.5);
        let dvdy = nd::mul_scalar(&nd::sub(&nd::roll(&v, -1, 0), &nd::roll(&v, 1, 0)), 0.5);
        let u_new = nd::sub(&u, &nd::mul_scalar(&dhdx, dt * GRAV));
        let v_new = nd::sub(&v, &nd::mul_scalar(&dhdy, dt * GRAV));
        let div = nd::add(&dudx, &dvdy);
        let adv = nd::add(&nd::mul(&u, &dhdx), &nd::mul(&v, &dhdy));
        let h_new = nd::sub(
            &nd::sub(&h, &nd::mul_scalar(&nd::mul(&h, &div), dt)),
            &nd::mul_scalar(&adv, dt),
        );
        h = h_new;
        u = u_new;
        v = v_new;
    }
    summarize(&Grid {
        n,
        h: h.to_vec(),
        u: u.to_vec(),
        v: v.to_vec(),
    })
}

/// Mozart NumPy: axis-1 rolls and all elementwise math annotated;
/// axis-0 rolls are unannotated stage boundaries.
pub fn numpy_mozart(g0: &Grid, steps: usize, dt: f64, ctx: &MozartContext) -> Result<Summary> {
    use ndarray_lite as nd;
    use sa_ndarray as sa;
    let n = g0.n;
    let mut h = NdArray::from_shape_vec(&[n, n], g0.h.clone());
    let mut u = NdArray::from_shape_vec(&[n, n], g0.u.clone());
    let mut v = NdArray::from_shape_vec(&[n, n], g0.v.clone());
    for _ in 0..steps {
        // Axis-0 rolls: unannotated (data moves between rows).
        let h_up = nd::roll(&h, -1, 0);
        let h_dn = nd::roll(&h, 1, 0);
        let v_up = nd::roll(&v, -1, 0);
        let v_dn = nd::roll(&v, 1, 0);

        // Everything else: annotated and pipelined.
        let dhdx = {
            let l = sa::roll_axis1(ctx, &h, -1)?;
            let r = sa::roll_axis1(ctx, &h, 1)?;
            let d = sa::sub(ctx, &l, &r)?;
            sa::mul_scalar(ctx, &d, 0.5)?
        };
        let dudx = {
            let l = sa::roll_axis1(ctx, &u, -1)?;
            let r = sa::roll_axis1(ctx, &u, 1)?;
            let d = sa::sub(ctx, &l, &r)?;
            sa::mul_scalar(ctx, &d, 0.5)?
        };
        let dhdy = {
            let d = sa::sub(ctx, &h_up, &h_dn)?;
            sa::mul_scalar(ctx, &d, 0.5)?
        };
        let dvdy = {
            let d = sa::sub(ctx, &v_up, &v_dn)?;
            sa::mul_scalar(ctx, &d, 0.5)?
        };
        let u_new = {
            let g = sa::mul_scalar(ctx, &dhdx, dt * GRAV)?;
            sa::sub(ctx, &u, &g)?
        };
        let v_new = {
            let g = sa::mul_scalar(ctx, &dhdy, dt * GRAV)?;
            sa::sub(ctx, &v, &g)?
        };
        let h_new = {
            let div = sa::add(ctx, &dudx, &dvdy)?;
            let hdiv = sa::mul(ctx, &h, &div)?;
            let a = sa::mul(ctx, &u, &dhdx)?;
            let b = sa::mul(ctx, &v, &dhdy)?;
            let adv = sa::add(ctx, &a, &b)?;
            let s1 = sa::mul_scalar(ctx, &hdiv, dt)?;
            let s2 = sa::mul_scalar(ctx, &adv, dt)?;
            let t1 = sa::sub(ctx, &h, &s1)?;
            sa::sub(ctx, &t1, &s2)?
        };
        h = sa_ndarray::get(&h_new)?;
        u = sa_ndarray::get(&u_new)?;
        v = sa_ndarray::get(&v_new)?;
    }
    Ok(summarize(&Grid {
        n,
        h: h.to_vec(),
        u: u.to_vec(),
        v: v.to_vec(),
    }))
}

/// Base MKL: flat buffers, eager in-place vector math; shifts are
/// explicit copies.
pub fn mkl_base(g0: &Grid, steps: usize, dt: f64) -> Summary {
    use vectormath as vm;
    let n = g0.n;
    let nn = n * n;
    let mut g = g0.clone();
    let mut dhdx = vec![0.0; nn];
    let mut dhdy = vec![0.0; nn];
    let mut dudx = vec![0.0; nn];
    let mut dvdy = vec![0.0; nn];
    let mut t1 = vec![0.0; nn];
    let mut t2 = vec![0.0; nn];
    for _ in 0..steps {
        central_diff_x(&g.h, &mut dhdx, n);
        central_diff_y(&g.h, &mut dhdy, n);
        central_diff_x(&g.u, &mut dudx, n);
        central_diff_y(&g.v, &mut dvdy, n);
        // h-update terms first (they read the OLD u, v, h):
        // t1 = h*(dudx+dvdy) + u*dhdx + v*dhdy
        vm::vd_add(&dudx, &dvdy, &mut t1);
        vm::vd_mul(&t1.clone(), &g.h, &mut t1);
        vm::vd_mul(&g.u, &dhdx, &mut t2);
        vm::daxpy(1.0, &t2.clone(), &mut t1);
        vm::vd_mul(&g.v, &dhdy, &mut t2);
        vm::vd_add(&t1.clone(), &t2, &mut t1);
        // Now the momentum and height updates.
        vm::daxpy(-dt * GRAV, &dhdx, &mut g.u);
        vm::daxpy(-dt * GRAV, &dhdy, &mut g.v);
        vm::daxpy(-dt, &t1, &mut g.h);
    }
    summarize(&g)
}

/// Mozart MKL: elementwise chain annotated; the shift copies are
/// unannotated stage boundaries.
pub fn mkl_mozart(g0: &Grid, steps: usize, dt: f64, ctx: &MozartContext) -> Result<Summary> {
    use sa_vectormath as sa;
    let n = g0.n;
    let nn = n * n;
    let h = SharedVec::from_vec(g0.h.clone());
    let u = SharedVec::from_vec(g0.u.clone());
    let v = SharedVec::from_vec(g0.v.clone());
    for _ in 0..steps {
        // Derivative buffers via plain library shifts (stage breaks);
        // reading the SharedVecs forces any pending mutation first.
        let mut dhdx = vec![0.0; nn];
        let mut dhdy = vec![0.0; nn];
        let mut dudx = vec![0.0; nn];
        let mut dvdy = vec![0.0; nn];
        central_diff_x(h.as_slice(), &mut dhdx, n);
        central_diff_y(h.as_slice(), &mut dhdy, n);
        central_diff_x(u.as_slice(), &mut dudx, n);
        central_diff_y(v.as_slice(), &mut dvdy, n);
        let dhdx = SharedVec::from_vec(dhdx);
        let dhdy = SharedVec::from_vec(dhdy);
        let dudx = SharedVec::from_vec(dudx);
        let dvdy = SharedVec::from_vec(dvdy);
        let t1: SharedVec<f64> = SharedVec::zeros(nn);
        let t2: SharedVec<f64> = SharedVec::zeros(nn);

        // h-update terms first (they read the OLD u, v, h).
        sa::vd_add(ctx, nn, &dudx, &dvdy, &t1)?;
        sa::vd_mul(ctx, nn, &t1, &h, &t1)?;
        sa::vd_mul(ctx, nn, &u, &dhdx, &t2)?;
        sa::daxpy(ctx, nn, 1.0, &t2, &t1)?;
        sa::vd_mul(ctx, nn, &v, &dhdy, &t2)?;
        sa::vd_add(ctx, nn, &t1, &t2, &t1)?;
        // Momentum and height updates (in-place, still pipelined).
        sa::daxpy(ctx, nn, -dt * GRAV, &dhdx, &u)?;
        sa::daxpy(ctx, nn, -dt * GRAV, &dhdy, &v)?;
        sa::daxpy(ctx, nn, -dt, &t1, &h)?;
        ctx.evaluate()?;
    }
    let g = Grid {
        n,
        h: h.to_vec(),
        u: u.to_vec(),
        v: v.to_vec(),
    };
    Ok(summarize(&g))
}

/// Fused (compiler stand-in).
pub fn fused(g0: &Grid, steps: usize, dt: f64, threads: usize) -> Summary {
    let mut g = g0.clone();
    for _ in 0..steps {
        fusedbaseline::shallow_water::step(&mut g, dt, threads);
    }
    summarize(&g)
}

fn central_diff_x(src: &[f64], out: &mut [f64], n: usize) {
    for y in 0..n {
        let row = &src[y * n..(y + 1) * n];
        let dst = &mut out[y * n..(y + 1) * n];
        for (x, d) in dst.iter_mut().enumerate() {
            let xp = (x + 1) % n;
            let xm = (x + n - 1) % n;
            *d = (row[xp] - row[xm]) * 0.5;
        }
    }
}

fn central_diff_y(src: &[f64], out: &mut [f64], n: usize) {
    for y in 0..n {
        let yp = (y + 1) % n;
        let ym = (y + n - 1) % n;
        for x in 0..n {
            out[y * n + x] = (src[yp * n + x] - src[ym * n + x]) * 0.5;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::close;

    #[test]
    fn all_modes_agree() {
        let g = generate(24);
        let steps = 4;
        let dt = 0.01;
        let a = numpy_base(&g, steps, dt);
        let f = fused(&g, steps, dt, 2);
        let mk = mkl_base(&g, steps, dt);
        let ctx = crate::mozart_context(2);
        let m1 = numpy_mozart(&g, steps, dt, &ctx).unwrap();
        let ctx = crate::mozart_context(2);
        let m2 = mkl_mozart(&g, steps, dt, &ctx).unwrap();
        for s in [&f, &mk, &m1, &m2] {
            assert!(close(a.mass, s.mass, 1e-9), "mass {} vs {}", a.mass, s.mass);
            assert!(
                close(a.momentum2, s.momentum2, 1e-9),
                "momentum {} vs {}",
                a.momentum2,
                s.momentum2
            );
        }
    }
}
