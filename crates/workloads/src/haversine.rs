//! Haversine distance (Table 2; Figures 4b, 4k): distance from a fixed
//! point to a set of GPS coordinates. ~18 vector operations.

use fusedbaseline::haversine::EARTH_RADIUS_MILES;
use mozart_core::{MozartContext, Result, SharedVec};
use ndarray_lite::NdArray;

/// Fixed reference point (radians) used by all modes.
pub const LAT1: f64 = 0.70984286;
/// Fixed reference longitude (radians).
pub const LON1: f64 = -1.29744104;

/// Workload inputs: target coordinates in radians.
pub struct Inputs {
    /// Latitudes.
    pub lat: Vec<f64>,
    /// Longitudes.
    pub lon: Vec<f64>,
}

/// Generate inputs.
pub fn generate(n: usize, seed: u64) -> Inputs {
    let (lat, lon) = crate::data::haversine_inputs(n, seed);
    Inputs { lat, lon }
}

/// Result summary: checksum of distances.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Summary {
    /// Sum of all distances (miles).
    pub dist_sum: f64,
}

/// Base NumPy: eager functional arrays.
pub fn numpy_base(inp: &Inputs) -> Summary {
    use ndarray_lite as nd;
    let lat2 = NdArray::from_vec(inp.lat.clone());
    let lon2 = NdArray::from_vec(inp.lon.clone());
    let dlat = nd::add_scalar(&lat2, -LAT1);
    let dlon = nd::add_scalar(&lon2, -LON1);
    let sa2 = nd::square(&nd::sin(&nd::mul_scalar(&dlat, 0.5)));
    let so2 = nd::square(&nd::sin(&nd::mul_scalar(&dlon, 0.5)));
    let h = nd::add(
        &sa2,
        &nd::mul_scalar(&nd::mul(&nd::cos(&lat2), &so2), LAT1.cos()),
    );
    let d = nd::mul_scalar(
        &nd::asin(&nd::minimum(
            &nd::sqrt(&h),
            &NdArray::full(&[inp.lat.len()], 1.0),
        )),
        2.0 * EARTH_RADIUS_MILES,
    );
    Summary {
        dist_sum: ndarray_lite::sum(&d),
    }
}

/// Mozart NumPy: annotated wrappers, pipelined, ending in an annotated
/// reduction.
pub fn numpy_mozart(inp: &Inputs, ctx: &MozartContext) -> Result<Summary> {
    use sa_ndarray as sa;
    let n = inp.lat.len();
    let lat2 = NdArray::from_vec(inp.lat.clone());
    let lon2 = NdArray::from_vec(inp.lon.clone());
    let ones = NdArray::full(&[n], 1.0);

    let dlat = sa::add_scalar(ctx, &lat2, -LAT1)?;
    let dlon = sa::add_scalar(ctx, &lon2, -LON1)?;
    let sa2 = {
        let h = sa::mul_scalar(ctx, &dlat, 0.5)?;
        let s = sa::sin(ctx, &h)?;
        sa::square(ctx, &s)?
    };
    let so2 = {
        let h = sa::mul_scalar(ctx, &dlon, 0.5)?;
        let s = sa::sin(ctx, &h)?;
        sa::square(ctx, &s)?
    };
    let h = {
        let c2 = sa::cos(ctx, &lat2)?;
        let prod = sa::mul(ctx, &c2, &so2)?;
        let scaled = sa::mul_scalar(ctx, &prod, LAT1.cos())?;
        sa::add(ctx, &sa2, &scaled)?
    };
    let d = {
        let r = sa::sqrt(ctx, &h)?;
        let clamped = sa::minimum(ctx, &r, &ones)?;
        let a = sa::asin(ctx, &clamped)?;
        sa::mul_scalar(ctx, &a, 2.0 * EARTH_RADIUS_MILES)?
    };
    let total = sa::sum(ctx, &d)?;
    Ok(Summary {
        dist_sum: sa_ndarray::get_scalar(&total)?,
    })
}

/// Base MKL: eager in-place vector math (internally parallel library).
pub fn mkl_base(inp: &Inputs) -> Summary {
    use vectormath as vm;
    let n = inp.lat.len();
    let mut a = vec![0.0; n];
    let mut b = vec![0.0; n];
    // a = sin²(dlat/2)
    vm::vd_shift(&inp.lat, -LAT1, &mut a);
    vm::vd_scale(&a.clone(), 0.5, &mut a);
    vm::vd_sin(&a.clone(), &mut a);
    vm::vd_sqr(&a.clone(), &mut a);
    // b = cos(lat1) * cos(lat2) * sin²(dlon/2)
    vm::vd_shift(&inp.lon, -LON1, &mut b);
    vm::vd_scale(&b.clone(), 0.5, &mut b);
    vm::vd_sin(&b.clone(), &mut b);
    vm::vd_sqr(&b.clone(), &mut b);
    let mut c = vec![0.0; n];
    vm::vd_cos(&inp.lat, &mut c);
    vm::vd_mul(&b.clone(), &c, &mut b);
    vm::vd_scale(&b.clone(), LAT1.cos(), &mut b);
    // d = 2R asin(min(sqrt(a + b), 1))
    vm::vd_add(&a.clone(), &b, &mut a);
    vm::vd_sqrt(&a.clone(), &mut a);
    vm::vd_fmin(&a.clone(), &vec![1.0; n], &mut a);
    vm::vd_asin(&a.clone(), &mut a);
    vm::vd_scale(&a.clone(), 2.0 * EARTH_RADIUS_MILES, &mut a);
    Summary {
        dist_sum: a.iter().sum(),
    }
}

/// Register the annotated 16-call in-place distance chain on `ctx`
/// over already-shared coordinate buffers and return the (still lazy)
/// per-coordinate distance vector. Shared by [`mkl_mozart`] (which
/// appends the annotated `dasum` reduction) and the serving layer,
/// whose generic coalescer hands in concatenated buffers and slices
/// the distances back per request; reading the returned buffer forces
/// evaluation.
pub fn mkl_chain(
    ctx: &MozartContext,
    lat: &SharedVec<f64>,
    lon: &SharedVec<f64>,
) -> Result<SharedVec<f64>> {
    use sa_vectormath as sa;
    let n = lat.len();
    let ones = SharedVec::from_vec(vec![1.0; n]);
    let a: SharedVec<f64> = SharedVec::zeros(n);
    let b: SharedVec<f64> = SharedVec::zeros(n);
    let c: SharedVec<f64> = SharedVec::zeros(n);

    sa::vd_shift(ctx, n, lat, -LAT1, &a)?;
    sa::vd_scale(ctx, n, &a, 0.5, &a)?;
    sa::vd_sin(ctx, n, &a, &a)?;
    sa::vd_sqr(ctx, n, &a, &a)?;
    sa::vd_shift(ctx, n, lon, -LON1, &b)?;
    sa::vd_scale(ctx, n, &b, 0.5, &b)?;
    sa::vd_sin(ctx, n, &b, &b)?;
    sa::vd_sqr(ctx, n, &b, &b)?;
    sa::vd_cos(ctx, n, lat, &c)?;
    sa::vd_mul(ctx, n, &b, &c, &b)?;
    sa::vd_scale(ctx, n, &b, LAT1.cos(), &b)?;
    sa::vd_add(ctx, n, &a, &b, &a)?;
    sa::vd_sqrt(ctx, n, &a, &a)?;
    sa::vd_fmin(ctx, n, &a, &ones, &a)?;
    sa::vd_asin(ctx, n, &a, &a)?;
    sa::vd_scale(ctx, n, &a, 2.0 * EARTH_RADIUS_MILES, &a)?;
    Ok(a)
}

/// Mozart MKL: the same in-place sequence, annotated, ending in the
/// annotated `dasum` reduction (distances are non-negative).
pub fn mkl_mozart(inp: &Inputs, ctx: &MozartContext) -> Result<Summary> {
    use sa_vectormath as sa;
    let lat = SharedVec::from_vec(inp.lat.clone());
    let lon = SharedVec::from_vec(inp.lon.clone());
    let a = mkl_chain(ctx, &lat, &lon)?;
    let total = sa::dasum(ctx, &a)?;
    let dv = total.get()?;
    Ok(Summary {
        dist_sum: dv
            .downcast_ref::<mozart_core::FloatValue>()
            .expect("float")
            .0,
    })
}

/// Fused (compiler stand-in).
pub fn fused(inp: &Inputs, threads: usize) -> Summary {
    let mut out = vec![0.0; inp.lat.len()];
    fusedbaseline::haversine::run(LAT1, LON1, &inp.lat, &inp.lon, &mut out, threads);
    Summary {
        dist_sum: out.iter().sum(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::close;

    #[test]
    fn all_modes_agree() {
        let inp = generate(3000, 11);
        let a = numpy_base(&inp);
        let b = mkl_base(&inp);
        let f = fused(&inp, 2);
        let ctx = crate::mozart_context(2);
        let m1 = numpy_mozart(&inp, &ctx).unwrap();
        let ctx = crate::mozart_context(2);
        let m2 = mkl_mozart(&inp, &ctx).unwrap();
        for s in [&b, &f, &m1, &m2] {
            assert!(
                close(a.dist_sum, s.dist_sum, 1e-6),
                "{} vs {}",
                a.dist_sum,
                s.dist_sum
            );
        }
    }

    #[test]
    fn mkl_chain_is_one_stage() {
        let inp = generate(1000, 3);
        let ctx = crate::mozart_context(2);
        mkl_mozart(&inp, &ctx).unwrap();
        assert_eq!(ctx.stats().stages, 1);
    }
}
