//! nBody simulation (Table 2; Figures 4c, 4l): Newtonian force
//! integration over N bodies via N x N interaction matrices (the NumPy
//! formulation) or flat vector math + a matrix-vector product (MKL).
//!
//! Contains operators that cannot be pipelined (tiling, transposes, the
//! row-sum reductions), so Mozart pipelines only within the elementwise
//! stretches -- the behaviour the paper reports for this workload.

use fusedbaseline::nbody::{Bodies, EPS, G};
use mozart_core::{MozartContext, Result, SharedVec};
use ndarray_lite::NdArray;

/// Generate an initial state.
pub fn generate(n: usize, seed: u64) -> Bodies {
    crate::data::nbody_inputs(n, seed)
}

/// Result summary: position checksums after the simulation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Summary {
    /// Sum of x positions.
    pub x_sum: f64,
    /// Sum of velocity magnitudes squared.
    pub v2_sum: f64,
}

fn summarize(b: &Bodies) -> Summary {
    Summary {
        x_sum: b.x.iter().sum(),
        v2_sum: b
            .vx
            .iter()
            .zip(&b.vy)
            .zip(&b.vz)
            .map(|((x, y), z)| x * x + y * y + z * z)
            .sum(),
    }
}

/// One axis' acceleration via matrices: sum_j G * m_j * d_ij * r3inv_ij
/// where `d[i][j] = p[j] - p[i]`.
fn accel_numpy(d: &NdArray, r3inv: &NdArray, m: &NdArray) -> NdArray {
    use ndarray_lite as nd;
    let f = nd::mul(&nd::mul(d, r3inv), m); // broadcast m over rows
    nd::mul_scalar(&nd::sum_axis(&f, 1), G)
}

/// Base NumPy: eager matrix formulation, single-threaded.
pub fn numpy_base(b0: &Bodies, steps: usize, dt: f64) -> Summary {
    use ndarray_lite as nd;
    let n = b0.x.len();
    let mut b = b0.clone();
    let m = NdArray::from_vec(b.m.clone());
    for _ in 0..steps {
        let xr = nd::tile_rows(&NdArray::from_vec(b.x.clone()), n);
        let yr = nd::tile_rows(&NdArray::from_vec(b.y.clone()), n);
        let zr = nd::tile_rows(&NdArray::from_vec(b.z.clone()), n);
        let xc = nd::transpose(&xr);
        let yc = nd::transpose(&yr);
        let zc = nd::transpose(&zr);
        // d[i][j] = p[j] - p[i] (receiver i per row).
        let dx = nd::sub(&xr, &xc);
        let dy = nd::sub(&yr, &yc);
        let dz = nd::sub(&zr, &zc);
        let r2 = nd::add_scalar(
            &nd::add(
                &nd::add(&nd::square(&dx), &nd::square(&dy)),
                &nd::square(&dz),
            ),
            EPS,
        );
        let r3inv = nd::pow_scalar(&r2, -1.5);
        let ax = accel_numpy(&dx, &r3inv, &m);
        let ay = accel_numpy(&dy, &r3inv, &m);
        let az = accel_numpy(&dz, &r3inv, &m);
        for i in 0..n {
            b.vx[i] += dt * ax.get(i);
            b.vy[i] += dt * ay.get(i);
            b.vz[i] += dt * az.get(i);
            b.x[i] += dt * b.vx[i];
            b.y[i] += dt * b.vy[i];
            b.z[i] += dt * b.vz[i];
        }
    }
    summarize(&b)
}

/// Mozart NumPy: the elementwise matrix chain through `sa-ndarray`;
/// tiles/transposes are unannotated structural calls (stage breaks).
pub fn numpy_mozart(b0: &Bodies, steps: usize, dt: f64, ctx: &MozartContext) -> Result<Summary> {
    use ndarray_lite as nd;
    use sa_ndarray as sa;
    let n = b0.x.len();
    let mut b = b0.clone();
    let m = NdArray::from_vec(b.m.clone());
    for _ in 0..steps {
        let xr = nd::tile_rows(&NdArray::from_vec(b.x.clone()), n);
        let yr = nd::tile_rows(&NdArray::from_vec(b.y.clone()), n);
        let zr = nd::tile_rows(&NdArray::from_vec(b.z.clone()), n);
        let xc = nd::transpose(&xr);
        let yc = nd::transpose(&yr);
        let zc = nd::transpose(&zr);

        // d[i][j] = p[j] - p[i] (receiver i per row).
        let dx = sa::sub(ctx, &xr, &xc)?;
        let dy = sa::sub(ctx, &yr, &yc)?;
        let dz = sa::sub(ctx, &zr, &zc)?;
        let r2 = {
            let x2 = sa::square(ctx, &dx)?;
            let y2 = sa::square(ctx, &dy)?;
            let z2 = sa::square(ctx, &dz)?;
            let s = sa::add(ctx, &x2, &y2)?;
            let s = sa::add(ctx, &s, &z2)?;
            sa::add_scalar(ctx, &s, EPS)?
        };
        let r3inv = sa::pow_scalar(ctx, &r2, -1.5)?;
        let mut acc = Vec::new();
        for d in [&dx, &dy, &dz] {
            let f = sa::mul(ctx, d, &r3inv)?;
            let f = sa::mul_rowvec(ctx, &f, &m)?;
            let a = sa::sum_axis(ctx, &f, 1)?;
            acc.push(sa::mul_scalar(ctx, &a, G)?);
        }
        let ax = sa_ndarray::get(&acc[0])?;
        let ay = sa_ndarray::get(&acc[1])?;
        let az = sa_ndarray::get(&acc[2])?;
        for i in 0..n {
            b.vx[i] += dt * ax.get(i);
            b.vy[i] += dt * ay.get(i);
            b.vz[i] += dt * az.get(i);
            b.x[i] += dt * b.vx[i];
            b.y[i] += dt * b.vy[i];
            b.z[i] += dt * b.vz[i];
        }
    }
    Ok(summarize(&b))
}

/// Base MKL: flat N*N buffers with in-place vector math; row sums via
/// `dgemv` with a ones vector. Internally parallel library.
pub fn mkl_base(b0: &Bodies, steps: usize, dt: f64) -> Summary {
    use vectormath as vm;
    let n = b0.x.len();
    let nn = n * n;
    let mut b = b0.clone();
    let ones = vec![1.0; n];
    let mut d = vec![0.0; nn];
    let mut r2 = vec![0.0; nn];
    let mut tmp = vec![0.0; nn];
    let mut acc = vec![0.0; n];
    for _ in 0..steps {
        // r2 = dx^2 + dy^2 + dz^2 + eps, accumulated axis by axis.
        vm::vd_fill(EPS, &mut r2[..]);
        for p in [&b.x, &b.y, &b.z] {
            fill_diff(&mut d, p);
            vm::vd_sqr(&d, &mut tmp);
            vm::vd_add(&r2.clone(), &tmp, &mut r2);
        }
        vm::vd_powx(&r2.clone(), -1.5, &mut r2); // r2 := r3inv
        let (mut vx, mut vy, mut vz) = (
            std::mem::take(&mut b.vx),
            std::mem::take(&mut b.vy),
            std::mem::take(&mut b.vz),
        );
        for (p, v) in [(&b.x, &mut vx), (&b.y, &mut vy), (&b.z, &mut vz)] {
            fill_diff(&mut d, p);
            vm::vd_mul(&d.clone(), &r2, &mut d);
            scale_cols(&mut d, &b.m);
            vm::dgemv(n, n, G, &d, &ones, 0.0, &mut acc);
            vm::daxpy(dt, &acc, v);
        }
        b.vx = vx;
        b.vy = vy;
        b.vz = vz;
        for i in 0..n {
            b.x[i] += dt * b.vx[i];
            b.y[i] += dt * b.vy[i];
            b.z[i] += dt * b.vz[i];
        }
    }
    summarize(&b)
}

/// Mozart MKL: elementwise N*N chain annotated; the diff/tile fills and
/// dgemv are stage boundaries.
pub fn mkl_mozart(b0: &Bodies, steps: usize, dt: f64, ctx: &MozartContext) -> Result<Summary> {
    use sa_vectormath as sa;
    let n = b0.x.len();
    let nn = n * n;
    let mut b = b0.clone();
    let ones = SharedVec::from_vec(vec![1.0; n]);
    for _ in 0..steps {
        let r2 = SharedVec::from_vec(vec![EPS; nn]);
        let tmp: SharedVec<f64> = SharedVec::zeros(nn);
        let mut diffs = Vec::new();
        for p in [&b.x, &b.y, &b.z] {
            let mut d = vec![0.0; nn];
            fill_diff(&mut d, p);
            let d = SharedVec::from_vec(d);
            sa::vd_sqr(ctx, nn, &d, &tmp)?;
            sa::vd_add(ctx, nn, &r2, &tmp, &r2)?;
            diffs.push(d);
        }
        sa::vd_powx(ctx, nn, &r2, -1.5, &r2)?;
        for (axis, d) in diffs.iter().enumerate() {
            let mut mcol = vec![0.0; nn];
            // column mass weights: w[i*n + j] = m[j]
            for i in 0..n {
                mcol[i * n..(i + 1) * n].copy_from_slice(&b.m);
            }
            let w = SharedVec::from_vec(mcol);
            sa::vd_mul(ctx, nn, d, &r2, d)?;
            sa::vd_mul(ctx, nn, d, &w, d)?;
            let acc = SharedVec::from_vec(vec![0.0; n]);
            sa::dgemv(ctx, n, n, G, d, &ones, 0.0, &acc)?;
            let v = match axis {
                0 => &mut b.vx,
                1 => &mut b.vy,
                _ => &mut b.vz,
            };
            let a = acc.to_vec(); // forces evaluation
            for i in 0..n {
                v[i] += dt * a[i];
            }
        }
        for i in 0..n {
            b.x[i] += dt * b.vx[i];
            b.y[i] += dt * b.vy[i];
            b.z[i] += dt * b.vz[i];
        }
    }
    Ok(summarize(&b))
}

/// Fused (compiler stand-in).
pub fn fused(b0: &Bodies, steps: usize, dt: f64, threads: usize) -> Summary {
    let mut b = b0.clone();
    for _ in 0..steps {
        fusedbaseline::nbody::step(&mut b, dt, threads);
    }
    summarize(&b)
}

/// d[i*n + j] = p[j] - p[i] (the tile/transpose difference).
fn fill_diff(d: &mut [f64], p: &[f64]) {
    let n = p.len();
    for i in 0..n {
        let pi = p[i];
        let row = &mut d[i * n..(i + 1) * n];
        for j in 0..n {
            row[j] = p[j] - pi;
        }
    }
}

/// Scale column j of the row-major n x n matrix by m[j].
fn scale_cols(d: &mut [f64], m: &[f64]) {
    let n = m.len();
    for i in 0..n {
        let row = &mut d[i * n..(i + 1) * n];
        for j in 0..n {
            row[j] *= m[j];
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::close;

    #[test]
    fn all_modes_agree() {
        let b = generate(60, 9);
        let steps = 3;
        let dt = 0.01;
        let a = numpy_base(&b, steps, dt);
        let f = fused(&b, steps, dt, 2);
        let mk = mkl_base(&b, steps, dt);
        let ctx = crate::mozart_context(2);
        let m1 = numpy_mozart(&b, steps, dt, &ctx).unwrap();
        let ctx = crate::mozart_context(2);
        let m2 = mkl_mozart(&b, steps, dt, &ctx).unwrap();
        for s in [&f, &mk, &m1, &m2] {
            assert!(
                close(a.x_sum, s.x_sum, 1e-9),
                "x: {} vs {}",
                a.x_sum,
                s.x_sum
            );
            assert!(
                close(a.v2_sum, s.v2_sum, 1e-9),
                "v2: {} vs {}",
                a.v2_sum,
                s.v2_sum
            );
        }
    }
}
