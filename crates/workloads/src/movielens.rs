//! MovieLens (Table 2; Figure 4h): join ratings with users and movies,
//! then find the movies most divisive by gender. Two pipelined joins
//! plus a parallelized grouped aggregation (§8.2).

use dataframe::{Agg, AggSpec, Column, DataFrame};
use mozart_core::{MozartContext, Result};

pub use crate::data::MovieLensData;

/// Generate the three tables.
pub fn generate(n: usize, seed: u64) -> MovieLensData {
    crate::data::movielens_inputs(n, seed)
}

fn frames(d: &MovieLensData) -> (DataFrame, DataFrame, DataFrame) {
    let ratings = DataFrame::from_cols(vec![
        ("user_id", Column::from_i64(d.ratings.0.clone())),
        ("movie_id", Column::from_i64(d.ratings.1.clone())),
        ("rating", Column::from_f64(d.ratings.2.clone())),
    ]);
    let users = DataFrame::from_cols(vec![
        ("user_id", Column::from_i64(d.users.0.clone())),
        ("gender", Column::from_str(d.users.1.clone())),
    ]);
    let movies = DataFrame::from_cols(vec![("movie_id", Column::from_i64(d.movies.clone()))]);
    (ratings, users, movies)
}

/// Result summary.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Summary {
    /// Movies with ratings from both genders.
    pub movies_rated_by_both: usize,
    /// Sum over movies of |mean_F - mean_M| ("divisiveness").
    pub divisiveness_sum: f64,
}

fn summarize_grouped(g: &DataFrame) -> Summary {
    // g: movie_id, gender, avg columns.
    let movies = g.col("movie_id").i64s();
    let genders = g.col("gender").strs();
    let avgs = g.col("avg").f64s();
    let mut table: std::collections::HashMap<i64, (Option<f64>, Option<f64>)> =
        std::collections::HashMap::new();
    for i in 0..g.num_rows() {
        let e = table.entry(movies[i]).or_insert((None, None));
        if genders[i] == "F" {
            e.0 = Some(avgs[i]);
        } else {
            e.1 = Some(avgs[i]);
        }
    }
    let mut both = 0;
    let mut div = 0.0;
    for (f, m) in table.values() {
        if let (Some(f), Some(m)) = (f, m) {
            both += 1;
            div += (f - m).abs();
        }
    }
    Summary {
        movies_rated_by_both: both,
        divisiveness_sum: div,
    }
}

/// Base Pandas: eager joins + groupBy, single-threaded.
pub fn base(d: &MovieLensData) -> Summary {
    let (ratings, users, movies) = frames(d);
    let j1 = dataframe::inner_join(&ratings, &users, "user_id");
    let j2 = dataframe::inner_join(&j1, &movies, "movie_id");
    let grouped = dataframe::groupby_agg(
        &j2,
        &["movie_id", "gender"],
        &[AggSpec::new("rating", Agg::Mean, "avg")],
    );
    summarize_grouped(&grouped)
}

/// Mozart: both joins pipeline (probe side split, build side
/// broadcast); the grouped aggregation parallelizes via `GroupSplit`.
pub fn mozart(d: &MovieLensData, ctx: &MozartContext) -> Result<Summary> {
    use sa_dataframe as sa;
    let (ratings, users, movies) = frames(d);
    let j1 = sa::inner_join(ctx, &ratings, &users, "user_id")?;
    let j2 = sa::inner_join(ctx, &j1, &movies, "movie_id")?;
    let grouped = sa::groupby_agg(
        ctx,
        &j2,
        &["movie_id", "gender"],
        &[AggSpec::new("rating", Agg::Mean, "avg")],
    )?;
    Ok(summarize_grouped(&sa::get_df(&grouped)?))
}

/// Fused (compiler stand-in): hash tables + one pass over ratings.
pub fn fused(d: &MovieLensData) -> Summary {
    let table = fusedbaseline::pandas::movielens(
        &d.ratings.0,
        &d.ratings.1,
        &d.ratings.2,
        &d.users.0,
        &d.users.1,
        &d.movies,
    );
    let mut both = 0;
    let mut div = 0.0;
    for (fs, fc, ms, mc) in table.values() {
        if *fc > 0.0 && *mc > 0.0 {
            both += 1;
            div += (fs / fc - ms / mc).abs();
        }
    }
    Summary {
        movies_rated_by_both: both,
        divisiveness_sum: div,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::close;

    #[test]
    fn all_modes_agree() {
        let d = generate(8000, 77);
        let a = base(&d);
        let f = fused(&d);
        let ctx = crate::mozart_context(2);
        let m = mozart(&d, &ctx).unwrap();
        assert_eq!(a.movies_rated_by_both, f.movies_rated_by_both);
        assert_eq!(a.movies_rated_by_both, m.movies_rated_by_both);
        assert!(close(a.divisiveness_sum, f.divisiveness_sum, 1e-9));
        assert!(close(a.divisiveness_sum, m.divisiveness_sum, 1e-9));
        assert!(a.movies_rated_by_both > 0);
    }
}
