//! Black Scholes options pricing (Table 2; Figures 1, 4a, 4j).
//!
//! ~32 vector operations per pricing pass. The MKL variant mirrors
//! Listing 1: in-place vector math over pre-allocated buffers. The
//! NumPy variant is the functional-array version. The fused variant is
//! `fusedbaseline::black_scholes`.

use mozart_core::{MozartContext, Result, SharedVec};
use ndarray_lite::NdArray;

/// Inverse of sqrt(2), for the cumulative normal distribution.
const INV_SQRT2: f64 = std::f64::consts::FRAC_1_SQRT_2;

/// Workload inputs.
pub struct Inputs {
    /// Spot prices.
    pub price: Vec<f64>,
    /// Strike prices.
    pub strike: Vec<f64>,
    /// Times to maturity.
    pub t: Vec<f64>,
    /// Risk-free rates.
    pub rate: Vec<f64>,
    /// Volatilities.
    pub vol: Vec<f64>,
}

/// Generate inputs.
pub fn generate(n: usize, seed: u64) -> Inputs {
    let (price, strike, t, rate, vol) = crate::data::black_scholes_inputs(n, seed);
    Inputs {
        price,
        strike,
        t,
        rate,
        vol,
    }
}

/// Summarize one request's slice of the (possibly concatenated) call
/// and put price vectors. Serial summation over the slice, so a
/// coalesced evaluation reproduces the separate evaluation's sums
/// bit for bit (the per-element prices are positionally identical).
///
/// The concatenation itself is no longer done here: the serving layer
/// coalesces requests generically through the splitting API's `Concat`
/// capability (`ArraySplit`), so no per-pipeline input structs exist.
pub fn summarize_range(call: &[f64], put: &[f64]) -> Summary {
    summarize(call, put)
}

/// Result summary: checksums of the call and put price vectors.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Summary {
    /// Sum of call prices.
    pub call_sum: f64,
    /// Sum of put prices.
    pub put_sum: f64,
}

fn summarize(call: &[f64], put: &[f64]) -> Summary {
    Summary {
        call_sum: call.iter().sum(),
        put_sum: put.iter().sum(),
    }
}

// ----------------------------- NumPy variant ---------------------------

/// Base: eager `ndarray-lite` calls (single-threaded library).
pub fn numpy_base(inp: &Inputs) -> Summary {
    use ndarray_lite as nd;
    let price = NdArray::from_vec(inp.price.clone());
    let strike = NdArray::from_vec(inp.strike.clone());
    let t = NdArray::from_vec(inp.t.clone());
    let rate = NdArray::from_vec(inp.rate.clone());
    let vol = NdArray::from_vec(inp.vol.clone());

    let rsig = nd::add(&rate, &nd::mul_scalar(&nd::square(&vol), 0.5));
    let vol_sqrt = nd::mul(&vol, &nd::sqrt(&t));
    let ratio = nd::div(&price, &strike);
    let d1 = nd::div(
        &nd::add(
            &nd::log1p(&nd::add_scalar(&ratio, -1.0)),
            &nd::mul(&rsig, &t),
        ),
        &vol_sqrt,
    );
    let d2 = nd::sub(&d1, &vol_sqrt);
    let cnd = |d: &NdArray| {
        nd::add_scalar(
            &nd::mul_scalar(&nd::erf(&nd::mul_scalar(d, INV_SQRT2)), 0.5),
            0.5,
        )
    };
    let e_rt = nd::exp(&nd::neg(&nd::mul(&rate, &t)));
    let call = nd::sub(
        &nd::mul(&price, &cnd(&d1)),
        &nd::mul(&nd::mul(&e_rt, &strike), &cnd(&d2)),
    );
    let put = nd::add(&nd::sub(&nd::mul(&e_rt, &strike), &price), &call);
    summarize(call.as_slice(), put.as_slice())
}

/// Mozart: the same operator sequence through the `sa-ndarray`
/// wrappers, captured lazily and pipelined.
pub fn numpy_mozart(inp: &Inputs, ctx: &MozartContext) -> Result<Summary> {
    use sa_ndarray as sa;
    let price = NdArray::from_vec(inp.price.clone());
    let strike = NdArray::from_vec(inp.strike.clone());
    let t = NdArray::from_vec(inp.t.clone());
    let rate = NdArray::from_vec(inp.rate.clone());
    let vol = NdArray::from_vec(inp.vol.clone());

    let rsig = {
        let v2 = sa::square(ctx, &vol)?;
        let half = sa::mul_scalar(ctx, &v2, 0.5)?;
        sa::add(ctx, &rate, &half)?
    };
    let vol_sqrt = {
        let st = sa::sqrt(ctx, &t)?;
        sa::mul(ctx, &vol, &st)?
    };
    let d1 = {
        let ratio = sa::div(ctx, &price, &strike)?;
        let shifted = sa::add_scalar(ctx, &ratio, -1.0)?;
        let ln = sa::log1p(ctx, &shifted)?;
        let rt = sa::mul(ctx, &rsig, &t)?;
        let num = sa::add(ctx, &ln, &rt)?;
        sa::div(ctx, &num, &vol_sqrt)?
    };
    let d2 = sa::sub(ctx, &d1, &vol_sqrt)?;
    let cnd = |d: &mozart_core::FutureHandle| -> Result<mozart_core::FutureHandle> {
        let scaled = sa::mul_scalar(ctx, d, INV_SQRT2)?;
        let e = sa::erf(ctx, &scaled)?;
        let h = sa::mul_scalar(ctx, &e, 0.5)?;
        sa::add_scalar(ctx, &h, 0.5)
    };
    let cnd1 = cnd(&d1)?;
    let cnd2 = cnd(&d2)?;
    let e_rt = {
        let rt = sa::mul(ctx, &rate, &t)?;
        let neg = sa::neg(ctx, &rt)?;
        sa::exp(ctx, &neg)?
    };
    let call = {
        let a = sa::mul(ctx, &price, &cnd1)?;
        let es = sa::mul(ctx, &e_rt, &strike)?;
        let b = sa::mul(ctx, &es, &cnd2)?;
        sa::sub(ctx, &a, &b)?
    };
    let put = {
        let es = sa::mul(ctx, &e_rt, &strike)?;
        let diff = sa::sub(ctx, &es, &price)?;
        sa::add(ctx, &diff, &call)?
    };
    let call = sa_ndarray::get(&call)?;
    let put = sa_ndarray::get(&put)?;
    Ok(summarize(call.as_slice(), put.as_slice()))
}

// ----------------------------- MKL variant -----------------------------

/// Base: eager `vectormath` calls with the library's internal
/// parallelism (set `vectormath::set_num_threads` beforehand), mirroring
/// Listing 1's in-place style.
pub fn mkl_base(inp: &Inputs) -> Summary {
    use vectormath as vm;
    let n = inp.price.len();
    let mut d1 = vec![0.0; n];
    let mut d2 = vec![0.0; n];
    let mut tmp = vec![0.0; n];
    let mut vol_sqrt = vec![0.0; n];
    let mut e_rt = vec![0.0; n];
    let mut call = vec![0.0; n];
    let mut put = vec![0.0; n];

    // rsig (in tmp) = rate + vol^2/2
    vm::vd_sqr(&inp.vol, &mut tmp);
    vm::vd_scale(&tmp.clone(), 0.5, &mut tmp);
    vm::vd_add(&tmp.clone(), &inp.rate, &mut tmp);
    // vol_sqrt = vol * sqrt(t)
    vm::vd_sqrt(&inp.t, &mut vol_sqrt);
    vm::vd_mul(&vol_sqrt.clone(), &inp.vol, &mut vol_sqrt);
    // d1 = (log1p(price/strike - 1) + rsig*t) / vol_sqrt
    vm::vd_div(&inp.price, &inp.strike, &mut d1);
    vm::vd_shift(&d1.clone(), -1.0, &mut d1);
    vm::vd_log1p(&d1.clone(), &mut d1);
    vm::vd_mul(&tmp.clone(), &inp.t, &mut tmp);
    vm::vd_add(&d1.clone(), &tmp, &mut d1);
    vm::vd_div(&d1.clone(), &vol_sqrt, &mut d1);
    // d2 = d1 - vol_sqrt
    vm::vd_sub(&d1, &vol_sqrt, &mut d2);
    // cnd(d1) in-place, cnd(d2) in-place.
    for d in [&mut d1, &mut d2] {
        vm::vd_scale(&d.clone(), INV_SQRT2, d);
        vm::vd_erf(&d.clone(), d);
        vm::vd_scale(&d.clone(), 0.5, d);
        vm::vd_shift(&d.clone(), 0.5, d);
    }
    // e_rt = exp(-rate * t)
    vm::vd_mul(&inp.rate, &inp.t, &mut e_rt);
    vm::vd_neg(&e_rt.clone(), &mut e_rt);
    vm::vd_exp(&e_rt.clone(), &mut e_rt);
    // call = price*cnd1 - e_rt*strike*cnd2
    vm::vd_mul(&inp.price, &d1, &mut call);
    vm::vd_mul(&e_rt, &inp.strike, &mut tmp);
    vm::vd_mul(&tmp.clone(), &d2, &mut tmp);
    vm::vd_sub(&call.clone(), &tmp, &mut call);
    // put = e_rt*strike - price + call
    vm::vd_mul(&e_rt, &inp.strike, &mut put);
    vm::vd_sub(&put.clone(), &inp.price, &mut put);
    vm::vd_add(&put.clone(), &call, &mut put);
    summarize(&call, &put)
}

/// Mozart: the same in-place sequence (27 annotated vector calls)
/// through `sa-vectormath`.
pub fn mkl_mozart(inp: &Inputs, ctx: &MozartContext) -> Result<Summary> {
    let price = SharedVec::from_vec(inp.price.clone());
    let strike = SharedVec::from_vec(inp.strike.clone());
    let t = SharedVec::from_vec(inp.t.clone());
    let rate = SharedVec::from_vec(inp.rate.clone());
    let vol = SharedVec::from_vec(inp.vol.clone());
    let (call, put) = mkl_chain(ctx, &price, &strike, &t, &rate, &vol)?;
    // Reading forces evaluation (the protect-flag trigger).
    Ok(summarize(call.as_slice(), put.as_slice()))
}

/// The annotated 27-call in-place chain over already-shared buffers,
/// returning the (still lazy) call/put price vectors. The serving
/// layer's generic coalescer hands in concatenated buffers and slices
/// the per-element outputs back per request; reading the returned
/// buffers forces evaluation.
pub fn mkl_chain(
    ctx: &MozartContext,
    price: &SharedVec<f64>,
    strike: &SharedVec<f64>,
    t: &SharedVec<f64>,
    rate: &SharedVec<f64>,
    vol: &SharedVec<f64>,
) -> Result<(SharedVec<f64>, SharedVec<f64>)> {
    use sa_vectormath as sa;
    let n = price.len();
    let d1: SharedVec<f64> = SharedVec::zeros(n);
    let d2: SharedVec<f64> = SharedVec::zeros(n);
    let tmp: SharedVec<f64> = SharedVec::zeros(n);
    let vol_sqrt: SharedVec<f64> = SharedVec::zeros(n);
    let e_rt: SharedVec<f64> = SharedVec::zeros(n);
    let call: SharedVec<f64> = SharedVec::zeros(n);
    let put: SharedVec<f64> = SharedVec::zeros(n);

    sa::vd_sqr(ctx, n, vol, &tmp)?;
    sa::vd_scale(ctx, n, &tmp, 0.5, &tmp)?;
    sa::vd_add(ctx, n, &tmp, rate, &tmp)?;
    sa::vd_sqrt(ctx, n, t, &vol_sqrt)?;
    sa::vd_mul(ctx, n, &vol_sqrt, vol, &vol_sqrt)?;
    sa::vd_div(ctx, n, price, strike, &d1)?;
    sa::vd_shift(ctx, n, &d1, -1.0, &d1)?;
    sa::vd_log1p(ctx, n, &d1, &d1)?;
    sa::vd_mul(ctx, n, &tmp, t, &tmp)?;
    sa::vd_add(ctx, n, &d1, &tmp, &d1)?;
    sa::vd_div(ctx, n, &d1, &vol_sqrt, &d1)?;
    sa::vd_sub(ctx, n, &d1, &vol_sqrt, &d2)?;
    for d in [&d1, &d2] {
        sa::vd_scale(ctx, n, d, INV_SQRT2, d)?;
        sa::vd_erf(ctx, n, d, d)?;
        sa::vd_scale(ctx, n, d, 0.5, d)?;
        sa::vd_shift(ctx, n, d, 0.5, d)?;
    }
    sa::vd_mul(ctx, n, rate, t, &e_rt)?;
    sa::vd_neg(ctx, n, &e_rt, &e_rt)?;
    sa::vd_exp(ctx, n, &e_rt, &e_rt)?;
    sa::vd_mul(ctx, n, price, &d1, &call)?;
    sa::vd_mul(ctx, n, &e_rt, strike, &tmp)?;
    sa::vd_mul(ctx, n, &tmp, &d2, &tmp)?;
    sa::vd_sub(ctx, n, &call, &tmp, &call)?;
    sa::vd_mul(ctx, n, &e_rt, strike, &put)?;
    sa::vd_sub(ctx, n, &put, price, &put)?;
    sa::vd_add(ctx, n, &put, &call, &put)?;
    Ok((call, put))
}

/// Fused (compiler stand-in).
pub fn fused(inp: &Inputs, threads: usize) -> Summary {
    let n = inp.price.len();
    let mut call = vec![0.0; n];
    let mut put = vec![0.0; n];
    fusedbaseline::black_scholes::run(
        &inp.price,
        &inp.strike,
        &inp.t,
        &inp.rate,
        &inp.vol,
        &mut call,
        &mut put,
        threads,
    );
    summarize(&call, &put)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::close;

    #[test]
    fn all_modes_agree() {
        let inp = generate(4000, 42);
        let base_np = numpy_base(&inp);
        let base_mkl = mkl_base(&inp);
        let f = fused(&inp, 2);
        let ctx = crate::mozart_context(2);
        let moz_np = numpy_mozart(&inp, &ctx).unwrap();
        let ctx = crate::mozart_context(2);
        let moz_mkl = mkl_mozart(&inp, &ctx).unwrap();

        for s in [&base_mkl, &f, &moz_np, &moz_mkl] {
            assert!(
                close(base_np.call_sum, s.call_sum, 1e-5),
                "call: {} vs {}",
                base_np.call_sum,
                s.call_sum
            );
            assert!(
                close(base_np.put_sum, s.put_sum, 1e-5),
                "put: {} vs {}",
                base_np.put_sum,
                s.put_sum
            );
        }
    }

    #[test]
    fn mkl_mozart_pipelines_into_one_stage() {
        let inp = generate(2000, 1);
        let ctx = crate::mozart_context(2);
        mkl_mozart(&inp, &ctx).unwrap();
        let stats = ctx.stats();
        assert_eq!(
            stats.stages, 1,
            "all 27 in-place vector calls share one stage"
        );
    }
}
