//! Nashville and Gotham image pipelines (Table 2; Figures 4n–o): the
//! instagram-filter operator chains over a large image. The base
//! library parallelizes each operator internally (like ImageMagick);
//! Mozart additionally pipelines row bands across operators.

use imagelib::Image;
use mozart_core::{MozartContext, Result};

/// Generate a synthetic photograph.
pub fn generate(width: usize, height: usize, seed: u64) -> Image {
    Image::synthetic(width, height, seed)
}

/// Result summary: mean channel value (content checksum).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Summary {
    /// Mean of all channel values.
    pub mean: f64,
}

fn summarize(img: &Image) -> Summary {
    let sum: f64 = img.data().iter().map(|&v| v as f64).sum();
    Summary {
        mean: sum / img.data().len() as f64,
    }
}

/// Base Nashville: eager library calls (internally parallel).
pub fn nashville_base(img: &Image) -> Summary {
    let t = imagelib::colortone(img, [0.13, 0.17, 0.43], false);
    let t = imagelib::colortone(&t, [0.97, 0.85, 0.68], true);
    let t = imagelib::gamma(&t, 1.2);
    let t = imagelib::modulate(&t, 100.0, 150.0, 100.0);
    summarize(&t)
}

/// Mozart Nashville: the chain through `sa-image`, pipelined per band.
pub fn nashville_mozart(img: &Image, ctx: &MozartContext) -> Result<Summary> {
    Ok(summarize(&nashville_mozart_image(img, ctx)?))
}

/// [`nashville_mozart`] returning the full filtered image instead of
/// its summary — the serving layer's generic coalescer stacks several
/// requests' photographs along the row axis, runs this chain once, and
/// slices each request's rows back out (every filter is per-pixel, so
/// the band boundaries are invisible in the output).
pub fn nashville_mozart_image(img: &Image, ctx: &MozartContext) -> Result<Image> {
    use sa_image as sa;
    // Rebind with `=` (not shadowing) so each intermediate handle drops
    // as soon as the next call captures it: only the final image is
    // user-visible at evaluation time, so the runtime discards the
    // intermediates' pieces instead of merging three full images nobody
    // reads (shadowed handles stay alive to end of scope and would all
    // plan as Merge outputs).
    let mut t = sa::colortone(ctx, img, [0.13, 0.17, 0.43], false)?;
    t = sa::colortone(ctx, &t, [0.97, 0.85, 0.68], true)?;
    t = sa::gamma(ctx, &t, 1.2)?;
    t = sa::modulate(ctx, &t, 100.0, 150.0, 100.0)?;
    sa::get_image(&t)
}

/// Mean channel value of an image (the per-request response checksum
/// used by the serving layer; serial over the image's own rows, so a
/// sliced-back coalesced band summarizes bit-identically to a separate
/// evaluation).
pub fn image_mean(img: &Image) -> f64 {
    summarize(img).mean
}

/// Fused Nashville (compiler stand-in).
pub fn nashville_fused(img: &Image, threads: usize) -> Summary {
    summarize(&fusedbaseline::images::nashville(img, threads))
}

/// Base Gotham: eager library calls (internally parallel).
pub fn gotham_base(img: &Image) -> Summary {
    let t = imagelib::modulate(img, 120.0, 10.0, 100.0);
    let t = imagelib::colorize(&t, [0.13, 0.16, 0.32], 0.2);
    let t = imagelib::gamma(&t, 0.5);
    let t = imagelib::contrast(&t, 6.0);
    summarize(&t)
}

/// Mozart Gotham.
pub fn gotham_mozart(img: &Image, ctx: &MozartContext) -> Result<Summary> {
    use sa_image as sa;
    // Rebind, don't shadow: see `nashville_mozart`.
    let mut t = sa::modulate(ctx, img, 120.0, 10.0, 100.0)?;
    t = sa::colorize(ctx, &t, [0.13, 0.16, 0.32], 0.2)?;
    t = sa::gamma(ctx, &t, 0.5)?;
    t = sa::contrast(ctx, &t, 6.0)?;
    Ok(summarize(&sa::get_image(&t)?))
}

/// Fused Gotham (compiler stand-in).
pub fn gotham_fused(img: &Image, threads: usize) -> Summary {
    summarize(&fusedbaseline::images::gotham(img, threads))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::close;

    #[test]
    fn nashville_modes_agree() {
        let img = generate(64, 48, 3);
        let a = nashville_base(&img);
        let f = nashville_fused(&img, 2);
        let ctx = crate::mozart_context(2);
        let m = nashville_mozart(&img, &ctx).unwrap();
        assert!(close(a.mean, f.mean, 1e-4), "{} vs {}", a.mean, f.mean);
        assert!(close(a.mean, m.mean, 1e-5), "{} vs {}", a.mean, m.mean);
    }

    #[test]
    fn gotham_modes_agree() {
        let img = generate(64, 48, 9);
        let a = gotham_base(&img);
        let f = gotham_fused(&img, 2);
        let ctx = crate::mozart_context(2);
        let m = gotham_mozart(&img, &ctx).unwrap();
        assert!(close(a.mean, f.mean, 1e-4), "{} vs {}", a.mean, f.mean);
        assert!(close(a.mean, m.mean, 1e-5), "{} vs {}", a.mean, m.mean);
    }

    #[test]
    fn image_pipeline_is_one_stage() {
        let img = generate(32, 40, 1);
        let ctx = crate::mozart_context(2);
        nashville_mozart(&img, &ctx).unwrap();
        assert_eq!(ctx.stats().stages, 1);
    }

    #[test]
    fn placement_merge_preserves_nashville_checksum() {
        // The placement fast path must be invisible in the output: the
        // summary checksum with `placement_merge` on equals the one
        // with it off (the copying baseline), bit for bit.
        let img = generate(48, 37, 5);
        let run = |placement: bool| {
            let mut cfg = mozart_core::Config::with_workers(3);
            cfg.batch_override = Some(4);
            cfg.placement_merge = placement;
            let ctx = crate::mozart_context_with(cfg);
            let s = nashville_mozart(&img, &ctx).unwrap();
            (s, ctx.stats())
        };
        let (on, stats_on) = run(true);
        let (off, stats_off) = run(false);
        assert_eq!(on.mean, off.mean, "checksums must match exactly");
        assert!(stats_on.placement_writes > 0, "{stats_on:?}");
        assert_eq!(stats_off.placement_writes, 0);
    }
}
