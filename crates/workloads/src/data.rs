//! Seeded synthetic data generators.
//!
//! The paper's datasets (Kaggle CSVs, the 311-requests dump, MovieLens,
//! the IMDb corpus) are not redistributable here, so each generator
//! produces data with the same schema, cardinalities in realistic
//! ranges, and the skew the workloads exercise (bad zip codes, name
//! prefixes, rating sparsity). Generators are deterministic per seed.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Option-pricing input columns: `(price, strike, t, rate, vol)`.
pub type BlackScholesColumns = (Vec<f64>, Vec<f64>, Vec<f64>, Vec<f64>, Vec<f64>);

/// Option-pricing inputs: `(price, strike, t, rate, vol)`.
pub fn black_scholes_inputs(n: usize, seed: u64) -> BlackScholesColumns {
    let mut r = StdRng::seed_from_u64(seed);
    let price = (0..n).map(|_| r.gen_range(10.0..200.0)).collect();
    let strike = (0..n).map(|_| r.gen_range(10.0..200.0)).collect();
    let t = (0..n).map(|_| r.gen_range(0.1..3.0)).collect();
    let rate = (0..n).map(|_| r.gen_range(0.005..0.05)).collect();
    let vol = (0..n).map(|_| r.gen_range(0.1..0.6)).collect();
    (price, strike, t, rate, vol)
}

/// GPS coordinates in radians: `(lat, lon)`.
pub fn haversine_inputs(n: usize, seed: u64) -> (Vec<f64>, Vec<f64>) {
    let mut r = StdRng::seed_from_u64(seed);
    let lat = (0..n).map(|_| r.gen_range(-1.4..1.4)).collect();
    let lon = (0..n).map(|_| r.gen_range(-3.1..3.1)).collect();
    (lat, lon)
}

/// Initial n-body state as flat coordinate/velocity/mass vectors.
pub fn nbody_inputs(n: usize, seed: u64) -> fusedbaseline::nbody::Bodies {
    let mut r = StdRng::seed_from_u64(seed);
    fusedbaseline::nbody::Bodies {
        x: (0..n).map(|_| r.gen_range(-1.0..1.0)).collect(),
        y: (0..n).map(|_| r.gen_range(-1.0..1.0)).collect(),
        z: (0..n).map(|_| r.gen_range(-1.0..1.0)).collect(),
        vx: vec![0.0; n],
        vy: vec![0.0; n],
        vz: vec![0.0; n],
        m: (0..n).map(|_| r.gen_range(1e5..1e7)).collect(),
    }
}

/// Raw 311-requests-style zip code strings, including the broken
/// values the Data Cleaning workload scrubs.
pub fn zip_codes(n: usize, seed: u64) -> Vec<String> {
    let mut r = StdRng::seed_from_u64(seed);
    (0..n)
        .map(|_| match r.gen_range(0..100) {
            0..=2 => "N/A".to_string(),
            3..=4 => "NO CLUE".to_string(),
            5 => "0".to_string(),
            6..=9 => format!(
                "{:05}-{:04}",
                r.gen_range(501..99951),
                r.gen_range(0..10000)
            ),
            _ => format!("{:05}", r.gen_range(501..99951)),
        })
        .collect()
}

/// Per-city population and crime statistics:
/// `(total_population, adult_population, num_robberies)`.
pub fn crime_inputs(n: usize, seed: u64) -> (Vec<f64>, Vec<f64>, Vec<f64>) {
    let mut r = StdRng::seed_from_u64(seed);
    let total: Vec<f64> = (0..n).map(|_| r.gen_range(1_000.0..5_000_000.0)).collect();
    let adult = total.iter().map(|t| t * r.gen_range(0.6..0.85)).collect();
    let robberies = total
        .iter()
        .map(|t| t * r.gen_range(0.0001..0.01))
        .collect();
    (total, adult, robberies)
}

const FIRST_NAMES: &[&str] = &[
    "Leslie",
    "Lesley",
    "Leslee",
    "Lesli",
    "James",
    "Mary",
    "Robert",
    "Linda",
    "John",
    "Patricia",
    "Michael",
    "Jennifer",
    "David",
    "Elizabeth",
    "William",
    "Barbara",
];

/// Baby-names rows: `(name, sex, year, births)`.
pub fn births_inputs(n: usize, seed: u64) -> (Vec<String>, Vec<String>, Vec<i64>, Vec<f64>) {
    let mut r = StdRng::seed_from_u64(seed);
    let names = (0..n)
        .map(|_| FIRST_NAMES[r.gen_range(0..FIRST_NAMES.len())].to_string())
        .collect();
    let sexes = (0..n)
        .map(|_| if r.gen_bool(0.5) { "F" } else { "M" }.to_string())
        .collect();
    let years = (0..n).map(|_| r.gen_range(1960..2010)).collect();
    let births = (0..n).map(|_| r.gen_range(5.0..5000.0)).collect();
    (names, sexes, years, births)
}

/// MovieLens-style tables.
pub struct MovieLensData {
    /// Ratings: `(user_id, movie_id, rating)`.
    pub ratings: (Vec<i64>, Vec<i64>, Vec<f64>),
    /// Users: `(user_id, gender)`.
    pub users: (Vec<i64>, Vec<String>),
    /// Movies: `(movie_id,)` — titles are implied by id.
    pub movies: Vec<i64>,
}

/// Ratings with `n` rows over `n/50 + 10` users and `n/100 + 20`
/// movies (MovieLens-like sparsity).
pub fn movielens_inputs(n: usize, seed: u64) -> MovieLensData {
    let mut r = StdRng::seed_from_u64(seed);
    let num_users = n / 50 + 10;
    let num_movies = n / 100 + 20;
    let user_ids: Vec<i64> = (0..num_users as i64).collect();
    let genders = (0..num_users)
        .map(|_| if r.gen_bool(0.5) { "F" } else { "M" }.to_string())
        .collect();
    let movie_ids: Vec<i64> = (0..num_movies as i64).collect();
    let ratings = (
        (0..n).map(|_| r.gen_range(0..num_users as i64)).collect(),
        (0..n).map(|_| r.gen_range(0..num_movies as i64)).collect(),
        (0..n).map(|_| r.gen_range(1..=10) as f64 * 0.5).collect(),
    );
    MovieLensData {
        ratings,
        users: (user_ids, genders),
        movies: movie_ids,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generators_are_deterministic() {
        assert_eq!(zip_codes(100, 1), zip_codes(100, 1));
        assert_ne!(zip_codes(100, 1), zip_codes(100, 2));
        let (p1, ..) = black_scholes_inputs(50, 3);
        let (p2, ..) = black_scholes_inputs(50, 3);
        assert_eq!(p1, p2);
    }

    #[test]
    fn zip_codes_include_bad_values() {
        let zips = zip_codes(5000, 7);
        assert!(zips.iter().any(|z| z == "N/A"));
        assert!(zips.iter().any(|z| z.len() > 5));
        assert!(zips.iter().filter(|z| z.len() == 5).count() > 4000);
    }

    #[test]
    fn births_include_lesl_prefix() {
        let (names, ..) = births_inputs(2000, 5);
        assert!(names.iter().any(|n| n.starts_with("Lesl")));
        assert!(names.iter().any(|n| !n.starts_with("Lesl")));
    }
}
