//! Recursive-descent parser for the annotation language.

use crate::ast::*;

/// Parse error with line information.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// 1-based line of the error.
    pub line: usize,
    /// Description.
    pub message: String,
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for ParseError {}

#[derive(Debug, Clone, PartialEq, Eq)]
enum Tok {
    Ident(String),
    Punct(char),
    Arrow,    // ->
    FatArrow, // =>
    At,       // @
    Star,     // *
    Underscore,
}

struct Lexer {
    toks: Vec<(usize, Tok)>,
    pos: usize,
}

fn lex(src: &str) -> Result<Lexer, ParseError> {
    let mut toks = Vec::new();
    for (lineno, line) in src.lines().enumerate() {
        let line_no = lineno + 1;
        let line = line.split("//").next().unwrap_or("");
        let mut chars = line.chars().peekable();
        while let Some(&c) = chars.peek() {
            match c {
                c if c.is_whitespace() => {
                    chars.next();
                }
                c if c.is_alphabetic() => {
                    let mut s = String::new();
                    while let Some(&c) = chars.peek() {
                        if c.is_alphanumeric() || c == '_' {
                            s.push(c);
                            chars.next();
                        } else {
                            break;
                        }
                    }
                    toks.push((line_no, Tok::Ident(s)));
                }
                '_' => {
                    chars.next();
                    // A lone underscore is the missing split type; an
                    // underscore-led identifier is still an identifier.
                    if chars.peek().map(|c| c.is_alphanumeric()).unwrap_or(false) {
                        let mut s = String::from("_");
                        while let Some(&c) = chars.peek() {
                            if c.is_alphanumeric() || c == '_' {
                                s.push(c);
                                chars.next();
                            } else {
                                break;
                            }
                        }
                        toks.push((line_no, Tok::Ident(s)));
                    } else {
                        toks.push((line_no, Tok::Underscore));
                    }
                }
                '-' => {
                    chars.next();
                    if chars.peek() == Some(&'>') {
                        chars.next();
                        toks.push((line_no, Tok::Arrow));
                    } else {
                        return Err(ParseError {
                            line: line_no,
                            message: "expected '->' after '-'".into(),
                        });
                    }
                }
                '=' => {
                    chars.next();
                    if chars.peek() == Some(&'>') {
                        chars.next();
                        toks.push((line_no, Tok::FatArrow));
                    } else {
                        return Err(ParseError {
                            line: line_no,
                            message: "expected '=>' after '='".into(),
                        });
                    }
                }
                '@' => {
                    chars.next();
                    toks.push((line_no, Tok::At));
                }
                '*' => {
                    chars.next();
                    toks.push((line_no, Tok::Star));
                }
                '(' | ')' | ',' | ':' | ';' | '.' => {
                    chars.next();
                    toks.push((line_no, Tok::Punct(c)));
                }
                other => {
                    return Err(ParseError {
                        line: line_no,
                        message: format!("unexpected character {other:?}"),
                    })
                }
            }
        }
    }
    Ok(Lexer { toks, pos: 0 })
}

impl Lexer {
    fn peek(&self) -> Option<&Tok> {
        self.toks.get(self.pos).map(|(_, t)| t)
    }

    fn line(&self) -> usize {
        self.toks
            .get(self.pos.min(self.toks.len().saturating_sub(1)))
            .map(|(l, _)| *l)
            .unwrap_or(0)
    }

    fn next(&mut self) -> Option<Tok> {
        let t = self.toks.get(self.pos).map(|(_, t)| t.clone());
        self.pos += 1;
        t
    }

    fn err(&self, message: impl Into<String>) -> ParseError {
        ParseError {
            line: self.line(),
            message: message.into(),
        }
    }

    fn expect_punct(&mut self, c: char) -> Result<(), ParseError> {
        match self.next() {
            Some(Tok::Punct(p)) if p == c => Ok(()),
            other => Err(self.err(format!("expected {c:?}, got {other:?}"))),
        }
    }

    fn expect_ident(&mut self) -> Result<String, ParseError> {
        match self.next() {
            Some(Tok::Ident(s)) => Ok(s),
            other => Err(self.err(format!("expected identifier, got {other:?}"))),
        }
    }
}

/// Parse an annotation file.
pub fn parse(src: &str) -> Result<AnnotationFile, ParseError> {
    let mut lx = lex(src)?;
    let mut out = AnnotationFile::default();
    while let Some(tok) = lx.peek().cloned() {
        match tok {
            Tok::Ident(kw) if kw == "splittype" => {
                lx.next();
                out.split_types.push(parse_splittype(&mut lx)?);
            }
            Tok::At => {
                lx.next();
                out.functions.extend(parse_splittable(&mut lx)?);
            }
            Tok::Ident(_) => {
                // `Name(args) => (exprs);` — a constructor declaration.
                out.constructors.push(parse_constructor(&mut lx)?);
            }
            other => return Err(lx.err(format!("unexpected token {other:?}"))),
        }
    }
    Ok(out)
}

fn parse_splittype(lx: &mut Lexer) -> Result<SplitTypeDecl, ParseError> {
    let line = lx.line();
    let name = lx.expect_ident()?;
    lx.expect_punct('(')?;
    let mut params = Vec::new();
    loop {
        match lx.next() {
            Some(Tok::Punct(')')) => break,
            Some(Tok::Ident(p)) => {
                params.push(p);
                match lx.peek() {
                    Some(Tok::Punct(',')) => {
                        lx.next();
                    }
                    Some(Tok::Punct(')')) => {}
                    other => return Err(lx.err(format!("expected ',' or ')', got {other:?}"))),
                }
            }
            other => return Err(lx.err(format!("expected parameter type, got {other:?}"))),
        }
    }
    lx.expect_punct(';')?;
    Ok(SplitTypeDecl { line, name, params })
}

fn parse_constructor(lx: &mut Lexer) -> Result<ConstructorDecl, ParseError> {
    let line = lx.line();
    let name = lx.expect_ident()?;
    lx.expect_punct('(')?;
    let args = parse_ident_list(lx)?;
    match lx.next() {
        Some(Tok::FatArrow) => {}
        other => return Err(lx.err(format!("expected '=>', got {other:?}"))),
    }
    lx.expect_punct('(')?;
    let mut exprs = Vec::new();
    let mut current = String::new();
    loop {
        match lx.next() {
            Some(Tok::Punct(')')) => {
                if !current.is_empty() {
                    exprs.push(current);
                }
                break;
            }
            Some(Tok::Punct(',')) => {
                exprs.push(std::mem::take(&mut current));
            }
            Some(Tok::Ident(s)) => {
                if !current.is_empty() {
                    current.push('.');
                }
                current.push_str(&s);
            }
            Some(Tok::Punct('.')) => {}
            other => return Err(lx.err(format!("unexpected token in constructor: {other:?}"))),
        }
    }
    lx.expect_punct(';')?;
    Ok(ConstructorDecl {
        line,
        name,
        args,
        exprs,
    })
}

fn parse_ident_list(lx: &mut Lexer) -> Result<Vec<String>, ParseError> {
    let mut out = Vec::new();
    loop {
        match lx.next() {
            Some(Tok::Punct(')')) => break,
            Some(Tok::Ident(s)) => {
                out.push(s);
                match lx.peek() {
                    Some(Tok::Punct(',')) => {
                        lx.next();
                    }
                    Some(Tok::Punct(')')) => {}
                    other => return Err(lx.err(format!("expected ',' or ')', got {other:?}"))),
                }
            }
            other => return Err(lx.err(format!("expected identifier, got {other:?}"))),
        }
    }
    Ok(out)
}

fn parse_type_expr(lx: &mut Lexer) -> Result<TypeExpr, ParseError> {
    match lx.next() {
        Some(Tok::Underscore) => Ok(TypeExpr::Missing),
        Some(Tok::Ident(name)) if name == "unknown" => Ok(TypeExpr::Unknown),
        Some(Tok::Ident(name)) => {
            if let Some(Tok::Punct('(')) = lx.peek() {
                lx.next();
                let ctor_args = parse_ident_list(lx)?;
                Ok(TypeExpr::Concrete { name, ctor_args })
            } else if name
                .chars()
                .all(|c| c.is_ascii_uppercase() || c.is_ascii_digit())
                && name.len() <= 2
            {
                Ok(TypeExpr::Generic(name))
            } else {
                // A bare split type name: no constructor args.
                Ok(TypeExpr::Concrete {
                    name,
                    ctor_args: Vec::new(),
                })
            }
        }
        other => Err(lx.err(format!("expected split type, got {other:?}"))),
    }
}

/// Parse `splittable(...) [-> ret] fn-decl;+` — "one or more functions"
/// may share an SA (Listing 3).
fn parse_splittable(lx: &mut Lexer) -> Result<Vec<AnnotatedFn>, ParseError> {
    let line = lx.line();
    match lx.next() {
        Some(Tok::Ident(kw)) if kw == "splittable" => {}
        other => return Err(lx.err(format!("expected 'splittable' after '@', got {other:?}"))),
    }
    lx.expect_punct('(')?;
    let mut args = Vec::new();
    loop {
        match lx.peek() {
            Some(Tok::Punct(')')) => {
                lx.next();
                break;
            }
            _ => {
                let line = lx.line();
                let mut mutable = false;
                let mut name = lx.expect_ident()?;
                if name == "mut" {
                    mutable = true;
                    name = lx.expect_ident()?;
                }
                lx.expect_punct(':')?;
                let ty = parse_type_expr(lx)?;
                args.push(ArgAnnotation {
                    line,
                    mutable,
                    name,
                    ty,
                });
                if let Some(Tok::Punct(',')) = lx.peek() {
                    lx.next();
                }
            }
        }
    }
    let ret = if let Some(Tok::Arrow) = lx.peek() {
        lx.next();
        Some(parse_type_expr(lx)?)
    } else {
        None
    };

    // One or more C function declarations until something that isn't a
    // declaration start.
    let mut fns = Vec::new();
    loop {
        let f = parse_c_decl(lx, line, &args, &ret)?;
        fns.push(f);
        match lx.peek() {
            Some(Tok::Ident(kw)) if kw != "splittype" => {
                // Could be another shared declaration; attempt it.
                let save = lx.pos;
                match parse_c_decl(lx, line, &args, &ret) {
                    Ok(f) => fns.push(f),
                    Err(_) => {
                        lx.pos = save;
                        break;
                    }
                }
            }
            _ => break,
        }
    }
    Ok(fns)
}

fn parse_c_decl(
    lx: &mut Lexer,
    line: usize,
    args: &[ArgAnnotation],
    ret: &Option<TypeExpr>,
) -> Result<AnnotatedFn, ParseError> {
    let c_ret = lx.expect_ident()?;
    let name = lx.expect_ident()?;
    lx.expect_punct('(')?;
    let mut params = Vec::new();
    loop {
        match lx.peek() {
            Some(Tok::Punct(')')) => {
                lx.next();
                break;
            }
            _ => {
                let mut ctype = lx.expect_ident()?;
                // Allow multi-word types and pointers: `unsigned long`,
                // `double *`.
                loop {
                    match lx.peek() {
                        Some(Tok::Star) => {
                            lx.next();
                            ctype.push('*');
                        }
                        Some(Tok::Ident(_)) => {
                            // The last identifier before ',' or ')' is
                            // the parameter name.
                            let save = lx.pos;
                            let word = lx.expect_ident()?;
                            match lx.peek() {
                                Some(Tok::Punct(',')) | Some(Tok::Punct(')')) => {
                                    params.push(CParam {
                                        ctype: ctype.clone(),
                                        name: word,
                                    });
                                    break;
                                }
                                _ => {
                                    let _ = save;
                                    ctype.push(' ');
                                    ctype.push_str(&word);
                                }
                            }
                        }
                        other => {
                            return Err(
                                lx.err(format!("unexpected token in parameter list: {other:?}"))
                            )
                        }
                    }
                }
                if let Some(Tok::Punct(',')) = lx.peek() {
                    lx.next();
                }
            }
        }
    }
    lx.expect_punct(';')?;

    // Every annotated argument must appear in the declaration.
    for a in args {
        if !params.iter().any(|p| p.name == a.name) {
            return Err(lx.err(format!(
                "annotated argument {:?} not found in declaration of {name}",
                a.name
            )));
        }
    }
    Ok(AnnotatedFn {
        line,
        args: args.to_vec(),
        ret: ret.clone(),
        c_ret,
        name,
        params,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    const LISTING_2: &str = r#"
        // SAs for two functions in Intel MKL (Listing 2).
        @splittable(
            size: SizeSplit(size), a: ArraySplit(size),
            mut out: ArraySplit(size))
        void vdLog1p(long size, double *a, double *out);

        @splittable(
            size: SizeSplit(size), a: ArraySplit(size),
            b: ArraySplit(size), mut out: ArraySplit(size))
        void vdAdd(long size, double *a, double *b, double *out);
    "#;

    #[test]
    fn parses_listing_2() {
        let f = parse(LISTING_2).unwrap();
        assert_eq!(f.functions.len(), 2);
        let log1p = &f.functions[0];
        assert_eq!(log1p.name, "vdLog1p");
        assert_eq!(log1p.args.len(), 3);
        assert!(!log1p.args[0].mutable);
        assert!(log1p.args[2].mutable);
        assert_eq!(
            log1p.args[1].ty,
            TypeExpr::Concrete {
                name: "ArraySplit".into(),
                ctor_args: vec!["size".into()]
            }
        );
        assert_eq!(log1p.params.len(), 3);
        assert_eq!(log1p.params[1].ctype, "double*");
        let add = &f.functions[1];
        assert_eq!(add.name, "vdAdd");
        assert_eq!(add.args.len(), 4);
    }

    #[test]
    fn parses_split_types_and_constructors() {
        let src = r#"
            splittype MatrixSplit(int, int, int);
            MatrixSplit(m, axis) => (m.rows, m.cols, axis);
        "#;
        let f = parse(src).unwrap();
        assert_eq!(f.split_types.len(), 1);
        assert_eq!(f.split_types[0].name, "MatrixSplit");
        assert_eq!(f.split_types[0].params.len(), 3);
        let c = &f.constructors[0];
        assert_eq!(c.args, vec!["m", "axis"]);
        assert_eq!(c.exprs, vec!["m.rows", "m.cols", "axis"]);
    }

    #[test]
    fn parses_generics_unknown_and_ret() {
        // Listing 4's Ex. 2 and Ex. 4.
        let src = r#"
            @splittable(left: S, right: S) -> S
            matrix add(matrix left, matrix right);

            @splittable(m: S) -> unknown
            matrix filterZeroedRows(matrix m);
        "#;
        let f = parse(src).unwrap();
        assert_eq!(f.functions.len(), 2);
        assert_eq!(f.functions[0].args[0].ty, TypeExpr::Generic("S".into()));
        assert_eq!(f.functions[0].ret, Some(TypeExpr::Generic("S".into())));
        assert_eq!(f.functions[1].ret, Some(TypeExpr::Unknown));
    }

    #[test]
    fn parses_missing_and_mut() {
        // Listing 4's Ex. 1.
        let src = r#"
            @splittable(mut m: MatrixSplit(m, axis), axis: _)
            void normalizeMatrixAxis(matrix m, int axis);
        "#;
        let f = parse(src).unwrap();
        let g = &f.functions[0];
        assert!(g.args[0].mutable);
        assert_eq!(g.args[1].ty, TypeExpr::Missing);
        assert_eq!(
            g.args[0].ty,
            TypeExpr::Concrete {
                name: "MatrixSplit".into(),
                ctor_args: vec!["m".into(), "axis".into()]
            }
        );
    }

    #[test]
    fn rejects_annotation_for_undeclared_argument() {
        let src = r#"
            @splittable(bogus: _)
            void f(int x);
        "#;
        let e = parse(src).unwrap_err();
        assert!(e.message.contains("bogus"), "{e}");
    }

    #[test]
    fn reports_line_numbers() {
        let src = "splittype Broken(int;\n";
        let e = parse(src).unwrap_err();
        assert_eq!(e.line, 1);
    }
}
