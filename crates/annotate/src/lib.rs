//! # mozart-annotate — the SA parser and wrapper generator
//!
//! The Rust analogue of the paper's `annotate` command-line tool
//! (§4.1): "An annotator registers split types, the splitting API, and
//! SAs over C++ functions by using a command line tool we have built
//! called annotate. This tool takes these definitions as input and
//! generates namespaced wrapper functions around each annotated library
//! function."
//!
//! The [`parser`] accepts the paper's annotation syntax (Listing 3):
//! `splittype` declarations, constructor mappings, and
//! `@splittable(...)` SAs over C-style declarations. The [`codegen`]
//! emits a Rust wrapper module in the same style as the hand-written
//! `sa-*` crates. The tool also performs the §7.1 sanity check that a
//! split type is always used consistently.

#![warn(missing_docs)]

pub mod ast;
pub mod check;
pub mod codegen;
pub mod parser;

pub use ast::{AnnotatedFn, AnnotationFile, TypeExpr};
pub use check::{check, Diagnostic};
pub use codegen::generate;
pub use parser::{parse, ParseError};

use std::collections::HashMap;

/// The §7.1 lint: "the annotate tool ... will ensure that a split type
/// is always associated with the same concrete type". Here we check the
/// analogous property available at parse time: every concrete split
/// type is always applied to C parameters of one type.
pub fn check_consistent_types(file: &AnnotationFile) -> Result<(), String> {
    let mut seen: HashMap<&str, &str> = HashMap::new();
    for f in &file.functions {
        for a in &f.args {
            if let TypeExpr::Concrete { name, .. } = &a.ty {
                let Some(param) = f.params.iter().find(|p| p.name == a.name) else {
                    continue;
                };
                match seen.get(name.as_str()) {
                    None => {
                        seen.insert(name, &param.ctype);
                    }
                    Some(t) if *t == param.ctype => {}
                    Some(t) => {
                        return Err(format!(
                            "split type {name} applied to both {t:?} and {:?} (in {})",
                            param.ctype, f.name
                        ))
                    }
                }
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn consistency_check_accepts_uniform_use() {
        let src = r#"
            @splittable(size: SizeSplit(size), mut a: ArraySplit(size))
            void f(long size, double *a);
            @splittable(size: SizeSplit(size), mut b: ArraySplit(size))
            void g(long size, double *b);
        "#;
        let file = parse(src).unwrap();
        assert!(check_consistent_types(&file).is_ok());
    }

    #[test]
    fn consistency_check_rejects_mixed_use() {
        let src = r#"
            @splittable(mut a: ArraySplit(a))
            void f(double *a);
            @splittable(mut b: ArraySplit(b))
            void g(long b);
        "#;
        let file = parse(src).unwrap();
        let err = check_consistent_types(&file).unwrap_err();
        assert!(err.contains("ArraySplit"), "{err}");
    }
}
