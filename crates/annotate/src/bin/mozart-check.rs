//! `mozart-check`: static soundness verification for split annotations.
//!
//! Two layers, one command:
//!
//! 1. **Builtin annotations** — registers every workload integration's
//!    defaults, then runs the runtime annotation checker
//!    ([`mozart_core::verify::check_annotation`]) and the advisory lints
//!    ([`mozart_core::verify::lint_annotation`]) over each registered
//!    [`Annotation`](mozart_core::Annotation).
//! 2. **`.sa` files** — each path argument (a file, or a directory
//!    walked recursively for `*.sa`) is parsed and run through the
//!    DSL-level checker ([`mozart_annotate::check()`]), producing
//!    line-numbered diagnostics.
//!
//! Exits nonzero on any diagnostic, so CI can gate on a clean tree:
//!
//! ```text
//! mozart-check            # builtins + corpus/sa (when it exists)
//! mozart-check corpus/sa  # builtins + every .sa file under corpus/sa
//! ```
//!
//! With no arguments the checker also walks `corpus/sa` relative to
//! the working directory when present, so a bare run from the repo
//! root covers the whole positive surface.

use std::path::{Path, PathBuf};
use std::process::ExitCode;

fn collect_sa_files(path: &Path, out: &mut Vec<PathBuf>) -> std::io::Result<()> {
    if path.is_dir() {
        let mut entries: Vec<_> = std::fs::read_dir(path)?
            .collect::<std::io::Result<Vec<_>>>()?
            .into_iter()
            .map(|e| e.path())
            .collect();
        entries.sort();
        for entry in entries {
            collect_sa_files(&entry, out)?;
        }
    } else if path.extension().is_some_and(|e| e == "sa") {
        out.push(path.to_path_buf());
    }
    Ok(())
}

fn main() -> ExitCode {
    let mut diagnostics = 0usize;

    // Layer 1 over every builtin annotation the integrations register.
    workloads::register_all_defaults();
    let builtins = mozart_core::registry::registered_annotations();
    for annot in &builtins {
        for err in mozart_core::verify::check_annotation(annot) {
            eprintln!("mozart-check: builtin: {err}");
            diagnostics += 1;
        }
        // Builtins must also be lint-clean: a Concat-strategy split
        // type without its concat() capability silently disables the
        // planner's split-form rewrite.
        for lint in mozart_core::verify::lint_annotation(annot) {
            eprintln!("mozart-check: builtin: {lint}");
            diagnostics += 1;
        }
    }

    // DSL checks over every .sa file named on the command line; with
    // no arguments, fall back to the repo's positive corpus when the
    // working directory has one.
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    if args.is_empty() && Path::new("corpus/sa").is_dir() {
        args.push("corpus/sa".to_string());
    }
    let mut files = Vec::new();
    for arg in &args {
        if let Err(e) = collect_sa_files(Path::new(arg), &mut files) {
            eprintln!("mozart-check: {arg}: {e}");
            diagnostics += 1;
        }
    }
    let num_files = files.len();
    for file in files {
        let display = file.display();
        let src = match std::fs::read_to_string(&file) {
            Ok(s) => s,
            Err(e) => {
                eprintln!("mozart-check: {display}: {e}");
                diagnostics += 1;
                continue;
            }
        };
        let parsed = match mozart_annotate::parse(&src) {
            Ok(f) => f,
            Err(e) => {
                eprintln!("mozart-check: {display}: {e}");
                diagnostics += 1;
                continue;
            }
        };
        if let Err(e) = mozart_annotate::check_consistent_types(&parsed) {
            eprintln!("mozart-check: {display}: {e}");
            diagnostics += 1;
        }
        for d in mozart_annotate::check(&parsed) {
            eprintln!("mozart-check: {display}: {d}");
            diagnostics += 1;
        }
    }

    eprintln!(
        "mozart-check: {} builtin annotation(s), {num_files} .sa file(s), \
         {diagnostics} diagnostic(s)",
        builtins.len(),
    );
    if diagnostics == 0 {
        ExitCode::SUCCESS
    } else {
        ExitCode::from(1)
    }
}
