//! The `annotate` CLI: parse an SA file and emit a Rust wrapper module.
//!
//! Usage: `annotate <file.sa> [module-doc]`

use std::process::ExitCode;

fn main() -> ExitCode {
    let mut args = std::env::args().skip(1);
    let Some(path) = args.next() else {
        eprintln!("usage: annotate <file.sa> [module-doc]");
        return ExitCode::from(2);
    };
    let doc = args
        .next()
        .unwrap_or_else(|| format!("Wrappers generated from {path}"));
    let src = match std::fs::read_to_string(&path) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("annotate: cannot read {path}: {e}");
            return ExitCode::from(1);
        }
    };
    let file = match mozart_annotate::parse(&src) {
        Ok(f) => f,
        Err(e) => {
            eprintln!("annotate: {path}: {e}");
            return ExitCode::from(1);
        }
    };
    if let Err(e) = mozart_annotate::check_consistent_types(&file) {
        eprintln!("annotate: {path}: {e}");
        return ExitCode::from(1);
    }
    print!("{}", mozart_annotate::generate(&file, &doc));
    ExitCode::SUCCESS
}
