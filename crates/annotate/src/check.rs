//! Static soundness checks over a parsed annotation file.
//!
//! This is the DSL-level half of `mozart-check` (the runtime half —
//! [`mozart_core::verify`]-style checks over built `Annotation` values —
//! lives in `crates/core`). Every rule here is checkable from the `.sa`
//! text alone, before any splitter code exists:
//!
//! * generics bind consistently: a generic used in the return position
//!   must also type at least one argument, and an argument-position
//!   generic is fine on its own;
//! * constructor arguments name declared function parameters and never
//!   a `mut` argument (in-place mutation may leave the parameter's
//!   value stale by the time a replayed plan re-constructs);
//! * `unknown` appears only in the return position;
//! * `_` (missing) never types the return;
//! * `splittype` declarations are unique, constructors refer to a
//!   declared split type with matching arity, and every declaration is
//!   actually used (dead declarations are flagged);
//! * argument names within one `@splittable` are unique.
//!
//! Diagnostics carry the 1-based source line so editors and CI logs can
//! jump straight to the offending declaration.

use std::collections::{HashMap, HashSet};

use crate::ast::{AnnotationFile, TypeExpr};

/// One finding, anchored to a source line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// 1-based line the finding anchors to.
    pub line: usize,
    /// Human-readable description of the defect.
    pub message: String,
}

impl std::fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

/// Run every DSL-level check over `file`, returning all findings in
/// source order. An empty vector means the file is sound.
pub fn check(file: &AnnotationFile) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    check_split_type_decls(file, &mut out);
    check_functions(file, &mut out);
    out.sort_by_key(|d| d.line);
    out
}

fn check_split_type_decls(file: &AnnotationFile, out: &mut Vec<Diagnostic>) {
    // Duplicate declarations.
    let mut seen: HashMap<&str, usize> = HashMap::new();
    for st in &file.split_types {
        if let Some(first) = seen.get(st.name.as_str()) {
            out.push(Diagnostic {
                line: st.line,
                message: format!(
                    "duplicate splittype declaration `{}` (first declared on line {first})",
                    st.name
                ),
            });
        } else {
            seen.insert(&st.name, st.line);
        }
    }

    let arity: HashMap<&str, (usize, usize)> = file
        .split_types
        .iter()
        .map(|st| (st.name.as_str(), (st.params.len(), st.line)))
        .collect();

    // Constructors must target a declared split type with matching arity.
    for ctor in &file.constructors {
        match arity.get(ctor.name.as_str()) {
            None => out.push(Diagnostic {
                line: ctor.line,
                message: format!("constructor for undeclared splittype `{}`", ctor.name),
            }),
            Some((n, _)) if *n != ctor.exprs.len() => out.push(Diagnostic {
                line: ctor.line,
                message: format!(
                    "constructor for `{}` produces {} parameter(s), but the \
                     splittype declares {n}",
                    ctor.name,
                    ctor.exprs.len()
                ),
            }),
            Some(_) => {}
        }
    }

    // Dead declarations: never named by a constructor or a type expr.
    let mut used: HashSet<&str> = file.constructors.iter().map(|c| c.name.as_str()).collect();
    for f in &file.functions {
        let exprs = f.args.iter().map(|a| &a.ty).chain(f.ret.iter());
        for ty in exprs {
            if let TypeExpr::Concrete { name, .. } = ty {
                used.insert(name);
            }
        }
    }
    for st in &file.split_types {
        if !used.contains(st.name.as_str()) {
            out.push(Diagnostic {
                line: st.line,
                message: format!(
                    "splittype `{}` is declared but never used by a constructor \
                     or annotation",
                    st.name
                ),
            });
        }
    }
}

fn check_functions(file: &AnnotationFile, out: &mut Vec<Diagnostic>) {
    for f in &file.functions {
        let mut_args: HashSet<&str> = f
            .args
            .iter()
            .filter(|a| a.mutable)
            .map(|a| a.name.as_str())
            .collect();

        // Unique argument names.
        let mut names: HashSet<&str> = HashSet::new();
        for a in &f.args {
            if !names.insert(&a.name) {
                out.push(Diagnostic {
                    line: a.line,
                    message: format!("{}: duplicate annotated argument `{}`", f.name, a.name),
                });
            }
        }

        // Argument-position rules.
        let mut arg_generics: HashSet<&str> = HashSet::new();
        for a in &f.args {
            match &a.ty {
                TypeExpr::Unknown => out.push(Diagnostic {
                    line: a.line,
                    message: format!(
                        "{}: argument `{}` is typed `unknown`; unknown describes \
                         values whose split shape exists only after the call and \
                         is legal only in the return position",
                        f.name, a.name
                    ),
                }),
                TypeExpr::Generic(g) => {
                    arg_generics.insert(g);
                }
                TypeExpr::Concrete { name, ctor_args } => {
                    check_ctor_args(f, name, ctor_args, a.line, &mut_args, out);
                }
                TypeExpr::Missing => {}
            }
        }

        // Return-position rules.
        if let Some(ret) = &f.ret {
            match ret {
                TypeExpr::Missing => out.push(Diagnostic {
                    line: f.line,
                    message: format!(
                        "{}: return value typed `_`; a returned value must have \
                         a real split type (or `unknown`) so Mozart can merge it",
                        f.name
                    ),
                }),
                TypeExpr::Generic(g) => {
                    if !arg_generics.contains(g.as_str()) {
                        out.push(Diagnostic {
                            line: f.line,
                            message: format!(
                                "{}: return generic `{g}` is not bound by any \
                                 argument; the planner could never infer its \
                                 split type",
                                f.name
                            ),
                        });
                    }
                }
                TypeExpr::Concrete { name, ctor_args } => {
                    check_ctor_args(f, name, ctor_args, f.line, &mut_args, out);
                }
                TypeExpr::Unknown => {}
            }
        }
    }
}

fn check_ctor_args(
    f: &crate::ast::AnnotatedFn,
    split_type: &str,
    ctor_args: &[String],
    line: usize,
    mut_args: &HashSet<&str>,
    out: &mut Vec<Diagnostic>,
) {
    for ca in ctor_args {
        if f.params.iter().all(|p| p.name != *ca) {
            out.push(Diagnostic {
                line,
                message: format!(
                    "{}: constructor argument `{ca}` of {split_type} does not \
                     name a declared parameter",
                    f.name
                ),
            });
        } else if mut_args.contains(ca.as_str()) {
            out.push(Diagnostic {
                line,
                message: format!(
                    "{}: constructor argument `{ca}` of {split_type} names a \
                     `mut` argument; derive split parameters from an explicit \
                     size argument instead (the MKL convention), never from \
                     storage the call mutates",
                    f.name
                ),
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;

    fn diags(src: &str) -> Vec<Diagnostic> {
        check(&parse(src).unwrap())
    }

    #[test]
    fn listing_2_is_clean() {
        let src = r#"
            @splittable(
                size: SizeSplit(size), a: ArraySplit(size),
                mut out: ArraySplit(size))
            void vdLog1p(long size, double *a, double *out);
        "#;
        assert!(diags(src).is_empty());
    }

    #[test]
    fn ctor_arg_naming_mut_position_is_flagged_with_line() {
        let src = "@splittable(mut out: ArraySplit(out))\nvoid scale(double *out);\n";
        let d = diags(src);
        assert_eq!(d.len(), 1);
        assert_eq!(d[0].line, 1);
        assert!(d[0].message.contains("`mut` argument"), "{}", d[0].message);
    }

    #[test]
    fn unknown_argument_is_flagged() {
        let src = "@splittable(x: unknown)\nvoid f(double *x);\n";
        let d = diags(src);
        assert_eq!(d.len(), 1);
        assert!(d[0].message.contains("unknown"), "{}", d[0].message);
    }

    #[test]
    fn unbound_return_generic_is_flagged() {
        let src = "@splittable(x: _) -> S\ndouble f(double x);\n";
        let d = diags(src);
        assert_eq!(d.len(), 1);
        assert!(d[0].message.contains("generic `S`"), "{}", d[0].message);
    }

    #[test]
    fn duplicate_and_dead_splittypes_are_flagged() {
        let src =
            "splittype A(int);\nsplittype A(int);\nsplittype Dead(int);\nA(size) => (size);\n";
        let d = diags(src);
        assert_eq!(d.len(), 2, "{d:?}");
        assert!(d[0].message.contains("duplicate"), "{}", d[0].message);
        assert_eq!(d[0].line, 2);
        assert!(d[1].message.contains("never used"), "{}", d[1].message);
        assert_eq!(d[1].line, 3);
    }

    #[test]
    fn constructor_arity_mismatch_is_flagged() {
        let src = "splittype M(int, int);\nM(m) => (m.rows);\n";
        let d = diags(src);
        assert_eq!(d.len(), 1);
        assert!(d[0].message.contains("declares 2"), "{}", d[0].message);
    }
}
