//! AST for the split annotation language (Listing 3 of the paper):
//!
//! ```text
//! splittype ArraySplit(int);
//! ArraySplit(size) => (size);
//!
//! @splittable(size: SizeSplit(size), a: ArraySplit(size),
//!             mut out: ArraySplit(size))
//! void vdAdd(long size, double *a, double *b, double *out);
//! ```

/// A split type declaration: name and parameter arity.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SplitTypeDecl {
    /// 1-based source line of the declaration.
    pub line: usize,
    /// Split type name `N`.
    pub name: String,
    /// Parameter type names (the paper uses `int` throughout).
    pub params: Vec<String>,
}

/// A constructor declaration `Name(a, b) => (expr-args)`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ConstructorDecl {
    /// 1-based source line of the declaration.
    pub line: usize,
    /// Split type name.
    pub name: String,
    /// Constructor argument names.
    pub args: Vec<String>,
    /// Parameter expressions (kept as raw text; the runtime evaluates
    /// them through the splitting API).
    pub exprs: Vec<String>,
}

/// The split type expression assigned to one argument.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TypeExpr {
    /// `Name(arg, ...)` — a concrete split type with constructor args.
    Concrete {
        /// Split type name.
        name: String,
        /// Names of the function arguments fed to the constructor.
        ctor_args: Vec<String>,
    },
    /// A single uppercase identifier used as a generic (`S`).
    Generic(String),
    /// `_` — the missing split type.
    Missing,
    /// `unknown`.
    Unknown,
}

/// One annotated argument.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ArgAnnotation {
    /// 1-based source line of the annotation.
    pub line: usize,
    /// `mut` tag.
    pub mutable: bool,
    /// Argument name.
    pub name: String,
    /// Assigned split type.
    pub ty: TypeExpr,
}

/// A C-style parameter in the function declaration.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CParam {
    /// Type text, e.g. `double *`.
    pub ctype: String,
    /// Parameter name.
    pub name: String,
}

/// An annotated function.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AnnotatedFn {
    /// 1-based source line of the `@splittable` annotation.
    pub line: usize,
    /// Argument annotations, in order.
    pub args: Vec<ArgAnnotation>,
    /// Return value's split type, if annotated.
    pub ret: Option<TypeExpr>,
    /// C return type text.
    pub c_ret: String,
    /// Function name.
    pub name: String,
    /// C parameters.
    pub params: Vec<CParam>,
}

/// A parsed annotation file.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct AnnotationFile {
    /// Declared split types.
    pub split_types: Vec<SplitTypeDecl>,
    /// Declared constructors.
    pub constructors: Vec<ConstructorDecl>,
    /// Annotated functions.
    pub functions: Vec<AnnotatedFn>,
}

impl AnnotatedFn {
    /// Index of the annotated argument named `name`.
    pub fn arg_index(&self, name: &str) -> Option<usize> {
        self.args.iter().position(|a| a.name == name)
    }
}
