//! Property tests for the annotation-language parser: randomly
//! generated well-formed SA files must parse, round-trip their
//! structure, and generate compilable-looking wrapper code.

use proptest::prelude::*;

use mozart_annotate::{generate, parse, TypeExpr};

fn ident() -> impl Strategy<Value = String> {
    "[a-z][a-zA-Z0-9]{0,8}".prop_map(|s| s)
}

fn type_name() -> impl Strategy<Value = String> {
    "[A-Z][a-zA-Z0-9]{2,10}Split".prop_map(|s| s)
}

#[derive(Debug, Clone)]
struct ArgSpec {
    mutable: bool,
    name: String,
    ty: GenTy,
}

#[derive(Debug, Clone)]
enum GenTy {
    Missing,
    Generic,
    Concrete(String, bool), // name, with ctor arg (self)
}

fn arg_spec() -> impl Strategy<Value = ArgSpec> {
    (
        any::<bool>(),
        ident(),
        prop_oneof![
            Just(GenTy::Missing),
            Just(GenTy::Generic),
            (type_name(), any::<bool>()).prop_map(|(n, c)| GenTy::Concrete(n, c)),
        ],
    )
        .prop_map(|(mutable, name, ty)| ArgSpec { mutable, name, ty })
}

fn render(fn_name: &str, args: &[ArgSpec], with_ret: bool) -> String {
    let mut sa = String::from("@splittable(");
    for (i, a) in args.iter().enumerate() {
        if i > 0 {
            sa.push_str(", ");
        }
        if a.mutable {
            sa.push_str("mut ");
        }
        sa.push_str(&a.name);
        sa.push_str(": ");
        match &a.ty {
            GenTy::Missing => sa.push('_'),
            GenTy::Generic => sa.push('S'),
            GenTy::Concrete(n, true) => sa.push_str(&format!("{n}({})", a.name)),
            GenTy::Concrete(n, false) => sa.push_str(n),
        }
    }
    sa.push(')');
    if with_ret {
        sa.push_str(" -> S");
    }
    sa.push('\n');
    let ret_ty = if with_ret { "matrix" } else { "void" };
    sa.push_str(&format!("{ret_ty} {fn_name}("));
    for (i, a) in args.iter().enumerate() {
        if i > 0 {
            sa.push_str(", ");
        }
        sa.push_str(&format!("double *{}", a.name));
    }
    sa.push_str(");\n");
    sa
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn random_well_formed_sas_parse(
        fn_name in ident(),
        mut args in prop::collection::vec(arg_spec(), 1..6),
        with_ret in any::<bool>(),
    ) {
        // Unique argument names.
        args.dedup_by(|a, b| a.name == b.name);
        let mut seen = std::collections::HashSet::new();
        args.retain(|a| seen.insert(a.name.clone()));
        // `-> S` needs a generic argument to bind it at runtime, but the
        // parser itself accepts it regardless.
        let src = render(&fn_name, &args, with_ret);
        let parsed = parse(&src).unwrap_or_else(|e| panic!("parse failed for:\n{src}\n{e}"));
        prop_assert_eq!(parsed.functions.len(), 1);
        let f = &parsed.functions[0];
        prop_assert_eq!(&f.name, &fn_name);
        prop_assert_eq!(f.args.len(), args.len());
        for (got, want) in f.args.iter().zip(&args) {
            prop_assert_eq!(got.mutable, want.mutable);
            prop_assert_eq!(&got.name, &want.name);
            match (&got.ty, &want.ty) {
                (TypeExpr::Missing, GenTy::Missing) => {}
                (TypeExpr::Generic(g), GenTy::Generic) => prop_assert_eq!(g, "S"),
                (TypeExpr::Concrete { name, ctor_args }, GenTy::Concrete(n, with_arg)) => {
                    prop_assert_eq!(name, n);
                    prop_assert_eq!(ctor_args.len(), *with_arg as usize);
                }
                (g, w) => prop_assert!(false, "type mismatch: {g:?} vs {w:?}"),
            }
        }
        prop_assert_eq!(f.ret.is_some(), with_ret);

        // Codegen runs and mentions the wrapper + every argument name.
        let code = generate(&parsed, "prop test");
        let needle = format!("\"{fn_name}\"");
        prop_assert!(code.contains(&needle));
        for a in &args {
            let needle = format!("\"{}\"", a.name);
            prop_assert!(code.contains(&needle));
        }
    }

    #[test]
    fn garbage_never_panics(src in "[ -~\n]{0,200}") {
        // Arbitrary printable input: parsing may fail, but must not panic.
        let _ = parse(&src);
    }
}
