//! Golden-output check for the `annotate` code generator (CI gate):
//! the emitted wrapper module for a fixed Listing-2-style annotation
//! source must match the checked-in `golden/vectormath.rs.golden`
//! byte for byte. A deliberate codegen change regenerates the golden
//! file (see the test's failure message); an accidental one fails CI.
//!
//! The golden file pins the **v2 splitting API surface**: skeleton
//! `Splitter` impls with the single `merge_strategy` capability probe,
//! the three-argument `merge`, and a companion `Concat` capability
//! skeleton (`concat`/`slice_back` stubs) per split type — never the
//! removed v1 methods (`merge_hinted`, placement trio, boolean probes).

use mozart_annotate::{codegen, parser};

const SOURCE: &str = r#"
splittype SizeSplit(size);
splittype ArraySplit(length);
ArraySplit(size) => (size);

@splittable(
    size: SizeSplit(size), a: ArraySplit(size),
    b: ArraySplit(size), mut out: ArraySplit(size))
void vdAdd(long size, double *a, double *b, double *out);

@splittable(size: SizeSplit(size), a: ArraySplit(size), mut out: ArraySplit(size))
void vdLog1p(long size, double *a, double *out);

@splittable(left: S, right: S) -> S
matrix add(matrix left, matrix right);

@splittable(m: S) -> unknown
matrix filterZeroedRows(matrix m);
"#;

#[test]
fn codegen_matches_golden_v2_output() {
    let file = parser::parse(SOURCE).expect("fixture parses");
    let generated = codegen::generate(&file, "MKL vector math wrappers (golden fixture)");
    let golden = include_str!("golden/vectormath.rs.golden");
    assert!(
        generated == golden,
        "annotate codegen output diverged from tests/golden/vectormath.rs.golden.\n\
         If the change is intentional, regenerate the golden file:\n\
         cargo test -p mozart-annotate --test golden -- --ignored regenerate\n\
         --- generated ---\n{generated}\n--- golden ---\n{golden}"
    );
    // The golden surface is v2-only: the single capability probe is
    // present and no removed v1 trait method is ever emitted.
    assert!(generated.contains("fn merge_strategy(&self) -> MergeStrategy"));
    assert!(generated.contains("total_elements: u64"));
    // Every declared split type also gets a Concat capability skeleton
    // so split-form hand-offs and request coalescing are one TODO away.
    for ty in ["SizeSplit", "ArraySplit"] {
        assert!(
            generated.contains(&format!("impl Concat for {ty}Concat")),
            "missing Concat skeleton for `{ty}`"
        );
    }
    assert!(generated.contains("fn slice_back(&self, out: &DataValue, offset: u64, len: u64)"));
    for removed in [
        "merge_hinted",
        "needs_merge",
        "commutative_merge",
        "fn terminal",
        "alloc_merged",
        "write_piece",
        "truncate_merged",
    ] {
        assert!(
            !generated.contains(removed),
            "generated code must not reference removed v1 surface `{removed}`"
        );
    }
}

/// Regenerates the golden file in the source tree. Run explicitly:
/// `cargo test -p mozart-annotate --test golden -- --ignored regenerate`
#[test]
#[ignore = "writes into the source tree; run on deliberate codegen changes"]
fn regenerate() {
    let file = parser::parse(SOURCE).expect("fixture parses");
    let generated = codegen::generate(&file, "MKL vector math wrappers (golden fixture)");
    let path = concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/tests/golden/vectormath.rs.golden"
    );
    std::fs::write(path, generated).expect("write golden file");
}
