//! Golden-diagnostic tests over the `.sa` corpus: every malformed file
//! in `corpus/sa-bad/` must produce exactly the expected diagnostics
//! (message text and 1-based line), and every file in `corpus/sa/`
//! must check clean. Keeps `mozart-check`'s output stable for CI logs
//! and editors.

use mozart_annotate::{check, parse};

fn corpus(rel: &str) -> String {
    let path = format!("{}/../../corpus/{rel}", env!("CARGO_MANIFEST_DIR"));
    std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("read {path}: {e}"))
}

fn diags(rel: &str) -> Vec<(usize, String)> {
    check(&parse(&corpus(rel)).expect("corpus file must parse"))
        .into_iter()
        .map(|d| (d.line, d.message))
        .collect()
}

#[test]
fn valid_corpus_is_clean() {
    for file in ["sa/vectormath.sa", "sa/matrix.sa"] {
        let d = diags(file);
        assert!(d.is_empty(), "{file}: unexpected diagnostics {d:?}");
    }
}

#[test]
fn ctor_mut_golden() {
    assert_eq!(
        diags("sa-bad/ctor-mut.sa"),
        vec![(
            3,
            "scaleInPlace: constructor argument `out` of ArraySplit names a \
             `mut` argument; derive split parameters from an explicit size \
             argument instead (the MKL convention), never from storage the \
             call mutates"
                .to_string()
        )]
    );
}

#[test]
fn unknown_arg_golden() {
    assert_eq!(
        diags("sa-bad/unknown-arg.sa"),
        vec![(
            3,
            "consume: argument `x` is typed `unknown`; unknown describes \
             values whose split shape exists only after the call and is \
             legal only in the return position"
                .to_string()
        )]
    );
}

#[test]
fn unbound_generic_golden() {
    assert_eq!(
        diags("sa-bad/unbound-generic.sa"),
        vec![(
            3,
            "make: return generic `S` is not bound by any argument; the \
             planner could never infer its split type"
                .to_string()
        )]
    );
}

#[test]
fn dup_dead_splittype_golden() {
    assert_eq!(
        diags("sa-bad/dup-dead-splittype.sa"),
        vec![
            (
                3,
                "duplicate splittype declaration `RowSplit` (first declared \
                 on line 2)"
                    .to_string()
            ),
            (
                4,
                "splittype `Unused` is declared but never used by a \
                 constructor or annotation"
                    .to_string()
            ),
        ]
    );
}

#[test]
fn ctor_arity_golden() {
    assert_eq!(
        diags("sa-bad/ctor-arity.sa"),
        vec![(
            4,
            "constructor for `MatrixSplit` produces 1 parameter(s), but the \
             splittype declares 2"
                .to_string()
        )]
    );
}

#[test]
fn missing_ret_golden() {
    assert_eq!(
        diags("sa-bad/missing-ret.sa"),
        vec![(
            2,
            "head: return value typed `_`; a returned value must have a real \
             split type (or `unknown`) so Mozart can merge it"
                .to_string()
        )]
    );
}
