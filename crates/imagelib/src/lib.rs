//! # imagelib — an ImageMagick-style image processing library
//!
//! The reproduction's stand-in for ImageMagick's `MagickWand` API (§7):
//! an opaque image handle, per-pixel color operators (gamma, modulate,
//! contrast, colorize, colortone, ...), a row-range **crop** and a
//! vertical **append** — the two structural operations the `sa-image`
//! annotator builds its split type from — and a Gaussian [`ops::blur`]
//! whose edge boundary condition makes it deliberately *not* annotatable
//! (the paper's §7.1 example).
//!
//! The library knows nothing about Mozart.

#![warn(missing_docs)]
#![warn(clippy::undocumented_unsafe_blocks)]

pub mod image;
pub mod ops;

pub use image::{num_threads, set_num_threads, Image};
pub use ops::{
    blur, colorize, colortone, contrast, gamma, grayscale, invert, levels, modulate, sepia,
};
