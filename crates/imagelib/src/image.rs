//! The [`Image`] type and its structural API.
//!
//! Mirrors the parts of ImageMagick's `MagickWand` API the paper's
//! integration uses (§7): images are opaque handles; the library offers
//! a **crop** that clones a row range out of an image and an **append**
//! that stacks images vertically — exactly the two operations the
//! annotator builds the split type from. Like the real library, crop
//! and append allocate and copy — which is why the paper reports split/
//! merge overheads dominating the ImageMagick workloads (§8.2).
//!
//! Beyond the wand API, the library also exposes the structural
//! operations a zero-overhead splitter needs (the "ImageRows" path):
//!
//! * [`Image::rows`] — a zero-copy row-band *view* sharing the parent
//!   pixel buffer (like a DataFrame column slice), replacing the
//!   copying crop on the split side;
//! * [`Image::alloc_rows`] + [`Image::write_rows_from`] — a
//!   preallocated image that disjoint row bands can be written into
//!   from multiple threads, replacing the copying append on the merge
//!   side (placement merging).
//!
//! Pixel storage is a shared `PixelBuf` with interior mutability so
//! disjoint row ranges can be written in parallel; the safe read APIs
//! assume no concurrent writes, which holds because writes only happen
//! through the `unsafe` placement API while an image is being
//! constructed, before any reader can observe it.

use std::cell::UnsafeCell;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

static THREADS: AtomicUsize = AtomicUsize::new(1);

/// Set the library's internal thread count. Like ImageMagick, the
/// library parallelizes each operator internally; the paper's
/// Figures 4n-o compare Mozart against exactly this baseline.
pub fn set_num_threads(n: usize) {
    THREADS.store(n.max(1), Ordering::SeqCst);
}

/// Current internal thread count.
pub fn num_threads() -> usize {
    THREADS.load(Ordering::Relaxed)
}

/// Shared interleaved pixel storage supporting disjoint parallel row
/// writes (interior mutability, like a C float buffer).
struct PixelBuf(Box<[UnsafeCell<f32>]>);

// SAFETY: a plain array of `Copy` floats. All mutation goes through
// `Image::write_rows_from`, whose contract requires disjoint row ranges
// from different threads and no concurrent readers; shared reads through
// the safe APIs only happen once construction is complete.
unsafe impl Sync for PixelBuf {}
// SAFETY: as above.
unsafe impl Send for PixelBuf {}

impl PixelBuf {
    fn from_vec(v: Vec<f32>) -> PixelBuf {
        PixelBuf(v.into_iter().map(UnsafeCell::new).collect())
    }

    fn len(&self) -> usize {
        self.0.len()
    }

    /// Read a channel range.
    ///
    /// # Safety
    ///
    /// No thread may concurrently mutate any element of the range.
    unsafe fn slice(&self, start: usize, len: usize) -> &[f32] {
        debug_assert!(start + len <= self.len());
        // SAFETY: in-bounds per the debug_assert; aliasing discipline is
        // the caller's obligation per this function's contract.
        unsafe { std::slice::from_raw_parts((self.0.as_ptr() as *const f32).add(start), len) }
    }

    /// Mutate a channel range.
    ///
    /// # Safety
    ///
    /// The range must not be accessed (read or written) by any other
    /// live reference while the returned slice is alive.
    #[allow(clippy::mut_from_ref)]
    unsafe fn slice_mut(&self, start: usize, len: usize) -> &mut [f32] {
        debug_assert!(start + len <= self.len());
        // SAFETY: see function contract.
        unsafe { std::slice::from_raw_parts_mut((self.0.as_ptr() as *mut f32).add(start), len) }
    }
}

/// An RGB image with `f32` channels in `[0, 1]`, row-major interleaved.
///
/// Cloning is O(1) (shared storage); all pixel operators return new
/// images (the wand convention of "clone then operate" without exposing
/// mutation to the annotator). An `Image` may be a zero-copy row *view*
/// of a larger image (see [`Image::rows`]); views and owners are
/// indistinguishable to every operator.
#[derive(Clone)]
pub struct Image {
    width: usize,
    height: usize,
    /// First buffer row of this view.
    row_start: usize,
    data: Arc<PixelBuf>,
}

impl Image {
    /// Number of `f32` channels per pixel.
    pub const CHANNELS: usize = 3;

    /// Build from interleaved RGB data.
    ///
    /// # Panics
    ///
    /// Panics if `data.len() != width * height * 3`.
    pub fn from_rgb(width: usize, height: usize, data: Vec<f32>) -> Self {
        assert_eq!(
            data.len(),
            width * height * Self::CHANNELS,
            "image data size mismatch"
        );
        Image {
            width,
            height,
            row_start: 0,
            data: Arc::new(PixelBuf::from_vec(data)),
        }
    }

    /// Allocate a zeroed image of the given dimensions, for use as a
    /// placement-merge target: disjoint row bands of it can be filled
    /// in parallel with [`Image::write_rows_from`].
    pub fn alloc_rows(width: usize, height: usize) -> Self {
        Self::from_rgb(width, height, vec![0.0; width * height * Self::CHANNELS])
    }

    /// [`Image::alloc_rows`] without the zeroing pass: the pixel buffer
    /// has *unspecified* contents, with every page pre-touched so
    /// parallel [`Image::write_rows_from`] calls are pure memory copies
    /// (no first-touch page faults, which would otherwise serialize on
    /// kernel page-table locks under concurrent writers).
    ///
    /// # Safety
    ///
    /// The caller must write every row (via [`Image::write_rows_from`])
    /// before any read of it — including reads through row views that
    /// survive the image, so a partially-filled image may only be
    /// observed through views restricted to its written rows.
    #[allow(clippy::uninit_vec)] // the uninit window is this function's documented contract
    pub unsafe fn alloc_rows_uninit(width: usize, height: usize) -> Self {
        let n = width * height * Self::CHANNELS;
        let mut v: Vec<UnsafeCell<f32>> = Vec::with_capacity(n);
        // SAFETY: capacity was just reserved; f32 has no drop
        // obligations, and the caller contract defers initialization
        // to the first writes.
        unsafe { v.set_len(n) };
        let img = Image {
            width,
            height,
            row_start: 0,
            data: Arc::new(PixelBuf(v.into_boxed_slice())),
        };
        // Pre-touch one byte per 4K page (a zero write — the contents
        // are unspecified anyway) so the parallel writers never fault.
        let base = img.data.0.as_ptr() as *mut u8;
        let bytes = n * 4;
        let mut off = 0;
        while off < bytes {
            // SAFETY: in-bounds; the buffer was just created and has
            // no other observer.
            unsafe { std::ptr::write_volatile(base.add(off), 0) };
            off += 4096;
        }
        img
    }

    /// Solid-color image.
    pub fn solid(width: usize, height: usize, rgb: [f32; 3]) -> Self {
        let mut data = Vec::with_capacity(width * height * Self::CHANNELS);
        for _ in 0..width * height {
            data.extend_from_slice(&rgb);
        }
        Self::from_rgb(width, height, data)
    }

    /// Deterministic synthetic test image (smooth gradients + texture),
    /// standing in for the photographs the instagram-filter workloads
    /// process.
    pub fn synthetic(width: usize, height: usize, seed: u64) -> Self {
        let mut data = Vec::with_capacity(width * height * Self::CHANNELS);
        let s = seed as f32 * 0.001;
        for y in 0..height {
            for x in 0..width {
                let fx = x as f32 / width as f32;
                let fy = y as f32 / height as f32;
                let tex = ((x * 31 + y * 17) % 97) as f32 / 97.0;
                data.push((fx * 0.8 + tex * 0.2 + s).fract());
                data.push((fy * 0.7 + fx * 0.2 + tex * 0.1 + s).fract());
                data.push(((fx + fy) * 0.4 + tex * 0.3 + s).fract());
            }
        }
        Self::from_rgb(width, height, data)
    }

    /// Image width in pixels.
    pub fn width(&self) -> usize {
        self.width
    }

    /// Image height in pixels.
    pub fn height(&self) -> usize {
        self.height
    }

    /// The interleaved channel data of this view's rows.
    pub fn data(&self) -> &[f32] {
        let stride = self.width * Self::CHANNELS;
        // SAFETY: safe reads assume no concurrent writes; writes only
        // happen through the `unsafe` placement API while the image is
        // under construction (see the module docs).
        unsafe {
            self.data
                .slice(self.row_start * stride, self.height * stride)
        }
    }

    /// Pixel at `(x, y)`.
    pub fn pixel(&self, x: usize, y: usize) -> [f32; 3] {
        let d = self.data();
        let i = (y * self.width + x) * Self::CHANNELS;
        [d[i], d[i + 1], d[i + 2]]
    }

    /// Zero-copy view of rows `[y0, y1)`: the returned image shares
    /// this image's pixel buffer (the "ImageRows" path the zero-overhead
    /// splitter uses instead of the copying crop).
    ///
    /// # Panics
    ///
    /// Panics if the range is out of bounds.
    pub fn rows(&self, y0: usize, y1: usize) -> Image {
        assert!(y0 <= y1 && y1 <= self.height, "row range out of bounds");
        Image {
            width: self.width,
            height: y1 - y0,
            row_start: self.row_start + y0,
            data: Arc::clone(&self.data),
        }
    }

    /// Clone rows `[y0, y1)` into a new image (the `MagickWand` crop).
    /// Copies, like the real API; splitters use [`Image::rows`].
    ///
    /// # Panics
    ///
    /// Panics if the range is out of bounds.
    pub fn crop_rows(&self, y0: usize, y1: usize) -> Image {
        assert!(y0 <= y1 && y1 <= self.height, "crop range out of bounds");
        let stride = self.width * Self::CHANNELS;
        Image::from_rgb(
            self.width,
            y1 - y0,
            self.data()[y0 * stride..y1 * stride].to_vec(),
        )
    }

    /// Copy all rows of `src` into this image starting at row `y0`
    /// (the placement-merge write: the parallel, in-place counterpart
    /// of [`Image::append_rows`]).
    ///
    /// # Panics
    ///
    /// Panics on width mismatch or an out-of-bounds row range.
    ///
    /// # Safety
    ///
    /// The caller must guarantee that the row range `[y0, y0 +
    /// src.height())` of this image is not accessed (read or written)
    /// by any other live reference while the call runs. The Mozart
    /// executor upholds this by handing workers disjoint element
    /// ranges of a freshly allocated, not-yet-observable image.
    pub unsafe fn write_rows_from(&self, y0: usize, src: &Image) {
        assert_eq!(src.width, self.width, "write_rows_from: width mismatch");
        assert!(
            y0 + src.height <= self.height,
            "write_rows_from: row range out of bounds"
        );
        let stride = self.width * Self::CHANNELS;
        // SAFETY: in-bounds per the asserts; exclusivity of the
        // destination range is the caller's obligation per this
        // function's contract.
        let dst = unsafe {
            self.data
                .slice_mut((self.row_start + y0) * stride, src.height * stride)
        };
        dst.copy_from_slice(src.data());
    }

    /// Stack images vertically (the append API the merger uses).
    ///
    /// # Panics
    ///
    /// Panics on empty input or mismatched widths.
    pub fn append_rows(parts: &[Image]) -> Image {
        let rows = parts.iter().map(Image::height).sum();
        Self::append_rows_hinted(parts, rows)
    }

    /// [`Image::append_rows`] with a known total row count: the pixel
    /// buffer is allocated once up front instead of growing per band
    /// (the runtime's merge-size hint).
    ///
    /// # Panics
    ///
    /// Panics on empty input or mismatched widths.
    pub fn append_rows_hinted(parts: &[Image], total_rows: usize) -> Image {
        assert!(!parts.is_empty(), "append of zero images");
        let width = parts[0].width;
        let mut height = 0;
        let mut data = Vec::with_capacity(width * total_rows * Self::CHANNELS);
        for p in parts {
            assert_eq!(p.width, width, "append: width mismatch");
            height += p.height;
            data.extend_from_slice(p.data());
        }
        Image::from_rgb(width, height, data)
    }

    /// Map every pixel through `f` (the shared loop all color operators
    /// use). Returns a new image. Parallelizes across the library's
    /// internal threads when the image is large enough.
    pub(crate) fn map_pixels(&self, f: impl Fn([f32; 3]) -> [f32; 3] + Send + Sync) -> Image {
        let n = self.width * self.height;
        let mut out = vec![0.0f32; n * Self::CHANNELS];
        let t = num_threads();
        if t <= 1 || n < 1 << 14 {
            map_range(self.data(), &mut out, &f, 0, n);
        } else {
            let per = n.div_ceil(t);
            let out_addr = out.as_mut_ptr() as usize;
            let src = self.data();
            std::thread::scope(|s| {
                for w in 0..t {
                    let start = w * per;
                    if start >= n {
                        break;
                    }
                    let len = per.min(n - start);
                    let f = &f;
                    s.spawn(move || {
                        // SAFETY: each worker writes the disjoint pixel
                        // range [start, start + len).
                        let dst = unsafe {
                            std::slice::from_raw_parts_mut(
                                (out_addr as *mut f32).add(start * Self::CHANNELS),
                                len * Self::CHANNELS,
                            )
                        };
                        map_chunk(
                            &src[start * Self::CHANNELS..(start + len) * Self::CHANNELS],
                            dst,
                            f,
                        );
                    });
                }
            });
        }
        Image::from_rgb(self.width, self.height, out)
    }

    /// Mean absolute per-channel difference against another image
    /// (testing aid).
    ///
    /// # Panics
    ///
    /// Panics if dimensions differ.
    pub fn mean_abs_diff(&self, other: &Image) -> f32 {
        assert_eq!(self.width, other.width, "diff: width mismatch");
        assert_eq!(self.height, other.height, "diff: height mismatch");
        let d = self.data();
        let n = d.len() as f32;
        d.iter()
            .zip(other.data().iter())
            .map(|(a, b)| (a - b).abs())
            .sum::<f32>()
            / n
    }
}

fn map_range(
    src: &[f32],
    out: &mut [f32],
    f: &(impl Fn([f32; 3]) -> [f32; 3] + Send + Sync),
    start: usize,
    len: usize,
) {
    let s = &src[start * Image::CHANNELS..(start + len) * Image::CHANNELS];
    let d = &mut out[start * Image::CHANNELS..(start + len) * Image::CHANNELS];
    map_chunk(s, d, f);
}

fn map_chunk(src: &[f32], dst: &mut [f32], f: &(impl Fn([f32; 3]) -> [f32; 3] + Send + Sync)) {
    for (s, d) in src
        .chunks_exact(Image::CHANNELS)
        .zip(dst.chunks_exact_mut(Image::CHANNELS))
    {
        let [r, g, b] = f([s[0], s[1], s[2]]);
        d[0] = r.clamp(0.0, 1.0);
        d[1] = g.clamp(0.0, 1.0);
        d[2] = b.clamp(0.0, 1.0);
    }
}

impl std::fmt::Debug for Image {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Image({}x{})", self.width, self.height)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn append_rows_hinted_matches_append_rows() {
        let a = Image::solid(3, 2, [0.1, 0.2, 0.3]);
        let b = Image::solid(3, 4, [0.4, 0.5, 0.6]);
        let plain = Image::append_rows(&[a.clone(), b.clone()]);
        let hinted = Image::append_rows_hinted(&[a, b], 6);
        assert_eq!(hinted.height(), 6);
        assert_eq!(plain.data(), hinted.data());
    }

    #[test]
    fn construction_and_pixels() {
        let img = Image::solid(2, 2, [0.5, 0.25, 1.0]);
        assert_eq!(img.width(), 2);
        assert_eq!(img.height(), 2);
        assert_eq!(img.pixel(1, 1), [0.5, 0.25, 1.0]);
    }

    #[test]
    fn crop_append_roundtrip() {
        let img = Image::synthetic(8, 10, 42);
        let parts = vec![
            img.crop_rows(0, 3),
            img.crop_rows(3, 7),
            img.crop_rows(7, 10),
        ];
        let merged = Image::append_rows(&parts);
        assert_eq!(merged.width(), 8);
        assert_eq!(merged.height(), 10);
        assert_eq!(merged.mean_abs_diff(&img), 0.0);
    }

    #[test]
    fn rows_view_matches_copying_crop() {
        let img = Image::synthetic(9, 12, 5);
        let view = img.rows(3, 8);
        let crop = img.crop_rows(3, 8);
        assert_eq!(view.height(), 5);
        assert_eq!(view.data(), crop.data(), "view is pixel-identical");
        // Views nest, like column slices.
        let nested = view.rows(1, 4);
        assert_eq!(nested.data(), img.crop_rows(4, 7).data());
        // Operating on a view never touches the parent.
        let _ = crate::invert(&view);
        assert_eq!(img.mean_abs_diff(&Image::synthetic(9, 12, 5)), 0.0);
    }

    #[test]
    fn placement_writes_reassemble_disjoint_bands() {
        let img = Image::synthetic(7, 20, 11);
        let out = Image::alloc_rows(7, 20);
        std::thread::scope(|s| {
            for (y0, y1) in [(10usize, 20usize), (0, 4), (4, 10)] {
                let band = img.rows(y0, y1);
                let out = &out;
                // SAFETY: bands cover disjoint row ranges of `out`.
                s.spawn(move || unsafe { out.write_rows_from(y0, &band) });
            }
        });
        assert_eq!(out.mean_abs_diff(&img), 0.0);
    }

    #[test]
    #[should_panic(expected = "row range out of bounds")]
    fn rows_bounds() {
        Image::solid(2, 2, [0.0; 3]).rows(1, 3);
    }

    #[test]
    fn synthetic_is_deterministic() {
        let a = Image::synthetic(16, 16, 7);
        let b = Image::synthetic(16, 16, 7);
        assert_eq!(a.mean_abs_diff(&b), 0.0);
        let c = Image::synthetic(16, 16, 8);
        assert!(a.mean_abs_diff(&c) > 0.0);
    }

    #[test]
    #[should_panic(expected = "crop range out of bounds")]
    fn crop_bounds() {
        Image::solid(2, 2, [0.0; 3]).crop_rows(1, 3);
    }

    #[test]
    #[should_panic(expected = "append: width mismatch")]
    fn append_checks_width() {
        Image::append_rows(&[Image::solid(2, 1, [0.0; 3]), Image::solid(3, 1, [0.0; 3])]);
    }
}
