//! Color and filter operators.
//!
//! Per-pixel operators (everything except [`blur`]) are row-local, so
//! they satisfy the SA correctness condition (§3.4): applying them to
//! row crops and appending equals applying them to the whole image.
//! [`blur`] reads *neighboring* rows with special boundary handling, the
//! paper's canonical example of a function that must NOT be annotated
//! (§7.1): split/merge would re-run the boundary condition at every
//! split edge and corrupt the result.

use crate::image::Image;

/// Per-channel gamma correction: `c ^ (1/gamma)` (like `MagickGammaImage`).
pub fn gamma(img: &Image, gamma: f32) -> Image {
    let inv = 1.0 / gamma;
    img.map_pixels(|[r, g, b]| [r.powf(inv), g.powf(inv), b.powf(inv)])
}

/// Brightness / saturation / hue modulation in percent, 100 = unchanged
/// (like `MagickModulateImage`).
pub fn modulate(img: &Image, brightness: f32, saturation: f32, hue: f32) -> Image {
    let bf = brightness / 100.0;
    let sf = saturation / 100.0;
    let hshift = (hue - 100.0) / 100.0 * 180.0; // degrees
    img.map_pixels(|px| {
        let (mut h, s, v) = rgb_to_hsv(px);
        h = (h + hshift).rem_euclid(360.0);
        hsv_to_rgb(h, (s * sf).clamp(0.0, 1.0), (v * bf).clamp(0.0, 1.0))
    })
}

/// Sigmoidal contrast adjustment; positive `amount` increases contrast
/// (like `MagickSigmoidalContrastImage`).
pub fn contrast(img: &Image, amount: f32) -> Image {
    let alpha = amount.abs().max(1e-4);
    let apply = |c: f32| -> f32 {
        if amount >= 0.0 {
            // Sigmoid centered at 0.5.
            let s = |x: f32| 1.0 / (1.0 + (-alpha * (x - 0.5)).exp());
            let lo = s(0.0);
            let hi = s(1.0);
            (s(c) - lo) / (hi - lo)
        } else {
            // Inverse sigmoid.
            let lo = 1.0 / (1.0 + (alpha * 0.5).exp());
            let hi = 1.0 / (1.0 + (-alpha * 0.5).exp());
            let y = lo + c * (hi - lo);
            0.5 - (1.0 / y - 1.0).ln() / alpha
        }
    };
    img.map_pixels(|[r, g, b]| [apply(r), apply(g), apply(b)])
}

/// Blend a solid color over the image with `alpha` opacity (the
/// `colorize`/fill step of the instagram filters).
pub fn colorize(img: &Image, rgb: [f32; 3], alpha: f32) -> Image {
    img.map_pixels(|[r, g, b]| {
        [
            r * (1.0 - alpha) + rgb[0] * alpha,
            g * (1.0 - alpha) + rgb[1] * alpha,
            b * (1.0 - alpha) + rgb[2] * alpha,
        ]
    })
}

/// The instagram-filters `colortone` step: overlay `rgb` using multiply
/// (`negate = false`) or screen (`negate = true`) blending at 50%.
pub fn colortone(img: &Image, rgb: [f32; 3], negate: bool) -> Image {
    img.map_pixels(|[r, g, b]| {
        let blend = |c: f32, t: f32| -> f32 {
            let m = if negate {
                1.0 - (1.0 - c) * (1.0 - t)
            } else {
                c * t
            };
            0.5 * c + 0.5 * m
        };
        [blend(r, rgb[0]), blend(g, rgb[1]), blend(b, rgb[2])]
    })
}

/// Luminance grayscale.
pub fn grayscale(img: &Image) -> Image {
    img.map_pixels(|[r, g, b]| {
        let y = 0.299 * r + 0.587 * g + 0.114 * b;
        [y, y, y]
    })
}

/// Channel inversion (negative).
pub fn invert(img: &Image) -> Image {
    img.map_pixels(|[r, g, b]| [1.0 - r, 1.0 - g, 1.0 - b])
}

/// Classic sepia tone.
pub fn sepia(img: &Image) -> Image {
    img.map_pixels(|[r, g, b]| {
        [
            0.393 * r + 0.769 * g + 0.189 * b,
            0.349 * r + 0.686 * g + 0.168 * b,
            0.272 * r + 0.534 * g + 0.131 * b,
        ]
    })
}

/// Per-channel linear level adjustment mapping `[black, white]` to
/// `[0, 1]` (like `MagickLevelImage`).
pub fn levels(img: &Image, black: f32, white: f32) -> Image {
    let scale = 1.0 / (white - black).max(1e-6);
    img.map_pixels(|[r, g, b]| {
        [
            (r - black) * scale,
            (g - black) * scale,
            (b - black) * scale,
        ]
    })
}

/// Separable Gaussian blur with **clamped (replicated) edges**.
///
/// The edge rows are processed differently from interior rows — the
/// boundary condition the paper cites as making ImageMagick's `Blur`
/// unsafe to annotate (§7.1): blurring row crops independently and
/// appending them re-applies the boundary at every crop edge and does
/// not equal blurring the whole image. `sa-image` intentionally leaves
/// this function un-annotated, and a test documents the mismatch.
pub fn blur(img: &Image, radius: usize) -> Image {
    if radius == 0 {
        return img.clone();
    }
    let sigma = radius as f32 / 2.0;
    let kernel: Vec<f32> = (-(radius as i64)..=radius as i64)
        .map(|i| (-((i * i) as f32) / (2.0 * sigma * sigma)).exp())
        .collect();
    let ksum: f32 = kernel.iter().sum();
    let kernel: Vec<f32> = kernel.iter().map(|k| k / ksum).collect();

    let (w, h) = (img.width(), img.height());
    let src = img.data();
    let c = Image::CHANNELS;
    // Horizontal pass.
    let mut tmp = vec![0.0f32; src.len()];
    for y in 0..h {
        for x in 0..w {
            for ch in 0..c {
                let mut acc = 0.0;
                for (ki, k) in kernel.iter().enumerate() {
                    let sx = (x as i64 + ki as i64 - radius as i64).clamp(0, w as i64 - 1);
                    acc += k * src[(y * w + sx as usize) * c + ch];
                }
                tmp[(y * w + x) * c + ch] = acc;
            }
        }
    }
    // Vertical pass (the one the row boundary condition matters for).
    let mut out = vec![0.0f32; src.len()];
    for y in 0..h {
        for x in 0..w {
            for ch in 0..c {
                let mut acc = 0.0;
                for (ki, k) in kernel.iter().enumerate() {
                    let sy = (y as i64 + ki as i64 - radius as i64).clamp(0, h as i64 - 1);
                    acc += k * tmp[(sy as usize * w + x) * c + ch];
                }
                out[(y * w + x) * c + ch] = acc;
            }
        }
    }
    Image::from_rgb(w, h, out)
}

fn rgb_to_hsv([r, g, b]: [f32; 3]) -> (f32, f32, f32) {
    let max = r.max(g).max(b);
    let min = r.min(g).min(b);
    let d = max - min;
    let h = if d == 0.0 {
        0.0
    } else if max == r {
        60.0 * (((g - b) / d).rem_euclid(6.0))
    } else if max == g {
        60.0 * ((b - r) / d + 2.0)
    } else {
        60.0 * ((r - g) / d + 4.0)
    };
    let s = if max == 0.0 { 0.0 } else { d / max };
    (h, s, max)
}

fn hsv_to_rgb(h: f32, s: f32, v: f32) -> [f32; 3] {
    let c = v * s;
    let x = c * (1.0 - ((h / 60.0).rem_euclid(2.0) - 1.0).abs());
    let m = v - c;
    let (r, g, b) = match (h / 60.0) as u32 % 6 {
        0 => (c, x, 0.0),
        1 => (x, c, 0.0),
        2 => (0.0, c, x),
        3 => (0.0, x, c),
        4 => (x, 0.0, c),
        _ => (c, 0.0, x),
    };
    [r + m, g + m, b + m]
}

#[cfg(test)]
mod tests {
    use super::*;

    fn img() -> Image {
        Image::synthetic(16, 12, 3)
    }

    /// Per-pixel ops must commute with row splitting (§3.4).
    fn splits_cleanly(f: impl Fn(&Image) -> Image) -> bool {
        let i = img();
        let whole = f(&i);
        let parts = vec![f(&i.crop_rows(0, 5)), f(&i.crop_rows(5, 12))];
        let merged = Image::append_rows(&parts);
        whole.mean_abs_diff(&merged) < 1e-7
    }

    #[test]
    fn per_pixel_ops_commute_with_row_splits() {
        assert!(splits_cleanly(|i| gamma(i, 2.2)));
        assert!(splits_cleanly(|i| modulate(i, 120.0, 80.0, 100.0)));
        assert!(splits_cleanly(|i| contrast(i, 5.0)));
        assert!(splits_cleanly(|i| colorize(i, [0.9, 0.2, 0.1], 0.3)));
        assert!(splits_cleanly(|i| colortone(i, [0.13, 0.17, 0.43], false)));
        assert!(splits_cleanly(grayscale));
        assert!(splits_cleanly(invert));
        assert!(splits_cleanly(sepia));
        assert!(splits_cleanly(|i| levels(i, 0.1, 0.9)));
    }

    #[test]
    fn blur_does_not_commute_with_row_splits() {
        // The §7.1 boundary-condition hazard, demonstrated.
        let i = img();
        let whole = blur(&i, 3);
        let merged =
            Image::append_rows(&[blur(&i.crop_rows(0, 6), 3), blur(&i.crop_rows(6, 12), 3)]);
        assert!(
            whole.mean_abs_diff(&merged) > 1e-4,
            "blur must differ across split boundaries"
        );
    }

    #[test]
    fn gamma_identity() {
        let i = img();
        assert!(i.mean_abs_diff(&gamma(&i, 1.0)) < 1e-6);
    }

    #[test]
    fn invert_is_involution() {
        let i = img();
        assert!(i.mean_abs_diff(&invert(&invert(&i))) < 1e-6);
    }

    #[test]
    fn hsv_roundtrip() {
        for px in [
            [0.2, 0.4, 0.8],
            [0.9, 0.1, 0.1],
            [0.5, 0.5, 0.5],
            [0.0, 1.0, 0.0],
        ] {
            let (h, s, v) = rgb_to_hsv(px);
            let back = hsv_to_rgb(h, s, v);
            for ch in 0..3 {
                assert!((px[ch] - back[ch]).abs() < 1e-5, "{px:?} -> {back:?}");
            }
        }
    }

    #[test]
    fn modulate_identity_at_100() {
        let i = img();
        let m = modulate(&i, 100.0, 100.0, 100.0);
        assert!(i.mean_abs_diff(&m) < 1e-4);
    }

    #[test]
    fn grayscale_equalizes_channels() {
        let g = grayscale(&img());
        let px = g.pixel(3, 4);
        assert_eq!(px[0], px[1]);
        assert_eq!(px[1], px[2]);
    }
}
