//! # cachesim — a set-associative LRU cache model
//!
//! Machine-independent stand-in for the hardware performance counters
//! the paper samples with Linux `perf` (Table 4). The `vectormath`
//! library can record the byte ranges each kernel scans; replaying
//! those streams through this model yields an LLC miss rate that is
//! deterministic and independent of the host CPU.
//!
//! The model is a single cache level with configurable capacity,
//! associativity, and line size, using true-LRU replacement and a
//! write-allocate policy — a reasonable approximation of an inclusive
//! last-level cache for streaming numeric workloads.

#![warn(missing_docs)]

/// Cache geometry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheConfig {
    /// Total capacity in bytes.
    pub size_bytes: usize,
    /// Ways per set.
    pub associativity: usize,
    /// Cache line size in bytes.
    pub line_bytes: usize,
}

impl CacheConfig {
    /// A typical server LLC slice: 8 MiB, 16-way, 64-byte lines.
    pub fn llc_8mb() -> Self {
        CacheConfig {
            size_bytes: 8 << 20,
            associativity: 16,
            line_bytes: 64,
        }
    }

    /// A typical per-core L2: 256 KiB, 8-way, 64-byte lines.
    pub fn l2_256kb() -> Self {
        CacheConfig {
            size_bytes: 256 << 10,
            associativity: 8,
            line_bytes: 64,
        }
    }

    fn num_sets(&self) -> usize {
        self.size_bytes / (self.associativity * self.line_bytes)
    }
}

/// Hit/miss counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Total line-granular accesses.
    pub accesses: u64,
    /// Accesses that missed.
    pub misses: u64,
    /// Write accesses (subset of `accesses`).
    pub writes: u64,
}

impl CacheStats {
    /// Miss rate in percent (0 when no accesses).
    pub fn miss_rate_pct(&self) -> f64 {
        if self.accesses == 0 {
            0.0
        } else {
            self.misses as f64 / self.accesses as f64 * 100.0
        }
    }
}

/// One set: tags in LRU order (front = most recent).
struct Set {
    tags: Vec<u64>,
}

/// A set-associative, true-LRU, write-allocate cache.
pub struct Cache {
    config: CacheConfig,
    sets: Vec<Set>,
    stats: CacheStats,
}

impl Cache {
    /// Build a cache with the given geometry.
    ///
    /// # Panics
    ///
    /// Panics if the geometry is degenerate (zero sets, non-power-of-two
    /// line size).
    pub fn new(config: CacheConfig) -> Self {
        assert!(
            config.line_bytes.is_power_of_two(),
            "line size must be a power of two"
        );
        let sets = config.num_sets();
        assert!(sets > 0, "cache must have at least one set");
        Cache {
            config,
            sets: (0..sets).map(|_| Set { tags: Vec::new() }).collect(),
            stats: CacheStats::default(),
        }
    }

    /// Geometry.
    pub fn config(&self) -> CacheConfig {
        self.config
    }

    /// Counters so far.
    pub fn stats(&self) -> CacheStats {
        self.stats
    }

    /// Reset counters (keeping cache contents — useful for warmup).
    pub fn reset_stats(&mut self) {
        self.stats = CacheStats::default();
    }

    /// Access one byte address. Returns `true` on hit.
    pub fn access(&mut self, addr: usize, write: bool) -> bool {
        let line = (addr / self.config.line_bytes) as u64;
        let set_idx = (line as usize) % self.sets.len();
        let set = &mut self.sets[set_idx];
        self.stats.accesses += 1;
        if write {
            self.stats.writes += 1;
        }
        if let Some(pos) = set.tags.iter().position(|&t| t == line) {
            // Hit: move to MRU position.
            let t = set.tags.remove(pos);
            set.tags.insert(0, t);
            true
        } else {
            self.stats.misses += 1;
            set.tags.insert(0, line);
            if set.tags.len() > self.config.associativity {
                set.tags.pop();
            }
            false
        }
    }

    /// Replay a sequential scan of `[addr, addr + bytes)` at line
    /// granularity.
    pub fn scan(&mut self, addr: usize, bytes: usize, write: bool) {
        if bytes == 0 {
            return;
        }
        let first = addr / self.config.line_bytes;
        let last = (addr + bytes - 1) / self.config.line_bytes;
        for line in first..=last {
            self.access(line * self.config.line_bytes, write);
        }
    }
}

/// Replay a recorded operand-stream trace (see `vectormath::trace`)
/// through a fresh cache, returning the final counters.
pub fn replay_trace(config: CacheConfig, trace: &[(usize, usize, bool)]) -> CacheStats {
    let mut c = Cache::new(config);
    for &(addr, bytes, write) in trace {
        c.scan(addr, bytes, write);
    }
    c.stats()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> Cache {
        // 4 sets * 2 ways * 64B lines = 512 B.
        Cache::new(CacheConfig {
            size_bytes: 512,
            associativity: 2,
            line_bytes: 64,
        })
    }

    #[test]
    fn cold_miss_then_hit() {
        let mut c = tiny();
        assert!(!c.access(0, false));
        assert!(c.access(8, false)); // same line
        assert!(c.access(63, false));
        assert!(!c.access(64, false)); // next line
        let s = c.stats();
        assert_eq!(s.accesses, 4);
        assert_eq!(s.misses, 2);
        assert_eq!(s.miss_rate_pct(), 50.0);
    }

    #[test]
    fn lru_evicts_oldest() {
        let mut c = tiny();
        // Lines mapping to set 0: line numbers ≡ 0 (mod 4): 0, 4, 8 ...
        let line = |i: usize| i * 4 * 64;
        assert!(!c.access(line(0), false));
        assert!(!c.access(line(1), false));
        // Set 0 full (2 ways). Touch line 0 so line 1 is LRU.
        assert!(c.access(line(0), false));
        // Insert line 2: evicts line 1.
        assert!(!c.access(line(2), false));
        assert!(c.access(line(0), false), "line 0 must survive");
        assert!(!c.access(line(1), false), "line 1 was evicted");
    }

    #[test]
    fn scan_touches_each_line_once() {
        let mut c = tiny();
        c.scan(0, 256, false); // 4 lines
        assert_eq!(c.stats().accesses, 4);
        c.scan(10, 1, true); // within line 0
        assert_eq!(c.stats().accesses, 5);
        assert_eq!(c.stats().writes, 1);
        c.scan(0, 0, false); // empty scan
        assert_eq!(c.stats().accesses, 5);
    }

    #[test]
    fn streaming_larger_than_cache_always_misses() {
        let mut c = tiny();
        // Two full passes over 4 KiB (8x the 512 B capacity).
        for _ in 0..2 {
            c.scan(0, 4096, false);
        }
        let s = c.stats();
        assert_eq!(s.accesses, 128);
        // Every line is evicted before its reuse: 100% misses.
        assert_eq!(s.misses, 128);
    }

    #[test]
    fn blocked_reuse_hits_in_cache() {
        // The pipelining effect in miniature: process 4KiB in 256 B
        // blocks, touching each block twice back-to-back (fits in
        // cache) instead of two full passes (doesn't).
        let mut c = tiny();
        for block in 0..16 {
            c.scan(block * 256, 256, false);
            c.scan(block * 256, 256, true);
        }
        let s = c.stats();
        assert_eq!(s.accesses, 128);
        // Second touch of each block hits: 50% miss rate vs 100% above.
        assert_eq!(s.misses, 64);
    }

    #[test]
    fn replay_matches_manual() {
        let trace = vec![(0usize, 256usize, false), (0, 256, true)];
        let s = replay_trace(
            CacheConfig {
                size_bytes: 512,
                associativity: 2,
                line_bytes: 64,
            },
            &trace,
        );
        assert_eq!(s.accesses, 8);
        assert_eq!(s.misses, 4);
    }
}
