//! `MatrixSplit` — split type for row-major matrices stored in shared
//! `f64` buffers (the MKL convention of pointer + dimensions).
//!
//! Parameters: `(rows, cols)`. Elements are **rows**: splitting range
//! `[a, b)` yields the view covering rows `a..b`, i.e. the flat range
//! `[a*cols, b*cols)` of the buffer. This is the split type the paper's
//! MKL integration defines "for matrices (with rows, columns, and order
//! as parameters)" — order is fixed to row-major here.

use std::ops::Range;
use std::sync::Arc;

use mozart_core::prelude::*;

/// Row-splitting split type for matrices in shared buffers.
pub struct MatrixSplit;

impl MatrixSplit {
    /// Shared instance.
    pub fn shared() -> Arc<dyn Splitter> {
        Arc::new(MatrixSplit)
    }
}

impl Splitter for MatrixSplit {
    fn name(&self) -> &'static str {
        "MatrixSplit"
    }

    /// Constructor from `(rows, cols)` integer arguments.
    fn construct(&self, ctor_args: &[&DataValue]) -> Result<Params> {
        let get = |i: usize| -> Result<i64> {
            ctor_args
                .get(i)
                .and_then(|v| mozart_core::value::as_i64(v))
                .ok_or_else(|| Error::Constructor {
                    split_type: "MatrixSplit",
                    message: format!("expected integer argument {i} (rows, cols)"),
                })
        };
        Ok(vec![get(0)?, get(1)?])
    }

    fn default_params(&self, _arg: &DataValue) -> Result<Params> {
        Err(Error::Constructor {
            split_type: "MatrixSplit",
            message: "matrix dimensions cannot be inferred from a flat buffer".into(),
        })
    }

    fn info(&self, _arg: &DataValue, params: &Params) -> Result<RuntimeInfo> {
        let rows = params.first().copied().unwrap_or(0).max(0) as u64;
        let cols = params.get(1).copied().unwrap_or(0).max(0) as u64;
        Ok(RuntimeInfo {
            total_elements: rows,
            elem_size_bytes: cols * std::mem::size_of::<f64>() as u64,
        })
    }

    fn split(
        &self,
        arg: &DataValue,
        range: Range<u64>,
        params: &Params,
    ) -> Result<Option<DataValue>> {
        let v = arg.downcast_ref::<VecValue>().ok_or_else(|| Error::Split {
            split_type: "MatrixSplit",
            message: format!("expected VecValue, got {}", arg.type_name()),
        })?;
        let rows = params.first().copied().unwrap_or(0).max(0) as u64;
        let cols = params.get(1).copied().unwrap_or(0).max(0) as usize;
        if v.0.len() as u64 != rows * cols as u64 {
            return Err(Error::Split {
                split_type: "MatrixSplit",
                message: format!(
                    "buffer has {} elements but split type says {rows}x{cols}",
                    v.0.len()
                ),
            });
        }
        if range.start >= rows {
            return Ok(None);
        }
        let end = range.end.min(rows);
        Ok(Some(DataValue::new(SliceView {
            parent: v.0.clone(),
            start: range.start as usize * cols,
            len: (end - range.start) as usize * cols,
        })))
    }

    fn merge(
        &self,
        pieces: Vec<DataValue>,
        _params: &Params,
        _total_elements: u64,
    ) -> Result<DataValue> {
        // In-place views of one parent buffer, like ArraySplit.
        let first = pieces.first().ok_or_else(|| Error::Merge {
            split_type: "MatrixSplit",
            message: "no pieces".into(),
        })?;
        let parent = first
            .downcast_ref::<SliceView>()
            .ok_or_else(|| Error::Merge {
                split_type: "MatrixSplit",
                message: format!("expected SliceView piece, got {}", first.type_name()),
            })?
            .parent
            .clone();
        Ok(DataValue::new(VecValue(parent)))
    }

    /// Pieces are in-place views of one parent buffer; `merge` recovers
    /// the parent without touching elements.
    fn merge_strategy(&self) -> MergeStrategy {
        MergeStrategy::None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splits_by_rows() {
        let s = MatrixSplit;
        let buf = SharedVec::from_vec((0..12).map(|i| i as f64).collect());
        let arg = DataValue::new(VecValue(buf));
        // 4 rows x 3 cols.
        let params = s
            .construct(&[&DataValue::new(IntValue(4)), &DataValue::new(IntValue(3))])
            .unwrap();
        assert_eq!(params, vec![4, 3]);
        let info = s.info(&arg, &params).unwrap();
        assert_eq!(info.total_elements, 4);
        assert_eq!(info.elem_size_bytes, 24);
        let piece = s.split(&arg, 1..3, &params).unwrap().unwrap();
        let view = piece.downcast_ref::<SliceView>().unwrap();
        assert_eq!(view.start, 3);
        assert_eq!(view.len, 6);
        assert!(s.split(&arg, 4..5, &params).unwrap().is_none());
    }

    #[test]
    fn rejects_dimension_mismatch() {
        let s = MatrixSplit;
        let buf = SharedVec::from_vec(vec![0.0; 10]);
        let arg = DataValue::new(VecValue(buf));
        assert!(s.split(&arg, 0..2, &vec![4, 3]).is_err());
        assert!(s.default_params(&arg).is_err());
    }

    #[test]
    fn different_axes_yield_different_types() {
        // MatrixSplit<4,3> != MatrixSplit<3,4>: dependent-type equality.
        let a = SplitInstance::new(MatrixSplit::shared(), vec![4, 3]);
        let b = SplitInstance::new(MatrixSplit::shared(), vec![3, 4]);
        assert!(!a.same_type(&b));
    }
}
