//! # sa-vectormath — split annotations for the `vectormath` library
//!
//! The annotator-side integration for the MKL stand-in (§7 "Intel MKL"):
//! split types, the splitting API, and generated wrapper functions. The
//! `vectormath` crate itself is **not modified** — this crate is what
//! the paper's `annotate` tool would emit, the Rust analogue of
//! Listing 2:
//!
//! ```text
//! @splittable(
//!   size: SizeSplit(size), a: ArraySplit(size),
//!   b: ArraySplit(size), mut out: ArraySplit(size))
//! void vdAdd(long size, double *a, double *b, double *out);
//! ```
//!
//! Three split types cover the whole header, as in the paper: one for
//! arrays (`ArraySplit`, parameterized by length), one for matrices
//! ([`MatrixSplit`], parameterized by rows/cols), and one for the size
//! argument (`SizeSplit`). In-place updates mean no merge functions are
//! needed; the two reductions (`ddot`, `dasum`) add a merge-only
//! [`AddReduce`] split type.

#![warn(missing_docs)]

pub mod matrix;
pub mod reduce;
pub mod wrappers;

pub use matrix::MatrixSplit;
pub use reduce::AddReduce;
pub use wrappers::*;

use mozart_core::prelude::*;

/// Register this integration's default split types (ArraySplit for
/// shared `f64` buffers). Idempotent; call once at startup.
pub fn register_defaults() {
    ArraySplit::register_default();
    for a in wrappers::annotations() {
        mozart_core::registry::register_annotation(a);
    }
}

/// Wrap a [`SharedVec<f64>`] as a Mozart argument.
pub fn arr(v: &SharedVec<f64>) -> DataValue {
    DataValue::new(VecValue(v.clone()))
}

/// Wrap a length as a Mozart argument.
pub fn size(n: usize) -> DataValue {
    DataValue::new(IntValue(n as i64))
}
