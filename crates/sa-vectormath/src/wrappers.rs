//! Generated wrapper functions around the unmodified `vectormath`
//! kernels — what the paper's `annotate` tool packages into the wrapped
//! library (§4.1). The application calls these instead of the library
//! functions ("this generally requires a namespace import and no other
//! code changes").
//!
//! Every wrapper registers the call with the Mozart context and returns
//! immediately; results materialize lazily when accessed.

use std::sync::{Arc, LazyLock};

use mozart_core::annotation::{concrete, missing};
use mozart_core::prelude::*;

use crate::matrix::MatrixSplit;
use crate::reduce::AddReduce;
use crate::{arr, size};

fn array_split() -> Arc<dyn Splitter> {
    Arc::new(ArraySplit)
}

fn size_split() -> Arc<dyn Splitter> {
    Arc::new(SizeSplit)
}

macro_rules! sa_binary {
    ($(#[$doc:meta])* $name:ident, $annot:ident, $raw:path) => {
        static $annot: LazyLock<Arc<Annotation>> = LazyLock::new(|| {
            Annotation::new(stringify!($name), |inv| {
                let n = inv.int(0)? as usize;
                let a = inv.arg::<SliceView>(1)?;
                let b = inv.arg::<SliceView>(2)?;
                let out = inv.arg::<SliceView>(3)?;
                debug_assert!(a.len == n && b.len == n && out.len == n);
                // SAFETY: the Mozart executor hands this worker disjoint
                // element ranges of each buffer; within a batch, views
                // are either exactly aliased (in-place arguments) or
                // disjoint, which is the kernel's documented contract.
                unsafe { $raw(n, a.ptr(), b.ptr(), out.ptr()) };
                Ok(None)
            })
            .arg("size", concrete(size_split(), vec![0]))
            .arg("a", concrete(array_split(), vec![0]))
            .arg("b", concrete(array_split(), vec![0]))
            .mut_arg("out", concrete(array_split(), vec![0]))
            .build()
        });

        $(#[$doc])*
        ///
        /// Lazily registered; evaluation happens when a result is read.
        pub fn $name(
            ctx: &MozartContext,
            n: usize,
            a: &SharedVec<f64>,
            b: &SharedVec<f64>,
            out: &SharedVec<f64>,
        ) -> Result<()> {
            ctx.call(&$annot, vec![size(n), arr(a), arr(b), arr(out)])?;
            Ok(())
        }
    };
}

macro_rules! sa_unary {
    ($(#[$doc:meta])* $name:ident, $annot:ident, $raw:path) => {
        static $annot: LazyLock<Arc<Annotation>> = LazyLock::new(|| {
            Annotation::new(stringify!($name), |inv| {
                let n = inv.int(0)? as usize;
                let a = inv.arg::<SliceView>(1)?;
                let out = inv.arg::<SliceView>(2)?;
                debug_assert!(a.len == n && out.len == n);
                // SAFETY: see the binary wrapper; same contract.
                unsafe { $raw(n, a.ptr(), out.ptr()) };
                Ok(None)
            })
            .arg("size", concrete(size_split(), vec![0]))
            .arg("a", concrete(array_split(), vec![0]))
            .mut_arg("out", concrete(array_split(), vec![0]))
            .build()
        });

        $(#[$doc])*
        ///
        /// Lazily registered; evaluation happens when a result is read.
        pub fn $name(
            ctx: &MozartContext,
            n: usize,
            a: &SharedVec<f64>,
            out: &SharedVec<f64>,
        ) -> Result<()> {
            ctx.call(&$annot, vec![size(n), arr(a), arr(out)])?;
            Ok(())
        }
    };
}

macro_rules! sa_scalar {
    ($(#[$doc:meta])* $name:ident, $annot:ident, $raw:path) => {
        static $annot: LazyLock<Arc<Annotation>> = LazyLock::new(|| {
            Annotation::new(stringify!($name), |inv| {
                let n = inv.int(0)? as usize;
                let a = inv.arg::<SliceView>(1)?;
                let k = inv.float(2)?;
                let out = inv.arg::<SliceView>(3)?;
                debug_assert!(a.len == n && out.len == n);
                // SAFETY: see the binary wrapper; same contract.
                unsafe { $raw(n, a.ptr(), k, out.ptr()) };
                Ok(None)
            })
            .arg("size", concrete(size_split(), vec![0]))
            .arg("a", concrete(array_split(), vec![0]))
            .arg("k", missing())
            .mut_arg("out", concrete(array_split(), vec![0]))
            .build()
        });

        $(#[$doc])*
        ///
        /// Lazily registered; evaluation happens when a result is read.
        pub fn $name(
            ctx: &MozartContext,
            n: usize,
            a: &SharedVec<f64>,
            k: f64,
            out: &SharedVec<f64>,
        ) -> Result<()> {
            ctx.call(&$annot, vec![size(n), arr(a), DataValue::new(FloatValue(k)), arr(out)])?;
            Ok(())
        }
    };
}

sa_binary!(
    /// Annotated `vd_add`: `out = a + b` (Listing 2).
    vd_add, VD_ADD, vectormath::vd_add_raw
);
sa_binary!(
    /// Annotated `vd_sub`: `out = a - b`.
    vd_sub, VD_SUB, vectormath::vd_sub_raw
);
sa_binary!(
    /// Annotated `vd_mul`: `out = a * b`.
    vd_mul, VD_MUL, vectormath::vd_mul_raw
);
sa_binary!(
    /// Annotated `vd_div`: `out = a / b` (Listing 2).
    vd_div, VD_DIV, vectormath::vd_div_raw
);
sa_binary!(
    /// Annotated `vd_pow`: `out = a ^ b`.
    vd_pow, VD_POW, vectormath::vd_pow_raw
);
sa_binary!(
    /// Annotated `vd_fmax`.
    vd_fmax, VD_FMAX, vectormath::vd_fmax_raw
);
sa_binary!(
    /// Annotated `vd_fmin`.
    vd_fmin, VD_FMIN, vectormath::vd_fmin_raw
);

sa_unary!(
    /// Annotated `vd_sqr`: `out = a²`.
    vd_sqr, VD_SQR, vectormath::vd_sqr_raw
);
sa_unary!(
    /// Annotated `vd_sqrt`.
    vd_sqrt, VD_SQRT, vectormath::vd_sqrt_raw
);
sa_unary!(
    /// Annotated `vd_abs`.
    vd_abs, VD_ABS, vectormath::vd_abs_raw
);
sa_unary!(
    /// Annotated `vd_inv`: `out = 1/a`.
    vd_inv, VD_INV, vectormath::vd_inv_raw
);
sa_unary!(
    /// Annotated `vd_neg`.
    vd_neg, VD_NEG, vectormath::vd_neg_raw
);
sa_unary!(
    /// Annotated `vd_exp`.
    vd_exp, VD_EXP, vectormath::vd_exp_raw
);
sa_unary!(
    /// Annotated `vd_ln`.
    vd_ln, VD_LN, vectormath::vd_ln_raw
);
sa_unary!(
    /// Annotated `vd_log1p` (Listing 2).
    vd_log1p, VD_LOG1P, vectormath::vd_log1p_raw
);
sa_unary!(
    /// Annotated `vd_erf`.
    vd_erf, VD_ERF, vectormath::vd_erf_raw
);
sa_unary!(
    /// Annotated `vd_sin`.
    vd_sin, VD_SIN, vectormath::vd_sin_raw
);
sa_unary!(
    /// Annotated `vd_cos`.
    vd_cos, VD_COS, vectormath::vd_cos_raw
);
sa_unary!(
    /// Annotated `vd_asin`.
    vd_asin, VD_ASIN, vectormath::vd_asin_raw
);

sa_scalar!(
    /// Annotated `vd_scale`: `out = a * k`.
    vd_scale, VD_SCALE, vectormath::vd_scale_raw
);
sa_scalar!(
    /// Annotated `vd_shift`: `out = a + k`.
    vd_shift, VD_SHIFT, vectormath::vd_shift_raw
);
sa_scalar!(
    /// Annotated `vd_powx`: `out = a ^ k`.
    vd_powx, VD_POWX, vectormath::vd_powx_raw
);
sa_scalar!(
    /// Annotated `vd_rsub`: `out = k - a`.
    vd_rsub, VD_RSUB, vectormath::vd_rsub_raw
);
sa_scalar!(
    /// Annotated `vd_rdiv`: `out = k / a`.
    vd_rdiv, VD_RDIV, vectormath::vd_rdiv_raw
);

// ----------------------------- BLAS -----------------------------------

static DAXPY: LazyLock<Arc<Annotation>> = LazyLock::new(|| {
    Annotation::new("daxpy", |inv| {
        let n = inv.int(0)? as usize;
        let alpha = inv.float(1)?;
        let x = inv.arg::<SliceView>(2)?;
        let y = inv.arg::<SliceView>(3)?;
        // SAFETY: disjoint worker ranges; exact aliasing allowed.
        unsafe { vectormath::daxpy_raw(n, alpha, x.ptr(), y.ptr()) };
        Ok(None)
    })
    .arg("size", concrete(size_split(), vec![0]))
    .arg("alpha", missing())
    .arg("x", concrete(array_split(), vec![0]))
    .mut_arg("y", concrete(array_split(), vec![0]))
    .build()
});

/// Annotated `daxpy`: `y = alpha * x + y`.
pub fn daxpy(
    ctx: &MozartContext,
    n: usize,
    alpha: f64,
    x: &SharedVec<f64>,
    y: &SharedVec<f64>,
) -> Result<()> {
    ctx.call(
        &DAXPY,
        vec![size(n), DataValue::new(FloatValue(alpha)), arr(x), arr(y)],
    )?;
    Ok(())
}

static DDOT: LazyLock<Arc<Annotation>> = LazyLock::new(|| {
    Annotation::new("ddot", |inv| {
        let x = inv.arg::<SliceView>(0)?;
        let y = inv.arg::<SliceView>(1)?;
        // SAFETY: read-only views of disjoint worker ranges.
        let partial = unsafe { vectormath::ddot(x.as_slice(), y.as_slice()) };
        Ok(Some(DataValue::new(FloatValue(partial))))
    })
    .arg("x", concrete(array_split(), vec![0]))
    .arg("y", concrete(array_split(), vec![0]))
    .ret(concrete(AddReduce::shared(), vec![]))
    .build()
});

/// Annotated `ddot`: parallel dot product via partial-sum merging.
pub fn ddot(ctx: &MozartContext, x: &SharedVec<f64>, y: &SharedVec<f64>) -> Result<FutureHandle> {
    let fut = ctx.call(&DDOT, vec![arr(x), arr(y)])?;
    Ok(fut.expect("ddot returns a value"))
}

static DASUM: LazyLock<Arc<Annotation>> = LazyLock::new(|| {
    Annotation::new("dasum", |inv| {
        let x = inv.arg::<SliceView>(0)?;
        // SAFETY: read-only view of this worker's range.
        let partial = vectormath::dasum(unsafe { x.as_slice() });
        Ok(Some(DataValue::new(FloatValue(partial))))
    })
    .arg("x", concrete(array_split(), vec![0]))
    .ret(concrete(AddReduce::shared(), vec![]))
    .build()
});

/// Annotated `dasum`: parallel sum of absolute values.
pub fn dasum(ctx: &MozartContext, x: &SharedVec<f64>) -> Result<FutureHandle> {
    let fut = ctx.call(&DASUM, vec![arr(x)])?;
    Ok(fut.expect("dasum returns a value"))
}

static DGEMV: LazyLock<Arc<Annotation>> = LazyLock::new(|| {
    Annotation::new("dgemv", |inv| {
        let _m = inv.int(0)?;
        let n = inv.int(1)? as usize;
        let alpha = inv.float(2)?;
        let a = inv.arg::<SliceView>(3)?;
        let x = inv.arg::<VecValue>(4)?;
        let beta = inv.float(5)?;
        let y = inv.arg::<SliceView>(6)?;
        let m_piece = y.len;
        // SAFETY: `a` and `y` are this worker's disjoint row ranges;
        // `x` is a broadcast read-only operand, and the executor
        // guarantees no pending writer exists during execution.
        unsafe {
            let a_rows = a.as_slice();
            let y_rows = y.as_slice_mut();
            vectormath::dgemv(m_piece, n, alpha, a_rows, x.0.as_slice(), beta, y_rows);
        }
        Ok(None)
    })
    .arg("m", concrete(size_split(), vec![0]))
    .arg("n", missing())
    .arg("alpha", missing())
    .arg("a", concrete(MatrixSplit::shared(), vec![0, 1]))
    .arg("x", missing())
    .arg("beta", missing())
    .mut_arg("y", concrete(array_split(), vec![0]))
    .build()
});

/// Annotated `dgemv`: `y = alpha * A x + beta * y`, `A` split by rows.
#[allow(clippy::too_many_arguments)]
pub fn dgemv(
    ctx: &MozartContext,
    m: usize,
    n: usize,
    alpha: f64,
    a: &SharedVec<f64>,
    x: &SharedVec<f64>,
    beta: f64,
    y: &SharedVec<f64>,
) -> Result<()> {
    ctx.call(
        &DGEMV,
        vec![
            size(m),
            size(n),
            DataValue::new(FloatValue(alpha)),
            arr(a),
            arr(x),
            DataValue::new(FloatValue(beta)),
            arr(y),
        ],
    )?;
    Ok(())
}

/// Every annotation this integration defines, in declaration order —
/// the walk surface for static tooling (`mozart-check`).
pub fn annotations() -> Vec<Arc<Annotation>> {
    vec![
        VD_ADD.clone(),
        VD_SUB.clone(),
        VD_MUL.clone(),
        VD_DIV.clone(),
        VD_POW.clone(),
        VD_FMAX.clone(),
        VD_FMIN.clone(),
        VD_SQR.clone(),
        VD_SQRT.clone(),
        VD_ABS.clone(),
        VD_INV.clone(),
        VD_NEG.clone(),
        VD_EXP.clone(),
        VD_LN.clone(),
        VD_LOG1P.clone(),
        VD_ERF.clone(),
        VD_SIN.clone(),
        VD_COS.clone(),
        VD_ASIN.clone(),
        VD_SCALE.clone(),
        VD_SHIFT.clone(),
        VD_POWX.clone(),
        VD_RSUB.clone(),
        VD_RDIV.clone(),
        DAXPY.clone(),
        DDOT.clone(),
        DASUM.clone(),
        DGEMV.clone(),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ctx() -> MozartContext {
        crate::register_defaults();
        let mut cfg = Config::with_workers(2);
        cfg.batch_override = Some(13);
        cfg.pedantic = true;
        MozartContext::new(cfg)
    }

    #[test]
    fn black_scholes_snippet_matches_listing_1() {
        // Listing 1: d1 = log1p(d1); d1 = d1 + tmp; d1 = d1 / vol_sqrt
        let c = ctx();
        let n = 100;
        let d1 = SharedVec::from_vec((0..n).map(|i| i as f64 * 0.01).collect());
        let tmp = SharedVec::from_vec(vec![1.0; n]);
        let vol = SharedVec::from_vec(vec![2.0; n]);
        vd_log1p(&c, n, &d1, &d1).unwrap();
        vd_add(&c, n, &d1, &tmp, &d1).unwrap();
        vd_div(&c, n, &d1, &vol, &d1).unwrap();
        assert_eq!(c.pending_calls(), 3);

        let out = d1.to_vec(); // forces evaluation
        for (i, &v) in out.iter().enumerate() {
            let expected = ((i as f64 * 0.01).ln_1p() + 1.0) / 2.0;
            assert!((v - expected).abs() < 1e-12, "index {i}");
        }
        assert_eq!(c.stats().stages, 1, "whole chain pipelines into one stage");
    }

    #[test]
    fn ddot_reduction_matches_serial() {
        let c = ctx();
        let x = SharedVec::from_vec((0..97).map(|i| i as f64).collect());
        let y = SharedVec::from_vec(vec![2.0; 97]);
        let fut = ddot(&c, &x, &y).unwrap();
        let got = fut.get().unwrap().downcast_ref::<FloatValue>().unwrap().0;
        assert_eq!(got, (0..97).map(|i| i as f64 * 2.0).sum::<f64>());
    }

    #[test]
    fn pipelined_chain_then_reduce() {
        let c = ctx();
        let n = 64;
        let a = SharedVec::from_vec(vec![3.0; n]);
        let b = SharedVec::from_vec(vec![1.0; n]);
        vd_mul(&c, n, &a, &a, &a).unwrap(); // a = 9
        vd_add(&c, n, &a, &b, &a).unwrap(); // a = 10
        let s = dasum(&c, &a).unwrap();
        let got = s.get().unwrap().downcast_ref::<FloatValue>().unwrap().0;
        assert_eq!(got, 640.0);
        assert_eq!(c.stats().stages, 1);
    }

    #[test]
    fn dgemv_splits_matrix_by_rows() {
        let c = ctx();
        // 5x3 matrix, y = A * x.
        let a = SharedVec::from_vec((0..15).map(|i| i as f64).collect());
        let x = SharedVec::from_vec(vec![1.0, 2.0, 3.0]);
        let y = SharedVec::from_vec(vec![0.0; 5]);
        dgemv(&c, 5, 3, 1.0, &a, &x, 0.0, &y).unwrap();
        let out = y.to_vec();
        // Row i = [3i, 3i+1, 3i+2] · [1,2,3].
        for (i, &got) in out.iter().enumerate() {
            let base = 3.0 * i as f64;
            let expected = base + 2.0 * (base + 1.0) + 3.0 * (base + 2.0);
            assert_eq!(got, expected, "row {i}");
        }
    }

    #[test]
    fn scalar_and_unary_wrappers() {
        let c = ctx();
        let n = 40;
        let a = SharedVec::from_vec(vec![4.0; n]);
        vd_sqrt(&c, n, &a, &a).unwrap(); // 2
        vd_scale(&c, n, &a, 10.0, &a).unwrap(); // 20
        vd_rsub(&c, n, &a, 100.0, &a).unwrap(); // 80
        daxpy(&c, n, 0.25, &a, &a).unwrap(); // 100
        assert_eq!(a.as_slice()[n - 1], 100.0);
        assert_eq!(c.stats().stages, 1);
    }
}
