//! Merge-only split type for scalar reductions (`ddot`, `dasum`).

use std::ops::Range;
use std::sync::Arc;

use mozart_core::prelude::*;

/// Additive scalar reduction: pieces are `FloatValue` partial sums and
/// merge sums them. Addition is associative, so worker-level and final
/// merges compose (§3.4).
pub struct AddReduce;

impl AddReduce {
    /// Shared instance.
    pub fn shared() -> Arc<dyn Splitter> {
        Arc::new(AddReduce)
    }
}

impl Splitter for AddReduce {
    fn name(&self) -> &'static str {
        "AddReduce"
    }

    /// Partial sums fold in any order (addition commutes) and must
    /// merge before any other function consumes them.
    fn merge_strategy(&self) -> MergeStrategy {
        MergeStrategy::Commutative { terminal: true }
    }

    fn construct(&self, _ctor_args: &[&DataValue]) -> Result<Params> {
        Ok(vec![])
    }

    fn info(&self, _arg: &DataValue, _params: &Params) -> Result<RuntimeInfo> {
        Err(Error::Split {
            split_type: "AddReduce",
            message: "merge-only split type cannot be an input".into(),
        })
    }

    fn split(&self, _arg: &DataValue, _r: Range<u64>, _p: &Params) -> Result<Option<DataValue>> {
        Err(Error::Split {
            split_type: "AddReduce",
            message: "merge-only split type cannot be split".into(),
        })
    }

    fn merge(
        &self,
        pieces: Vec<DataValue>,
        _params: &Params,
        _total_elements: u64,
    ) -> Result<DataValue> {
        let mut acc = 0.0;
        for p in pieces {
            let v = p.downcast_ref::<FloatValue>().ok_or_else(|| Error::Merge {
                split_type: "AddReduce",
                message: format!("expected FloatValue piece, got {}", p.type_name()),
            })?;
            acc += v.0;
        }
        Ok(DataValue::new(FloatValue(acc)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn merge_sums_and_is_associative() {
        let s = AddReduce;
        let mk = |x: f64| DataValue::new(FloatValue(x));
        let all = s
            .merge(vec![mk(1.0), mk(2.0), mk(3.0)], &vec![], 0)
            .unwrap();
        let left = s.merge(vec![mk(1.0), mk(2.0)], &vec![], 0).unwrap();
        let nested = s.merge(vec![left, mk(3.0)], &vec![], 0).unwrap();
        assert_eq!(
            all.downcast_ref::<FloatValue>().unwrap().0,
            nested.downcast_ref::<FloatValue>().unwrap().0
        );
    }

    #[test]
    fn split_and_info_are_rejected() {
        let s = AddReduce;
        let v = DataValue::new(FloatValue(0.0));
        assert!(s.info(&v, &vec![]).is_err());
        assert!(s.split(&v, 0..1, &vec![]).is_err());
        assert!(s
            .merge(vec![DataValue::new(IntValue(1))], &vec![], 0)
            .is_err());
    }
}
