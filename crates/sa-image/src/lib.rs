//! # sa-image — split annotations for the `imagelib` library
//!
//! The annotator-side integration for the ImageMagick stand-in (§7
//! "ImageMagick"): one split type over the opaque image handle.
//!
//! The paper's integration copies on both sides — "the split function
//! uses a crop function to clone and return a subset of the original
//! image" and the merger uses the append API — and reports that those
//! copies are why end-to-end ImageMagick speedups are limited despite
//! pipelining (§8.2, Figures 4n–o). This integration drives that tax
//! toward zero:
//!
//! * **splits are zero-copy** — [`ImageSplit::split`] hands out
//!   [`Image::rows`] views aliasing the parent pixel buffer instead of
//!   crop clones;
//! * **merges are placement writes** — the runtime preallocates the
//!   final image once and workers copy their result bands directly at
//!   their row offsets (the [`Placement`] capability inside
//!   [`MergeStrategy::Concat`]); the copying append remains only as
//!   the fallback ([`Splitter::merge`]) for runtimes with
//!   `placement_merge` disabled.
//!
//! `ImageSplit` also exposes the [`Concat`] capability (the inverse of
//! `split`): whole images stack along the row axis and row bands slice
//! back out as zero-copy views, which the serving layer uses to
//! coalesce fingerprint-identical image requests into one evaluation.
//!
//! `imagelib::blur` is deliberately **not** annotated: its edge
//! boundary condition violates the SA correctness condition (§7.1).

#![warn(missing_docs)]

use std::ops::Range;
use std::sync::{Arc, LazyLock};

use imagelib::Image;
use mozart_core::annotation::{generic, missing};
use mozart_core::prelude::*;
use mozart_core::split::{Concat, MergeStrategy, Placement};

/// `DataValue` wrapper for [`Image`].
#[derive(Debug, Clone)]
pub struct ImgValue(pub Image);

impl mozart_core::value::DataObject for ImgValue {
    fn type_name(&self) -> &'static str {
        "ImgValue"
    }
    fn as_any(&self) -> &dyn std::any::Any {
        self
    }
}

/// Row-band split type for images. Parameters: `(height, width)`.
pub struct ImageSplit;

impl ImageSplit {
    /// Shared instance.
    pub fn shared() -> Arc<dyn Splitter> {
        Arc::new(ImageSplit)
    }
}

impl Splitter for ImageSplit {
    fn name(&self) -> &'static str {
        "ImageSplit"
    }

    fn construct(&self, ctor_args: &[&DataValue]) -> Result<Params> {
        let img = ctor_args
            .first()
            .and_then(|v| v.downcast_ref::<ImgValue>())
            .ok_or_else(|| Error::Constructor {
                split_type: "ImageSplit",
                message: "expected an image argument".into(),
            })?;
        Ok(vec![img.0.height() as i64, img.0.width() as i64])
    }

    fn info(&self, _arg: &DataValue, params: &Params) -> Result<RuntimeInfo> {
        let h = params.first().copied().unwrap_or(0).max(0) as u64;
        let w = params.get(1).copied().unwrap_or(0).max(0) as u64;
        Ok(RuntimeInfo {
            total_elements: h,
            elem_size_bytes: w * (Image::CHANNELS as u64) * 4,
        })
    }

    fn split(
        &self,
        arg: &DataValue,
        range: Range<u64>,
        params: &Params,
    ) -> Result<Option<DataValue>> {
        let img = arg.downcast_ref::<ImgValue>().ok_or_else(|| Error::Split {
            split_type: "ImageSplit",
            message: format!("expected ImgValue, got {}", arg.type_name()),
        })?;
        let h = params.first().copied().unwrap_or(0).max(0) as u64;
        if img.0.height() as u64 != h {
            return Err(Error::Split {
                split_type: "ImageSplit",
                message: format!(
                    "image height {} does not match split type parameter {h}",
                    img.0.height()
                ),
            });
        }
        if range.start >= h {
            return Ok(None);
        }
        let end = range.end.min(h);
        // Zero-copy row view (the paper's crop clones here; see the
        // module docs on why this integration does not).
        Ok(Some(DataValue::new(ImgValue(
            img.0.rows(range.start as usize, end as usize),
        ))))
    }

    fn merge(
        &self,
        pieces: Vec<DataValue>,
        _params: &Params,
        total_elements: u64,
    ) -> Result<DataValue> {
        // Elements are rows: preallocate the appended image once (the
        // runtime's merge-size hint) instead of growing band by band.
        Ok(DataValue::new(ImgValue(Image::append_rows_hinted(
            &band_pieces(&pieces)?,
            total_elements as usize,
        ))))
    }

    /// Row concatenation with placement: the `(height, width)`
    /// parameters fully determine the output layout.
    fn merge_strategy(&self) -> MergeStrategy {
        MergeStrategy::Concat {
            placement: Some(Arc::new(ImageSplit)),
        }
    }

    fn concat(&self) -> Option<Arc<dyn Concat>> {
        Some(Arc::new(ImageSplit))
    }
}

impl Placement for ImageSplit {
    fn alloc_merged(
        &self,
        total_elements: u64,
        params: &Params,
        _exemplar: Option<&DataValue>,
    ) -> Result<Option<DataValue>> {
        // `(height, width)` parameters fully determine the output
        // layout, so the image allocates at stage start — on the
        // caller, while the pool is parked, where its first-touch page
        // faults run uncontended — and the exemplar is not needed. A
        // function that changes the image geometry under this split
        // type violates the annotation (split type equality is
        // `(h, w)`); `write_piece` rejects its bands with a
        // descriptive error instead of the width-mismatch panic the
        // append fallback would raise.
        let width = params.get(1).copied().unwrap_or(0).max(0) as usize;
        if width == 0 {
            return Ok(None);
        }
        // SAFETY: the executor's coverage check guarantees every row of
        // the placement output is written before the merged value is
        // released (or it is truncated to a view of the written
        // prefix), so the unspecified initial contents are never read.
        let img = unsafe { Image::alloc_rows_uninit(width, total_elements as usize) };
        Ok(Some(DataValue::new(ImgValue(img))))
    }

    fn write_piece(&self, out: &DataValue, offset: u64, piece: &DataValue) -> Result<u64> {
        let dst = out.downcast_ref::<ImgValue>().ok_or_else(|| Error::Merge {
            split_type: "ImageSplit",
            message: format!("placement output is {}, not ImgValue", out.type_name()),
        })?;
        let band = piece
            .downcast_ref::<ImgValue>()
            .ok_or_else(|| Error::Merge {
                split_type: "ImageSplit",
                message: format!("expected ImgValue piece, got {}", piece.type_name()),
            })?;
        let offset = offset as usize;
        if band.0.width() != dst.0.width()
            || offset
                .checked_add(band.0.height())
                .is_none_or(|e| e > dst.0.height())
        {
            return Err(Error::Merge {
                split_type: "ImageSplit",
                message: format!(
                    "band {}x{} at row {offset} does not fit output {}x{}",
                    band.0.width(),
                    band.0.height(),
                    dst.0.width(),
                    dst.0.height()
                ),
            });
        }
        // SAFETY: the executor guarantees concurrent `write_piece` calls
        // cover disjoint row ranges of the not-yet-observable output.
        unsafe { dst.0.write_rows_from(offset, &band.0) };
        Ok(band.0.height() as u64)
    }

    fn truncate_merged(
        &self,
        out: DataValue,
        elements: u64,
        _params: &Params,
    ) -> Result<DataValue> {
        let img = out.downcast_ref::<ImgValue>().ok_or_else(|| Error::Merge {
            split_type: "ImageSplit",
            message: format!("placement output is {}, not ImgValue", out.type_name()),
        })?;
        // NULL-split tail: the written prefix as a zero-copy row view.
        let rows = (elements as usize).min(img.0.height());
        Ok(DataValue::new(ImgValue(img.0.rows(0, rows))))
    }
}

impl Concat for ImageSplit {
    fn concat(&self, values: &[DataValue]) -> Result<(DataValue, Vec<u64>)> {
        let bands = band_pieces(values)?;
        if bands.is_empty() {
            return Err(Error::Merge {
                split_type: "ImageSplit",
                message: "nothing to concatenate".into(),
            });
        }
        if bands[1..].iter().any(|b| b.width() != bands[0].width()) {
            return Err(Error::Merge {
                split_type: "ImageSplit",
                message: "width mismatch across concatenated images".into(),
            });
        }
        let mut offsets = Vec::with_capacity(bands.len());
        let mut rows = 0u64;
        for b in &bands {
            offsets.push(rows);
            rows += b.height() as u64;
        }
        Ok((
            DataValue::new(ImgValue(Image::append_rows_hinted(&bands, rows as usize))),
            offsets,
        ))
    }

    fn slice_back(&self, out: &DataValue, offset: u64, len: u64) -> Result<DataValue> {
        let img = out.downcast_ref::<ImgValue>().ok_or_else(|| Error::Merge {
            split_type: "ImageSplit",
            message: format!("expected ImgValue, got {}", out.type_name()),
        })?;
        let (offset, len) = (offset as usize, len as usize);
        if offset.checked_add(len).is_none_or(|e| e > img.0.height()) {
            return Err(Error::Merge {
                split_type: "ImageSplit",
                message: format!(
                    "slice [{offset}, {offset}+{len}) exceeds {} rows",
                    img.0.height()
                ),
            });
        }
        // Zero-copy row view of the requested band.
        Ok(DataValue::new(ImgValue(img.0.rows(offset, offset + len))))
    }
}

fn band_pieces(pieces: &[DataValue]) -> Result<Vec<Image>> {
    pieces
        .iter()
        .map(|p| {
            p.downcast_ref::<ImgValue>()
                .map(|i| i.0.clone())
                .ok_or_else(|| Error::Merge {
                    split_type: "ImageSplit",
                    message: format!("expected ImgValue piece, got {}", p.type_name()),
                })
        })
        .collect()
}

/// Register this integration's default split types. Idempotent.
pub fn register_defaults() {
    mozart_core::registry::register_default_splitter::<ImgValue>(ImageSplit::shared());
    for a in annotations() {
        mozart_core::registry::register_annotation(a);
    }
}

/// Values accepted by the wrappers.
pub trait ImgArg {
    /// Convert to a Mozart argument value.
    fn to_value(&self) -> DataValue;
}

impl ImgArg for Image {
    fn to_value(&self) -> DataValue {
        DataValue::new(ImgValue(self.clone()))
    }
}
impl ImgArg for FutureHandle {
    fn to_value(&self) -> DataValue {
        self.as_value()
    }
}

/// Materialize a lazy image result.
pub fn get_image(f: &FutureHandle) -> Result<Image> {
    let dv = f.get()?;
    dv.downcast_ref::<ImgValue>()
        .map(|i| i.0.clone())
        .ok_or(Error::ArgType {
            function: "sa_image::get_image",
            arg: 0,
            expected: "ImgValue",
            actual: dv.type_name(),
        })
}

fn img_piece(inv: &Invocation<'_>, i: usize) -> Result<Image> {
    Ok(inv.arg::<ImgValue>(i)?.0.clone())
}

macro_rules! img_sa_unary {
    ($(#[$doc:meta])* $name:ident, $annot:ident, $f:path) => {
        static $annot: LazyLock<Arc<Annotation>> = LazyLock::new(|| {
            Annotation::new(stringify!($name), |inv| {
                let img = img_piece(inv, 0)?;
                Ok(Some(DataValue::new(ImgValue($f(&img)))))
            })
            .arg("img", generic(0))
            .ret(generic(0))
            .build()
        });

        $(#[$doc])*
        pub fn $name(ctx: &MozartContext, img: &impl ImgArg) -> Result<FutureHandle> {
            Ok(ctx.call(&$annot, vec![img.to_value()])?.expect("returns"))
        }
    };
}

img_sa_unary!(
    /// Annotated luminance grayscale.
    grayscale, GRAYSCALE, imagelib::grayscale
);
img_sa_unary!(
    /// Annotated channel inversion.
    invert, INVERT, imagelib::invert
);
img_sa_unary!(
    /// Annotated sepia tone.
    sepia, SEPIA, imagelib::sepia
);

static GAMMA: LazyLock<Arc<Annotation>> = LazyLock::new(|| {
    Annotation::new("gamma", |inv| {
        let img = img_piece(inv, 0)?;
        let g = inv.float(1)? as f32;
        Ok(Some(DataValue::new(ImgValue(imagelib::gamma(&img, g)))))
    })
    .arg("img", generic(0))
    .arg("g", missing())
    .ret(generic(0))
    .build()
});

/// Annotated gamma correction.
pub fn gamma(ctx: &MozartContext, img: &impl ImgArg, g: f32) -> Result<FutureHandle> {
    Ok(ctx
        .call(
            &GAMMA,
            vec![img.to_value(), DataValue::new(FloatValue(g as f64))],
        )?
        .expect("returns"))
}

static CONTRAST: LazyLock<Arc<Annotation>> = LazyLock::new(|| {
    Annotation::new("contrast", |inv| {
        let img = img_piece(inv, 0)?;
        let amount = inv.float(1)? as f32;
        Ok(Some(DataValue::new(ImgValue(imagelib::contrast(
            &img, amount,
        )))))
    })
    .arg("img", generic(0))
    .arg("amount", missing())
    .ret(generic(0))
    .build()
});

/// Annotated sigmoidal contrast adjustment.
pub fn contrast(ctx: &MozartContext, img: &impl ImgArg, amount: f32) -> Result<FutureHandle> {
    Ok(ctx
        .call(
            &CONTRAST,
            vec![img.to_value(), DataValue::new(FloatValue(amount as f64))],
        )?
        .expect("returns"))
}

static MODULATE: LazyLock<Arc<Annotation>> = LazyLock::new(|| {
    Annotation::new("modulate", |inv| {
        let img = img_piece(inv, 0)?;
        let b = inv.float(1)? as f32;
        let s = inv.float(2)? as f32;
        let h = inv.float(3)? as f32;
        Ok(Some(DataValue::new(ImgValue(imagelib::modulate(
            &img, b, s, h,
        )))))
    })
    .arg("img", generic(0))
    .arg("brightness", missing())
    .arg("saturation", missing())
    .arg("hue", missing())
    .ret(generic(0))
    .build()
});

/// Annotated HSV modulation (percentages, 100 = unchanged).
pub fn modulate(
    ctx: &MozartContext,
    img: &impl ImgArg,
    brightness: f32,
    saturation: f32,
    hue: f32,
) -> Result<FutureHandle> {
    Ok(ctx
        .call(
            &MODULATE,
            vec![
                img.to_value(),
                DataValue::new(FloatValue(brightness as f64)),
                DataValue::new(FloatValue(saturation as f64)),
                DataValue::new(FloatValue(hue as f64)),
            ],
        )?
        .expect("returns"))
}

static COLORIZE: LazyLock<Arc<Annotation>> = LazyLock::new(|| {
    Annotation::new("colorize", |inv| {
        let img = img_piece(inv, 0)?;
        let r = inv.float(1)? as f32;
        let g = inv.float(2)? as f32;
        let b = inv.float(3)? as f32;
        let alpha = inv.float(4)? as f32;
        Ok(Some(DataValue::new(ImgValue(imagelib::colorize(
            &img,
            [r, g, b],
            alpha,
        )))))
    })
    .arg("img", generic(0))
    .arg("r", missing())
    .arg("g", missing())
    .arg("b", missing())
    .arg("alpha", missing())
    .ret(generic(0))
    .build()
});

/// Annotated color blend at `alpha` opacity.
pub fn colorize(
    ctx: &MozartContext,
    img: &impl ImgArg,
    rgb: [f32; 3],
    alpha: f32,
) -> Result<FutureHandle> {
    Ok(ctx
        .call(
            &COLORIZE,
            vec![
                img.to_value(),
                DataValue::new(FloatValue(rgb[0] as f64)),
                DataValue::new(FloatValue(rgb[1] as f64)),
                DataValue::new(FloatValue(rgb[2] as f64)),
                DataValue::new(FloatValue(alpha as f64)),
            ],
        )?
        .expect("returns"))
}

static COLORTONE: LazyLock<Arc<Annotation>> = LazyLock::new(|| {
    Annotation::new("colortone", |inv| {
        let img = img_piece(inv, 0)?;
        let r = inv.float(1)? as f32;
        let g = inv.float(2)? as f32;
        let b = inv.float(3)? as f32;
        let negate = inv.int(4)? != 0;
        Ok(Some(DataValue::new(ImgValue(imagelib::colortone(
            &img,
            [r, g, b],
            negate,
        )))))
    })
    .arg("img", generic(0))
    .arg("r", missing())
    .arg("g", missing())
    .arg("b", missing())
    .arg("negate", missing())
    .ret(generic(0))
    .build()
});

/// Annotated colortone (multiply/screen overlay).
pub fn colortone(
    ctx: &MozartContext,
    img: &impl ImgArg,
    rgb: [f32; 3],
    negate: bool,
) -> Result<FutureHandle> {
    Ok(ctx
        .call(
            &COLORTONE,
            vec![
                img.to_value(),
                DataValue::new(FloatValue(rgb[0] as f64)),
                DataValue::new(FloatValue(rgb[1] as f64)),
                DataValue::new(FloatValue(rgb[2] as f64)),
                DataValue::new(IntValue(negate as i64)),
            ],
        )?
        .expect("returns"))
}

static LEVELS: LazyLock<Arc<Annotation>> = LazyLock::new(|| {
    Annotation::new("levels", |inv| {
        let img = img_piece(inv, 0)?;
        let black = inv.float(1)? as f32;
        let white = inv.float(2)? as f32;
        Ok(Some(DataValue::new(ImgValue(imagelib::levels(
            &img, black, white,
        )))))
    })
    .arg("img", generic(0))
    .arg("black", missing())
    .arg("white", missing())
    .ret(generic(0))
    .build()
});

/// Annotated linear level mapping.
pub fn levels(
    ctx: &MozartContext,
    img: &impl ImgArg,
    black: f32,
    white: f32,
) -> Result<FutureHandle> {
    Ok(ctx
        .call(
            &LEVELS,
            vec![
                img.to_value(),
                DataValue::new(FloatValue(black as f64)),
                DataValue::new(FloatValue(white as f64)),
            ],
        )?
        .expect("returns"))
}

/// Every annotation this integration defines, in declaration order —
/// the walk surface for static tooling (`mozart-check`).
pub fn annotations() -> Vec<Arc<Annotation>> {
    vec![
        GRAYSCALE.clone(),
        INVERT.clone(),
        SEPIA.clone(),
        GAMMA.clone(),
        CONTRAST.clone(),
        MODULATE.clone(),
        COLORIZE.clone(),
        COLORTONE.clone(),
        LEVELS.clone(),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ctx() -> MozartContext {
        register_defaults();
        let mut cfg = Config::with_workers(2);
        cfg.batch_override = Some(5);
        cfg.pedantic = true;
        MozartContext::new(cfg)
    }

    #[test]
    fn split_merge_roundtrip() {
        let s = ImageSplit;
        let img = Image::synthetic(12, 17, 1);
        let arg = DataValue::new(ImgValue(img.clone()));
        let params = s.construct(&[&arg]).unwrap();
        assert_eq!(params, vec![17, 12]);
        let p1 = s.split(&arg, 0..9, &params).unwrap().unwrap();
        let p2 = s.split(&arg, 9..17, &params).unwrap().unwrap();
        let merged = s.merge(vec![p1, p2], &params, 17).unwrap();
        let out = merged.downcast_ref::<ImgValue>().unwrap();
        assert_eq!(out.0.mean_abs_diff(&img), 0.0);
        assert!(s.split(&arg, 17..20, &params).unwrap().is_none());
    }

    #[test]
    fn view_split_matches_copying_crop_pixel_for_pixel() {
        // The ImageRows view path must be indistinguishable from the
        // paper's crop-clone split, and the placement merge from the
        // copying append.
        let s = ImageSplit;
        let img = Image::synthetic(10, 23, 4);
        let arg = DataValue::new(ImgValue(img.clone()));
        let params = s.construct(&[&arg]).unwrap();
        let ranges = [(0u64, 7u64), (7, 16), (16, 23)];
        let mut views = Vec::new();
        for &(a, b) in &ranges {
            let piece = s.split(&arg, a..b, &params).unwrap().unwrap();
            let v = piece.downcast_ref::<ImgValue>().unwrap();
            let crop = img.crop_rows(a as usize, b as usize);
            assert_eq!(v.0.data(), crop.data(), "view rows [{a}, {b})");
            views.push(piece);
        }
        // Placement: allocate from the first piece, write out of order.
        let out = s
            .alloc_merged(23, &params, Some(&views[0]))
            .unwrap()
            .expect("ImageSplit supports placement");
        for (&(a, _), piece) in ranges.iter().zip(&views).rev() {
            s.write_piece(&out, a, piece).unwrap();
        }
        let placed = out.downcast_ref::<ImgValue>().unwrap();
        assert_eq!(placed.0.mean_abs_diff(&img), 0.0);
        // Copying fallback agrees.
        let merged = s.merge(views, &params, 23).unwrap();
        let appended = merged.downcast_ref::<ImgValue>().unwrap();
        assert_eq!(appended.0.mean_abs_diff(&img), 0.0);
    }

    #[test]
    fn placement_on_and_off_produce_identical_pipelines() {
        register_defaults();
        let img = Image::synthetic(33, 57, 13);
        let run = |placement: bool| {
            let mut cfg = Config::with_workers(3);
            cfg.batch_override = Some(5);
            cfg.pedantic = true;
            cfg.placement_merge = placement;
            let c = MozartContext::new(cfg);
            let t = colortone(&c, &img, [0.13, 0.17, 0.43], false).unwrap();
            let t = gamma(&c, &t, 1.3).unwrap();
            let out = get_image(&t).unwrap();
            let stats = c.stats();
            (out, stats)
        };
        let (on, stats_on) = run(true);
        let (off, stats_off) = run(false);
        assert_eq!(
            on.mean_abs_diff(&off),
            0.0,
            "placement must not change pixels"
        );
        assert!(
            stats_on.placement_writes > 0,
            "placement path engaged: {stats_on:?}"
        );
        assert_eq!(stats_off.placement_writes, 0);
    }

    #[test]
    fn filter_pipeline_matches_direct() {
        let c = ctx();
        let img = Image::synthetic(24, 31, 7);
        // A Nashville-like chain.
        let t = colortone(&c, &img, [0.13, 0.17, 0.43], false).unwrap();
        let t = gamma(&c, &t, 1.3).unwrap();
        let t = modulate(&c, &t, 100.0, 150.0, 100.0).unwrap();
        let out = get_image(&t).unwrap();

        let direct = imagelib::modulate(
            &imagelib::gamma(&imagelib::colortone(&img, [0.13, 0.17, 0.43], false), 1.3),
            100.0,
            150.0,
            100.0,
        );
        assert!(out.mean_abs_diff(&direct) < 1e-6);
        assert_eq!(c.stats().stages, 1, "per-pixel chain pipelines");
    }

    #[test]
    fn remaining_wrappers_match_direct() {
        let c = ctx();
        let img = Image::synthetic(10, 13, 3);
        assert!(
            get_image(&grayscale(&c, &img).unwrap())
                .unwrap()
                .mean_abs_diff(&imagelib::grayscale(&img))
                < 1e-7
        );
        assert!(
            get_image(&invert(&c, &img).unwrap())
                .unwrap()
                .mean_abs_diff(&imagelib::invert(&img))
                < 1e-7
        );
        assert!(
            get_image(&sepia(&c, &img).unwrap())
                .unwrap()
                .mean_abs_diff(&imagelib::sepia(&img))
                < 1e-7
        );
        assert!(
            get_image(&contrast(&c, &img, 4.0).unwrap())
                .unwrap()
                .mean_abs_diff(&imagelib::contrast(&img, 4.0))
                < 1e-6
        );
        assert!(
            get_image(&levels(&c, &img, 0.1, 0.9).unwrap())
                .unwrap()
                .mean_abs_diff(&imagelib::levels(&img, 0.1, 0.9))
                < 1e-6
        );
        assert!(
            get_image(&colorize(&c, &img, [0.5, 0.1, 0.9], 0.4).unwrap())
                .unwrap()
                .mean_abs_diff(&imagelib::colorize(&img, [0.5, 0.1, 0.9], 0.4))
                < 1e-7
        );
    }
}
