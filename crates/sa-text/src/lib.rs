//! # sa-text — split annotations for the `textproc` library
//!
//! The annotator-side integration for the spaCy stand-in (§7 "spaCy"):
//! "We added a split type that uses spaCy's builtin minibatch tokenizer
//! to split a corpus of text. This allows any function (including
//! user-defined ones) that accepts text and internally uses spaCy
//! functions to be parallelized and pipelined."
//!
//! [`CorpusSplit`] splits a corpus by documents; [`annotate_corpus_fn`]
//! is the Rust analogue of the Python decorator: hand it *any*
//! per-document function and it becomes a parallelizable annotated
//! call. The `textproc` crate itself is not modified.

#![warn(missing_docs)]

use std::ops::Range;
use std::sync::{Arc, LazyLock};

use mozart_core::annotation::concrete;
use mozart_core::prelude::*;
use mozart_core::split::{Concat, MergeStrategy};
use textproc::{Corpus, DocFeatures, TaggedDoc};

/// `DataValue` wrapper for a corpus of documents.
#[derive(Debug, Clone)]
pub struct CorpusValue(pub Arc<Corpus>);

impl mozart_core::value::DataObject for CorpusValue {
    fn type_name(&self) -> &'static str {
        "CorpusValue"
    }
    fn as_any(&self) -> &dyn std::any::Any {
        self
    }
}

/// `DataValue` wrapper for tagged output (one entry per document).
#[derive(Debug, Clone)]
pub struct TaggedValue(pub Arc<Vec<(TaggedDoc, DocFeatures)>>);

impl mozart_core::value::DataObject for TaggedValue {
    fn type_name(&self) -> &'static str {
        "TaggedValue"
    }
    fn as_any(&self) -> &dyn std::any::Any {
        self
    }
}

/// Document-based split type for corpora and per-document results.
/// Parameter: document count. Splits slice the document list
/// (the minibatch pattern); merges concatenate in document order.
pub struct CorpusSplit;

impl CorpusSplit {
    /// Shared instance.
    pub fn shared() -> Arc<dyn Splitter> {
        Arc::new(CorpusSplit)
    }

    fn docs_of(v: &DataValue) -> Result<usize> {
        if let Some(c) = v.downcast_ref::<CorpusValue>() {
            return Ok(c.0.len());
        }
        if let Some(t) = v.downcast_ref::<TaggedValue>() {
            return Ok(t.0.len());
        }
        Err(Error::Split {
            split_type: "CorpusSplit",
            message: format!("expected CorpusValue or TaggedValue, got {}", v.type_name()),
        })
    }
}

impl Splitter for CorpusSplit {
    fn name(&self) -> &'static str {
        "CorpusSplit"
    }

    fn construct(&self, ctor_args: &[&DataValue]) -> Result<Params> {
        let v = ctor_args.first().ok_or_else(|| Error::Constructor {
            split_type: "CorpusSplit",
            message: "expected a corpus argument".into(),
        })?;
        Ok(vec![Self::docs_of(v)? as i64])
    }

    fn info(&self, _arg: &DataValue, params: &Params) -> Result<RuntimeInfo> {
        Ok(RuntimeInfo {
            total_elements: params.first().copied().unwrap_or(0).max(0) as u64,
            // Documents are large; approximate 1 KiB per doc so batches
            // stay cache-sized.
            elem_size_bytes: 1024,
        })
    }

    fn split(
        &self,
        arg: &DataValue,
        range: Range<u64>,
        params: &Params,
    ) -> Result<Option<DataValue>> {
        let total = Self::docs_of(arg)?;
        let declared = params.first().copied().unwrap_or(0).max(0) as usize;
        if total != declared {
            return Err(Error::Split {
                split_type: "CorpusSplit",
                message: format!("corpus has {total} docs, split type says {declared}"),
            });
        }
        if range.start >= total as u64 {
            return Ok(None);
        }
        let start = range.start as usize;
        let end = (range.end as usize).min(total);
        if let Some(c) = arg.downcast_ref::<CorpusValue>() {
            return Ok(Some(DataValue::new(CorpusValue(Arc::new(
                c.0[start..end].to_vec(),
            )))));
        }
        if let Some(t) = arg.downcast_ref::<TaggedValue>() {
            return Ok(Some(DataValue::new(TaggedValue(Arc::new(
                t.0[start..end].to_vec(),
            )))));
        }
        unreachable!("docs_of validated the type");
    }

    fn merge(
        &self,
        pieces: Vec<DataValue>,
        _params: &Params,
        _total_elements: u64,
    ) -> Result<DataValue> {
        let first = pieces.first().ok_or_else(|| Error::Merge {
            split_type: "CorpusSplit",
            message: "no pieces".into(),
        })?;
        if first.downcast_ref::<CorpusValue>().is_some() {
            let mut out = Vec::new();
            for p in &pieces {
                let c = p
                    .downcast_ref::<CorpusValue>()
                    .ok_or_else(|| Error::Merge {
                        split_type: "CorpusSplit",
                        message: "mixed piece types".into(),
                    })?;
                out.extend(c.0.iter().cloned());
            }
            return Ok(DataValue::new(CorpusValue(Arc::new(out))));
        }
        let mut out = Vec::new();
        for p in &pieces {
            let t = p
                .downcast_ref::<TaggedValue>()
                .ok_or_else(|| Error::Merge {
                    split_type: "CorpusSplit",
                    message: "mixed piece types".into(),
                })?;
            out.extend(t.0.iter().cloned());
        }
        Ok(DataValue::new(TaggedValue(Arc::new(out))))
    }

    /// Document concatenation (no placement: documents are variably
    /// sized heap values; collect-and-extend is the natural merge).
    fn merge_strategy(&self) -> MergeStrategy {
        MergeStrategy::Concat { placement: None }
    }

    fn concat(&self) -> Option<Arc<dyn Concat>> {
        Some(Arc::new(CorpusSplit))
    }
}

impl Concat for CorpusSplit {
    fn concat(&self, values: &[DataValue]) -> Result<(DataValue, Vec<u64>)> {
        if values.is_empty() {
            return Err(Error::Merge {
                split_type: "CorpusSplit",
                message: "nothing to concatenate".into(),
            });
        }
        let mut offsets = Vec::with_capacity(values.len());
        let mut docs = 0u64;
        for v in values {
            offsets.push(docs);
            docs += Self::docs_of(v)? as u64;
        }
        let cat = Splitter::merge(self, values.to_vec(), &vec![docs as i64], docs)?;
        Ok((cat, offsets))
    }

    fn slice_back(&self, out: &DataValue, offset: u64, len: u64) -> Result<DataValue> {
        let total = Self::docs_of(out)?;
        let (offset, len) = (offset as usize, len as usize);
        if offset.checked_add(len).is_none_or(|e| e > total) {
            return Err(Error::Merge {
                split_type: "CorpusSplit",
                message: format!("slice [{offset}, {offset}+{len}) exceeds {total} docs"),
            });
        }
        if let Some(c) = out.downcast_ref::<CorpusValue>() {
            return Ok(DataValue::new(CorpusValue(Arc::new(
                c.0[offset..offset + len].to_vec(),
            ))));
        }
        if let Some(t) = out.downcast_ref::<TaggedValue>() {
            return Ok(DataValue::new(TaggedValue(Arc::new(
                t.0[offset..offset + len].to_vec(),
            ))));
        }
        unreachable!("docs_of validated the type");
    }
}

/// Register this integration's default split types. Idempotent.
pub fn register_defaults() {
    mozart_core::registry::register_default_splitter::<CorpusValue>(CorpusSplit::shared());
    mozart_core::registry::register_default_splitter::<TaggedValue>(CorpusSplit::shared());
    for a in annotations() {
        mozart_core::registry::register_annotation(a);
    }
}

/// Wrap a corpus as a Mozart argument.
pub fn corpus(c: &Corpus) -> DataValue {
    DataValue::new(CorpusValue(Arc::new(c.clone())))
}

/// Materialize a lazy tagged result.
pub fn get_tagged(f: &FutureHandle) -> Result<Vec<(TaggedDoc, DocFeatures)>> {
    let dv = f.get()?;
    dv.downcast_ref::<TaggedValue>()
        .map(|t| t.0.as_ref().clone())
        .ok_or(Error::ArgType {
            function: "sa_text::get_tagged",
            arg: 0,
            expected: "TaggedValue",
            actual: dv.type_name(),
        })
}

/// The Rust analogue of the Python decorator: annotate *any*
/// per-document corpus function so Mozart can split and parallelize it.
///
/// The function must be document-local (each output entry depends only
/// on the corresponding input document) — the SA correctness condition.
pub fn annotate_corpus_fn(
    name: &'static str,
    f: impl Fn(&[String]) -> Vec<(TaggedDoc, DocFeatures)> + Send + Sync + 'static,
) -> Arc<Annotation> {
    Annotation::new(name, move |inv: &Invocation<'_>| {
        let c = inv.arg::<CorpusValue>(0)?;
        Ok(Some(DataValue::new(TaggedValue(Arc::new(f(&c.0))))))
    })
    .arg("corpus", concrete(CorpusSplit::shared(), vec![0]))
    // Output entries are document-aligned with the input, so the result
    // carries the same CorpusSplit<docs> type.
    .ret(concrete(CorpusSplit::shared(), vec![0]))
    .build()
}

/// Annotated `tag_corpus`: the paper's Speech Tag workload body.
static TAG_CORPUS: LazyLock<Arc<Annotation>> = LazyLock::new(|| {
    Annotation::new("tag_corpus", |inv| {
        let c = inv.arg::<CorpusValue>(0)?;
        Ok(Some(DataValue::new(TaggedValue(Arc::new(
            textproc::tag_corpus(&c.0),
        )))))
    })
    .arg("corpus", concrete(CorpusSplit::shared(), vec![0]))
    .ret(concrete(CorpusSplit::shared(), vec![0]))
    .build()
});

/// Annotated part-of-speech tagging + feature extraction over a corpus.
pub fn tag_corpus(ctx: &MozartContext, c: &Corpus) -> Result<FutureHandle> {
    Ok(ctx.call(&TAG_CORPUS, vec![corpus(c)])?.expect("returns"))
}

/// Every annotation this integration defines, in declaration order —
/// the walk surface for static tooling (`mozart-check`).
pub fn annotations() -> Vec<Arc<Annotation>> {
    vec![TAG_CORPUS.clone()]
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ctx() -> MozartContext {
        register_defaults();
        let mut cfg = Config::with_workers(3);
        cfg.batch_override = Some(4);
        cfg.pedantic = true;
        MozartContext::new(cfg)
    }

    #[test]
    fn split_merge_roundtrip() {
        let s = CorpusSplit;
        let c = textproc::synthetic_corpus(11, 8, 3);
        let arg = corpus(&c);
        let params = s.construct(&[&arg]).unwrap();
        assert_eq!(params, vec![11]);
        let p1 = s.split(&arg, 0..6, &params).unwrap().unwrap();
        let p2 = s.split(&arg, 6..11, &params).unwrap().unwrap();
        let merged = s.merge(vec![p1, p2], &params, 0).unwrap();
        assert_eq!(merged.downcast_ref::<CorpusValue>().unwrap().0.as_ref(), &c);
        assert!(s.split(&arg, 11..12, &params).unwrap().is_none());
    }

    #[test]
    fn tagging_matches_direct() {
        let c = ctx();
        let docs = textproc::synthetic_corpus(25, 30, 9);
        let fut = tag_corpus(&c, &docs).unwrap();
        let got = get_tagged(&fut).unwrap();
        let expect = textproc::tag_corpus(&docs);
        assert_eq!(got.len(), expect.len());
        for (g, e) in got.iter().zip(&expect) {
            assert_eq!(g.0, e.0);
            assert_eq!(g.1, e.1);
        }
    }

    #[test]
    fn corpus_of_one_document_still_works() {
        let c = ctx();
        let docs = vec!["the movie was really good".to_string()];
        let got = get_tagged(&tag_corpus(&c, &docs).unwrap()).unwrap();
        assert_eq!(got.len(), 1);
        assert_eq!(got[0].1.adjectives, 1);
    }
}
