//! # mozart-serve — concurrent pipeline serving for the Mozart runtime
//!
//! The paper's runtime (`libmozart`, §4–§5) optimizes one client's lazy
//! dataflow graph at a time; its Figure 5 shows client registration and
//! planning as real per-evaluation overheads. This crate grows the
//! runtime into a multi-tenant, in-process *service* that amortizes
//! both — the same observation Weld (CIDR 2017) makes from the JIT
//! side: a serving runtime must amortize its optimizer across repeated,
//! structurally identical pipelines.
//!
//! The mechanisms, all shared across every client of a
//! [`PipelineService`]:
//!
//! * **A shared worker pool** ([`mozart_core::PoolHandle`]): one
//!   machine-sized set of threads serves every session. Two concurrent
//!   clients no longer spawn two pools and oversubscribe the host;
//!   per-session usage is accounted in
//!   [`PoolStats::sessions`](mozart_core::PoolStats).
//! * **Deficit-weighted fair scheduling**: idle pool workers serve the
//!   open job of the most-underserved session per unit weight instead
//!   of scanning FIFO, so one hot tenant cannot monopolize the pool.
//!   Sessions carry weights ([`Session::set_weight`], the
//!   builder's default, or the wire protocol's `WEIGHT` line);
//!   starvation is bounded by a deficit cap and by caller
//!   participation (see `mozart_core::pool`).
//! * **A plan cache** ([`mozart_core::PlanCache`]): evaluations
//!   fingerprint their pending call graph; repeats replay memoized
//!   stage skeletons instead of re-running split-type inference and
//!   stage grouping, re-binding only the materialized values. Shape or
//!   split-type changes change the fingerprint, so stale plans never
//!   replay.
//! * **Cross-request coalescing**: queued blocking requests whose
//!   pending-segment fingerprints match ([`Pipeline::coalesce_key`])
//!   evaluate as *one* pipeline over concatenated inputs, and the
//!   per-element outputs are split back per request — the serving
//!   analogue of model-server micro-batching.
//!   [`ServiceStats::coalesced_requests`] counts the piggybacked
//!   requests.
//! * **Bounded admission**: at most `max_inflight` evaluations run, at
//!   most `queue_depth` callers wait (FIFO — released slots go to the
//!   oldest waiter; `try_call` never barges past the queue), and
//!   everyone else gets the typed [`ServeError::Saturated`]
//!   backpressure error immediately.
//! * **Session byte budgets**: the bytes split and merged per session
//!   (from the split info API's element sizes) are metered; sessions
//!   over their budget are shed with [`ServeError::OverBudget`] —
//!   load shedding by cost, not just by count.
//! * **Fault tolerance**: a panicking split/evaluate/merge fails only
//!   its request with the typed
//!   [`mozart_core::Error::TaskPanicked`] while the shared pool
//!   survives (a worker that dies anyway is respawned); transient
//!   failures retry with jittered backoff under the same admission
//!   permit ([`ServiceConfig::max_retries`]); requests carry deadlines
//!   ([`Request::with_deadline_ms`], [`Session::set_deadline`], the
//!   protocol's `DEADLINE_MS=`) enforced at every wait point and
//!   cooperatively mid-evaluation; and [`PipelineService::drain`]
//!   closes admission gracefully. Faults are injected deterministically
//!   for testing via [`mozart_core::FaultPlan`].
//! * **Overload resilience**: the in-flight limit adapts by AIMD on
//!   measured end-to-end latency ([`adaptive`]) with CoDel-style
//!   sojourn shedding of standing queues ([`ServeError::QueueShed`]);
//!   a process-wide memory ceiling (`mozart_core::membudget`) sheds
//!   requests whose estimated footprint cannot fit
//!   ([`ServeError::OverMemory`]) and stops coalesced batches from
//!   growing under pressure; and per-pipeline circuit breakers
//!   ([`breaker`]) fast-fail pipelines stuck in consecutive transient
//!   failures ([`ServeError::CircuitOpen`]) until a half-open probe
//!   succeeds.
//! * **Observability** ([`ServiceBuilder::tracing`]): per-request span
//!   trees (queue wait, coalesce wait, retry attempts with cause, and
//!   the executor's per-batch split/task/merge spans — see
//!   [`mozart_core::trace`]), log2-bucketed latency histograms with
//!   p50/p90/p99/p999 ([`metrics`]), a Prometheus-style text page
//!   ([`PipelineService::metrics_text`], the `METRICS` protocol line,
//!   `serve_tcp --metrics-port`), per-trace lookup (`TRACE <id>`), and
//!   a deadline-relative slow-request log. Off by default; when off the
//!   request path records nothing.
//!
//! ## Quickstart
//!
//! ```
//! use mozart_serve::{PipelineService, Request};
//!
//! let service = PipelineService::builder()
//!     .workers(2)
//!     .builtin_pipelines() // black_scholes, haversine, nashville
//!     .build();
//! let session = service.session();
//! let resp = session
//!     .call("black_scholes", &Request::new().with("n", 2048))
//!     .unwrap();
//! assert!(resp.body.starts_with("call_sum="));
//! // The second, structurally identical request replays the cached plan.
//! session
//!     .call("black_scholes", &Request::new().with("n", 2048))
//!     .unwrap();
//! assert_eq!(service.stats().plan_cache.hits, 1);
//! ```
//!
//! A thin TCP front-end speaking a line-delimited protocol (see
//! [`protocol`]) lives in `examples/serve_tcp.rs`; the closed-loop
//! throughput benchmark behind `bench_results/BENCH_serve.json` lives in
//! `crates/bench/benches/serve_throughput.rs`.

#![warn(missing_docs)]
#![warn(clippy::unwrap_used, clippy::expect_used)]

pub mod adaptive;
mod admission;
pub mod breaker;
pub mod error;
pub mod metrics;
pub mod pipelines;
pub mod protocol;
mod service;
pub mod tcpfront;

pub use adaptive::{AimdConfig, AimdController};
pub use breaker::{BreakerConfig, BreakerState};
pub use error::{Result, ServeError};
pub use metrics::{Histogram, HistogramSnapshot};
pub use pipelines::builtin_pipelines;
pub use service::{
    run_segment, Pipeline, PipelineService, Request, Response, Segment, SegmentEval, SegmentInput,
    SegmentRespond, ServiceBuilder, ServiceConfig, ServiceMetrics, ServiceStats, Session,
    SlowRequest, MAX_COALESCE, PHASE_NAMES,
};
