//! The bounded admission queue: at most `max_inflight` evaluations run
//! concurrently, at most `queue_depth` callers wait for a slot, and
//! everyone past that is turned away with
//! [`ServeError::Saturated`] — backpressure instead of unbounded
//! queueing.
//!
//! Bounding *both* dimensions matters for a serving system: `max_inflight`
//! keeps concurrent evaluations from thrashing the shared worker pool,
//! while `queue_depth` bounds tail latency — a request that would wait
//! behind an arbitrarily long line is cheaper to reject immediately.

use std::sync::{Condvar, Mutex};

use crate::error::ServeError;

#[derive(Default)]
struct AdmissionState {
    inflight: usize,
    waiting: usize,
}

/// Counting semaphore with a bounded wait queue.
pub(crate) struct Admission {
    state: Mutex<AdmissionState>,
    cv: Condvar,
    max_inflight: usize,
    queue_depth: usize,
}

impl Admission {
    pub(crate) fn new(max_inflight: usize, queue_depth: usize) -> Admission {
        Admission {
            state: Mutex::new(AdmissionState::default()),
            cv: Condvar::new(),
            max_inflight: max_inflight.max(1),
            queue_depth,
        }
    }

    fn saturated(&self) -> ServeError {
        ServeError::Saturated {
            max_inflight: self.max_inflight,
            queue_depth: self.queue_depth,
        }
    }

    /// Acquire a slot, waiting in the bounded queue if necessary.
    pub(crate) fn acquire(&self) -> Result<AdmissionPermit<'_>, ServeError> {
        let mut st = lock(&self.state);
        if st.inflight < self.max_inflight {
            st.inflight += 1;
            return Ok(AdmissionPermit { admission: self });
        }
        if st.waiting >= self.queue_depth {
            return Err(self.saturated());
        }
        st.waiting += 1;
        while st.inflight >= self.max_inflight {
            st = self.cv.wait(st).unwrap_or_else(|p| p.into_inner());
        }
        st.waiting -= 1;
        st.inflight += 1;
        Ok(AdmissionPermit { admission: self })
    }

    /// Acquire a slot only if one is free right now; never waits.
    pub(crate) fn try_acquire(&self) -> Result<AdmissionPermit<'_>, ServeError> {
        let mut st = lock(&self.state);
        if st.inflight < self.max_inflight {
            st.inflight += 1;
            Ok(AdmissionPermit { admission: self })
        } else {
            Err(self.saturated())
        }
    }

    /// Current `(inflight, waiting)` snapshot.
    pub(crate) fn load(&self) -> (usize, usize) {
        let st = lock(&self.state);
        (st.inflight, st.waiting)
    }
}

/// An admitted request's slot; released on drop.
pub(crate) struct AdmissionPermit<'a> {
    admission: &'a Admission,
}

impl Drop for AdmissionPermit<'_> {
    fn drop(&mut self) {
        let mut st = lock(&self.admission.state);
        st.inflight -= 1;
        drop(st);
        self.admission.cv.notify_one();
    }
}

fn lock<T>(m: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|p| p.into_inner())
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn admits_up_to_max_inflight() {
        let a = Admission::new(2, 0);
        let p1 = a.acquire().unwrap();
        let _p2 = a.acquire().unwrap();
        assert!(matches!(a.try_acquire(), Err(ServeError::Saturated { .. })));
        // With queue_depth 0, a blocking acquire is also rejected.
        assert!(matches!(a.acquire(), Err(ServeError::Saturated { .. })));
        drop(p1);
        let _p3 = a.acquire().unwrap();
    }

    #[test]
    fn waiters_are_woken_in_bounded_queue() {
        let a = Arc::new(Admission::new(1, 4));
        let p = a.acquire().unwrap();
        let a2 = a.clone();
        let h = std::thread::spawn(move || {
            let _p = a2.acquire().unwrap();
        });
        // Give the waiter time to enqueue, then release.
        while a.load().1 == 0 {
            std::thread::yield_now();
        }
        drop(p);
        h.join().unwrap();
        assert_eq!(a.load(), (0, 0));
    }
}
