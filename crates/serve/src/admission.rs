//! The bounded admission queue: at most `limit` evaluations run
//! concurrently, at most `queue_depth` callers wait for a slot, and
//! everyone past that is turned away with
//! [`ServeError::Saturated`] — backpressure instead of unbounded
//! queueing.
//!
//! Bounding *both* dimensions matters for a serving system: the
//! concurrency limit keeps concurrent evaluations from thrashing the
//! shared worker pool, while `queue_depth` bounds tail latency — a
//! request that would wait behind an arbitrarily long line is cheaper
//! to reject immediately.
//!
//! The concurrency limit is **dynamic**: [`Admission::set_limit`]
//! retargets it at runtime (the service's AIMD controller raises it
//! while measured latency stays under target and cuts it
//! multiplicatively when latency degrades — see
//! [`crate::adaptive`]). Raising the limit wakes the queue; lowering
//! it simply lets in-flight work decay to the new bound.
//!
//! Released slots are handed to the **oldest waiter** (FIFO tickets):
//! neither a fresh [`Admission::acquire_deadline`] nor a stream of
//! [`Admission::try_acquire`] calls can barge past callers already
//! queued. Without the hand-off, a hot client hammering `try_acquire`
//! could starve a blocked `acquire` indefinitely — the opposite of the
//! bounded-tail-latency contract the queue exists to provide.
//!
//! Waiters can *leave* the line before being served — a deadline passed
//! ([`Admission::acquire_deadline`]) or the service closed for draining
//! ([`Admission::close`]). A leaving waiter hands its FIFO ticket to
//! the next waiter: if it was first in line, the serve cursor advances
//! past it immediately; otherwise the ticket is remembered as cancelled
//! and skipped when the cursor reaches it. Either way no ticket is ever
//! stranded — a stranded head ticket would deadlock every waiter behind
//! it even with free slots available.
//!
//! ## CoDel-style sojourn control
//!
//! A bounded queue still admits a *standing* queue: under sustained
//! overload every waiter sits for the full drain time of the line ahead
//! of it, and the queue stops being a burst absorber and becomes pure
//! latency. When built [`Admission::with_codel`], the queue tracks the
//! **head waiter's sojourn time**. Once the head sojourn stays above
//! `target` continuously for a full `interval`, the head waiter is shed
//! with a typed [`ServeError::QueueShed`], and while the condition
//! persists further heads are shed on the classic CoDel control law
//! (`interval / sqrt(shed_count)` — shedding accelerates the longer the
//! queue stays bad). The moment head sojourn dips under target the
//! controller resets. Shedding the *oldest* waiter (head, not tail)
//! matters: the head has already paid the most latency and is closest
//! to its client's timeout, so its slot is the most likely to be wasted
//! work.

use std::collections::{BTreeMap, BTreeSet};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Condvar, Mutex};
use std::time::{Duration, Instant};

use crate::error::ServeError;

/// CoDel parameters: shed the head waiter once its queue sojourn stays
/// above `target` continuously for `interval`.
#[derive(Clone, Copy, Debug)]
pub(crate) struct CodelCfg {
    /// Acceptable standing queue delay.
    pub target: Duration,
    /// How long the head sojourn must stay above `target` before the
    /// first shed (and the base of the `interval/sqrt(n)` law).
    pub interval: Duration,
}

#[derive(Default)]
struct AdmissionState {
    inflight: usize,
    waiting: usize,
    /// Next ticket to hand to a new waiter.
    next_ticket: u64,
    /// Ticket currently first in line; only its holder may take a freed
    /// slot, so wakeups admit waiters strictly in arrival order.
    serve_ticket: u64,
    /// Tickets whose holders left the queue (deadline passed) while not
    /// at the head of the line; the serve cursor skips over them.
    cancelled: BTreeSet<u64>,
    /// Enqueue instant per live waiter ticket (ordered: first entry is
    /// the head of the line) — the CoDel sojourn clock.
    enqueued: BTreeMap<u64, Instant>,
    /// Tickets shed by the CoDel controller; the owning waiter discovers
    /// membership on wakeup and returns [`ServeError::QueueShed`]. The
    /// queue-departure bookkeeping already happened at shed time.
    shed: BTreeSet<u64>,
    /// Whether the CoDel controller is in its dropping state, and how
    /// many sheds this episode has performed (the sqrt-law divisor).
    shed_count: u32,
    /// When the next shed becomes permissible (None = head sojourn has
    /// not yet been observed above target).
    first_above: Option<Instant>,
    /// Set by [`Admission::close`]: no further admissions, queued
    /// waiters are shed with [`ServeError::Draining`].
    closed: bool,
}

/// Advance the serve cursor to the next ticket whose holder is still
/// waiting.
fn advance_cursor(st: &mut AdmissionState) {
    st.serve_ticket += 1;
    while st.cancelled.remove(&st.serve_ticket) {
        st.serve_ticket += 1;
    }
}

/// A queued waiter gives up: hand its FIFO ticket to the next waiter
/// instead of stranding the line.
fn leave_queue(st: &mut AdmissionState, ticket: u64) {
    st.waiting -= 1;
    st.enqueued.remove(&ticket);
    if ticket == st.serve_ticket {
        advance_cursor(st);
    } else {
        st.cancelled.insert(ticket);
    }
}

/// Counting semaphore with a bounded, strictly FIFO wait queue, a
/// runtime-adjustable concurrency limit, and optional CoDel sojourn
/// shedding.
pub(crate) struct Admission {
    state: Mutex<AdmissionState>,
    cv: Condvar,
    /// Current concurrency limit; dynamic (see [`Admission::set_limit`]).
    limit: AtomicUsize,
    queue_depth: usize,
    codel: Option<CodelCfg>,
    /// Total waiters shed by the CoDel controller (monotone).
    queue_shed: AtomicUsize,
}

impl Admission {
    pub(crate) fn new(max_inflight: usize, queue_depth: usize) -> Admission {
        Admission {
            state: Mutex::new(AdmissionState::default()),
            cv: Condvar::new(),
            limit: AtomicUsize::new(max_inflight.max(1)),
            queue_depth,
            codel: None,
            queue_shed: AtomicUsize::new(0),
        }
    }

    /// [`Admission::new`] with CoDel sojourn control enabled.
    pub(crate) fn with_codel(
        max_inflight: usize,
        queue_depth: usize,
        codel: CodelCfg,
    ) -> Admission {
        Admission {
            codel: Some(codel),
            ..Admission::new(max_inflight, queue_depth)
        }
    }

    /// Current concurrency limit.
    pub(crate) fn limit(&self) -> usize {
        self.limit.load(Ordering::Relaxed)
    }

    /// Retarget the concurrency limit. Raising it wakes the queue so
    /// newly legal admissions happen immediately; lowering it lets
    /// in-flight work decay to the new bound (permits are never
    /// revoked).
    pub(crate) fn set_limit(&self, limit: usize) {
        let limit = limit.max(1);
        let prev = self.limit.swap(limit, Ordering::Relaxed);
        if limit > prev {
            self.cv.notify_all();
        }
    }

    /// Total waiters shed by the CoDel sojourn controller.
    pub(crate) fn queue_shed_total(&self) -> usize {
        self.queue_shed.load(Ordering::Relaxed)
    }

    fn saturated(&self) -> ServeError {
        ServeError::Saturated {
            max_inflight: self.limit(),
            queue_depth: self.queue_depth,
        }
    }

    /// Run the CoDel control law against the head waiter; returns
    /// whether any waiter was shed (callers must then wake the queue).
    fn maybe_shed(&self, st: &mut AdmissionState, now: Instant) -> bool {
        let Some(cfg) = self.codel else {
            return false;
        };
        let mut shed_any = false;
        loop {
            let Some((&ticket, &t0)) = st.enqueued.iter().next() else {
                st.first_above = None;
                st.shed_count = 0;
                return shed_any;
            };
            if now.duration_since(t0) < cfg.target {
                st.first_above = None;
                st.shed_count = 0;
                return shed_any;
            }
            match st.first_above {
                None => {
                    // First observation above target: arm the timer, do
                    // not shed yet — bursts get an interval of grace.
                    st.first_above = Some(now + cfg.interval);
                    return shed_any;
                }
                Some(at) if now < at => return shed_any,
                Some(_) => {}
            }
            // Persistently above target: shed the head waiter on its
            // behalf (it discovers membership in `shed` on wakeup).
            st.shed_count += 1;
            st.waiting -= 1;
            st.enqueued.remove(&ticket);
            st.shed.insert(ticket);
            if ticket == st.serve_ticket {
                advance_cursor(st);
            } else {
                st.cancelled.insert(ticket);
            }
            self.queue_shed.fetch_add(1, Ordering::Relaxed);
            shed_any = true;
            // sqrt control law: while the queue stays bad, successive
            // sheds come faster.
            st.first_above = Some(now + cfg.interval.div_f64(f64::from(st.shed_count).sqrt()));
        }
    }

    /// Acquire a slot with no deadline (test convenience for
    /// [`Admission::acquire_deadline`]).
    #[cfg(test)]
    pub(crate) fn acquire(&self) -> Result<AdmissionPermit<'_>, ServeError> {
        self.acquire_deadline(None)
    }

    /// Acquire a slot, waiting at most until `deadline`. A waiter whose
    /// deadline passes while queued leaves with
    /// [`ServeError::DeadlineExceeded`] (carrying `deadline_ms`, the
    /// request's configured allowance, for the error message) and hands
    /// its FIFO ticket to the next waiter. A waiter shed by the CoDel
    /// controller leaves with [`ServeError::QueueShed`].
    pub(crate) fn acquire_deadline(
        &self,
        deadline: Option<(Instant, u64)>,
    ) -> Result<AdmissionPermit<'_>, ServeError> {
        let mut st = lock(&self.state);
        if st.closed {
            return Err(ServeError::Draining);
        }
        if let Some((d, ms)) = deadline {
            if Instant::now() >= d {
                return Err(ServeError::DeadlineExceeded { deadline_ms: ms });
            }
        }
        // Fast path only when nobody is queued: with waiters present a
        // newcomer takes a ticket behind them instead of stealing the
        // slot a release just freed for the head of the line.
        if st.inflight < self.limit() && st.waiting == 0 {
            st.inflight += 1;
            return Ok(AdmissionPermit { admission: self });
        }
        if st.waiting >= self.queue_depth {
            return Err(self.saturated());
        }
        let enqueue = Instant::now();
        let ticket = st.next_ticket;
        st.next_ticket += 1;
        st.waiting += 1;
        st.enqueued.insert(ticket, enqueue);
        // A newcomer behind a stuck head is a shed trigger too: without
        // this, a queue whose releases stalled would never run the
        // controller.
        if self.maybe_shed(&mut st, enqueue) {
            self.cv.notify_all();
        }
        while st.inflight >= self.limit() || ticket != st.serve_ticket {
            // Shed by the CoDel controller: the departure bookkeeping
            // already ran at shed time — report and leave. This check
            // must precede the closed/deadline paths so a shed ticket
            // never double-departs through `leave_queue`.
            if st.shed.remove(&ticket) {
                let sojourn = Instant::now().saturating_duration_since(enqueue);
                drop(st);
                self.cv.notify_all();
                return Err(ServeError::QueueShed {
                    sojourn_ms: sojourn.as_millis() as u64,
                });
            }
            if st.closed {
                leave_queue(&mut st, ticket);
                drop(st);
                self.cv.notify_all();
                return Err(ServeError::Draining);
            }
            match deadline {
                None => st = self.cv.wait(st).unwrap_or_else(|p| p.into_inner()),
                Some((d, ms)) => {
                    let now = Instant::now();
                    if now >= d {
                        leave_queue(&mut st, ticket);
                        drop(st);
                        // The head may just have moved onto another
                        // waiter's ticket: wake the line to re-check.
                        self.cv.notify_all();
                        return Err(ServeError::DeadlineExceeded { deadline_ms: ms });
                    }
                    let (guard, _) = self
                        .cv
                        .wait_timeout(st, d - now)
                        .unwrap_or_else(|p| p.into_inner());
                    st = guard;
                }
            }
        }
        advance_cursor(&mut st);
        st.waiting -= 1;
        st.enqueued.remove(&ticket);
        st.inflight += 1;
        drop(st);
        // More than one slot may be free (several releases in a burst):
        // let the next ticket holder re-check rather than idle.
        self.cv.notify_all();
        Ok(AdmissionPermit { admission: self })
    }

    /// Acquire a slot only if one is free right now *and* no caller is
    /// queued for it; never waits and never barges past the queue.
    pub(crate) fn try_acquire(&self) -> Result<AdmissionPermit<'_>, ServeError> {
        let mut st = lock(&self.state);
        if st.closed {
            Err(ServeError::Draining)
        } else if st.inflight < self.limit() && st.waiting == 0 {
            st.inflight += 1;
            Ok(AdmissionPermit { admission: self })
        } else {
            if self.maybe_shed(&mut st, Instant::now()) {
                drop(st);
                self.cv.notify_all();
            }
            Err(self.saturated())
        }
    }

    /// Close admission for draining: every subsequent acquire and every
    /// currently queued waiter fails with [`ServeError::Draining`];
    /// permits already granted are unaffected and release normally.
    pub(crate) fn close(&self) {
        lock(&self.state).closed = true;
        self.cv.notify_all();
    }

    /// Whether [`Admission::close`] was called.
    pub(crate) fn is_closed(&self) -> bool {
        lock(&self.state).closed
    }

    /// Block until nothing is admitted or queued, or `deadline` passes;
    /// returns whether the queue went idle. Combined with
    /// [`Admission::close`] this is the graceful-drain wait: closed to
    /// newcomers, idle once in-flight work finished.
    pub(crate) fn wait_idle(&self, deadline: Instant) -> bool {
        let mut st = lock(&self.state);
        while st.inflight > 0 || st.waiting > 0 {
            let now = Instant::now();
            if now >= deadline {
                return false;
            }
            let (guard, _) = self
                .cv
                .wait_timeout(st, deadline - now)
                .unwrap_or_else(|p| p.into_inner());
            st = guard;
        }
        true
    }

    /// Current `(inflight, waiting)` snapshot.
    pub(crate) fn load(&self) -> (usize, usize) {
        let st = lock(&self.state);
        (st.inflight, st.waiting)
    }
}

/// An admitted request's slot; released on drop.
pub(crate) struct AdmissionPermit<'a> {
    admission: &'a Admission,
}

impl Drop for AdmissionPermit<'_> {
    fn drop(&mut self) {
        let mut st = lock(&self.admission.state);
        st.inflight -= 1;
        // A release is the natural CoDel tick: the head waiter is about
        // to be considered for the freed slot, so judge its sojourn now.
        self.admission.maybe_shed(&mut st, Instant::now());
        drop(st);
        // notify_all, not notify_one: the woken waiter must be the one
        // holding `serve_ticket`, which notify_one cannot target.
        self.admission.cv.notify_all();
    }
}

fn lock<T>(m: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|p| p.into_inner())
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used, clippy::expect_used)]

    use super::*;
    use std::sync::Arc;

    #[test]
    fn admits_up_to_max_inflight() {
        let a = Admission::new(2, 0);
        let p1 = a.acquire().unwrap();
        let _p2 = a.acquire().unwrap();
        assert!(matches!(a.try_acquire(), Err(ServeError::Saturated { .. })));
        // With queue_depth 0, a blocking acquire is also rejected.
        assert!(matches!(a.acquire(), Err(ServeError::Saturated { .. })));
        drop(p1);
        let _p3 = a.acquire().unwrap();
    }

    #[test]
    fn waiters_are_woken_in_bounded_queue() {
        let a = Arc::new(Admission::new(1, 4));
        let p = a.acquire().unwrap();
        let a2 = a.clone();
        let h = std::thread::spawn(move || {
            let _p = a2.acquire().unwrap();
        });
        // Give the waiter time to enqueue, then release.
        while a.load().1 == 0 {
            std::thread::yield_now();
        }
        drop(p);
        h.join().unwrap();
        assert_eq!(a.load(), (0, 0));
    }

    #[test]
    fn try_acquire_yields_to_queued_waiters() {
        // Regression (ISSUE 4): try_acquire used to grab any free slot,
        // so a stream of try_acquire callers could starve a blocked
        // acquire indefinitely.
        let a = Arc::new(Admission::new(1, 4));
        let p = a.acquire().unwrap();
        let a2 = a.clone();
        let waiter = std::thread::spawn(move || {
            let _p = a2.acquire().unwrap();
        });
        while a.load().1 == 0 {
            std::thread::yield_now();
        }
        // Release the slot: it now belongs to the queued waiter. Every
        // barge attempt until the waiter is admitted must fail.
        drop(p);
        while a.load().1 > 0 {
            assert!(
                a.try_acquire().is_err(),
                "try_acquire barged past a queued waiter"
            );
            std::thread::yield_now();
        }
        waiter.join().unwrap();
        // Queue drained and slot released: barging is fine again.
        assert!(a.try_acquire().is_ok());
    }

    #[test]
    fn released_slots_go_to_the_oldest_waiter() {
        let a = Arc::new(Admission::new(1, 4));
        let p = a.acquire().unwrap();
        let order = Arc::new(Mutex::new(Vec::new()));
        let mut handles = Vec::new();
        for id in 0..3 {
            // Serialize enqueue order by waiting for the count to rise.
            while a.load().1 != id {
                std::thread::yield_now();
            }
            let a2 = a.clone();
            let order2 = order.clone();
            handles.push(std::thread::spawn(move || {
                let _p = a2.acquire().unwrap();
                order2.lock().unwrap().push(id);
            }));
            while a.load().1 != id + 1 {
                std::thread::yield_now();
            }
        }
        drop(p);
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(
            *order.lock().unwrap(),
            vec![0, 1, 2],
            "admission must be strictly FIFO"
        );
    }

    #[test]
    fn expired_deadline_is_shed_before_queueing() {
        let a = Admission::new(1, 4);
        let _p = a.acquire().unwrap();
        let past = Instant::now() - Duration::from_millis(1);
        assert!(matches!(
            a.acquire_deadline(Some((past, 0))),
            Err(ServeError::DeadlineExceeded { deadline_ms: 0 })
        ));
        assert_eq!(a.load(), (1, 0), "shed request never occupied the queue");
    }

    #[test]
    fn cancelled_waiter_hands_its_ticket_to_the_next() {
        // Regression (ISSUE 6): a waiter whose deadline passed while
        // queued used to strand its FIFO ticket — `serve_ticket` never
        // reached the waiters behind it, deadlocking them even with
        // free slots.
        let a = Arc::new(Admission::new(1, 4));
        let p = a.acquire().unwrap();
        // Waiter A queues first, with a deadline that expires while the
        // slot is still held.
        let a2 = a.clone();
        let ha = std::thread::spawn(move || {
            let deadline = Instant::now() + Duration::from_millis(30);
            a2.acquire_deadline(Some((deadline, 30))).err()
        });
        while a.load().1 != 1 {
            std::thread::yield_now();
        }
        // Waiter B queues behind A, with no deadline.
        let a3 = a.clone();
        let hb = std::thread::spawn(move || {
            let _p = a3.acquire().unwrap();
        });
        while a.load().1 != 2 {
            std::thread::yield_now();
        }
        // A gives up while the slot is still held...
        let err = ha.join().unwrap();
        assert!(
            matches!(err, Some(ServeError::DeadlineExceeded { .. })),
            "waiter A must report its deadline: {err:?}"
        );
        // ...and B (now sole waiter, holding A's handed-down turn) is
        // admitted as soon as the slot frees. Pre-fix this join hangs.
        drop(p);
        hb.join().unwrap();
        assert_eq!(a.load(), (0, 0));
    }

    #[test]
    fn close_sheds_queued_waiters_and_newcomers() {
        let a = Arc::new(Admission::new(1, 4));
        let p = a.acquire().unwrap();
        let a2 = a.clone();
        let waiter = std::thread::spawn(move || a2.acquire().err());
        while a.load().1 != 1 {
            std::thread::yield_now();
        }
        a.close();
        assert!(matches!(waiter.join().unwrap(), Some(ServeError::Draining)));
        assert!(matches!(a.acquire(), Err(ServeError::Draining)));
        assert!(matches!(a.try_acquire(), Err(ServeError::Draining)));
        assert!(a.is_closed());
        // The in-flight permit still completes; wait_idle observes it.
        assert!(!a.wait_idle(Instant::now() + Duration::from_millis(10)));
        drop(p);
        assert!(a.wait_idle(Instant::now() + Duration::from_secs(5)));
    }

    #[test]
    fn raising_the_limit_admits_waiters() {
        let a = Arc::new(Admission::new(1, 4));
        let _p = a.acquire().unwrap();
        let a2 = a.clone();
        let waiter = std::thread::spawn(move || a2.acquire().map(|_| ()).is_ok());
        while a.load().1 != 1 {
            std::thread::yield_now();
        }
        // One slot, one holder: the waiter is stuck until the limit
        // rises.
        a.set_limit(2);
        assert!(waiter.join().unwrap());
        assert_eq!(a.limit(), 2);
    }

    #[test]
    fn lowering_the_limit_decays_without_revoking() {
        let a = Admission::new(2, 4);
        let p1 = a.acquire().unwrap();
        let _p2 = a.acquire().unwrap();
        a.set_limit(1);
        // Both permits stay valid; new admissions blocked until the
        // population decays below the new limit.
        assert!(a.try_acquire().is_err());
        drop(p1);
        assert!(a.try_acquire().is_err(), "still at the new limit of 1");
    }

    #[test]
    fn codel_sheds_the_persistently_stuck_head() {
        let cfg = CodelCfg {
            target: Duration::from_millis(5),
            interval: Duration::from_millis(20),
        };
        let a = Arc::new(Admission::with_codel(1, 4, cfg));
        let _p = a.acquire().unwrap();
        let a2 = a.clone();
        let waiter = std::thread::spawn(move || a2.acquire().err());
        while a.load().1 != 1 {
            std::thread::yield_now();
        }
        // The slot never frees; keep poking the controller via
        // try_acquire until the head sojourn exceeds target+interval
        // and the waiter is shed.
        let t0 = Instant::now();
        loop {
            let _ = a.try_acquire();
            if a.load().1 == 0 {
                break;
            }
            assert!(
                t0.elapsed() < Duration::from_secs(5),
                "codel never shed the stuck head"
            );
            std::thread::sleep(Duration::from_millis(1));
        }
        let err = waiter.join().unwrap();
        assert!(
            matches!(err, Some(ServeError::QueueShed { .. })),
            "head must be shed with the typed error: {err:?}"
        );
        assert!(a.queue_shed_total() >= 1);
    }

    #[test]
    fn codel_spares_fast_moving_queues() {
        let cfg = CodelCfg {
            target: Duration::from_millis(50),
            interval: Duration::from_millis(100),
        };
        let a = Arc::new(Admission::with_codel(1, 8, cfg));
        // Sojourns stay far below target: nothing is ever shed.
        for _ in 0..4 {
            let p = a.acquire().unwrap();
            let a2 = a.clone();
            let h = std::thread::spawn(move || a2.acquire().map(|_| ()).is_ok());
            while a.load().1 != 1 {
                std::thread::yield_now();
            }
            drop(p);
            assert!(h.join().unwrap());
        }
        assert_eq!(a.queue_shed_total(), 0);
    }
}
