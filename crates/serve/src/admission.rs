//! The bounded admission queue: at most `max_inflight` evaluations run
//! concurrently, at most `queue_depth` callers wait for a slot, and
//! everyone past that is turned away with
//! [`ServeError::Saturated`] — backpressure instead of unbounded
//! queueing.
//!
//! Bounding *both* dimensions matters for a serving system: `max_inflight`
//! keeps concurrent evaluations from thrashing the shared worker pool,
//! while `queue_depth` bounds tail latency — a request that would wait
//! behind an arbitrarily long line is cheaper to reject immediately.
//!
//! Released slots are handed to the **oldest waiter** (FIFO tickets):
//! neither a fresh [`Admission::acquire`] nor a stream of
//! [`Admission::try_acquire`] calls can barge past callers already
//! queued. Without the hand-off, a hot client hammering `try_acquire`
//! could starve a blocked `acquire` indefinitely — the opposite of the
//! bounded-tail-latency contract the queue exists to provide.

use std::sync::{Condvar, Mutex};

use crate::error::ServeError;

#[derive(Default)]
struct AdmissionState {
    inflight: usize,
    waiting: usize,
    /// Next ticket to hand to a new waiter.
    next_ticket: u64,
    /// Ticket currently first in line; only its holder may take a freed
    /// slot, so wakeups admit waiters strictly in arrival order.
    serve_ticket: u64,
}

/// Counting semaphore with a bounded, strictly FIFO wait queue.
pub(crate) struct Admission {
    state: Mutex<AdmissionState>,
    cv: Condvar,
    max_inflight: usize,
    queue_depth: usize,
}

impl Admission {
    pub(crate) fn new(max_inflight: usize, queue_depth: usize) -> Admission {
        Admission {
            state: Mutex::new(AdmissionState::default()),
            cv: Condvar::new(),
            max_inflight: max_inflight.max(1),
            queue_depth,
        }
    }

    fn saturated(&self) -> ServeError {
        ServeError::Saturated {
            max_inflight: self.max_inflight,
            queue_depth: self.queue_depth,
        }
    }

    /// Acquire a slot, waiting in the bounded FIFO queue if necessary.
    pub(crate) fn acquire(&self) -> Result<AdmissionPermit<'_>, ServeError> {
        let mut st = lock(&self.state);
        // Fast path only when nobody is queued: with waiters present a
        // newcomer takes a ticket behind them instead of stealing the
        // slot a release just freed for the head of the line.
        if st.inflight < self.max_inflight && st.waiting == 0 {
            st.inflight += 1;
            return Ok(AdmissionPermit { admission: self });
        }
        if st.waiting >= self.queue_depth {
            return Err(self.saturated());
        }
        let ticket = st.next_ticket;
        st.next_ticket += 1;
        st.waiting += 1;
        while st.inflight >= self.max_inflight || ticket != st.serve_ticket {
            st = self.cv.wait(st).unwrap_or_else(|p| p.into_inner());
        }
        st.serve_ticket += 1;
        st.waiting -= 1;
        st.inflight += 1;
        drop(st);
        // More than one slot may be free (several releases in a burst):
        // let the next ticket holder re-check rather than idle.
        self.cv.notify_all();
        Ok(AdmissionPermit { admission: self })
    }

    /// Acquire a slot only if one is free right now *and* no caller is
    /// queued for it; never waits and never barges past the queue.
    pub(crate) fn try_acquire(&self) -> Result<AdmissionPermit<'_>, ServeError> {
        let mut st = lock(&self.state);
        if st.inflight < self.max_inflight && st.waiting == 0 {
            st.inflight += 1;
            Ok(AdmissionPermit { admission: self })
        } else {
            Err(self.saturated())
        }
    }

    /// Current `(inflight, waiting)` snapshot.
    pub(crate) fn load(&self) -> (usize, usize) {
        let st = lock(&self.state);
        (st.inflight, st.waiting)
    }
}

/// An admitted request's slot; released on drop.
pub(crate) struct AdmissionPermit<'a> {
    admission: &'a Admission,
}

impl Drop for AdmissionPermit<'_> {
    fn drop(&mut self) {
        let mut st = lock(&self.admission.state);
        st.inflight -= 1;
        drop(st);
        // notify_all, not notify_one: the woken waiter must be the one
        // holding `serve_ticket`, which notify_one cannot target.
        self.admission.cv.notify_all();
    }
}

fn lock<T>(m: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|p| p.into_inner())
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn admits_up_to_max_inflight() {
        let a = Admission::new(2, 0);
        let p1 = a.acquire().unwrap();
        let _p2 = a.acquire().unwrap();
        assert!(matches!(a.try_acquire(), Err(ServeError::Saturated { .. })));
        // With queue_depth 0, a blocking acquire is also rejected.
        assert!(matches!(a.acquire(), Err(ServeError::Saturated { .. })));
        drop(p1);
        let _p3 = a.acquire().unwrap();
    }

    #[test]
    fn waiters_are_woken_in_bounded_queue() {
        let a = Arc::new(Admission::new(1, 4));
        let p = a.acquire().unwrap();
        let a2 = a.clone();
        let h = std::thread::spawn(move || {
            let _p = a2.acquire().unwrap();
        });
        // Give the waiter time to enqueue, then release.
        while a.load().1 == 0 {
            std::thread::yield_now();
        }
        drop(p);
        h.join().unwrap();
        assert_eq!(a.load(), (0, 0));
    }

    #[test]
    fn try_acquire_yields_to_queued_waiters() {
        // Regression (ISSUE 4): try_acquire used to grab any free slot,
        // so a stream of try_acquire callers could starve a blocked
        // acquire indefinitely.
        let a = Arc::new(Admission::new(1, 4));
        let p = a.acquire().unwrap();
        let a2 = a.clone();
        let waiter = std::thread::spawn(move || {
            let _p = a2.acquire().unwrap();
        });
        while a.load().1 == 0 {
            std::thread::yield_now();
        }
        // Release the slot: it now belongs to the queued waiter. Every
        // barge attempt until the waiter is admitted must fail.
        drop(p);
        while a.load().1 > 0 {
            assert!(
                a.try_acquire().is_err(),
                "try_acquire barged past a queued waiter"
            );
            std::thread::yield_now();
        }
        waiter.join().unwrap();
        // Queue drained and slot released: barging is fine again.
        assert!(a.try_acquire().is_ok());
    }

    #[test]
    fn released_slots_go_to_the_oldest_waiter() {
        let a = Arc::new(Admission::new(1, 4));
        let p = a.acquire().unwrap();
        let order = Arc::new(Mutex::new(Vec::new()));
        let mut handles = Vec::new();
        for id in 0..3 {
            // Serialize enqueue order by waiting for the count to rise.
            while a.load().1 != id {
                std::thread::yield_now();
            }
            let a2 = a.clone();
            let order2 = order.clone();
            handles.push(std::thread::spawn(move || {
                let _p = a2.acquire().unwrap();
                order2.lock().unwrap().push(id);
            }));
            while a.load().1 != id + 1 {
                std::thread::yield_now();
            }
        }
        drop(p);
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(
            *order.lock().unwrap(),
            vec![0, 1, 2],
            "admission must be strictly FIFO"
        );
    }
}
