//! The in-process pipeline service: named pipelines, session handles,
//! per-request contexts wired to the shared worker pool and plan cache,
//! bounded admission with an adaptive concurrency limit, cross-request
//! coalescing, per-session fair-share weights and byte budgets, a
//! process-wide memory budget, per-pipeline circuit breakers, request
//! deadlines, bounded retry of transient failures, and graceful drain.

use std::collections::{BTreeMap, HashMap, VecDeque};
use std::sync::atomic::{AtomicBool, AtomicU32, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex, RwLock};
use std::time::{Duration, Instant};

use mozart_core::cputime;
use mozart_core::faultinject::splitmix64;
use mozart_core::membudget;
use mozart_core::trace::{
    RetryCause, SpanKind, SpanRecord, SpanTree, TraceId, TraceRecorder, SERVICE_WORKER,
};
use mozart_core::{
    CancelToken, Concat, Config, DataValue, MozartContext, PhaseStats, PlanCache, PlanCacheStats,
    PoolHandle, PoolStats, Splitter,
};

use crate::adaptive::{AimdConfig, AimdController};
use crate::admission::{Admission, CodelCfg};
use crate::breaker::{BreakerConfig, BreakerDecision, BreakerMap, BreakerPass, BreakerState};
use crate::error::{Result, ServeError};
use crate::metrics::{
    render_counter, render_gauge, render_gauge_labeled, render_histogram, Histogram,
    HistogramSnapshot,
};

/// Most requests one coalesced evaluation may absorb (the leader plus
/// `MAX_COALESCE - 1` followers). Bounds both the concatenated input
/// size and the blast radius of a failing batch.
pub const MAX_COALESCE: usize = 8;

/// A pipeline request: string parameters keyed by name (the in-process
/// mirror of the wire protocol's `key=value` pairs).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Request {
    params: BTreeMap<String, String>,
    /// Deadline in milliseconds from submission; `None` falls back to
    /// the session's default ([`Session::set_deadline`]). Deliberately
    /// *not* a parameter: it must never influence pipeline behavior or
    /// coalescing fingerprints, only scheduling.
    deadline_ms: Option<u64>,
}

impl Request {
    /// An empty request (pipelines fall back to their defaults).
    pub fn new() -> Request {
        Request::default()
    }

    /// Set a deadline in milliseconds from submission, builder-style.
    /// Once it passes — while queued, while parked in a coalesced
    /// batch, or mid-evaluation — the request is shed with
    /// [`ServeError::DeadlineExceeded`]. `0` sheds immediately.
    pub fn with_deadline_ms(mut self, ms: u64) -> Request {
        self.deadline_ms = Some(ms);
        self
    }

    /// Set or clear the deadline in place.
    pub fn set_deadline_ms(&mut self, ms: Option<u64>) {
        self.deadline_ms = ms;
    }

    /// This request's explicit deadline, if any.
    pub fn deadline_ms(&self) -> Option<u64> {
        self.deadline_ms
    }

    /// Set a parameter, builder-style.
    pub fn with(mut self, key: &str, value: impl ToString) -> Request {
        self.params.insert(key.to_string(), value.to_string());
        self
    }

    /// Set a parameter in place.
    pub fn set(&mut self, key: &str, value: impl ToString) {
        self.params.insert(key.to_string(), value.to_string());
    }

    /// Raw parameter value.
    pub fn get(&self, key: &str) -> Option<&str> {
        self.params.get(key).map(String::as_str)
    }

    /// Parameters in deterministic (sorted) order.
    pub fn params(&self) -> impl Iterator<Item = (&str, &str)> {
        self.params.iter().map(|(k, v)| (k.as_str(), v.as_str()))
    }

    /// Parse a `usize` parameter, with a default when absent.
    pub fn usize_or(&self, key: &str, default: usize) -> Result<usize> {
        match self.params.get(key) {
            None => Ok(default),
            Some(raw) => raw.parse().map_err(|_| {
                ServeError::BadRequest(format!("parameter {key}={raw} is not an integer"))
            }),
        }
    }

    /// Parse a `u64` parameter, with a default when absent.
    pub fn u64_or(&self, key: &str, default: u64) -> Result<u64> {
        match self.params.get(key) {
            None => Ok(default),
            Some(raw) => raw.parse().map_err(|_| {
                ServeError::BadRequest(format!("parameter {key}={raw} is not an integer"))
            }),
        }
    }
}

/// A pipeline response: a single line of `key=value` pairs (checksums,
/// summaries) suitable for the wire protocol.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Response {
    /// Response body (no newlines).
    pub body: String,
}

impl Response {
    /// Wrap a body string.
    pub fn new(body: impl Into<String>) -> Response {
        Response { body: body.into() }
    }
}

/// A named, registered pipeline: a fixed sequence of annotated calls
/// over request-parameterized inputs, evaluated through the provided
/// context. Implementations must be stateless per request (they run
/// concurrently) but may cache generated inputs internally.
pub trait Pipeline: Send + Sync {
    /// The name requests address this pipeline by.
    fn name(&self) -> &'static str;

    /// Execute the pipeline through `ctx` (already wired to the
    /// service's shared pool and plan cache). Pipelines that implement
    /// [`Pipeline::segment`] can delegate to [`run_segment`], which
    /// guarantees the single-request path and the coalesced path share
    /// one evaluation body.
    fn run(&self, ctx: &MozartContext, req: &Request) -> mozart_core::Result<Response>;

    /// Coalescing key: requests with equal keys produce pending-segment
    /// fingerprints that match (the plan-cache key from
    /// `DataflowGraph::pending_shape`), so the service may evaluate them
    /// as **one** pipeline over concatenated inputs and split the
    /// outputs back per request — the serving analogue of model-server
    /// micro-batching. Return `None` (the default) for requests that
    /// must never coalesce; implementations that return `Some` must
    /// also implement [`Pipeline::segment`].
    fn coalesce_key(&self, _req: &Request) -> Option<u64> {
        None
    }

    /// Describe one request's evaluation through the split layer (a
    /// [`Segment`]): whole input values typed with their split types,
    /// one evaluation body, and a response formatter. The service's
    /// **generic coalescer** concatenates key-identical requests'
    /// inputs through each split type's [`Concat`] capability,
    /// evaluates the leader's segment once over the combined values,
    /// and slices every request's elements back out of the outputs —
    /// no pipeline-specific concatenation code anywhere.
    ///
    /// Return `None` (the default) if the pipeline cannot express
    /// itself as an element-preserving segment; such pipelines never
    /// coalesce.
    fn segment(&self, _req: &Request) -> Option<mozart_core::Result<Segment>> {
        None
    }
}

/// One input of a [`Segment`]: a whole value plus the split type whose
/// [`Concat`] capability concatenates and slices values of its kind.
pub struct SegmentInput {
    /// The request's whole input value.
    pub value: DataValue,
    /// The input's split type. Coalescing requires
    /// [`Splitter::concat`] to return a capability; element counts come
    /// from `default_params` + `info`.
    pub splitter: Arc<dyn Splitter>,
}

impl SegmentInput {
    /// Pair a value with its split type.
    pub fn new(value: DataValue, splitter: Arc<dyn Splitter>) -> SegmentInput {
        SegmentInput { value, splitter }
    }
}

/// Evaluation body of a [`Segment`]: pipeline over (possibly
/// concatenated) inputs, returning fully materialized per-element
/// outputs in declaration order.
pub type SegmentEval =
    Box<dyn FnOnce(&MozartContext, &[DataValue]) -> mozart_core::Result<Vec<DataValue>> + Send>;

/// Response formatter of a [`Segment`]: this request's slice of each
/// output (in [`Segment::outputs`] order) to a wire response.
pub type SegmentRespond = Box<dyn FnOnce(&[DataValue]) -> mozart_core::Result<Response> + Send>;

/// One request's evaluation expressed through the split layer — the
/// unit the generic cross-request coalescer operates on.
///
/// Invariant the pipeline must uphold: the evaluation is
/// **element-preserving** (output `i` covers exactly the elements of
/// the inputs, in order), so a request's response can be computed from
/// its element range of the outputs, bit-identically to a separate
/// evaluation. Per-element operator chains (vector math, per-pixel
/// image filters, per-row frame arithmetic) satisfy this; filters and
/// whole-value reductions do not (put the reduction in `respond`,
/// where it runs serially over the request's own slice).
pub struct Segment {
    /// Whole input values with their split types.
    pub inputs: Vec<SegmentInput>,
    /// Split types of the evaluation's outputs, used to slice each
    /// request's elements back out of a coalesced evaluation.
    pub outputs: Vec<Arc<dyn Splitter>>,
    /// Decline coalescing when the combined element total would exceed
    /// this bound (0 = unbounded); the members then evaluate
    /// individually under the leader's admission slot.
    pub max_total_elements: u64,
    /// The evaluation body.
    pub eval: SegmentEval,
    /// The response formatter.
    pub respond: SegmentRespond,
}

/// Run one request's [`Segment`] standalone — the single-request path
/// of a segment-based pipeline. Evaluates over the request's own inputs
/// and formats the whole (unsliced) outputs, which for an
/// element-preserving evaluation equals the `[0, len)` slice a
/// coalesced evaluation would hand back.
pub fn run_segment(ctx: &MozartContext, segment: Segment) -> mozart_core::Result<Response> {
    let inputs: Vec<DataValue> = segment.inputs.iter().map(|i| i.value.clone()).collect();
    let outs = (segment.eval)(ctx, &inputs)?;
    (segment.respond)(&outs)
}

/// Sizing knobs of a [`PipelineService`]; see
/// [`ServiceBuilder`](PipelineService::builder).
#[derive(Debug, Clone)]
pub struct ServiceConfig {
    /// Worker threads available to an evaluation (the shared pool holds
    /// `workers - 1` threads; the evaluating thread participates).
    pub workers: usize,
    /// Concurrent evaluations admitted (defaults to `workers`).
    pub max_inflight: usize,
    /// Callers allowed to wait for admission beyond `max_inflight`
    /// before [`ServeError::Saturated`] is returned.
    pub queue_depth: usize,
    /// Plans the shared [`PlanCache`] retains.
    pub plan_cache_capacity: usize,
    /// Default fair-share weight of new sessions (>= 1). Under the
    /// pool's deficit-weighted round-robin, a weight-`w` session is
    /// entitled to `w` times the contended batch share of a weight-1
    /// session.
    pub session_weight: u32,
    /// Default byte budget of new sessions (0 = unlimited): once the
    /// bytes split + merged on a session's behalf reach the budget, its
    /// requests are shed with [`ServeError::OverBudget`].
    pub session_byte_budget: u64,
    /// Cross-request batch coalescing (on by default): queued blocking
    /// requests with matching [`Pipeline::coalesce_key`]s evaluate as
    /// one pipeline over concatenated inputs.
    pub coalescing: bool,
    /// Deficit-weighted session scheduling on the shared pool (on by
    /// default); `false` restores the FIFO queue scan as a measured
    /// ablation. Applied to the pool at build time, so it also affects
    /// other users of an adopted pool handle.
    pub fair_scheduling: bool,
    /// Retries of a request whose evaluation failed *transiently* — a
    /// caught panic ([`mozart_core::Error::TaskPanicked`]) or an
    /// injected fault ([`mozart_core::Error::Injected`]) — under the
    /// same admission permit, with jittered exponential backoff.
    /// Deterministic errors never retry; 0 disables retrying.
    pub max_retries: u32,
    /// Base of the retry backoff: attempt `k` sleeps a jittered
    /// duration in `[base·2ᵏ/2, base·2ᵏ]` milliseconds, clamped to the
    /// request's remaining deadline. 0 retries immediately.
    pub retry_backoff_ms: u64,
    /// End-to-end request tracing and latency histograms (off by
    /// default; see [`ServiceBuilder::tracing`]). When off, the request
    /// path records nothing — one `Option` branch per would-be span.
    pub tracing: bool,
    /// Adaptive AIMD concurrency limiting (see [`crate::adaptive`]):
    /// the in-flight limit starts at `max_inflight` and follows
    /// measured end-to-end latency against a target seeded from the
    /// live latency histograms (or [`ServiceConfig::aimd_target_ms`]).
    /// On unless the operator pinned `max_inflight` explicitly — a
    /// pinned limit is the static ablation. CoDel queue-sojourn
    /// shedding ([`ServeError::QueueShed`]) is active exactly when the
    /// adaptive limiter is.
    pub adaptive_limit: bool,
    /// Explicit AIMD latency target in milliseconds; 0 (the default)
    /// seeds the target from the measured latency distribution instead
    /// (median of a warmup window × a slowdown multiple).
    pub aimd_target_ms: u64,
    /// CoDel sojourn target in milliseconds: the acceptable standing
    /// queue wait before head-of-line shedding arms.
    pub codel_target_ms: u64,
    /// CoDel interval in milliseconds: how long the head sojourn must
    /// stay above target before the first shed.
    pub codel_interval_ms: u64,
    /// Process-wide memory ceiling in bytes (0 = unlimited), installed
    /// into `mozart_core::membudget` at build time. Requests whose
    /// estimated footprint does not fit are shed with
    /// [`ServeError::OverMemory`] before admission, and the coalescer
    /// declines batch growth once live bytes cross ⅞ of the ceiling.
    pub memory_ceiling_bytes: u64,
    /// Consecutive post-retry transient failures that open a pipeline's
    /// circuit breaker (0 disables breakers); see [`crate::breaker`].
    pub breaker_threshold: u32,
    /// How long an open breaker fast-fails ([`ServeError::CircuitOpen`])
    /// before admitting a half-open probe, in milliseconds.
    pub breaker_cooldown_ms: u64,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        let workers = mozart_core::config::default_workers();
        ServiceConfig {
            workers,
            max_inflight: workers,
            queue_depth: 4 * workers,
            plan_cache_capacity: 256,
            session_weight: 1,
            session_byte_budget: 0,
            coalescing: true,
            fair_scheduling: true,
            max_retries: 2,
            retry_backoff_ms: 5,
            tracing: false,
            adaptive_limit: true,
            aimd_target_ms: 0,
            codel_target_ms: 50,
            codel_interval_ms: 100,
            memory_ceiling_bytes: 0,
            breaker_threshold: 8,
            breaker_cooldown_ms: 200,
        }
    }
}

/// Cumulative service counters (see [`PipelineService::stats`]).
#[derive(Debug, Clone, Default)]
pub struct ServiceStats {
    /// Requests admitted and started (followers served through a
    /// coalesced evaluation included).
    pub started: u64,
    /// Requests that completed successfully.
    pub completed: u64,
    /// Requests rejected by admission control.
    pub rejected: u64,
    /// Requests that failed inside the pipeline.
    pub failed: u64,
    /// Requests shed because their session exhausted its byte budget.
    pub over_budget: u64,
    /// Requests shed because their deadline passed — while queued for
    /// admission, while parked in a coalesced batch, or mid-evaluation
    /// (cooperative cancellation at batch-claim boundaries).
    pub deadline_shed: u64,
    /// Evaluation attempts re-run after a transient failure (see
    /// [`ServiceConfig::max_retries`]).
    pub retries: u64,
    /// Requests (on a tracing-enabled service) that consumed at least
    /// 80% of their deadline before resolving — the slow-request log's
    /// counter ([`PipelineService::slow_requests`]). Always 0 when
    /// tracing is off or requests carry no deadline.
    pub slow: u64,
    /// Whether [`PipelineService::drain`] has been called: admission is
    /// closed and every new request is shed with
    /// [`ServeError::Draining`].
    pub draining: bool,
    /// Requests served by piggybacking on another request's evaluation
    /// (cross-request coalescing followers; the leader of a coalesced
    /// batch is not counted).
    pub coalesced_requests: u64,
    /// Followers currently parked in open (not yet sealed) coalesced
    /// batches, waiting for their leader's evaluation.
    pub coalesce_waiting: usize,
    /// Sessions opened.
    pub sessions: u64,
    /// Requests currently evaluating.
    pub inflight: usize,
    /// Callers currently waiting for admission.
    pub waiting: usize,
    /// Shared plan cache counters.
    pub plan_cache: PlanCacheStats,
    /// Shared worker pool counters (includes per-session fairness).
    pub pool: PoolStats,
    /// Current adaptive concurrency limit (equals the configured
    /// `max_inflight` on a static-limit service).
    pub admission_limit: usize,
    /// Waiters shed by the CoDel sojourn controller
    /// ([`ServeError::QueueShed`]).
    pub queue_shed: u64,
    /// Requests shed pre-admission by the process memory ceiling
    /// ([`ServeError::OverMemory`]).
    pub over_memory: u64,
    /// Requests fast-failed by an open circuit breaker
    /// ([`ServeError::CircuitOpen`]).
    pub breaker_shed: u64,
    /// Pipelines whose breaker is currently open (half-open counts as
    /// not open: it is accepting a probe).
    pub breaker_open: usize,
    /// Live process-wide metered buffer bytes
    /// (`mozart_core::membudget`).
    pub memory_live_bytes: u64,
    /// The process-wide memory ceiling (0 = unlimited).
    pub memory_ceiling_bytes: u64,
    /// Stage-boundary intermediates handed to the next stage in split
    /// form (merge elided), accumulated from every request context's
    /// phase stats. Nonzero only for staged evaluation
    /// (`PIPELINE 0` sessions) with `Config::split_form` on.
    pub split_form_handoffs: u64,
}

/// The request-outcome counters of [`ServiceStats`], kept behind one
/// mutex so [`PipelineService::stats`] reads a single consistent
/// snapshot: a request that just completed can never be counted in
/// `completed` but not yet in `started`. The lock is uncontended in
/// steady state (one lock per request outcome, held for a few
/// increments); admission, plan-cache, and pool counters remain
/// independently consistent and are documented as such.
#[derive(Debug, Clone, Copy, Default)]
struct Counters {
    started: u64,
    completed: u64,
    rejected: u64,
    failed: u64,
    over_budget: u64,
    coalesced: u64,
    deadline_shed: u64,
    retries: u64,
    slow: u64,
    over_memory: u64,
    breaker_shed: u64,
    split_form_handoffs: u64,
}

/// One entry of the slow-request log (see
/// [`PipelineService::slow_requests`]): a request that consumed at
/// least 80% of its deadline before resolving, successfully or not.
#[derive(Debug, Clone)]
pub struct SlowRequest {
    /// The request's trace id; `TRACE <id>` (or
    /// [`PipelineService::trace_tree`]) retrieves where the time went.
    pub trace: TraceId,
    /// The pipeline the request addressed.
    pub pipeline: String,
    /// End-to-end latency in milliseconds.
    pub e2e_ms: u64,
    /// The deadline the request carried, in milliseconds.
    pub deadline_ms: u64,
    /// `"ok"` or the [`ServeError::kind`] the request failed with.
    pub outcome: &'static str,
}

/// Plain-value histogram snapshots of a tracing-enabled service
/// ([`PipelineService::metrics`]). All samples are nanoseconds;
/// snapshots merge across services or time windows
/// ([`HistogramSnapshot::merge`]).
#[derive(Debug, Clone)]
pub struct ServiceMetrics {
    /// End-to-end request latency (admission to response, failures
    /// included).
    pub e2e: HistogramSnapshot,
    /// Time spent waiting for an admission slot.
    pub admission_wait: HistogramSnapshot,
    /// Per-evaluation-attempt phase times, keyed by phase name in
    /// [`PHASE_NAMES`] order.
    pub phases: Vec<(&'static str, HistogramSnapshot)>,
}

/// Names (and order) of the per-phase latency histograms in
/// [`ServiceMetrics::phases`] and on the metrics page
/// (`mozart_phase_<name>_seconds`).
pub const PHASE_NAMES: [&str; 5] = ["unprotect", "planner", "split", "task", "merge"];

/// Entries the slow-request log retains (oldest evicted first).
const SLOW_LOG_CAP: usize = 64;

/// Successful completions observed before the AIMD latency target is
/// seeded from the e2e histogram's median.
const AIMD_WARMUP_SAMPLES: u64 = 32;

/// Seeded AIMD target = warmup median × this multiple: the controller
/// tolerates this much queueing-induced slowdown over the service's own
/// warm latency before cutting concurrency.
const AIMD_TARGET_MULTIPLE: u64 = 8;

/// Observability state of a tracing-enabled service: the shared span
/// recorder plus the serve-side latency histograms and the slow-request
/// log. Absent entirely when tracing is off.
struct Obs {
    recorder: Arc<TraceRecorder>,
    e2e: Histogram,
    admission_wait: Histogram,
    /// Per-phase attempt times, [`PHASE_NAMES`] order.
    phases: [Histogram; PHASE_NAMES.len()],
    slow: Mutex<VecDeque<SlowRequest>>,
}

/// Start stamps of one serve-side span in flight; closed by
/// [`Obs::span_end`]. Serve-side spans always run on the calling
/// service thread and record under [`SERVICE_WORKER`].
#[derive(Clone, Copy)]
struct SpanTimer {
    start_ns: u64,
    cpu0: Duration,
}

impl Obs {
    fn new(recorder: Arc<TraceRecorder>) -> Obs {
        Obs {
            recorder,
            e2e: Histogram::new(),
            admission_wait: Histogram::new(),
            phases: std::array::from_fn(|_| Histogram::new()),
            slow: Mutex::new(VecDeque::with_capacity(SLOW_LOG_CAP)),
        }
    }

    fn span_start(&self) -> SpanTimer {
        SpanTimer {
            start_ns: self.recorder.now_ns(),
            cpu0: cputime::thread_cpu_now(),
        }
    }

    /// Record the span opened by `t`; returns its wall time in ns.
    fn span_end(&self, trace: TraceId, kind: SpanKind, arg: u64, link: u64, t: SpanTimer) -> u64 {
        let wall_ns = self.recorder.now_ns().saturating_sub(t.start_ns);
        let cpu = cputime::cpu_elapsed(t.cpu0, cputime::thread_cpu_now());
        self.recorder.record(SpanRecord {
            seq: 0,
            trace,
            kind,
            worker: SERVICE_WORKER,
            arg,
            link,
            start_ns: t.start_ns,
            wall_ns,
            cpu_ns: duration_ns(cpu),
        });
        wall_ns
    }

    /// Record a zero-duration marker span (e.g. a deadline shed).
    fn mark(&self, trace: TraceId, kind: SpanKind, arg: u64, link: u64) {
        self.recorder.record(SpanRecord {
            seq: 0,
            trace,
            kind,
            worker: SERVICE_WORKER,
            arg,
            link,
            start_ns: self.recorder.now_ns(),
            wall_ns: 0,
            cpu_ns: 0,
        });
    }

    /// Feed one evaluation attempt's phase stats into the per-phase
    /// histograms. Zero phases (e.g. nothing to unprotect) are skipped
    /// so quantiles reflect work actually done.
    fn record_phases(&self, stats: &PhaseStats) {
        let samples = [
            stats.unprotect,
            stats.planner,
            stats.split,
            stats.task,
            stats.merge,
        ];
        for (h, d) in self.phases.iter().zip(samples) {
            if !d.is_zero() {
                h.record(duration_ns(d));
            }
        }
    }

    /// Log the request if it consumed at least 80% of its deadline.
    fn note_slow(
        &self,
        counters: &Mutex<Counters>,
        trace: TraceId,
        pipeline: &str,
        outcome: &'static str,
        deadline: Option<(Instant, u64)>,
        wall_ns: u64,
    ) {
        let Some((_, deadline_ms)) = deadline else {
            return;
        };
        let threshold_ns = deadline_ms.saturating_mul(1_000_000) / 5 * 4;
        if deadline_ms == 0 || wall_ns < threshold_ns {
            return;
        }
        let entry = SlowRequest {
            trace,
            pipeline: pipeline.to_string(),
            e2e_ms: wall_ns / 1_000_000,
            deadline_ms,
            outcome,
        };
        eprintln!(
            "mozart-serve: slow request: pipeline={} trace={} e2e_ms={} deadline_ms={} outcome={}",
            entry.pipeline, entry.trace, entry.e2e_ms, entry.deadline_ms, entry.outcome
        );
        lock(counters).slow += 1;
        let mut log = lock(&self.slow);
        if log.len() >= SLOW_LOG_CAP {
            log.pop_front();
        }
        log.push_back(entry);
    }
}

/// Nanoseconds of a [`Duration`], saturating at `u64::MAX`.
fn duration_ns(d: Duration) -> u64 {
    u64::try_from(d.as_nanos()).unwrap_or(u64::MAX)
}

/// Classify a failed attempt's error for the next attempt's
/// [`SpanKind::Attempt`] `link` field.
fn retry_cause(e: &ServeError) -> RetryCause {
    match e {
        ServeError::Runtime(mozart_core::Error::TaskPanicked { .. }) => RetryCause::Panic,
        ServeError::Runtime(mozart_core::Error::Injected(_)) => RetryCause::Injected,
        _ => RetryCause::Other,
    }
}

/// One forming coalesced batch: the leader's request plus any followers
/// that joined while the leader waited for admission.
struct CoalesceBatch {
    state: Mutex<CoalesceState>,
    cv: Condvar,
    /// The leader's trace id (0 when tracing is off): followers'
    /// `CoalesceWait` spans link here, tying a follower's trace to the
    /// evaluation that actually served it.
    leader_trace: TraceId,
}

struct CoalesceState {
    /// Requests in join order; index 0 is the leader's.
    reqs: Vec<Request>,
    /// Set once the leader takes the batch; no further joiners.
    sealed: bool,
    /// The shared outcome: per-member results (in `reqs` order — they
    /// can differ when a failed coalesced evaluation degraded to
    /// per-member evaluation) plus the total byte cost, or a
    /// batch-level error (admission failure) every member reports.
    outcome: Option<BatchOutcome>,
}

/// Resolved outcome of a coalesced batch (see [`CoalesceState`]).
type BatchOutcome = std::result::Result<(Vec<Result<Response>>, u64), ServeError>;

impl CoalesceBatch {
    fn new(leader_req: Request, leader_trace: TraceId) -> CoalesceBatch {
        CoalesceBatch {
            state: Mutex::new(CoalesceState {
                reqs: vec![leader_req],
                sealed: false,
                outcome: None,
            }),
            cv: Condvar::new(),
            leader_trace,
        }
    }
}

/// Scope guard for a coalesced batch's leader: guarantees the batch is
/// sealed, unpublished, and resolved exactly once — even if the leader
/// unwinds mid-evaluation, followers are released with an error rather
/// than blocking forever.
struct CoalesceGuard<'a> {
    inner: &'a ServiceInner,
    key: (String, u64),
    batch: Arc<CoalesceBatch>,
    finished: bool,
}

impl CoalesceGuard<'_> {
    /// Unpublish the batch (later arrivals form a new one) and close it
    /// to joiners; returns the final member list. Idempotent.
    fn seal(&self) -> Vec<Request> {
        let mut map = lock(&self.inner.coalescer);
        if map
            .get(&self.key)
            .is_some_and(|b| Arc::ptr_eq(b, &self.batch))
        {
            map.remove(&self.key);
        }
        drop(map);
        let mut st = lock(&self.batch.state);
        st.sealed = true;
        st.reqs.clone()
    }

    /// Resolve the batch and wake every follower.
    fn finish(mut self, outcome: BatchOutcome) {
        self.finished = true;
        self.seal();
        let mut st = lock(&self.batch.state);
        if st.outcome.is_none() {
            st.outcome = Some(outcome);
        }
        drop(st);
        self.batch.cv.notify_all();
    }
}

impl Drop for CoalesceGuard<'_> {
    fn drop(&mut self) {
        if self.finished {
            return;
        }
        // The leader unwound (pipeline panic): release the followers.
        self.seal();
        let mut st = lock(&self.batch.state);
        if st.outcome.is_none() {
            st.outcome = Some(Err(ServeError::Runtime(mozart_core::Error::Library(
                "coalesced evaluation aborted by its leader".into(),
            ))));
        }
        drop(st);
        self.batch.cv.notify_all();
    }
}

struct ServiceInner {
    config: ServiceConfig,
    /// Template for per-request contexts (workers forced to
    /// `config.workers`); lets operators tune batch sizing, pedantic
    /// mode, etc. for every session at once.
    session_config: Config,
    pool: PoolHandle,
    cache: Arc<PlanCache>,
    pipelines: RwLock<HashMap<&'static str, Arc<dyn Pipeline>>>,
    admission: Admission,
    /// Open coalesced batches, keyed by `(pipeline, coalesce_key)`.
    coalescer: Mutex<HashMap<(String, u64), Arc<CoalesceBatch>>>,
    session_counter: AtomicU64,
    /// Request-outcome counters behind one lock (see [`Counters`]).
    counters: Mutex<Counters>,
    draining: AtomicBool,
    /// Drain broadcast for sleepers: retry backoffs wait on this
    /// condvar instead of a bare `thread::sleep`, so `drain(timeout)`
    /// cuts them short instead of being held hostage by a backing-off
    /// retry.
    drain_mu: Mutex<bool>,
    drain_cv: Condvar,
    /// AIMD concurrency controller; `None` on a static-limit service.
    aimd: Option<AimdController>,
    /// Per-pipeline circuit breakers.
    breakers: BreakerMap,
    /// EWMA of per-request byte footprint per pipeline (split + merge
    /// traffic of recent evaluations) — the pre-admission estimate the
    /// memory ceiling checks against.
    pipeline_cost: Mutex<HashMap<String, u64>>,
    /// Tracing/metrics state; `None` when tracing is off, and then the
    /// request path records nothing.
    obs: Option<Obs>,
}

impl ServiceInner {
    /// Update `pipeline`'s footprint EWMA with one request's measured
    /// byte cost (¼ new, ¾ old — a few requests re-center the estimate
    /// after a workload shift without letting one outlier swing it).
    fn note_cost(&self, pipeline: &str, bytes: u64) {
        if bytes == 0 {
            return;
        }
        let mut costs = lock(&self.pipeline_cost);
        match costs.get_mut(pipeline) {
            Some(c) => *c = (*c * 3 + bytes) / 4,
            None => {
                costs.insert(pipeline.to_string(), bytes);
            }
        }
    }

    /// The current footprint estimate for `pipeline` (0 = unknown; an
    /// unknown pipeline is never memory-shed — the first request
    /// measures it).
    fn estimated_cost(&self, pipeline: &str) -> u64 {
        lock(&self.pipeline_cost)
            .get(pipeline)
            .copied()
            .unwrap_or(0)
    }
}

/// A multi-tenant, in-process pipeline service (the `mozart-serve`
/// tentpole): every session shares one process-wide worker pool — no
/// per-client thread oversubscription — and one plan cache, so repeated
/// structurally identical pipelines skip the planner. Sessions carry
/// fair-share weights (deficit-weighted round-robin on the pool) and
/// optional byte budgets, and queued fingerprint-identical requests
/// coalesce into one evaluation.
///
/// Cloning is cheap; clones share all state. See the crate docs for a
/// quickstart.
#[derive(Clone)]
pub struct PipelineService {
    inner: Arc<ServiceInner>,
}

impl PipelineService {
    /// Start configuring a service.
    pub fn builder() -> ServiceBuilder {
        ServiceBuilder {
            config: ServiceConfig::default(),
            max_inflight: None,
            queue_depth: None,
            adaptive_limit: None,
            session_config: None,
            pool: None,
            pipelines: Vec::new(),
        }
    }

    /// Register (or replace) a pipeline after construction.
    pub fn register(&self, pipeline: Arc<dyn Pipeline>) {
        let mut map = write(&self.inner.pipelines);
        map.insert(pipeline.name(), pipeline);
    }

    /// Names of the registered pipelines, sorted.
    pub fn pipeline_names(&self) -> Vec<&'static str> {
        let mut names: Vec<&'static str> = read(&self.inner.pipelines).keys().copied().collect();
        names.sort_unstable();
        names
    }

    /// Open a session: the unit of fairness accounting and the handle
    /// requests go through. Sessions are cheap and `Send`; open one per
    /// client connection or per client thread. The session starts with
    /// the service's default weight and byte budget
    /// ([`ServiceConfig::session_weight`] /
    /// [`ServiceConfig::session_byte_budget`]).
    ///
    /// Session ids are allocated from a process-global counter: two
    /// services sharing one pool (see [`ServiceBuilder::pool`]) must
    /// not collide on the pool's per-session weights and accounting.
    pub fn session(&self) -> Session {
        static SESSION_IDS: AtomicU64 = AtomicU64::new(1);
        let inner = &self.inner;
        inner.session_counter.fetch_add(1, Ordering::Relaxed);
        let id = SESSION_IDS.fetch_add(1, Ordering::Relaxed);
        let weight = inner.config.session_weight.max(1);
        if weight != 1 {
            // Default-weight sessions are registered lazily (on their
            // first pool job): eagerly creating an entry per connection
            // would churn the pool's bounded session map with idle
            // sessions and evict entries that carry real accounting.
            inner.pool.set_session_weight(id, weight);
        }
        Session {
            service: self.clone(),
            id,
            requests: AtomicU64::new(0),
            weight: AtomicU32::new(weight),
            byte_budget: AtomicU64::new(inner.config.session_byte_budget),
            bytes_used: AtomicU64::new(0),
            default_deadline_ms: AtomicU64::new(0),
            pipeline: AtomicBool::new(inner.session_config.pipeline),
            verify_plans: AtomicBool::new(inner.session_config.verify_plans),
        }
    }

    /// The sizing configuration the service was built with.
    pub fn config(&self) -> &ServiceConfig {
        &self.inner.config
    }

    /// The service's shared worker pool handle.
    pub fn pool(&self) -> PoolHandle {
        self.inner.pool.clone()
    }

    /// The service's shared plan cache.
    pub fn plan_cache(&self) -> Arc<PlanCache> {
        self.inner.cache.clone()
    }

    /// Snapshot of the service counters. The request-outcome counters
    /// (`started` through `slow`) are read as **one** locked snapshot:
    /// a request that just resolved is either entirely in the snapshot
    /// or entirely absent, never counted in `completed` but missing
    /// from `started`. The admission, coalescer, plan-cache, and pool
    /// figures are each internally consistent but sampled separately.
    pub fn stats(&self) -> ServiceStats {
        let inner = &self.inner;
        let (inflight, waiting) = inner.admission.load();
        // Lock order matches every other coalescer user: map, then the
        // individual batch states.
        let coalesce_waiting = lock(&inner.coalescer)
            .values()
            .map(|b| lock(&b.state).reqs.len().saturating_sub(1))
            .sum();
        let c = *lock(&inner.counters);
        ServiceStats {
            started: c.started,
            completed: c.completed,
            rejected: c.rejected,
            failed: c.failed,
            over_budget: c.over_budget,
            deadline_shed: c.deadline_shed,
            retries: c.retries,
            slow: c.slow,
            draining: inner.draining.load(Ordering::Relaxed),
            coalesced_requests: c.coalesced,
            coalesce_waiting,
            sessions: inner.session_counter.load(Ordering::Relaxed),
            inflight,
            waiting,
            plan_cache: inner.cache.stats(),
            pool: inner.pool.stats(),
            admission_limit: inner.admission.limit(),
            queue_shed: inner.admission.queue_shed_total() as u64,
            over_memory: c.over_memory,
            breaker_shed: c.breaker_shed,
            breaker_open: inner
                .breakers
                .snapshot()
                .iter()
                .filter(|(_, state, _)| *state == BreakerState::Open)
                .count(),
            memory_live_bytes: membudget::live_bytes(),
            memory_ceiling_bytes: membudget::ceiling_bytes(),
            split_form_handoffs: c.split_form_handoffs,
        }
    }

    /// `(pipeline, state, times_opened)` for every circuit breaker the
    /// service has touched, sorted by pipeline name. A pipeline no
    /// request has reached yet has no entry (equivalent to Closed).
    pub fn breaker_states(&self) -> Vec<(String, &'static str, u64)> {
        self.inner
            .breakers
            .snapshot()
            .into_iter()
            .map(|(name, state, opened)| (name, state.as_str(), opened))
            .collect()
    }

    /// The current adaptive concurrency limit (the configured
    /// `max_inflight` on a static-limit service) and, when adaptive,
    /// the AIMD latency target once established.
    pub fn admission_limit(&self) -> (usize, Option<Duration>) {
        (
            self.inner.admission.limit(),
            self.inner.aimd.as_ref().and_then(|a| a.target()),
        )
    }

    /// Whether the service was built with tracing
    /// ([`ServiceBuilder::tracing`]).
    pub fn tracing_enabled(&self) -> bool {
        self.inner.obs.is_some()
    }

    /// The shared span recorder, when tracing is enabled. Request
    /// contexts record into it from every worker thread; drained via
    /// [`TraceRecorder::spans`] / [`TraceRecorder::all_spans`] (e.g.
    /// for [`mozart_core::chrome_trace_json`] export).
    pub fn recorder(&self) -> Option<Arc<TraceRecorder>> {
        self.inner.obs.as_ref().map(|o| o.recorder.clone())
    }

    /// Raw span records of one trace, sorted by start time. Empty when
    /// tracing is off, the id is unknown, or the ring buffers have
    /// since overwritten the trace's spans.
    pub fn trace_spans(&self, trace: TraceId) -> Vec<SpanRecord> {
        self.inner
            .obs
            .as_ref()
            .map_or_else(Vec::new, |o| o.recorder.spans(trace))
    }

    /// One request's assembled span tree (`None` when tracing is off or
    /// no spans of the trace survive in the ring buffers).
    pub fn trace_tree(&self, trace: TraceId) -> Option<SpanTree> {
        self.inner.obs.as_ref()?.recorder.tree(trace)
    }

    /// Histogram snapshots of a tracing-enabled service (`None` when
    /// tracing is off): end-to-end latency, admission wait, and
    /// per-attempt phase times, all in nanoseconds.
    pub fn metrics(&self) -> Option<ServiceMetrics> {
        let o = self.inner.obs.as_ref()?;
        Some(ServiceMetrics {
            e2e: o.e2e.snapshot(),
            admission_wait: o.admission_wait.snapshot(),
            phases: PHASE_NAMES
                .iter()
                .zip(o.phases.iter())
                .map(|(&n, h)| (n, h.snapshot()))
                .collect(),
        })
    }

    /// The slow-request log: the most recent 64 requests that consumed
    /// at least 80% of their deadline, oldest first. Empty when tracing
    /// is off.
    pub fn slow_requests(&self) -> Vec<SlowRequest> {
        self.inner
            .obs
            .as_ref()
            .map_or_else(Vec::new, |o| lock(&o.slow).iter().cloned().collect())
    }

    /// The service's metrics page in the Prometheus text exposition
    /// format (see [`crate::metrics`] for the format contract): the
    /// [`ServiceStats`] counters and gauges always; latency histograms,
    /// per-span-kind wall/CPU totals, and the recorder's drop counter
    /// when tracing is enabled. Served verbatim by the `METRICS`
    /// protocol line and `serve_tcp --metrics-port`.
    pub fn metrics_text(&self) -> String {
        let mut out = String::with_capacity(4096);
        let s = self.stats();
        render_counter(
            &mut out,
            "mozart_requests_started_total",
            "Requests admitted and started (coalesced followers included)",
            s.started,
        );
        render_counter(
            &mut out,
            "mozart_requests_completed_total",
            "Requests completed successfully",
            s.completed,
        );
        render_counter(
            &mut out,
            "mozart_requests_rejected_total",
            "Requests rejected by admission control",
            s.rejected,
        );
        render_counter(
            &mut out,
            "mozart_requests_failed_total",
            "Requests failed inside the pipeline",
            s.failed,
        );
        render_counter(
            &mut out,
            "mozart_requests_over_budget_total",
            "Requests shed by session byte budgets",
            s.over_budget,
        );
        render_counter(
            &mut out,
            "mozart_requests_deadline_shed_total",
            "Requests shed because their deadline passed",
            s.deadline_shed,
        );
        render_counter(
            &mut out,
            "mozart_retries_total",
            "Evaluation attempts re-run after a transient failure",
            s.retries,
        );
        render_counter(
            &mut out,
            "mozart_requests_coalesced_total",
            "Requests served by piggybacking on another evaluation",
            s.coalesced_requests,
        );
        render_counter(
            &mut out,
            "mozart_split_form_handoffs_total",
            "Stage-boundary intermediates handed across in split form",
            s.split_form_handoffs,
        );
        render_counter(
            &mut out,
            "mozart_requests_slow_total",
            "Requests that consumed at least 80% of their deadline",
            s.slow,
        );
        render_gauge(
            &mut out,
            "mozart_inflight",
            "Requests currently evaluating",
            s.inflight as u64,
        );
        render_gauge(
            &mut out,
            "mozart_admission_waiting",
            "Callers waiting for admission",
            s.waiting as u64,
        );
        render_gauge(
            &mut out,
            "mozart_coalesce_waiting",
            "Followers parked in open coalesced batches",
            s.coalesce_waiting as u64,
        );
        render_gauge(&mut out, "mozart_sessions", "Sessions opened", s.sessions);
        render_gauge(
            &mut out,
            "mozart_draining",
            "1 once drain() has been called",
            u64::from(s.draining),
        );
        render_counter(
            &mut out,
            "mozart_plan_cache_hits_total",
            "Evaluations replayed from a cached plan",
            s.plan_cache.hits,
        );
        render_counter(
            &mut out,
            "mozart_plan_cache_misses_total",
            "Evaluations planned from scratch",
            s.plan_cache.misses,
        );
        render_gauge(
            &mut out,
            "mozart_plan_cache_entries",
            "Plans currently cached",
            s.plan_cache.entries as u64,
        );
        render_gauge(
            &mut out,
            "mozart_pool_workers",
            "Worker threads in the shared pool",
            s.pool.workers as u64,
        );
        render_counter(
            &mut out,
            "mozart_pool_jobs_total",
            "Stages dispatched to the shared pool",
            s.pool.jobs,
        );
        render_counter(
            &mut out,
            "mozart_pool_panicked_batches_total",
            "Batch runs that ended in a caught panic",
            s.pool.panicked_batches,
        );
        render_counter(
            &mut out,
            "mozart_pool_respawned_workers_total",
            "Pool workers respawned after dying",
            s.pool.respawned_workers,
        );
        render_gauge(
            &mut out,
            "mozart_admission_limit",
            "Current (adaptive) concurrency limit",
            s.admission_limit as u64,
        );
        render_counter(
            &mut out,
            "mozart_queue_shed_total",
            "Waiters shed by the CoDel sojourn controller",
            s.queue_shed,
        );
        render_counter(
            &mut out,
            "mozart_over_memory_total",
            "Requests shed by the process memory ceiling",
            s.over_memory,
        );
        render_counter(
            &mut out,
            "mozart_breaker_fastfail_total",
            "Requests fast-failed by an open circuit breaker",
            s.breaker_shed,
        );
        render_gauge(
            &mut out,
            "mozart_memory_live_bytes",
            "Live metered buffer bytes (process-wide)",
            s.memory_live_bytes,
        );
        render_gauge(
            &mut out,
            "mozart_memory_ceiling_bytes",
            "Process-wide memory ceiling (0 = unlimited)",
            s.memory_ceiling_bytes,
        );
        let breakers = self.inner.breakers.snapshot();
        if !breakers.is_empty() {
            render_gauge_labeled(
                &mut out,
                "mozart_breaker_state",
                "Circuit breaker state per pipeline (0 closed, 1 half-open, 2 open)",
                "pipeline",
                breakers
                    .iter()
                    .map(|(name, state, _)| (name.as_str(), state.as_gauge())),
            );
            render_gauge_labeled(
                &mut out,
                "mozart_breaker_opened_total",
                "Times each pipeline's breaker has opened",
                "pipeline",
                breakers
                    .iter()
                    .map(|(name, _, opened)| (name.as_str(), *opened)),
            );
        }
        if let Some(o) = self.inner.obs.as_ref() {
            render_histogram(
                &mut out,
                "mozart_request_seconds",
                "End-to-end request latency",
                &o.e2e.snapshot(),
            );
            render_histogram(
                &mut out,
                "mozart_admission_wait_seconds",
                "Time waiting for an admission slot",
                &o.admission_wait.snapshot(),
            );
            for (name, h) in PHASE_NAMES.iter().zip(o.phases.iter()) {
                render_histogram(
                    &mut out,
                    &format!("mozart_phase_{name}_seconds"),
                    "Per-attempt evaluation phase time",
                    &h.snapshot(),
                );
            }
            render_counter(
                &mut out,
                "mozart_trace_spans_dropped_total",
                "Span records overwritten before being read",
                o.recorder.dropped(),
            );
            // Per-span-kind totals survive ring overwrites (accumulated
            // at record time), so they are true since-start counters.
            for t in o.recorder.phase_totals() {
                if t.count == 0 {
                    continue;
                }
                let kind = t.kind.name();
                render_counter(
                    &mut out,
                    &format!("mozart_span_{kind}_total"),
                    "Spans recorded of this kind",
                    t.count,
                );
                render_counter(
                    &mut out,
                    &format!("mozart_span_{kind}_wall_ns_total"),
                    "Cumulative wall time of this span kind (ns)",
                    t.wall_ns,
                );
                render_counter(
                    &mut out,
                    &format!("mozart_span_{kind}_cpu_ns_total"),
                    "Cumulative thread CPU time of this span kind (ns)",
                    t.cpu_ns,
                );
            }
        }
        out
    }

    /// Gracefully drain the service: close admission — every subsequent
    /// request and every queued waiter is shed with
    /// [`ServeError::Draining`] — and wait up to `timeout` for
    /// in-flight evaluations (and the coalesced followers they resolve)
    /// to finish. Returns whether the service went fully idle within
    /// the timeout; either way, draining is irreversible for this
    /// service instance. Safe to call from any thread (e.g. a SIGTERM
    /// watcher) and idempotent.
    pub fn drain(&self, timeout: Duration) -> bool {
        self.inner.draining.store(true, Ordering::SeqCst);
        self.inner.admission.close();
        // Wake every backing-off retry: a drain must not wait out a
        // sleeper's full backoff before its in-flight request resolves.
        *lock(&self.inner.drain_mu) = true;
        self.inner.drain_cv.notify_all();
        self.inner.admission.wait_idle(Instant::now() + timeout)
    }

    /// Whether [`PipelineService::drain`] has been called.
    pub fn is_draining(&self) -> bool {
        self.inner.draining.load(Ordering::SeqCst) || self.inner.admission.is_closed()
    }

    /// One short-lived context per request: registration state never
    /// accumulates, while the expensive parts — worker threads and
    /// plans — live in the shared pool and cache.
    fn request_context(&self, session: &Session) -> MozartContext {
        let inner = &self.inner;
        let mut config = inner.session_config.clone();
        config.pipeline = session.pipeline.load(Ordering::Relaxed);
        config.verify_plans = session.verify_plans.load(Ordering::Relaxed);
        let ctx = MozartContext::new(config);
        ctx.attach_pool(inner.pool.clone())
            .attach_plan_cache(inner.cache.clone())
            .set_session_tag(session.id);
        ctx
    }

    fn execute(
        &self,
        session: &Session,
        pipeline: &str,
        req: &Request,
        wait: bool,
    ) -> Result<Response> {
        self.execute_traced(session, pipeline, req, wait).0
    }

    /// [`PipelineService::execute`], also minting and returning the
    /// request's trace id when tracing is enabled. The outermost
    /// [`SpanKind::Request`] span, the end-to-end histogram sample, and
    /// the slow-request check all live here, wrapped around the whole
    /// request lifetime (admission wait included).
    fn execute_traced(
        &self,
        session: &Session,
        pipeline: &str,
        req: &Request,
        wait: bool,
    ) -> (Result<Response>, Option<TraceId>) {
        let inner = &self.inner;
        let obs = inner.obs.as_ref();
        let trace = obs.map_or(0, |o| o.recorder.mint());
        let timer = obs.map(|o| o.span_start());
        // The request's deadline clock starts on arrival: an explicit
        // per-request deadline wins over the session's default.
        let deadline = req
            .deadline_ms()
            .or_else(|| session.deadline_ms())
            .map(|ms| (Instant::now() + Duration::from_millis(ms), ms));
        // The AIMD controller needs e2e latency whether or not tracing
        // is on; one Instant pair is cheap enough to take always.
        let t0 = inner.aimd.as_ref().map(|_| Instant::now());
        let result = self.execute_inner(session, pipeline, req, wait, deadline, trace);
        if let (Some(o), Some(t)) = (obs, timer) {
            let wall_ns = o.span_end(trace, SpanKind::Request, 0, 0, t);
            o.e2e.record(wall_ns);
            let outcome = match &result {
                Ok(_) => "ok",
                Err(e) => e.kind(),
            };
            o.note_slow(&inner.counters, trace, pipeline, outcome, deadline, wall_ns);
        }
        // Feed the limit controller with *successful* completions only:
        // a shed request's latency says nothing about evaluation speed
        // (rejections resolve instantly, queue sheds report pure wait).
        if let (Some(aimd), Some(t0)) = (inner.aimd.as_ref(), t0) {
            if result.is_ok() {
                if !aimd.has_target() {
                    if let Some(o) = obs {
                        // Seed the latency target from the live e2e
                        // histogram (the PR 7 observability layer): the
                        // warmup median times a tolerated slowdown.
                        let snap = o.e2e.snapshot();
                        if snap.count >= AIMD_WARMUP_SAMPLES {
                            aimd.seed_target_ns(snap.p50().saturating_mul(AIMD_TARGET_MULTIPLE));
                        }
                    }
                    // Tracing off: the controller self-seeds from its
                    // internal warmup window.
                }
                aimd.on_sample(t0.elapsed());
                inner.admission.set_limit(aimd.limit());
            }
        }
        (result, (trace != 0).then_some(trace))
    }

    fn execute_inner(
        &self,
        session: &Session,
        pipeline: &str,
        req: &Request,
        wait: bool,
        deadline: Option<(Instant, u64)>,
        trace: TraceId,
    ) -> Result<Response> {
        let inner = &self.inner;
        let obs = inner.obs.as_ref();
        if inner.draining.load(Ordering::SeqCst) {
            lock(&inner.counters).rejected += 1;
            return Err(ServeError::Draining);
        }
        let handler = read(&inner.pipelines)
            .get(pipeline)
            .cloned()
            .ok_or_else(|| ServeError::UnknownPipeline(pipeline.to_string()))?;
        session.check_budget(inner)?;

        // Circuit breaker: a pipeline stuck in consecutive transient
        // failures fast-fails here — no admission permit, no pool time.
        let breaker_pass = match inner.breakers.admit(pipeline) {
            BreakerDecision::Proceed(pass) => pass,
            BreakerDecision::Reject => {
                lock(&inner.counters).breaker_shed += 1;
                return Err(ServeError::CircuitOpen {
                    pipeline: pipeline.to_string(),
                });
            }
        };

        // Process memory ceiling: shed before admission when the
        // pipeline's estimated footprint (EWMA of its recent split +
        // merge byte traffic) does not fit under the global ceiling.
        let estimated = inner.estimated_cost(pipeline);
        if membudget::would_exceed(estimated) {
            lock(&inner.counters).over_memory += 1;
            return Err(ServeError::OverMemory {
                live_bytes: membudget::live_bytes(),
                ceiling_bytes: membudget::ceiling_bytes(),
                estimated_bytes: estimated,
            });
        }

        // Cross-request coalescing: blocking requests whose coalesce
        // keys match may share one evaluation. try_call requests never
        // coalesce — joining a batch means waiting for its leader.
        // Under memory pressure (live bytes ≥ ⅞ of the ceiling) the
        // coalescer declines batch growth: a coalesced evaluation's
        // concatenated inputs and outputs peak higher than any single
        // member's, which is exactly the wrong shape near the ceiling.
        if wait && inner.config.coalescing && !membudget::pressured() {
            if let Some(key) = handler.coalesce_key(req) {
                let key = (pipeline.to_string(), key);
                // Join the open batch if one exists and has room.
                let existing = lock(&inner.coalescer).get(&key).cloned();
                if let Some(batch) = existing {
                    if let Some(result) = self.join_batch(session, &batch, req, deadline, trace) {
                        return result;
                    }
                    // Sealed or full: serve this request on its own
                    // below rather than spinning on the next batch.
                } else {
                    // Publish a fresh batch and lead it; on an insert
                    // race the other leader won and this request is
                    // served on its own.
                    let batch = Arc::new(CoalesceBatch::new(req.clone(), trace));
                    let inserted = {
                        let mut map = lock(&inner.coalescer);
                        match map.entry(key.clone()) {
                            std::collections::hash_map::Entry::Vacant(e) => {
                                e.insert(batch.clone());
                                true
                            }
                            std::collections::hash_map::Entry::Occupied(_) => false,
                        }
                    };
                    if inserted {
                        return self.lead_batch(
                            session,
                            &*handler,
                            key,
                            batch,
                            deadline,
                            trace,
                            breaker_pass,
                        );
                    }
                }
            }
        }

        // Plain single-request path.
        let qt = obs.map(|o| o.span_start());
        let permit = if wait {
            inner.admission.acquire_deadline(deadline)
        } else {
            inner.admission.try_acquire()
        };
        if let (Some(o), Some(t)) = (obs, qt) {
            let wall_ns = o.span_end(trace, SpanKind::QueueWait, 0, 0, t);
            o.admission_wait.record(wall_ns);
        }
        let _permit = match permit {
            Ok(p) => p,
            Err(e @ ServeError::DeadlineExceeded { .. }) => {
                lock(&inner.counters).deadline_shed += 1;
                if let Some(o) = obs {
                    o.mark(
                        trace,
                        SpanKind::DeadlineShed,
                        0,
                        deadline.map_or(0, |(_, ms)| ms),
                    );
                }
                return Err(e);
            }
            Err(e) => {
                lock(&inner.counters).rejected += 1;
                return Err(e);
            }
        };
        {
            let mut c = lock(&inner.counters);
            c.started += 1;
        }
        session.requests.fetch_add(1, Ordering::Relaxed);

        let (result, bytes) = self.run_attempts(session, &*handler, req, deadline, trace);
        inner.note_cost(pipeline, bytes);
        session.bytes_used.fetch_add(bytes, Ordering::Relaxed);
        match result {
            Ok(resp) => {
                breaker_pass.success();
                lock(&inner.counters).completed += 1;
                Ok(resp)
            }
            Err(e @ ServeError::DeadlineExceeded { .. }) => {
                lock(&inner.counters).deadline_shed += 1;
                Err(e)
            }
            Err(e) => {
                // Only post-retry transient failures move the breaker;
                // deterministic errors say nothing about health and
                // fall through to the pass's neutral drop.
                if e.is_transient() {
                    breaker_pass.failure();
                }
                lock(&inner.counters).failed += 1;
                Err(e)
            }
        }
    }

    /// Evaluate one request under an already-held admission permit,
    /// retrying transient failures (caught panics, injected faults) up
    /// to [`ServiceConfig::max_retries`] times with jittered backoff.
    /// Each attempt gets a fresh context — a panicked evaluation
    /// poisons its context — carrying a deadline cancel token, so an
    /// expired request stops claiming batches instead of running to
    /// completion. Returns the final result plus the bytes split +
    /// merged across *all* attempts (failed work still cost the
    /// machine; the session's budget sees it).
    fn run_attempts(
        &self,
        session: &Session,
        handler: &dyn Pipeline,
        req: &Request,
        deadline: Option<(Instant, u64)>,
        trace: TraceId,
    ) -> (Result<Response>, u64) {
        let inner = &self.inner;
        let obs = inner.obs.as_ref();
        let mut bytes = 0u64;
        let mut attempt: u32 = 0;
        // Cause of the previous attempt's failure, carried in the next
        // Attempt span's link field.
        let mut prev_cause = RetryCause::None;
        loop {
            if let Some((d, ms)) = deadline {
                if Instant::now() >= d {
                    if let Some(o) = obs {
                        o.mark(trace, SpanKind::DeadlineShed, u64::from(attempt), ms);
                    }
                    return (Err(ServeError::DeadlineExceeded { deadline_ms: ms }), bytes);
                }
            }
            let at = obs.map(|o| o.span_start());
            let ctx = self.request_context(session);
            if trace != 0 {
                ctx.set_trace_id(trace);
            }
            if let Some((d, _)) = deadline {
                ctx.set_cancel_token(CancelToken::with_deadline(d));
            }
            let result = handler.run(&ctx, req);
            let stats = ctx.stats();
            if let (Some(o), Some(t)) = (obs, at) {
                o.span_end(
                    trace,
                    SpanKind::Attempt,
                    u64::from(attempt),
                    prev_cause as u64,
                    t,
                );
                o.record_phases(&stats);
            }
            bytes = bytes.saturating_add(stats.bytes_split.saturating_add(stats.bytes_merged));
            if stats.split_form_handoffs > 0 {
                lock(&inner.counters).split_form_handoffs += stats.split_form_handoffs;
            }
            match result {
                Ok(resp) => return (Ok(resp), bytes),
                Err(mozart_core::Error::Cancelled(_)) => {
                    // Cooperative abandonment: the deadline token fired
                    // mid-evaluation. Never retried.
                    let ms = deadline.map_or(0, |(_, ms)| ms);
                    if let Some(o) = obs {
                        o.mark(trace, SpanKind::DeadlineShed, u64::from(attempt), ms);
                    }
                    return (Err(ServeError::DeadlineExceeded { deadline_ms: ms }), bytes);
                }
                Err(e) => {
                    let e = ServeError::Runtime(e);
                    if !e.is_transient() || attempt >= inner.config.max_retries {
                        return (Err(e), bytes);
                    }
                    prev_cause = retry_cause(&e);
                    attempt += 1;
                    lock(&inner.counters).retries += 1;
                    let bt = obs.map(|o| o.span_start());
                    self.backoff(session.id, attempt, deadline);
                    if let (Some(o), Some(t)) = (obs, bt) {
                        o.span_end(trace, SpanKind::Backoff, u64::from(attempt), 0, t);
                    }
                }
            }
        }
    }

    /// Jittered exponential backoff before retry `attempt`, clamped to
    /// the request's remaining deadline (a retry that cannot finish in
    /// time sleeps short and is shed by the next deadline check). The
    /// jitter is deterministic per (session, attempt, global retry
    /// count) — `splitmix64`, the fault injector's mixer — so sessions
    /// retrying in lockstep after a shared fault decorrelate.
    fn backoff(&self, session: u64, attempt: u32, deadline: Option<(Instant, u64)>) {
        let base = self.inner.config.retry_backoff_ms;
        if base == 0 {
            return;
        }
        let scaled = base.saturating_mul(1u64 << attempt.min(6));
        let seed = session
            .wrapping_mul(0x9E37_79B9_7F4A_7C15)
            .wrapping_add(u64::from(attempt))
            .wrapping_add(lock(&self.inner.counters).retries << 17);
        let jitter = splitmix64(seed) % (scaled / 2 + 1);
        let mut wait = Duration::from_millis(scaled / 2 + jitter);
        if let Some((d, _)) = deadline {
            wait = wait.min(d.saturating_duration_since(Instant::now()));
        }
        if wait.is_zero() {
            return;
        }
        // Not a bare sleep: wait on the drain condvar so `drain()` cuts
        // the backoff short — the retry then runs immediately and the
        // drain observes its outcome, instead of the drain timeout
        // being eaten by a sleeper nothing can wake.
        let until = Instant::now() + wait;
        let mut drained = lock(&self.inner.drain_mu);
        while !*drained {
            let now = Instant::now();
            if now >= until {
                break;
            }
            let (guard, _) = self
                .inner
                .drain_cv
                .wait_timeout(drained, until - now)
                .unwrap_or_else(|p| p.into_inner());
            drained = guard;
        }
    }

    /// Wait on a forming batch as a follower. Returns `None` if the
    /// batch cannot be joined (sealed by its leader or at capacity).
    /// A follower whose deadline passes while parked sheds itself with
    /// [`ServeError::DeadlineExceeded`] without disturbing the batch
    /// (its slot in the member list stays — indices into the leader's
    /// per-member results must remain stable — it just goes unclaimed).
    fn join_batch(
        &self,
        session: &Session,
        batch: &Arc<CoalesceBatch>,
        req: &Request,
        deadline: Option<(Instant, u64)>,
        trace: TraceId,
    ) -> Option<Result<Response>> {
        let inner = &self.inner;
        let obs = inner.obs.as_ref();
        let mut st = lock(&batch.state);
        if st.sealed || st.reqs.len() >= MAX_COALESCE {
            return None;
        }
        if let Some((d, ms)) = deadline {
            if Instant::now() >= d {
                lock(&inner.counters).deadline_shed += 1;
                if let Some(o) = obs {
                    o.mark(trace, SpanKind::DeadlineShed, 0, ms);
                }
                return Some(Err(ServeError::DeadlineExceeded { deadline_ms: ms }));
            }
        }
        let idx = st.reqs.len();
        st.reqs.push(req.clone());
        // The follower's wait on its leader, linked to the leader's
        // trace — the span that ties this request's tree to the
        // evaluation that actually served it.
        let wt = obs.map(|o| o.span_start());
        while st.outcome.is_none() {
            match deadline {
                None => st = batch.cv.wait(st).unwrap_or_else(|p| p.into_inner()),
                Some((d, ms)) => {
                    let now = Instant::now();
                    if now >= d {
                        drop(st);
                        lock(&inner.counters).deadline_shed += 1;
                        if let (Some(o), Some(t)) = (obs, wt) {
                            o.span_end(
                                trace,
                                SpanKind::CoalesceWait,
                                idx as u64,
                                batch.leader_trace,
                                t,
                            );
                            o.mark(trace, SpanKind::DeadlineShed, 0, ms);
                        }
                        return Some(Err(ServeError::DeadlineExceeded { deadline_ms: ms }));
                    }
                    st = batch
                        .cv
                        .wait_timeout(st, d - now)
                        .unwrap_or_else(|p| p.into_inner())
                        .0;
                }
            }
        }
        if let (Some(o), Some(t)) = (obs, wt) {
            o.span_end(
                trace,
                SpanKind::CoalesceWait,
                idx as u64,
                batch.leader_trace,
                t,
            );
        }
        let members = st.reqs.len() as u64;
        let Some(outcome) = st.outcome.as_ref() else {
            // Unreachable (the wait loop exits only once set); typed
            // rather than panicking so a bug here fails one request.
            return Some(Err(ServeError::Runtime(mozart_core::Error::Library(
                "coalesced batch resolved without an outcome".into(),
            ))));
        };
        Some(match outcome {
            Ok((results, bytes)) => {
                {
                    let mut c = lock(&inner.counters);
                    c.started += 1;
                    c.coalesced += 1;
                }
                session.requests.fetch_add(1, Ordering::Relaxed);
                session
                    .bytes_used
                    .fetch_add(bytes / members.max(1), Ordering::Relaxed);
                let own = results.get(idx).cloned().unwrap_or_else(|| {
                    Err(ServeError::Runtime(mozart_core::Error::Library(
                        "coalesced batch outcome is missing this member's slot".into(),
                    )))
                });
                {
                    let mut c = lock(&inner.counters);
                    match &own {
                        Ok(_) => c.completed += 1,
                        Err(ServeError::DeadlineExceeded { .. }) => c.deadline_shed += 1,
                        Err(_) => c.failed += 1,
                    }
                }
                own
            }
            Err(e @ (ServeError::Saturated { .. } | ServeError::Draining)) => {
                // The batch never got an admission slot; the follower
                // would have queued behind the same full (or closed)
                // line.
                lock(&inner.counters).rejected += 1;
                Err(e.clone())
            }
            Err(e @ ServeError::DeadlineExceeded { .. }) => {
                // The leader's deadline expired before admission; the
                // batch died with it.
                lock(&inner.counters).deadline_shed += 1;
                Err(e.clone())
            }
            Err(e) => {
                {
                    let mut c = lock(&inner.counters);
                    c.started += 1;
                    c.failed += 1;
                }
                session.requests.fetch_add(1, Ordering::Relaxed);
                Err(e.clone())
            }
        })
    }

    /// Acquire admission for a published batch, evaluate every member
    /// request (as one coalesced pipeline when possible), and
    /// distribute the per-member results. The leader carries the
    /// batch's breaker pass: it is the one request that actually
    /// evaluates, so it reports the pipeline-health outcome (followers
    /// stay breaker-neutral).
    #[allow(clippy::too_many_arguments)]
    fn lead_batch(
        &self,
        session: &Session,
        handler: &dyn Pipeline,
        key: (String, u64),
        batch: Arc<CoalesceBatch>,
        deadline: Option<(Instant, u64)>,
        trace: TraceId,
        breaker_pass: BreakerPass<'_>,
    ) -> Result<Response> {
        let inner = &self.inner;
        let obs = inner.obs.as_ref();
        let guard = CoalesceGuard {
            inner,
            key,
            batch,
            finished: false,
        };
        // Followers join while this blocks — the window where the
        // service is busy is exactly the window coalescing pays off.
        let qt = obs.map(|o| o.span_start());
        let permit = match inner.admission.acquire_deadline(deadline) {
            Ok(p) => p,
            Err(e) => {
                if let (Some(o), Some(t)) = (obs, qt) {
                    let wall_ns = o.span_end(trace, SpanKind::QueueWait, 0, 0, t);
                    o.admission_wait.record(wall_ns);
                }
                if matches!(e, ServeError::DeadlineExceeded { .. }) {
                    lock(&inner.counters).deadline_shed += 1;
                    if let Some(o) = obs {
                        o.mark(
                            trace,
                            SpanKind::DeadlineShed,
                            0,
                            deadline.map_or(0, |(_, ms)| ms),
                        );
                    }
                } else {
                    lock(&inner.counters).rejected += 1;
                }
                guard.finish(Err(e.clone()));
                return Err(e);
            }
        };
        if let (Some(o), Some(t)) = (obs, qt) {
            let wall_ns = o.span_end(trace, SpanKind::QueueWait, 0, 0, t);
            o.admission_wait.record(wall_ns);
        }
        let reqs = guard.seal();
        lock(&inner.counters).started += 1;
        session.requests.fetch_add(1, Ordering::Relaxed);

        let (results, bytes) = self.eval_batch(session, handler, &reqs, deadline, trace);
        drop(permit);

        // The batch's byte cost splits evenly across members (failed
        // work included): it must not land on the leader's budget alone.
        inner.note_cost(&guard.key.0, bytes / reqs.len() as u64);
        session
            .bytes_used
            .fetch_add(bytes / reqs.len() as u64, Ordering::Relaxed);
        let own = results.first().cloned().unwrap_or_else(|| {
            Err(ServeError::Runtime(mozart_core::Error::Library(
                "coalesced batch produced no leader result".into(),
            )))
        });
        match &own {
            Ok(_) => breaker_pass.success(),
            Err(e) if e.is_transient() => breaker_pass.failure(),
            Err(_) => breaker_pass.neutral(),
        }
        {
            let mut c = lock(&inner.counters);
            match &own {
                Ok(_) => c.completed += 1,
                Err(ServeError::DeadlineExceeded { .. }) => c.deadline_shed += 1,
                Err(_) => c.failed += 1,
            }
        }
        guard.finish(Ok((results, bytes)));
        own
    }

    /// Evaluate a sealed batch's member requests, retrying transient
    /// failures of the shared evaluation and **degrading** to
    /// per-member individual evaluation (each with its own retry
    /// budget, all under the leader's one admission slot) when the
    /// shared evaluation keeps failing transiently or the pipeline
    /// declines to coalesce — one fault must not condemn the whole
    /// batch. Deterministic errors fail every member identically.
    /// Returns per-member results in `reqs` order plus the total byte
    /// cost of all attempts.
    fn eval_batch(
        &self,
        session: &Session,
        handler: &dyn Pipeline,
        reqs: &[Request],
        deadline: Option<(Instant, u64)>,
        trace: TraceId,
    ) -> (Vec<Result<Response>>, u64) {
        let inner = &self.inner;
        let obs = inner.obs.as_ref();
        if reqs.len() == 1 {
            let (r, b) = self.run_attempts(session, handler, &reqs[0], deadline, trace);
            return (vec![r], b);
        }
        let mut bytes = 0u64;
        let mut attempt: u32 = 0;
        let mut prev_cause = RetryCause::None;
        loop {
            if let Some((d, ms)) = deadline {
                if Instant::now() >= d {
                    if let Some(o) = obs {
                        o.mark(trace, SpanKind::DeadlineShed, u64::from(attempt), ms);
                    }
                    let e = ServeError::DeadlineExceeded { deadline_ms: ms };
                    return (vec![Err(e); reqs.len()], bytes);
                }
            }
            let at = obs.map(|o| o.span_start());
            let ctx = self.request_context(session);
            if trace != 0 {
                ctx.set_trace_id(trace);
            }
            if let Some((d, _)) = deadline {
                ctx.set_cancel_token(CancelToken::with_deadline(d));
            }
            let result = coalesce_segments(&ctx, handler, reqs);
            let stats = ctx.stats();
            if let (Some(o), Some(t)) = (obs, at) {
                o.span_end(
                    trace,
                    SpanKind::Attempt,
                    u64::from(attempt),
                    prev_cause as u64,
                    t,
                );
                o.record_phases(&stats);
            }
            bytes = bytes.saturating_add(stats.bytes_split.saturating_add(stats.bytes_merged));
            if stats.split_form_handoffs > 0 {
                lock(&self.inner.counters).split_form_handoffs += stats.split_form_handoffs;
            }
            match result {
                // The pipeline declined (no segment support, a missing
                // Concat capability, or the size bound): per-member
                // evaluation below.
                None => break,
                Some(Ok(resps)) if resps.len() == reqs.len() => {
                    return (resps.into_iter().map(Ok).collect(), bytes);
                }
                Some(Ok(resps)) => {
                    let e = ServeError::Runtime(mozart_core::Error::Library(format!(
                        "coalesced evaluation returned {} responses for {} requests",
                        resps.len(),
                        reqs.len()
                    )));
                    return (vec![Err(e); reqs.len()], bytes);
                }
                Some(Err(mozart_core::Error::Cancelled(_))) => {
                    let ms = deadline.map_or(0, |(_, ms)| ms);
                    if let Some(o) = obs {
                        o.mark(trace, SpanKind::DeadlineShed, u64::from(attempt), ms);
                    }
                    let e = ServeError::DeadlineExceeded { deadline_ms: ms };
                    return (vec![Err(e); reqs.len()], bytes);
                }
                Some(Err(e)) => {
                    let e = ServeError::Runtime(e);
                    if !e.is_transient() {
                        return (vec![Err(e); reqs.len()], bytes);
                    }
                    if attempt >= inner.config.max_retries {
                        break; // degrade: isolate the fault per member
                    }
                    prev_cause = retry_cause(&e);
                    attempt += 1;
                    lock(&inner.counters).retries += 1;
                    let bt = obs.map(|o| o.span_start());
                    self.backoff(session.id, attempt, deadline);
                    if let (Some(o), Some(t)) = (obs, bt) {
                        o.span_end(trace, SpanKind::Backoff, u64::from(attempt), 0, t);
                    }
                }
            }
        }
        let mut results = Vec::with_capacity(reqs.len());
        for req in reqs {
            let (r, b) = self.run_attempts(session, handler, req, deadline, trace);
            bytes = bytes.saturating_add(b);
            results.push(r);
        }
        (results, bytes)
    }
}

/// The generic cross-request coalescer: evaluate several key-identical
/// requests as **one** pipeline over split-layer-concatenated inputs
/// and slice the outputs back per request.
///
/// Returns `None` to decline — the pipeline exposes no segments, an
/// input's split type exposes no [`Concat`] capability, or the combined
/// element total exceeds the leader's bound — in which case the caller
/// evaluates the members individually. `Some(Err(..))` fails the whole
/// batch (every member sees the error, exactly like a failing shared
/// evaluation).
fn coalesce_segments(
    ctx: &MozartContext,
    handler: &dyn Pipeline,
    reqs: &[Request],
) -> Option<mozart_core::Result<Vec<Response>>> {
    let mut segments = Vec::with_capacity(reqs.len());
    for req in reqs {
        match handler.segment(req)? {
            Ok(s) => segments.push(s),
            // Joining is gated on a parseable coalesce key, so a
            // member whose segment fails to build indicates a true
            // evaluation-input failure; it fails the batch like any
            // shared-evaluation error.
            Err(e) => return Some(Err(e)),
        }
    }
    coalesce_built_segments(ctx, segments).transpose()
}

/// The fallible core of [`coalesce_segments`], once every member's
/// segment exists. `Ok(None)` means "decline".
fn coalesce_built_segments(
    ctx: &MozartContext,
    segments: Vec<Segment>,
) -> mozart_core::Result<Option<Vec<Response>>> {
    let structural = |msg: String| mozart_core::Error::Library(format!("coalescing: {msg}"));
    let arity = segments[0].inputs.len();
    let out_arity = segments[0].outputs.len();
    if segments
        .iter()
        .any(|s| s.inputs.len() != arity || s.outputs.len() != out_arity)
    {
        return Err(structural(
            "key-identical requests produced segments of different arity".into(),
        ));
    }
    if arity == 0 || out_arity == 0 {
        return Ok(None);
    }

    // Per-member element counts, from the first input's split type.
    // Every input of one request must cover the same element total (the
    // stage element-agreement rule), so one probe per member suffices.
    let mut counts = Vec::with_capacity(segments.len());
    let mut offsets = Vec::with_capacity(segments.len());
    let mut total = 0u64;
    for s in &segments {
        let input = &s.inputs[0];
        let params = input.splitter.default_params(&input.value)?;
        let info = input.splitter.info(&input.value, &params)?;
        offsets.push(total);
        counts.push(info.total_elements);
        total = total.saturating_add(info.total_elements);
    }
    let bound = segments[0].max_total_elements;
    if bound > 0 && total > bound {
        return Ok(None); // size decline: fall back to per-request evaluation
    }

    // Concatenate each input position across members through the split
    // type's Concat capability (the inverse of `split`).
    let mut cat_inputs = Vec::with_capacity(arity);
    for j in 0..arity {
        let Some(cap) = segments[0].inputs[j].splitter.concat() else {
            return Ok(None); // this input's type cannot concatenate
        };
        let values: Vec<DataValue> = segments.iter().map(|s| s.inputs[j].value.clone()).collect();
        let (cat, cat_offsets) = cap.concat(&values)?;
        if cat_offsets != offsets {
            return Err(structural(format!(
                "input {j} concatenated at offsets {cat_offsets:?}, expected \
                 {offsets:?} (inputs of one request disagree on element counts)"
            )));
        }
        cat_inputs.push(cat);
    }

    // Output slicers must exist before the evaluation runs, so a
    // missing capability declines instead of wasting the work.
    let out_caps: Vec<Arc<dyn Concat>> = {
        let mut caps = Vec::with_capacity(out_arity);
        for sp in &segments[0].outputs {
            match sp.concat() {
                Some(c) => caps.push(c),
                None => return Ok(None),
            }
        }
        caps
    };

    // One evaluation (the leader's body) over the combined inputs...
    let mut members = segments.into_iter();
    let Some(leader) = members.next() else {
        return Ok(None);
    };
    let eval = leader.eval;
    let mut responds = vec![leader.respond];
    responds.extend(members.map(|s| s.respond));
    let outs = eval(ctx, &cat_inputs)?;
    if outs.len() != out_arity {
        return Err(structural(format!(
            "evaluation returned {} outputs, segment declared {out_arity}",
            outs.len()
        )));
    }

    // ...then slice every member's element range back out.
    let mut responses = Vec::with_capacity(responds.len());
    for (i, respond) in responds.into_iter().enumerate() {
        let mut sliced = Vec::with_capacity(out_arity);
        for (out, cap) in outs.iter().zip(&out_caps) {
            sliced.push(cap.slice_back(out, offsets[i], counts[i])?);
        }
        responses.push(respond(&sliced)?);
    }
    Ok(Some(responses))
}

/// Builder for [`PipelineService`].
pub struct ServiceBuilder {
    config: ServiceConfig,
    /// Explicit overrides; `None` means "derive from `workers`" so a
    /// later [`ServiceBuilder::workers`] call rescales the defaults
    /// without clobbering values the operator set.
    max_inflight: Option<usize>,
    queue_depth: Option<usize>,
    /// Explicit adaptive-limit override; `None` derives it: adaptive
    /// unless the operator pinned `max_inflight` (the static ablation).
    adaptive_limit: Option<bool>,
    session_config: Option<Config>,
    pool: Option<PoolHandle>,
    pipelines: Vec<Arc<dyn Pipeline>>,
}

impl ServiceBuilder {
    /// Worker threads per evaluation (shared pool holds `workers - 1`).
    /// Unless set explicitly, `max_inflight` defaults to `workers` and
    /// `queue_depth` to `4 * workers`.
    pub fn workers(mut self, workers: usize) -> Self {
        self.config.workers = workers.max(1);
        self
    }

    /// Concurrent evaluations admitted. Pinning this explicitly also
    /// selects the **static** limit (the measured ablation) unless
    /// [`ServiceBuilder::adaptive_limit`] re-enables the controller —
    /// an operator who states a number usually means it.
    pub fn max_inflight(mut self, n: usize) -> Self {
        self.max_inflight = Some(n.max(1));
        self
    }

    /// Force the adaptive AIMD concurrency limiter on or off (see
    /// [`ServiceConfig::adaptive_limit`]). Without this call the
    /// limiter is on exactly when `max_inflight` was *not* pinned.
    pub fn adaptive_limit(mut self, on: bool) -> Self {
        self.adaptive_limit = Some(on);
        self
    }

    /// Explicit AIMD latency target in milliseconds (0 = seed from the
    /// measured latency distribution; see
    /// [`ServiceConfig::aimd_target_ms`]).
    pub fn aimd_target_ms(mut self, ms: u64) -> Self {
        self.config.aimd_target_ms = ms;
        self
    }

    /// CoDel queue-sojourn parameters: acceptable standing queue wait
    /// and the persistence interval before the first head shed (see
    /// [`ServeError::QueueShed`]). Active only with the adaptive
    /// limiter.
    pub fn codel_ms(mut self, target_ms: u64, interval_ms: u64) -> Self {
        self.config.codel_target_ms = target_ms;
        self.config.codel_interval_ms = interval_ms;
        self
    }

    /// Process-wide memory ceiling in bytes (0 = unlimited), installed
    /// into `mozart_core::membudget` when the service is built. Note
    /// the ceiling is **global** to the process — the last service
    /// built wins — because the buffers it governs are shared across
    /// every service and session.
    pub fn memory_ceiling_bytes(mut self, bytes: u64) -> Self {
        self.config.memory_ceiling_bytes = bytes;
        self
    }

    /// Circuit-breaker tuning: consecutive post-retry transient
    /// failures that open a pipeline's breaker (0 disables breakers)
    /// and the fast-fail cooldown before a half-open probe.
    pub fn breaker(mut self, threshold: u32, cooldown: Duration) -> Self {
        self.config.breaker_threshold = threshold;
        self.config.breaker_cooldown_ms = cooldown.as_millis() as u64;
        self
    }

    /// Waiters allowed beyond `max_inflight` before `Saturated`.
    pub fn queue_depth(mut self, n: usize) -> Self {
        self.queue_depth = Some(n);
        self
    }

    /// Plans the shared cache retains.
    pub fn plan_cache_capacity(mut self, n: usize) -> Self {
        self.config.plan_cache_capacity = n.max(1);
        self
    }

    /// Default fair-share weight for new sessions (clamped to >= 1).
    /// Individual sessions can override it with [`Session::set_weight`].
    pub fn session_weight(mut self, weight: u32) -> Self {
        self.config.session_weight = weight.max(1);
        self
    }

    /// Default byte budget for new sessions (0 = unlimited); see
    /// [`ServeError::OverBudget`]. Individual sessions can override it
    /// with [`Session::set_byte_budget`].
    pub fn session_byte_budget(mut self, bytes: u64) -> Self {
        self.config.session_byte_budget = bytes;
        self
    }

    /// Enable or disable cross-request coalescing (on by default).
    pub fn coalescing(mut self, on: bool) -> Self {
        self.config.coalescing = on;
        self
    }

    /// Retries of transiently failed evaluations under the same
    /// admission permit (see [`ServiceConfig::max_retries`]; 0
    /// disables retrying).
    pub fn max_retries(mut self, n: u32) -> Self {
        self.config.max_retries = n;
        self
    }

    /// Base of the jittered exponential retry backoff, in milliseconds
    /// (see [`ServiceConfig::retry_backoff_ms`]; 0 retries
    /// immediately).
    pub fn retry_backoff_ms(mut self, ms: u64) -> Self {
        self.config.retry_backoff_ms = ms;
        self
    }

    /// Enable or disable deficit-weighted session scheduling on the
    /// shared pool (on by default; `false` is the FIFO ablation).
    pub fn fair_scheduling(mut self, on: bool) -> Self {
        self.config.fair_scheduling = on;
        self
    }

    /// Enable end-to-end request tracing and latency histograms (off by
    /// default). A tracing service mints a [`TraceId`] per request,
    /// records spans for every wait and evaluation phase into lock-free
    /// per-worker ring buffers ([`mozart_core::trace`]), feeds the
    /// latency histograms behind [`PipelineService::metrics`] /
    /// [`PipelineService::metrics_text`], and keeps the slow-request
    /// log. When off (the default), the request path takes one `Option`
    /// branch per would-be span and records nothing.
    pub fn tracing(mut self, on: bool) -> Self {
        self.config.tracing = on;
        self
    }

    /// Use an existing pool (e.g. [`mozart_core::global_pool`]) instead
    /// of spawning one sized `workers - 1`.
    pub fn pool(mut self, pool: PoolHandle) -> Self {
        self.pool = Some(pool);
        self
    }

    /// Template [`Config`] for per-request contexts (batch sizing,
    /// pedantic mode, ...). The worker count is overridden by
    /// [`ServiceBuilder::workers`].
    pub fn session_config(mut self, config: Config) -> Self {
        self.session_config = Some(config);
        self
    }

    /// Register a pipeline.
    pub fn pipeline(mut self, p: Arc<dyn Pipeline>) -> Self {
        self.pipelines.push(p);
        self
    }

    /// Register every built-in workload pipeline
    /// (see [`crate::pipelines::builtin_pipelines`]).
    pub fn builtin_pipelines(mut self) -> Self {
        self.pipelines.extend(crate::pipelines::builtin_pipelines());
        self
    }

    /// Build the service: spawns (or adopts) the shared pool, creates
    /// the plan cache, registers the integrations' default split types.
    ///
    /// # Panics
    ///
    /// If the provided session [`Config`] fails
    /// [`Config::validate`](mozart_core::Config::validate) — a server
    /// that would poison every request context should fail at startup,
    /// not serve errors forever.
    pub fn build(self) -> PipelineService {
        workloads::register_all_defaults();
        let mut config = self.config;
        config.max_inflight = self.max_inflight.unwrap_or(config.workers);
        config.queue_depth = self.queue_depth.unwrap_or(4 * config.workers);
        // Adaptive unless the operator pinned max_inflight: a pinned
        // limit is the static ablation, an unpinned one is a guess the
        // controller can do better than.
        config.adaptive_limit = self.adaptive_limit.unwrap_or(self.max_inflight.is_none());
        let pool = self
            .pool
            .unwrap_or_else(|| PoolHandle::new(config.workers.max(1) - 1));
        pool.set_fair_scheduling(config.fair_scheduling);
        let mut session_config = self
            .session_config
            .unwrap_or_else(|| Config::with_workers(config.workers));
        session_config.workers = config.workers;
        // Tracing: one shared recorder feeds every request context (the
        // executor's per-batch spans) and the serve-side spans alike.
        let obs = if config.tracing {
            let recorder = TraceRecorder::new();
            session_config.tracing = Some(recorder.clone());
            Some(Obs::new(recorder))
        } else {
            // An operator-supplied session Config may carry its own
            // recorder (e.g. one shared across services); adopt it.
            session_config.tracing.clone().map(Obs::new)
        };
        if let Err(e) = session_config.validate() {
            panic!("mozart-serve: session_config rejected: {e}");
        }
        if config.memory_ceiling_bytes > 0 {
            membudget::set_ceiling(config.memory_ceiling_bytes);
        }
        let admission = if config.adaptive_limit {
            Admission::with_codel(
                config.max_inflight,
                config.queue_depth,
                CodelCfg {
                    target: Duration::from_millis(config.codel_target_ms),
                    interval: Duration::from_millis(config.codel_interval_ms),
                },
            )
        } else {
            Admission::new(config.max_inflight, config.queue_depth)
        };
        let aimd = config.adaptive_limit.then(|| {
            AimdController::new(AimdConfig {
                min_limit: 1,
                // Headroom above the static default: the controller may
                // discover the pool sustains more concurrency than one
                // evaluation per worker, but a runaway limit is capped.
                max_limit: (4 * config.workers).max(8),
                initial_limit: config.max_inflight,
                target: (config.aimd_target_ms > 0)
                    .then(|| Duration::from_millis(config.aimd_target_ms)),
                decrease_ratio_permille: 900,
            })
        });
        let service = PipelineService {
            inner: Arc::new(ServiceInner {
                admission,
                cache: Arc::new(PlanCache::new(config.plan_cache_capacity)),
                session_config,
                pool,
                pipelines: RwLock::new(HashMap::new()),
                coalescer: Mutex::new(HashMap::new()),
                session_counter: AtomicU64::new(0),
                counters: Mutex::new(Counters::default()),
                draining: AtomicBool::new(false),
                drain_mu: Mutex::new(false),
                drain_cv: Condvar::new(),
                aimd,
                breakers: BreakerMap::new(BreakerConfig {
                    threshold: config.breaker_threshold,
                    cooldown: Duration::from_millis(config.breaker_cooldown_ms),
                }),
                pipeline_cost: Mutex::new(HashMap::new()),
                obs,
                config,
            }),
        };
        for p in self.pipelines {
            service.register(p);
        }
        service
    }
}

/// One client's handle onto a [`PipelineService`]. The session id tags
/// every request context, so the shared pool's
/// [`PoolStats::sessions`] fairness accounting aggregates per client
/// rather than per short-lived request context; the session also
/// carries its fair-share weight and byte budget.
pub struct Session {
    service: PipelineService,
    id: u64,
    requests: AtomicU64,
    weight: AtomicU32,
    /// Byte budget (0 = unlimited); see [`ServeError::OverBudget`].
    byte_budget: AtomicU64,
    /// Bytes split + merged on this session's behalf, accumulated from
    /// each request context's phase stats.
    bytes_used: AtomicU64,
    /// Default deadline in milliseconds for requests that carry none
    /// (0 = no default; sub-millisecond settings round up to 1).
    default_deadline_ms: AtomicU64,
    /// Stage evaluation mode for this session's request contexts:
    /// `true` fuses whole pipelines (`Config::pipeline`, the service
    /// default), `false` evaluates one stage per call, handing
    /// intermediates across in split form where eligible.
    pipeline: AtomicBool,
    /// Plan verification mode for this session's request contexts
    /// (`Config::verify_plans`): `true` statically proves each stage
    /// plan sound before executing it, `false` trusts the planner.
    verify_plans: AtomicBool,
}

impl Session {
    /// This session's id (the pool's fairness key).
    pub fn id(&self) -> u64 {
        self.id
    }

    /// Requests this session has submitted.
    pub fn requests(&self) -> u64 {
        self.requests.load(Ordering::Relaxed)
    }

    /// This session's fair-share weight.
    pub fn weight(&self) -> u32 {
        self.weight.load(Ordering::Relaxed)
    }

    /// Set this session's fair-share weight (clamped to >= 1): its
    /// entitled share of the contended pool, relative to other sessions'
    /// weights, under deficit-weighted round-robin.
    pub fn set_weight(&self, weight: u32) {
        let weight = weight.max(1);
        self.weight.store(weight, Ordering::Relaxed);
        self.service.inner.pool.set_session_weight(self.id, weight);
    }

    /// This session's byte budget (0 = unlimited).
    pub fn byte_budget(&self) -> u64 {
        self.byte_budget.load(Ordering::Relaxed)
    }

    /// Set this session's byte budget (0 = unlimited). Once
    /// [`Session::bytes_used`] reaches the budget, further requests are
    /// shed with [`ServeError::OverBudget`].
    pub fn set_byte_budget(&self, bytes: u64) {
        self.byte_budget.store(bytes, Ordering::Relaxed);
    }

    /// Bytes split + merged on this session's behalf so far.
    pub fn bytes_used(&self) -> u64 {
        self.bytes_used.load(Ordering::Relaxed)
    }

    /// Shed the request if the session's byte budget is exhausted.
    fn check_budget(&self, inner: &ServiceInner) -> Result<()> {
        let budget = self.byte_budget.load(Ordering::Relaxed);
        if budget == 0 {
            return Ok(());
        }
        let used = self.bytes_used.load(Ordering::Relaxed);
        if used >= budget {
            lock(&inner.counters).over_budget += 1;
            return Err(ServeError::OverBudget {
                session: self.id,
                used_bytes: used,
                budget_bytes: budget,
            });
        }
        Ok(())
    }

    /// This session's default deadline in milliseconds for requests
    /// that carry no explicit deadline (`None` = no default).
    pub fn deadline_ms(&self) -> Option<u64> {
        match self.default_deadline_ms.load(Ordering::Relaxed) {
            0 => None,
            ms => Some(ms),
        }
    }

    /// Set (or clear, with `None`) the default deadline applied to this
    /// session's requests that carry no explicit
    /// [`Request::with_deadline_ms`]. Sub-millisecond durations round
    /// up to 1 ms; an immediate-shed deadline is expressed per request
    /// (`with_deadline_ms(0)`).
    pub fn set_deadline(&self, deadline: Option<Duration>) {
        let ms = deadline.map_or(0, |d| {
            u64::try_from(d.as_millis()).unwrap_or(u64::MAX).max(1)
        });
        self.default_deadline_ms.store(ms, Ordering::Relaxed);
    }

    /// This session's stage evaluation mode: `true` fuses whole
    /// pipelines, `false` evaluates one stage per call with split-form
    /// hand-offs across stage boundaries.
    pub fn pipeline(&self) -> bool {
        self.pipeline.load(Ordering::Relaxed)
    }

    /// Set this session's stage evaluation mode (the `PIPELINE <0|1>`
    /// wire directive). Takes effect on the next request; fused and
    /// staged evaluation produce bit-identical responses, so this is a
    /// performance knob, never a semantic one.
    pub fn set_pipeline(&self, pipeline: bool) {
        self.pipeline.store(pipeline, Ordering::Relaxed);
    }

    /// This session's plan verification mode: `true` statically proves
    /// each stage plan sound ([`mozart_core::verify_stage`]) before the
    /// executor touches it.
    pub fn verify_plans(&self) -> bool {
        self.verify_plans.load(Ordering::Relaxed)
    }

    /// Set this session's plan verification mode (the `VERIFY <0|1>`
    /// wire directive). Takes effect on the next request. Verification
    /// rejects unsound plans before execution; it never changes the
    /// result of a sound one, so — like `PIPELINE` — this trades a
    /// small per-stage check against planner trust.
    pub fn set_verify_plans(&self, verify: bool) {
        self.verify_plans.store(verify, Ordering::Relaxed);
    }

    /// Run `pipeline` with `req`, waiting in the bounded admission
    /// queue if the service is busy. Returns
    /// [`ServeError::Saturated`] once the queue itself is full. While
    /// waiting, the request may coalesce with fingerprint-identical
    /// queued requests (see [`Pipeline::coalesce_key`]).
    pub fn call(&self, pipeline: &str, req: &Request) -> Result<Response> {
        self.service.execute(self, pipeline, req, true)
    }

    /// Like [`Session::call`], additionally returning the request's
    /// trace id when the service was built with tracing
    /// ([`ServiceBuilder::tracing`]); `None` otherwise. The id is
    /// returned for failed requests too — their traces show where the
    /// time went before the failure. Look the trace up with
    /// [`PipelineService::trace_tree`] or the `TRACE <id>` protocol
    /// line.
    pub fn call_traced(
        &self,
        pipeline: &str,
        req: &Request,
    ) -> (Result<Response>, Option<TraceId>) {
        self.service.execute_traced(self, pipeline, req, true)
    }

    /// Run `pipeline` with `req` only if a slot is free right now;
    /// never waits (and never coalesces — joining a batch means waiting
    /// for its leader).
    pub fn try_call(&self, pipeline: &str, req: &Request) -> Result<Response> {
        self.service.execute(self, pipeline, req, false)
    }

    /// A fresh context wired like this session's request contexts
    /// (shared pool, shared plan cache, this session's tag) — for
    /// callers that want to run ad-hoc annotated calls under the
    /// service's resource envelope. Bypasses admission control and
    /// byte-budget metering.
    pub fn context(&self) -> MozartContext {
        self.service.request_context(self)
    }
}

fn read<'a, K, V>(l: &'a RwLock<HashMap<K, V>>) -> std::sync::RwLockReadGuard<'a, HashMap<K, V>> {
    l.read().unwrap_or_else(|p| p.into_inner())
}

fn write<'a, K, V>(l: &'a RwLock<HashMap<K, V>>) -> std::sync::RwLockWriteGuard<'a, HashMap<K, V>> {
    l.write().unwrap_or_else(|p| p.into_inner())
}

fn lock<T>(m: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|p| p.into_inner())
}
