//! The in-process pipeline service: named pipelines, session handles,
//! per-request contexts wired to the shared worker pool and plan cache,
//! and bounded admission.

use std::collections::{BTreeMap, HashMap};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, RwLock};

use mozart_core::{Config, MozartContext, PlanCache, PlanCacheStats, PoolHandle, PoolStats};

use crate::admission::Admission;
use crate::error::{Result, ServeError};

/// A pipeline request: string parameters keyed by name (the in-process
/// mirror of the wire protocol's `key=value` pairs).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Request {
    params: BTreeMap<String, String>,
}

impl Request {
    /// An empty request (pipelines fall back to their defaults).
    pub fn new() -> Request {
        Request::default()
    }

    /// Set a parameter, builder-style.
    pub fn with(mut self, key: &str, value: impl ToString) -> Request {
        self.params.insert(key.to_string(), value.to_string());
        self
    }

    /// Set a parameter in place.
    pub fn set(&mut self, key: &str, value: impl ToString) {
        self.params.insert(key.to_string(), value.to_string());
    }

    /// Raw parameter value.
    pub fn get(&self, key: &str) -> Option<&str> {
        self.params.get(key).map(String::as_str)
    }

    /// Parameters in deterministic (sorted) order.
    pub fn params(&self) -> impl Iterator<Item = (&str, &str)> {
        self.params.iter().map(|(k, v)| (k.as_str(), v.as_str()))
    }

    /// Parse a `usize` parameter, with a default when absent.
    pub fn usize_or(&self, key: &str, default: usize) -> Result<usize> {
        match self.params.get(key) {
            None => Ok(default),
            Some(raw) => raw.parse().map_err(|_| {
                ServeError::BadRequest(format!("parameter {key}={raw} is not an integer"))
            }),
        }
    }

    /// Parse a `u64` parameter, with a default when absent.
    pub fn u64_or(&self, key: &str, default: u64) -> Result<u64> {
        match self.params.get(key) {
            None => Ok(default),
            Some(raw) => raw.parse().map_err(|_| {
                ServeError::BadRequest(format!("parameter {key}={raw} is not an integer"))
            }),
        }
    }
}

/// A pipeline response: a single line of `key=value` pairs (checksums,
/// summaries) suitable for the wire protocol.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Response {
    /// Response body (no newlines).
    pub body: String,
}

impl Response {
    /// Wrap a body string.
    pub fn new(body: impl Into<String>) -> Response {
        Response { body: body.into() }
    }
}

/// A named, registered pipeline: a fixed sequence of annotated calls
/// over request-parameterized inputs, evaluated through the provided
/// context. Implementations must be stateless per request (they run
/// concurrently) but may cache generated inputs internally.
pub trait Pipeline: Send + Sync {
    /// The name requests address this pipeline by.
    fn name(&self) -> &'static str;

    /// Execute the pipeline through `ctx` (already wired to the
    /// service's shared pool and plan cache).
    fn run(&self, ctx: &MozartContext, req: &Request) -> mozart_core::Result<Response>;
}

/// Sizing knobs of a [`PipelineService`]; see
/// [`ServiceBuilder`](PipelineService::builder).
#[derive(Debug, Clone)]
pub struct ServiceConfig {
    /// Worker threads available to an evaluation (the shared pool holds
    /// `workers - 1` threads; the evaluating thread participates).
    pub workers: usize,
    /// Concurrent evaluations admitted (defaults to `workers`).
    pub max_inflight: usize,
    /// Callers allowed to wait for admission beyond `max_inflight`
    /// before [`ServeError::Saturated`] is returned.
    pub queue_depth: usize,
    /// Plans the shared [`PlanCache`] retains.
    pub plan_cache_capacity: usize,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        let workers = mozart_core::config::default_workers();
        ServiceConfig {
            workers,
            max_inflight: workers,
            queue_depth: 4 * workers,
            plan_cache_capacity: 256,
        }
    }
}

/// Cumulative service counters (see [`PipelineService::stats`]).
#[derive(Debug, Clone, Default)]
pub struct ServiceStats {
    /// Requests admitted and started.
    pub started: u64,
    /// Requests that completed successfully.
    pub completed: u64,
    /// Requests rejected by admission control.
    pub rejected: u64,
    /// Requests that failed inside the pipeline.
    pub failed: u64,
    /// Sessions opened.
    pub sessions: u64,
    /// Requests currently evaluating.
    pub inflight: usize,
    /// Callers currently waiting for admission.
    pub waiting: usize,
    /// Shared plan cache counters.
    pub plan_cache: PlanCacheStats,
    /// Shared worker pool counters (includes per-session fairness).
    pub pool: PoolStats,
}

struct ServiceInner {
    config: ServiceConfig,
    /// Template for per-request contexts (workers forced to
    /// `config.workers`); lets operators tune batch sizing, pedantic
    /// mode, etc. for every session at once.
    session_config: Config,
    pool: PoolHandle,
    cache: Arc<PlanCache>,
    pipelines: RwLock<HashMap<&'static str, Arc<dyn Pipeline>>>,
    admission: Admission,
    session_counter: AtomicU64,
    started: AtomicU64,
    completed: AtomicU64,
    rejected: AtomicU64,
    failed: AtomicU64,
}

/// A multi-tenant, in-process pipeline service (the `mozart-serve`
/// tentpole): every session shares one process-wide worker pool — no
/// per-client thread oversubscription — and one plan cache, so repeated
/// structurally identical pipelines skip the planner.
///
/// Cloning is cheap; clones share all state. See the crate docs for a
/// quickstart.
#[derive(Clone)]
pub struct PipelineService {
    inner: Arc<ServiceInner>,
}

impl PipelineService {
    /// Start configuring a service.
    pub fn builder() -> ServiceBuilder {
        ServiceBuilder {
            config: ServiceConfig::default(),
            max_inflight: None,
            queue_depth: None,
            session_config: None,
            pool: None,
            pipelines: Vec::new(),
        }
    }

    /// Register (or replace) a pipeline after construction.
    pub fn register(&self, pipeline: Arc<dyn Pipeline>) {
        let mut map = write(&self.inner.pipelines);
        map.insert(pipeline.name(), pipeline);
    }

    /// Names of the registered pipelines, sorted.
    pub fn pipeline_names(&self) -> Vec<&'static str> {
        let mut names: Vec<&'static str> = read(&self.inner.pipelines).keys().copied().collect();
        names.sort_unstable();
        names
    }

    /// Open a session: the unit of fairness accounting and the handle
    /// requests go through. Sessions are cheap and `Send`; open one per
    /// client connection or per client thread.
    pub fn session(&self) -> Session {
        let inner = &self.inner;
        let id = inner.session_counter.fetch_add(1, Ordering::Relaxed);
        Session {
            service: self.clone(),
            id,
            requests: AtomicU64::new(0),
        }
    }

    /// The sizing configuration the service was built with.
    pub fn config(&self) -> &ServiceConfig {
        &self.inner.config
    }

    /// The service's shared worker pool handle.
    pub fn pool(&self) -> PoolHandle {
        self.inner.pool.clone()
    }

    /// The service's shared plan cache.
    pub fn plan_cache(&self) -> Arc<PlanCache> {
        self.inner.cache.clone()
    }

    /// Snapshot of the service counters.
    pub fn stats(&self) -> ServiceStats {
        let inner = &self.inner;
        let (inflight, waiting) = inner.admission.load();
        ServiceStats {
            started: inner.started.load(Ordering::Relaxed),
            completed: inner.completed.load(Ordering::Relaxed),
            rejected: inner.rejected.load(Ordering::Relaxed),
            failed: inner.failed.load(Ordering::Relaxed),
            sessions: inner.session_counter.load(Ordering::Relaxed),
            inflight,
            waiting,
            plan_cache: inner.cache.stats(),
            pool: inner.pool.stats(),
        }
    }

    fn execute(
        &self,
        session: &Session,
        pipeline: &str,
        req: &Request,
        wait: bool,
    ) -> Result<Response> {
        let inner = &self.inner;
        let handler = read(&inner.pipelines)
            .get(pipeline)
            .cloned()
            .ok_or_else(|| ServeError::UnknownPipeline(pipeline.to_string()))?;
        let permit = if wait {
            inner.admission.acquire()
        } else {
            inner.admission.try_acquire()
        };
        let _permit = match permit {
            Ok(p) => p,
            Err(e) => {
                inner.rejected.fetch_add(1, Ordering::Relaxed);
                return Err(e);
            }
        };
        inner.started.fetch_add(1, Ordering::Relaxed);
        session.requests.fetch_add(1, Ordering::Relaxed);

        // One short-lived context per request: registration state never
        // accumulates, while the expensive parts — worker threads and
        // plans — live in the shared pool and cache.
        let ctx = MozartContext::new(inner.session_config.clone());
        ctx.attach_pool(inner.pool.clone())
            .attach_plan_cache(inner.cache.clone())
            .set_session_tag(session.id);
        match handler.run(&ctx, req) {
            Ok(resp) => {
                inner.completed.fetch_add(1, Ordering::Relaxed);
                Ok(resp)
            }
            Err(e) => {
                inner.failed.fetch_add(1, Ordering::Relaxed);
                Err(ServeError::Runtime(e))
            }
        }
    }
}

/// Builder for [`PipelineService`].
pub struct ServiceBuilder {
    config: ServiceConfig,
    /// Explicit overrides; `None` means "derive from `workers`" so a
    /// later [`ServiceBuilder::workers`] call rescales the defaults
    /// without clobbering values the operator set.
    max_inflight: Option<usize>,
    queue_depth: Option<usize>,
    session_config: Option<Config>,
    pool: Option<PoolHandle>,
    pipelines: Vec<Arc<dyn Pipeline>>,
}

impl ServiceBuilder {
    /// Worker threads per evaluation (shared pool holds `workers - 1`).
    /// Unless set explicitly, `max_inflight` defaults to `workers` and
    /// `queue_depth` to `4 * workers`.
    pub fn workers(mut self, workers: usize) -> Self {
        self.config.workers = workers.max(1);
        self
    }

    /// Concurrent evaluations admitted.
    pub fn max_inflight(mut self, n: usize) -> Self {
        self.max_inflight = Some(n.max(1));
        self
    }

    /// Waiters allowed beyond `max_inflight` before `Saturated`.
    pub fn queue_depth(mut self, n: usize) -> Self {
        self.queue_depth = Some(n);
        self
    }

    /// Plans the shared cache retains.
    pub fn plan_cache_capacity(mut self, n: usize) -> Self {
        self.config.plan_cache_capacity = n.max(1);
        self
    }

    /// Use an existing pool (e.g. [`mozart_core::global_pool`]) instead
    /// of spawning one sized `workers - 1`.
    pub fn pool(mut self, pool: PoolHandle) -> Self {
        self.pool = Some(pool);
        self
    }

    /// Template [`Config`] for per-request contexts (batch sizing,
    /// pedantic mode, ...). The worker count is overridden by
    /// [`ServiceBuilder::workers`].
    pub fn session_config(mut self, config: Config) -> Self {
        self.session_config = Some(config);
        self
    }

    /// Register a pipeline.
    pub fn pipeline(mut self, p: Arc<dyn Pipeline>) -> Self {
        self.pipelines.push(p);
        self
    }

    /// Register every built-in workload pipeline
    /// (see [`crate::pipelines::builtin_pipelines`]).
    pub fn builtin_pipelines(mut self) -> Self {
        self.pipelines.extend(crate::pipelines::builtin_pipelines());
        self
    }

    /// Build the service: spawns (or adopts) the shared pool, creates
    /// the plan cache, registers the integrations' default split types.
    pub fn build(self) -> PipelineService {
        workloads::register_all_defaults();
        let mut config = self.config;
        config.max_inflight = self.max_inflight.unwrap_or(config.workers);
        config.queue_depth = self.queue_depth.unwrap_or(4 * config.workers);
        let pool = self
            .pool
            .unwrap_or_else(|| PoolHandle::new(config.workers.max(1) - 1));
        let mut session_config = self
            .session_config
            .unwrap_or_else(|| Config::with_workers(config.workers));
        session_config.workers = config.workers;
        let service = PipelineService {
            inner: Arc::new(ServiceInner {
                admission: Admission::new(config.max_inflight, config.queue_depth),
                cache: Arc::new(PlanCache::new(config.plan_cache_capacity)),
                session_config,
                pool,
                pipelines: RwLock::new(HashMap::new()),
                session_counter: AtomicU64::new(0),
                started: AtomicU64::new(0),
                completed: AtomicU64::new(0),
                rejected: AtomicU64::new(0),
                failed: AtomicU64::new(0),
                config,
            }),
        };
        for p in self.pipelines {
            service.register(p);
        }
        service
    }
}

/// One client's handle onto a [`PipelineService`]. The session id tags
/// every request context, so the shared pool's
/// [`PoolStats::sessions`] fairness accounting aggregates per client
/// rather than per short-lived request context.
pub struct Session {
    service: PipelineService,
    id: u64,
    requests: AtomicU64,
}

impl Session {
    /// This session's id (the pool's fairness key).
    pub fn id(&self) -> u64 {
        self.id
    }

    /// Requests this session has submitted.
    pub fn requests(&self) -> u64 {
        self.requests.load(Ordering::Relaxed)
    }

    /// Run `pipeline` with `req`, waiting in the bounded admission
    /// queue if the service is busy. Returns
    /// [`ServeError::Saturated`] once the queue itself is full.
    pub fn call(&self, pipeline: &str, req: &Request) -> Result<Response> {
        self.service.execute(self, pipeline, req, true)
    }

    /// Run `pipeline` with `req` only if a slot is free right now;
    /// never waits.
    pub fn try_call(&self, pipeline: &str, req: &Request) -> Result<Response> {
        self.service.execute(self, pipeline, req, false)
    }

    /// A fresh context wired like this session's request contexts
    /// (shared pool, shared plan cache, this session's tag) — for
    /// callers that want to run ad-hoc annotated calls under the
    /// service's resource envelope. Bypasses admission control.
    pub fn context(&self) -> MozartContext {
        let inner = &self.service.inner;
        let ctx = MozartContext::new(inner.session_config.clone());
        ctx.attach_pool(inner.pool.clone())
            .attach_plan_cache(inner.cache.clone())
            .set_session_tag(self.id);
        ctx
    }
}

fn read<'a, K, V>(l: &'a RwLock<HashMap<K, V>>) -> std::sync::RwLockReadGuard<'a, HashMap<K, V>> {
    l.read().unwrap_or_else(|p| p.into_inner())
}

fn write<'a, K, V>(l: &'a RwLock<HashMap<K, V>>) -> std::sync::RwLockWriteGuard<'a, HashMap<K, V>> {
    l.write().unwrap_or_else(|p| p.into_inner())
}
