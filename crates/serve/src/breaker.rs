//! Per-pipeline circuit breakers: fast-fail requests to a pipeline
//! whose recent evaluations keep dying of transient faults.
//!
//! Without a breaker, a pipeline stuck in a crash loop (a worker bug, a
//! poisoned input shape, an injected fault campaign) costs the service
//! twice: every doomed request burns a full admission permit plus
//! `1 + max_retries` pool evaluations before failing, and those permits
//! starve the healthy pipelines sharing the admission queue. The
//! breaker converts that to a sub-microsecond typed rejection.
//!
//! Classic three-state machine, tracked per pipeline:
//!
//! * **Closed** (healthy): requests flow. Each *post-retry* transient
//!   failure ([`ServeError::is_transient`] — `TaskPanicked` /
//!   `Injected` only) increments a consecutive-failure counter; any
//!   success resets it. Deterministic errors (bad requests, budget or
//!   deadline sheds) are neutral — they say nothing about pipeline
//!   health. At `threshold` consecutive failures the breaker **opens**.
//! * **Open**: requests fast-fail with [`ServeError::CircuitOpen`]
//!   without touching admission or the pool, until `cooldown` elapses.
//!
//! [`ServeError::is_transient`]: crate::ServeError::is_transient
//! [`ServeError::CircuitOpen`]: crate::ServeError::CircuitOpen
//! * **Half-open**: after cooldown, exactly **one** probe request is
//!   let through (concurrent requests keep fast-failing — a thundering
//!   herd through a half-open breaker would re-create the crash loop
//!   it guards against). Probe success closes the breaker; probe
//!   failure re-opens it for another cooldown.
//!
//! A request that dies without reporting (client panic between admit
//! and record) must not wedge the half-open probe slot forever, so the
//! probe token is a drop-guard: the crate-internal `BreakerPass`
//! returns the slot if dropped unreported.

use std::collections::HashMap;
use std::sync::{Mutex, RwLock};
use std::time::{Duration, Instant};

/// Breaker tuning.
#[derive(Clone, Copy, Debug)]
pub struct BreakerConfig {
    /// Consecutive transient failures (post-retry) that open the
    /// breaker. `0` disables breakers entirely.
    pub threshold: u32,
    /// How long an open breaker fast-fails before allowing a half-open
    /// probe.
    pub cooldown: Duration,
}

impl Default for BreakerConfig {
    fn default() -> Self {
        BreakerConfig {
            threshold: 8,
            cooldown: Duration::from_millis(200),
        }
    }
}

/// Public snapshot of one breaker's state (for STATS/METRICS).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BreakerState {
    /// Healthy: requests flow.
    Closed,
    /// Fast-failing: cooldown in progress.
    Open,
    /// Cooldown elapsed: one probe in flight or available.
    HalfOpen,
}

impl BreakerState {
    /// Stable wire label.
    pub fn as_str(self) -> &'static str {
        match self {
            BreakerState::Closed => "closed",
            BreakerState::Open => "open",
            BreakerState::HalfOpen => "half_open",
        }
    }

    /// Stable numeric gauge encoding (0 closed, 1 half-open, 2 open).
    pub fn as_gauge(self) -> u64 {
        match self {
            BreakerState::Closed => 0,
            BreakerState::HalfOpen => 1,
            BreakerState::Open => 2,
        }
    }
}

enum Gate {
    Closed { consecutive_failures: u32 },
    Open { until: Instant },
    HalfOpen { probe_inflight: bool },
}

struct Breaker {
    gate: Gate,
    /// Times this breaker has transitioned Closed/HalfOpen → Open.
    opened_total: u64,
}

impl Breaker {
    fn new() -> Breaker {
        Breaker {
            gate: Gate::Closed {
                consecutive_failures: 0,
            },
            opened_total: 0,
        }
    }
}

/// Admission decision from [`BreakerMap::admit`].
pub(crate) enum BreakerDecision<'a> {
    /// Proceed; report the outcome through the pass.
    Proceed(BreakerPass<'a>),
    /// Fast-fail: the breaker is open (or half-open with a probe
    /// already in flight).
    Reject,
}

/// All breakers of a service, keyed by pipeline name.
pub(crate) struct BreakerMap {
    cfg: BreakerConfig,
    // RwLock over the map (reads dominate: most requests only look up
    // an existing breaker), Mutex per breaker for the state machine.
    breakers: RwLock<HashMap<String, Mutex<Breaker>>>,
}

impl BreakerMap {
    pub(crate) fn new(cfg: BreakerConfig) -> BreakerMap {
        BreakerMap {
            cfg,
            breakers: RwLock::new(HashMap::new()),
        }
    }

    /// Gate a request for `pipeline`. Never blocks.
    pub(crate) fn admit<'a>(&'a self, pipeline: &str) -> BreakerDecision<'a> {
        if self.cfg.threshold == 0 {
            return BreakerDecision::Proceed(BreakerPass {
                map: self,
                pipeline: String::new(),
                probe: false,
                reported: true,
            });
        }
        self.ensure(pipeline);
        let breakers = read(&self.breakers);
        let Some(slot) = breakers.get(pipeline) else {
            // Unreachable after ensure(); treat as closed.
            return BreakerDecision::Proceed(BreakerPass {
                map: self,
                pipeline: String::new(),
                probe: false,
                reported: true,
            });
        };
        let mut b = lock(slot);
        let probe = match &mut b.gate {
            Gate::Closed { .. } => false,
            Gate::Open { until } => {
                if Instant::now() < *until {
                    return BreakerDecision::Reject;
                }
                // Cooldown elapsed: this request becomes the probe.
                b.gate = Gate::HalfOpen {
                    probe_inflight: true,
                };
                true
            }
            Gate::HalfOpen { probe_inflight } => {
                if *probe_inflight {
                    return BreakerDecision::Reject;
                }
                *probe_inflight = true;
                true
            }
        };
        drop(b);
        drop(breakers);
        BreakerDecision::Proceed(BreakerPass {
            map: self,
            pipeline: pipeline.to_string(),
            probe,
            reported: false,
        })
    }

    /// Current state of `pipeline`'s breaker (Closed if none exists).
    /// An Open breaker whose cooldown has elapsed reads as HalfOpen —
    /// the state the next request will observe.
    #[cfg(test)]
    pub(crate) fn state(&self, pipeline: &str) -> BreakerState {
        let breakers = read(&self.breakers);
        match breakers.get(pipeline) {
            None => BreakerState::Closed,
            Some(slot) => match &lock(slot).gate {
                Gate::Closed { .. } => BreakerState::Closed,
                Gate::Open { until } => {
                    if Instant::now() < *until {
                        BreakerState::Open
                    } else {
                        BreakerState::HalfOpen
                    }
                }
                Gate::HalfOpen { .. } => BreakerState::HalfOpen,
            },
        }
    }

    /// `(pipeline, state, opened_total)` for every breaker ever touched,
    /// sorted by pipeline name (stable exposition order).
    pub(crate) fn snapshot(&self) -> Vec<(String, BreakerState, u64)> {
        let breakers = read(&self.breakers);
        let mut out: Vec<_> = breakers
            .iter()
            .map(|(name, slot)| {
                let b = lock(slot);
                let state = match &b.gate {
                    Gate::Closed { .. } => BreakerState::Closed,
                    Gate::Open { until } => {
                        if Instant::now() < *until {
                            BreakerState::Open
                        } else {
                            BreakerState::HalfOpen
                        }
                    }
                    Gate::HalfOpen { .. } => BreakerState::HalfOpen,
                };
                (name.clone(), state, b.opened_total)
            })
            .collect();
        out.sort_by(|a, b| a.0.cmp(&b.0));
        out
    }

    fn ensure(&self, pipeline: &str) {
        if read(&self.breakers).contains_key(pipeline) {
            return;
        }
        let mut w = write(&self.breakers);
        w.entry(pipeline.to_string())
            .or_insert_with(|| Mutex::new(Breaker::new()));
    }

    fn report(&self, pipeline: &str, probe: bool, success: Option<bool>) {
        let breakers = read(&self.breakers);
        let Some(slot) = breakers.get(pipeline) else {
            return;
        };
        let mut b = lock(slot);
        match success {
            Some(true) => {
                // Any success closes: the pipeline demonstrably works.
                b.gate = Gate::Closed {
                    consecutive_failures: 0,
                };
            }
            Some(false) => match &mut b.gate {
                Gate::Closed {
                    consecutive_failures,
                } => {
                    *consecutive_failures += 1;
                    if *consecutive_failures >= self.cfg.threshold {
                        b.gate = Gate::Open {
                            until: Instant::now() + self.cfg.cooldown,
                        };
                        b.opened_total += 1;
                    }
                }
                Gate::HalfOpen { .. } | Gate::Open { .. } => {
                    // Failed probe (or a straggler from before the
                    // open): back to a full cooldown.
                    b.gate = Gate::Open {
                        until: Instant::now() + self.cfg.cooldown,
                    };
                    b.opened_total += 1;
                }
            },
            None => {
                // Neutral outcome: only the probe slot must be
                // returned so the next request can probe.
                if probe {
                    if let Gate::HalfOpen { probe_inflight } = &mut b.gate {
                        *probe_inflight = false;
                    }
                }
            }
        }
    }
}

/// Outcome reporter handed to an admitted request. Exactly one of
/// [`BreakerPass::success`], [`BreakerPass::failure`], or
/// [`BreakerPass::neutral`] should be called; dropping the pass
/// unreported counts as neutral (returns a held probe slot without
/// judging the pipeline).
pub(crate) struct BreakerPass<'a> {
    map: &'a BreakerMap,
    pipeline: String,
    probe: bool,
    reported: bool,
}

impl BreakerPass<'_> {
    /// The evaluation succeeded: reset/close the breaker.
    pub(crate) fn success(mut self) {
        self.reported = true;
        self.map.report(&self.pipeline, self.probe, Some(true));
    }

    /// The evaluation failed with a transient fault (post-retry).
    pub(crate) fn failure(mut self) {
        self.reported = true;
        self.map.report(&self.pipeline, self.probe, Some(false));
    }

    /// The evaluation ended in a health-neutral way (deterministic
    /// error, shed, cancelled).
    pub(crate) fn neutral(mut self) {
        self.reported = true;
        self.map.report(&self.pipeline, self.probe, None);
    }
}

impl Drop for BreakerPass<'_> {
    fn drop(&mut self) {
        if !self.reported {
            self.map.report(&self.pipeline, self.probe, None);
        }
    }
}

fn lock<T>(m: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|p| p.into_inner())
}

fn read<T>(l: &RwLock<T>) -> std::sync::RwLockReadGuard<'_, T> {
    l.read().unwrap_or_else(|p| p.into_inner())
}

fn write<T>(l: &RwLock<T>) -> std::sync::RwLockWriteGuard<'_, T> {
    l.write().unwrap_or_else(|p| p.into_inner())
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used, clippy::expect_used)]

    use super::*;

    fn map(threshold: u32, cooldown_ms: u64) -> BreakerMap {
        BreakerMap::new(BreakerConfig {
            threshold,
            cooldown: Duration::from_millis(cooldown_ms),
        })
    }

    fn fail_once(m: &BreakerMap, p: &str) -> bool {
        match m.admit(p) {
            BreakerDecision::Proceed(pass) => {
                pass.failure();
                true
            }
            BreakerDecision::Reject => false,
        }
    }

    #[test]
    fn opens_after_threshold_consecutive_failures() {
        let m = map(3, 10_000);
        assert!(fail_once(&m, "p"));
        assert!(fail_once(&m, "p"));
        assert_eq!(m.state("p"), BreakerState::Closed);
        assert!(fail_once(&m, "p"));
        assert_eq!(m.state("p"), BreakerState::Open);
        assert!(matches!(m.admit("p"), BreakerDecision::Reject));
    }

    #[test]
    fn success_resets_the_failure_streak() {
        let m = map(3, 10_000);
        assert!(fail_once(&m, "p"));
        assert!(fail_once(&m, "p"));
        match m.admit("p") {
            BreakerDecision::Proceed(pass) => pass.success(),
            BreakerDecision::Reject => panic!("closed breaker rejected"),
        }
        assert!(fail_once(&m, "p"));
        assert!(fail_once(&m, "p"));
        assert_eq!(
            m.state("p"),
            BreakerState::Closed,
            "streak must reset on success"
        );
    }

    #[test]
    fn half_open_admits_exactly_one_probe() {
        let m = map(1, 1);
        assert!(fail_once(&m, "p"));
        std::thread::sleep(Duration::from_millis(5));
        // Cooldown elapsed: first request is the probe...
        let probe = match m.admit("p") {
            BreakerDecision::Proceed(pass) => pass,
            BreakerDecision::Reject => panic!("half-open breaker must admit a probe"),
        };
        // ...and everyone else keeps fast-failing while it runs.
        assert!(matches!(m.admit("p"), BreakerDecision::Reject));
        probe.success();
        assert_eq!(m.state("p"), BreakerState::Closed);
        assert!(matches!(m.admit("p"), BreakerDecision::Proceed(_)));
    }

    #[test]
    fn failed_probe_reopens() {
        let m = map(1, 1);
        assert!(fail_once(&m, "p"));
        std::thread::sleep(Duration::from_millis(5));
        assert!(fail_once(&m, "p"), "probe admitted");
        assert!(
            matches!(m.admit("p"), BreakerDecision::Reject),
            "failed probe must re-open the breaker"
        );
    }

    #[test]
    fn dropped_pass_returns_the_probe_slot() {
        let m = map(1, 1);
        assert!(fail_once(&m, "p"));
        std::thread::sleep(Duration::from_millis(5));
        match m.admit("p") {
            BreakerDecision::Proceed(pass) => drop(pass),
            BreakerDecision::Reject => panic!("expected probe"),
        }
        // Slot returned: the next request may probe.
        assert!(matches!(m.admit("p"), BreakerDecision::Proceed(_)));
    }

    #[test]
    fn neutral_outcomes_do_not_move_the_breaker() {
        let m = map(2, 10_000);
        assert!(fail_once(&m, "p"));
        match m.admit("p") {
            BreakerDecision::Proceed(pass) => pass.neutral(),
            BreakerDecision::Reject => panic!("closed breaker rejected"),
        }
        assert!(fail_once(&m, "p"));
        assert_eq!(
            m.state("p"),
            BreakerState::Open,
            "neutral must not reset the streak"
        );
        let snap = m.snapshot();
        assert_eq!(snap.len(), 1);
        assert_eq!(snap[0].0, "p");
        assert_eq!(snap[0].2, 1, "one open transition");
    }

    #[test]
    fn zero_threshold_disables() {
        let m = map(0, 1);
        for _ in 0..64 {
            assert!(fail_once(&m, "p"));
        }
        assert_eq!(m.state("p"), BreakerState::Closed);
    }
}
