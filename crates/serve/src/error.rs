//! Typed errors of the serving layer.

use std::fmt;

/// Convenience alias used throughout the crate.
pub type Result<T> = std::result::Result<T, ServeError>;

/// Errors a [`PipelineService`](crate::PipelineService) reports to its
/// clients.
///
/// The variants are deliberately coarse: they map one-to-one onto the
/// wire protocol's `ERR <kind>` responses, so a remote client can react
/// (retry later on `Saturated`, fix the request on `BadRequest`) without
/// parsing prose.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ServeError {
    /// The admission queue is full: `max_inflight` requests are running
    /// and `queue_depth` more are already waiting. The backpressure
    /// signal — clients should shed load or retry with backoff.
    Saturated {
        /// Concurrent evaluations the service admits.
        max_inflight: usize,
        /// Waiters the admission queue holds beyond that.
        queue_depth: usize,
    },
    /// The session has exhausted its byte budget: the cumulative bytes
    /// split and merged on its behalf (tracked through the split info
    /// API's element sizes) reached the configured cap. Load shedding by
    /// *cost*, complementing the admission queue's shedding by *count* —
    /// a session issuing few but enormous requests is bounded all the
    /// same.
    OverBudget {
        /// The session whose budget ran out.
        session: u64,
        /// Bytes split + merged on the session's behalf so far.
        used_bytes: u64,
        /// The session's configured budget.
        budget_bytes: u64,
    },
    /// No pipeline registered under the requested name.
    UnknownPipeline(String),
    /// The request could not be parsed or is missing parameters.
    BadRequest(String),
    /// The Mozart runtime failed while evaluating the pipeline.
    Runtime(mozart_core::Error),
}

impl ServeError {
    /// Short machine-readable kind, used by the wire protocol.
    pub fn kind(&self) -> &'static str {
        match self {
            ServeError::Saturated { .. } => "saturated",
            ServeError::OverBudget { .. } => "over_budget",
            ServeError::UnknownPipeline(_) => "unknown_pipeline",
            ServeError::BadRequest(_) => "bad_request",
            ServeError::Runtime(_) => "runtime",
        }
    }
}

impl fmt::Display for ServeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServeError::Saturated {
                max_inflight,
                queue_depth,
            } => write!(
                f,
                "service saturated: {max_inflight} requests in flight and \
                 {queue_depth} queued; retry later"
            ),
            ServeError::OverBudget {
                session,
                used_bytes,
                budget_bytes,
            } => write!(
                f,
                "session {session} exceeded its byte budget: \
                 {used_bytes} of {budget_bytes} bytes used"
            ),
            ServeError::UnknownPipeline(name) => {
                write!(f, "no pipeline registered under {name:?}")
            }
            ServeError::BadRequest(m) => write!(f, "bad request: {m}"),
            ServeError::Runtime(e) => write!(f, "pipeline evaluation failed: {e}"),
        }
    }
}

impl std::error::Error for ServeError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ServeError::Runtime(e) => Some(e),
            _ => None,
        }
    }
}

impl From<mozart_core::Error> for ServeError {
    fn from(e: mozart_core::Error) -> Self {
        ServeError::Runtime(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kinds_and_messages() {
        let e = ServeError::Saturated {
            max_inflight: 4,
            queue_depth: 8,
        };
        assert_eq!(e.kind(), "saturated");
        assert!(e.to_string().contains("retry later"));
        let e = ServeError::UnknownPipeline("nope".into());
        assert_eq!(e.kind(), "unknown_pipeline");
        assert!(e.to_string().contains("nope"));
        let e = ServeError::OverBudget {
            session: 3,
            used_bytes: 2048,
            budget_bytes: 1024,
        };
        assert_eq!(e.kind(), "over_budget");
        assert!(e.to_string().contains("2048"));
        assert!(e.to_string().contains("1024"));
        let e: ServeError = mozart_core::Error::ValueUnavailable.into();
        assert_eq!(e.kind(), "runtime");
    }
}
