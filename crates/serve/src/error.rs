//! Typed errors of the serving layer.

use std::fmt;

/// Convenience alias used throughout the crate.
pub type Result<T> = std::result::Result<T, ServeError>;

/// Errors a [`PipelineService`](crate::PipelineService) reports to its
/// clients.
///
/// The variants are deliberately coarse: they map one-to-one onto the
/// wire protocol's `ERR <kind>` responses, so a remote client can react
/// (retry later on `Saturated`, fix the request on `BadRequest`) without
/// parsing prose.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ServeError {
    /// The admission queue is full: `max_inflight` requests are running
    /// and `queue_depth` more are already waiting. The backpressure
    /// signal — clients should shed load or retry with backoff.
    Saturated {
        /// Concurrent evaluations the service admits.
        max_inflight: usize,
        /// Waiters the admission queue holds beyond that.
        queue_depth: usize,
    },
    /// The session has exhausted its byte budget: the cumulative bytes
    /// split and merged on its behalf (tracked through the split info
    /// API's element sizes) reached the configured cap. Load shedding by
    /// *cost*, complementing the admission queue's shedding by *count* —
    /// a session issuing few but enormous requests is bounded all the
    /// same.
    OverBudget {
        /// The session whose budget ran out.
        session: u64,
        /// Bytes split + merged on the session's behalf so far.
        used_bytes: u64,
        /// The session's configured budget.
        budget_bytes: u64,
    },
    /// No pipeline registered under the requested name.
    UnknownPipeline(String),
    /// The request could not be parsed or is missing parameters.
    BadRequest(String),
    /// The request's deadline passed before its evaluation completed:
    /// while queued for admission, while parked in a coalesced batch
    /// waiting for its leader, or mid-evaluation (workers poll the
    /// deadline-carrying cancel token at batch-claim boundaries). The
    /// service never retries past a deadline; work already started is
    /// abandoned cooperatively, not torn down.
    DeadlineExceeded {
        /// The deadline the request carried, in milliseconds from
        /// arrival.
        deadline_ms: u64,
    },
    /// The service is draining (graceful shutdown): admission is closed
    /// and new requests are shed immediately while in-flight
    /// evaluations run to completion. Clients should reconnect
    /// elsewhere; retrying against a draining server cannot succeed.
    Draining,
    /// The request was shed by the CoDel sojourn controller: it sat at
    /// the head of the admission queue with its wait persistently above
    /// target, so the standing queue was serving nobody. Distinct from
    /// [`ServeError::Saturated`] (the queue was *full* at arrival) —
    /// here the request was accepted and then sacrificed to keep the
    /// queue a burst absorber instead of a latency reservoir.
    QueueShed {
        /// How long the request waited before being shed, in
        /// milliseconds.
        sojourn_ms: u64,
    },
    /// Admitting the request would push the process past its global
    /// memory ceiling (see `mozart_core::membudget`). Load shedding by
    /// *footprint*: the estimated allocation cost of the request (an
    /// EWMA of the pipeline's recent split + merge byte traffic) does
    /// not fit under the ceiling right now. Retryable once live memory
    /// drains.
    OverMemory {
        /// Live metered bytes at rejection time.
        live_bytes: u64,
        /// The process-wide ceiling.
        ceiling_bytes: u64,
        /// The request's estimated footprint.
        estimated_bytes: u64,
    },
    /// The pipeline's circuit breaker is open: recent evaluations
    /// failed with consecutive transient faults, so the service
    /// fast-fails new requests for this pipeline instead of burning
    /// pool time on work that is overwhelmingly likely to fail. A
    /// half-open probe closes the breaker as soon as one evaluation
    /// succeeds again.
    CircuitOpen {
        /// The pipeline whose breaker is open.
        pipeline: String,
    },
    /// The Mozart runtime failed while evaluating the pipeline.
    Runtime(mozart_core::Error),
}

impl ServeError {
    /// Short machine-readable kind, used by the wire protocol.
    pub fn kind(&self) -> &'static str {
        match self {
            ServeError::Saturated { .. } => "saturated",
            ServeError::OverBudget { .. } => "over_budget",
            ServeError::UnknownPipeline(_) => "unknown_pipeline",
            ServeError::BadRequest(_) => "bad_request",
            ServeError::DeadlineExceeded { .. } => "deadline_exceeded",
            ServeError::Draining => "draining",
            ServeError::QueueShed { .. } => "queue_shed",
            ServeError::OverMemory { .. } => "over_memory",
            ServeError::CircuitOpen { .. } => "circuit_open",
            ServeError::Runtime(_) => "runtime",
        }
    }

    /// Whether the service may retry the request that produced this
    /// error. Only *transient* runtime failures qualify — a caught
    /// panic ([`mozart_core::Error::TaskPanicked`]) or an injected
    /// fault ([`mozart_core::Error::Injected`]); deterministic errors
    /// (bad requests, invalid configs, exhausted budgets) would fail
    /// identically on every attempt and are never retried.
    pub fn is_transient(&self) -> bool {
        matches!(
            self,
            ServeError::Runtime(
                mozart_core::Error::TaskPanicked { .. } | mozart_core::Error::Injected(_)
            )
        )
    }
}

impl fmt::Display for ServeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServeError::Saturated {
                max_inflight,
                queue_depth,
            } => write!(
                f,
                "service saturated: {max_inflight} requests in flight and \
                 {queue_depth} queued; retry later"
            ),
            ServeError::OverBudget {
                session,
                used_bytes,
                budget_bytes,
            } => write!(
                f,
                "session {session} exceeded its byte budget: \
                 {used_bytes} of {budget_bytes} bytes used"
            ),
            ServeError::UnknownPipeline(name) => {
                write!(f, "no pipeline registered under {name:?}")
            }
            ServeError::BadRequest(m) => write!(f, "bad request: {m}"),
            ServeError::DeadlineExceeded { deadline_ms } => write!(
                f,
                "deadline of {deadline_ms} ms passed before the request completed"
            ),
            ServeError::Draining => {
                write!(f, "service is draining; no new requests are admitted")
            }
            ServeError::QueueShed { sojourn_ms } => write!(
                f,
                "shed after {sojourn_ms} ms at the head of a standing queue; retry later"
            ),
            ServeError::OverMemory {
                live_bytes,
                ceiling_bytes,
                estimated_bytes,
            } => write!(
                f,
                "over memory ceiling: {live_bytes} bytes live of {ceiling_bytes}, \
                 request estimated at {estimated_bytes}; retry later"
            ),
            ServeError::CircuitOpen { pipeline } => write!(
                f,
                "circuit breaker open for pipeline {pipeline:?}; retry after cooldown"
            ),
            ServeError::Runtime(e) => write!(f, "pipeline evaluation failed: {e}"),
        }
    }
}

impl std::error::Error for ServeError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ServeError::Runtime(e) => Some(e),
            _ => None,
        }
    }
}

impl From<mozart_core::Error> for ServeError {
    fn from(e: mozart_core::Error) -> Self {
        ServeError::Runtime(e)
    }
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used, clippy::expect_used)]

    use super::*;

    #[test]
    fn kinds_and_messages() {
        let e = ServeError::Saturated {
            max_inflight: 4,
            queue_depth: 8,
        };
        assert_eq!(e.kind(), "saturated");
        assert!(e.to_string().contains("retry later"));
        let e = ServeError::UnknownPipeline("nope".into());
        assert_eq!(e.kind(), "unknown_pipeline");
        assert!(e.to_string().contains("nope"));
        let e = ServeError::OverBudget {
            session: 3,
            used_bytes: 2048,
            budget_bytes: 1024,
        };
        assert_eq!(e.kind(), "over_budget");
        assert!(e.to_string().contains("2048"));
        assert!(e.to_string().contains("1024"));
        let e: ServeError = mozart_core::Error::ValueUnavailable.into();
        assert_eq!(e.kind(), "runtime");
        let e = ServeError::DeadlineExceeded { deadline_ms: 50 };
        assert_eq!(e.kind(), "deadline_exceeded");
        assert!(e.to_string().contains("50 ms"));
        assert_eq!(ServeError::Draining.kind(), "draining");
        let e = ServeError::QueueShed { sojourn_ms: 120 };
        assert_eq!(e.kind(), "queue_shed");
        assert!(e.to_string().contains("120 ms"));
        let e = ServeError::OverMemory {
            live_bytes: 900,
            ceiling_bytes: 1000,
            estimated_bytes: 200,
        };
        assert_eq!(e.kind(), "over_memory");
        assert!(e.to_string().contains("900"));
        let e = ServeError::CircuitOpen {
            pipeline: "bs".into(),
        };
        assert_eq!(e.kind(), "circuit_open");
        assert!(e.to_string().contains("bs"));
    }

    #[test]
    fn only_panics_and_injected_faults_are_transient() {
        let transient: ServeError = mozart_core::Error::TaskPanicked {
            stage: mozart_core::FaultPhase::Task,
            payload: "boom".into(),
        }
        .into();
        assert!(transient.is_transient());
        let injected: ServeError = mozart_core::Error::Injected("task fault".into()).into();
        assert!(injected.is_transient());
        for deterministic in [
            ServeError::BadRequest("nope".into()),
            ServeError::UnknownPipeline("zap".into()),
            ServeError::Draining,
            ServeError::DeadlineExceeded { deadline_ms: 1 },
            ServeError::QueueShed { sojourn_ms: 5 },
            ServeError::OverMemory {
                live_bytes: 1,
                ceiling_bytes: 2,
                estimated_bytes: 3,
            },
            ServeError::CircuitOpen {
                pipeline: "p".into(),
            },
            mozart_core::Error::InvalidConfig("bad".into()).into(),
            mozart_core::Error::Cancelled("late".into()).into(),
        ] {
            assert!(!deterministic.is_transient(), "{deterministic:?}");
        }
    }
}
