//! Adaptive concurrency control: an AIMD controller that discovers the
//! service's sustainable in-flight limit from **measured end-to-end
//! latency** instead of a hand-tuned `max_inflight`.
//!
//! A static limit is wrong in both directions: too low and the worker
//! pool idles under load it could absorb; too high and concurrent
//! evaluations thrash the shared pool (the paper's thesis — memory
//! traffic, not compute, is the bottleneck — means "more concurrency"
//! saturates bandwidth long before it saturates cores, and latency
//! inflates with nothing to show for it). The classic congestion-control
//! answer is AIMD on a latency signal:
//!
//! * every completed request reports its e2e latency via
//!   [`AimdController::on_sample`];
//! * while samples stay at or below the **target latency**, the limit
//!   grows *additively* — `+1` after a full window (one limit's worth)
//!   of good samples, i.e. roughly `+1` per round-trip like TCP's
//!   congestion avoidance;
//! * a sample above target cuts the limit *multiplicatively*
//!   (`× decrease_ratio`), rate-limited to one cut per window so a
//!   single burst of queued slow requests doesn't collapse the limit to
//!   the floor;
//! * the limit is clamped to `[min_limit, max_limit]`.
//!
//! The target can be given explicitly, or **seeded from the live
//! latency histograms** (PR 7's observability layer): the service waits
//! for a warmup's worth of completions, reads the e2e histogram's
//! median, and sets `target = median × target_multiple`. That makes the
//! controller self-calibrating — the operator states a tolerable
//! slowdown factor over the service's own unloaded latency rather than
//! an absolute number that rots as pipelines change.
//!
//! The arithmetic is integer fixed-point (limit × 1000) so the
//! controller is deterministic and cheaply shareable; the decision
//! logic takes no locks beyond one mutex held for a few adds per
//! completion.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::Duration;

/// Fixed-point scale for the fractional limit.
const SCALE: u64 = 1000;

/// Tuning for [`AimdController`].
#[derive(Clone, Copy, Debug)]
pub struct AimdConfig {
    /// Floor for the concurrency limit (≥ 1).
    pub min_limit: usize,
    /// Ceiling for the concurrency limit.
    pub max_limit: usize,
    /// Starting limit.
    pub initial_limit: usize,
    /// Explicit latency target. `None` defers to histogram seeding
    /// ([`AimdController::seed_target_ns`]); until a target exists the
    /// controller holds the limit steady.
    pub target: Option<Duration>,
    /// Multiplicative decrease ratio in per-mille (e.g. `900` = ×0.9).
    pub decrease_ratio_permille: u64,
}

impl Default for AimdConfig {
    fn default() -> Self {
        AimdConfig {
            min_limit: 1,
            max_limit: 1 << 12,
            initial_limit: 1,
            target: None,
            decrease_ratio_permille: 900,
        }
    }
}

struct AimdState {
    /// Consecutive at-or-below-target samples since the last limit
    /// change (the additive-increase credit).
    good: u64,
    /// Samples observed since the last multiplicative decrease (the
    /// one-cut-per-window rate limiter).
    since_cut: u64,
    /// Warmup latency samples collected while no target exists; once
    /// full, the controller self-seeds `target = median × multiple`.
    /// Services with the observability layer seed from the richer e2e
    /// histogram instead (see `PipelineService`), which wins the race
    /// harmlessly — `seed_target_ns` is first-writer-wins.
    warmup: Vec<u64>,
}

/// Internal warmup window size (matches the service's histogram-seeded
/// warmup) and slowdown multiple for self-seeding.
const WARMUP_SAMPLES: usize = 32;
const TARGET_MULTIPLE: u64 = 8;

/// Shared AIMD limit controller. `on_sample` is called once per
/// completed request; `limit()` is read by the admission queue.
pub struct AimdController {
    cfg: AimdConfig,
    /// Current limit × [`SCALE`].
    limit_milli: AtomicU64,
    /// Latency target in nanoseconds; 0 = not yet seeded.
    target_ns: AtomicU64,
    state: Mutex<AimdState>,
}

impl AimdController {
    /// Build a controller from `cfg` (limits are sanitized: floor ≥ 1,
    /// initial clamped into `[min, max]`).
    pub fn new(cfg: AimdConfig) -> AimdController {
        let min = cfg.min_limit.max(1);
        let max = cfg.max_limit.max(min);
        let cfg = AimdConfig {
            min_limit: min,
            max_limit: max,
            decrease_ratio_permille: cfg.decrease_ratio_permille.clamp(1, 999),
            ..cfg
        };
        let initial = cfg.initial_limit.clamp(min, max);
        let target_ns = cfg
            .target
            .map(|t| (t.as_nanos() as u64).max(1))
            .unwrap_or(0);
        AimdController {
            cfg,
            limit_milli: AtomicU64::new(initial as u64 * SCALE),
            target_ns: AtomicU64::new(target_ns),
            state: Mutex::new(AimdState {
                good: 0,
                since_cut: 0,
                warmup: Vec::new(),
            }),
        }
    }

    /// Current integer concurrency limit.
    pub fn limit(&self) -> usize {
        (self.limit_milli.load(Ordering::Relaxed) / SCALE) as usize
    }

    /// Current latency target, if established.
    pub fn target(&self) -> Option<Duration> {
        match self.target_ns.load(Ordering::Relaxed) {
            0 => None,
            ns => Some(Duration::from_nanos(ns)),
        }
    }

    /// Whether a latency target exists yet (explicit or seeded).
    pub fn has_target(&self) -> bool {
        self.target_ns.load(Ordering::Relaxed) != 0
    }

    /// Install a histogram-seeded target (no-op if a target already
    /// exists — explicit configuration and the first seeding win).
    pub fn seed_target_ns(&self, ns: u64) {
        let _ = self
            .target_ns
            .compare_exchange(0, ns.max(1), Ordering::Relaxed, Ordering::Relaxed);
    }

    /// Record one end-to-end latency sample; returns the (possibly
    /// updated) integer limit.
    pub fn on_sample(&self, latency: Duration) -> usize {
        let lat = latency.as_nanos() as u64;
        let target = self.target_ns.load(Ordering::Relaxed);
        if target == 0 {
            // No target yet: hold steady and accumulate the warmup
            // window; once full, self-seed target = median × multiple.
            let mut st = lock(&self.state);
            st.warmup.push(lat);
            if st.warmup.len() >= WARMUP_SAMPLES {
                let mut w = std::mem::take(&mut st.warmup);
                drop(st);
                w.sort_unstable();
                let median = w[w.len() / 2];
                self.seed_target_ns(median.saturating_mul(TARGET_MULTIPLE));
            }
            return self.limit();
        }
        let mut st = lock(&self.state);
        let mut milli = self.limit_milli.load(Ordering::Relaxed);
        let window = (milli / SCALE).max(1);
        st.since_cut += 1;
        if lat <= target {
            st.good += 1;
            if st.good >= window {
                // Additive increase: +1 after a full window of good
                // samples (≈ +1 per round-trip).
                st.good = 0;
                milli = (milli + SCALE).min(self.cfg.max_limit as u64 * SCALE);
                self.limit_milli.store(milli, Ordering::Relaxed);
            }
        } else {
            st.good = 0;
            if st.since_cut >= window {
                // Multiplicative decrease, at most once per window: the
                // requests already queued behind a slow burst all
                // report inflated latency, and cutting on each would
                // collapse the limit to the floor on one incident.
                st.since_cut = 0;
                milli = (milli * self.cfg.decrease_ratio_permille / 1000)
                    .max(self.cfg.min_limit as u64 * SCALE);
                self.limit_milli.store(milli, Ordering::Relaxed);
            }
        }
        (milli / SCALE) as usize
    }
}

fn lock<T>(m: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|p| p.into_inner())
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used, clippy::expect_used)]

    use super::*;

    fn ctl(target_ms: u64, initial: usize, max: usize) -> AimdController {
        AimdController::new(AimdConfig {
            min_limit: 1,
            max_limit: max,
            initial_limit: initial,
            target: Some(Duration::from_millis(target_ms)),
            decrease_ratio_permille: 900,
        })
    }

    #[test]
    fn grows_additively_under_target() {
        let c = ctl(10, 1, 64);
        let mut last = c.limit();
        for _ in 0..500 {
            c.on_sample(Duration::from_millis(1));
        }
        assert!(c.limit() > last, "limit must grow under good latency");
        last = c.limit();
        for _ in 0..500 {
            c.on_sample(Duration::from_millis(1));
        }
        assert!(c.limit() >= last);
        assert!(c.limit() <= 64);
    }

    #[test]
    fn cuts_multiplicatively_over_target() {
        let c = ctl(10, 32, 64);
        for _ in 0..64 {
            c.on_sample(Duration::from_millis(100));
        }
        assert!(c.limit() < 32, "limit must shrink under bad latency");
        assert!(c.limit() >= 1);
    }

    #[test]
    fn cut_is_rate_limited_per_window() {
        let c = ctl(10, 100, 128);
        // A single burst of `window` bad samples may cut at most twice
        // (once when the pre-existing window elapses, once after).
        c.on_sample(Duration::from_millis(100));
        let after_one = c.limit();
        assert!(after_one >= 90, "one bad sample must not cascade cuts");
    }

    #[test]
    fn holds_without_target_then_self_seeds() {
        let c = AimdController::new(AimdConfig {
            initial_limit: 4,
            ..AimdConfig::default()
        });
        for _ in 0..31 {
            c.on_sample(Duration::from_millis(1));
        }
        assert!(!c.has_target());
        assert_eq!(c.limit(), 4, "no target: hold steady");
        // The 32nd warmup sample seeds target = median × multiple.
        c.on_sample(Duration::from_millis(1));
        assert_eq!(c.target(), Some(Duration::from_millis(8)));
        for _ in 0..100 {
            c.on_sample(Duration::from_millis(1));
        }
        assert!(c.limit() > 4, "seeded target unlocks the controller");
    }

    #[test]
    fn seeding_never_overrides_an_explicit_target() {
        let c = ctl(10, 1, 8);
        c.seed_target_ns(1);
        assert_eq!(c.target(), Some(Duration::from_millis(10)));
    }
}
