//! Built-in pipelines over the paper's workload suite
//! (`crates/workloads`), ready to register with a
//! [`PipelineService`](crate::PipelineService).
//!
//! Each pipeline memoizes its generated inputs per parameter key so
//! steady-state requests measure pipeline evaluation, not data
//! generation — the serving analogue of a model server keeping its
//! weights resident. The memo is bounded (a remote client cycling
//! seeds must not grow server memory without limit) and sizes are
//! clamped to [`MAX_ELEMENTS`] / [`MAX_IMAGE_DIM`] so a single
//! malicious request line cannot trigger a giant allocation.
//!
//! Every coalescible pipeline is expressed as a [`Segment`]: typed
//! whole-value inputs, one evaluation body, and a per-request response
//! formatter. The service's generic coalescer concatenates
//! fingerprint-identical requests' inputs through the split layer's
//! `Concat` capability — vector buffers end to end (`ArraySplit`),
//! images along the row axis (`ImageSplit`), DataFrames by rows
//! (`RowSplit`) — with **zero pipeline-specific concatenation code**.

use std::collections::HashMap;
use std::hash::Hash;
use std::sync::{Arc, Mutex};

use mozart_core::{ArraySplit, DataValue, MozartContext, SharedVec, VecValue};
use sa_dataframe::{DfValue, RowSplit};
use sa_image::{ImageSplit, ImgValue};

use crate::error::{Result, ServeError};
use crate::service::{run_segment, Pipeline, Request, Response, Segment, SegmentInput};

/// Largest accepted element count for array pipelines (128 Mi doubles
/// per input vector would already be ~1 GiB across Black Scholes'
/// twelve buffers; reject anything above).
pub const MAX_ELEMENTS: usize = 1 << 24;

/// Largest accepted image dimension (width or height). Doubles as the
/// row bound of a coalesced image evaluation.
pub const MAX_IMAGE_DIM: usize = 8192;

/// Generated inputs a pipeline keeps per parameter key, at most.
const MEMO_CAPACITY: usize = 8;

/// A bounded `key -> Arc<value>` memo: at capacity, an arbitrary entry
/// is evicted before inserting (steady-state serving repeats one key;
/// the bound only matters against adversarial key churn).
struct Memo<K, V>(Mutex<HashMap<K, Arc<V>>>);

impl<K: Eq + Hash + Clone, V> Default for Memo<K, V> {
    fn default() -> Self {
        Memo(Mutex::new(HashMap::new()))
    }
}

impl<K: Eq + Hash + Clone, V> Memo<K, V> {
    fn get_or_insert_with(&self, key: K, make: impl FnOnce() -> V) -> Arc<V> {
        let mut map = self.0.lock().unwrap_or_else(|p| p.into_inner());
        if let Some(v) = map.get(&key) {
            return v.clone();
        }
        if map.len() >= MEMO_CAPACITY {
            if let Some(evict) = map.keys().next().cloned() {
                map.remove(&evict);
            }
        }
        let v = Arc::new(make());
        map.insert(key, v.clone());
        v
    }
}

fn bounded(req: &Request, key: &str, default: usize, max: usize) -> Result<usize> {
    let v = req.usize_or(key, default)?;
    if v == 0 || v > max {
        return Err(ServeError::BadRequest(format!(
            "parameter {key}={v} out of range (1..={max})"
        )));
    }
    Ok(v)
}

/// Coalescing key: a hash of the pipeline name and its shape-bearing
/// parameters. Requests with equal keys register identical pending call
/// graphs — same annotations, same split types, same shape parameters —
/// so their pending-segment fingerprints (the plan-cache key) match and
/// a concatenated evaluation is structurally sound; the seed changes
/// only input *values*, never the shape. Any unparsable parameter
/// returns `None` so the malformed request takes the single path and
/// reports its error there — it must never join a batch and fail valid
/// peers.
fn shape_key(pipeline: &str, req: &Request, dims: &[Result<usize>]) -> Option<u64> {
    req.u64_or("seed", 0).ok()?;
    // FNV-1a over the pipeline name and shape dimensions.
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    let mut mix = |bytes: &[u8]| {
        for &b in bytes {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
    };
    mix(pipeline.as_bytes());
    for d in dims {
        let d = *d.as_ref().ok()?;
        mix(&d.to_le_bytes());
    }
    Some(h)
}

/// Wrap a `Vec<f64>` as a shared-buffer `DataValue` input.
fn vec_input(v: &[f64]) -> SegmentInput {
    SegmentInput::new(
        DataValue::new(VecValue(SharedVec::from_vec(v.to_vec()))),
        Arc::new(ArraySplit),
    )
}

/// Downcast one of a segment evaluation's inputs back to a shared
/// buffer.
fn vec_arg(inputs: &[DataValue], i: usize) -> mozart_core::Result<SharedVec<f64>> {
    inputs
        .get(i)
        .and_then(|v| v.downcast_ref::<VecValue>())
        .map(|v| v.0.clone())
        .ok_or_else(|| mozart_core::Error::Library(format!("segment input {i} is not a vector")))
}

/// Downcast one of a request's sliced outputs back to a shared buffer.
fn vec_out(outs: &[DataValue], i: usize) -> mozart_core::Result<SharedVec<f64>> {
    outs.get(i)
        .and_then(|v| v.downcast_ref::<VecValue>())
        .map(|v| v.0.clone())
        .ok_or_else(|| mozart_core::Error::Library(format!("segment output {i} is not a vector")))
}

/// Black Scholes options pricing through the annotated MKL-style
/// wrappers (27 pipelined in-place vector calls). Parameters: `n`
/// (option count, default 8192), `seed`.
#[derive(Default)]
pub struct BlackScholesPipeline {
    inputs: Memo<(usize, u64), workloads::black_scholes::Inputs>,
}

impl BlackScholesPipeline {
    /// Parse one request and fetch (or generate) its memoized inputs.
    fn request_inputs(&self, req: &Request) -> Result<Arc<workloads::black_scholes::Inputs>> {
        let n = bounded(req, "n", 8192, MAX_ELEMENTS)?;
        let seed = req.u64_or("seed", 42)?;
        Ok(self
            .inputs
            .get_or_insert_with((n, seed), || workloads::black_scholes::generate(n, seed)))
    }
}

fn black_scholes_response(summary: &workloads::black_scholes::Summary) -> Response {
    Response::new(format!(
        "call_sum={:.6} put_sum={:.6}",
        summary.call_sum, summary.put_sum
    ))
}

impl Pipeline for BlackScholesPipeline {
    fn name(&self) -> &'static str {
        "black_scholes"
    }

    fn run(&self, ctx: &MozartContext, req: &Request) -> mozart_core::Result<Response> {
        match self.segment(req) {
            Some(seg) => run_segment(ctx, seg?),
            None => unreachable!("black_scholes always builds a segment"),
        }
    }

    fn coalesce_key(&self, req: &Request) -> Option<u64> {
        shape_key(
            "black_scholes",
            req,
            &[bounded(req, "n", 8192, MAX_ELEMENTS)],
        )
    }

    fn segment(&self, req: &Request) -> Option<mozart_core::Result<Segment>> {
        let inputs = match self.request_inputs(req).map_err(to_library_error) {
            Ok(i) => i,
            Err(e) => return Some(Err(e)),
        };
        Some(Ok(Segment {
            inputs: vec![
                vec_input(&inputs.price),
                vec_input(&inputs.strike),
                vec_input(&inputs.t),
                vec_input(&inputs.rate),
                vec_input(&inputs.vol),
            ],
            outputs: vec![Arc::new(ArraySplit), Arc::new(ArraySplit)],
            max_total_elements: MAX_ELEMENTS as u64,
            eval: Box::new(|ctx, inputs| {
                let (price, strike, t, rate, vol) = (
                    vec_arg(inputs, 0)?,
                    vec_arg(inputs, 1)?,
                    vec_arg(inputs, 2)?,
                    vec_arg(inputs, 3)?,
                    vec_arg(inputs, 4)?,
                );
                let (call, put) =
                    workloads::black_scholes::mkl_chain(ctx, &price, &strike, &t, &rate, &vol)?;
                // Evaluate explicitly inside the admission window: a bare
                // protected read (`as_slice`) would swallow a failed
                // evaluation and hand back stale zeros instead of the
                // typed error the retry layer needs.
                ctx.evaluate()?;
                Ok(vec![
                    DataValue::new(VecValue(call)),
                    DataValue::new(VecValue(put)),
                ])
            }),
            respond: Box::new(|outs| {
                let (call, put) = (vec_out(outs, 0)?, vec_out(outs, 1)?);
                Ok(black_scholes_response(
                    &workloads::black_scholes::summarize_range(call.as_slice(), put.as_slice()),
                ))
            }),
        }))
    }
}

/// Haversine distance through the annotated MKL-style wrappers.
/// Parameters: `n` (coordinate count, default 8192), `seed`.
#[derive(Default)]
pub struct HaversinePipeline {
    inputs: Memo<(usize, u64), workloads::haversine::Inputs>,
}

impl HaversinePipeline {
    fn request_inputs(&self, req: &Request) -> Result<Arc<workloads::haversine::Inputs>> {
        let n = bounded(req, "n", 8192, MAX_ELEMENTS)?;
        let seed = req.u64_or("seed", 42)?;
        Ok(self
            .inputs
            .get_or_insert_with((n, seed), || workloads::haversine::generate(n, seed)))
    }
}

fn haversine_response(distances: &[f64]) -> Response {
    // Serial slice sum (not the annotated reduction): a coalesced
    // evaluation's per-request slice then sums the same values in the
    // same order as a separate evaluation — identical responses.
    Response::new(format!("dist_sum={:.6}", distances.iter().sum::<f64>()))
}

impl Pipeline for HaversinePipeline {
    fn name(&self) -> &'static str {
        "haversine"
    }

    fn run(&self, ctx: &MozartContext, req: &Request) -> mozart_core::Result<Response> {
        match self.segment(req) {
            Some(seg) => run_segment(ctx, seg?),
            None => unreachable!("haversine always builds a segment"),
        }
    }

    fn coalesce_key(&self, req: &Request) -> Option<u64> {
        shape_key("haversine", req, &[bounded(req, "n", 8192, MAX_ELEMENTS)])
    }

    fn segment(&self, req: &Request) -> Option<mozart_core::Result<Segment>> {
        let inputs = match self.request_inputs(req).map_err(to_library_error) {
            Ok(i) => i,
            Err(e) => return Some(Err(e)),
        };
        Some(Ok(Segment {
            inputs: vec![vec_input(&inputs.lat), vec_input(&inputs.lon)],
            outputs: vec![Arc::new(ArraySplit)],
            max_total_elements: MAX_ELEMENTS as u64,
            eval: Box::new(|ctx, inputs| {
                let (lat, lon) = (vec_arg(inputs, 0)?, vec_arg(inputs, 1)?);
                let d = workloads::haversine::mkl_chain(ctx, &lat, &lon)?;
                // Explicit evaluation: surface faults typed rather than
                // poisoning the context behind a protected read.
                ctx.evaluate()?;
                Ok(vec![DataValue::new(VecValue(d))])
            }),
            respond: Box::new(|outs| {
                let d = vec_out(outs, 0)?;
                Ok(haversine_response(d.as_slice()))
            }),
        }))
    }
}

/// The Nashville instagram-filter chain over a synthetic photograph.
/// Parameters: `width` (default 640), `height` (default 480), `seed`.
///
/// Coalescible: every filter is per-pixel, so several requests'
/// photographs stack along the **row axis** (`ImageSplit`'s `Concat`
/// capability), evaluate as one image, and slice back into per-request
/// row bands bit-identically.
#[derive(Default)]
pub struct NashvillePipeline {
    images: Memo<(usize, usize, u64), imagelib::Image>,
}

impl NashvillePipeline {
    fn request_image(&self, req: &Request) -> Result<Arc<imagelib::Image>> {
        let width = bounded(req, "width", 640, MAX_IMAGE_DIM)?;
        let height = bounded(req, "height", 480, MAX_IMAGE_DIM)?;
        let seed = req.u64_or("seed", 7)?;
        Ok(self.images.get_or_insert_with((width, height, seed), || {
            workloads::images::generate(width, height, seed)
        }))
    }
}

impl Pipeline for NashvillePipeline {
    fn name(&self) -> &'static str {
        "nashville"
    }

    fn run(&self, ctx: &MozartContext, req: &Request) -> mozart_core::Result<Response> {
        match self.segment(req) {
            Some(seg) => run_segment(ctx, seg?),
            None => unreachable!("nashville always builds a segment"),
        }
    }

    fn coalesce_key(&self, req: &Request) -> Option<u64> {
        // Width must match for row-axis stacking (ImageSplit::concat
        // rejects mismatches); equal heights additionally keep the
        // per-request pending-shape fingerprints identical.
        shape_key(
            "nashville",
            req,
            &[
                bounded(req, "width", 640, MAX_IMAGE_DIM),
                bounded(req, "height", 480, MAX_IMAGE_DIM),
            ],
        )
    }

    fn segment(&self, req: &Request) -> Option<mozart_core::Result<Segment>> {
        let img = match self.request_image(req).map_err(to_library_error) {
            Ok(i) => i,
            Err(e) => return Some(Err(e)),
        };
        Some(Ok(Segment {
            inputs: vec![SegmentInput::new(
                DataValue::new(ImgValue(img.as_ref().clone())),
                Arc::new(ImageSplit),
            )],
            outputs: vec![Arc::new(ImageSplit)],
            max_total_elements: MAX_IMAGE_DIM as u64, // total stacked rows
            eval: Box::new(|ctx, inputs| {
                let img = inputs
                    .first()
                    .and_then(|v| v.downcast_ref::<ImgValue>())
                    .map(|v| v.0.clone())
                    .ok_or_else(|| {
                        mozart_core::Error::Library("segment input 0 is not an image".into())
                    })?;
                let out = workloads::images::nashville_mozart_image(&img, ctx)?;
                Ok(vec![DataValue::new(ImgValue(out))])
            }),
            respond: Box::new(|outs| {
                let img = outs
                    .first()
                    .and_then(|v| v.downcast_ref::<ImgValue>())
                    .map(|v| v.0.clone())
                    .ok_or_else(|| {
                        mozart_core::Error::Library("segment output 0 is not an image".into())
                    })?;
                Ok(Response::new(format!(
                    "mean={:.6}",
                    workloads::images::image_mean(&img)
                )))
            }),
        }))
    }
}

/// The Crime Index per-city scoring chain over a synthetic statistics
/// frame (row-preserving: no big-city filter, so output rows align with
/// input rows). Parameters: `rows` (city count, default 4096), `seed`.
///
/// Coalescible: requests' frames concatenate by row (`RowSplit`'s
/// `Concat` capability), the per-row arithmetic evaluates once, and
/// each request's score rows slice back out; the response sums them
/// serially, so coalesced and separate evaluations are bit-identical.
#[derive(Default)]
pub struct CrimeIndexPipeline {
    frames: Memo<(usize, u64), dataframe::DataFrame>,
}

impl CrimeIndexPipeline {
    fn request_frame(&self, req: &Request) -> Result<Arc<dataframe::DataFrame>> {
        let rows = bounded(req, "rows", 4096, MAX_ELEMENTS)?;
        let seed = req.u64_or("seed", 17)?;
        Ok(self.frames.get_or_insert_with((rows, seed), || {
            workloads::crime_index::generate(rows, seed)
        }))
    }
}

impl Pipeline for CrimeIndexPipeline {
    fn name(&self) -> &'static str {
        "crime_index"
    }

    fn run(&self, ctx: &MozartContext, req: &Request) -> mozart_core::Result<Response> {
        match self.segment(req) {
            Some(seg) => run_segment(ctx, seg?),
            None => unreachable!("crime_index always builds a segment"),
        }
    }

    fn coalesce_key(&self, req: &Request) -> Option<u64> {
        shape_key(
            "crime_index",
            req,
            &[bounded(req, "rows", 4096, MAX_ELEMENTS)],
        )
    }

    fn segment(&self, req: &Request) -> Option<mozart_core::Result<Segment>> {
        let frame = match self.request_frame(req).map_err(to_library_error) {
            Ok(f) => f,
            Err(e) => return Some(Err(e)),
        };
        Some(Ok(Segment {
            inputs: vec![SegmentInput::new(
                DataValue::new(DfValue(frame.as_ref().clone())),
                RowSplit::shared(),
            )],
            outputs: vec![RowSplit::shared()],
            max_total_elements: MAX_ELEMENTS as u64,
            eval: Box::new(|ctx, inputs| {
                let df = inputs
                    .first()
                    .and_then(|v| v.downcast_ref::<DfValue>())
                    .map(|v| v.0.clone())
                    .ok_or_else(|| {
                        mozart_core::Error::Library("segment input 0 is not a DataFrame".into())
                    })?;
                let scores = workloads::crime_index::score_mozart(&df, ctx)?;
                Ok(vec![DataValue::new(sa_dataframe::ColValue(scores))])
            }),
            respond: Box::new(|outs| {
                let col = outs
                    .first()
                    .and_then(|v| v.downcast_ref::<sa_dataframe::ColValue>())
                    .map(|v| v.0.clone())
                    .ok_or_else(|| {
                        mozart_core::Error::Library("segment output 0 is not a column".into())
                    })?;
                // Serial slice sum: identical to separate evaluation.
                Ok(Response::new(format!(
                    "index_sum={:.6}",
                    col.f64s().iter().sum::<f64>()
                )))
            }),
        }))
    }
}

/// The full built-in pipeline set: two vector pipelines, one image
/// pipeline, one DataFrame pipeline — all coalescible through the
/// generic split-layer path.
pub fn builtin_pipelines() -> Vec<Arc<dyn Pipeline>> {
    vec![
        Arc::new(BlackScholesPipeline::default()),
        Arc::new(HaversinePipeline::default()),
        Arc::new(NashvillePipeline::default()),
        Arc::new(CrimeIndexPipeline::default()),
    ]
}

/// Pipelines report parameter problems through the runtime error type
/// (the service maps them back to `ServeError::Runtime`; wire clients
/// still see the message).
fn to_library_error(e: ServeError) -> mozart_core::Error {
    mozart_core::Error::Library(e.to_string())
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used, clippy::expect_used)]

    use super::*;

    #[test]
    fn memo_is_bounded() {
        let memo: Memo<usize, usize> = Memo::default();
        for k in 0..(MEMO_CAPACITY * 3) {
            let v = memo.get_or_insert_with(k, || k * 10);
            assert_eq!(*v, k * 10);
        }
        let map = memo.0.lock().unwrap();
        assert!(map.len() <= MEMO_CAPACITY);
    }

    #[test]
    fn shape_key_rejects_unparsable_params() {
        // A request that cannot parse must never join a coalesced
        // batch (it would fail every valid peer); it takes the single
        // path and reports its own error there.
        let p = BlackScholesPipeline::default();
        let ok = Request::new().with("n", 1024).with("seed", 7u64);
        assert!(p.coalesce_key(&ok).is_some());
        let bad_seed = Request::new().with("n", 1024).with("seed", "x");
        assert!(p.coalesce_key(&bad_seed).is_none());
        let bad_n = Request::new().with("n", "x");
        assert!(p.coalesce_key(&bad_n).is_none());
        // Same n, different seeds: same key (the coalescible case).
        let a = Request::new().with("n", 1024).with("seed", 1u64);
        let b = Request::new().with("n", 1024).with("seed", 2u64);
        assert_eq!(p.coalesce_key(&a), p.coalesce_key(&b));
        // Different n: different key.
        let c = Request::new().with("n", 2048);
        assert_ne!(p.coalesce_key(&a), p.coalesce_key(&c));
        // Different pipelines never share keys for the same dims.
        let h = HaversinePipeline::default();
        assert_ne!(p.coalesce_key(&a), h.coalesce_key(&a));
    }

    #[test]
    fn image_and_frame_keys_track_their_shape_params() {
        let n = NashvillePipeline::default();
        let a = Request::new().with("width", 320).with("height", 200);
        let b = Request::new()
            .with("width", 320)
            .with("height", 200)
            .with("seed", 9u64);
        let c = Request::new().with("width", 321).with("height", 200);
        assert_eq!(n.coalesce_key(&a), n.coalesce_key(&b));
        assert_ne!(n.coalesce_key(&a), n.coalesce_key(&c));
        assert!(n.coalesce_key(&Request::new().with("seed", "x")).is_none());

        let ci = CrimeIndexPipeline::default();
        let a = Request::new().with("rows", 1000);
        let b = Request::new().with("rows", 1000).with("seed", 3u64);
        let c = Request::new().with("rows", 1001);
        assert_eq!(ci.coalesce_key(&a), ci.coalesce_key(&b));
        assert_ne!(ci.coalesce_key(&a), ci.coalesce_key(&c));
    }

    #[test]
    fn size_parameters_are_clamped() {
        let req = Request::new().with("n", usize::MAX);
        assert!(bounded(&req, "n", 8192, MAX_ELEMENTS).is_err());
        let req = Request::new().with("n", 0);
        assert!(bounded(&req, "n", 8192, MAX_ELEMENTS).is_err());
        let req = Request::new();
        assert_eq!(bounded(&req, "n", 8192, MAX_ELEMENTS).unwrap(), 8192);
    }
}
