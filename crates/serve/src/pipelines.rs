//! Built-in pipelines over the paper's workload suite
//! (`crates/workloads`), ready to register with a
//! [`PipelineService`](crate::PipelineService).
//!
//! Each pipeline memoizes its generated inputs per parameter key so
//! steady-state requests measure pipeline evaluation, not data
//! generation — the serving analogue of a model server keeping its
//! weights resident. The memo is bounded (a remote client cycling
//! seeds must not grow server memory without limit) and sizes are
//! clamped to [`MAX_ELEMENTS`] / [`MAX_IMAGE_DIM`] so a single
//! malicious request line cannot trigger a giant allocation.

use std::collections::HashMap;
use std::hash::Hash;
use std::sync::{Arc, Mutex};

use mozart_core::MozartContext;

use crate::error::{Result, ServeError};
use crate::service::{Pipeline, Request, Response};

/// Largest accepted element count for array pipelines (128 Mi doubles
/// per input vector would already be ~1 GiB across Black Scholes'
/// twelve buffers; reject anything above).
pub const MAX_ELEMENTS: usize = 1 << 24;

/// Largest accepted image dimension (width or height).
pub const MAX_IMAGE_DIM: usize = 8192;

/// Generated inputs a pipeline keeps per parameter key, at most.
const MEMO_CAPACITY: usize = 8;

/// A bounded `key -> Arc<value>` memo: at capacity, an arbitrary entry
/// is evicted before inserting (steady-state serving repeats one key;
/// the bound only matters against adversarial key churn).
struct Memo<K, V>(Mutex<HashMap<K, Arc<V>>>);

impl<K: Eq + Hash + Clone, V> Default for Memo<K, V> {
    fn default() -> Self {
        Memo(Mutex::new(HashMap::new()))
    }
}

impl<K: Eq + Hash + Clone, V> Memo<K, V> {
    fn get_or_insert_with(&self, key: K, make: impl FnOnce() -> V) -> Arc<V> {
        let mut map = self.0.lock().unwrap_or_else(|p| p.into_inner());
        if let Some(v) = map.get(&key) {
            return v.clone();
        }
        if map.len() >= MEMO_CAPACITY {
            if let Some(evict) = map.keys().next().cloned() {
                map.remove(&evict);
            }
        }
        let v = Arc::new(make());
        map.insert(key, v.clone());
        v
    }
}

fn bounded(req: &Request, key: &str, default: usize, max: usize) -> Result<usize> {
    let v = req.usize_or(key, default)?;
    if v == 0 || v > max {
        return Err(ServeError::BadRequest(format!(
            "parameter {key}={v} out of range (1..={max})"
        )));
    }
    Ok(v)
}

/// Coalescing key for the array pipelines: a hash of the element count.
/// Requests of equal `n` register identical pending call graphs — same
/// annotations, same split types, same shape parameters — so their
/// pending-segment fingerprints (the plan-cache key) match and a
/// concatenated evaluation is structurally sound; the seed changes only
/// input *values*, never the shape. Any unparsable parameter returns
/// `None` so the malformed request takes the single path and reports
/// its error there — it must never join a batch and fail valid peers.
fn shape_key(pipeline: &str, req: &Request, size_key: &str, default: usize) -> Option<u64> {
    let n = bounded(req, size_key, default, MAX_ELEMENTS).ok()?;
    req.u64_or("seed", 42).ok()?;
    // FNV-1a over the pipeline name and size.
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in pipeline.bytes().chain(n.to_le_bytes()) {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    Some(h)
}

/// Black Scholes options pricing through the annotated MKL-style
/// wrappers (27 pipelined in-place vector calls). Parameters: `n`
/// (option count, default 8192), `seed`.
#[derive(Default)]
pub struct BlackScholesPipeline {
    inputs: Memo<(usize, u64), workloads::black_scholes::Inputs>,
}

impl BlackScholesPipeline {
    /// Parse one request and fetch (or generate) its memoized inputs.
    fn request_inputs(&self, req: &Request) -> Result<Arc<workloads::black_scholes::Inputs>> {
        let n = bounded(req, "n", 8192, MAX_ELEMENTS)?;
        let seed = req.u64_or("seed", 42)?;
        Ok(self
            .inputs
            .get_or_insert_with((n, seed), || workloads::black_scholes::generate(n, seed)))
    }
}

fn black_scholes_response(summary: &workloads::black_scholes::Summary) -> Response {
    Response::new(format!(
        "call_sum={:.6} put_sum={:.6}",
        summary.call_sum, summary.put_sum
    ))
}

impl Pipeline for BlackScholesPipeline {
    fn name(&self) -> &'static str {
        "black_scholes"
    }

    fn run(&self, ctx: &MozartContext, req: &Request) -> mozart_core::Result<Response> {
        let inputs = self.request_inputs(req).map_err(to_library_error)?;
        let (call, put) = workloads::black_scholes::mkl_mozart_vectors(&inputs, ctx)?;
        Ok(black_scholes_response(
            &workloads::black_scholes::summarize_range(&call, &put),
        ))
    }

    fn coalesce_key(&self, req: &Request) -> Option<u64> {
        shape_key("black_scholes", req, "n", 8192)
    }

    fn run_coalesced(
        &self,
        ctx: &MozartContext,
        reqs: &[Request],
    ) -> Option<mozart_core::Result<Vec<Response>>> {
        let inputs: Vec<_> = match reqs.iter().map(|r| self.request_inputs(r)).collect() {
            Ok(v) => v,
            Err(e) => return Some(Err(to_library_error(e))),
        };
        let parts: Vec<&workloads::black_scholes::Inputs> =
            inputs.iter().map(|i| i.as_ref()).collect();
        let total: usize = parts.iter().map(|p| p.price.len()).sum();
        if total > MAX_ELEMENTS {
            // Decline: the service evaluates the requests individually.
            return None;
        }
        let cat = workloads::black_scholes::concat_inputs(&parts);
        Some(
            workloads::black_scholes::mkl_mozart_vectors(&cat, ctx).map(|(call, put)| {
                let mut responses = Vec::with_capacity(parts.len());
                let mut offset = 0;
                for p in &parts {
                    let end = offset + p.price.len();
                    responses.push(black_scholes_response(
                        &workloads::black_scholes::summarize_range(
                            &call[offset..end],
                            &put[offset..end],
                        ),
                    ));
                    offset = end;
                }
                responses
            }),
        )
    }
}

/// Haversine distance through the annotated MKL-style wrappers.
/// Parameters: `n` (coordinate count, default 8192), `seed`.
#[derive(Default)]
pub struct HaversinePipeline {
    inputs: Memo<(usize, u64), workloads::haversine::Inputs>,
}

impl HaversinePipeline {
    fn request_inputs(&self, req: &Request) -> Result<Arc<workloads::haversine::Inputs>> {
        let n = bounded(req, "n", 8192, MAX_ELEMENTS)?;
        let seed = req.u64_or("seed", 42)?;
        Ok(self
            .inputs
            .get_or_insert_with((n, seed), || workloads::haversine::generate(n, seed)))
    }
}

fn haversine_response(distances: &[f64]) -> Response {
    // Serial slice sum (not the annotated reduction): a coalesced
    // evaluation's per-request slice then sums the same values in the
    // same order as a separate evaluation — identical responses.
    Response::new(format!("dist_sum={:.6}", distances.iter().sum::<f64>()))
}

impl Pipeline for HaversinePipeline {
    fn name(&self) -> &'static str {
        "haversine"
    }

    fn run(&self, ctx: &MozartContext, req: &Request) -> mozart_core::Result<Response> {
        let inputs = self.request_inputs(req).map_err(to_library_error)?;
        let d = workloads::haversine::mkl_mozart_distances(&inputs, ctx)?;
        Ok(haversine_response(&d))
    }

    fn coalesce_key(&self, req: &Request) -> Option<u64> {
        shape_key("haversine", req, "n", 8192)
    }

    fn run_coalesced(
        &self,
        ctx: &MozartContext,
        reqs: &[Request],
    ) -> Option<mozart_core::Result<Vec<Response>>> {
        let inputs: Vec<_> = match reqs.iter().map(|r| self.request_inputs(r)).collect() {
            Ok(v) => v,
            Err(e) => return Some(Err(to_library_error(e))),
        };
        let parts: Vec<&workloads::haversine::Inputs> = inputs.iter().map(|i| i.as_ref()).collect();
        let total: usize = parts.iter().map(|p| p.lat.len()).sum();
        if total > MAX_ELEMENTS {
            return None;
        }
        let cat = workloads::haversine::concat_inputs(&parts);
        Some(
            workloads::haversine::mkl_mozart_distances(&cat, ctx).map(|d| {
                let mut responses = Vec::with_capacity(parts.len());
                let mut offset = 0;
                for p in &parts {
                    let end = offset + p.lat.len();
                    responses.push(haversine_response(&d[offset..end]));
                    offset = end;
                }
                responses
            }),
        )
    }
}

/// The Nashville instagram-filter chain over a synthetic photograph.
/// Parameters: `width` (default 640), `height` (default 480), `seed`.
#[derive(Default)]
pub struct NashvillePipeline {
    images: Memo<(usize, usize, u64), imagelib::Image>,
}

impl Pipeline for NashvillePipeline {
    fn name(&self) -> &'static str {
        "nashville"
    }

    fn run(&self, ctx: &MozartContext, req: &Request) -> mozart_core::Result<Response> {
        let width = bounded(req, "width", 640, MAX_IMAGE_DIM).map_err(to_library_error)?;
        let height = bounded(req, "height", 480, MAX_IMAGE_DIM).map_err(to_library_error)?;
        let seed = req.u64_or("seed", 7).map_err(to_library_error)?;
        let img = self.images.get_or_insert_with((width, height, seed), || {
            workloads::images::generate(width, height, seed)
        });
        let summary = workloads::images::nashville_mozart(&img, ctx)?;
        Ok(Response::new(format!("mean={:.6}", summary.mean)))
    }
}

/// The full built-in pipeline set.
pub fn builtin_pipelines() -> Vec<Arc<dyn Pipeline>> {
    vec![
        Arc::new(BlackScholesPipeline::default()),
        Arc::new(HaversinePipeline::default()),
        Arc::new(NashvillePipeline::default()),
    ]
}

/// Pipelines report parameter problems through the runtime error type
/// (the service maps them back to `ServeError::Runtime`; wire clients
/// still see the message).
fn to_library_error(e: ServeError) -> mozart_core::Error {
    mozart_core::Error::Library(e.to_string())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn memo_is_bounded() {
        let memo: Memo<usize, usize> = Memo::default();
        for k in 0..(MEMO_CAPACITY * 3) {
            let v = memo.get_or_insert_with(k, || k * 10);
            assert_eq!(*v, k * 10);
        }
        let map = memo.0.lock().unwrap();
        assert!(map.len() <= MEMO_CAPACITY);
    }

    #[test]
    fn shape_key_rejects_unparsable_params() {
        // A request that cannot parse must never join a coalesced
        // batch (it would fail every valid peer); it takes the single
        // path and reports its own error there.
        let ok = Request::new().with("n", 1024).with("seed", 7u64);
        assert!(shape_key("p", &ok, "n", 8192).is_some());
        let bad_seed = Request::new().with("n", 1024).with("seed", "x");
        assert!(shape_key("p", &bad_seed, "n", 8192).is_none());
        let bad_n = Request::new().with("n", "x");
        assert!(shape_key("p", &bad_n, "n", 8192).is_none());
        // Same n, different seeds: same key (the coalescible case).
        let a = Request::new().with("n", 1024).with("seed", 1u64);
        let b = Request::new().with("n", 1024).with("seed", 2u64);
        assert_eq!(shape_key("p", &a, "n", 8192), shape_key("p", &b, "n", 8192));
        // Different n: different key.
        let c = Request::new().with("n", 2048);
        assert_ne!(shape_key("p", &a, "n", 8192), shape_key("p", &c, "n", 8192));
    }

    #[test]
    fn size_parameters_are_clamped() {
        let req = Request::new().with("n", usize::MAX);
        assert!(bounded(&req, "n", 8192, MAX_ELEMENTS).is_err());
        let req = Request::new().with("n", 0);
        assert!(bounded(&req, "n", 8192, MAX_ELEMENTS).is_err());
        let req = Request::new();
        assert_eq!(bounded(&req, "n", 8192, MAX_ELEMENTS).unwrap(), 8192);
    }
}
