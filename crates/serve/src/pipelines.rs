//! Built-in pipelines over the paper's workload suite
//! (`crates/workloads`), ready to register with a
//! [`PipelineService`](crate::PipelineService).
//!
//! Each pipeline memoizes its generated inputs per parameter key so
//! steady-state requests measure pipeline evaluation, not data
//! generation — the serving analogue of a model server keeping its
//! weights resident. The memo is bounded (a remote client cycling
//! seeds must not grow server memory without limit) and sizes are
//! clamped to [`MAX_ELEMENTS`] / [`MAX_IMAGE_DIM`] so a single
//! malicious request line cannot trigger a giant allocation.

use std::collections::HashMap;
use std::hash::Hash;
use std::sync::{Arc, Mutex};

use mozart_core::MozartContext;

use crate::error::{Result, ServeError};
use crate::service::{Pipeline, Request, Response};

/// Largest accepted element count for array pipelines (128 Mi doubles
/// per input vector would already be ~1 GiB across Black Scholes'
/// twelve buffers; reject anything above).
pub const MAX_ELEMENTS: usize = 1 << 24;

/// Largest accepted image dimension (width or height).
pub const MAX_IMAGE_DIM: usize = 8192;

/// Generated inputs a pipeline keeps per parameter key, at most.
const MEMO_CAPACITY: usize = 8;

/// A bounded `key -> Arc<value>` memo: at capacity, an arbitrary entry
/// is evicted before inserting (steady-state serving repeats one key;
/// the bound only matters against adversarial key churn).
struct Memo<K, V>(Mutex<HashMap<K, Arc<V>>>);

impl<K: Eq + Hash + Clone, V> Default for Memo<K, V> {
    fn default() -> Self {
        Memo(Mutex::new(HashMap::new()))
    }
}

impl<K: Eq + Hash + Clone, V> Memo<K, V> {
    fn get_or_insert_with(&self, key: K, make: impl FnOnce() -> V) -> Arc<V> {
        let mut map = self.0.lock().unwrap_or_else(|p| p.into_inner());
        if let Some(v) = map.get(&key) {
            return v.clone();
        }
        if map.len() >= MEMO_CAPACITY {
            if let Some(evict) = map.keys().next().cloned() {
                map.remove(&evict);
            }
        }
        let v = Arc::new(make());
        map.insert(key, v.clone());
        v
    }
}

fn bounded(req: &Request, key: &str, default: usize, max: usize) -> Result<usize> {
    let v = req.usize_or(key, default)?;
    if v == 0 || v > max {
        return Err(ServeError::BadRequest(format!(
            "parameter {key}={v} out of range (1..={max})"
        )));
    }
    Ok(v)
}

/// Black Scholes options pricing through the annotated MKL-style
/// wrappers (27 pipelined in-place vector calls). Parameters: `n`
/// (option count, default 8192), `seed`.
#[derive(Default)]
pub struct BlackScholesPipeline {
    inputs: Memo<(usize, u64), workloads::black_scholes::Inputs>,
}

impl Pipeline for BlackScholesPipeline {
    fn name(&self) -> &'static str {
        "black_scholes"
    }

    fn run(&self, ctx: &MozartContext, req: &Request) -> mozart_core::Result<Response> {
        let n = bounded(req, "n", 8192, MAX_ELEMENTS).map_err(to_library_error)?;
        let seed = req.u64_or("seed", 42).map_err(to_library_error)?;
        let inputs = self
            .inputs
            .get_or_insert_with((n, seed), || workloads::black_scholes::generate(n, seed));
        let summary = workloads::black_scholes::mkl_mozart(&inputs, ctx)?;
        Ok(Response::new(format!(
            "call_sum={:.6} put_sum={:.6}",
            summary.call_sum, summary.put_sum
        )))
    }
}

/// Haversine distance through the annotated MKL-style wrappers.
/// Parameters: `n` (coordinate count, default 8192), `seed`.
#[derive(Default)]
pub struct HaversinePipeline {
    inputs: Memo<(usize, u64), workloads::haversine::Inputs>,
}

impl Pipeline for HaversinePipeline {
    fn name(&self) -> &'static str {
        "haversine"
    }

    fn run(&self, ctx: &MozartContext, req: &Request) -> mozart_core::Result<Response> {
        let n = bounded(req, "n", 8192, MAX_ELEMENTS).map_err(to_library_error)?;
        let seed = req.u64_or("seed", 42).map_err(to_library_error)?;
        let inputs = self
            .inputs
            .get_or_insert_with((n, seed), || workloads::haversine::generate(n, seed));
        let summary = workloads::haversine::mkl_mozart(&inputs, ctx)?;
        Ok(Response::new(format!("dist_sum={:.6}", summary.dist_sum)))
    }
}

/// The Nashville instagram-filter chain over a synthetic photograph.
/// Parameters: `width` (default 640), `height` (default 480), `seed`.
#[derive(Default)]
pub struct NashvillePipeline {
    images: Memo<(usize, usize, u64), imagelib::Image>,
}

impl Pipeline for NashvillePipeline {
    fn name(&self) -> &'static str {
        "nashville"
    }

    fn run(&self, ctx: &MozartContext, req: &Request) -> mozart_core::Result<Response> {
        let width = bounded(req, "width", 640, MAX_IMAGE_DIM).map_err(to_library_error)?;
        let height = bounded(req, "height", 480, MAX_IMAGE_DIM).map_err(to_library_error)?;
        let seed = req.u64_or("seed", 7).map_err(to_library_error)?;
        let img = self.images.get_or_insert_with((width, height, seed), || {
            workloads::images::generate(width, height, seed)
        });
        let summary = workloads::images::nashville_mozart(&img, ctx)?;
        Ok(Response::new(format!("mean={:.6}", summary.mean)))
    }
}

/// The full built-in pipeline set.
pub fn builtin_pipelines() -> Vec<Arc<dyn Pipeline>> {
    vec![
        Arc::new(BlackScholesPipeline::default()),
        Arc::new(HaversinePipeline::default()),
        Arc::new(NashvillePipeline::default()),
    ]
}

/// Pipelines report parameter problems through the runtime error type
/// (the service maps them back to `ServeError::Runtime`; wire clients
/// still see the message).
fn to_library_error(e: ServeError) -> mozart_core::Error {
    mozart_core::Error::Library(e.to_string())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn memo_is_bounded() {
        let memo: Memo<usize, usize> = Memo::default();
        for k in 0..(MEMO_CAPACITY * 3) {
            let v = memo.get_or_insert_with(k, || k * 10);
            assert_eq!(*v, k * 10);
        }
        let map = memo.0.lock().unwrap();
        assert!(map.len() <= MEMO_CAPACITY);
    }

    #[test]
    fn size_parameters_are_clamped() {
        let req = Request::new().with("n", usize::MAX);
        assert!(bounded(&req, "n", 8192, MAX_ELEMENTS).is_err());
        let req = Request::new().with("n", 0);
        assert!(bounded(&req, "n", 8192, MAX_ELEMENTS).is_err());
        let req = Request::new();
        assert_eq!(bounded(&req, "n", 8192, MAX_ELEMENTS).unwrap(), 8192);
    }
}
