//! Hardened TCP front-end building blocks for the line protocol.
//!
//! The naive front-end (`BufReader::lines` in a thread per connection)
//! trusts the network in four ways an internet-facing service cannot:
//!
//! * **Unbounded request lines** — a client that never sends `\n`
//!   grows the line buffer without limit (a one-connection memory DoS).
//!   [`LineReader`] caps the line at
//!   [`FrontendConfig::max_line_bytes`], discards the oversize tail,
//!   and reports it as a typed `bad_request` instead of allocating.
//! * **Mid-request stalls** — a client that sends half a line and
//!   stops pins its thread forever. A per-read timeout
//!   ([`FrontendConfig::read_timeout`]) bounds how long a partial line
//!   may stall before the connection is dropped with a typed error.
//! * **Idle connections** — a client that connects and says nothing
//!   holds a thread and a socket. An idle timeout
//!   ([`FrontendConfig::idle_timeout`]) reaps it silently.
//! * **Unbounded connection counts** — every accept spawns a thread;
//!   enough connections exhaust the process. [`ConnLimiter`] caps
//!   concurrent connections and sheds *at accept time* with a typed
//!   `saturated` line, before a serving thread is ever spawned.
//!
//! [`serve_connection`] ties these into the full protocol dispatch
//! loop (parse → [`crate::PipelineService`] → reply) so the
//! `serve_tcp` example is a thin wrapper and integration tests can
//! drive a real listener through the same code path.

use std::io::{Read, Write};
use std::net::{TcpListener, TcpStream};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Duration;

use crate::error::ServeError;
use crate::protocol::{err_line, ok_line, parse_line, ClientLine};
use crate::service::PipelineService;

/// Front-end hardening knobs.
#[derive(Clone, Copy, Debug)]
pub struct FrontendConfig {
    /// Longest request line accepted, in bytes (newline excluded).
    /// Longer lines are discarded and answered with a typed
    /// `bad_request`. `0` is treated as `1`.
    pub max_line_bytes: usize,
    /// How long a *partial* request line may stall (bytes arrived but
    /// no newline) before the connection is dropped with a typed
    /// error. Bounds the thread a trickling client can pin.
    pub read_timeout: Duration,
    /// How long a connection may sit idle *between* requests before it
    /// is reaped silently.
    pub idle_timeout: Duration,
    /// Concurrent connections served; further accepts are shed with a
    /// typed `saturated` line before a thread is spawned. `0` =
    /// unlimited.
    pub max_connections: usize,
}

impl Default for FrontendConfig {
    fn default() -> Self {
        FrontendConfig {
            max_line_bytes: 8 * 1024,
            read_timeout: Duration::from_secs(10),
            idle_timeout: Duration::from_secs(300),
            max_connections: 256,
        }
    }
}

/// Counts concurrent connections and sheds over-cap accepts.
pub struct ConnLimiter {
    active: AtomicUsize,
    limit: usize,
    shed: AtomicUsize,
}

impl ConnLimiter {
    /// A limiter admitting at most `limit` concurrent connections
    /// (`0` = unlimited).
    pub fn new(limit: usize) -> Arc<ConnLimiter> {
        Arc::new(ConnLimiter {
            active: AtomicUsize::new(0),
            limit,
            shed: AtomicUsize::new(0),
        })
    }

    /// Try to admit one connection; `None` means the cap is reached
    /// (the shed counter is incremented). The returned guard releases
    /// the slot on drop.
    pub fn try_enter(self: &Arc<Self>) -> Option<ConnGuard> {
        let mut cur = self.active.load(Ordering::Relaxed);
        loop {
            if self.limit != 0 && cur >= self.limit {
                self.shed.fetch_add(1, Ordering::Relaxed);
                return None;
            }
            match self.active.compare_exchange_weak(
                cur,
                cur + 1,
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(_) => return Some(ConnGuard(self.clone())),
                Err(now) => cur = now,
            }
        }
    }

    /// Connections currently admitted.
    pub fn active(&self) -> usize {
        self.active.load(Ordering::Relaxed)
    }

    /// Accepts shed at the cap so far.
    pub fn shed_total(&self) -> usize {
        self.shed.load(Ordering::Relaxed)
    }
}

/// RAII slot from [`ConnLimiter::try_enter`].
pub struct ConnGuard(Arc<ConnLimiter>);

impl Drop for ConnGuard {
    fn drop(&mut self) {
        self.0.active.fetch_sub(1, Ordering::Relaxed);
    }
}

/// One read attempt's outcome from [`LineReader::next_line`].
#[derive(Debug)]
pub enum LineEvent {
    /// A complete request line (trailing `\r` stripped).
    Line(String),
    /// The line exceeded [`FrontendConfig::max_line_bytes`]. The
    /// oversize tail was discarded; `resynced` says whether the
    /// terminating newline was found (the connection may continue) or
    /// the discard cap/EOF was hit first (the caller should close).
    Oversize {
        /// Whether the stream is positioned at the next line.
        resynced: bool,
    },
    /// A complete line arrived but is not valid UTF-8. The stream is
    /// synced to the next line.
    BadUtf8,
    /// No bytes arrived within the idle timeout while between
    /// requests: reap the connection silently.
    Idle,
    /// A partial line stalled past the read timeout: the client is
    /// trickling or wedged mid-request.
    Stalled,
    /// The peer closed the connection (any partial line is dropped —
    /// a half-written request is never dispatched).
    Eof,
    /// A transport error other than a timeout.
    Io(std::io::Error),
}

/// Bounded, timeout-aware line reader.
///
/// Generic over [`Read`] so the parsing/bounding logic is unit-testable
/// on in-memory buffers; pass the underlying [`TcpStream`] via `sock`
/// to arm the idle/stall timeouts (socket read timeouts surface as
/// [`std::io::ErrorKind::WouldBlock`]/`TimedOut`, which the reader maps
/// to [`LineEvent::Idle`] or [`LineEvent::Stalled`] depending on
/// whether a partial line exists).
pub struct LineReader<'a, R: Read> {
    inner: R,
    cfg: &'a FrontendConfig,
    sock: Option<&'a TcpStream>,
    /// Bytes read from the stream but not yet returned as lines.
    pending: Vec<u8>,
}

impl<'a, R: Read> LineReader<'a, R> {
    /// Wrap `inner`; see the type docs for `sock`.
    pub fn new(inner: R, cfg: &'a FrontendConfig, sock: Option<&'a TcpStream>) -> Self {
        LineReader {
            inner,
            cfg,
            sock,
            pending: Vec::new(),
        }
    }

    fn arm_timeout(&self) {
        if let Some(s) = self.sock {
            let t = if self.pending.is_empty() {
                self.cfg.idle_timeout
            } else {
                self.cfg.read_timeout
            };
            // Zero would mean "no timeout" to set_read_timeout; clamp.
            let _ = s.set_read_timeout(Some(t.max(Duration::from_millis(1))));
        }
    }

    /// Read until `\n`, the byte cap, a timeout, or EOF.
    pub fn next_line(&mut self) -> LineEvent {
        let cap = self.cfg.max_line_bytes.max(1);
        let mut chunk = [0u8; 4096];
        loop {
            if let Some(pos) = self.pending.iter().position(|&b| b == b'\n') {
                let mut line: Vec<u8> = self.pending.drain(..=pos).collect();
                line.pop(); // the newline
                if line.last() == Some(&b'\r') {
                    line.pop();
                }
                if line.len() > cap {
                    return LineEvent::Oversize { resynced: true };
                }
                return match String::from_utf8(line) {
                    Ok(s) => LineEvent::Line(s),
                    Err(_) => LineEvent::BadUtf8,
                };
            }
            if self.pending.len() > cap {
                return self.discard_to_newline();
            }
            self.arm_timeout();
            match self.inner.read(&mut chunk) {
                Ok(0) => return LineEvent::Eof,
                Ok(n) => self.pending.extend_from_slice(&chunk[..n]),
                Err(e) => match e.kind() {
                    std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut => {
                        return if self.pending.is_empty() {
                            LineEvent::Idle
                        } else {
                            LineEvent::Stalled
                        };
                    }
                    std::io::ErrorKind::Interrupted => continue,
                    _ => return LineEvent::Io(e),
                },
            }
        }
    }

    /// The line overflowed: throw bytes away until its newline so the
    /// next request can be served, without ever buffering the tail.
    /// Discarding is itself capped (64 × the line cap) — a client
    /// streaming an endless newline-free body is dropped, not served
    /// as a disk-null.
    fn discard_to_newline(&mut self) -> LineEvent {
        let discard_cap = self.cfg.max_line_bytes.max(1).saturating_mul(64);
        let mut discarded = 0usize;
        // Anything already buffered past the cap counts too.
        if let Some(pos) = self.pending.iter().position(|&b| b == b'\n') {
            self.pending.drain(..=pos);
            return LineEvent::Oversize { resynced: true };
        }
        discarded += self.pending.len();
        self.pending.clear();
        let mut chunk = [0u8; 4096];
        loop {
            if discarded > discard_cap {
                return LineEvent::Oversize { resynced: false };
            }
            self.arm_timeout();
            match self.inner.read(&mut chunk) {
                Ok(0) => return LineEvent::Oversize { resynced: false },
                Ok(n) => {
                    if let Some(pos) = chunk[..n].iter().position(|&b| b == b'\n') {
                        self.pending.extend_from_slice(&chunk[pos + 1..n]);
                        return LineEvent::Oversize { resynced: true };
                    }
                    discarded += n;
                }
                Err(e) => match e.kind() {
                    std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut => {
                        return LineEvent::Oversize { resynced: false };
                    }
                    std::io::ErrorKind::Interrupted => continue,
                    _ => return LineEvent::Oversize { resynced: false },
                },
            }
        }
    }
}

/// Serve one connection end-to-end: one service session, one request
/// per line, hardened per `cfg`. Returns when the peer quits, goes
/// idle, stalls, overflows without resync, or closes.
pub fn serve_connection(
    stream: TcpStream,
    service: &PipelineService,
    cfg: &FrontendConfig,
) -> std::io::Result<()> {
    let session = service.session();
    let mut writer = stream.try_clone()?;
    let mut reader = LineReader::new(stream.try_clone()?, cfg, Some(&stream));
    loop {
        let line = match reader.next_line() {
            LineEvent::Line(l) => l,
            LineEvent::Oversize { resynced } => {
                let e = ServeError::BadRequest(format!(
                    "request line exceeds {} bytes",
                    cfg.max_line_bytes.max(1)
                ));
                writeln!(writer, "{}", err_line(&e))?;
                if resynced {
                    continue;
                }
                break;
            }
            LineEvent::BadUtf8 => {
                let e = ServeError::BadRequest("request line is not valid UTF-8".into());
                writeln!(writer, "{}", err_line(&e))?;
                continue;
            }
            LineEvent::Stalled => {
                let e = ServeError::BadRequest(format!(
                    "request stalled mid-line past {:?}",
                    cfg.read_timeout
                ));
                let _ = writeln!(writer, "{}", err_line(&e));
                break;
            }
            LineEvent::Idle | LineEvent::Eof => break,
            LineEvent::Io(e) => return Err(e),
        };
        if line.trim().is_empty() {
            continue;
        }
        let reply = match parse_line(&line) {
            Ok(ClientLine::Quit) => {
                writeln!(writer, "{}", ok_line("bye"))?;
                break;
            }
            Ok(ClientLine::List) => ok_line(&service.pipeline_names().join(" ")),
            Ok(ClientLine::Stats) => ok_line(&stats_body(service)),
            Ok(ClientLine::Weight(w)) => {
                session.set_weight(w);
                ok_line(&format!("weight={w}"))
            }
            Ok(ClientLine::Budget(b)) => {
                session.set_byte_budget(b);
                ok_line(&format!("budget={b}"))
            }
            Ok(ClientLine::Deadline(ms)) => {
                session.set_deadline((ms > 0).then(|| Duration::from_millis(ms)));
                ok_line(&format!("deadline_ms={ms}"))
            }
            Ok(ClientLine::Pipeline(fused)) => {
                session.set_pipeline(fused);
                ok_line(&format!("pipeline={}", u8::from(fused)))
            }
            Ok(ClientLine::Verify(verify)) => {
                session.set_verify_plans(verify);
                ok_line(&format!("verify={}", u8::from(verify)))
            }
            Ok(ClientLine::Drain(timeout_ms)) => {
                let idle = service.drain(Duration::from_millis(timeout_ms));
                ok_line(&format!("draining idle={idle}"))
            }
            Ok(ClientLine::Metrics) => {
                // Multi-line reply: `OK lines=<n>` then n raw page lines.
                let page = service.metrics_text();
                let n = page.lines().count();
                writeln!(writer, "{}", ok_line(&format!("lines={n}")))?;
                for metric_line in page.lines() {
                    writeln!(writer, "{metric_line}")?;
                }
                continue;
            }
            Ok(ClientLine::Trace(id)) => match service.trace_tree(id) {
                Some(tree) => ok_line(&tree.render_line()),
                None => err_line(&ServeError::BadRequest(format!(
                    "no spans recorded for trace id {id}"
                ))),
            },
            Ok(ClientLine::Call(name, req)) => match session.call_traced(&name, &req) {
                // Tracing on: tell the client its trace id so it can
                // come back with `TRACE <id>`.
                (Ok(resp), Some(trace)) => ok_line(&format!("{} trace={trace}", resp.body)),
                (Ok(resp), None) => ok_line(&resp.body),
                (Err(e), _) => err_line(&e),
            },
            Err(e) => err_line(&e),
        };
        writeln!(writer, "{reply}")?;
    }
    Ok(())
}

/// Accept loop with the connection cap: admitted connections get a
/// serving thread, over-cap accepts are shed in-line with a typed
/// `saturated` reply before any thread is spawned. Runs until the
/// listener errors out (i.e. forever, in practice).
pub fn accept_loop(listener: TcpListener, service: PipelineService, cfg: FrontendConfig) {
    let limiter = ConnLimiter::new(cfg.max_connections);
    for stream in listener.incoming() {
        let Ok(mut stream) = stream else { continue };
        let Some(guard) = limiter.try_enter() else {
            let _ = writeln!(
                stream,
                "ERR saturated: connection limit {} reached; retry later",
                cfg.max_connections
            );
            continue;
        };
        let service = service.clone();
        std::thread::spawn(move || {
            let _guard = guard;
            let peer = stream
                .peer_addr()
                .map(|a| a.to_string())
                .unwrap_or_else(|_| "?".into());
            if let Err(e) = serve_connection(stream, &service, &cfg) {
                eprintln!("connection {peer}: {e}");
            }
        });
    }
}

/// `STATS` body in the stable field order documented in
/// [`crate::protocol`]; new fields are appended, never inserted.
pub fn stats_body(service: &PipelineService) -> String {
    let s = service.stats();
    format!(
        "started={} completed={} rejected={} failed={} over_budget={} \
         deadline_shed={} retries={} slow={} draining={} \
         coalesced_requests={} coalesce_waiting={} sessions={} inflight={} \
         plan_hits={} plan_misses={} plan_entries={} pool_workers={} pool_jobs={} \
         pool_panicked_batches={} pool_respawned_workers={} \
         admission_limit={} queue_shed={} over_memory={} breaker_shed={} \
         breaker_open={} memory_live_bytes={} memory_ceiling_bytes={} \
         split_form_handoffs={}",
        s.started,
        s.completed,
        s.rejected,
        s.failed,
        s.over_budget,
        s.deadline_shed,
        s.retries,
        s.slow,
        s.draining,
        s.coalesced_requests,
        s.coalesce_waiting,
        s.sessions,
        s.inflight,
        s.plan_cache.hits,
        s.plan_cache.misses,
        s.plan_cache.entries,
        s.pool.workers,
        s.pool.jobs,
        s.pool.panicked_batches,
        s.pool.respawned_workers,
        s.admission_limit,
        s.queue_shed,
        s.over_memory,
        s.breaker_shed,
        s.breaker_open,
        s.memory_live_bytes,
        s.memory_ceiling_bytes,
        s.split_form_handoffs,
    )
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used, clippy::expect_used)]

    use super::*;

    fn cfg(max_line: usize) -> FrontendConfig {
        FrontendConfig {
            max_line_bytes: max_line,
            ..FrontendConfig::default()
        }
    }

    fn events(input: &[u8], max_line: usize) -> Vec<String> {
        let c = cfg(max_line);
        let mut r = LineReader::new(input, &c, None);
        let mut out = Vec::new();
        loop {
            match r.next_line() {
                LineEvent::Line(l) => out.push(format!("line:{l}")),
                LineEvent::Oversize { resynced } => {
                    out.push(format!("oversize:{resynced}"));
                    if !resynced {
                        // Without resync a real caller closes the
                        // connection; stop like serve_connection does.
                        break;
                    }
                }
                LineEvent::BadUtf8 => out.push("badutf8".into()),
                LineEvent::Eof => break,
                other => out.push(format!("{other:?}")),
            }
        }
        out
    }

    #[test]
    fn reads_lines_and_strips_cr() {
        assert_eq!(
            events(b"a b\r\nsecond\n", 64),
            vec!["line:a b".to_string(), "line:second".to_string()]
        );
    }

    #[test]
    fn partial_trailing_line_is_never_dispatched() {
        // A half-written request at EOF produces no Line event.
        assert_eq!(
            events(b"whole\nhalf-writ", 64),
            vec!["line:whole".to_string()]
        );
    }

    #[test]
    fn oversize_line_is_discarded_and_resyncs() {
        let mut input = vec![b'x'; 200];
        input.push(b'\n');
        input.extend_from_slice(b"after\n");
        assert_eq!(
            events(&input, 64),
            vec!["oversize:true".to_string(), "line:after".to_string()]
        );
    }

    #[test]
    fn endless_oversize_line_hits_the_discard_cap() {
        // 64 × cap bytes with no newline: give up without resync.
        let input = vec![b'y'; 64 * 64 + 4096 + 64];
        assert_eq!(events(&input, 64), vec!["oversize:false".to_string()]);
    }

    #[test]
    fn invalid_utf8_is_typed_not_fatal() {
        assert_eq!(
            events(b"\xff\xfe\n ok \n", 64),
            vec!["badutf8".to_string(), "line: ok ".to_string()]
        );
    }

    #[test]
    fn conn_limiter_caps_and_counts_sheds() {
        let l = ConnLimiter::new(2);
        let a = l.try_enter().expect("slot 1");
        let _b = l.try_enter().expect("slot 2");
        assert!(l.try_enter().is_none(), "cap reached");
        assert_eq!(l.shed_total(), 1);
        assert_eq!(l.active(), 2);
        drop(a);
        assert_eq!(l.active(), 1);
        assert!(l.try_enter().is_some(), "slot released");
    }

    #[test]
    fn unlimited_limiter_never_sheds() {
        let l = ConnLimiter::new(0);
        let guards: Vec<_> = (0..64).map(|_| l.try_enter().expect("slot")).collect();
        assert_eq!(l.active(), 64);
        assert_eq!(l.shed_total(), 0);
        drop(guards);
        assert_eq!(l.active(), 0);
    }
}
