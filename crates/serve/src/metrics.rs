//! Latency histograms and Prometheus-style text exposition.
//!
//! [`Histogram`] is a log2-bucketed (HDR-style) concurrent histogram of
//! `u64` values (the service records nanoseconds): value `v` lands in
//! bucket `floor(log2(v))`, so 64 buckets cover the whole `u64` range
//! with ≤ 2× relative error per bucket, refined below by linear
//! interpolation inside the bucket. Recording is three relaxed atomic
//! adds — no locks, no allocation — so it sits on the request path
//! without perturbing what it measures.
//!
//! [`HistogramSnapshot`] is the plain-value copy used for reading:
//! mergeable (associative and commutative, so per-shard or per-window
//! snapshots combine freely) and queryable for quantiles
//! ([`HistogramSnapshot::quantile`], with `p50`/`p90`/`p99`/`p999`
//! shorthands).
//!
//! # Exposition format (stable)
//!
//! [`render_histogram`] emits the Prometheus text exposition format
//! (`# TYPE <name> histogram`, cumulative `<name>_bucket{le="..."}`
//! series in **seconds**, `<name>_sum`, `<name>_count`); counters
//! render as `<name> <value>` with a `# TYPE ... counter` header. The
//! `METRICS` protocol line and `serve_tcp --metrics-port` serve exactly
//! this text; names and label shapes are part of the wire contract and
//! only grow, never change meaning.

use std::sync::atomic::{AtomicU64, Ordering};

/// Number of log2 buckets: one per possible leading-bit position.
pub const BUCKETS: usize = 64;

/// A concurrent log2-bucketed histogram of `u64` samples (see the
/// module docs). `Default`-constructed empty.
pub struct Histogram {
    counts: [AtomicU64; BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
    max: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            counts: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            max: AtomicU64::new(0),
        }
    }
}

/// Bucket index of a value: `floor(log2(v))`, with 0 mapping to bucket
/// 0 (bucket 0 thus holds values 0 and 1).
pub fn bucket_of(v: u64) -> usize {
    (63 - (v | 1).leading_zeros()) as usize
}

/// Inclusive value range `[lo, hi]` of bucket `i`.
pub fn bucket_bounds(i: usize) -> (u64, u64) {
    let lo = if i == 0 { 0 } else { 1u64 << i };
    let hi = if i >= 63 {
        u64::MAX
    } else {
        (1u64 << (i + 1)) - 1
    };
    (lo, hi)
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Histogram {
        Histogram::default()
    }

    /// Record one sample. Lock- and allocation-free.
    #[inline]
    pub fn record(&self, v: u64) {
        self.counts[bucket_of(v)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
        self.max.fetch_max(v, Ordering::Relaxed);
    }

    /// Copy the current state into a plain-value snapshot. Not a
    /// linearizable cut under concurrent writers (a sample may land
    /// between field reads), but every sample is eventually counted
    /// exactly once.
    pub fn snapshot(&self) -> HistogramSnapshot {
        HistogramSnapshot {
            counts: std::array::from_fn(|i| self.counts[i].load(Ordering::Relaxed)),
            count: self.count.load(Ordering::Relaxed),
            sum: self.sum.load(Ordering::Relaxed),
            max: self.max.load(Ordering::Relaxed),
        }
    }
}

/// A plain-value histogram state: mergeable and queryable (see the
/// module docs).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Per-bucket sample counts (`counts[i]` holds values whose
    /// `floor(log2)` is `i`; see [`bucket_bounds`]).
    pub counts: [u64; BUCKETS],
    /// Total samples.
    pub count: u64,
    /// Sum of all samples (wrapping only past `u64::MAX` total).
    pub sum: u64,
    /// Largest sample seen.
    pub max: u64,
}

impl Default for HistogramSnapshot {
    fn default() -> Self {
        HistogramSnapshot {
            counts: [0; BUCKETS],
            count: 0,
            sum: 0,
            max: 0,
        }
    }
}

impl HistogramSnapshot {
    /// Fold another snapshot into this one. Associative and
    /// commutative, so shard/window snapshots combine in any order.
    pub fn merge(&mut self, other: &HistogramSnapshot) {
        for (a, b) in self.counts.iter_mut().zip(other.counts.iter()) {
            *a += *b;
        }
        self.count += other.count;
        self.sum = self.sum.wrapping_add(other.sum);
        self.max = self.max.max(other.max);
    }

    /// Mean sample value (0 when empty).
    pub fn mean(&self) -> u64 {
        self.sum.checked_div(self.count).unwrap_or(0)
    }

    /// The `q`-quantile (`0.0 ..= 1.0`) by rank: the bucket holding the
    /// `ceil(q·count)`-th smallest sample, linearly interpolated inside
    /// the bucket (capped at the observed max). 0 when empty.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let q = q.clamp(0.0, 1.0);
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            if c == 0 {
                continue;
            }
            if seen + c >= rank {
                let (lo, hi) = bucket_bounds(i);
                let hi = hi.min(self.max).max(lo);
                // Position of the rank inside this bucket, interpolated
                // over the bucket's value range.
                let into = (rank - seen) as f64 / c as f64;
                return lo + ((hi - lo) as f64 * into) as u64;
            }
            seen += c;
        }
        self.max
    }

    /// Median shorthand.
    pub fn p50(&self) -> u64 {
        self.quantile(0.50)
    }

    /// 90th-percentile shorthand.
    pub fn p90(&self) -> u64 {
        self.quantile(0.90)
    }

    /// 99th-percentile shorthand.
    pub fn p99(&self) -> u64 {
        self.quantile(0.99)
    }

    /// 99.9th-percentile shorthand.
    pub fn p999(&self) -> u64 {
        self.quantile(0.999)
    }
}

/// Append one `# TYPE <name> counter` line pair to a metrics page.
pub fn render_counter(out: &mut String, name: &str, help: &str, value: u64) {
    use std::fmt::Write as _;
    let _ = writeln!(out, "# HELP {name} {help}");
    let _ = writeln!(out, "# TYPE {name} counter");
    let _ = writeln!(out, "{name} {value}");
}

/// Append a gauge (a counter that may go down) to a metrics page.
pub fn render_gauge(out: &mut String, name: &str, help: &str, value: u64) {
    use std::fmt::Write as _;
    let _ = writeln!(out, "# HELP {name} {help}");
    let _ = writeln!(out, "# TYPE {name} gauge");
    let _ = writeln!(out, "{name} {value}");
}

/// Append a labeled gauge family to a metrics page: one
/// `name{<label_key>="<label>"} value` series per entry. Label values
/// are escaped per the exposition format (backslash, double quote,
/// newline). Callers should emit entries in a stable order (e.g.
/// sorted by label) so successive scrapes diff cleanly.
pub fn render_gauge_labeled<'a>(
    out: &mut String,
    name: &str,
    help: &str,
    label_key: &str,
    series: impl IntoIterator<Item = (&'a str, u64)>,
) {
    use std::fmt::Write as _;
    let _ = writeln!(out, "# HELP {name} {help}");
    let _ = writeln!(out, "# TYPE {name} gauge");
    for (label, value) in series {
        let escaped = label
            .replace('\\', "\\\\")
            .replace('"', "\\\"")
            .replace('\n', "\\n");
        let _ = writeln!(out, "{name}{{{label_key}=\"{escaped}\"}} {value}");
    }
}

/// Append a nanosecond-sample histogram to a metrics page in the
/// Prometheus text format, with `le` bounds converted to **seconds**
/// (the Prometheus convention for time). Empty buckets are elided from
/// the output (the series stays cumulative, so scrapes remain correct).
pub fn render_histogram(out: &mut String, name: &str, help: &str, snap: &HistogramSnapshot) {
    use std::fmt::Write as _;
    let _ = writeln!(out, "# HELP {name} {help}");
    let _ = writeln!(out, "# TYPE {name} histogram");
    let mut cum = 0u64;
    for (i, &c) in snap.counts.iter().enumerate() {
        if c == 0 {
            continue;
        }
        cum += c;
        let (_, hi) = bucket_bounds(i);
        let le = hi as f64 / 1e9;
        let _ = writeln!(out, "{name}_bucket{{le=\"{le:.9}\"}} {cum}");
    }
    let _ = writeln!(out, "{name}_bucket{{le=\"+Inf\"}} {}", snap.count);
    let _ = writeln!(out, "{name}_sum {:.9}", snap.sum as f64 / 1e9);
    let _ = writeln!(out, "{name}_count {}", snap.count);
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used, clippy::expect_used)]

    use super::*;
    use proptest::prelude::*;

    #[test]
    fn bucket_boundary_math() {
        // 0 and 1 share bucket 0; every power of two opens a new
        // bucket; the value just below it closes the previous one.
        assert_eq!(bucket_of(0), 0);
        assert_eq!(bucket_of(1), 0);
        for k in 1..63usize {
            let v = 1u64 << k;
            assert_eq!(bucket_of(v), k, "2^{k}");
            assert_eq!(bucket_of(v - 1), k - 1, "2^{k}-1");
            assert_eq!(bucket_of(v + 1), k, "2^{k}+1");
            let (lo, hi) = bucket_bounds(k);
            assert_eq!(lo, v);
            assert_eq!(hi, (v << 1) - 1);
            assert_eq!(bucket_of(lo), k);
            assert_eq!(bucket_of(hi), k);
        }
        assert_eq!(bucket_of(u64::MAX), 63);
        assert_eq!(bucket_bounds(63).1, u64::MAX);
        assert_eq!(bucket_bounds(0), (0, 1));
    }

    #[test]
    fn quantiles_track_exact_values_on_known_distributions() {
        // Uniform 1..=1000: a log2 histogram's quantile must land in
        // the same bucket as the exact order statistic, i.e. within 2x.
        let h = Histogram::new();
        for v in 1..=1000u64 {
            h.record(v);
        }
        let s = h.snapshot();
        assert_eq!(s.count, 1000);
        assert_eq!(s.max, 1000);
        for (q, exact) in [(0.50, 500u64), (0.90, 900), (0.99, 990), (0.999, 999)] {
            let got = s.quantile(q);
            let (blo, bhi) = bucket_bounds(bucket_of(exact));
            assert!(
                got >= blo && got <= bhi.min(s.max),
                "q={q}: got {got}, exact {exact} in bucket [{blo}, {bhi}]"
            );
        }
        // Quantiles are monotone in q.
        let qs: Vec<u64> = [0.0, 0.1, 0.5, 0.9, 0.99, 0.999, 1.0]
            .iter()
            .map(|&q| s.quantile(q))
            .collect();
        assert!(qs.windows(2).all(|w| w[0] <= w[1]), "{qs:?}");
        assert_eq!(s.quantile(1.0), 1000, "top quantile is the max");

        // A point mass: every quantile is the point.
        let h = Histogram::new();
        for _ in 0..100 {
            h.record(4096);
        }
        let s = h.snapshot();
        for q in [0.01, 0.5, 0.999] {
            assert_eq!(s.quantile(q), 4096);
        }
        assert_eq!(s.mean(), 4096);

        // Empty histogram: all zeros.
        assert_eq!(HistogramSnapshot::default().quantile(0.5), 0);
        assert_eq!(HistogramSnapshot::default().mean(), 0);
    }

    #[test]
    fn bimodal_tail_quantiles_separate_the_modes() {
        // 980 fast samples at ~1us, 20 slow at ~1s: p50 must sit in the
        // fast mode, p99 and p999 in the slow mode (rank 991 of 1000 is
        // the 11th slow sample).
        let h = Histogram::new();
        for _ in 0..980 {
            h.record(1_000);
        }
        for _ in 0..20 {
            h.record(1_000_000_000);
        }
        let s = h.snapshot();
        assert!(s.p50() < 2_048, "p50={}", s.p50());
        assert!(s.p99() >= 536_870_912, "p99={}", s.p99());
        assert!(s.p999() >= 536_870_912, "p999={}", s.p999());
    }

    #[test]
    fn merge_accumulates() {
        let a = Histogram::new();
        let b = Histogram::new();
        for v in 1..=10u64 {
            a.record(v);
            b.record(v * 1000);
        }
        let mut m = a.snapshot();
        m.merge(&b.snapshot());
        assert_eq!(m.count, 20);
        assert_eq!(m.sum, 55 + 55_000);
        assert_eq!(m.max, 10_000);
    }

    proptest! {
        #[test]
        fn merge_is_associative_and_commutative(
            xs in prop::collection::vec(any::<u64>(), 0..40),
            ys in prop::collection::vec(any::<u64>(), 0..40),
            zs in prop::collection::vec(any::<u64>(), 0..40),
        ) {
            let snap = |vs: &[u64]| {
                let h = Histogram::new();
                for &v in vs {
                    h.record(v);
                }
                h.snapshot()
            };
            let (a, b, c) = (snap(&xs), snap(&ys), snap(&zs));
            // (a + b) + c == a + (b + c)
            let mut ab = a.clone();
            ab.merge(&b);
            let mut ab_c = ab.clone();
            ab_c.merge(&c);
            let mut bc = b.clone();
            bc.merge(&c);
            let mut a_bc = a.clone();
            a_bc.merge(&bc);
            prop_assert_eq!(&ab_c, &a_bc);
            // a + b == b + a
            let mut ba = b.clone();
            ba.merge(&a);
            prop_assert_eq!(&ab, &ba);
            // Merging equals recording the concatenation.
            let mut all = xs.clone();
            all.extend(&ys);
            all.extend(&zs);
            prop_assert_eq!(&ab_c, &snap(&all));
        }
    }

    #[test]
    fn render_histogram_is_cumulative_prometheus_text() {
        let h = Histogram::new();
        for v in [500u64, 1_500, 1_500, 3_000_000] {
            h.record(v);
        }
        let mut out = String::new();
        render_histogram(&mut out, "test_latency_seconds", "help text", &h.snapshot());
        assert!(out.contains("# TYPE test_latency_seconds histogram"));
        assert!(out.contains("test_latency_seconds_bucket{le=\"+Inf\"} 4"));
        assert!(out.contains("test_latency_seconds_count 4"));
        // Cumulative counts are nondecreasing down the page.
        let counts: Vec<u64> = out
            .lines()
            .filter(|l| l.contains("_bucket{le=") && !l.contains("+Inf"))
            .map(|l| l.rsplit(' ').next().unwrap().parse().unwrap())
            .collect();
        assert!(!counts.is_empty());
        assert!(counts.windows(2).all(|w| w[0] <= w[1]), "{counts:?}");
        let mut page = String::new();
        render_counter(&mut page, "test_total", "h", 7);
        assert!(page.contains("# TYPE test_total counter"));
        assert!(page.contains("test_total 7"));
    }
}
