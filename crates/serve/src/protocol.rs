//! The line-delimited wire protocol spoken by `examples/serve_tcp.rs`.
//!
//! Requests are single lines:
//!
//! ```text
//! <pipeline> [key=value]...      run a pipeline
//! LIST                           list registered pipelines
//! STATS                          service counters
//! QUIT                           close the connection
//! ```
//!
//! Responses are single lines: `OK <body>` or `ERR <kind>: <message>`,
//! with `<kind>` from [`ServeError::kind`]. Everything is UTF-8, no
//! framing beyond `\n` — trivially scriptable with `nc`.

use crate::error::ServeError;
use crate::service::Request;

/// A parsed client line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ClientLine {
    /// Run the named pipeline with the given parameters.
    Call(String, Request),
    /// List registered pipelines.
    List,
    /// Report service counters.
    Stats,
    /// Close the connection.
    Quit,
}

/// Parse one request line.
pub fn parse_line(line: &str) -> Result<ClientLine, ServeError> {
    let mut words = line.split_whitespace();
    let head = words
        .next()
        .ok_or_else(|| ServeError::BadRequest("empty request line".into()))?;
    match head {
        "LIST" => Ok(ClientLine::List),
        "STATS" => Ok(ClientLine::Stats),
        "QUIT" => Ok(ClientLine::Quit),
        name => {
            let mut req = Request::new();
            for word in words {
                let (key, value) = word.split_once('=').ok_or_else(|| {
                    ServeError::BadRequest(format!(
                        "parameter {word:?} is not of the form key=value"
                    ))
                })?;
                if key.is_empty() {
                    return Err(ServeError::BadRequest(format!(
                        "parameter {word:?} has an empty key"
                    )));
                }
                req.set(key, value);
            }
            Ok(ClientLine::Call(name.to_string(), req))
        }
    }
}

/// Format a successful response line.
pub fn ok_line(body: &str) -> String {
    format!("OK {body}")
}

/// Format an error response line.
pub fn err_line(e: &ServeError) -> String {
    format!("ERR {}: {e}", e.kind())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_calls_and_controls() {
        match parse_line("black_scholes n=4096 seed=7").unwrap() {
            ClientLine::Call(name, req) => {
                assert_eq!(name, "black_scholes");
                assert_eq!(req.get("n"), Some("4096"));
                assert_eq!(req.get("seed"), Some("7"));
            }
            other => panic!("unexpected {other:?}"),
        }
        assert_eq!(parse_line("LIST").unwrap(), ClientLine::List);
        assert_eq!(parse_line("STATS").unwrap(), ClientLine::Stats);
        assert_eq!(parse_line("QUIT").unwrap(), ClientLine::Quit);
    }

    #[test]
    fn rejects_malformed_lines() {
        assert!(matches!(parse_line("   "), Err(ServeError::BadRequest(_))));
        assert!(matches!(
            parse_line("bs n4096"),
            Err(ServeError::BadRequest(_))
        ));
        assert!(matches!(
            parse_line("bs =3"),
            Err(ServeError::BadRequest(_))
        ));
    }

    #[test]
    fn response_lines_roundtrip_kind() {
        assert_eq!(ok_line("x=1"), "OK x=1");
        let e = ServeError::UnknownPipeline("zap".into());
        let line = err_line(&e);
        assert!(line.starts_with("ERR unknown_pipeline:"));
        assert!(line.contains("zap"));
    }
}
