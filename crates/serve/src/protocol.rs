//! The line-delimited wire protocol spoken by `examples/serve_tcp.rs`.
//!
//! Requests are single lines:
//!
//! ```text
//! <pipeline> [key=value]...      run a pipeline
//! WEIGHT <w>                     set this session's fair-share weight
//! BUDGET <bytes>                 set this session's byte budget (0 = unlimited)
//! DEADLINE <ms>                  set this session's default request deadline (0 = none)
//! PIPELINE <0|1>                 set this session's stage evaluation mode (1 = fused
//!                                pipelines, the default; 0 = per-call stages with
//!                                split-form hand-offs across stage boundaries)
//! VERIFY <0|1>                   set this session's plan verification mode (1 = prove
//!                                each stage plan sound before executing it; 0 = trust
//!                                the planner; default = the service's `Config`)
//! DRAIN [timeout_ms]             gracefully drain the service (close admission,
//!                                wait for in-flight work; default 5000 ms)
//! LIST                           list registered pipelines
//! STATS                          service counters
//! METRICS                        Prometheus-style metrics page (multi-line)
//! TRACE <id>                     one request's span tree (tracing only)
//! QUIT                           close the connection
//! ```
//!
//! Responses are single lines: `OK <body>` or `ERR <kind>: <message>`,
//! with `<kind>` from [`ServeError::kind`]. Everything is UTF-8, no
//! framing beyond `\n` — trivially scriptable with `nc`.
//!
//! # Stable reply formats
//!
//! **`STATS`** replies `OK` followed by `key=value` pairs in this
//! fixed order (new fields are appended, existing ones never move or
//! change meaning): `started completed rejected failed over_budget
//! deadline_shed retries slow draining coalesced_requests
//! coalesce_waiting sessions inflight plan_hits plan_misses
//! plan_entries pool_workers pool_jobs pool_panicked_batches
//! pool_respawned_workers admission_limit queue_shed over_memory
//! breaker_shed breaker_open memory_live_bytes memory_ceiling_bytes
//! split_form_handoffs`.
//! The request-outcome counters (`started`
//! through `coalesced_requests`) come from **one** locked snapshot:
//! a request is either entirely counted or entirely absent, so
//! `completed + failed + deadline_shed <= started` always holds within
//! one reply.
//!
//! **`METRICS`** is the protocol's only multi-line reply: `OK
//! lines=<n>` followed by exactly `n` raw lines of the Prometheus text
//! exposition format (see [`crate::metrics`] for the format contract
//! and `PipelineService::metrics_text` for the page's contents).
//!
//! **`TRACE <id>`** replies `OK` followed by the span tree in the
//! stable single-line rendering of `SpanTree::render_line`:
//! `trace=<id> e2e_us=<u> covered_us=<u> spans=<n>` then one
//! space-separated `<depth>:<kind>:worker=<w>:arg=<a>:link=<l>:`
//! `start_us=<u>:wall_us=<u>:cpu_us=<u>` token per span in depth-first
//! order. Unknown or expired trace ids (the ring buffers overwrite
//! oldest-first) reply `ERR bad_request`; on a service built without
//! tracing every `TRACE` replies `ERR bad_request`.
//!
//! A call line may carry `DEADLINE_MS=<ms>`: a **scheduling directive**,
//! not a pipeline parameter — it is stripped from the request's
//! parameter map (deadlines must never perturb coalescing fingerprints)
//! and sheds the request with `ERR deadline_exceeded` once it passes.
//! `DEADLINE_MS=0` sheds immediately, which makes the deadline path
//! scriptable deterministically.
//!
//! Duplicate `key=value` pairs on a call line are rejected with
//! `bad_request` rather than silently letting the last one win: a
//! client typo like `n=4096 n=8192` surfaces instead of running the
//! wrong size.

use crate::error::ServeError;
use crate::service::Request;

/// A parsed client line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ClientLine {
    /// Run the named pipeline with the given parameters.
    Call(String, Request),
    /// Set the connection session's fair-share weight (>= 1).
    Weight(u32),
    /// Set the connection session's byte budget (0 = unlimited).
    Budget(u64),
    /// Set the connection session's default request deadline in
    /// milliseconds (0 clears it).
    Deadline(u64),
    /// Set the connection session's stage evaluation mode: `true`
    /// fuses whole pipelines (the default), `false` evaluates one
    /// stage per call and hands intermediates across in split form.
    Pipeline(bool),
    /// Set the connection session's plan verification mode: `true`
    /// statically proves each stage plan sound before executing it
    /// (`Config::verify_plans`), `false` trusts the planner.
    Verify(bool),
    /// Gracefully drain the service, waiting up to the given timeout
    /// (milliseconds) for in-flight work.
    Drain(u64),
    /// List registered pipelines.
    List,
    /// Report service counters.
    Stats,
    /// Report the Prometheus-style metrics page (multi-line reply; see
    /// the module docs).
    Metrics,
    /// Report one request's span tree by trace id (tracing-enabled
    /// services only).
    Trace(u64),
    /// Close the connection.
    Quit,
}

/// Parse the single operand of a control line (`WEIGHT`/`BUDGET`).
fn parse_operand<T: std::str::FromStr>(
    head: &str,
    words: &mut std::str::SplitWhitespace<'_>,
) -> Result<T, ServeError> {
    let raw = words
        .next()
        .ok_or_else(|| ServeError::BadRequest(format!("{head} requires one integer operand")))?;
    if words.next().is_some() {
        return Err(ServeError::BadRequest(format!(
            "{head} takes exactly one operand"
        )));
    }
    raw.parse()
        .map_err(|_| ServeError::BadRequest(format!("{head} operand {raw:?} is not an integer")))
}

/// Parse one request line.
pub fn parse_line(line: &str) -> Result<ClientLine, ServeError> {
    let mut words = line.split_whitespace();
    let head = words
        .next()
        .ok_or_else(|| ServeError::BadRequest("empty request line".into()))?;
    // Zero-operand commands reject trailing junk: `STATS STATS` is a
    // confused client, not a request to be guessed at.
    let bare = |line: ClientLine, words: &mut std::str::SplitWhitespace<'_>| {
        if words.next().is_some() {
            return Err(ServeError::BadRequest(format!("{head} takes no operands")));
        }
        Ok(line)
    };
    match head {
        "LIST" => bare(ClientLine::List, &mut words),
        "STATS" => bare(ClientLine::Stats, &mut words),
        "METRICS" => bare(ClientLine::Metrics, &mut words),
        "TRACE" => Ok(ClientLine::Trace(parse_operand(head, &mut words)?)),
        "QUIT" => bare(ClientLine::Quit, &mut words),
        "WEIGHT" => {
            let w: u32 = parse_operand(head, &mut words)?;
            if w == 0 {
                return Err(ServeError::BadRequest("WEIGHT must be at least 1".into()));
            }
            Ok(ClientLine::Weight(w))
        }
        "BUDGET" => Ok(ClientLine::Budget(parse_operand(head, &mut words)?)),
        "DEADLINE" => Ok(ClientLine::Deadline(parse_operand(head, &mut words)?)),
        "PIPELINE" => match parse_operand::<u64>(head, &mut words)? {
            0 => Ok(ClientLine::Pipeline(false)),
            1 => Ok(ClientLine::Pipeline(true)),
            other => Err(ServeError::BadRequest(format!(
                "PIPELINE operand must be 0 or 1, got {other}"
            ))),
        },
        "VERIFY" => match parse_operand::<u64>(head, &mut words)? {
            0 => Ok(ClientLine::Verify(false)),
            1 => Ok(ClientLine::Verify(true)),
            other => Err(ServeError::BadRequest(format!(
                "VERIFY operand must be 0 or 1, got {other}"
            ))),
        },
        "DRAIN" => match words.next() {
            None => Ok(ClientLine::Drain(5_000)),
            Some(raw) => {
                if words.next().is_some() {
                    return Err(ServeError::BadRequest(
                        "DRAIN takes at most one operand".into(),
                    ));
                }
                raw.parse().map(ClientLine::Drain).map_err(|_| {
                    ServeError::BadRequest(format!("DRAIN operand {raw:?} is not an integer"))
                })
            }
        },
        name => {
            let mut req = Request::new();
            for word in words {
                let (key, value) = word.split_once('=').ok_or_else(|| {
                    ServeError::BadRequest(format!(
                        "parameter {word:?} is not of the form key=value"
                    ))
                })?;
                if key.is_empty() {
                    return Err(ServeError::BadRequest(format!(
                        "parameter {word:?} has an empty key"
                    )));
                }
                if key == "DEADLINE_MS" {
                    // A scheduling directive, not a pipeline parameter:
                    // it must not reach the parameter map (and thereby
                    // the coalescing fingerprint).
                    if req.deadline_ms().is_some() {
                        return Err(ServeError::BadRequest(
                            "DEADLINE_MS given more than once".into(),
                        ));
                    }
                    let ms = value.parse().map_err(|_| {
                        ServeError::BadRequest(format!("DEADLINE_MS={value} is not an integer"))
                    })?;
                    req.set_deadline_ms(Some(ms));
                    continue;
                }
                if req.get(key).is_some() {
                    return Err(ServeError::BadRequest(format!(
                        "parameter {key:?} given more than once"
                    )));
                }
                req.set(key, value);
            }
            Ok(ClientLine::Call(name.to_string(), req))
        }
    }
}

/// Format a successful response line.
pub fn ok_line(body: &str) -> String {
    format!("OK {body}")
}

/// Format an error response line.
pub fn err_line(e: &ServeError) -> String {
    format!("ERR {}: {e}", e.kind())
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used, clippy::expect_used)]

    use super::*;

    #[test]
    fn parses_calls_and_controls() {
        match parse_line("black_scholes n=4096 seed=7").unwrap() {
            ClientLine::Call(name, req) => {
                assert_eq!(name, "black_scholes");
                assert_eq!(req.get("n"), Some("4096"));
                assert_eq!(req.get("seed"), Some("7"));
            }
            other => panic!("unexpected {other:?}"),
        }
        assert_eq!(parse_line("LIST").unwrap(), ClientLine::List);
        assert_eq!(parse_line("STATS").unwrap(), ClientLine::Stats);
        assert_eq!(parse_line("QUIT").unwrap(), ClientLine::Quit);
    }

    #[test]
    fn parses_weight_and_budget_lines() {
        assert_eq!(parse_line("WEIGHT 3").unwrap(), ClientLine::Weight(3));
        assert_eq!(
            parse_line("BUDGET 1000000").unwrap(),
            ClientLine::Budget(1_000_000)
        );
        assert_eq!(parse_line("BUDGET 0").unwrap(), ClientLine::Budget(0));
        // Malformed control lines are typed bad requests.
        for bad in [
            "WEIGHT",
            "WEIGHT 0",
            "WEIGHT -1",
            "WEIGHT two",
            "WEIGHT 1 2",
            "BUDGET",
            "BUDGET x",
            "BUDGET 1 2",
        ] {
            assert!(
                matches!(parse_line(bad), Err(ServeError::BadRequest(_))),
                "{bad:?} must be rejected"
            );
        }
    }

    #[test]
    fn parses_pipeline_lines() {
        assert_eq!(
            parse_line("PIPELINE 0").unwrap(),
            ClientLine::Pipeline(false)
        );
        assert_eq!(
            parse_line("PIPELINE 1").unwrap(),
            ClientLine::Pipeline(true)
        );
        for bad in ["PIPELINE", "PIPELINE 2", "PIPELINE x", "PIPELINE 0 1"] {
            assert!(
                matches!(parse_line(bad), Err(ServeError::BadRequest(_))),
                "{bad:?} must be rejected"
            );
        }
    }

    #[test]
    fn parses_verify_lines() {
        assert_eq!(parse_line("VERIFY 0").unwrap(), ClientLine::Verify(false));
        assert_eq!(parse_line("VERIFY 1").unwrap(), ClientLine::Verify(true));
        for bad in ["VERIFY", "VERIFY 2", "VERIFY x", "VERIFY 0 1"] {
            assert!(
                matches!(parse_line(bad), Err(ServeError::BadRequest(_))),
                "{bad:?} must be rejected"
            );
        }
    }

    #[test]
    fn parses_deadline_and_drain_lines() {
        assert_eq!(
            parse_line("DEADLINE 250").unwrap(),
            ClientLine::Deadline(250)
        );
        assert_eq!(parse_line("DEADLINE 0").unwrap(), ClientLine::Deadline(0));
        assert_eq!(parse_line("DRAIN").unwrap(), ClientLine::Drain(5_000));
        assert_eq!(parse_line("DRAIN 100").unwrap(), ClientLine::Drain(100));
        for bad in [
            "DEADLINE",
            "DEADLINE x",
            "DEADLINE 1 2",
            "DRAIN x",
            "DRAIN 1 2",
        ] {
            assert!(
                matches!(parse_line(bad), Err(ServeError::BadRequest(_))),
                "{bad:?} must be rejected"
            );
        }
    }

    #[test]
    fn deadline_ms_is_a_directive_not_a_parameter() {
        match parse_line("black_scholes n=64 DEADLINE_MS=50").unwrap() {
            ClientLine::Call(name, req) => {
                assert_eq!(name, "black_scholes");
                assert_eq!(req.deadline_ms(), Some(50));
                // Stripped from the parameter map: two calls differing
                // only in deadline must keep identical fingerprints.
                assert_eq!(req.get("DEADLINE_MS"), None);
                assert_eq!(req.get("n"), Some("64"));
            }
            other => panic!("unexpected {other:?}"),
        }
        assert!(parse_line("bs DEADLINE_MS=0").is_ok());
        assert!(parse_line("bs DEADLINE_MS=x").is_err());
        assert!(parse_line("bs DEADLINE_MS=1 DEADLINE_MS=2").is_err());
    }

    #[test]
    fn parses_metrics_and_trace_lines() {
        assert_eq!(parse_line("METRICS").unwrap(), ClientLine::Metrics);
        assert_eq!(parse_line("TRACE 42").unwrap(), ClientLine::Trace(42));
        assert_eq!(parse_line("TRACE 0").unwrap(), ClientLine::Trace(0));
        for bad in ["TRACE", "TRACE x", "TRACE 1 2", "TRACE -1"] {
            assert!(
                matches!(parse_line(bad), Err(ServeError::BadRequest(_))),
                "{bad:?} must be rejected"
            );
        }
    }

    #[test]
    fn rejects_duplicate_parameters() {
        // Regression (ISSUE 4): duplicates used to overwrite silently
        // (last one won), hiding client typos.
        let err = parse_line("bs n=4096 n=8192").unwrap_err();
        match err {
            ServeError::BadRequest(m) => assert!(m.contains("more than once"), "{m}"),
            other => panic!("unexpected {other:?}"),
        }
        // Same key, same value is still a duplicate.
        assert!(parse_line("bs seed=1 seed=1").is_err());
        // Distinct keys are fine.
        assert!(parse_line("bs n=1 seed=1").is_ok());
    }

    #[test]
    fn zero_operand_commands_reject_trailing_junk() {
        for bad in ["LIST x", "STATS STATS", "METRICS 1", "QUIT now"] {
            assert!(
                matches!(parse_line(bad), Err(ServeError::BadRequest(_))),
                "{bad:?} must be rejected"
            );
        }
    }

    #[test]
    fn rejects_malformed_lines() {
        assert!(matches!(parse_line("   "), Err(ServeError::BadRequest(_))));
        assert!(matches!(
            parse_line("bs n4096"),
            Err(ServeError::BadRequest(_))
        ));
        assert!(matches!(
            parse_line("bs =3"),
            Err(ServeError::BadRequest(_))
        ));
    }

    #[test]
    fn response_lines_roundtrip_kind() {
        assert_eq!(ok_line("x=1"), "OK x=1");
        let e = ServeError::UnknownPipeline("zap".into());
        let line = err_line(&e);
        assert!(line.starts_with("ERR unknown_pipeline:"));
        assert!(line.contains("zap"));
    }
}
