//! Front-end hardening tests: a malformed/oversized/half-written
//! protocol corpus against a real TCP listener running
//! [`mozart_serve::tcpfront`]. Every abusive input must produce a
//! typed error or a clean close — never a hang, never an abort.

use std::io::{BufRead, BufReader, Read, Write};
use std::net::{TcpListener, TcpStream};
use std::sync::Arc;
use std::time::{Duration, Instant};

use mozart_core::MozartContext;
use mozart_serve::tcpfront::{accept_loop, FrontendConfig};
use mozart_serve::{Pipeline, PipelineService, Request, Response};

struct PingPipeline;

impl Pipeline for PingPipeline {
    fn name(&self) -> &'static str {
        "ping"
    }
    fn run(&self, _ctx: &MozartContext, _req: &Request) -> mozart_core::Result<Response> {
        Ok(Response::new("pong"))
    }
}

/// Stand up a hardened listener on an ephemeral port; returns the
/// address and the service (for stats assertions). The listener thread
/// leaks — it blocks in accept() until the test process exits, exactly
/// like a signal-terminated server.
fn spawn_frontend(cfg: FrontendConfig) -> (std::net::SocketAddr, PipelineService) {
    let service = PipelineService::builder()
        .workers(1)
        .pipeline(Arc::new(PingPipeline))
        .build();
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
    let addr = listener.local_addr().expect("local addr");
    {
        let service = service.clone();
        std::thread::spawn(move || accept_loop(listener, service, cfg));
    }
    (addr, service)
}

fn connect(addr: std::net::SocketAddr) -> (TcpStream, BufReader<TcpStream>) {
    let stream = TcpStream::connect(addr).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .expect("client read timeout");
    let reader = BufReader::new(stream.try_clone().expect("clone"));
    (stream, reader)
}

fn roundtrip(w: &mut TcpStream, r: &mut BufReader<TcpStream>, line: &str) -> String {
    writeln!(w, "{line}").expect("send");
    let mut reply = String::new();
    r.read_line(&mut reply).expect("recv");
    reply
}

fn corpus_cfg() -> FrontendConfig {
    FrontendConfig {
        max_line_bytes: 128,
        read_timeout: Duration::from_millis(200),
        idle_timeout: Duration::from_millis(400),
        max_connections: 32,
    }
}

#[test]
fn malformed_corpus_gets_typed_errors_and_never_hangs() {
    let (addr, service) = spawn_frontend(corpus_cfg());
    let (mut w, mut r) = connect(addr);

    // Sanity: the happy path works.
    assert!(roundtrip(&mut w, &mut r, "ping").starts_with("OK pong"));

    // Garbage that parses as no known command.
    for garbage in [
        "FROBNICATE",
        "ping extra_without_equals",
        "ping =novalue",
        "WEIGHT over9000!",
        "STATS STATS",
    ] {
        let reply = roundtrip(&mut w, &mut r, garbage);
        assert!(reply.starts_with("ERR"), "{garbage:?} -> {reply:?}");
    }

    // Binary garbage: typed bad_request, connection survives.
    w.write_all(b"\x00\xff\xfe\x01\n").expect("send binary");
    let mut reply = String::new();
    r.read_line(&mut reply).expect("recv");
    assert!(reply.starts_with("ERR bad_request"), "{reply:?}");

    // Oversized line (cap 128): typed bad_request, tail discarded,
    // connection resyncs to the next request.
    let big = format!("ping x={}", "a".repeat(1024));
    let reply = roundtrip(&mut w, &mut r, &big);
    assert!(reply.starts_with("ERR bad_request"), "{reply:?}");
    assert!(reply.contains("exceeds"), "{reply:?}");
    assert!(roundtrip(&mut w, &mut r, "ping").starts_with("OK pong"));

    // The abuse never reached a pipeline evaluation it shouldn't have.
    let stats = service.stats();
    assert_eq!(stats.failed, 0, "{stats:?}");
    assert!(roundtrip(&mut w, &mut r, "QUIT").starts_with("OK bye"));
}

#[test]
fn half_written_request_is_never_dispatched() {
    let (addr, service) = spawn_frontend(corpus_cfg());
    let before = service.stats().started;
    {
        let (mut w, _r) = connect(addr);
        // No newline, then close: the fragment must be dropped.
        w.write_all(b"ping half-writ").expect("send partial");
    }
    // Give the serving thread a beat to observe the close.
    std::thread::sleep(Duration::from_millis(100));
    assert_eq!(
        service.stats().started,
        before,
        "a half-written request must never be dispatched"
    );
}

#[test]
fn mid_line_stall_is_dropped_with_typed_error() {
    let (addr, _service) = spawn_frontend(corpus_cfg());
    let (mut w, mut r) = connect(addr);
    // Send half a request and stall past read_timeout (200ms).
    w.write_all(b"ping n=").expect("send partial");
    let start = Instant::now();
    let mut reply = String::new();
    r.read_line(&mut reply).expect("recv stall verdict");
    assert!(reply.starts_with("ERR bad_request"), "{reply:?}");
    assert!(reply.contains("stalled"), "{reply:?}");
    // ...followed by a close, well before the client's own timeout.
    let mut rest = String::new();
    assert_eq!(r.read_line(&mut rest).expect("eof"), 0, "{rest:?}");
    assert!(
        start.elapsed() < Duration::from_secs(5),
        "stall verdict took {:?}",
        start.elapsed()
    );
}

#[test]
fn idle_connections_are_reaped_silently() {
    let (addr, _service) = spawn_frontend(corpus_cfg());
    let (mut w, mut r) = connect(addr);
    assert!(roundtrip(&mut w, &mut r, "ping").starts_with("OK pong"));
    // Say nothing past idle_timeout (400ms): the server closes without
    // a verdict line.
    let mut reply = String::new();
    let n = r.read_line(&mut reply).expect("eof on idle reap");
    assert_eq!(n, 0, "idle reap must be silent, got {reply:?}");
}

#[test]
fn connection_cap_sheds_at_accept_time() {
    let cfg = FrontendConfig {
        max_connections: 2,
        // Long idle so the held connections stay counted.
        idle_timeout: Duration::from_secs(30),
        ..corpus_cfg()
    };
    let (addr, _service) = spawn_frontend(cfg);
    let (mut w1, mut r1) = connect(addr);
    let (mut w2, mut r2) = connect(addr);
    // Both admitted connections work.
    assert!(roundtrip(&mut w1, &mut r1, "ping").starts_with("OK pong"));
    assert!(roundtrip(&mut w2, &mut r2, "ping").starts_with("OK pong"));
    // The third gets one typed saturated line, then a close, without a
    // serving thread ever existing for it.
    let over = TcpStream::connect(addr).expect("connect over cap");
    over.set_read_timeout(Some(Duration::from_secs(10)))
        .expect("timeout");
    let mut reply = String::new();
    BufReader::new(over.try_clone().expect("clone"))
        .read_to_string(&mut reply)
        .expect("read shed reply");
    assert!(reply.starts_with("ERR saturated"), "{reply:?}");
    // Releasing a slot readmits.
    assert!(roundtrip(&mut w1, &mut r1, "QUIT").starts_with("OK bye"));
    std::thread::sleep(Duration::from_millis(100));
    let (mut w3, mut r3) = connect(addr);
    assert!(roundtrip(&mut w3, &mut r3, "ping").starts_with("OK pong"));
}

#[test]
fn verify_directive_toggles_per_session() {
    let (addr, _service) = spawn_frontend(corpus_cfg());
    let (mut w, mut r) = connect(addr);
    // Both settings acknowledge and requests keep flowing under each.
    assert!(roundtrip(&mut w, &mut r, "VERIFY 1").starts_with("OK verify=1"));
    assert!(roundtrip(&mut w, &mut r, "ping").starts_with("OK pong"));
    assert!(roundtrip(&mut w, &mut r, "VERIFY 0").starts_with("OK verify=0"));
    assert!(roundtrip(&mut w, &mut r, "ping").starts_with("OK pong"));
    // Malformed operands are typed bad_request, connection survives.
    for bad in ["VERIFY", "VERIFY 2", "VERIFY on"] {
        let reply = roundtrip(&mut w, &mut r, bad);
        assert!(reply.starts_with("ERR bad_request"), "{bad:?} -> {reply:?}");
    }
    assert!(roundtrip(&mut w, &mut r, "QUIT").starts_with("OK bye"));
}
