//! End-to-end tests of the serving layer: concurrent sessions over the
//! shared pool, plan-cache behavior across requests, and admission
//! backpressure.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Barrier};
use std::time::Duration;

use mozart_core::{Config, FaultKind, FaultPhase, FaultPlan, FaultPoint, MozartContext};
use mozart_serve::{Pipeline, PipelineService, Request, Response, ServeError};

fn small_service(workers: usize) -> PipelineService {
    let mut cfg = Config::with_workers(workers);
    // Multi-batch stages even on hosts with big L2 caches, so the
    // shared pool actually runs jobs.
    cfg.batch_override = Some(512);
    PipelineService::builder()
        .workers(workers)
        .session_config(cfg)
        // These tests assert exact per-request plan-cache and counter
        // values; coalescing (tested separately below) would merge
        // identical concurrent requests and change the counts.
        .coalescing(false)
        .builtin_pipelines()
        .build()
}

#[test]
fn concurrent_sessions_compute_correct_results() {
    let service = small_service(2);
    let expected = {
        // Reference result straight from the workload.
        let inputs = workloads::black_scholes::generate(2048, 42);
        workloads::black_scholes::mkl_base(&inputs)
    };
    let req = Request::new().with("n", 2048);
    // Warm the cache once so the concurrent phase is deterministic
    // (otherwise several threads can race to the same cold miss).
    service.session().call("black_scholes", &req).unwrap();
    std::thread::scope(|s| {
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let session = service.session();
                let req = req.clone();
                s.spawn(move || {
                    for _ in 0..5 {
                        let resp = session.call("black_scholes", &req).unwrap();
                        let want = format!(
                            "call_sum={:.6} put_sum={:.6}",
                            expected.call_sum, expected.put_sum
                        );
                        assert_eq!(resp.body, want);
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
    });
    let stats = service.stats();
    assert_eq!(stats.started, 21);
    assert_eq!(stats.completed, 21);
    assert_eq!(stats.failed, 0);
    // 21 structurally identical requests: one cold miss, 20 replays.
    assert_eq!(stats.plan_cache.hits, 20);
    assert!(stats.plan_cache.hit_rate() > 0.9);
    // The shared pool ran jobs for several distinct sessions.
    assert!(stats.pool.jobs > 0, "pool stats: {:?}", stats.pool);
    assert!(stats.pool.sessions.len() >= 2);
}

#[test]
fn shape_and_pipeline_changes_invalidate_cached_plans() {
    let service = small_service(1);
    let session = service.session();
    session
        .call("black_scholes", &Request::new().with("n", 1024))
        .unwrap();
    session
        .call("black_scholes", &Request::new().with("n", 1024))
        .unwrap();
    let s = service.stats().plan_cache;
    assert_eq!((s.hits, s.misses), (1, 1));
    // Shape change: different n, new fingerprint, planned fresh.
    session
        .call("black_scholes", &Request::new().with("n", 1536))
        .unwrap();
    let s = service.stats().plan_cache;
    assert_eq!((s.hits, s.misses), (1, 2));
    // Different pipeline (different annotations and split types).
    session
        .call("haversine", &Request::new().with("n", 1024))
        .unwrap();
    let s = service.stats().plan_cache;
    assert_eq!((s.hits, s.misses), (1, 3));
    assert_eq!(s.entries, 3);
    // Every variant now replays from its own entry.
    session
        .call("black_scholes", &Request::new().with("n", 1536))
        .unwrap();
    session
        .call("haversine", &Request::new().with("n", 1024))
        .unwrap();
    assert_eq!(service.stats().plan_cache.hits, 3);
}

/// A pipeline that blocks until released, for admission tests.
struct StallPipeline {
    started: Arc<AtomicU64>,
    release: Arc<Barrier>,
}

impl Pipeline for StallPipeline {
    fn name(&self) -> &'static str {
        "stall"
    }
    fn run(&self, _ctx: &MozartContext, _req: &Request) -> mozart_core::Result<Response> {
        self.started.fetch_add(1, Ordering::SeqCst);
        self.release.wait();
        Ok(Response::new("stalled"))
    }
}

#[test]
fn admission_queue_backpressure_returns_typed_error() {
    let started = Arc::new(AtomicU64::new(0));
    let release = Arc::new(Barrier::new(2));
    let service = PipelineService::builder()
        .workers(1)
        .max_inflight(1)
        .queue_depth(0)
        .pipeline(Arc::new(StallPipeline {
            started: started.clone(),
            release: release.clone(),
        }))
        .build();
    let session = service.session();

    std::thread::scope(|s| {
        let svc = service.clone();
        let occupant = s.spawn(move || {
            let session = svc.session();
            session.call("stall", &Request::new()).unwrap()
        });
        // Wait until the occupant holds the only slot.
        while started.load(Ordering::SeqCst) == 0 {
            std::thread::sleep(Duration::from_millis(1));
        }
        // Queue depth 0: both flavors reject immediately with the
        // typed backpressure error.
        let err = session.try_call("stall", &Request::new()).unwrap_err();
        assert_eq!(
            err,
            ServeError::Saturated {
                max_inflight: 1,
                queue_depth: 0
            }
        );
        let err = session.call("stall", &Request::new()).unwrap_err();
        assert!(matches!(err, ServeError::Saturated { .. }));
        release.wait(); // let the occupant finish
        assert_eq!(occupant.join().unwrap().body, "stalled");
    });
    let stats = service.stats();
    assert_eq!(stats.rejected, 2);
    assert_eq!(stats.completed, 1);
}

#[test]
fn builder_order_does_not_clobber_explicit_limits() {
    // Admission limits set before `workers` must survive it; unset
    // limits derive from the final worker count.
    let service = PipelineService::builder()
        .max_inflight(2)
        .workers(8)
        .build();
    assert_eq!(service.config().max_inflight, 2);
    assert_eq!(service.config().queue_depth, 32);
}

#[test]
fn unknown_pipeline_is_a_typed_error() {
    let service = small_service(1);
    let session = service.session();
    match session.call("definitely_not_registered", &Request::new()) {
        Err(ServeError::UnknownPipeline(name)) => {
            assert_eq!(name, "definitely_not_registered")
        }
        other => panic!("expected UnknownPipeline, got {other:?}"),
    }
    // Unknown pipelines are rejected before admission: not counted as
    // started or rejected-by-saturation.
    let stats = service.stats();
    assert_eq!(stats.started, 0);
    assert_eq!(stats.rejected, 0);
}

#[test]
fn bad_parameters_surface_as_runtime_errors() {
    let service = small_service(1);
    let session = service.session();
    let err = session
        .call("black_scholes", &Request::new().with("n", "not_a_number"))
        .unwrap_err();
    assert_eq!(err.kind(), "runtime");
    assert!(err.to_string().contains("not_a_number"));
    assert_eq!(service.stats().failed, 1);
}

/// Deterministic coalescing: while a stalled leader occupies the only
/// admission slot, two fingerprint-identical requests queue up — the
/// first becomes a batch leader waiting for admission, the second joins
/// its batch — and the coalesced evaluation must produce exactly the
/// responses separate evaluations produce.
#[test]
fn coalesced_requests_match_separate_evaluation() {
    let started = Arc::new(AtomicU64::new(0));
    let release = Arc::new(Barrier::new(2));
    let mut cfg = Config::with_workers(2);
    cfg.batch_override = Some(512);
    let service = PipelineService::builder()
        .workers(2)
        .max_inflight(1)
        .queue_depth(8)
        .session_config(cfg)
        .builtin_pipelines()
        .pipeline(Arc::new(StallPipeline {
            started: started.clone(),
            release: release.clone(),
        }))
        .build();

    // Reference responses from a coalescing-free service.
    let reference = small_service(2);
    let ref_session = reference.session();
    let req_a = Request::new().with("n", 2048).with("seed", 11u64);
    let req_b = Request::new().with("n", 2048).with("seed", 22u64);
    let want_a = ref_session.call("black_scholes", &req_a).unwrap();
    let want_b = ref_session.call("black_scholes", &req_b).unwrap();
    assert_ne!(want_a, want_b, "different seeds, different sums");

    std::thread::scope(|s| {
        // Occupy the single admission slot.
        let svc = service.clone();
        let occupant = s.spawn(move || {
            svc.session().call("stall", &Request::new()).unwrap();
        });
        while started.load(Ordering::SeqCst) == 0 {
            std::thread::sleep(Duration::from_millis(1));
        }
        // First queued request: publishes a batch, blocks in admission.
        let svc = service.clone();
        let ra = req_a.clone();
        let leader = s.spawn(move || svc.session().call("black_scholes", &ra).unwrap());
        while service.stats().waiting == 0 {
            std::thread::sleep(Duration::from_millis(1));
        }
        // Second queued request: same n (same fingerprint), different
        // seed — joins the open batch.
        let svc = service.clone();
        let rb = req_b.clone();
        let follower = s.spawn(move || svc.session().call("black_scholes", &rb).unwrap());
        // Deterministic join: release the stall only once the follower
        // is parked inside the leader's open batch.
        while service.stats().coalesce_waiting == 0 {
            std::thread::sleep(Duration::from_millis(1));
        }
        release.wait();
        occupant.join().unwrap();
        assert_eq!(leader.join().unwrap(), want_a);
        assert_eq!(follower.join().unwrap(), want_b);
    });
    let stats = service.stats();
    assert_eq!(
        stats.coalesced_requests, 1,
        "the follower rode the leader's evaluation: {stats:?}"
    );
    // 3 requests total (stall + leader + follower), all completed.
    assert_eq!(stats.started, 3);
    assert_eq!(stats.completed, 3);
    assert_eq!(stats.failed, 0);
}

/// Deterministic two-request coalescing through the generic split-layer
/// path: while a stalled leader occupies the only admission slot, a
/// leader + follower pair with fingerprint-identical requests coalesce,
/// and both responses must equal what a coalescing-free service
/// produces — bit for bit.
fn assert_coalesces_identically(pipeline: &str, req_a: Request, req_b: Request) {
    let started = Arc::new(AtomicU64::new(0));
    let release = Arc::new(Barrier::new(2));
    let service = PipelineService::builder()
        .workers(1)
        .max_inflight(1)
        .queue_depth(8)
        .builtin_pipelines()
        .pipeline(Arc::new(StallPipeline {
            started: started.clone(),
            release: release.clone(),
        }))
        .build();
    let reference = small_service(1);
    let want_a = reference.session().call(pipeline, &req_a).unwrap();
    let want_b = reference.session().call(pipeline, &req_b).unwrap();
    assert_ne!(want_a, want_b, "different seeds, different checksums");

    std::thread::scope(|s| {
        let svc = service.clone();
        let occupant = s.spawn(move || svc.session().call("stall", &Request::new()).unwrap());
        while started.load(Ordering::SeqCst) == 0 {
            std::thread::sleep(Duration::from_millis(1));
        }
        let svc = service.clone();
        let ra = req_a.clone();
        let leader = s.spawn(move || svc.session().call(pipeline, &ra).unwrap());
        while service.stats().waiting == 0 {
            std::thread::sleep(Duration::from_millis(1));
        }
        let svc = service.clone();
        let rb = req_b.clone();
        let follower = s.spawn(move || svc.session().call(pipeline, &rb).unwrap());
        while service.stats().coalesce_waiting == 0 {
            std::thread::sleep(Duration::from_millis(1));
        }
        release.wait();
        occupant.join().unwrap();
        assert_eq!(leader.join().unwrap(), want_a);
        assert_eq!(follower.join().unwrap(), want_b);
    });
    assert_eq!(
        service.stats().coalesced_requests,
        1,
        "{pipeline}: the follower must ride the leader's evaluation"
    );
}

/// Coalescing across haversine requests produces identical responses
/// too (the second builtin coalescible pipeline).
#[test]
fn haversine_coalesces_identically() {
    assert_coalesces_identically(
        "haversine",
        Request::new().with("n", 1024).with("seed", 5u64),
        Request::new().with("n", 1024).with("seed", 6u64),
    );
}

/// Image pipeline coalescing (v2 generic path): two photographs stack
/// along the row axis through `ImageSplit`'s Concat capability,
/// evaluate as one Nashville chain, and the sliced-back row bands
/// summarize bit-identically to separate evaluations.
#[test]
fn nashville_coalesces_identically() {
    assert_coalesces_identically(
        "nashville",
        Request::new()
            .with("width", 96)
            .with("height", 64)
            .with("seed", 3u64),
        Request::new()
            .with("width", 96)
            .with("height", 64)
            .with("seed", 4u64),
    );
}

/// DataFrame pipeline coalescing (v2 generic path): two statistics
/// frames concatenate by rows through `RowSplit`'s Concat capability,
/// the per-city scores evaluate once, and each request's rows sum back
/// bit-identically to separate evaluations.
#[test]
fn crime_index_coalesces_identically() {
    assert_coalesces_identically(
        "crime_index",
        Request::new().with("rows", 600).with("seed", 1u64),
        Request::new().with("rows", 600).with("seed", 2u64),
    );
}

#[test]
fn byte_budgets_shed_load_with_typed_error() {
    let service = small_service(1);
    let session = service.session();
    // Unlimited by default.
    assert_eq!(session.byte_budget(), 0);
    session.set_byte_budget(1); // any completed request exhausts it
    let req = Request::new().with("n", 2048);
    session.call("black_scholes", &req).unwrap();
    let used = session.bytes_used();
    assert!(
        used > 0,
        "split/merge byte metering must see the evaluation"
    );
    // Black Scholes splits 12 f64 buffers per stage over one stage:
    // the nominal split cost must at least cover one pass.
    assert!(used >= 12 * 8 * 2048, "used {used} bytes");
    let err = session.call("black_scholes", &req).unwrap_err();
    match err {
        ServeError::OverBudget {
            session: id,
            used_bytes,
            budget_bytes,
        } => {
            assert_eq!(id, session.id());
            assert_eq!(used_bytes, used);
            assert_eq!(budget_bytes, 1);
        }
        other => panic!("expected OverBudget, got {other:?}"),
    }
    let stats = service.stats();
    assert_eq!(stats.over_budget, 1);
    // Shed before admission: not started, not failed, not rejected.
    assert_eq!(stats.started, 1);
    assert_eq!(stats.failed, 0);
    assert_eq!(stats.rejected, 0);
    // Raising the budget readmits the session.
    session.set_byte_budget(u64::MAX);
    session.call("black_scholes", &req).unwrap();
}

#[test]
fn builder_defaults_apply_to_new_sessions() {
    let service = PipelineService::builder()
        .workers(1)
        .session_weight(3)
        .session_byte_budget(1 << 20)
        .build();
    let session = service.session();
    assert_eq!(session.weight(), 3);
    assert_eq!(session.byte_budget(), 1 << 20);
    session.set_weight(5);
    assert_eq!(session.weight(), 5);
}

/// A pipeline that fails its first `failures` invocations, for retry
/// tests. `transient` picks between a retryable panic-shaped error and
/// a deterministic library error.
struct FlakyPipeline {
    failures: AtomicU64,
    attempts: Arc<AtomicU64>,
    transient: bool,
}

impl Pipeline for FlakyPipeline {
    fn name(&self) -> &'static str {
        "flaky"
    }
    fn run(&self, _ctx: &MozartContext, _req: &Request) -> mozart_core::Result<Response> {
        self.attempts.fetch_add(1, Ordering::SeqCst);
        if self
            .failures
            .fetch_update(Ordering::SeqCst, Ordering::SeqCst, |f| f.checked_sub(1))
            .is_ok()
        {
            return Err(if self.transient {
                mozart_core::Error::TaskPanicked {
                    stage: FaultPhase::Task,
                    payload: "flaky pipeline panic".into(),
                }
            } else {
                mozart_core::Error::Library("deterministic flaky failure".into())
            });
        }
        Ok(Response::new("ok"))
    }
}

fn flaky_service(
    failures: u64,
    transient: bool,
    max_retries: u32,
) -> (PipelineService, Arc<AtomicU64>) {
    let attempts = Arc::new(AtomicU64::new(0));
    let service = PipelineService::builder()
        .workers(1)
        .max_retries(max_retries)
        .retry_backoff_ms(1)
        .pipeline(Arc::new(FlakyPipeline {
            failures: AtomicU64::new(failures),
            attempts: attempts.clone(),
            transient,
        }))
        .build();
    (service, attempts)
}

#[test]
fn zero_deadline_sheds_before_admission_with_typed_error() {
    let service = small_service(1);
    let session = service.session();
    let req = Request::new().with("n", 512).with_deadline_ms(0);
    let err = session.call("black_scholes", &req).unwrap_err();
    assert_eq!(err, ServeError::DeadlineExceeded { deadline_ms: 0 });
    assert_eq!(err.kind(), "deadline_exceeded");
    let stats = service.stats();
    // Shed distinctly: not started, not saturation-rejected, not failed.
    assert_eq!(stats.deadline_shed, 1, "{stats:?}");
    assert_eq!(stats.started, 0);
    assert_eq!(stats.rejected, 0);
    assert_eq!(stats.failed, 0);
    // The session stays usable.
    session
        .call("black_scholes", &Request::new().with("n", 512))
        .unwrap();
}

#[test]
fn deadlines_expire_while_queued_in_admission() {
    let started = Arc::new(AtomicU64::new(0));
    let release = Arc::new(Barrier::new(2));
    let service = PipelineService::builder()
        .workers(1)
        .max_inflight(1)
        .queue_depth(8)
        .pipeline(Arc::new(StallPipeline {
            started: started.clone(),
            release: release.clone(),
        }))
        .build();
    std::thread::scope(|s| {
        let svc = service.clone();
        let occupant = s.spawn(move || svc.session().call("stall", &Request::new()).unwrap());
        while started.load(Ordering::SeqCst) == 0 {
            std::thread::sleep(Duration::from_millis(1));
        }
        // Per-request deadline: expires waiting for the occupied slot.
        let session = service.session();
        let err = session
            .call("stall", &Request::new().with_deadline_ms(30))
            .unwrap_err();
        assert_eq!(err, ServeError::DeadlineExceeded { deadline_ms: 30 });
        // Session default deadline: same shedding path, no per-request
        // annotation needed.
        let session = service.session();
        session.set_deadline(Some(Duration::from_millis(40)));
        let err = session.call("stall", &Request::new()).unwrap_err();
        assert_eq!(err, ServeError::DeadlineExceeded { deadline_ms: 40 });
        release.wait();
        assert_eq!(occupant.join().unwrap().body, "stalled");
    });
    let stats = service.stats();
    assert_eq!(stats.deadline_shed, 2, "{stats:?}");
    assert_eq!(stats.rejected, 0, "deadline sheds are not saturation");
    assert_eq!(stats.completed, 1);
    assert_eq!(stats.failed, 0);
}

#[test]
fn transient_failures_retry_until_success() {
    let (service, attempts) = flaky_service(2, true, 2);
    let resp = service.session().call("flaky", &Request::new()).unwrap();
    assert_eq!(resp.body, "ok");
    assert_eq!(attempts.load(Ordering::SeqCst), 3, "2 failures + 1 success");
    let stats = service.stats();
    assert_eq!(stats.retries, 2, "{stats:?}");
    assert_eq!(stats.completed, 1);
    assert_eq!(stats.failed, 0);
    assert_eq!(stats.started, 1, "retries run under one admission permit");
}

#[test]
fn retry_budget_exhaustion_surfaces_the_typed_error() {
    let (service, attempts) = flaky_service(10, true, 1);
    let err = service
        .session()
        .call("flaky", &Request::new())
        .unwrap_err();
    assert_eq!(err.kind(), "runtime");
    assert!(err.to_string().contains("flaky pipeline panic"), "{err}");
    assert_eq!(attempts.load(Ordering::SeqCst), 2, "1 try + 1 retry");
    let stats = service.stats();
    assert_eq!(stats.retries, 1);
    assert_eq!(stats.failed, 1);
    assert_eq!(stats.completed, 0);
}

#[test]
fn deterministic_failures_never_retry() {
    let (service, attempts) = flaky_service(10, false, 3);
    let err = service
        .session()
        .call("flaky", &Request::new())
        .unwrap_err();
    assert_eq!(err.kind(), "runtime");
    assert_eq!(
        attempts.load(Ordering::SeqCst),
        1,
        "a deterministic error must not burn the retry budget"
    );
    assert_eq!(service.stats().retries, 0);
    assert_eq!(service.stats().failed, 1);
}

#[test]
fn injected_runtime_faults_retry_bit_identically() {
    // The fault plan rides the session config into the per-attempt
    // evaluation context: attempt 1 hits the injected task fault
    // (transient), attempt 2 runs clean — and the response must equal a
    // fault-free service's, bit for bit.
    let want = {
        let reference = small_service(1);
        let session = reference.session();
        session
            .call("black_scholes", &Request::new().with("n", 2048))
            .unwrap()
    };
    let mut cfg = Config::with_workers(1);
    cfg.batch_override = Some(512);
    cfg.fault_plan = Some(Arc::new(
        FaultPlan::new().point(FaultPoint::once(FaultPhase::Task, FaultKind::Error)),
    ));
    let service = PipelineService::builder()
        .workers(1)
        .session_config(cfg)
        .coalescing(false)
        .max_retries(2)
        .retry_backoff_ms(1)
        .builtin_pipelines()
        .build();
    let resp = service
        .session()
        .call("black_scholes", &Request::new().with("n", 2048))
        .unwrap();
    assert_eq!(resp, want);
    let stats = service.stats();
    assert!(stats.retries >= 1, "{stats:?}");
    assert_eq!(stats.completed, 1);
    assert_eq!(stats.failed, 0);
}

/// A fault inside a *coalesced* evaluation must not take the followers
/// down with the leader: with the retry budget at zero, the failed
/// batch degrades to per-member individual evaluation and every member
/// still gets its own bit-exact response.
#[test]
fn coalesced_batch_fault_degrades_to_individual_evaluation() {
    let started = Arc::new(AtomicU64::new(0));
    let release = Arc::new(Barrier::new(2));
    let mut cfg = Config::with_workers(1);
    cfg.batch_override = Some(512);
    cfg.fault_plan = Some(Arc::new(
        FaultPlan::new().point(FaultPoint::once(FaultPhase::Task, FaultKind::Error)),
    ));
    let service = PipelineService::builder()
        .workers(1)
        .max_inflight(1)
        .queue_depth(8)
        .max_retries(0) // force degradation, not batch retry
        .session_config(cfg)
        .builtin_pipelines()
        .pipeline(Arc::new(StallPipeline {
            started: started.clone(),
            release: release.clone(),
        }))
        .build();
    let reference = small_service(1);
    let req_a = Request::new().with("n", 2048).with("seed", 11u64);
    let req_b = Request::new().with("n", 2048).with("seed", 22u64);
    let want_a = reference.session().call("black_scholes", &req_a).unwrap();
    let want_b = reference.session().call("black_scholes", &req_b).unwrap();

    std::thread::scope(|s| {
        let svc = service.clone();
        let occupant = s.spawn(move || svc.session().call("stall", &Request::new()).unwrap());
        while started.load(Ordering::SeqCst) == 0 {
            std::thread::sleep(Duration::from_millis(1));
        }
        let svc = service.clone();
        let ra = req_a.clone();
        let leader = s.spawn(move || svc.session().call("black_scholes", &ra).unwrap());
        while service.stats().waiting == 0 {
            std::thread::sleep(Duration::from_millis(1));
        }
        let svc = service.clone();
        let rb = req_b.clone();
        let follower = s.spawn(move || svc.session().call("black_scholes", &rb).unwrap());
        while service.stats().coalesce_waiting == 0 {
            std::thread::sleep(Duration::from_millis(1));
        }
        release.wait();
        occupant.join().unwrap();
        // The coalesced attempt hit the injected fault; both members
        // must still come back correct via individual evaluation.
        assert_eq!(leader.join().unwrap(), want_a);
        assert_eq!(follower.join().unwrap(), want_b);
    });
    let stats = service.stats();
    assert_eq!(stats.coalesced_requests, 1, "{stats:?}");
    assert_eq!(stats.completed, 3);
    assert_eq!(stats.failed, 0);
    assert_eq!(stats.retries, 0);
}

#[test]
fn drain_rejects_new_work_and_waits_for_inflight() {
    // Idle service: drain completes immediately and closes admission.
    let service = small_service(1);
    assert!(!service.is_draining());
    assert!(service.drain(Duration::from_millis(100)));
    assert!(service.is_draining());
    let err = service
        .session()
        .call("black_scholes", &Request::new().with("n", 512))
        .unwrap_err();
    assert_eq!(err, ServeError::Draining);
    assert_eq!(err.kind(), "draining");
    let stats = service.stats();
    assert!(stats.draining);
    assert_eq!(stats.rejected, 1);

    // Busy service: drain reports false while work is in flight, lets
    // it finish, and a later drain observes the idle service.
    let started = Arc::new(AtomicU64::new(0));
    let release = Arc::new(Barrier::new(2));
    let service = PipelineService::builder()
        .workers(1)
        .max_inflight(1)
        .queue_depth(4)
        .pipeline(Arc::new(StallPipeline {
            started: started.clone(),
            release: release.clone(),
        }))
        .build();
    std::thread::scope(|s| {
        let svc = service.clone();
        let occupant = s.spawn(move || svc.session().call("stall", &Request::new()).unwrap());
        while started.load(Ordering::SeqCst) == 0 {
            std::thread::sleep(Duration::from_millis(1));
        }
        assert!(
            !service.drain(Duration::from_millis(10)),
            "drain must not claim success with work in flight"
        );
        // New arrivals are turned away while the occupant drains out.
        let err = service
            .session()
            .call("stall", &Request::new())
            .unwrap_err();
        assert_eq!(err, ServeError::Draining);
        release.wait();
        // In-flight work completes despite the drain.
        assert_eq!(occupant.join().unwrap().body, "stalled");
    });
    assert!(service.drain(Duration::from_millis(500)));
    let stats = service.stats();
    assert_eq!(stats.completed, 1);
    assert_eq!(stats.failed, 0);
}

/// Multi-session fairness: 3 sessions with skewed demand (two hot
/// sessions driving two threads each, one cold single-threaded session
/// at weight 2) over one shared pool. Under deficit-weighted
/// round-robin no session starves, and the per-session accounting the
/// scheduler ranks by is visible in the pool stats.
#[test]
fn weighted_sessions_share_the_pool_without_starvation() {
    let mut cfg = Config::with_workers(2);
    cfg.batch_override = Some(256); // many batches per job
    let service = PipelineService::builder()
        .workers(2)
        .max_inflight(3)
        .queue_depth(16)
        .session_config(cfg)
        .coalescing(false) // measure scheduling, not request merging
        .builtin_pipelines()
        .build();
    let hot1 = Arc::new(service.session());
    let hot2 = Arc::new(service.session());
    let cold = Arc::new(service.session());
    cold.set_weight(2);

    let rounds = 6;
    std::thread::scope(|s| {
        let mut handles = Vec::new();
        for (session, threads, seed) in [(&hot1, 2, 1u64), (&hot2, 2, 2), (&cold, 1, 3)] {
            for _ in 0..threads {
                let session = Arc::clone(session);
                let req = Request::new().with("n", 4096).with("seed", seed);
                handles.push(s.spawn(move || {
                    for _ in 0..rounds {
                        session.call("black_scholes", &req).unwrap();
                    }
                }));
            }
        }
        for h in handles {
            h.join().unwrap();
        }
    });

    let pool = service.stats().pool;
    let share = |id: u64| {
        pool.sessions
            .iter()
            .find(|e| e.session == id)
            .cloned()
            .unwrap_or_default()
    };
    let (e1, e2, ec) = (share(hot1.id()), share(hot2.id()), share(cold.id()));
    // Weights are recorded where the scheduler reads them.
    assert_eq!(ec.weight, 2, "{pool:?}");
    assert_eq!(e1.weight, 1);
    // No session starves: everyone's jobs ran batches on the pool.
    for e in [&e1, &e2, &ec] {
        assert!(e.jobs > 0 && e.batches > 0, "starved session: {pool:?}");
        assert!(e.bytes > 0, "byte accounting missing: {pool:?}");
    }
    // Convergence within (generous, CI-safe) tolerance: the cold
    // session is 1 of 5 closed-loop threads but holds weight 2 of 4 —
    // deficit-weighted scheduling must keep its share of served batches
    // from collapsing below half of an equal per-*thread* split.
    let total = (e1.batches + e2.batches + ec.batches) as f64;
    let cold_share = ec.batches as f64 / total;
    assert!(
        cold_share > 0.10,
        "cold session share {cold_share:.3} collapsed: {pool:?}"
    );
}
