//! End-to-end tests of the serving layer: concurrent sessions over the
//! shared pool, plan-cache behavior across requests, and admission
//! backpressure.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Barrier};
use std::time::Duration;

use mozart_core::{Config, MozartContext};
use mozart_serve::{Pipeline, PipelineService, Request, Response, ServeError};

fn small_service(workers: usize) -> PipelineService {
    let mut cfg = Config::with_workers(workers);
    // Multi-batch stages even on hosts with big L2 caches, so the
    // shared pool actually runs jobs.
    cfg.batch_override = Some(512);
    PipelineService::builder()
        .workers(workers)
        .session_config(cfg)
        .builtin_pipelines()
        .build()
}

#[test]
fn concurrent_sessions_compute_correct_results() {
    let service = small_service(2);
    let expected = {
        // Reference result straight from the workload.
        let inputs = workloads::black_scholes::generate(2048, 42);
        workloads::black_scholes::mkl_base(&inputs)
    };
    let req = Request::new().with("n", 2048);
    // Warm the cache once so the concurrent phase is deterministic
    // (otherwise several threads can race to the same cold miss).
    service.session().call("black_scholes", &req).unwrap();
    std::thread::scope(|s| {
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let session = service.session();
                let req = req.clone();
                s.spawn(move || {
                    for _ in 0..5 {
                        let resp = session.call("black_scholes", &req).unwrap();
                        let want = format!(
                            "call_sum={:.6} put_sum={:.6}",
                            expected.call_sum, expected.put_sum
                        );
                        assert_eq!(resp.body, want);
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
    });
    let stats = service.stats();
    assert_eq!(stats.started, 21);
    assert_eq!(stats.completed, 21);
    assert_eq!(stats.failed, 0);
    // 21 structurally identical requests: one cold miss, 20 replays.
    assert_eq!(stats.plan_cache.hits, 20);
    assert!(stats.plan_cache.hit_rate() > 0.9);
    // The shared pool ran jobs for several distinct sessions.
    assert!(stats.pool.jobs > 0, "pool stats: {:?}", stats.pool);
    assert!(stats.pool.sessions.len() >= 2);
}

#[test]
fn shape_and_pipeline_changes_invalidate_cached_plans() {
    let service = small_service(1);
    let session = service.session();
    session
        .call("black_scholes", &Request::new().with("n", 1024))
        .unwrap();
    session
        .call("black_scholes", &Request::new().with("n", 1024))
        .unwrap();
    let s = service.stats().plan_cache;
    assert_eq!((s.hits, s.misses), (1, 1));
    // Shape change: different n, new fingerprint, planned fresh.
    session
        .call("black_scholes", &Request::new().with("n", 1536))
        .unwrap();
    let s = service.stats().plan_cache;
    assert_eq!((s.hits, s.misses), (1, 2));
    // Different pipeline (different annotations and split types).
    session
        .call("haversine", &Request::new().with("n", 1024))
        .unwrap();
    let s = service.stats().plan_cache;
    assert_eq!((s.hits, s.misses), (1, 3));
    assert_eq!(s.entries, 3);
    // Every variant now replays from its own entry.
    session
        .call("black_scholes", &Request::new().with("n", 1536))
        .unwrap();
    session
        .call("haversine", &Request::new().with("n", 1024))
        .unwrap();
    assert_eq!(service.stats().plan_cache.hits, 3);
}

/// A pipeline that blocks until released, for admission tests.
struct StallPipeline {
    started: Arc<AtomicU64>,
    release: Arc<Barrier>,
}

impl Pipeline for StallPipeline {
    fn name(&self) -> &'static str {
        "stall"
    }
    fn run(&self, _ctx: &MozartContext, _req: &Request) -> mozart_core::Result<Response> {
        self.started.fetch_add(1, Ordering::SeqCst);
        self.release.wait();
        Ok(Response::new("stalled"))
    }
}

#[test]
fn admission_queue_backpressure_returns_typed_error() {
    let started = Arc::new(AtomicU64::new(0));
    let release = Arc::new(Barrier::new(2));
    let service = PipelineService::builder()
        .workers(1)
        .max_inflight(1)
        .queue_depth(0)
        .pipeline(Arc::new(StallPipeline {
            started: started.clone(),
            release: release.clone(),
        }))
        .build();
    let session = service.session();

    std::thread::scope(|s| {
        let svc = service.clone();
        let occupant = s.spawn(move || {
            let session = svc.session();
            session.call("stall", &Request::new()).unwrap()
        });
        // Wait until the occupant holds the only slot.
        while started.load(Ordering::SeqCst) == 0 {
            std::thread::sleep(Duration::from_millis(1));
        }
        // Queue depth 0: both flavors reject immediately with the
        // typed backpressure error.
        let err = session.try_call("stall", &Request::new()).unwrap_err();
        assert_eq!(
            err,
            ServeError::Saturated {
                max_inflight: 1,
                queue_depth: 0
            }
        );
        let err = session.call("stall", &Request::new()).unwrap_err();
        assert!(matches!(err, ServeError::Saturated { .. }));
        release.wait(); // let the occupant finish
        assert_eq!(occupant.join().unwrap().body, "stalled");
    });
    let stats = service.stats();
    assert_eq!(stats.rejected, 2);
    assert_eq!(stats.completed, 1);
}

#[test]
fn builder_order_does_not_clobber_explicit_limits() {
    // Admission limits set before `workers` must survive it; unset
    // limits derive from the final worker count.
    let service = PipelineService::builder()
        .max_inflight(2)
        .workers(8)
        .build();
    assert_eq!(service.config().max_inflight, 2);
    assert_eq!(service.config().queue_depth, 32);
}

#[test]
fn unknown_pipeline_is_a_typed_error() {
    let service = small_service(1);
    let session = service.session();
    match session.call("definitely_not_registered", &Request::new()) {
        Err(ServeError::UnknownPipeline(name)) => {
            assert_eq!(name, "definitely_not_registered")
        }
        other => panic!("expected UnknownPipeline, got {other:?}"),
    }
    // Unknown pipelines are rejected before admission: not counted as
    // started or rejected-by-saturation.
    let stats = service.stats();
    assert_eq!(stats.started, 0);
    assert_eq!(stats.rejected, 0);
}

#[test]
fn bad_parameters_surface_as_runtime_errors() {
    let service = small_service(1);
    let session = service.session();
    let err = session
        .call("black_scholes", &Request::new().with("n", "not_a_number"))
        .unwrap_err();
    assert_eq!(err.kind(), "runtime");
    assert!(err.to_string().contains("not_a_number"));
    assert_eq!(service.stats().failed, 1);
}
