//! End-to-end tests of the observability layer: trace trees covering
//! request latency, retry-attempt span parenting, coalesced followers
//! linking to their leader's trace, and the metrics page.

#![allow(clippy::unwrap_used, clippy::expect_used)]

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Barrier};
use std::time::Duration;

use mozart_core::trace::{RetryCause, SpanKind};
use mozart_core::{Config, FaultKind, FaultPhase, FaultPlan, FaultPoint, MozartContext};
use mozart_serve::{Pipeline, PipelineService, Request, Response};

fn traced_service(workers: usize) -> PipelineService {
    let mut cfg = Config::with_workers(workers);
    // Multi-batch stages even on hosts with big caches, so the
    // executor's per-batch spans actually appear.
    cfg.batch_override = Some(512);
    PipelineService::builder()
        .workers(workers)
        .session_config(cfg)
        .coalescing(false)
        .tracing(true)
        .builtin_pipelines()
        .build()
}

/// The ISSUE's acceptance bar: with tracing enabled, a request's span
/// tree must account for its end-to-end latency — the root's direct
/// children (queue wait + attempts) cover at least 95% of the
/// wall-clock span, because they are contiguous same-thread intervals.
#[test]
fn trace_tree_covers_end_to_end_latency_within_5_percent() {
    let service = traced_service(2);
    let session = service.session();
    let req = Request::new().with("n", 65536);
    let (resp, trace) = session.call_traced("black_scholes", &req);
    resp.unwrap();
    let trace = trace.expect("tracing is on: every call gets a trace id");

    let tree = service.trace_tree(trace).expect("spans were recorded");
    assert_eq!(tree.root.span.kind, SpanKind::Request);
    let e2e = tree.e2e_ns();
    let covered = tree.covered_ns();
    assert!(e2e > 0);
    assert!(
        covered >= e2e / 100 * 95,
        "covered {covered} ns of {e2e} ns ({}%)\n{}",
        covered * 100 / e2e.max(1),
        tree.render_line()
    );
    // Direct children are non-overlapping intervals inside the root, so
    // coverage can never meaningfully exceed the end-to-end time.
    assert!(covered <= e2e + e2e / 20, "covered {covered} > e2e {e2e}");

    // The attempt carries the executor's work: split/task spans from
    // worker threads landed in the same trace and under the attempt.
    let spans = service.trace_spans(trace);
    assert!(spans.iter().any(|s| s.kind == SpanKind::Task), "{spans:?}");
    assert!(spans.iter().any(|s| s.kind == SpanKind::Split), "{spans:?}");
    let attempt = tree
        .root
        .children
        .iter()
        .find(|n| n.span.kind == SpanKind::Attempt)
        .expect("one attempt under the root");
    assert!(
        attempt
            .children
            .iter()
            .any(|n| n.span.kind == SpanKind::Task),
        "executor spans nest under the attempt: {}",
        tree.render_line()
    );

    // The serve-side histograms saw the request.
    let metrics = service.metrics().unwrap();
    assert_eq!(metrics.e2e.count, 1);
    assert!(metrics.e2e.max >= covered);
    let task = metrics
        .phases
        .iter()
        .find(|(n, _)| *n == "task")
        .map(|(_, h)| h.clone())
        .unwrap();
    assert!(task.count >= 1, "task phase histogram fed per attempt");

    // And the metrics page exposes both counters and histograms.
    let page = service.metrics_text();
    assert!(page.contains("mozart_requests_started_total 1"), "{page}");
    assert!(page.contains("# TYPE mozart_request_seconds histogram"));
    assert!(page.contains("mozart_request_seconds_count 1"));
    assert!(page.contains("mozart_span_task_total"));
}

/// An untraced service mints no ids, returns no trees, and serves a
/// counters-only metrics page.
#[test]
fn tracing_off_records_nothing() {
    let mut cfg = Config::with_workers(1);
    cfg.batch_override = Some(512);
    let service = PipelineService::builder()
        .workers(1)
        .session_config(cfg)
        .coalescing(false)
        .builtin_pipelines()
        .build();
    assert!(!service.tracing_enabled());
    let (resp, trace) = service
        .session()
        .call_traced("black_scholes", &Request::new().with("n", 1024));
    resp.unwrap();
    assert_eq!(trace, None);
    assert!(service.metrics().is_none());
    assert!(service.recorder().is_none());
    assert!(service.trace_tree(1).is_none());
    assert!(service.slow_requests().is_empty());
    let page = service.metrics_text();
    assert!(page.contains("mozart_requests_started_total 1"));
    assert!(!page.contains("mozart_request_seconds"));
}

/// Retry attempts parent their own executor spans, and the second
/// attempt's `link` carries the cause of the first one's failure.
#[test]
fn retry_attempts_parent_their_spans_and_carry_the_cause() {
    let mut cfg = Config::with_workers(1);
    cfg.batch_override = Some(512);
    cfg.fault_plan = Some(Arc::new(
        FaultPlan::new().point(FaultPoint::once(FaultPhase::Task, FaultKind::Error)),
    ));
    let service = PipelineService::builder()
        .workers(1)
        .session_config(cfg)
        .coalescing(false)
        .tracing(true)
        .max_retries(2)
        .retry_backoff_ms(1)
        .builtin_pipelines()
        .build();
    let (resp, trace) = service
        .session()
        .call_traced("black_scholes", &Request::new().with("n", 2048));
    resp.unwrap();
    let trace = trace.unwrap();

    let spans = service.trace_spans(trace);
    let mut attempts: Vec<_> = spans
        .iter()
        .filter(|s| s.kind == SpanKind::Attempt)
        .collect();
    attempts.sort_by_key(|s| s.arg);
    assert_eq!(attempts.len(), 2, "{spans:?}");
    assert_eq!(attempts[0].arg, 0);
    assert_eq!(attempts[0].link, RetryCause::None as u64);
    assert_eq!(attempts[1].arg, 1);
    assert_eq!(
        attempts[1].link,
        RetryCause::Injected as u64,
        "the retry records why the previous attempt failed"
    );
    assert!(
        spans.iter().any(|s| s.kind == SpanKind::Backoff),
        "a backoff span separates the attempts"
    );
    assert_eq!(service.stats().retries, 1);

    // In the assembled tree both attempts sit under the root, and the
    // successful second attempt contains the executor's task spans.
    let tree = service.trace_tree(trace).unwrap();
    let attempt_nodes: Vec<_> = tree
        .root
        .children
        .iter()
        .filter(|n| n.span.kind == SpanKind::Attempt)
        .collect();
    assert_eq!(attempt_nodes.len(), 2);
    let second = attempt_nodes.iter().find(|n| n.span.arg == 1).unwrap();
    assert!(
        second
            .children
            .iter()
            .any(|n| n.span.kind == SpanKind::Task),
        "{}",
        tree.render_line()
    );
}

struct StallPipeline {
    started: Arc<AtomicU64>,
    release: Arc<Barrier>,
}

impl Pipeline for StallPipeline {
    fn name(&self) -> &'static str {
        "stall"
    }
    fn run(&self, _ctx: &MozartContext, _req: &Request) -> mozart_core::Result<Response> {
        self.started.fetch_add(1, Ordering::SeqCst);
        self.release.wait();
        Ok(Response::new("stalled"))
    }
}

/// A coalesced follower's trace contains a `CoalesceWait` span whose
/// `link` is the **leader's** trace id — the cross-trace edge that ties
/// a piggybacked request to the evaluation that actually served it.
#[test]
fn coalesced_follower_links_to_leader_trace() {
    let started = Arc::new(AtomicU64::new(0));
    let release = Arc::new(Barrier::new(2));
    let mut cfg = Config::with_workers(1);
    cfg.batch_override = Some(512);
    let service = PipelineService::builder()
        .workers(1)
        .max_inflight(1)
        .queue_depth(8)
        .session_config(cfg)
        .tracing(true)
        .builtin_pipelines()
        .pipeline(Arc::new(StallPipeline {
            started: started.clone(),
            release: release.clone(),
        }))
        .build();
    let req = Request::new().with("n", 2048).with("seed", 7u64);

    let (leader_trace, follower_trace) = std::thread::scope(|s| {
        // Occupy the single admission slot so the leader queues.
        let svc = service.clone();
        let occupant = s.spawn(move || {
            svc.session().call("stall", &Request::new()).unwrap();
        });
        while started.load(Ordering::SeqCst) == 0 {
            std::thread::sleep(Duration::from_millis(1));
        }
        let svc = service.clone();
        let ra = req.clone();
        let leader = s.spawn(move || svc.session().call_traced("black_scholes", &ra));
        while service.stats().waiting == 0 {
            std::thread::sleep(Duration::from_millis(1));
        }
        let svc = service.clone();
        let rb = req.clone();
        let follower = s.spawn(move || svc.session().call_traced("black_scholes", &rb));
        while service.stats().coalesce_waiting == 0 {
            std::thread::sleep(Duration::from_millis(1));
        }
        release.wait();
        occupant.join().unwrap();
        let (resp_a, trace_a) = leader.join().unwrap();
        let (resp_b, trace_b) = follower.join().unwrap();
        assert_eq!(resp_a.unwrap(), resp_b.unwrap(), "identical requests");
        (trace_a.unwrap(), trace_b.unwrap())
    });
    assert_ne!(leader_trace, follower_trace);
    assert_eq!(service.stats().coalesced_requests, 1);

    let follower_spans = service.trace_spans(follower_trace);
    let wait = follower_spans
        .iter()
        .find(|sp| sp.kind == SpanKind::CoalesceWait)
        .expect("the follower waited on the leader's batch");
    assert_eq!(
        wait.link, leader_trace,
        "the CoalesceWait span links the leader's trace"
    );
    // The follower ran no evaluation of its own; the leader's trace
    // carries the attempt (and the executor's work).
    assert!(!follower_spans.iter().any(|sp| sp.kind == SpanKind::Attempt));
    let leader_spans = service.trace_spans(leader_trace);
    assert!(leader_spans.iter().any(|sp| sp.kind == SpanKind::Attempt));
    assert!(leader_spans.iter().any(|sp| sp.kind == SpanKind::QueueWait));
}

/// Requests that consume most of their deadline land in the
/// slow-request log with their trace id and outcome.
#[test]
fn slow_requests_are_logged_with_trace_ids() {
    struct SleepPipeline;
    impl Pipeline for SleepPipeline {
        fn name(&self) -> &'static str {
            "sleepy"
        }
        fn run(&self, _ctx: &MozartContext, _req: &Request) -> mozart_core::Result<Response> {
            std::thread::sleep(Duration::from_millis(40));
            Ok(Response::new("slept"))
        }
    }
    let service = PipelineService::builder()
        .workers(1)
        .tracing(true)
        .pipeline(Arc::new(SleepPipeline))
        .build();
    let session = service.session();
    // 40 ms of work against a 50 ms deadline: completes, but slow.
    let (resp, trace) = session.call_traced("sleepy", &Request::new().with_deadline_ms(50));
    resp.unwrap();
    let slow = service.slow_requests();
    assert_eq!(slow.len(), 1, "{slow:?}");
    assert_eq!(slow[0].trace, trace.unwrap());
    assert_eq!(slow[0].pipeline, "sleepy");
    assert_eq!(slow[0].deadline_ms, 50);
    assert_eq!(slow[0].outcome, "ok");
    assert_eq!(service.stats().slow, 1);
    // A fast request under a roomy deadline is not logged.
    session
        .call("sleepy", &Request::new().with_deadline_ms(10_000))
        .unwrap();
    assert_eq!(service.slow_requests().len(), 1);
}
