//! Overload-resilience tests: circuit-breaker lifecycle under a
//! deterministic [`FaultPlan`], AIMD convergence as a property test,
//! and memory-ceiling shedding.

use std::sync::Arc;
use std::time::Duration;

use mozart_core::{membudget, Config, FaultKind, FaultPhase, FaultPlan, FaultPoint, MozartContext};
use mozart_serve::{
    AimdConfig, AimdController, Pipeline, PipelineService, Request, Response, ServeError,
};

/// A service whose evaluations fail with injected transient faults
/// until the plan's budget runs out — the breaker's natural prey.
fn faulty_service(fault_budget: u64, threshold: u32, cooldown: Duration) -> PipelineService {
    let mut cfg = Config::with_workers(1);
    cfg.batch_override = Some(512);
    cfg.fault_plan = Some(Arc::new(FaultPlan::new().point(
        FaultPoint::once(FaultPhase::Task, FaultKind::Error).times(fault_budget),
    )));
    PipelineService::builder()
        .workers(1)
        .session_config(cfg)
        // No retries: every injected fault is a post-retry transient
        // failure, so `threshold` calls move the breaker deterministically.
        .max_retries(0)
        .coalescing(false)
        .breaker(threshold, cooldown)
        .builtin_pipelines()
        .build()
}

#[test]
fn breaker_opens_half_opens_and_closes_under_fault_plan() {
    // Budget 3 = exactly the threshold: the pipeline heals the moment
    // the breaker opens, so the first half-open probe succeeds.
    let service = faulty_service(3, 3, Duration::from_millis(100));
    let session = service.session();
    let req = Request::new().with("n", 512);

    // Three consecutive injected faults: the calls fail with the
    // transient runtime error and the third one opens the breaker.
    for i in 0..3 {
        let err = session.call("black_scholes", &req).unwrap_err();
        assert_eq!(err.kind(), "runtime", "call {i}: {err}");
        assert!(err.is_transient(), "call {i}: {err}");
    }
    let states = service.breaker_states();
    assert_eq!(states.len(), 1, "{states:?}");
    assert_eq!(states[0].0, "black_scholes");
    assert_eq!(states[0].1, "open");
    assert_eq!(states[0].2, 1, "one open transition");
    assert_eq!(service.stats().breaker_open, 1);

    // Open: fast-fail with the typed error, without evaluating.
    let attempts_before = service.stats().started;
    let err = session.call("black_scholes", &req).unwrap_err();
    assert_eq!(
        err,
        ServeError::CircuitOpen {
            pipeline: "black_scholes".into()
        }
    );
    assert_eq!(
        service.stats().started,
        attempts_before,
        "an open breaker must shed before admission"
    );
    assert_eq!(service.stats().breaker_shed, 1);

    // After cooldown the next request is the half-open probe; the
    // fault budget is spent, so it succeeds and closes the breaker.
    std::thread::sleep(Duration::from_millis(150));
    session.call("black_scholes", &req).unwrap();
    let states = service.breaker_states();
    assert_eq!(states[0].1, "closed", "{states:?}");
    assert_eq!(service.stats().breaker_open, 0);
    // And the pipeline serves normally again.
    session.call("black_scholes", &req).unwrap();
}

#[test]
fn failed_probe_reopens_for_another_cooldown() {
    // Budget 4: three to open the breaker, a fourth for the probe.
    let service = faulty_service(4, 3, Duration::from_millis(80));
    let session = service.session();
    let req = Request::new().with("n", 512);

    for _ in 0..3 {
        session.call("black_scholes", &req).unwrap_err();
    }
    assert_eq!(service.breaker_states()[0].1, "open");

    std::thread::sleep(Duration::from_millis(120));
    // The probe is admitted (not CircuitOpen) but fails: re-open.
    let err = session.call("black_scholes", &req).unwrap_err();
    assert_eq!(err.kind(), "runtime", "probe must reach the pipeline");
    let states = service.breaker_states();
    assert_eq!(states[0].1, "open", "{states:?}");
    assert_eq!(states[0].2, 2, "failed probe counts as a second open");
    // Still fast-failing inside the new cooldown.
    let err = session.call("black_scholes", &req).unwrap_err();
    assert_eq!(err.kind(), "circuit_open");

    // Second probe succeeds (budget exhausted): recovered within one
    // half-open probe of the faults clearing.
    std::thread::sleep(Duration::from_millis(120));
    session.call("black_scholes", &req).unwrap();
    assert_eq!(service.breaker_states()[0].1, "closed");
}

/// The AIMD property the tentpole rests on: from any starting point,
/// against a service with a fixed concurrency capacity (good latency
/// at or under capacity, bad above), the limit converges to a sawtooth
/// around the capacity and stays there.
#[test]
fn aimd_converges_to_service_capacity_from_any_start() {
    let capacity = 20usize;
    for initial in [1usize, 64, 256] {
        let c = AimdController::new(AimdConfig {
            min_limit: 1,
            max_limit: 256,
            initial_limit: initial,
            target: Some(Duration::from_millis(10)),
            decrease_ratio_permille: 900,
        });
        let latency_at = |limit: usize| {
            if limit <= capacity {
                Duration::from_millis(1)
            } else {
                Duration::from_millis(50)
            }
        };
        // Converge...
        for _ in 0..8_000 {
            c.on_sample(latency_at(c.limit()));
        }
        // ...then the limit must stay in the sawtooth band around
        // capacity: never more than one step above, never below one
        // multiplicative cut (×0.9) minus rounding.
        let (mut lo, mut hi) = (usize::MAX, 0usize);
        for _ in 0..2_000 {
            c.on_sample(latency_at(c.limit()));
            lo = lo.min(c.limit());
            hi = hi.max(c.limit());
        }
        assert!(
            hi <= capacity + 1,
            "start {initial}: limit overshot to {hi} (capacity {capacity})"
        );
        assert!(
            lo + 1 >= capacity * 9 / 10,
            "start {initial}: limit collapsed to {lo} (capacity {capacity})"
        );
    }
}

/// A pipeline that allocates nothing, so the global memory counters in
/// this test move only when the test says so.
struct TinyPipeline;

impl Pipeline for TinyPipeline {
    fn name(&self) -> &'static str {
        "tiny"
    }
    fn run(&self, _ctx: &MozartContext, _req: &Request) -> mozart_core::Result<Response> {
        Ok(Response::new("ok"))
    }
}

#[test]
fn over_memory_sheds_with_typed_error_and_recovers() {
    const CEILING: u64 = 1 << 20;
    let service = PipelineService::builder()
        .workers(1)
        .memory_ceiling_bytes(CEILING)
        .pipeline(Arc::new(TinyPipeline))
        .build();
    let session = service.session();
    session.call("tiny", &Request::new()).unwrap();

    // Simulate live buffer traffic past the ceiling: admission must
    // shed with the typed error before evaluating.
    let inflate = (CEILING as usize) * 2;
    membudget::note_alloc(inflate);
    let err = session.call("tiny", &Request::new()).unwrap_err();
    match &err {
        ServeError::OverMemory {
            live_bytes,
            ceiling_bytes,
            ..
        } => {
            assert!(*live_bytes >= CEILING * 2, "{err}");
            assert_eq!(*ceiling_bytes, CEILING);
        }
        other => panic!("expected over_memory, got {other:?}"),
    }
    assert_eq!(err.kind(), "over_memory");
    let stats = service.stats();
    assert_eq!(stats.over_memory, 1, "{stats:?}");
    assert!(stats.memory_live_bytes >= CEILING * 2);
    assert_eq!(stats.memory_ceiling_bytes, CEILING);

    // Memory drains: the same request is admitted again.
    membudget::note_free(inflate);
    session.call("tiny", &Request::new()).unwrap();
    // Leave the process-global ceiling disarmed for other tests.
    membudget::set_ceiling(0);
}

#[test]
fn adaptive_service_seeds_its_target_from_live_latency() {
    // No pinned max_inflight: the adaptive limiter is on. With tracing
    // enabled the target seeds from the e2e histogram once a warmup's
    // worth of requests (32) complete.
    let service = PipelineService::builder()
        .workers(1)
        .tracing(true)
        .pipeline(Arc::new(TinyPipeline))
        .build();
    let session = service.session();
    let (_, target) = service.admission_limit();
    assert!(target.is_none(), "no target before warmup");
    for _ in 0..40 {
        session.call("tiny", &Request::new()).unwrap();
    }
    let (limit, target) = service.admission_limit();
    assert!(limit >= 1);
    assert!(
        target.is_some(),
        "target must seed from the e2e histogram after warmup"
    );
    assert!(service.stats().admission_limit >= 1);
}

#[test]
fn pinned_max_inflight_is_the_static_ablation() {
    let service = PipelineService::builder()
        .workers(1)
        .max_inflight(3)
        .pipeline(Arc::new(TinyPipeline))
        .build();
    let session = service.session();
    for _ in 0..40 {
        session.call("tiny", &Request::new()).unwrap();
    }
    let (limit, target) = service.admission_limit();
    assert_eq!(limit, 3, "a pinned limit never moves");
    assert!(target.is_none(), "the static ablation has no controller");
}
