//! Lexicon + suffix-rule part-of-speech tagger and feature extraction.
//!
//! A deliberately simple "preloaded model": a closed-class lexicon plus
//! morphological suffix rules, standing in for spaCy's statistical
//! tagger. What matters for the reproduction is the *shape* of the
//! computation — per-document, compute-heavy, side-effect-free — not
//! tagging accuracy.

use crate::tokenizer::{normalize, tokenize};

/// Universal part-of-speech tags (subset).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Pos {
    /// Noun.
    Noun,
    /// Verb.
    Verb,
    /// Adjective.
    Adj,
    /// Adverb.
    Adv,
    /// Determiner.
    Det,
    /// Pronoun.
    Pron,
    /// Adposition (prepositions).
    Adp,
    /// Conjunction.
    Conj,
    /// Punctuation.
    Punct,
    /// Everything else.
    Other,
}

/// A token with its tag.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Token {
    /// The surface form.
    pub text: String,
    /// The assigned part of speech.
    pub pos: Pos,
}

/// A tagged document plus its normalized text.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TaggedDoc {
    /// Tagged tokens in order.
    pub tokens: Vec<Token>,
    /// Normalized sentence text.
    pub normalized: String,
}

/// Per-document features extracted by the Speech Tag workload.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct DocFeatures {
    /// Token count.
    pub tokens: usize,
    /// Noun count.
    pub nouns: usize,
    /// Verb count.
    pub verbs: usize,
    /// Adjective count.
    pub adjectives: usize,
    /// Adverb count.
    pub adverbs: usize,
}

const DETS: &[&str] = &["the", "a", "an", "this", "that", "these", "those"];
const PRONS: &[&str] = &["it", "she", "he", "they", "we", "i", "you"];
const ADPS: &[&str] = &["in", "of", "on", "at", "by", "with", "from", "to"];
const CONJS: &[&str] = &["and", "but", "or", "nor", "so", "yet"];
const VERBS: &[&str] = &[
    "was",
    "is",
    "are",
    "were",
    "be",
    "been",
    "has",
    "have",
    "had",
    "loved",
    "hated",
    "watched",
    "runs",
    "feels",
    "developed",
    "walked",
    "jumped",
];
const ADJS: &[&str] = &[
    "good",
    "bad",
    "terrible",
    "excellent",
    "believable",
    "boring",
    "thrilling",
    "great",
    "awful",
];
const ADVS: &[&str] = &[
    "really",
    "very",
    "quickly",
    "slowly",
    "genuinely",
    "beautifully",
    "not",
    "never",
];

/// Tag one word using the lexicon, then suffix rules, then a noun
/// default (the classic baseline tagger design).
pub fn pos_tag(word: &str) -> Pos {
    let w = word.to_lowercase();
    if w.chars().all(|c| c.is_ascii_punctuation()) && !w.is_empty() {
        return Pos::Punct;
    }
    if DETS.contains(&w.as_str()) {
        return Pos::Det;
    }
    if PRONS.contains(&w.as_str()) {
        return Pos::Pron;
    }
    if ADPS.contains(&w.as_str()) {
        return Pos::Adp;
    }
    if CONJS.contains(&w.as_str()) {
        return Pos::Conj;
    }
    if VERBS.contains(&w.as_str()) {
        return Pos::Verb;
    }
    if ADJS.contains(&w.as_str()) {
        return Pos::Adj;
    }
    if ADVS.contains(&w.as_str()) {
        return Pos::Adv;
    }
    // Morphological suffix rules.
    if w.ends_with("ly") {
        return Pos::Adv;
    }
    if w.ends_with("ing") || w.ends_with("ed") {
        return Pos::Verb;
    }
    if w.ends_with("ous") || w.ends_with("ful") || w.ends_with("ive") || w.ends_with("able") {
        return Pos::Adj;
    }
    if w.chars().next().map(|c| c.is_alphabetic()).unwrap_or(false) {
        return Pos::Noun;
    }
    Pos::Other
}

/// Tag a document: tokenize, tag each token, normalize the sentence.
pub fn tag_doc(doc: &str) -> TaggedDoc {
    let tokens = tokenize(doc)
        .into_iter()
        .map(|t| {
            let pos = pos_tag(&t);
            Token { text: t, pos }
        })
        .collect();
    TaggedDoc {
        tokens,
        normalized: normalize(doc),
    }
}

/// Tag every document of a corpus and extract features — the paper's
/// Speech Tag workload body ("tags each word with a part of speech and
/// normalizes sentences using a preloaded model").
pub fn tag_corpus(corpus: &[String]) -> Vec<(TaggedDoc, DocFeatures)> {
    corpus
        .iter()
        .map(|doc| {
            let tagged = tag_doc(doc);
            let mut f = DocFeatures {
                tokens: tagged.tokens.len(),
                ..Default::default()
            };
            for t in &tagged.tokens {
                match t.pos {
                    Pos::Noun => f.nouns += 1,
                    Pos::Verb => f.verbs += 1,
                    Pos::Adj => f.adjectives += 1,
                    Pos::Adv => f.adverbs += 1,
                    _ => {}
                }
            }
            (tagged, f)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lexicon_and_suffix_rules() {
        assert_eq!(pos_tag("the"), Pos::Det);
        assert_eq!(pos_tag("The"), Pos::Det);
        assert_eq!(pos_tag("loved"), Pos::Verb);
        assert_eq!(pos_tag("good"), Pos::Adj);
        assert_eq!(pos_tag("quickly"), Pos::Adv);
        assert_eq!(pos_tag("movie"), Pos::Noun);
        assert_eq!(pos_tag("talking"), Pos::Verb); // -ing rule
        assert_eq!(pos_tag("wonderful"), Pos::Adj); // -ful rule
        assert_eq!(pos_tag("."), Pos::Punct);
        assert_eq!(pos_tag("42"), Pos::Other);
    }

    #[test]
    fn tag_doc_counts_line_up() {
        let d = tag_doc("The movie was really good.");
        assert_eq!(d.tokens.len(), 6);
        assert_eq!(d.tokens[0].pos, Pos::Det);
        assert_eq!(d.tokens[5].pos, Pos::Punct);
        assert_eq!(d.normalized, "the movie was really good");
    }

    #[test]
    fn tag_corpus_is_per_document() {
        // Concatenating per-chunk results equals tagging the whole
        // corpus — the SA correctness condition for the corpus split.
        let corpus: Vec<String> = (0..7)
            .map(|i| format!("doc {i} was really good and the acting developed slowly"))
            .collect();
        let whole = tag_corpus(&corpus);
        let mut merged = tag_corpus(&corpus[0..3]);
        merged.extend(tag_corpus(&corpus[3..7]));
        assert_eq!(whole.len(), merged.len());
        for (a, b) in whole.iter().zip(&merged) {
            assert_eq!(a.0, b.0);
            assert_eq!(a.1, b.1);
        }
    }

    #[test]
    fn features_count_tags() {
        let out = tag_corpus(&["the movie was really good".to_string()]);
        let f = out[0].1;
        assert_eq!(f.tokens, 5);
        assert_eq!(f.nouns, 1);
        assert_eq!(f.verbs, 1);
        assert_eq!(f.adjectives, 1);
        assert_eq!(f.adverbs, 1);
    }
}
