//! Tokenization, normalization, and the minibatch utility.

/// Split a document into word tokens, separating trailing punctuation.
///
/// A simple rule-based tokenizer in the spirit of spaCy's: whitespace
/// split, then peel leading/trailing punctuation into their own tokens.
pub fn tokenize(doc: &str) -> Vec<String> {
    let mut out = Vec::new();
    for raw in doc.split_whitespace() {
        let mut word = raw;
        let mut leading = Vec::new();
        while let Some(c) = word.chars().next() {
            if c.is_ascii_punctuation() {
                leading.push(c.to_string());
                word = &word[c.len_utf8()..];
            } else {
                break;
            }
        }
        let mut trailing = Vec::new();
        while let Some(c) = word.chars().last() {
            if c.is_ascii_punctuation() {
                trailing.push(c.to_string());
                word = &word[..word.len() - c.len_utf8()];
            } else {
                break;
            }
        }
        out.extend(leading);
        if !word.is_empty() {
            out.push(word.to_string());
        }
        out.extend(trailing.into_iter().rev());
    }
    out
}

/// Normalize a document: lowercase, strip punctuation, collapse spaces
/// (the "normalizes sentences" step of the Speech Tag workload).
pub fn normalize(doc: &str) -> String {
    let mut out = String::with_capacity(doc.len());
    let mut last_space = true;
    for c in doc.chars() {
        if c.is_alphanumeric() {
            out.extend(c.to_lowercase());
            last_space = false;
        } else if !last_space {
            out.push(' ');
            last_space = true;
        }
    }
    while out.ends_with(' ') {
        out.pop();
    }
    out
}

/// Partition a corpus into contiguous batches of at most `size`
/// documents (spaCy's `util.minibatch`). The final batch may be short.
///
/// # Panics
///
/// Panics if `size == 0`.
pub fn minibatch<T: Clone>(corpus: &[T], size: usize) -> Vec<Vec<T>> {
    assert!(size > 0, "minibatch size must be positive");
    corpus.chunks(size).map(|c| c.to_vec()).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tokenize_peels_punctuation() {
        assert_eq!(
            tokenize("Good movie, really!"),
            vec!["Good", "movie", ",", "really", "!"]
        );
        assert_eq!(tokenize("(nice)"), vec!["(", "nice", ")"]);
        assert_eq!(tokenize("  spaced   out  "), vec!["spaced", "out"]);
        assert!(tokenize("").is_empty());
        assert_eq!(tokenize("..."), vec![".", ".", "."]);
    }

    #[test]
    fn normalize_lowercases_and_strips() {
        assert_eq!(normalize("The Movie, was GOOD!"), "the movie was good");
        assert_eq!(normalize("a  b"), "a b");
        assert_eq!(normalize("!!!"), "");
    }

    #[test]
    fn minibatch_covers_everything_in_order() {
        let docs: Vec<i32> = (0..10).collect();
        let batches = minibatch(&docs, 4);
        assert_eq!(batches.len(), 3);
        assert_eq!(batches[0], vec![0, 1, 2, 3]);
        assert_eq!(batches[2], vec![8, 9]);
        let flat: Vec<i32> = batches.into_iter().flatten().collect();
        assert_eq!(flat, docs);
    }

    #[test]
    #[should_panic(expected = "minibatch size must be positive")]
    fn minibatch_rejects_zero() {
        minibatch(&[1], 0);
    }
}
