//! # textproc — a spaCy-style natural language processing library
//!
//! The reproduction's stand-in for spaCy (§7): a tokenizer, a
//! lexicon + suffix-rule part-of-speech tagger, sentence normalization,
//! and the `minibatch` utility the paper's split type is built on ("a
//! split type that uses spaCy's builtin minibatch tokenizer to split a
//! corpus of text").
//!
//! Tagging is per-document, so any function over a corpus that maps
//! documents independently satisfies the SA correctness condition and
//! can be parallelized by splitting the corpus. The library knows
//! nothing about Mozart.

#![warn(missing_docs)]

pub mod tagger;
pub mod tokenizer;

pub use tagger::{pos_tag, tag_corpus, DocFeatures, Pos, TaggedDoc, Token};
pub use tokenizer::{minibatch, normalize, tokenize};

/// A corpus is a list of documents (plain strings), like the iterable
/// of texts handed to `nlp.pipe` in spaCy.
pub type Corpus = Vec<String>;

/// Deterministic synthetic corpus with IMDb-review-like vocabulary,
/// standing in for the sentiment dataset the paper's Speech Tag
/// workload processes.
pub fn synthetic_corpus(docs: usize, words_per_doc: usize, seed: u64) -> Corpus {
    const VOCAB: &[&str] = &[
        "the",
        "movie",
        "was",
        "really",
        "good",
        "acting",
        "plot",
        "slowly",
        "developed",
        "characters",
        "loved",
        "hated",
        "ending",
        "scenes",
        "director",
        "quickly",
        "walked",
        "believable",
        "performance",
        "a",
        "an",
        "in",
        "of",
        "very",
        "terrible",
        "excellent",
        "watched",
        "films",
        "story",
        "feels",
        "genuinely",
        "boring",
        "thrilling",
        "and",
        "but",
        "it",
        "she",
        "he",
        "they",
        "runs",
        "jumped",
        "talking",
        "beautifully",
    ];
    let mut state = seed.wrapping_mul(0x9e3779b97f4a7c15).wrapping_add(1);
    let mut next = || {
        // xorshift64*
        state ^= state >> 12;
        state ^= state << 25;
        state ^= state >> 27;
        state.wrapping_mul(0x2545f4914f6cdd1d)
    };
    (0..docs)
        .map(|_| {
            let mut words = Vec::with_capacity(words_per_doc);
            for i in 0..words_per_doc {
                let w = VOCAB[(next() % VOCAB.len() as u64) as usize];
                if i > 0 && i % 12 == 0 {
                    words.push(format!("{w}."));
                } else {
                    words.push(w.to_string());
                }
            }
            words.join(" ")
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn synthetic_corpus_is_deterministic() {
        let a = synthetic_corpus(5, 20, 7);
        let b = synthetic_corpus(5, 20, 7);
        assert_eq!(a, b);
        assert_eq!(a.len(), 5);
        assert!(a[0].split_whitespace().count() == 20);
        let c = synthetic_corpus(5, 20, 8);
        assert_ne!(a, c);
    }
}
