//! Chaos suite: deterministic fault injection across the executor's
//! split/task/merge phases, panic isolation, pool-worker respawn,
//! cooperative cancellation, and retry determinism.
//!
//! The invariants under test (ISSUE 6):
//!
//! * every injected or organic fault surfaces as a **typed** error
//!   (`TaskPanicked` / `Injected` / `Cancelled`) — never a hang, never
//!   an unwinding caller;
//! * a panicking batch fails only its job: the worker pool survives,
//!   and a worker thread that dies anyway is respawned;
//! * a retried evaluation (fault budget spent) produces results
//!   **bit-identical** to a fault-free run.

use std::ops::Range;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use mozart_core::annotation::{concrete, missing, Annotation};
use mozart_core::faultinject::{silence_injected_panics, WorkerAbort};
use mozart_core::prelude::*;

// ---------------------------------------------------------------------
// A toy functional library over owned chunks (merge by concatenation),
// plus an in-place variant over `SharedVec` (placement-write path).
// ---------------------------------------------------------------------

#[derive(Debug, Clone)]
struct Chunk(Arc<Vec<f64>>);

impl mozart_core::value::DataObject for Chunk {
    fn type_name(&self) -> &'static str {
        "Chunk"
    }
    fn as_any(&self) -> &dyn std::any::Any {
        self
    }
}

struct ChunkSplit;

impl Splitter for ChunkSplit {
    fn name(&self) -> &'static str {
        "ChunkSplit"
    }
    fn construct(&self, ctor_args: &[&DataValue]) -> Result<Params> {
        let c = ctor_args[0]
            .downcast_ref::<Chunk>()
            .ok_or(Error::Library("ChunkSplit ctor".into()))?;
        Ok(vec![c.0.len() as i64])
    }
    fn info(&self, _arg: &DataValue, params: &Params) -> Result<RuntimeInfo> {
        Ok(RuntimeInfo {
            total_elements: params[0] as u64,
            elem_size_bytes: 8,
        })
    }
    fn split(
        &self,
        arg: &DataValue,
        range: Range<u64>,
        params: &Params,
    ) -> Result<Option<DataValue>> {
        let c = arg
            .downcast_ref::<Chunk>()
            .ok_or(Error::Library("ChunkSplit split".into()))?;
        let total = params[0] as u64;
        if range.start >= total {
            return Ok(None);
        }
        let end = range.end.min(total) as usize;
        Ok(Some(DataValue::new(Chunk(Arc::new(
            c.0[range.start as usize..end].to_vec(),
        )))))
    }
    fn merge(
        &self,
        pieces: Vec<DataValue>,
        _params: &Params,
        _total_elements: u64,
    ) -> Result<DataValue> {
        let mut out = Vec::new();
        for p in pieces {
            let c = p
                .downcast_ref::<Chunk>()
                .ok_or(Error::Library("ChunkSplit merge".into()))?;
            out.extend_from_slice(&c.0);
        }
        Ok(DataValue::new(Chunk(Arc::new(out))))
    }
}

/// Like [`ChunkSplit`], but `merge` panics while its budget lasts —
/// models an organic panic inside foreign merge code (local worker
/// merges and the overlapped final merge both route through here).
struct FlakyMergeSplit {
    panic_budget: AtomicU64,
}

impl Splitter for FlakyMergeSplit {
    fn name(&self) -> &'static str {
        "FlakyMergeSplit"
    }
    fn construct(&self, ctor_args: &[&DataValue]) -> Result<Params> {
        ChunkSplit.construct(ctor_args)
    }
    fn info(&self, arg: &DataValue, params: &Params) -> Result<RuntimeInfo> {
        ChunkSplit.info(arg, params)
    }
    fn split(&self, arg: &DataValue, r: Range<u64>, p: &Params) -> Result<Option<DataValue>> {
        ChunkSplit.split(arg, r, p)
    }
    fn merge(&self, pieces: Vec<DataValue>, p: &Params, total: u64) -> Result<DataValue> {
        if self
            .panic_budget
            .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |b| b.checked_sub(1))
            .is_ok()
        {
            panic!("organic merge panic (chaos test)");
        }
        ChunkSplit.merge(pieces, p, total)
    }
}

/// Functional chunk scaling with an optional per-batch sleep and an
/// optional per-batch panic behaviour.
#[derive(Clone, Copy)]
enum Misbehave {
    No,
    /// `panic!` with a `String` payload on pool worker threads only
    /// (named `mozart-worker-*`); the caller's driver loop stays sane.
    PanicOnPoolThreads,
    /// Unwind the [`WorkerAbort`] marker on pool worker threads only:
    /// the phase wrappers re-raise it, so the thread actually dies and
    /// the respawn supervisor must replace it.
    KillPoolThreads,
}

fn on_pool_thread() -> bool {
    std::thread::current()
        .name()
        .is_some_and(|n| n.starts_with("mozart-worker"))
}

fn chunk_scale(sleep: Duration, misbehave: Misbehave) -> Arc<Annotation> {
    chunk_scale_with(Arc::new(ChunkSplit), sleep, misbehave)
}

fn chunk_scale_with(
    splitter: Arc<dyn Splitter>,
    sleep: Duration,
    misbehave: Misbehave,
) -> Arc<Annotation> {
    Annotation::new("chaos_scale", move |inv| {
        match misbehave {
            Misbehave::No => {}
            Misbehave::PanicOnPoolThreads if on_pool_thread() => {
                panic!("organic task panic (chaos test)")
            }
            Misbehave::KillPoolThreads if on_pool_thread() => {
                std::panic::panic_any(WorkerAbort("chaos kill".into()))
            }
            _ => {}
        }
        if !sleep.is_zero() {
            std::thread::sleep(sleep);
        }
        let c = inv.arg::<Chunk>(0)?;
        let k = inv.float(1)?;
        Ok(Some(DataValue::new(Chunk(Arc::new(
            c.0.iter().map(|x| x * k).collect(),
        )))))
    })
    .arg("xs", concrete(splitter.clone(), vec![0]))
    .arg("k", missing())
    .ret(concrete(splitter, vec![0]))
    .build()
}

/// In-place scaling over `SharedVec` through `ArraySplit` — the
/// placement-write merge strategy (zero-copy slice views, no functional
/// merge at all when placement is on).
fn vec_scale() -> Arc<Annotation> {
    Annotation::new("chaos_vec_scale", |inv| {
        let piece = inv.arg::<SliceView>(0)?;
        let k = inv.float(1)?;
        // SAFETY: the executor hands each worker disjoint ranges.
        for x in unsafe { piece.as_slice_mut() } {
            *x *= k;
        }
        Ok(None)
    })
    // MKL convention: split parameters come from the explicit size
    // argument, never from the mutable array itself.
    .mut_arg("xs", concrete(Arc::new(ArraySplit), vec![2]))
    .arg("k", missing())
    .arg("n", missing())
    .build()
}

fn chaos_ctx(
    pool: Option<&PoolHandle>,
    workers: usize,
    placement: bool,
    plan: Option<Arc<FaultPlan>>,
) -> MozartContext {
    let mut cfg = Config::with_workers(workers);
    cfg.batch_override = Some(1);
    cfg.placement_merge = placement;
    cfg.fault_plan = plan;
    let ctx = MozartContext::new(cfg);
    if let Some(p) = pool {
        ctx.attach_pool(p.clone());
    }
    ctx
}

/// Run one functional evaluation and return the output elements.
fn run_chunks(ctx: &MozartContext, annot: &Arc<Annotation>, n: u64, k: f64) -> Result<Vec<f64>> {
    let data = Chunk(Arc::new((0..n).map(|i| i as f64).collect()));
    let fut = ctx
        .call(
            annot,
            vec![DataValue::new(data), DataValue::new(FloatValue(k))],
        )?
        .ok_or(Error::ValueUnavailable)?;
    let out = fut.get()?;
    let c = out
        .downcast_ref::<Chunk>()
        .ok_or(Error::Library("not a Chunk".into()))?;
    Ok(c.0.as_ref().clone())
}

/// Run one in-place evaluation and return the mutated elements.
fn run_vec(ctx: &MozartContext, n: u64, k: f64) -> Result<Vec<f64>> {
    let data = SharedVec::from_vec((0..n).map(|i| i as f64).collect());
    ctx.call(
        &vec_scale(),
        vec![
            DataValue::new(VecValue(data.clone())),
            DataValue::new(FloatValue(k)),
            DataValue::new(IntValue(n as i64)),
        ],
    )?;
    ctx.evaluate()?;
    Ok(data.as_slice().to_vec())
}

fn expected(n: u64, k: f64) -> Vec<f64> {
    (0..n).map(|i| i as f64 * k).collect()
}

// ---------------------------------------------------------------------
// Tests
// ---------------------------------------------------------------------

#[test]
fn injected_panics_surface_typed_in_every_phase_and_merge_mode() {
    silence_injected_panics();
    let pool = PoolHandle::new(2);
    let n = 16u64;
    for placement in [true, false] {
        for phase in [FaultPhase::Split, FaultPhase::Task, FaultPhase::Merge] {
            for functional in [true, false] {
                let plan =
                    Arc::new(FaultPlan::new().point(FaultPoint::once(phase, FaultKind::Panic)));
                let ctx = chaos_ctx(Some(&pool), 3, placement, Some(plan.clone()));
                let err = if functional {
                    run_chunks(&ctx, &chunk_scale(Duration::ZERO, Misbehave::No), n, 2.0)
                        .unwrap_err()
                } else {
                    run_vec(&ctx, n, 2.0).unwrap_err()
                };
                match &err {
                    Error::TaskPanicked { stage, payload } => {
                        assert_eq!(*stage, phase, "panic attributed to its phase");
                        assert!(payload.contains("injected"), "payload: {payload}");
                    }
                    other => panic!(
                        "placement={placement} phase={phase} functional={functional}: \
                         expected TaskPanicked, got {other:?}"
                    ),
                }
                assert_eq!(plan.fired(), 1, "explicit point fires exactly once");

                // The pool survived: a clean evaluation still works.
                let ctx = chaos_ctx(Some(&pool), 3, placement, None);
                let out =
                    run_chunks(&ctx, &chunk_scale(Duration::ZERO, Misbehave::No), n, 3.0).unwrap();
                assert_eq!(out, expected(n, 3.0));
            }
        }
    }
    assert_eq!(
        pool.stats().respawned_workers,
        0,
        "caught panics must not cost worker threads"
    );
}

#[test]
fn injected_errors_are_typed_and_delays_only_slow_things_down() {
    let pool = PoolHandle::new(1);
    let n = 8u64;
    let plan =
        Arc::new(FaultPlan::new().point(FaultPoint::once(FaultPhase::Task, FaultKind::Error)));
    let ctx = chaos_ctx(Some(&pool), 2, true, Some(plan));
    let err = run_chunks(&ctx, &chunk_scale(Duration::ZERO, Misbehave::No), n, 2.0).unwrap_err();
    match &err {
        Error::Injected(m) => assert!(m.contains("task"), "{m}"),
        other => panic!("expected Injected, got {other:?}"),
    }

    let plan = Arc::new(FaultPlan::new().point(FaultPoint::once(
        FaultPhase::Task,
        FaultKind::Delay(Duration::from_millis(20)),
    )));
    let ctx = chaos_ctx(Some(&pool), 2, true, Some(plan.clone()));
    let t0 = Instant::now();
    let out = run_chunks(&ctx, &chunk_scale(Duration::ZERO, Misbehave::No), n, 2.0).unwrap();
    assert_eq!(out, expected(n, 2.0), "a delayed batch still computes");
    assert!(t0.elapsed() >= Duration::from_millis(20));
    assert_eq!(plan.fired(), 1);
}

#[test]
fn retried_evaluation_is_bit_identical_to_fault_free() {
    silence_injected_panics();
    let pool = PoolHandle::new(2);
    let n = 64u64;
    let clean = {
        let ctx = chaos_ctx(Some(&pool), 3, true, None);
        run_chunks(&ctx, &chunk_scale(Duration::ZERO, Misbehave::No), n, 2.5).unwrap()
    };
    for kind in [FaultKind::Panic, FaultKind::Error] {
        // The once-budget is the retry contract: attempt 1 faults,
        // attempt 2 (fresh context, same plan) runs clean.
        let plan = Arc::new(FaultPlan::new().point(FaultPoint::once(FaultPhase::Task, kind)));
        let ctx = chaos_ctx(Some(&pool), 3, true, Some(plan.clone()));
        let err = run_chunks(&ctx, &chunk_scale(Duration::ZERO, Misbehave::No), n, 2.5);
        assert!(err.is_err(), "first attempt must fault");
        let retry_ctx = chaos_ctx(Some(&pool), 3, true, Some(plan));
        let retried = run_chunks(
            &retry_ctx,
            &chunk_scale(Duration::ZERO, Misbehave::No),
            n,
            2.5,
        )
        .unwrap();
        assert_eq!(
            retried.iter().map(|x| x.to_bits()).collect::<Vec<_>>(),
            clean.iter().map(|x| x.to_bits()).collect::<Vec<_>>(),
            "retried bytes must equal the fault-free run"
        );
    }
}

#[test]
fn deadline_token_cancels_mid_evaluation_at_a_batch_boundary() {
    let pool = PoolHandle::new(1);
    let n = 200u64;
    let ctx = chaos_ctx(Some(&pool), 2, true, None);
    ctx.set_cancel_token(CancelToken::with_deadline(
        Instant::now() + Duration::from_millis(15),
    ));
    let err = run_chunks(
        &ctx,
        &chunk_scale(Duration::from_millis(2), Misbehave::No),
        n,
        2.0,
    )
    .unwrap_err();
    assert!(
        matches!(err, Error::Cancelled(_)),
        "expected Cancelled, got {err:?}"
    );
    assert!(
        ctx.stats().batches < n,
        "cancellation must abandon remaining batches"
    );

    // An explicitly cancelled token sheds before any batch runs.
    let ctx = chaos_ctx(Some(&pool), 2, true, None);
    let token = CancelToken::new();
    token.cancel();
    ctx.set_cancel_token(token);
    let err = run_chunks(&ctx, &chunk_scale(Duration::ZERO, Misbehave::No), 8, 2.0).unwrap_err();
    assert!(matches!(err, Error::Cancelled(_)), "{err:?}");
}

#[test]
fn killed_pool_workers_are_respawned_and_keep_serving() {
    silence_injected_panics();
    let pool = PoolHandle::new(2);
    let n = 64u64;
    // Pool threads unwind the WorkerAbort marker on their first batch
    // (the caller's own driver loop keeps going): the job must fail
    // typed, not hang, and the dead threads must be replaced.
    let ctx = chaos_ctx(Some(&pool), 3, true, None);
    let err = run_chunks(
        &ctx,
        &chunk_scale(Duration::from_millis(1), Misbehave::KillPoolThreads),
        n,
        2.0,
    )
    .unwrap_err();
    match &err {
        Error::TaskPanicked { stage, .. } => {
            assert_eq!(
                *stage,
                FaultPhase::Worker,
                "backstop attributes the driver loop"
            )
        }
        other => panic!("expected TaskPanicked, got {other:?}"),
    }
    let stats = pool.stats();
    assert!(
        stats.respawned_workers >= 1,
        "at least one pool thread died and was respawned: {stats:?}"
    );
    assert!(stats.panicked_batches >= 1, "{stats:?}");
    assert_eq!(stats.workers, 2, "pool size is invariant");

    // Liveness: the respawned threads serve follow-up work — a sleepy
    // multi-batch job on session 77 must see pool-side participation.
    let ctx = chaos_ctx(Some(&pool), 3, true, None);
    ctx.set_session_tag(77);
    let out = run_chunks(
        &ctx,
        &chunk_scale(Duration::from_millis(1), Misbehave::No),
        n,
        4.0,
    )
    .unwrap();
    assert_eq!(out, expected(n, 4.0));
    let sess = pool
        .stats()
        .sessions
        .iter()
        .find(|s| s.session == 77)
        .cloned()
        .expect("session accounted");
    assert!(
        sess.worker_batches > 0,
        "respawned workers must claim batches: {sess:?}"
    );
}

#[test]
fn injected_kill_worker_fault_fails_typed_and_pool_survives() {
    silence_injected_panics();
    let pool = PoolHandle::new(2);
    let n = 64u64;
    let plan = Arc::new(
        FaultPlan::new().point(FaultPoint::once(FaultPhase::Task, FaultKind::KillWorker).times(n)),
    );
    let ctx = chaos_ctx(Some(&pool), 3, true, Some(plan.clone()));
    let err = run_chunks(
        &ctx,
        &chunk_scale(Duration::from_millis(1), Misbehave::No),
        n,
        2.0,
    )
    .unwrap_err();
    assert!(
        matches!(err, Error::TaskPanicked { .. }),
        "expected TaskPanicked, got {err:?}"
    );
    assert!(plan.fired() >= 1);
    // Whether the fault hit the caller (degraded to a caught panic) or
    // a pool thread (died, respawned), the pool keeps serving.
    let ctx = chaos_ctx(Some(&pool), 3, true, None);
    let out = run_chunks(&ctx, &chunk_scale(Duration::ZERO, Misbehave::No), n, 5.0).unwrap();
    assert_eq!(out, expected(n, 5.0));
}

#[test]
fn organic_task_panic_fails_job_not_worker() {
    let pool = PoolHandle::new(2);
    let n = 64u64;
    let before = pool.stats().respawned_workers;
    let ctx = chaos_ctx(Some(&pool), 3, true, None);
    let err = run_chunks(
        &ctx,
        &chunk_scale(Duration::from_millis(1), Misbehave::PanicOnPoolThreads),
        n,
        2.0,
    )
    .unwrap_err();
    match &err {
        Error::TaskPanicked { stage, payload } => {
            assert_eq!(*stage, FaultPhase::Task);
            assert!(payload.contains("organic task panic"), "{payload}");
        }
        other => panic!("expected TaskPanicked, got {other:?}"),
    }
    let stats = pool.stats();
    assert!(stats.panicked_batches >= 1, "{stats:?}");
    assert_eq!(
        stats.respawned_workers, before,
        "a caught panic must not cost a worker thread"
    );
    // Same pool, clean run.
    let ctx = chaos_ctx(Some(&pool), 3, true, None);
    let out = run_chunks(&ctx, &chunk_scale(Duration::ZERO, Misbehave::No), n, 3.0).unwrap();
    assert_eq!(out, expected(n, 3.0));
}

#[test]
fn organic_merge_panics_are_typed_with_and_without_overlap() {
    // The flaky splitter panics on its first merge call — wherever that
    // lands (worker-local merge, or the final merge that placement mode
    // overlaps as a pool side job), it must surface typed.
    for placement in [true, false] {
        let pool = PoolHandle::new(2);
        let splitter = Arc::new(FlakyMergeSplit {
            panic_budget: AtomicU64::new(1),
        });
        let annot = chunk_scale_with(splitter, Duration::ZERO, Misbehave::No);
        let ctx = chaos_ctx(Some(&pool), 3, placement, None);
        let err = run_chunks(&ctx, &annot, 32, 2.0).unwrap_err();
        match &err {
            Error::TaskPanicked { stage, payload } => {
                assert_eq!(*stage, FaultPhase::Merge, "placement={placement}");
                assert!(payload.contains("organic merge panic"), "{payload}");
            }
            other => panic!("placement={placement}: expected TaskPanicked, got {other:?}"),
        }
        // Budget spent: the retry merges cleanly and bit-identically.
        let ctx = chaos_ctx(Some(&pool), 3, placement, None);
        let out = run_chunks(&ctx, &annot, 32, 2.0).unwrap();
        assert_eq!(out, expected(32, 2.0));
    }
}

#[test]
fn scoped_no_pool_path_reports_typed_panics() {
    silence_injected_panics();
    // Regression: the scoped (pool-less) execution path used to unwrap
    // scoped-thread join results, re-raising worker panics into the
    // caller instead of reporting them as typed errors.
    let plan =
        Arc::new(FaultPlan::new().point(FaultPoint::once(FaultPhase::Task, FaultKind::Panic)));
    let ctx = chaos_ctx(None, 3, true, Some(plan));
    let err = run_chunks(&ctx, &chunk_scale(Duration::ZERO, Misbehave::No), 32, 2.0).unwrap_err();
    assert!(
        matches!(err, Error::TaskPanicked { .. }),
        "expected TaskPanicked, got {err:?}"
    );
    // And the context stays usable afterwards.
    let ctx = chaos_ctx(None, 3, true, None);
    let out = run_chunks(&ctx, &chunk_scale(Duration::ZERO, Misbehave::No), 32, 2.0).unwrap();
    assert_eq!(out, expected(32, 2.0));
}

#[test]
fn quiet_fault_plan_perturbs_nothing() {
    let pool = PoolHandle::new(1);
    let n = 48u64;
    let clean = {
        let ctx = chaos_ctx(Some(&pool), 2, true, None);
        run_chunks(&ctx, &chunk_scale(Duration::ZERO, Misbehave::No), n, 1.5).unwrap()
    };
    let plan = Arc::new(FaultPlan::seeded(9, 0, None, FaultKind::Panic));
    let ctx = chaos_ctx(Some(&pool), 2, true, Some(plan.clone()));
    let out = run_chunks(&ctx, &chunk_scale(Duration::ZERO, Misbehave::No), n, 1.5).unwrap();
    assert_eq!(
        out.iter().map(|x| x.to_bits()).collect::<Vec<_>>(),
        clean.iter().map(|x| x.to_bits()).collect::<Vec<_>>()
    );
    assert_eq!(plan.fired(), 0);
}
