//! End-to-end tests of the capture → plan → execute pipeline using a
//! small synthetic "library" annotated with split annotations.

use std::ops::Range;
use std::sync::Arc;

use mozart_core::annotation::{concrete, generic, missing, unknown, Annotation};
use mozart_core::prelude::*;
use mozart_core::registry::register_default_splitter;

// ---------------------------------------------------------------------
// A toy library: plain functions over `SharedVec<f64>` and `Vec<f64>`.
// ---------------------------------------------------------------------

fn lib_scale(xs: &mut [f64], k: f64) {
    for x in xs {
        *x *= k;
    }
}

fn lib_add(a: &[f64], b: &[f64], out: &mut [f64]) {
    for i in 0..out.len() {
        out[i] = a[i] + b[i];
    }
}

fn lib_sum(xs: &[f64]) -> f64 {
    xs.iter().sum()
}

fn lib_filter_nonneg(xs: &[f64]) -> Vec<f64> {
    xs.iter().copied().filter(|x| *x >= 0.0).collect()
}

// ---------------------------------------------------------------------
// Splitting API implementations for the toy library.
// ---------------------------------------------------------------------

/// An owned piece of `f64`s (functional style, like a NumPy result).
#[derive(Debug, Clone)]
struct OwnedChunk(Arc<Vec<f64>>);

impl mozart_core::value::DataObject for OwnedChunk {
    fn type_name(&self) -> &'static str {
        "OwnedChunk"
    }
    fn as_any(&self) -> &dyn std::any::Any {
        self
    }
}

/// Splits `OwnedChunk` values by copying ranges; merges by concatenation.
struct ChunkSplit;

impl Splitter for ChunkSplit {
    fn name(&self) -> &'static str {
        "ChunkSplit"
    }
    fn construct(&self, ctor_args: &[&DataValue]) -> Result<Params> {
        let c = ctor_args[0]
            .downcast_ref::<OwnedChunk>()
            .ok_or(Error::Library("ChunkSplit ctor".into()))?;
        Ok(vec![c.0.len() as i64])
    }
    fn info(&self, _arg: &DataValue, params: &Params) -> Result<RuntimeInfo> {
        Ok(RuntimeInfo {
            total_elements: params[0] as u64,
            elem_size_bytes: 8,
        })
    }
    fn split(
        &self,
        arg: &DataValue,
        range: Range<u64>,
        params: &Params,
    ) -> Result<Option<DataValue>> {
        let c = arg
            .downcast_ref::<OwnedChunk>()
            .ok_or(Error::Library("ChunkSplit split".into()))?;
        let total = params[0] as u64;
        if range.start >= total {
            return Ok(None);
        }
        let end = range.end.min(total) as usize;
        Ok(Some(DataValue::new(OwnedChunk(Arc::new(
            c.0[range.start as usize..end].to_vec(),
        )))))
    }
    fn merge(
        &self,
        pieces: Vec<DataValue>,
        _params: &Params,
        _total_elements: u64,
    ) -> Result<DataValue> {
        let mut out = Vec::new();
        for p in pieces {
            let c = p
                .downcast_ref::<OwnedChunk>()
                .ok_or(Error::Library("ChunkSplit merge".into()))?;
            out.extend_from_slice(&c.0);
        }
        Ok(DataValue::new(OwnedChunk(Arc::new(out))))
    }
}

/// Merge-only split type that keeps the sole piece (for single-batch
/// whole-value results).
struct FirstPiece;

impl Splitter for FirstPiece {
    fn name(&self) -> &'static str {
        "FirstPiece"
    }
    fn construct(&self, _ctor_args: &[&DataValue]) -> Result<Params> {
        Ok(vec![])
    }
    fn info(&self, _arg: &DataValue, _params: &Params) -> Result<RuntimeInfo> {
        Err(Error::Library("FirstPiece is merge-only".into()))
    }
    fn split(&self, _arg: &DataValue, _r: Range<u64>, _p: &Params) -> Result<Option<DataValue>> {
        Err(Error::Library("FirstPiece is merge-only".into()))
    }
    fn merge(
        &self,
        mut pieces: Vec<DataValue>,
        _params: &Params,
        _total_elements: u64,
    ) -> Result<DataValue> {
        pieces.drain(..).next().ok_or(Error::Merge {
            split_type: "FirstPiece",
            message: "no pieces".into(),
        })
    }
}

/// Merge-only split type for scalar sum reductions.
struct SumReduce;

impl Splitter for SumReduce {
    fn name(&self) -> &'static str {
        "SumReduce"
    }
    fn construct(&self, _ctor_args: &[&DataValue]) -> Result<Params> {
        Ok(vec![])
    }
    fn info(&self, _arg: &DataValue, _params: &Params) -> Result<RuntimeInfo> {
        Err(Error::Library("SumReduce is merge-only".into()))
    }
    fn split(&self, _arg: &DataValue, _r: Range<u64>, _p: &Params) -> Result<Option<DataValue>> {
        Err(Error::Library("SumReduce is merge-only".into()))
    }
    fn merge(
        &self,
        pieces: Vec<DataValue>,
        _params: &Params,
        _total_elements: u64,
    ) -> Result<DataValue> {
        let mut acc = 0.0;
        for p in pieces {
            acc += p.downcast_ref::<FloatValue>().map(|f| f.0).unwrap_or(0.0);
        }
        Ok(DataValue::new(FloatValue(acc)))
    }
}

// ---------------------------------------------------------------------
// Annotations (what a library annotator would write).
// ---------------------------------------------------------------------

fn scale_annotation() -> Arc<Annotation> {
    Annotation::new("scale", |inv| {
        let piece = inv.arg::<SliceView>(0)?;
        let k = inv.float(1)?;
        // SAFETY: the executor hands each worker disjoint ranges.
        lib_scale(unsafe { piece.as_slice_mut() }, k);
        Ok(None)
    })
    // MKL convention: split parameters come from the explicit size
    // argument, never from the mutable array itself.
    .mut_arg("xs", concrete(Arc::new(ArraySplit), vec![2]))
    .arg("k", missing())
    .arg("n", missing())
    .build()
}

fn add_annotation() -> Arc<Annotation> {
    Annotation::new("add", |inv| {
        let a = inv.arg::<SliceView>(0)?;
        let b = inv.arg::<SliceView>(1)?;
        let out = inv.arg::<SliceView>(2)?;
        // SAFETY: disjoint ranges per worker; `out` may alias `a`/`b`
        // only with identical ranges (elementwise ops tolerate this).
        unsafe { lib_add(a.as_slice(), b.as_slice(), out.as_slice_mut()) };
        Ok(None)
    })
    .arg("a", generic(0))
    .arg("b", generic(0))
    .mut_arg("out", generic(0))
    .build()
}

fn sum_annotation() -> Arc<Annotation> {
    Annotation::new("sum", |inv| {
        let piece = inv.arg::<SliceView>(0)?;
        // SAFETY: disjoint ranges per worker.
        let s = lib_sum(unsafe { piece.as_slice() });
        Ok(Some(DataValue::new(FloatValue(s))))
    })
    .arg("xs", concrete(Arc::new(ArraySplit), vec![0]))
    .ret(concrete(Arc::new(SumReduce), vec![]))
    .build()
}

fn filter_annotation() -> Arc<Annotation> {
    Annotation::new("filter_nonneg", |inv| {
        let c = inv.arg::<OwnedChunk>(0)?;
        Ok(Some(DataValue::new(OwnedChunk(Arc::new(
            lib_filter_nonneg(&c.0),
        )))))
    })
    .arg("xs", generic(0))
    .ret(unknown(Arc::new(ChunkSplit)))
    .build()
}

fn chunk_scale_annotation() -> Arc<Annotation> {
    Annotation::new("chunk_scale", |inv| {
        let c = inv.arg::<OwnedChunk>(0)?;
        let k = inv.float(1)?;
        Ok(Some(DataValue::new(OwnedChunk(Arc::new(
            c.0.iter().map(|x| x * k).collect(),
        )))))
    })
    .arg("xs", generic(0))
    .arg("k", missing())
    .ret(generic(0))
    .build()
}

fn int_len(data: &SharedVec<f64>) -> DataValue {
    DataValue::new(IntValue(data.len() as i64))
}

fn vec_value(data: &SharedVec<f64>) -> DataValue {
    DataValue::new(VecValue(data.clone()))
}

fn small_batch_ctx(workers: usize) -> MozartContext {
    let mut cfg = Config::with_workers(workers);
    cfg.batch_override = Some(7); // deliberately awkward batch size
    cfg.pedantic = true;
    MozartContext::new(cfg)
}

// ---------------------------------------------------------------------
// Tests
// ---------------------------------------------------------------------

#[test]
fn in_place_chain_pipelines_into_one_stage() {
    let ctx = small_batch_ctx(3);
    let n = 100;
    let data = SharedVec::from_vec((0..n).map(|i| i as f64).collect());
    let scale = scale_annotation();

    ctx.call(
        &scale,
        vec![
            vec_value(&data),
            DataValue::new(FloatValue(2.0)),
            int_len(&data),
        ],
    )
    .unwrap();
    ctx.call(
        &scale,
        vec![
            vec_value(&data),
            DataValue::new(FloatValue(3.0)),
            int_len(&data),
        ],
    )
    .unwrap();
    ctx.call(
        &scale,
        vec![
            vec_value(&data),
            DataValue::new(FloatValue(0.5)),
            int_len(&data),
        ],
    )
    .unwrap();
    assert_eq!(ctx.pending_calls(), 3);

    // Access forces evaluation through the protect flag.
    let out = data.as_slice();
    for (i, &x) in out.iter().enumerate() {
        assert_eq!(x, i as f64 * 3.0);
    }
    assert_eq!(ctx.pending_calls(), 0);
    let stats = ctx.stats();
    assert_eq!(stats.stages, 1, "all three calls should share one stage");
    assert_eq!(
        stats.calls,
        3 * 15,
        "5 batches/worker * 3 workers * 3 calls"
    );
}

#[test]
fn pipe_ablation_runs_one_stage_per_function() {
    let mut cfg = Config::with_workers(2);
    cfg.pipeline = false;
    cfg.batch_override = Some(16);
    let ctx = MozartContext::new(cfg);
    let data = SharedVec::from_vec(vec![1.0; 64]);
    let scale = scale_annotation();
    ctx.call(
        &scale,
        vec![
            vec_value(&data),
            DataValue::new(FloatValue(2.0)),
            int_len(&data),
        ],
    )
    .unwrap();
    ctx.call(
        &scale,
        vec![
            vec_value(&data),
            DataValue::new(FloatValue(2.0)),
            int_len(&data),
        ],
    )
    .unwrap();
    ctx.evaluate().unwrap();
    assert_eq!(ctx.stats().stages, 2);
    assert_eq!(data.as_slice()[0], 4.0);
}

#[test]
fn generics_pipeline_binary_ops_and_detect_dependencies() {
    // Mirrors the Black Scholes snippet: in-place ops over shared buffers.
    ArraySplit::register_default();
    let ctx = small_batch_ctx(2);
    let n = 50;
    let a = SharedVec::from_vec((0..n).map(|i| i as f64).collect());
    let b = SharedVec::from_vec(vec![10.0; n]);
    let out = SharedVec::from_vec(vec![0.0; n]);
    let add = add_annotation();
    let scale = scale_annotation();

    // out = a + b; out = out * 2; out = out + a
    ctx.call(&add, vec![vec_value(&a), vec_value(&b), vec_value(&out)])
        .unwrap();
    ctx.call(
        &scale,
        vec![
            vec_value(&out),
            DataValue::new(FloatValue(2.0)),
            int_len(&out),
        ],
    )
    .unwrap();
    ctx.call(&add, vec![vec_value(&out), vec_value(&a), vec_value(&out)])
        .unwrap();
    ctx.evaluate().unwrap();

    for i in 0..n {
        let expected = ((i as f64) + 10.0) * 2.0 + i as f64;
        assert_eq!(out.as_slice()[i], expected, "index {i}");
    }
    assert_eq!(
        ctx.stats().stages,
        1,
        "generic ops over same-length arrays pipeline"
    );
}

#[test]
fn reduction_merges_partials_across_workers_and_batches() {
    let ctx = small_batch_ctx(4);
    let n = 1000;
    let data = SharedVec::from_vec((0..n).map(|i| i as f64).collect());
    let sum = sum_annotation();
    let fut = ctx
        .call(&sum, vec![vec_value(&data)])
        .unwrap()
        .expect("sum returns a value");
    let result = fut.get().unwrap();
    let got = result.downcast_ref::<FloatValue>().unwrap().0;
    let expected = (n * (n - 1) / 2) as f64;
    assert_eq!(got, expected);
}

#[test]
fn scale_then_sum_pipelines_and_reduces() {
    let ctx = small_batch_ctx(2);
    let data = SharedVec::from_vec(vec![1.0; 64]);
    let scale = scale_annotation();
    let sum = sum_annotation();
    ctx.call(
        &scale,
        vec![
            vec_value(&data),
            DataValue::new(FloatValue(3.0)),
            int_len(&data),
        ],
    )
    .unwrap();
    let fut = ctx.call(&sum, vec![vec_value(&data)]).unwrap().unwrap();
    let got = fut.get().unwrap().downcast_ref::<FloatValue>().unwrap().0;
    assert_eq!(got, 192.0);
    assert_eq!(
        ctx.stats().stages,
        1,
        "scale and sum share the ArraySplit split type"
    );
}

#[test]
fn unknown_output_pipelines_into_generic_but_not_concrete() {
    register_default_splitter::<OwnedChunk>(Arc::new(ChunkSplit));
    let ctx = small_batch_ctx(2);
    let input = OwnedChunk(Arc::new((0..40).map(|i| i as f64 - 20.0).collect()));
    let filter = filter_annotation();
    let cscale = chunk_scale_annotation();

    let filtered = ctx
        .call(&filter, vec![DataValue::new(input)])
        .unwrap()
        .unwrap();
    // Generic function accepts the unknown value: pipelined in-stage.
    let scaled = ctx
        .call(
            &cscale,
            vec![filtered.as_value(), DataValue::new(FloatValue(2.0))],
        )
        .unwrap()
        .unwrap();
    let out = scaled.get().unwrap();
    let chunk = out.downcast_ref::<OwnedChunk>().unwrap();
    assert_eq!(chunk.0.len(), 20);
    assert!(chunk.0.iter().all(|x| *x >= 0.0));
    assert_eq!(chunk.0[0], 0.0);
    assert_eq!(*chunk.0.last().unwrap(), 38.0);
    assert_eq!(ctx.stats().stages, 1, "filter and scale pipeline");
}

#[test]
fn two_unknowns_do_not_pipeline_together() {
    register_default_splitter::<OwnedChunk>(Arc::new(ChunkSplit));
    let ctx = small_batch_ctx(2);
    let a = OwnedChunk(Arc::new((0..32).map(|i| i as f64 - 16.0).collect()));
    let b = OwnedChunk(Arc::new((0..32).map(|i| -(i as f64) + 16.0).collect()));
    let filter = filter_annotation();

    // A generic binary op over chunks.
    let chunk_add = Annotation::new("chunk_add", |inv| {
        let a = inv.arg::<OwnedChunk>(0)?;
        let b = inv.arg::<OwnedChunk>(1)?;
        if a.0.len() != b.0.len() {
            return Err(Error::Library(format!(
                "chunk_add length mismatch: {} vs {}",
                a.0.len(),
                b.0.len()
            )));
        }
        Ok(Some(DataValue::new(OwnedChunk(Arc::new(
            a.0.iter().zip(b.0.iter()).map(|(x, y)| x + y).collect(),
        )))))
    })
    .arg("a", generic(0))
    .arg("b", generic(0))
    .ret(generic(0))
    .build();

    let fa = ctx.call(&filter, vec![DataValue::new(a)]).unwrap().unwrap();
    let fb = ctx.call(&filter, vec![DataValue::new(b)]).unwrap().unwrap();
    let fc = ctx
        .call(&chunk_add, vec![fa.as_value(), fb.as_value()])
        .unwrap()
        .unwrap();
    let out = fc.get().unwrap();
    let chunk = out.downcast_ref::<OwnedChunk>().unwrap();
    assert_eq!(
        chunk.0.len(),
        16,
        "both filters keep 16 non-negative values"
    );
    // The two filters have distinct unknown types, so chunk_add must not
    // be pipelined with them (it would see mismatched piece lengths —
    // the library function itself checks and would error).
    assert!(ctx.stats().stages >= 2);
}

#[test]
fn stage_breaks_when_split_value_needed_whole() {
    let ctx = small_batch_ctx(2);
    let n = 30;
    let data = SharedVec::from_vec(vec![1.0; n]);
    let scale = scale_annotation();

    // A function that needs the whole array (e.g. a reshape): `_` type.
    let whole = Annotation::new("whole_len", |inv| {
        let v = inv.arg::<VecValue>(0)?;
        Ok(Some(DataValue::new(IntValue(v.0.len() as i64))))
    })
    .arg("xs", missing())
    .ret(unknown(Arc::new(FirstPiece)))
    .build();

    ctx.call(
        &scale,
        vec![
            vec_value(&data),
            DataValue::new(FloatValue(2.0)),
            int_len(&data),
        ],
    )
    .unwrap();
    let fut = ctx.call(&whole, vec![vec_value(&data)]).unwrap().unwrap();
    let len = fut.get().unwrap();
    assert_eq!(len.downcast_ref::<IntValue>().unwrap().0, n as i64);
    assert_eq!(
        ctx.stats().stages,
        2,
        "whole-array access ends the pipeline stage"
    );
    assert_eq!(data.as_slice()[0], 2.0, "scale ran before whole_len");
}

#[test]
fn arrays_of_different_lengths_do_not_pipeline() {
    let ctx = small_batch_ctx(2);
    let a = SharedVec::from_vec(vec![1.0; 30]);
    let b = SharedVec::from_vec(vec![1.0; 40]);
    let scale = scale_annotation();
    ctx.call(
        &scale,
        vec![vec_value(&a), DataValue::new(FloatValue(2.0)), int_len(&a)],
    )
    .unwrap();
    ctx.call(
        &scale,
        vec![vec_value(&b), DataValue::new(FloatValue(3.0)), int_len(&b)],
    )
    .unwrap();
    ctx.evaluate().unwrap();
    assert_eq!(a.as_slice()[0], 2.0);
    assert_eq!(b.as_slice()[0], 3.0);
    // ArraySplit<30> != ArraySplit<40>: dependent type parameters differ.
    assert_eq!(ctx.stats().stages, 2);
}

#[test]
fn dead_intermediates_are_discarded() {
    register_default_splitter::<OwnedChunk>(Arc::new(ChunkSplit));
    let ctx = small_batch_ctx(2);
    let cscale = chunk_scale_annotation();
    let input = OwnedChunk(Arc::new(vec![1.0; 32]));
    let f1 = ctx
        .call(
            &cscale,
            vec![DataValue::new(input), DataValue::new(FloatValue(2.0))],
        )
        .unwrap()
        .unwrap();
    let f2 = ctx
        .call(
            &cscale,
            vec![f1.as_value(), DataValue::new(FloatValue(3.0))],
        )
        .unwrap()
        .unwrap();
    drop(f1); // intermediate not observable by the user
    let out = f2.get().unwrap();
    assert_eq!(out.downcast_ref::<OwnedChunk>().unwrap().0[0], 6.0);
}

#[test]
fn foreign_lazy_values_are_rejected() {
    let ctx1 = small_batch_ctx(1);
    let ctx2 = small_batch_ctx(1);
    let sum = sum_annotation();
    let data = SharedVec::from_vec(vec![1.0; 8]);
    let fut = ctx1.call(&sum, vec![vec_value(&data)]).unwrap().unwrap();
    let chunk_scale = chunk_scale_annotation();
    let err = ctx2
        .call(
            &chunk_scale,
            vec![fut.as_value(), DataValue::new(FloatValue(1.0))],
        )
        .unwrap_err();
    assert_eq!(err, Error::ForeignValue);
}

#[test]
fn evaluate_is_idempotent_and_stats_accumulate() {
    let ctx = small_batch_ctx(2);
    let data = SharedVec::from_vec(vec![1.0; 16]);
    let scale = scale_annotation();
    ctx.call(
        &scale,
        vec![
            vec_value(&data),
            DataValue::new(FloatValue(2.0)),
            int_len(&data),
        ],
    )
    .unwrap();
    ctx.evaluate().unwrap();
    ctx.evaluate().unwrap(); // no pending work: no-op
    assert_eq!(ctx.stats().stages, 1);

    // A second round of laziness on the same context.
    ctx.call(
        &scale,
        vec![
            vec_value(&data),
            DataValue::new(FloatValue(5.0)),
            int_len(&data),
        ],
    )
    .unwrap();
    assert_eq!(data.as_slice()[0], 10.0);
    assert_eq!(ctx.stats().stages, 2);
}

#[test]
fn many_workers_on_tiny_input_degrade_gracefully() {
    let mut cfg = Config::with_workers(16);
    cfg.batch_override = Some(1);
    let ctx = MozartContext::new(cfg);
    let data = SharedVec::from_vec(vec![1.0, 2.0, 3.0]);
    let scale = scale_annotation();
    ctx.call(
        &scale,
        vec![
            vec_value(&data),
            DataValue::new(FloatValue(2.0)),
            int_len(&data),
        ],
    )
    .unwrap();
    ctx.evaluate().unwrap();
    assert_eq!(data.as_slice(), &[2.0, 4.0, 6.0]);
}

#[test]
fn argument_count_mismatch_is_reported_at_registration() {
    let ctx = small_batch_ctx(1);
    let scale = scale_annotation();
    let data = SharedVec::from_vec(vec![1.0]);
    let err = ctx.call(&scale, vec![vec_value(&data)]).unwrap_err();
    assert!(matches!(err, Error::ArgCount { .. }));
}
